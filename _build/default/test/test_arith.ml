(* Unit and property tests for the symbolic arithmetic substrate. *)

open Arith

let n = Var.fresh "n"
let m = Var.fresh "m"
let k = Var.fresh "k"
let en = Expr.var n
let em = Expr.var m
let ek = Expr.var k
let c = Expr.const

let check_simp msg e expected =
  Alcotest.(check string) msg expected Expr.(to_string (Simplify.simplify e))

let check_equal msg a b = Alcotest.(check bool) msg true (Simplify.prove_equal a b)
let check_nequal msg a b = Alcotest.(check bool) msg false (Simplify.prove_equal a b)

let test_smart_constructors () =
  Alcotest.(check string) "0 + e" "n" Expr.(to_string (add (c 0) en));
  Alcotest.(check string) "e * 1" "n" Expr.(to_string (mul en (c 1)));
  Alcotest.(check string) "e * 0" "0" Expr.(to_string (mul en (c 0)));
  Alcotest.(check string) "const fold" "7" Expr.(to_string (add (c 3) (c 4)));
  Alcotest.(check string) "div by 1" "n" Expr.(to_string (floor_div en (c 1)));
  Alcotest.(check string) "mod by 1" "0" Expr.(to_string (floor_mod en (c 1)))

let test_floor_semantics () =
  Alcotest.(check int) "fdiv pos" 2 (Expr.fdiv 7 3);
  Alcotest.(check int) "fdiv neg num" (-3) (Expr.fdiv (-7) 3);
  Alcotest.(check int) "fdiv neg den" (-3) (Expr.fdiv 7 (-3));
  Alcotest.(check int) "fdiv both neg" 2 (Expr.fdiv (-7) (-3));
  Alcotest.(check int) "fmod pos" 1 (Expr.fmod 7 3);
  Alcotest.(check int) "fmod neg num" 2 (Expr.fmod (-7) 3);
  Alcotest.(check int) "fmod neg den" (-2) (Expr.fmod 7 (-3))

let test_simplify_basic () =
  check_simp "n + n" Expr.(add en en) "n * 2";
  check_simp "n - n" Expr.(sub en en) "0";
  check_simp "2n + 3n" Expr.(add (mul (c 2) en) (mul (c 3) en)) "n * 5";
  check_simp "n*m - m*n" Expr.(sub (mul en em) (mul em en)) "0";
  check_simp "(n+1)*(n-1) - n*n"
    Expr.(sub (mul (add en (c 1)) (sub en (c 1))) (mul en en))
    "-1";
  check_simp "distribute" Expr.(mul (add en (c 2)) (c 3)) "n * 3 + 6"

let test_simplify_divmod () =
  check_simp "4n / 4" Expr.(floor_div (mul en (c 4)) (c 4)) "n";
  check_simp "(4n + 8) / 4" Expr.(floor_div (add (mul en (c 4)) (c 8)) (c 4))
    "n + 2";
  check_simp "(4n + 2) / 4 keeps remainder"
    Expr.(floor_div (add (mul en (c 4)) (c 2)) (c 4))
    "n";
  check_simp "4n mod 4" Expr.(floor_mod (mul en (c 4)) (c 4)) "0";
  check_simp "(4n + 3) mod 4" Expr.(floor_mod (add (mul en (c 4)) (c 3)) (c 4))
    "3";
  check_simp "(4n + m) mod 4" Expr.(floor_mod (add (mul en (c 4)) em) (c 4))
    "m % 4";
  check_simp "n / n" Expr.(floor_div en en) "1";
  check_simp "n mod n" Expr.(floor_mod en en) "0"

let test_simplify_minmax () =
  check_simp "min(n, n)" Expr.(min_ en en) "n";
  check_simp "min(n, n+3)" Expr.(min_ en (add en (c 3))) "n";
  check_simp "max(n, n+3)" Expr.(max_ en (add en (c 3))) "n + 3";
  check_simp "min(n+5, n-2)" Expr.(min_ (add en (c 5)) (sub en (c 2))) "n - 2";
  (* Commutativity through canonical ordering of opaque operands. *)
  check_equal "min commutes" Expr.(min_ en em) Expr.(min_ em en);
  check_equal "max commutes" Expr.(max_ en em) Expr.(max_ em en)

let test_prove_equal () =
  check_equal "flatten count: n*4 = 4*n" Expr.(mul en (c 4)) Expr.(mul (c 4) en);
  check_equal "2*(n+1) = 2n+2"
    Expr.(mul (c 2) (add en (c 1)))
    Expr.(add (mul (c 2) en) (c 2));
  check_equal "(n*2)*m = n*(m*2)"
    Expr.(mul (mul en (c 2)) em)
    Expr.(mul en (mul em (c 2)));
  check_nequal "n <> m" en em;
  check_nequal "n <> n+1" en Expr.(add en (c 1));
  check_nequal "n*m <> n+m" Expr.(mul en em) Expr.(add en em)

let test_prove_equal_shapes () =
  let s1 = Expr.[ mul en (c 2); c 4 ] in
  let s2 = Expr.[ add en en; c 4 ] in
  Alcotest.(check bool) "shapes equal" true (Simplify.prove_equal_shapes s1 s2);
  Alcotest.(check bool) "rank mismatch" false
    (Simplify.prove_equal_shapes s1 [ c 4 ]);
  Alcotest.(check bool) "dim mismatch" false
    (Simplify.prove_equal_shapes s1 Expr.[ mul en (c 3); c 4 ])

let test_subst () =
  let env = Var.Map.(add n (c 5) empty) in
  let e = Expr.(add (mul en (c 4)) em) in
  Alcotest.(check string) "subst n:=5" "20 + m" (Expr.to_string (Expr.subst env e));
  (* Substituting an expression, not just a constant. *)
  let env2 = Var.Map.(add n Expr.(add em (c 1)) empty) in
  check_equal "subst n:=m+1 in n*2"
    (Expr.subst env2 Expr.(mul en (c 2)))
    Expr.(add (mul em (c 2)) (c 2))

let test_eval () =
  let env v = if Var.equal v n then 7 else if Var.equal v m then 3 else 0 in
  Alcotest.(check int) "eval poly" 31 (Expr.eval env Expr.(add (mul en (c 4)) em));
  Alcotest.(check int) "eval div" 2 (Expr.eval env Expr.(floor_div en em));
  Alcotest.(check int) "eval min" 3 (Expr.eval env Expr.(min_ en em));
  Alcotest.(check (option int)) "eval_opt unbound" None
    (Expr.eval_opt (fun _ -> None) en);
  Alcotest.(check (option int)) "eval_opt bound" (Some 14)
    (Expr.eval_opt (fun _ -> Some 7) Expr.(mul en (c 2)))

let test_bounds () =
  let env v =
    if Var.equal v n then Bounds.range 1 2048
    else if Var.equal v m then Bounds.at_least 0
    else Bounds.unbounded
  in
  Alcotest.(check (option int)) "ub of 2n" (Some 4096)
    (Bounds.upper_bound env Expr.(mul en (c 2)));
  Alcotest.(check (option int)) "lb of 2n" (Some 2)
    (Bounds.lower_bound env Expr.(mul en (c 2)));
  Alcotest.(check (option int)) "ub of n*m unbounded" None
    (Bounds.upper_bound env Expr.(mul en em));
  Alcotest.(check (option int)) "ub of min(n*m, 100)" (Some 100)
    (Bounds.upper_bound env Expr.(min_ (mul en em) (c 100)));
  Alcotest.(check (option int)) "ub of n mod 8" (Some 7)
    (Bounds.upper_bound env Expr.(floor_mod ek (c 8)));
  Alcotest.(check bool) "prove n <= 4096" true
    (Bounds.prove_leq env en (c 4096));
  Alcotest.(check bool) "cannot prove n <= 10" false
    (Bounds.prove_leq env en (c 10));
  Alcotest.(check bool) "nonneg m" true (Bounds.prove_nonneg env em);
  Alcotest.(check bool) "nonneg k unknown" false (Bounds.prove_nonneg env ek)

let test_analyzer () =
  let a = Analyzer.create () in
  Analyzer.bind_upper_bound a n ~hi:2048;
  Alcotest.(check (option int)) "analyzer ub" (Some (2048 * 4096 * 2))
    (Analyzer.upper_bound a Expr.(mul (mul en (c 4096)) (c 2)));
  Alcotest.(check bool) "analyzer equality" true
    (Analyzer.prove_equal a Expr.(add en en) Expr.(mul en (c 2)));
  Alcotest.(check bool) "analyzer leq" true
    (Analyzer.prove_leq a en (c 2048));
  (* An interval pinned to one value collapses to a constant. *)
  Analyzer.bind_range a m ~lo:4 ~hi:4;
  Alcotest.(check string) "pinned var collapses" "8"
    (Expr.to_string (Analyzer.simplify a Expr.(mul em (c 2))))

(* Property tests: simplification preserves evaluation; the equality
   prover is sound on random expressions. *)

let gen_expr : Expr.t QCheck.arbitrary =
  let open QCheck in
  let vars = [| n; m; k |] in
  let leaf =
    Gen.oneof
      [ Gen.map Expr.const (Gen.int_range (-20) 20);
        Gen.map (fun i -> Expr.var vars.(i mod 3)) (Gen.int_range 0 2) ]
  in
  let node self size =
    let sub = self (size / 2) in
    Gen.oneof
      [ Gen.map2 Expr.add sub sub;
        Gen.map2 Expr.sub sub sub;
        Gen.map2 Expr.mul sub sub;
        Gen.map2 Expr.floor_div sub sub;
        Gen.map2 Expr.floor_mod sub sub;
        Gen.map2 Expr.min_ sub sub;
        Gen.map2 Expr.max_ sub sub ]
  in
  let gen =
    Gen.sized (Gen.fix (fun self size ->
        if size <= 1 then leaf else Gen.oneof [ leaf; node self size ]))
  in
  make ~print:Expr.to_string gen

let env_of (a, b, c_) v =
  if Var.equal v n then a else if Var.equal v m then b else c_

let prop_simplify_preserves_eval =
  QCheck.Test.make ~count:500 ~name:"simplify preserves evaluation"
    QCheck.(pair gen_expr (triple small_int small_int small_int))
    (fun (e, (a, b, c_)) ->
      let env = env_of (a + 1, b + 1, c_ + 1) in
      match Expr.eval env e with
      | v -> Expr.eval env (Simplify.simplify e) = v
      | exception Division_by_zero ->
          QCheck.assume_fail ())

let prop_simplify_idempotent =
  QCheck.Test.make ~count:500 ~name:"simplify is idempotent" gen_expr (fun e ->
      let s = Simplify.simplify e in
      Expr.equal_syntactic s (Simplify.simplify s))

let prop_prove_equal_sound =
  QCheck.Test.make ~count:300 ~name:"prove_equal sound under evaluation"
    QCheck.(pair (pair gen_expr gen_expr) (triple small_int small_int small_int))
    (fun ((e1, e2), (a, b, c_)) ->
      QCheck.assume (Simplify.prove_equal e1 e2);
      let env = env_of (a + 1, b + 1, c_ + 1) in
      match (Expr.eval env e1, Expr.eval env e2) with
      | v1, v2 -> v1 = v2
      | exception Division_by_zero -> true)

let prop_bounds_sound =
  QCheck.Test.make ~count:500 ~name:"interval bounds contain evaluation"
    QCheck.(pair gen_expr (triple (int_range 1 50) (int_range 1 50) (int_range 1 50)))
    (fun (e, (a, b, c_)) ->
      let benv v =
        if Var.equal v n then Bounds.range 1 50
        else if Var.equal v m then Bounds.range 1 50
        else Bounds.range 1 50
      in
      let env = env_of (a, b, c_) in
      match Expr.eval env e with
      | v ->
          let i = Bounds.eval benv e in
          (match i.Bounds.lo with Some lo -> lo <= v | None -> true)
          && (match i.Bounds.hi with Some hi -> v <= hi | None -> true)
      | exception Division_by_zero -> true)

let prop_subst_commutes_with_eval =
  QCheck.Test.make ~count:300 ~name:"subst then eval = eval extended env"
    QCheck.(pair gen_expr (triple small_int small_int small_int))
    (fun (e, (a, b, c_)) ->
      let env = env_of (a + 1, b + 1, c_ + 1) in
      let sub = Var.Map.(add n (Expr.const (a + 1)) empty) in
      match Expr.eval env e with
      | v -> Expr.eval env (Expr.subst sub e) = v
      | exception Division_by_zero -> QCheck.assume_fail ())

let () =
  Alcotest.run "arith"
    [ ( "expr",
        [ Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "floor semantics" `Quick test_floor_semantics;
          Alcotest.test_case "subst" `Quick test_subst;
          Alcotest.test_case "eval" `Quick test_eval ] );
      ( "simplify",
        [ Alcotest.test_case "basic" `Quick test_simplify_basic;
          Alcotest.test_case "divmod" `Quick test_simplify_divmod;
          Alcotest.test_case "minmax" `Quick test_simplify_minmax;
          Alcotest.test_case "prove_equal" `Quick test_prove_equal;
          Alcotest.test_case "prove_equal_shapes" `Quick test_prove_equal_shapes ]
      );
      ( "bounds",
        [ Alcotest.test_case "intervals" `Quick test_bounds;
          Alcotest.test_case "analyzer" `Quick test_analyzer ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_simplify_preserves_eval;
            prop_simplify_idempotent;
            prop_prove_equal_sound;
            prop_bounds_sound;
            prop_subst_commutes_with_eval ] ) ]
