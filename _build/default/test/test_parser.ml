(* Parser tests: hand-written programs in the paper's surface syntax,
   error reporting, and the print -> parse -> print round trip — both
   on curated functions and on fuzzer-generated modules. *)

open Relax_core

let e = Arith.Expr.const
let f32 = Base.Dtype.F32

let test_parse_sinfo () =
  let check text expected =
    Alcotest.(check bool) text true
      (Struct_info.equal (Parser.parse_sinfo text) expected)
  in
  check "Object" Struct_info.Object;
  check "Prim(\"i64\")" (Struct_info.Prim Base.Dtype.I64);
  check "Tensor((3, 4), \"f32\")" (Struct_info.tensor [ e 3; e 4 ] f32);
  check "Tensor(ndim=2, \"f16\")" (Struct_info.tensor_ndim 2 Base.Dtype.F16);
  check "Shape(ndim=?)" (Struct_info.Shape Struct_info.Unknown_rank);
  check "Tuple[Object, Tensor((1), \"f32\")]"
    (Struct_info.Tuple [ Struct_info.Object; Struct_info.tensor [ e 1 ] f32 ]);
  (* symbolic dims parse into per-call fresh variables *)
  (match Parser.parse_sinfo "Tensor((n, n * 4 + 2), \"f32\")" with
  | Struct_info.Tensor { shape = Struct_info.Known [ d0; d1 ]; _ } ->
      Alcotest.(check bool) "shared symbolic variable" true
        (Arith.Simplify.prove_equal d1
           (Arith.Expr.add (Arith.Expr.mul d0 (e 4)) (e 2)))
  | _ -> Alcotest.fail "expected a tensor");
  (* Callable (Table 1's last row) *)
  match
    Parser.parse_sinfo "Callable([Tensor((n, 4), \"f32\")], Tensor((n * 4), \"f32\"))"
  with
  | Struct_info.Callable { params = [ _ ]; ret = Struct_info.Tensor _ } -> ()
  | _ -> Alcotest.fail "expected a callable"

let test_parse_figure3_style () =
  (* A hand-written program in the paper's style. *)
  let text =
    {|def symbolic_shape_fn(x: Tensor((n, 2, 2), "f32")) -> Tensor(ndim=1, "f32"):
    with dataflow():
      lv0: Tensor((n, 4), "f32") = reshape(x, shape(n, 4))
      lv1: Tensor((n * 4), "f32") = flatten(lv0)
      lv2: Tensor(ndim=1, "f32") = unique(lv1)
    return lv2
|}
  in
  let name, f = Parser.parse_func text in
  Alcotest.(check string) "name" "symbolic_shape_fn" name;
  let mod_ = Ir_module.add_func Ir_module.empty name f in
  Well_formed.assert_well_formed mod_;
  let blocks, _ = Expr.body_blocks f in
  Alcotest.(check int) "one dataflow block" 1 (List.length blocks);
  Alcotest.(check bool) "dataflow" true (List.hd blocks).Expr.dataflow;
  Alcotest.(check int) "three bindings" 3
    (List.length (List.hd blocks).Expr.bindings);
  (* deduction agrees with the written annotations *)
  List.iter
    (fun binding ->
      match binding with
      | Expr.Bind (v, ex) ->
          let fresh = Deduce.expr_sinfo mod_ ex in
          Alcotest.(check bool)
            (Printf.sprintf "annotation of %s deducible" (Rvar.name v))
            true
            (Struct_info.equal (Rvar.sinfo v) fresh
            || Struct_info.subsumes (Rvar.sinfo v) fresh)
      | Expr.Match_cast _ -> ())
    (List.hd blocks).Expr.bindings

let test_parse_match_cast_and_calls () =
  let text =
    {|def f(x: Tensor((n, 4), "f32")) -> Tensor(ndim=1, "f32"):
    lv0: Tensor(ndim=1, "f32") = unique(x)
    mc = match_cast(lv0, Tensor((m), "f32"))
    lv1: Tensor((m), "f32") = exp(mc)
    return lv1
|}
  in
  let name, f = Parser.parse_func text in
  Well_formed.assert_well_formed (Ir_module.add_func Ir_module.empty name f);
  let blocks, _ = Expr.body_blocks f in
  match (List.hd blocks).Expr.bindings with
  | [ _; Expr.Match_cast (_, _, si); _ ] ->
      Alcotest.(check bool) "cast target parsed" true
        (match si with
        | Struct_info.Tensor { shape = Struct_info.Known [ _ ]; _ } -> true
        | _ -> false)
  | _ -> Alcotest.fail "expected a match_cast in the middle"

let test_parse_cross_level_call () =
  (* call_tir-style cross-level calls parse back into the canonical
     form the passes recognize. *)
  let text =
    {|def main(x: Tensor((n, 8), "f32"), w: Tensor((8, 4), "f32")) -> Tensor((n, 4), "f32"):
    with dataflow():
      lv0: Tensor((n, 4), "f32") = call_tir(mm, (x, w), shape(), Tensor((n, 4), "f32"))
    return lv0
|}
  in
  let _, f = Parser.parse_func text in
  let blocks, _ = Expr.body_blocks f in
  match (List.hd blocks).Expr.bindings with
  | [ Expr.Bind (_, ex) ] -> (
      match Expr.as_call_tir ex with
      | Some (kname, args, _out, sym) ->
          Alcotest.(check string) "kernel" "mm" kname;
          Alcotest.(check int) "two tensor args" 2 (List.length args);
          Alcotest.(check int) "no symbolic args" 0 (List.length sym)
      | None -> Alcotest.fail "not recognized as call_tir")
  | _ -> Alcotest.fail "expected one binding"

let test_parse_errors () =
  let bad text =
    match Parser.parse_func text with
    | _ -> Alcotest.failf "accepted: %s" text
    | exception Parser.Parse_error _ -> ()
  in
  bad "def f( -> Tensor((1), \"f32\"):\n    return x\n";
  bad "def f(x: Tensor((1), \"f32\")) -> Object:\n    lv0 = exp(x)\n    return lv0\n";
  (* missing return *)
  bad "def f(x: Tensor((1), \"f32\")) -> Object:\n    lv0: Object = exp(x)\n";
  (* constants are lossy *)
  bad
    "def f(x: Tensor((1), \"f32\")) -> Object:\n    lv0: Object = add(x, const(ndarray<1, f32>[1]))\n    return lv0\n";
  (* tensor program sections rejected *)
  match Parser.parse_module "@tensorir_function\ndef mm(...):\n" with
  | _ -> Alcotest.fail "accepted a TIR section"
  | exception Parser.Parse_error _ -> ()

let test_round_trip_curated () =
  let nv = Arith.Var.fresh "n" in
  let en = Arith.Expr.var nv in
  (* a realistic module: the MLP from the quickstart *)
  let b2 = Builder.create () in
  Builder.function_ b2 ~name:"main"
    ~params:
      [ ("x", Struct_info.tensor [ en; e 8 ] f32);
        ("w1", Struct_info.tensor [ e 8; e 16 ] f32);
        ("w2", Struct_info.tensor [ e 16; e 4 ] f32) ]
    (fun params ->
      match params with
      | [ x; w1; w2 ] ->
          Builder.dataflow b2 (fun () ->
              let h = Builder.emit b2 (Expr.call_op "matmul" [ Expr.Var x; Expr.Var w1 ]) in
              let a = Builder.emit b2 (Expr.call_op "relu" [ Expr.Var h ]) in
              let o = Builder.emit b2 (Expr.call_op "matmul" [ Expr.Var a; Expr.Var w2 ]) in
              Expr.Var o)
      | _ -> assert false);
  let mod1 = Builder.module_ b2 in
  let text1 = Printer.module_to_string mod1 in
  let mod2 = Parser.parse_module text1 in
  let text2 = Printer.module_to_string mod2 in
  Alcotest.(check string) "print/parse/print fixpoint" text1 text2;
  Well_formed.assert_well_formed mod2;
  (* and the re-parsed module compiles and computes the same *)
  let x = Base.Ndarray.random_uniform ~seed:1 f32 [| 3; 8 |] in
  let w1 = Base.Ndarray.random_uniform ~seed:2 f32 [| 8; 16 |] in
  let w2 = Base.Ndarray.random_uniform ~seed:3 f32 [| 16; 4 |] in
  let args = [ Runtime.Vm.tensor x; Runtime.Vm.tensor w1; Runtime.Vm.tensor w2 ] in
  let run m =
    let program = Relax_passes.Pipeline.compile ~device:Runtime.Device.rtx4090 m in
    let vm = Runtime.Vm.create `Numeric program in
    Runtime.Vm.value_tensor (Runtime.Vm.run vm "main" args)
  in
  Alcotest.(check bool) "reparsed module computes identically" true
    (Base.Ndarray.equal_approx ~eps:1e-9 (run mod1) (run mod2))

(* Round trip over fuzzer-style random programs (no constants). *)
let gen_opcodes = QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_range 0 79))

let build_random opcodes =
  let nv = Arith.Var.fresh "n" in
  let en = Arith.Expr.var nv in
  let b = Builder.create () in
  Builder.function_ b ~name:"main"
    ~params:
      [ ("x", Struct_info.tensor [ en; e 4 ] f32);
        ("z", Struct_info.tensor [ en; e 4 ] f32) ]
    (fun pvars ->
      Builder.dataflow b (fun () ->
          let pool = ref pvars in
          let pick i = List.nth !pool (i mod List.length !pool) in
          let shape_of v = Struct_info.tensor_shape (Rvar.sinfo v) in
          let emit ex =
            let v = Builder.emit b ex in
            pool := !pool @ [ v ]
          in
          List.iter
            (fun code ->
              let sel = code / 5 in
              let v = pick sel in
              match code mod 5 with
              | 0 ->
                  let ops = [| "exp"; "relu"; "tanh"; "sigmoid" |] in
                  emit (Expr.call_op ops.(sel mod 4) [ Expr.Var v ])
              | 1 -> (
                  match
                    List.find_opt
                      (fun u ->
                        match (shape_of v, shape_of u) with
                        | Some a, Some c -> Arith.Simplify.prove_equal_shapes a c
                        | _ -> false)
                      !pool
                  with
                  | Some u -> emit (Expr.call_op "add" [ Expr.Var v; Expr.Var u ])
                  | None -> ())
              | 2 ->
                  if
                    match shape_of v with Some d -> List.length d >= 1 | None -> false
                  then emit (Expr.call_op "softmax" [ Expr.Var v ])
              | 3 ->
                  if
                    match shape_of v with Some d -> List.length d >= 1 | None -> false
                  then emit (Expr.call_op "flatten" [ Expr.Var v ])
              | _ ->
                  if
                    match shape_of v with Some d -> List.length d = 2 | None -> false
                  then
                    emit
                      (Expr.call_op "permute_dims"
                         [ Expr.Var v; Expr.Shape_expr [ e 1; e 0 ] ]))
            opcodes;
          Expr.Var (List.nth !pool (List.length !pool - 1))));
  Builder.module_ b

let gen_sinfo_rt : Struct_info.t QCheck.arbitrary =
  let open QCheck in
  let nv = Arith.Var.fresh "n" in
  let dim =
    Gen.oneof
      [ Gen.map e (Gen.int_range 1 9);
        Gen.return (Arith.Expr.var nv);
        Gen.map
          (fun c -> Arith.Expr.add (Arith.Expr.mul (Arith.Expr.var nv) (e c)) (e 1))
          (Gen.int_range 2 4) ]
  in
  let base =
    Gen.oneof
      [ Gen.map
          (fun dims -> Struct_info.Tensor { shape = Known dims; dtype = Some f32 })
          (Gen.list_size (Gen.int_range 0 3) dim);
        Gen.map (fun n -> Struct_info.tensor_ndim n f32) (Gen.int_range 0 3);
        Gen.map (fun dims -> Struct_info.shape dims) (Gen.list_size (Gen.int_range 1 3) dim);
        Gen.return Struct_info.Object;
        Gen.return (Struct_info.Shape Struct_info.Unknown_rank) ]
  in
  make ~print:Struct_info.to_string
    (Gen.oneof
       [ base;
         Gen.map (fun ts -> Struct_info.Tuple ts) (Gen.list_size (Gen.int_range 1 3) base);
         Gen.map2
           (fun ps r -> Struct_info.Callable { params = ps; ret = r })
           (Gen.list_size (Gen.int_range 0 2) base)
           base ])

let prop_sinfo_round_trip =
  QCheck.Test.make ~count:300 ~name:"annotation print/parse round trip"
    gen_sinfo_rt (fun si ->
      let text = Struct_info.to_string si in
      Struct_info.to_string (Parser.parse_sinfo text) = text)

let prop_round_trip =
  QCheck.Test.make ~count:100 ~name:"print/parse/print is a fixpoint"
    gen_opcodes (fun opcodes ->
      let mod1 = build_random opcodes in
      let text1 = Printer.module_to_string mod1 in
      let mod2 = Parser.parse_module text1 in
      Printer.module_to_string mod2 = text1)

(* Nested (non-ANF) programs normalize and compile. *)
let test_nested_program_normalizes () =
  let text =
    {|def main(x: Tensor((n, 4), "f32"), w: Tensor((4, 6), "f32")) -> Tensor((n, 6), "f32"):
    lv0: Tensor((n, 6), "f32") = relu(matmul(exp(x), w))
    return lv0
|}
  in
  let mod_ = Parser.parse_module text in
  let nv =
    match
      Struct_info.tensor_shape
        (Rvar.sinfo
           (List.hd (Option.get (Ir_module.find_func mod_ "main")).Expr.params))
    with
    | Some (d :: _) -> Arith.Var.Set.choose (Arith.Expr.free_vars d)
    | _ -> Alcotest.fail "expected symbolic first dim"
  in
  let program =
    Relax_passes.Pipeline.compile
      ~options:
        { Relax_passes.Pipeline.default_options with
          Relax_passes.Pipeline.upper_bounds = [ (nv, 8) ] }
      ~device:Runtime.Device.rtx4090 mod_
  in
  let vm = Runtime.Vm.create `Numeric program in
  let x = Base.Ndarray.random_uniform ~seed:1 f32 [| 3; 4 |] in
  let w = Base.Ndarray.random_uniform ~seed:2 f32 [| 4; 6 |] in
  let out =
    Runtime.Vm.value_tensor
      (Runtime.Vm.run vm "main" [ Runtime.Vm.tensor x; Runtime.Vm.tensor w ])
  in
  (* reference: relu(exp(x) @ w) *)
  let expect = Base.Ndarray.create f32 [| 3; 6 |] in
  for i = 0 to 2 do
    for j = 0 to 5 do
      let acc = ref 0.0 in
      for k = 0 to 3 do
        acc :=
          !acc
          +. (exp (Base.Ndarray.get_float x [| i; k |])
             *. Base.Ndarray.get_float w [| k; j |])
      done;
      Base.Ndarray.set_float expect [| i; j |] (Float.max 0.0 !acc)
    done
  done;
  Alcotest.(check bool) "nested program computes correctly" true
    (Base.Ndarray.equal_approx ~eps:1e-6 expect out);
  (* Normalization is idempotent. *)
  let once = Relax_passes.Normalize.run mod_ in
  let twice = Relax_passes.Normalize.run once in
  Alcotest.(check string) "normalize idempotent"
    (Printer.module_to_string once)
    (Printer.module_to_string twice)

let () =
  Alcotest.run "parser"
    [ ( "units",
        [ Alcotest.test_case "annotations" `Quick test_parse_sinfo;
          Alcotest.test_case "figure 3 style" `Quick test_parse_figure3_style;
          Alcotest.test_case "match_cast" `Quick test_parse_match_cast_and_calls;
          Alcotest.test_case "cross-level call" `Quick test_parse_cross_level_call;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "round_trip",
        Alcotest.test_case "curated module" `Quick test_round_trip_curated
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_round_trip; prop_sinfo_round_trip ] );
      ( "normalize",
        [ Alcotest.test_case "nested program" `Quick
            test_nested_program_normalizes ] ) ]

