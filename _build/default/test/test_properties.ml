(* Differential and algebraic property tests.

   The centerpiece is a program fuzzer: random dynamic-shape operator
   chains are built with the block builder, then executed through two
   fully independent paths — the eager tree-walking executor and the
   compiled VM under randomly sampled pipeline configurations — and
   must agree bit-for-bit. This exercises deduction, legalization,
   fusion, memory planning, graph capture and the VM against the same
   oracle at once. *)

open Relax_core

let f32 = Base.Dtype.F32
let e = Arith.Expr.const

(* ---------- random program construction ---------- *)

type prog = {
  opcodes : int list;  (** interpreted against the available-var pool *)
  n_value : int;  (** runtime value of the symbolic dim *)
  fusion : bool;
  library : bool;
  planning : bool;
  capture : bool;
}

let build_program (p : prog) =
  let nv = Arith.Var.fresh "n" in
  let en = Arith.Expr.var nv in
  let b = Builder.create () in
  (* Inputs: x: (n, 4), w: (4, 6), z: (n, 4). *)
  let params =
    [ ("x", Struct_info.tensor [ en; e 4 ] f32);
      ("w", Struct_info.tensor [ e 4; e 6 ] f32);
      ("z", Struct_info.tensor [ en; e 4 ] f32) ]
  in
  Builder.function_ b ~name:"main" ~params (fun pvars ->
      Builder.dataflow b (fun () ->
          let pool = ref (List.map (fun v -> v) pvars) in
          let pick i = List.nth !pool (i mod List.length !pool) in
          let shape_of v = Struct_info.tensor_shape (Rvar.sinfo v) in
          let rank_of v =
            match shape_of v with Some d -> List.length d | None -> 0
          in
          let emit ex =
            let v = Builder.emit b ex in
            pool := !pool @ [ v ];
            v
          in
          List.iter
            (fun code ->
              let sel = code / 8 in
              match code mod 8 with
              | 0 ->
                  (* unary *)
                  let ops = [| "exp"; "relu"; "tanh"; "sigmoid"; "negative" |] in
                  let v = pick sel in
                  ignore (emit (Expr.call_op ops.(sel mod 5) [ Expr.Var v ]))
              | 1 -> (
                  (* binary on two same-shape vars *)
                  let v = pick sel in
                  match
                    List.find_opt
                      (fun u ->
                        match (shape_of v, shape_of u) with
                        | Some a, Some b -> Arith.Simplify.prove_equal_shapes a b
                        | _ -> false)
                      !pool
                  with
                  | Some u ->
                      let ops = [| "add"; "multiply"; "subtract" |] in
                      ignore
                        (emit (Expr.call_op ops.(sel mod 3) [ Expr.Var v; Expr.Var u ]))
                  | None -> ())
              | 2 -> (
                  (* matmul with a constant weight matching the last dim *)
                  let v = pick sel in
                  match shape_of v with
                  | Some dims when List.length dims = 2 -> (
                      match Arith.Expr.as_const (List.nth dims 1) with
                      | Some k when k <= 8 ->
                          let w =
                            Base.Ndarray.random_uniform ~seed:(100 + sel) f32
                              [| k; 3 |]
                          in
                          ignore
                            (emit (Expr.call_op "matmul" [ Expr.Var v; Expr.Const w ]))
                      | _ -> ())
                  | _ -> ())
              | 3 ->
                  (* softmax over last axis *)
                  let v = pick sel in
                  if rank_of v >= 1 then
                    ignore (emit (Expr.call_op "softmax" [ Expr.Var v ]))
              | 4 ->
                  (* sum over last axis (keep rank >= 1 afterwards) *)
                  let v = pick sel in
                  if rank_of v >= 2 then
                    ignore (emit (Expr.call_op "sum" [ Expr.Var v ]))
              | 5 ->
                  (* flatten *)
                  let v = pick sel in
                  if rank_of v >= 1 then
                    ignore (emit (Expr.call_op "flatten" [ Expr.Var v ]))
              | 6 -> (
                  (* concat along last axis with itself *)
                  let v = pick sel in
                  if rank_of v >= 1 then
                    ignore (emit (Expr.call_op "concat" [ Expr.Var v; Expr.Var v ])))
              | _ -> (
                  (* permute a rank-2 var *)
                  let v = pick sel in
                  if rank_of v = 2 then
                    ignore
                      (emit
                         (Expr.call_op "permute_dims"
                            [ Expr.Var v; Expr.Shape_expr [ e 1; e 0 ] ]))))
            p.opcodes;
          Expr.Var (List.nth !pool (List.length !pool - 1))));
  (Builder.module_ b, nv)

let inputs_for n seed =
  [ Runtime.Vm.tensor (Base.Ndarray.random_uniform ~seed f32 [| n; 4 |]);
    Runtime.Vm.tensor (Base.Ndarray.random_uniform ~seed:(seed + 1) f32 [| 4; 6 |]);
    Runtime.Vm.tensor (Base.Ndarray.random_uniform ~seed:(seed + 2) f32 [| n; 4 |]) ]

let rec value_close a b =
  match (a, b) with
  | Runtime.Vm.Tensor x, Runtime.Vm.Tensor y ->
      Base.Ndarray.equal_approx ~eps:1e-6 x y
  | Runtime.Vm.Tuple_val xs, Runtime.Vm.Tuple_val ys ->
      List.length xs = List.length ys && List.for_all2 value_close xs ys
  | _, _ -> false

let gen_prog : prog QCheck.arbitrary =
  let open QCheck in
  let gen =
    Gen.map
      (fun (opcodes, n_value, (fusion, library, planning, capture)) ->
        { opcodes; n_value = 1 + (n_value mod 5); fusion; library; planning; capture })
      (Gen.triple
         (Gen.list_size (Gen.int_range 1 10) (Gen.int_range 0 79))
         Gen.small_nat
         (Gen.quad Gen.bool Gen.bool Gen.bool Gen.bool))
  in
  let print p =
    Printf.sprintf "ops=[%s] n=%d fusion=%b lib=%b plan=%b capture=%b"
      (String.concat ";" (List.map string_of_int p.opcodes))
      p.n_value p.fusion p.library p.planning p.capture
  in
  make ~print gen

let prop_compiled_matches_eager =
  QCheck.Test.make ~count:120 ~name:"compiled VM matches eager executor"
    gen_prog (fun p ->
      let mod_, nv = build_program p in
      Well_formed.assert_well_formed mod_;
      let args = inputs_for p.n_value 7 in
      let eager_out, _ = Baselines.Eager.run `Numeric mod_ args in
      let options =
        {
          Relax_passes.Pipeline.default_options with
          Relax_passes.Pipeline.fusion = p.fusion;
          dispatch_library = p.library;
          memory_plan = p.planning;
          graph_capture = p.capture;
          upper_bounds = [ (nv, 8) ];
        }
      in
      let program =
        Relax_passes.Pipeline.compile ~options ~device:Runtime.Device.rtx4090 mod_
      in
      let vm = Runtime.Vm.create `Numeric program in
      let compiled_out = Runtime.Vm.run vm "main" args in
      value_close eager_out compiled_out)

let prop_repeat_invocations_consistent =
  (* Planned storages are cached across invocations; results must not
     change when the same program runs repeatedly with varying n. *)
  QCheck.Test.make ~count:40 ~name:"repeated invocations with varying n"
    gen_prog (fun p ->
      let mod_, nv = build_program p in
      let options =
        {
          Relax_passes.Pipeline.default_options with
          Relax_passes.Pipeline.upper_bounds = [ (nv, 8) ];
        }
      in
      let program =
        Relax_passes.Pipeline.compile ~options ~device:Runtime.Device.rtx4090 mod_
      in
      let vm = Runtime.Vm.create `Numeric program in
      List.for_all
        (fun n ->
          let args = inputs_for n 11 in
          let eager_out, _ = Baselines.Eager.run `Numeric mod_ args in
          value_close eager_out (Runtime.Vm.run vm "main" args))
        [ p.n_value; ((p.n_value + 3) mod 8) + 1; p.n_value ])

(* ---------- struct info algebra ---------- *)

let gen_sinfo : Struct_info.t QCheck.arbitrary =
  let open QCheck in
  let nv = Arith.Var.fresh "n" in
  let dim =
    Gen.oneof
      [ Gen.map e (Gen.int_range 1 8);
        Gen.return (Arith.Expr.var nv);
        Gen.map
          (fun c -> Arith.Expr.mul (Arith.Expr.var nv) (e c))
          (Gen.int_range 1 4) ]
  in
  let tensor =
    Gen.map
      (fun dims -> Struct_info.Tensor { shape = Known dims; dtype = Some f32 })
      (Gen.list_size (Gen.int_range 0 3) dim)
  in
  let base =
    Gen.oneof
      [ tensor;
        Gen.map (fun n -> Struct_info.tensor_ndim n f32) (Gen.int_range 0 3);
        Gen.map (fun dims -> Struct_info.shape dims) (Gen.list_size (Gen.int_range 0 3) dim);
        Gen.return Struct_info.Object ]
  in
  let gen =
    Gen.oneof
      [ base; Gen.map (fun ts -> Struct_info.Tuple ts) (Gen.list_size (Gen.int_range 0 3) base) ]
  in
  make ~print:Struct_info.to_string gen

let prop_subsumes_reflexive =
  QCheck.Test.make ~count:200 ~name:"subsumes is reflexive" gen_sinfo
    (fun si -> Struct_info.subsumes si si)

let prop_erase_subsumes =
  QCheck.Test.make ~count:200 ~name:"erase_to_coarse subsumes the original"
    gen_sinfo (fun si -> Struct_info.subsumes (Struct_info.erase_to_coarse si) si)

let prop_equal_symmetric =
  QCheck.Test.make ~count:200 ~name:"equal is symmetric"
    QCheck.(pair gen_sinfo gen_sinfo)
    (fun (a, b) -> Struct_info.equal a b = Struct_info.equal b a)

let prop_subst_empty_id =
  QCheck.Test.make ~count:200 ~name:"subst with empty env is identity"
    gen_sinfo (fun si ->
      Struct_info.equal si (Struct_info.subst Arith.Var.Map.empty si))

(* ---------- constant folding ---------- *)

let test_fold_constants () =
  let b = Builder.create () in
  let c1 = Base.Ndarray.of_float_list f32 [| 2; 2 |] [ 1.; 2.; 3.; 4. ] in
  let c2 = Base.Ndarray.of_float_list f32 [| 2; 2 |] [ 10.; 20.; 30.; 40. ] in
  Builder.function_ b ~name:"main"
    ~params:[ ("x", Struct_info.tensor [ e 2; e 2 ] f32) ]
    (fun params ->
      match params with
      | [ x ] ->
          Builder.dataflow b (fun () ->
              let s = Builder.emit b (Expr.call_op "add" [ Expr.Const c1; Expr.Const c2 ]) in
              let t = Builder.emit b (Expr.call_op "relu" [ Expr.Var s ]) in
              let o = Builder.emit b (Expr.call_op "add" [ Expr.Var x; Expr.Var t ]) in
              Expr.Var o)
      | _ -> assert false);
  let mod_ = Relax_passes.Fold_constants.run (Builder.module_ b) in
  let mod_ = Relax_passes.Dce.run mod_ in
  let f = Option.get (Ir_module.find_func mod_ "main") in
  let blocks, _ = Expr.body_blocks f in
  let bindings = List.concat_map (fun (blk : Expr.block) -> blk.Expr.bindings) blocks in
  (* add(c1,c2) and relu(.) fold into one constant binding; the final
     data-dependent add survives. *)
  Alcotest.(check int) "folded to two bindings" 2 (List.length bindings);
  (match bindings with
  | [ Expr.Bind (_, Expr.Const nd); Expr.Bind (_, Expr.Call { callee = Expr.Op "add"; _ }) ]
    ->
      Alcotest.(check (list (float 1e-9))) "folded value"
        [ 11.; 22.; 33.; 44. ]
        (Base.Ndarray.to_float_list nd)
  | _ -> Alcotest.fail "expected a constant binding then the final add");
  (* Numeric equivalence end to end. *)
  let x = Base.Ndarray.random_uniform ~seed:3 f32 [| 2; 2 |] in
  let run m =
    let program =
      Relax_passes.Pipeline.compile ~device:Runtime.Device.rtx4090 m
    in
    let vm = Runtime.Vm.create `Numeric program in
    Runtime.Vm.value_tensor (Runtime.Vm.run vm "main" [ Runtime.Vm.tensor x ])
  in
  Alcotest.(check bool) "folded module computes the same" true
    (Base.Ndarray.equal_approx ~eps:1e-9 (run (Builder.module_ b)) (run mod_))

let () =
  Alcotest.run "properties"
    [ ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compiled_matches_eager; prop_repeat_invocations_consistent ] );
      ( "struct_info",
        List.map QCheck_alcotest.to_alcotest
          [ prop_subsumes_reflexive;
            prop_erase_subsumes;
            prop_equal_symmetric;
            prop_subst_empty_id ] );
      ( "fold",
        [ Alcotest.test_case "constant folding" `Quick test_fold_constants ] )
    ]
