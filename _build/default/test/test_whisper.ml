(* Tests for the encoder-decoder (Whisper) and vision-encoder (LLaVA)
   frontends: numeric runs at tiny scale, timed runs at paper scale. *)

let compile ?(options = Relax_passes.Pipeline.default_options) ~device ~bounds mod_ =
  let options = { options with Relax_passes.Pipeline.upper_bounds = bounds } in
  Relax_passes.Pipeline.compile ~options ~device mod_

let test_encoder_numeric () =
  let enc =
    Frontend.Encoder.build ~name:"enc" ~seq:4 ~hidden:8 ~heads:2 ~head_dim:4
      ~inter:16 ~layers:2 ()
  in
  let program = compile ~device:Runtime.Device.rtx4090 ~bounds:[] enc.Frontend.Encoder.mod_ in
  let vm = Runtime.Vm.create `Numeric program in
  let args = Frontend.Encoder.args_for enc ~mode:(`Numeric 3) in
  let out = Runtime.Vm.run vm "enc" args in
  Alcotest.(check (array int)) "encoder output shape" [| 4; 8 |]
    (Runtime.Vm.value_shape out);
  (* Projection variant. *)
  let encp =
    Frontend.Encoder.build ~name:"encp" ~seq:4 ~hidden:8 ~heads:2 ~head_dim:4
      ~inter:16 ~layers:1 ~proj_out:12 ()
  in
  let program = compile ~device:Runtime.Device.rtx4090 ~bounds:[] encp.Frontend.Encoder.mod_ in
  let vm = Runtime.Vm.create `Numeric program in
  let out =
    Runtime.Vm.run vm "encp" (Frontend.Encoder.args_for encp ~mode:(`Numeric 5))
  in
  Alcotest.(check (array int)) "projected output shape" [| 4; 12 |]
    (Runtime.Vm.value_shape out)

let test_whisper_decoder_numeric () =
  let s = Frontend.Whisper.tiny_sizes in
  let dec = Frontend.Whisper.decoder_step s in
  let program =
    compile ~device:Runtime.Device.rtx4090
      ~bounds:(Frontend.Whisper.upper_bound_hints dec)
      dec.Frontend.Whisper.mod_
  in
  let vm = Runtime.Vm.create `Numeric program in
  let args = Frontend.Whisper.decoder_args dec ~ctx:3 ~mode:(`Numeric 9) in
  match Runtime.Vm.run vm dec.Frontend.Whisper.entry args with
  | Runtime.Vm.Tuple_val (logits :: kc :: _) ->
      Alcotest.(check (array int)) "logits" [| 1; 32 |]
        (Runtime.Vm.value_shape logits);
      Alcotest.(check (array int)) "self cache grew" [| 1; 2; 4; 4 |]
        (Runtime.Vm.value_shape kc)
  | _ -> Alcotest.fail "expected tuple"

let test_whisper_decoder_matches_eager () =
  let s = Frontend.Whisper.tiny_sizes in
  let dec = Frontend.Whisper.decoder_step s in
  let args = Frontend.Whisper.decoder_args dec ~ctx:2 ~mode:(`Numeric 21) in
  let eager_out, _ =
    Baselines.Eager.run ~entry:dec.Frontend.Whisper.entry `Numeric
      dec.Frontend.Whisper.mod_ args
  in
  let program =
    compile ~device:Runtime.Device.rtx4090
      ~bounds:(Frontend.Whisper.upper_bound_hints dec)
      dec.Frontend.Whisper.mod_
  in
  let vm = Runtime.Vm.create `Numeric program in
  match (eager_out, Runtime.Vm.run vm dec.Frontend.Whisper.entry args) with
  | Runtime.Vm.Tuple_val (el :: _), Runtime.Vm.Tuple_val (cl :: _) ->
      Alcotest.(check bool) "whisper decoder eager == compiled" true
        (Base.Ndarray.equal_approx ~eps:1e-9
           (Runtime.Vm.value_tensor el)
           (Runtime.Vm.value_tensor cl))
  | _ -> Alcotest.fail "expected tuples"

let test_whisper_large_timed () =
  (* Paper-scale whisper decode step on the 4090 model: dominated by
     ~1.9 GB of f16 decoder+encoder-cross weights per step. *)
  let s = Frontend.Whisper.large_v3 in
  let dec = Frontend.Whisper.decoder_step s in
  let program =
    compile ~device:Runtime.Device.rtx4090
      ~bounds:(Frontend.Whisper.upper_bound_hints dec)
      dec.Frontend.Whisper.mod_
  in
  let vm = Runtime.Vm.create (`Timed Runtime.Device.rtx4090) program in
  let args = Frontend.Whisper.decoder_args dec ~ctx:64 ~mode:`Shadow in
  ignore (Runtime.Vm.run vm dec.Frontend.Whisper.entry args);
  let ms = (Runtime.Vm.stats vm).Runtime.Vm.elapsed_us /. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "decode step plausible (%.2f ms)" ms)
    true
    (ms > 0.5 && ms < 20.0)

let test_llava_vision_timed () =
  let enc = Frontend.Llava.vision_encoder () in
  let program =
    compile ~device:Runtime.Device.rtx4090 ~bounds:[] enc.Frontend.Encoder.mod_
  in
  let vm = Runtime.Vm.create (`Timed Runtime.Device.rtx4090) program in
  let args = Frontend.Encoder.args_for enc ~mode:`Shadow in
  let out = Runtime.Vm.run vm "clip_vit_encode" args in
  Alcotest.(check (array int)) "projected to LLM hidden" [| 576; 4096 |]
    (Runtime.Vm.value_shape out);
  let ms = (Runtime.Vm.stats vm).Runtime.Vm.elapsed_us /. 1000.0 in
  (* ViT-L over 576 patches is a few tens of GFLOPs: a few ms. *)
  Alcotest.(check bool)
    (Printf.sprintf "vision encode plausible (%.2f ms)" ms)
    true
    (ms > 0.2 && ms < 50.0)

let () =
  Alcotest.run "whisper_llava"
    [ ( "encoder",
        [ Alcotest.test_case "numeric" `Quick test_encoder_numeric ] );
      ( "whisper",
        [ Alcotest.test_case "decoder numeric" `Quick
            test_whisper_decoder_numeric;
          Alcotest.test_case "decoder eager equivalence" `Quick
            test_whisper_decoder_matches_eager;
          Alcotest.test_case "large-v3 timed" `Quick test_whisper_large_timed ]
      );
      ( "llava",
        [ Alcotest.test_case "vision encoder timed" `Quick
            test_llava_vision_timed ] ) ]
