(* Tests for the Relax core IR: annotations (Table 1), forward shape
   deduction incl. the Figure 3 / Figure 7 scenarios, the block
   builder, well-formedness checking, and the printer. *)

open Relax_core

let e = Arith.Expr.const
let sym name = Arith.Expr.var (Arith.Var.fresh name)
let f32 = Base.Dtype.F32
let f16 = Base.Dtype.F16

let si_testable =
  Alcotest.testable
    (fun fmt si -> Format.pp_print_string fmt (Struct_info.to_string si))
    Struct_info.equal

(* ---------- struct info ---------- *)

let test_struct_info_table1 () =
  let n = sym "n" in
  Alcotest.(check string) "Shape([n, 4])" "Shape([n, 4])"
    (Struct_info.to_string (Struct_info.shape [ n; e 4 ]));
  Alcotest.(check string) "Shape(ndim=2)" "Shape(ndim=2)"
    (Struct_info.to_string (Struct_info.shape_ndim 2));
  Alcotest.(check string) "Tensor((n, 4), f32)" "Tensor((n, 4), \"f32\")"
    (Struct_info.to_string (Struct_info.tensor [ n; e 4 ] f32));
  Alcotest.(check string) "Object" "Object" (Struct_info.to_string Struct_info.Object);
  Alcotest.(check string) "Tuple" "Tuple[Tensor((n, 4), \"f32\"), Object]"
    (Struct_info.to_string
       (Struct_info.Tuple [ Struct_info.tensor [ n; e 4 ] f32; Struct_info.Object ]));
  Alcotest.(check string) "Callable"
    "Callable([Tensor((n, 4), \"f32\")], Tensor((n * 4), \"f32\"))"
    (Struct_info.to_string
       (Struct_info.Callable
          {
            params = [ Struct_info.tensor [ n; e 4 ] f32 ];
            ret = Struct_info.tensor [ Arith.Expr.mul n (e 4) ] f32;
          }))

let test_struct_info_equal_subsume () =
  let n = sym "n" in
  let t1 = Struct_info.tensor [ Arith.Expr.add n n ] f32 in
  let t2 = Struct_info.tensor [ Arith.Expr.mul n (e 2) ] f32 in
  Alcotest.(check bool) "semantic equality via prover" true
    (Struct_info.equal t1 t2);
  Alcotest.(check bool) "coarse subsumes specific" true
    (Struct_info.subsumes (Struct_info.tensor_ndim 1 f32) t1);
  Alcotest.(check bool) "specific does not subsume coarse" false
    (Struct_info.subsumes t1 (Struct_info.tensor_ndim 1 f32));
  Alcotest.(check bool) "object subsumes all" true
    (Struct_info.subsumes Struct_info.Object t1);
  Alcotest.(check bool) "dtype mismatch" false
    (Struct_info.equal t1 (Struct_info.tensor [ Arith.Expr.add n n ] f16));
  Alcotest.(check bool) "unknown dtype subsumes known" true
    (Struct_info.subsumes
       (Struct_info.Tensor { shape = Ndim 1; dtype = None })
       t1)

let test_struct_info_coarse_subst () =
  let nv = Arith.Var.fresh "n" in
  let t = Struct_info.tensor [ Arith.Expr.var nv; e 4 ] f32 in
  Alcotest.(check si_testable) "erase" (Struct_info.tensor_ndim 2 f32)
    (Struct_info.erase_to_coarse t);
  let env = Arith.Var.Map.(add nv (e 7) empty) in
  Alcotest.(check si_testable) "subst"
    (Struct_info.tensor [ e 7; e 4 ] f32)
    (Struct_info.subst env t)

(* ---------- operator deduction ---------- *)

let deduce_op name arg_sinfos =
  let args = List.map (fun si -> Expr.Var (Rvar.fresh "x" si)) arg_sinfos in
  Deduce.expr_sinfo Ir_module.empty (Expr.call_op name args)

let test_deduce_elementwise () =
  let n = sym "n" in
  let t = Struct_info.tensor [ n; e 4 ] f32 in
  Alcotest.(check si_testable) "add same shape" t (deduce_op "add" [ t; t ]);
  Alcotest.(check si_testable) "exp" t (deduce_op "exp" [ t ]);
  (* suffix broadcast *)
  let b = Struct_info.tensor [ e 4 ] f32 in
  Alcotest.(check si_testable) "broadcast" t (deduce_op "multiply" [ t; b ]);
  (* mismatch is an error *)
  let bad = Struct_info.tensor [ e 5 ] f32 in
  (match deduce_op "add" [ t; bad ] with
  | _ -> Alcotest.fail "expected broadcast failure"
  | exception Deduce.Error _ -> ());
  (* coarse falls back to rank info *)
  let coarse = Struct_info.tensor_ndim 2 f32 in
  Alcotest.(check si_testable) "coarse fallback" coarse
    (deduce_op "add" [ t; coarse ])

let test_deduce_matmul () =
  let n = sym "n" in
  let x = Struct_info.tensor [ n; e 128 ] f32 in
  let w = Struct_info.tensor [ e 128; e 256 ] f32 in
  Alcotest.(check si_testable) "2d matmul"
    (Struct_info.tensor [ n; e 256 ] f32)
    (deduce_op "matmul" [ x; w ]);
  let bx = Struct_info.tensor [ e 8; n; e 64 ] f32 in
  let bw = Struct_info.tensor [ e 8; e 64; n ] f32 in
  Alcotest.(check si_testable) "batched matmul"
    (Struct_info.tensor [ e 8; n; n ] f32)
    (deduce_op "matmul" [ bx; bw ]);
  (match deduce_op "matmul" [ x; Struct_info.tensor [ e 64; e 256 ] f32 ] with
  | _ -> Alcotest.fail "expected inner-dim failure"
  | exception Deduce.Error _ -> ());
  (* dtype mismatch *)
  match deduce_op "matmul" [ x; Struct_info.tensor [ e 128; e 256 ] f16 ] with
  | _ -> Alcotest.fail "expected dtype failure"
  | exception Deduce.Error _ -> ()

let test_deduce_figure3 () =
  (* Figure 3: reshape -> flatten -> unique -> match_cast -> exp. *)
  let nv = Arith.Var.fresh "n" in
  let n = Arith.Expr.var nv in
  let x = Struct_info.tensor [ n; e 2; e 2 ] f32 in
  let reshaped =
    let args =
      [ Expr.Var (Rvar.fresh "x" x); Expr.Shape_expr [ n; e 4 ] ]
    in
    Deduce.expr_sinfo Ir_module.empty (Expr.call_op "reshape" args)
  in
  Alcotest.(check si_testable) "reshape to (n, 4)"
    (Struct_info.tensor [ n; e 4 ] f32)
    reshaped;
  let flattened = deduce_op "flatten" [ reshaped ] in
  Alcotest.(check si_testable) "flatten tracks n * 4"
    (Struct_info.tensor [ Arith.Expr.mul n (e 4) ] f32)
    flattened;
  (* data-dependent: coarse rank-1 annotation *)
  let uniq = deduce_op "unique" [ flattened ] in
  Alcotest.(check si_testable) "unique coarse" (Struct_info.tensor_ndim 1 f32) uniq;
  (* exp of the match_cast'ed (m,) keeps (m,) *)
  let mv = Arith.Expr.var (Arith.Var.fresh "m") in
  let cast = Struct_info.tensor [ mv ] f32 in
  Alcotest.(check si_testable) "exp after match_cast" cast
    (deduce_op "exp" [ cast ])

let test_deduce_reductions_etc () =
  let n = sym "n" in
  let x = Struct_info.tensor [ n; e 4 ] f32 in
  Alcotest.(check si_testable) "sum drops last"
    (Struct_info.tensor [ n ] f32)
    (deduce_op "sum" [ x ]);
  Alcotest.(check si_testable) "softmax keeps shape" x (deduce_op "softmax" [ x ]);
  Alcotest.(check si_testable) "astype.f16 changes dtype"
    (Struct_info.tensor [ n; e 4 ] f16)
    (deduce_op "astype.f16" [ x ]);
  let table = Struct_info.tensor [ e 32000; e 4096 ] f32 in
  let idx = Struct_info.Tensor { shape = Known [ n ]; dtype = Some Base.Dtype.I32 } in
  Alcotest.(check si_testable) "take"
    (Struct_info.tensor [ n; e 4096 ] f32)
    (deduce_op "take" [ table; idx ]);
  let a = Struct_info.tensor [ n; e 8 ] f32 in
  let b = Struct_info.tensor [ n; e 4 ] f32 in
  Alcotest.(check si_testable) "concat adds last dims"
    (Struct_info.tensor [ n; e 12 ] f32)
    (deduce_op "concat" [ a; b ]);
  let permuted =
    Deduce.expr_sinfo Ir_module.empty
      (Expr.call_op "permute_dims"
         [ Expr.Var (Rvar.fresh "x" x); Expr.Shape_expr [ e 1; e 0 ] ])
  in
  Alcotest.(check si_testable) "permute_dims"
    (Struct_info.tensor [ e 4; n ] f32)
    permuted

let test_deduce_figure7_interprocedural () =
  (* subfn(s: Shape([n, m])) -> Tensor((n * m,), f32) *)
  let nv = Arith.Var.fresh "n" and mv = Arith.Var.fresh "m" in
  let en = Arith.Expr.var nv and em = Arith.Expr.var mv in
  let params = [ Struct_info.shape [ en; em ] ] in
  let ret = Struct_info.tensor [ Arith.Expr.mul en em ] f32 in
  (* lv0: call with shape(n', 4) where n' is a caller variable *)
  let n' = sym "n'" in
  Alcotest.(check si_testable) "lv0: (n' * 4,)"
    (Struct_info.tensor [ Arith.Expr.mul n' (e 4) ] f32)
    (Deduce.signature_call_sinfo ~params ~ret
       ~args:[ Struct_info.shape [ n'; e 4 ] ]);
  (* lv1: fully static shape(3, 4) -> (12,) *)
  Alcotest.(check si_testable) "lv1: (12,)"
    (Struct_info.tensor [ e 12 ] f32)
    (Deduce.signature_call_sinfo ~params ~ret
       ~args:[ Struct_info.shape [ e 3; e 4 ] ]);
  (* lv2: shape(n' + 1, 4) -> ((n' + 1) * 4,) *)
  Alcotest.(check si_testable) "lv2: ((n' + 1) * 4,)"
    (Struct_info.tensor [ Arith.Expr.(mul (add n' (e 1)) (e 4)) ] f32)
    (Deduce.signature_call_sinfo ~params ~ret
       ~args:[ Struct_info.shape [ Arith.Expr.add n' (e 1); e 4 ] ]);
  (* lv3: coarse Shape(ndim=2) argument -> coarse Tensor(ndim=1) *)
  Alcotest.(check si_testable) "lv3: coarse fallback"
    (Struct_info.tensor_ndim 1 f32)
    (Deduce.signature_call_sinfo ~params ~ret
       ~args:[ Struct_info.shape_ndim 2 ])

let test_deduce_global_call () =
  (* Deduction through a module-level subgraph function call. *)
  let nv = Arith.Var.fresh "n" in
  let en = Arith.Expr.var nv in
  let b = Builder.create () in
  Builder.function_ b ~name:"subfn"
    ~params:[ ("x", Struct_info.tensor [ en ] f32) ]
    (fun params ->
      match params with
      | [ x ] ->
          let y =
            Builder.emit b (Expr.call_op "add" [ Expr.Var x; Expr.Var x ])
          in
          Expr.Var y
      | _ -> assert false);
  let mod_ = Builder.module_ b in
  let caller_n = sym "cn" in
  let arg =
    Expr.Var
      (Rvar.fresh "y" (Struct_info.tensor [ Arith.Expr.mul caller_n (e 2) ] f32))
  in
  Alcotest.(check si_testable) "global call propagates caller shape"
    (Struct_info.tensor [ Arith.Expr.mul caller_n (e 2) ] f32)
    (Deduce.expr_sinfo mod_ (Expr.call_fn (Expr.Global_var "subfn") [ arg ]))

(* ---------- builder + well-formed + printer ---------- *)

let build_mlp () =
  let nv = Arith.Var.fresh "n" in
  let en = Arith.Expr.var nv in
  let b = Builder.create () in
  Builder.function_ b ~name:"main"
    ~params:
      [ ("x", Struct_info.tensor [ en; e 8 ] f32);
        ("w1", Struct_info.tensor [ e 8; e 16 ] f32);
        ("w2", Struct_info.tensor [ e 16; e 4 ] f32) ]
    (fun params ->
      match params with
      | [ x; w1; w2 ] ->
          Builder.dataflow b (fun () ->
              let h =
                Builder.emit b (Expr.call_op "matmul" [ Expr.Var x; Expr.Var w1 ])
              in
              let a = Builder.emit b (Expr.call_op "relu" [ Expr.Var h ]) in
              let out =
                Builder.emit b (Expr.call_op "matmul" [ Expr.Var a; Expr.Var w2 ])
              in
              Expr.Var out)
      | _ -> assert false);
  (Builder.module_ b, nv)

let test_builder_and_wf () =
  let mod_, _ = build_mlp () in
  Well_formed.assert_well_formed mod_;
  let f = Option.get (Ir_module.find_func mod_ "main") in
  (match f.Expr.ret_sinfo with
  | Struct_info.Tensor { shape = Known [ _; last ]; _ } ->
      Alcotest.(check bool) "ret shape last dim is 4" true
        (Arith.Simplify.prove_equal last (e 4))
  | si -> Alcotest.failf "unexpected ret sinfo %s" (Struct_info.to_string si));
  let blocks, _ = Expr.body_blocks f in
  Alcotest.(check int) "one dataflow block" 1 (List.length blocks);
  Alcotest.(check bool) "block is dataflow" true (List.hd blocks).Expr.dataflow

let test_builder_call_tir () =
  let nv = Arith.Var.fresh "n" in
  let en = Arith.Expr.var nv in
  let b = Builder.create () in
  let mm = Tir.Kernels.matmul_weights ~name:"mm" ~m:en ~k:(e 128) ~n:(e 256) f32 in
  Builder.function_ b ~name:"main"
    ~params:
      [ ("x", Struct_info.tensor [ en; e 128 ] f32);
        ("w", Struct_info.tensor [ e 128; e 256 ] f32) ]
    (fun params ->
      match params with
      | [ x; w ] ->
          let out =
            Builder.emit_call_tir b mm
              [ Expr.Var x; Expr.Var w ]
              ~out:(Struct_info.tensor [ en; e 256 ] f32)
              ()
          in
          Expr.Var out
      | _ -> assert false);
  let mod_ = Builder.module_ b in
  Well_formed.assert_well_formed mod_;
  Alcotest.(check bool) "tir func in module" true
    (Ir_module.find_tir mod_ "mm" <> None);
  let f = Option.get (Ir_module.find_func mod_ "main") in
  Alcotest.(check (list string)) "call_tir recorded" [ "mm" ]
    (Expr.callee_tir_names f)

let test_wf_detects_violations () =
  (* Use-before-def. *)
  let ghost = Rvar.fresh "ghost" (Struct_info.tensor [ e 2 ] f32) in
  let v = Rvar.fresh "v" (Struct_info.tensor [ e 2 ] f32) in
  let body =
    Expr.Seq
      {
        blocks =
          [ { Expr.dataflow = false;
              bindings = [ Expr.Bind (v, Expr.call_op "exp" [ Expr.Var ghost ]) ] } ];
        body = Expr.Var v;
      }
  in
  let f =
    { Expr.params = []; ret_sinfo = Rvar.sinfo v; body; attrs = [] }
  in
  let mod_ = Ir_module.add_func Ir_module.empty "bad" f in
  let violations = Well_formed.check_module mod_ in
  Alcotest.(check bool) "use-before-def flagged" true
    (List.exists
       (fun (x : Well_formed.violation) ->
         x.func = "bad"
         && String.length x.message > 0
         && String.sub x.message 0 8 = "variable")
       violations);
  (* call_tir to a missing kernel. *)
  let u = Rvar.fresh "u" (Struct_info.tensor [ e 2 ] f32) in
  let body2 =
    Expr.Seq
      {
        blocks =
          [ { Expr.dataflow = false;
              bindings =
                [ Expr.Bind
                    ( u,
                      Expr.call_tir "nope" []
                        ~out:(Struct_info.tensor [ e 2 ] f32)
                        () ) ] } ];
        body = Expr.Var u;
      }
  in
  let f2 = { Expr.params = []; ret_sinfo = Rvar.sinfo u; body = body2; attrs = [] } in
  let mod2 = Ir_module.add_func Ir_module.empty "bad2" f2 in
  Alcotest.(check bool) "missing kernel flagged" true
    (Well_formed.check_module mod2 <> [])

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_printer_smoke () =
  let mod_, _ = build_mlp () in
  let text = Printer.module_to_string mod_ in
  Alcotest.(check bool) "mentions main" true (contains ~sub:"def main" text);
  Alcotest.(check bool) "prints dataflow block" true
    (contains ~sub:"with dataflow():" text);
  Alcotest.(check bool) "prints annotations" true
    (contains ~sub:"Tensor((n, 16), \"f32\")" text)

let () =
  Alcotest.run "relax_core"
    [ ( "struct_info",
        [ Alcotest.test_case "table 1 annotations" `Quick test_struct_info_table1;
          Alcotest.test_case "equality and subsumption" `Quick
            test_struct_info_equal_subsume;
          Alcotest.test_case "coarse/subst" `Quick test_struct_info_coarse_subst ]
      );
      ( "deduce",
        [ Alcotest.test_case "elementwise" `Quick test_deduce_elementwise;
          Alcotest.test_case "matmul" `Quick test_deduce_matmul;
          Alcotest.test_case "figure 3 chain" `Quick test_deduce_figure3;
          Alcotest.test_case "reductions etc" `Quick test_deduce_reductions_etc;
          Alcotest.test_case "figure 7 interprocedural" `Quick
            test_deduce_figure7_interprocedural;
          Alcotest.test_case "global subgraph call" `Quick
            test_deduce_global_call ] );
      ( "builder",
        [ Alcotest.test_case "mlp + well-formed" `Quick test_builder_and_wf;
          Alcotest.test_case "call_tir" `Quick test_builder_call_tir ] );
      ( "well_formed",
        [ Alcotest.test_case "violations" `Quick test_wf_detects_violations ] );
      ("printer", [ Alcotest.test_case "smoke" `Quick test_printer_smoke ]) ]
