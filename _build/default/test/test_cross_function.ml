(* Cross-function execution: the Figure 7 story end to end — a
   subgraph function with its own symbolic signature is called from
   main; the deduced caller annotation, the runtime boundary checks,
   the compiled Call_func path, and dynamic-shape propagation must all
   line up. Also covers the where/clip operators. *)

open Relax_core

let e = Arith.Expr.const
let f32 = Base.Dtype.F32

let build_modular () =
  let b = Builder.create () in
  (* double(x: (k, 4)) -> (k, 4): x + x *)
  let kv = Arith.Var.fresh "k" in
  Builder.function_ b ~name:"double"
    ~params:[ ("x", Struct_info.tensor [ Arith.Expr.var kv; e 4 ] f32) ]
    (fun params ->
      match params with
      | [ x ] ->
          Builder.dataflow b (fun () ->
              Expr.Var (Builder.emit b (Expr.call_op "add" [ Expr.Var x; Expr.Var x ])))
      | _ -> assert false);
  (* main(y: (n, 4)) -> (n, 4): relu(double(double(y))) *)
  let nv = Arith.Var.fresh "n" in
  Builder.function_ b ~name:"main"
    ~params:[ ("y", Struct_info.tensor [ Arith.Expr.var nv; e 4 ] f32) ]
    (fun params ->
      match params with
      | [ y ] ->
          let d1 =
            Builder.emit b (Expr.call_fn (Expr.Global_var "double") [ Expr.Var y ])
          in
          let d2 =
            Builder.emit b (Expr.call_fn (Expr.Global_var "double") [ Expr.Var d1 ])
          in
          Builder.dataflow b (fun () ->
              Expr.Var (Builder.emit b (Expr.call_op "relu" [ Expr.Var d2 ])))
      | _ -> assert false);
  (Builder.module_ b, nv)

let test_interprocedural_runtime () =
  let mod_, nv = build_modular () in
  Well_formed.assert_well_formed mod_;
  (* Deduction through the call: main's intermediate keeps (n, 4). *)
  let main = Option.get (Ir_module.find_func mod_ "main") in
  (match main.Expr.ret_sinfo with
  | Struct_info.Tensor { shape = Struct_info.Known [ _; c4 ]; _ } ->
      Alcotest.(check bool) "ret (n, 4)" true (Arith.Simplify.prove_equal c4 (e 4))
  | si -> Alcotest.failf "unexpected %s" (Struct_info.to_string si));
  let program =
    Relax_passes.Pipeline.compile
      ~options:
        { Relax_passes.Pipeline.default_options with
          Relax_passes.Pipeline.upper_bounds = [ (nv, 8) ] }
      ~device:Runtime.Device.rtx4090 mod_
  in
  let vm = Runtime.Vm.create `Numeric program in
  List.iter
    (fun n ->
      let y = Base.Ndarray.random_uniform ~seed:n f32 [| n; 4 |] in
      let out =
        Runtime.Vm.value_tensor (Runtime.Vm.run vm "main" [ Runtime.Vm.tensor y ])
      in
      let expect =
        Base.Ndarray.init_float f32 [| n; 4 |] (fun i ->
            Float.max 0.0 (4.0 *. Base.Ndarray.get_float y i))
      in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d relu(4y) through two subgraph calls" n)
        true
        (Base.Ndarray.equal_approx ~eps:1e-6 expect out))
    [ 1; 3; 6 ];
  (* The boundary check on the callee fires for a bad rank. *)
  match
    Runtime.Vm.run vm "double"
      [ Runtime.Vm.tensor (Base.Ndarray.create f32 [| 4 |]) ]
  with
  | _ -> Alcotest.fail "rank check at the function boundary missing"
  | exception Runtime.Vm.Vm_error _ -> ()

let test_where_clip_ops () =
  let nv = Arith.Var.fresh "n" in
  let en = Arith.Expr.var nv in
  let b = Builder.create () in
  Builder.function_ b ~name:"main"
    ~params:
      [ ("c", Struct_info.tensor [ en ] f32);
        ("a", Struct_info.tensor [ en ] f32);
        ("bb", Struct_info.tensor [ en ] f32) ]
    (fun params ->
      match params with
      | [ c; a; bb ] ->
          Builder.dataflow b (fun () ->
              let w =
                Builder.emit b
                  (Expr.call_op "where" [ Expr.Var c; Expr.Var a; Expr.Var bb ])
              in
              Expr.Var (Builder.emit b (Expr.call_op "clip" [ Expr.Var w ])))
      | _ -> assert false);
  let program =
    Relax_passes.Pipeline.compile
      ~options:
        { Relax_passes.Pipeline.default_options with
          Relax_passes.Pipeline.upper_bounds = [ (nv, 8) ] }
      ~device:Runtime.Device.rtx4090 (Builder.module_ b)
  in
  let vm = Runtime.Vm.create `Numeric program in
  let c = Base.Ndarray.of_float_list f32 [| 4 |] [ 1.; 0.; 1.; 0. ] in
  let a = Base.Ndarray.of_float_list f32 [| 4 |] [ 5.; 5.; -5.; -5. ] in
  let bb = Base.Ndarray.of_float_list f32 [| 4 |] [ 0.5; 0.5; 0.5; 0.5 ] in
  let out =
    Runtime.Vm.value_tensor
      (Runtime.Vm.run vm "main"
         [ Runtime.Vm.tensor c; Runtime.Vm.tensor a; Runtime.Vm.tensor bb ])
  in
  Alcotest.(check (list (float 1e-9))) "where then clip to [-1, 1]"
    [ 1.0; 0.5; -1.0; 0.5 ]
    (Base.Ndarray.to_float_list out)

let () =
  Alcotest.run "cross_function"
    [ ( "calls",
        [ Alcotest.test_case "figure 7 at runtime" `Quick
            test_interprocedural_runtime ] );
      ( "ops",
        [ Alcotest.test_case "where/clip" `Quick test_where_clip_ops ] ) ]
