(* Structured control flow (If): builder, deduction join, lowering,
   VM Cond execution, eager equivalence — and the paper's §5.1 runtime
   dispatch pattern (generated matrix-vector kernel at batch 1,
   library GEMM otherwise) expressed with a symbolic condition. *)

open Relax_core

let e = Arith.Expr.const
let f32 = Base.Dtype.F32

(* main(x: (n, 4)) = if n - 1 then exp(x) else relu(x) *)
let build_branching () =
  let nv = Arith.Var.fresh "n" in
  let en = Arith.Expr.var nv in
  let b = Builder.create () in
  Builder.function_ b ~name:"main"
    ~params:[ ("x", Struct_info.tensor [ en; e 4 ] f32) ]
    (fun params ->
      match params with
      | [ x ] ->
          let v =
            Builder.emit_if b
              ~cond:(Expr.Prim_value (Arith.Expr.sub en (e 1)))
              ~then_:(fun () ->
                let a = Builder.emit b (Expr.call_op "exp" [ Expr.Var x ]) in
                let c = Builder.emit b (Expr.call_op "relu" [ Expr.Var a ]) in
                Expr.Var c)
              ~else_:(fun () ->
                Expr.Var (Builder.emit b (Expr.call_op "relu" [ Expr.Var x ])))
              ()
          in
          Expr.Var v
      | _ -> assert false);
  (Builder.module_ b, nv)

let compile mod_ nv =
  Relax_passes.Pipeline.compile
    ~options:
      { Relax_passes.Pipeline.default_options with
        Relax_passes.Pipeline.upper_bounds = [ (nv, 8) ] }
    ~device:Runtime.Device.rtx4090 mod_

let test_if_deduction_join () =
  let mod_, _ = build_branching () in
  let f = Option.get (Ir_module.find_func mod_ "main") in
  (* Both branches have the same (n, 4) annotation: the join keeps it. *)
  match f.Expr.ret_sinfo with
  | Struct_info.Tensor { shape = Struct_info.Known [ _; last ]; _ } ->
      Alcotest.(check bool) "joined shape" true
        (Arith.Simplify.prove_equal last (e 4))
  | si -> Alcotest.failf "unexpected %s" (Struct_info.to_string si)

let test_if_both_paths_numeric () =
  let mod_, nv = build_branching () in
  let program = compile mod_ nv in
  let vm = Runtime.Vm.create `Numeric program in
  let run n =
    let x = Base.Ndarray.random_uniform ~seed:9 f32 [| n; 4 |] in
    let out =
      Runtime.Vm.value_tensor (Runtime.Vm.run vm "main" [ Runtime.Vm.tensor x ])
    in
    (x, out)
  in
  (* n = 1: else branch (relu only). *)
  let x1, out1 = run 1 in
  let expect1 =
    Base.Ndarray.init_float f32 [| 1; 4 |] (fun i ->
        Float.max 0.0 (Base.Ndarray.get_float x1 i))
  in
  Alcotest.(check bool) "n=1 takes else branch" true
    (Base.Ndarray.equal_approx ~eps:1e-9 expect1 out1);
  (* n = 3: then branch (relu (exp x)) — exp is positive, so = exp x. *)
  let x3, out3 = run 3 in
  let expect3 =
    Base.Ndarray.init_float f32 [| 3; 4 |] (fun i ->
        exp (Base.Ndarray.get_float x3 i))
  in
  Alcotest.(check bool) "n=3 takes then branch" true
    (Base.Ndarray.equal_approx ~eps:1e-9 expect3 out3)

let test_if_matches_eager () =
  let mod_, nv = build_branching () in
  let program = compile mod_ nv in
  let vm = Runtime.Vm.create `Numeric program in
  List.iter
    (fun n ->
      let args =
        [ Runtime.Vm.tensor (Base.Ndarray.random_uniform ~seed:(n + 1) f32 [| n; 4 |]) ]
      in
      let eager_out, _ = Baselines.Eager.run `Numeric mod_ args in
      let compiled_out = Runtime.Vm.run vm "main" args in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d eager == compiled" n)
        true
        (Base.Ndarray.equal_approx ~eps:1e-9
           (Runtime.Vm.value_tensor eager_out)
           (Runtime.Vm.value_tensor compiled_out)))
    [ 1; 2; 5 ]

let test_if_splits_dataflow () =
  (* The If binding lands outside the dataflow region (§3.1). *)
  let mod_, _ = build_branching () in
  let f = Option.get (Ir_module.find_func mod_ "main") in
  Well_formed.assert_well_formed mod_;
  let blocks, _ = Expr.body_blocks f in
  Alcotest.(check bool) "if binding in a non-dataflow block" true
    (List.exists
       (fun (blk : Expr.block) ->
         (not blk.Expr.dataflow)
         && List.exists
              (fun bd ->
                match Expr.bound_expr bd with Expr.If _ -> true | _ -> false)
              blk.Expr.bindings)
       blocks)

let test_batch_dispatch_pattern () =
  (* The §5.1 pattern: a runtime dispatch on the symbolic batch size
     between the compiler's matrix-vector kernel and the library GEMM —
     expressible directly in the IR. *)
  let nv = Arith.Var.fresh "n" in
  let en = Arith.Expr.var nv in
  let b = Builder.create () in
  let gemv =
    Tir.Kernels.matmul_weights ~name:"gemv" ~m:en ~k:(e 4) ~n:(e 6) f32
  in
  Builder.function_ b ~name:"main"
    ~params:
      [ ("x", Struct_info.tensor [ en; e 4 ] f32);
        ("w", Struct_info.tensor [ e 4; e 6 ] f32) ]
    (fun params ->
      match params with
      | [ x; w ] ->
          let v =
            Builder.emit_if b
              ~cond:(Expr.Prim_value (Arith.Expr.sub en (e 1)))
              ~then_:(fun () ->
                (* batch > 1: vendor library *)
                Expr.Var
                  (Builder.emit_call_dps_library b "cublas.matmul"
                     [ Expr.Var x; Expr.Var w ]
                     ~out:(Struct_info.tensor [ en; e 6 ] f32)
                     ()))
              ~else_:(fun () ->
                (* batch = 1: generated matrix-vector kernel *)
                Expr.Var
                  (Builder.emit_call_tir b gemv
                     [ Expr.Var x; Expr.Var w ]
                     ~out:(Struct_info.tensor [ en; e 6 ] f32)
                     ()))
              ()
          in
          Expr.Var v
      | _ -> assert false);
  let program = compile (Builder.module_ b) nv in
  let vm = Runtime.Vm.create `Numeric program in
  let w = Base.Ndarray.random_uniform ~seed:2 f32 [| 4; 6 |] in
  let check n =
    let x = Base.Ndarray.random_uniform ~seed:n f32 [| n; 4 |] in
    let out =
      Runtime.Vm.value_tensor
        (Runtime.Vm.run vm "main" [ Runtime.Vm.tensor x; Runtime.Vm.tensor w ])
    in
    (* reference through the TIR kernel *)
    let y = Base.Ndarray.create f32 [| n; 6 |] in
    Tir.Interp.run gemv [ x; w; y ];
    Alcotest.(check bool) (Printf.sprintf "n=%d" n) true
      (Base.Ndarray.equal_approx ~eps:1e-6 y out)
  in
  check 1;
  check 4;
  let st = Runtime.Vm.stats vm in
  Alcotest.(check bool) "library path taken once (n=4)" true
    (st.Runtime.Vm.lib_calls = 1);
  Alcotest.(check bool) "generated path taken once (n=1)" true
    (st.Runtime.Vm.kernel_launches = 1)

let () =
  Alcotest.run "control_flow"
    [ ( "if",
        [ Alcotest.test_case "deduction join" `Quick test_if_deduction_join;
          Alcotest.test_case "both paths numeric" `Quick
            test_if_both_paths_numeric;
          Alcotest.test_case "eager equivalence" `Quick test_if_matches_eager;
          Alcotest.test_case "splits dataflow region" `Quick
            test_if_splits_dataflow;
          Alcotest.test_case "batch-1 dispatch pattern (§5.1)" `Quick
            test_batch_dispatch_pattern ] ) ]
