test/test_control_flow.mli:
