test/test_pipeline.ml: Alcotest Arith Base Builder Expr Float Ir_module List Option Printf Relax_core Relax_passes Runtime String Struct_info Tir
