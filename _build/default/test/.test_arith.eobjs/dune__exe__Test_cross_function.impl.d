test/test_cross_function.ml: Alcotest Arith Base Builder Expr Float Ir_module List Option Printf Relax_core Relax_passes Runtime Struct_info Well_formed
