test/test_paged_cache.mli:
