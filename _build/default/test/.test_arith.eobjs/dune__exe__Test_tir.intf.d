test/test_tir.mli:
