test/test_cross_function.mli:
