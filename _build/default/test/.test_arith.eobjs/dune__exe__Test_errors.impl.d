test/test_errors.ml: Alcotest Arith Array Base Builder Deduce Expr Ir_module List Op Option Relax_core Relax_passes Runtime Rvar Struct_info
