test/test_control_flow.ml: Alcotest Arith Base Baselines Builder Expr Float Ir_module List Option Printf Relax_core Relax_passes Runtime Struct_info Tir Well_formed
