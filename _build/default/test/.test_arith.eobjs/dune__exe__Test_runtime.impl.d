test/test_runtime.ml: Alcotest Arith Base Builder Expr Float Ir_module List Option Printf Relax_core Relax_passes Runtime Rvar Struct_info Tir
