test/test_baselines.ml: Alcotest Arith Base Baselines Builder Expr Frontend List Option Printf Relax_core Relax_passes Runtime Struct_info
