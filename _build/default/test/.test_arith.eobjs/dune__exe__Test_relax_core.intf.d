test/test_relax_core.mli:
