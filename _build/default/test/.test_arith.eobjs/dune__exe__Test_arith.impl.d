test/test_arith.ml: Alcotest Analyzer Arith Array Bounds Expr Gen List QCheck QCheck_alcotest Simplify Var
