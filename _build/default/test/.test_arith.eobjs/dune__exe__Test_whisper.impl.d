test/test_whisper.ml: Alcotest Base Baselines Frontend Printf Relax_passes Runtime
