test/test_whisper.mli:
