test/test_relax_core.ml: Alcotest Arith Base Builder Deduce Expr Format Ir_module List Option Printer Relax_core Rvar String Struct_info Tir Well_formed
