test/test_tir.ml: Alcotest Arith Base Dtype Float List Ndarray Tir
