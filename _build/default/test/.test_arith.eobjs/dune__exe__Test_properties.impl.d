test/test_properties.ml: Alcotest Arith Array Base Baselines Builder Expr Gen Ir_module List Option Printf QCheck QCheck_alcotest Relax_core Relax_passes Runtime Rvar String Struct_info Well_formed
