test/test_schedule.ml: Alcotest Arith Base Frontend List QCheck QCheck_alcotest Relax_passes Runtime Tir
