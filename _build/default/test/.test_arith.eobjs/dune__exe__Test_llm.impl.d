test/test_llm.ml: Alcotest Base Frontend List Printf Relax_passes Runtime
