test/test_paged_cache.ml: Alcotest Arith Base Builder Expr Frontend Ir_module List Option Printf Relax_core Relax_passes Runtime Struct_info
