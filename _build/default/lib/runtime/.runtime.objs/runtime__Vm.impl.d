lib/runtime/vm.ml: Allocator Arith Array Base Device Float Format Hashtbl Library List Relax_core Tir
