lib/runtime/device.mli: Base
