lib/runtime/library.ml: Array Base Device Hashtbl List String
