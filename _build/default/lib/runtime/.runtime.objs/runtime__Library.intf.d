lib/runtime/library.mli: Base Device
