lib/runtime/allocator.ml: Hashtbl List
