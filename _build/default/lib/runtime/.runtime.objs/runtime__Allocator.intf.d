lib/runtime/allocator.mli:
