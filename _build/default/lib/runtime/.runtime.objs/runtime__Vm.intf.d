lib/runtime/vm.mli: Allocator Arith Base Device Relax_core
