lib/runtime/device.ml: Base Float List
