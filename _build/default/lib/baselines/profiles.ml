type t = {
  name : string;
  supports : Runtime.Device.t -> bool;
  options :
    Runtime.Device.t ->
    Relax_passes.Pipeline.options ->
    Relax_passes.Pipeline.options;
  device : Runtime.Device.t -> Runtime.Device.t;
  per_launch_overhead_us : float;
  per_step_overhead_us : float;
  static_kv : bool;
}

let id_options _ o = o
let id_device d = d
let is_gpu_server (d : Runtime.Device.t) =
  match d.Runtime.Device.backend with
  | Runtime.Device.Cuda | Runtime.Device.Rocm -> true
  | _ -> false

let relax =
  {
    name = "Relax";
    supports = (fun _ -> true);
    options = id_options;
    device = id_device;
    per_launch_overhead_us = 0.0;
    per_step_overhead_us = 2.0;
    static_kv = false;
  }

let hf_eager =
  {
    name = "HF (eager)";
    supports = (fun _ -> true);
    options =
      (fun _ o ->
        {
          o with
          Relax_passes.Pipeline.fusion = false;
          lib_all_batches = true;  (* PyTorch always calls cuBLAS *)
          memory_plan = false;
          graph_capture = false;
        });
    device = id_device;
    per_launch_overhead_us = Eager.host_overhead_us;
    per_step_overhead_us = 60.0;
    static_kv = false;
  }

let hf_compile =
  {
    name = "HF (compile)";
    supports = is_gpu_server;
    options = (fun _ o -> o);
    device = id_device;
    per_launch_overhead_us = 0.5;
    per_step_overhead_us = 25.0;
    static_kv = true;
  }

let vllm =
  {
    name = "vLLM";
    supports = is_gpu_server;
    options =
      (fun _ o -> { o with Relax_passes.Pipeline.lib_all_batches = true });
    device = id_device;
    per_launch_overhead_us = 0.3;
    per_step_overhead_us = 120.0;  (* continuous-batching scheduler *)
    static_kv = false;
  }

(* llama.cpp: hand-tuned Metal kernels excel; CUDA support is less
   optimized; Android has no GPU kernels at all, so it runs on CPU. *)
let llama_cpp_device (d : Runtime.Device.t) =
  match d.Runtime.Device.backend with
  | Runtime.Device.Metal ->
      {
        d with
        Runtime.Device.name = d.Runtime.Device.name ^ " (llama.cpp)";
        gen_eff = Float.min 0.9 (d.Runtime.Device.gen_eff *. 1.25);
        gen_gemv_eff = Float.min 0.95 (d.Runtime.Device.gen_gemv_eff *. 1.1);
        mem_eff = Float.min 0.92 (d.Runtime.Device.mem_eff *. 1.12);
        gen_gemm_traffic = Float.max 1.2 (d.Runtime.Device.gen_gemm_traffic *. 0.8);
      }
  | Runtime.Device.Cuda | Runtime.Device.Rocm ->
      {
        d with
        Runtime.Device.name = d.Runtime.Device.name ^ " (llama.cpp)";
        gen_eff = d.Runtime.Device.gen_eff *. 0.8;
        mem_eff = d.Runtime.Device.mem_eff *. 0.88;
      }
  | Runtime.Device.Opencl ->
      (* CPU fallback sharing the same LPDDR bus. *)
      {
        d with
        Runtime.Device.name = d.Runtime.Device.name ^ " (llama.cpp CPU)";
        backend = Runtime.Device.Cpu;
        peak_gflops_f16 = 600.0;
        peak_gflops_f32 = 300.0;
        launch_overhead_us = 0.2;
        gen_eff = 0.7;
        mem_eff = 0.38;
        lib_gemm_eff = 0.0;
        supports_graph_capture = false;
      }
  | Runtime.Device.Vulkan | Runtime.Device.Webgpu | Runtime.Device.Cpu -> d

let llama_cpp =
  {
    name = "llama.cpp";
    supports =
      (fun d ->
        match d.Runtime.Device.backend with
        | Runtime.Device.Webgpu -> false
        | _ -> true);
    options =
      (fun _ o ->
        {
          o with
          Relax_passes.Pipeline.dispatch_library = false;
          graph_capture = false;
        });
    device = llama_cpp_device;
    per_launch_overhead_us = 0.8;
    per_step_overhead_us = 10.0;
    static_kv = false;
  }

let all_llm = [ hf_eager; hf_compile; vllm; llama_cpp; relax ]
