(** Calibrated performance profiles of the paper's baseline systems.

    Each baseline is modeled by the *mechanisms* it has or lacks —
    fusion, vendor-library use, graph capture, static KV cache,
    host-side overheads, platform support — applied to the same model
    and device roofline as Relax (DESIGN.md, substitutions). The code
    paths are our own pipeline under each profile's options; nothing
    of the competitors' implementations is reproduced beyond these
    mechanisms. *)

type t = {
  name : string;
  supports : Runtime.Device.t -> bool;
  options :
    Runtime.Device.t ->
    Relax_passes.Pipeline.options ->
    Relax_passes.Pipeline.options;
      (** pipeline configuration this system corresponds to *)
  device : Runtime.Device.t -> Runtime.Device.t;
      (** device adjustment, e.g. llama.cpp runs CPU-only on Android,
          and its hand-tuned Metal kernels get an efficiency bonus *)
  per_launch_overhead_us : float;  (** host-side cost per kernel *)
  per_step_overhead_us : float;  (** scheduler cost per decode step *)
  static_kv : bool;
      (** torch.compile-style static cache: attention traffic priced
          at the maximum context length regardless of actual length *)
}

val relax : t
(** Our system: the full pipeline, unmodified. *)

val hf_eager : t
(** HuggingFace Transformers + PyTorch eager: no fusion, no library
    epilogues beyond per-op cuBLAS, per-op Python dispatch. *)

val hf_compile : t
(** PyTorch compile mode: fused + library + CUDA graphs, but static
    KV cache and no Apple support. *)

val vllm : t
(** vLLM v0.5: library-dominant kernels, paged cache, CUDA graphs,
    per-step scheduling overhead; CUDA/ROCm only. *)

val llama_cpp : t
(** Hand-optimized kernels: strongest on Apple Metal, weaker on
    discrete GPUs, CPU-only on Android. *)

val all_llm : t list
(** The Figure 14-16 baseline set plus Relax, in plot order. *)
