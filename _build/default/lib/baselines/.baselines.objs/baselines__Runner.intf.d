lib/baselines/runner.mli: Arith Frontend Profiles Relax_core Runtime
