lib/baselines/profiles.mli: Relax_passes Runtime
