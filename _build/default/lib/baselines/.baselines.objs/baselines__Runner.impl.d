lib/baselines/runner.ml: Arith Frontend List Profiles Relax_core Relax_passes Runtime
