lib/baselines/profiles.ml: Eager Float Relax_passes Runtime
