lib/baselines/eager.mli: Relax_core Runtime
