lib/baselines/eager.ml: Arith Array Base Expr Format Hashtbl Ir_module List Op Relax_core Runtime Rvar Struct_info Tir
