(** Execute a workload under a baseline profile and report simulated
    time — the benchmark harness's measurement primitive. *)

type workload = {
  mod_ : Relax_core.Ir_module.t;
  entry : string;
  bounds : (Arith.Var.t * int) list;
  args : ctx:int -> Runtime.Vm.value list;  (** shadow arguments *)
  max_context : int;
}

val of_llm : Frontend.Llm.built -> workload
val of_whisper : Frontend.Whisper.decoder -> workload
val of_encoder : Frontend.Encoder.t -> workload

val step_us :
  Profiles.t ->
  device:Runtime.Device.t ->
  workload ->
  ctx:int ->
  float option
(** Average simulated time of one entry invocation (three timed
    repetitions; graph capture amortizes over the replays), plus the
    profile's host overheads. [None] when the profile does not
    support the device. A static-KV profile is charged at
    [min max_context 2048] cache length. *)

val memory_stats :
  plan:bool ->
  device:Runtime.Device.t ->
  workload ->
  ctxs:int list ->
  int * int
(** [(peak_bytes, alloc_count)] after running the workload at the
    successive context lengths — Table 2's measurement. [plan] picks
    static planning + planned allocator vs no planning + runtime
    pool. *)
