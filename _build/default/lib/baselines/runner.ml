type workload = {
  mod_ : Relax_core.Ir_module.t;
  entry : string;
  bounds : (Arith.Var.t * int) list;
  args : ctx:int -> Runtime.Vm.value list;
  max_context : int;
}

let of_llm (built : Frontend.Llm.built) =
  {
    mod_ = built.Frontend.Llm.mod_;
    entry = built.Frontend.Llm.entry;
    bounds = Frontend.Llm.upper_bound_hints built;
    args = (fun ~ctx -> Frontend.Llm.args_for built ~ctx ~mode:`Shadow ());
    max_context = built.Frontend.Llm.config.Frontend.Configs.max_context;
  }

let of_whisper (dec : Frontend.Whisper.decoder) =
  {
    mod_ = dec.Frontend.Whisper.mod_;
    entry = dec.Frontend.Whisper.entry;
    bounds = Frontend.Whisper.upper_bound_hints dec;
    args = (fun ~ctx -> Frontend.Whisper.decoder_args dec ~ctx ~mode:`Shadow);
    max_context = dec.Frontend.Whisper.sizes.Frontend.Whisper.text_ctx;
  }

let of_encoder (enc : Frontend.Encoder.t) =
  {
    mod_ = enc.Frontend.Encoder.mod_;
    entry = enc.Frontend.Encoder.entry;
    bounds = [];
    args = (fun ~ctx:_ -> Frontend.Encoder.args_for enc ~mode:`Shadow);
    max_context = 1;
  }

let reps = 3

let step_us (profile : Profiles.t) ~device workload ~ctx =
  if not (profile.Profiles.supports device) then None
  else begin
    let device = profile.Profiles.device device in
    let options =
      profile.Profiles.options device
        {
          Relax_passes.Pipeline.default_options with
          Relax_passes.Pipeline.upper_bounds = workload.bounds;
        }
    in
    let ctx_eff =
      if profile.Profiles.static_kv then min workload.max_context 2048
      else ctx
    in
    let program =
      Relax_passes.Pipeline.compile ~options ~device workload.mod_
    in
    let vm = Runtime.Vm.create (`Timed device) program in
    let args = workload.args ~ctx:ctx_eff in
    for _ = 1 to reps do
      ignore (Runtime.Vm.run vm workload.entry args)
    done;
    let st = Runtime.Vm.stats vm in
    let per_step =
      (st.Runtime.Vm.elapsed_us /. float_of_int reps)
      +. (float_of_int st.Runtime.Vm.kernel_launches
          /. float_of_int reps
         *. profile.Profiles.per_launch_overhead_us)
      +. profile.Profiles.per_step_overhead_us
    in
    Some per_step
  end

let memory_stats ~plan ~device workload ~ctxs =
  let options =
    {
      Relax_passes.Pipeline.default_options with
      Relax_passes.Pipeline.upper_bounds = workload.bounds;
      memory_plan = plan;
      graph_capture = plan;
    }
  in
  let program = Relax_passes.Pipeline.compile ~options ~device workload.mod_ in
  let alloc = Runtime.Allocator.create (if plan then `Planned else `Pooling) in
  let vm = Runtime.Vm.create ~allocator:alloc (`Timed device) program in
  List.iter
    (fun ctx -> ignore (Runtime.Vm.run vm workload.entry (workload.args ~ctx)))
    ctxs;
  (Runtime.Allocator.peak_bytes alloc, Runtime.Allocator.alloc_count alloc)
