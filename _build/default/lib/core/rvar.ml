type t = { name : string; id : int; sinfo : Struct_info.t }

let fresh name sinfo = { name; id = Base.Id.fresh (); sinfo }
let with_sinfo t sinfo = { t with sinfo }
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let name t = t.name
let sinfo t = t.sinfo
let pp fmt t = Format.pp_print_string fmt t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
