type fn_ctx = {
  fn_name : string;
  fn_params : Rvar.t list;
  mutable done_blocks : Expr.block list; (* reverse order *)
  mutable cur_bindings : Expr.binding list; (* reverse order *)
  mutable cur_dataflow : bool;
}

type t = {
  mutable mod_ : Ir_module.t;
  mutable fn : fn_ctx option;
  mutable tir_names : (Tir.Prim_func.t * string) list;
      (** physical-identity cache so re-adding the same kernel object
          reuses its global name *)
}

let create ?(mod_ = Ir_module.empty) () = { mod_; fn = None; tir_names = [] }
let module_ t = t.mod_

let add_tir t f =
  match List.find_opt (fun (g, _) -> g == f) t.tir_names with
  | Some (_, name) -> name
  | None ->
      let mod_, name = Ir_module.add_tir_fresh t.mod_ f in
      t.mod_ <- mod_;
      t.tir_names <- (f, name) :: t.tir_names;
      name

let current_fn t =
  match t.fn with
  | Some fn -> fn
  | None -> invalid_arg "Builder: no function under construction"

(* Close the block being accumulated, if non-empty. *)
let flush_block fn =
  match fn.cur_bindings with
  | [] -> ()
  | bindings ->
      fn.done_blocks <-
        { Expr.dataflow = fn.cur_dataflow; bindings = List.rev bindings }
        :: fn.done_blocks;
      fn.cur_bindings <- []

let push_binding t binding =
  let fn = current_fn t in
  fn.cur_bindings <- binding :: fn.cur_bindings

let dataflow t body =
  let fn = current_fn t in
  flush_block fn;
  fn.cur_dataflow <- true;
  let result = body () in
  flush_block fn;
  fn.cur_dataflow <- false;
  result

let emit t ?name e =
  let sinfo = Deduce.expr_sinfo t.mod_ e in
  let name =
    match name with
    | Some n -> n
    | None ->
        let fn = current_fn t in
        Printf.sprintf "lv%d"
          (List.length fn.cur_bindings
          + List.fold_left
              (fun acc (b : Expr.block) -> acc + List.length b.Expr.bindings)
              0 fn.done_blocks)
  in
  let v = Rvar.fresh name sinfo in
  push_binding t (Expr.Bind (v, e));
  v

let emit_match_cast t ?(name = "mc") e sinfo =
  let v = Rvar.fresh name sinfo in
  push_binding t (Expr.Match_cast (v, e, sinfo));
  v

(* Run a branch callback with a fresh binding collector, returning the
   branch body expression. *)
let capture_branch t body =
  let fn = current_fn t in
  flush_block fn;
  let saved_blocks = fn.done_blocks and saved_df = fn.cur_dataflow in
  fn.done_blocks <- [];
  fn.cur_dataflow <- false;
  let result =
    try body ()
    with exn ->
      fn.done_blocks <- saved_blocks;
      fn.cur_dataflow <- saved_df;
      raise exn
  in
  flush_block fn;
  let blocks = List.rev fn.done_blocks in
  fn.done_blocks <- saved_blocks;
  fn.cur_dataflow <- saved_df;
  match blocks with
  | [] -> result
  | _ -> Expr.Seq { blocks; body = result }

let emit_if t ~cond ~then_ ~else_ ?(name = "branch") () =
  let fn = current_fn t in
  let then_body = capture_branch t then_ in
  let else_body = capture_branch t else_ in
  let e = Expr.If { cond; then_ = then_body; else_ = else_body } in
  let sinfo = Deduce.expr_sinfo t.mod_ e in
  let v = Rvar.fresh name sinfo in
  (* Control flow may not live inside a dataflow block: emit the If
     into a plain block, splitting the dataflow region around it. *)
  let was_df = fn.cur_dataflow in
  flush_block fn;
  fn.cur_dataflow <- false;
  push_binding t (Expr.Bind (v, e));
  flush_block fn;
  fn.cur_dataflow <- was_df;
  v

let emit_call_tir t kernel args ~out ?(sym_args = []) ?name () =
  let fname = add_tir t kernel in
  emit t ?name (Expr.call_tir fname args ~out ~sym_args ())

let emit_call_tir_inplace t kernel args ~out_index ~out ?(sym_args = []) ?name () =
  let fname = add_tir t kernel in
  emit t ?name (Expr.call_tir_inplace fname args ~out_index ~out ~sym_args ())

let emit_call_dps_library t fname args ~out ?name () =
  emit t ?name (Expr.call_dps_library fname args ~out)

let function_ t ~name ~params ?(attrs = []) body =
  if t.fn <> None then
    invalid_arg "Builder.function_: nested function construction";
  let param_vars = List.map (fun (n, si) -> Rvar.fresh n si) params in
  let fn =
    {
      fn_name = name;
      fn_params = param_vars;
      done_blocks = [];
      cur_bindings = [];
      cur_dataflow = false;
    }
  in
  t.fn <- Some fn;
  let result =
    try body param_vars
    with exn ->
      t.fn <- None;
      raise exn
  in
  flush_block fn;
  t.fn <- None;
  let blocks = List.rev fn.done_blocks in
  let body_expr =
    match blocks with
    | [] -> result
    | _ -> Expr.Seq { blocks; body = result }
  in
  let ret_sinfo = Deduce.expr_sinfo t.mod_ result in
  let func =
    { Expr.params = param_vars; ret_sinfo; body = body_expr; attrs }
  in
  t.mod_ <- Ir_module.add_func t.mod_ fn.fn_name func
