(** Relax graph-level expressions, bindings and functions.

    The IR is kept in A-normal form: function bodies are [Seq]
    expressions whose binding blocks bind every intermediate result to
    a variable. Dataflow blocks (§3.1) mark side-effect-free straight-
    line regions that passes may freely reorder or prune.

    Cross-level calls are ordinary [Call] nodes whose callee is the
    primitive operator ["call_tir"] or ["call_dps_library"]; see
    {!call_tir} and {!call_dps_library} for the argument convention
    (Figures 4-5 of the paper). *)

type expr =
  | Var of Rvar.t
  | Const of Base.Ndarray.t
  | Prim_value of Arith.Expr.t  (** symbolic integer as a runtime value *)
  | Shape_expr of Arith.Expr.t list  (** first-class shape value *)
  | Tuple of expr list
  | Tuple_get of expr * int
  | Global_var of string  (** reference to a module-level function *)
  | Extern_func of string  (** external library routine by name *)
  | Op of string  (** primitive graph operator, e.g. ["matmul"] *)
  | Call of call
  | If of { cond : expr; then_ : expr; else_ : expr }
  | Seq of { blocks : block list; body : expr }

and call = {
  callee : expr;
  args : expr list;
  sinfo_args : Struct_info.t list;
      (** explicit output annotations for cross-level calls *)
}

and binding =
  | Bind of Rvar.t * expr
  | Match_cast of Rvar.t * expr * Struct_info.t
      (** asserted annotation; compiled to a runtime shape check *)

and block = { dataflow : bool; bindings : binding list }

type func = {
  params : Rvar.t list;
  ret_sinfo : Struct_info.t;
  body : expr;
  attrs : (string * string) list;
}

(** {1 Constructors} *)

val call_op : string -> expr list -> expr
val call_fn : expr -> expr list -> expr

val call_tir :
  string -> expr list -> out:Struct_info.t -> ?sym_args:Arith.Expr.t list ->
  unit -> expr
(** [call_tir fname args ~out ()] — invoke the module-level tensor
    program [fname] in destination-passing style: the callee receives
    [args], then a fresh output tensor described by [out], then the
    runtime values of [sym_args] (Figure 8's extra symbolic
    arguments). *)

val call_dps_library :
  string -> expr list -> out:Struct_info.t -> expr
(** Like {!call_tir} with an external registry function as callee. *)

val call_tir_inplace :
  string ->
  expr list ->
  out_index:int ->
  out:Struct_info.t ->
  ?sym_args:Arith.Expr.t list ->
  unit ->
  expr
(** In-place variant of {!call_tir}: no output is allocated — the
    kernel mutates argument [out_index], and the call's value is that
    argument (with annotation [out]). Used by the paged KV cache
    extension: the cache is pre-allocated once at the bound and each
    step writes one position. Such calls are effectful and are never
    eliminated by DCE. *)

val as_call_tir :
  expr -> (string * expr list * Struct_info.t * Arith.Expr.t list) option
(** Destructure a [call_tir] call: [(func name, args, out, sym_args)]. *)

val as_call_dps_library : expr -> (string * expr list * Struct_info.t) option

val as_call_tir_inplace :
  expr -> (string * expr list * int * Struct_info.t * Arith.Expr.t list) option

(** {1 Accessors and traversal} *)

val binding_var : binding -> Rvar.t
val bound_expr : binding -> expr

val func_callable_sinfo : func -> Struct_info.t
(** The [Callable] annotation derived from a function's signature. *)

val body_blocks : func -> block list * expr
(** Blocks and final expression of an ANF function body. A non-[Seq]
    body is treated as zero blocks. *)

val map_bindings : (binding -> binding) -> func -> func
(** Rewrite every binding in every block, leaving structure intact. *)

val free_vars : expr -> Rvar.Set.t
(** Graph-level variables not bound within the expression. *)

val free_sym_vars_of_func : func -> Arith.Var.Set.t
(** Symbolic variables used by the function but not introduced by its
    own parameter annotations. Well-formed functions have none. *)

val callee_tir_names : func -> string list
(** Names of tensor programs invoked via [call_tir], in order. *)
