exception Deduce_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Deduce_error s)) fmt

type rule = args:Expr.expr list -> arg_sinfo:Struct_info.t list -> Struct_info.t

type legalized = {
  kernel : Tir.Prim_func.t;
  tensor_args : Expr.expr list;
  sym_args : Arith.Expr.t list;
}

type legalizer =
  args:Expr.expr list ->
  arg_sinfo:Struct_info.t list ->
  out:Struct_info.t ->
  legalized option

type entry = { rule : rule; legalize : legalizer option }

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let register name ?legalize rule =
  if Hashtbl.mem registry name then
    invalid_arg (Printf.sprintf "Op.register: %s already registered" name);
  Hashtbl.replace registry name { rule; legalize }

let deduce_rule name =
  Option.map (fun e -> e.rule) (Hashtbl.find_opt registry name)

let legalizer name =
  Option.bind (Hashtbl.find_opt registry name) (fun e -> e.legalize)

let registered () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

(* ---------- shared helpers ---------- *)

let one = Arith.Expr.const 1

let broadcast_shapes a b =
  let ra = List.length a and rb = List.length b in
  let pad shape by = List.init by (fun _ -> one) @ shape in
  let a = if ra < rb then pad a (rb - ra) else a in
  let b = if rb < ra then pad b (ra - rb) else b in
  let join da db =
    if Arith.Simplify.prove_equal da db then Some da
    else if Arith.Simplify.prove_equal da one then Some db
    else if Arith.Simplify.prove_equal db one then Some da
    else None
  in
  let joined = List.map2 join a b in
  if List.for_all Option.is_some joined then
    Some (List.map Option.get joined)
  else None

let join_dtypes a b =
  match (a, b) with
  | Some da, Some db ->
      if Base.Dtype.equal da db then Some da
      else
        fail "dtype mismatch: %s vs %s" (Base.Dtype.to_string da)
          (Base.Dtype.to_string db)
  | Some d, None | None, Some d -> Some d
  | None, None -> None

let as_tensor op si =
  match si with
  | Struct_info.Tensor t -> t
  | Struct_info.Object | Struct_info.Prim _ | Struct_info.Shape _
  | Struct_info.Tuple _ | Struct_info.Callable _ ->
      fail "%s: expected a Tensor argument, got %s" op
        (Struct_info.to_string si)

let tensor_arg op args arg_sinfo i =
  ignore args;
  match List.nth_opt arg_sinfo i with
  | Some si -> as_tensor op si
  | None -> fail "%s: missing argument %d" op i

let require_dtype op (dt : Base.Dtype.t option) =
  match dt with
  | Some d -> d
  | None -> fail "%s: argument dtype must be known for legalization" op

let known_dims op (si : Struct_info.shape_info) =
  match si with
  | Struct_info.Known dims -> dims
  | Struct_info.Ndim _ | Struct_info.Unknown_rank ->
      fail "%s: symbolic shape must be known for legalization" op

(* ---------- elementwise binary with broadcasting ---------- *)

let binary_rule name : rule =
 fun ~args ~arg_sinfo ->
  match arg_sinfo with
  | [ a; b ] -> (
      ignore args;
      let ta = as_tensor name a and tb = as_tensor name b in
      let dtype = join_dtypes ta.Struct_info.dtype tb.Struct_info.dtype in
      match (ta.Struct_info.shape, tb.Struct_info.shape) with
      | Struct_info.Known da, Struct_info.Known db -> (
          match broadcast_shapes da db with
          | Some dims -> Struct_info.Tensor { shape = Known dims; dtype }
          | None ->
              fail "%s: shapes (%s) and (%s) do not broadcast" name
                (String.concat ", " (List.map Arith.Expr.to_string da))
                (String.concat ", " (List.map Arith.Expr.to_string db)))
      | sa, sb ->
          let rank =
            match (Struct_info.shape_info_ndim sa, Struct_info.shape_info_ndim sb) with
            | Some ra, Some rb -> Struct_info.Ndim (max ra rb)
            | _, _ -> Struct_info.Unknown_rank
          in
          Struct_info.Tensor { shape = rank; dtype })
  | _ -> fail "%s: expected 2 arguments" name

let binary_legalizer name op : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor ta; Struct_info.Tensor tb ] ->
      let da = known_dims name ta.Struct_info.shape in
      let db = known_dims name tb.Struct_info.shape in
      let dtype = require_dtype name (join_dtypes ta.dtype tb.dtype) in
      let kernel =
        if Arith.Simplify.prove_equal_shapes da db then
          Tir.Kernels.binary ~name ~op da dtype
        else if List.length db <= List.length da then
          (* suffix broadcast: db must match the trailing dims of da *)
          Tir.Kernels.broadcast_binary ~name:(name ^ "_bcast") ~op ~lhs:da
            ~rhs:db dtype
        else
          Tir.Kernels.broadcast_binary ~name:(name ^ "_bcast")
            ~op:(fun a b -> op b a)
            ~lhs:db ~rhs:da dtype
      in
      let tensor_args =
        if List.length db <= List.length da then args else List.rev args
      in
      Some { kernel; tensor_args; sym_args = [] }
  | _ -> None

let register_binary name op =
  register name ~legalize:(binary_legalizer name op) (binary_rule name)

(* ---------- elementwise unary ---------- *)

let unary_rule name : rule =
 fun ~args ~arg_sinfo ->
  ignore args;
  match arg_sinfo with
  | [ si ] ->
      let t = as_tensor name si in
      Struct_info.Tensor t
  | _ -> fail "%s: expected 1 argument" name

let unary_legalizer name op : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor t ] ->
      let dims = known_dims name t.Struct_info.shape in
      let dtype = require_dtype name t.Struct_info.dtype in
      Some
        {
          kernel = Tir.Kernels.unary ~name ~op dims dtype;
          tensor_args = args;
          sym_args = [];
        }
  | _ -> None

let register_unary name op =
  register name ~legalize:(unary_legalizer name op) (unary_rule name)

(* ---------- registrations ---------- *)

let () =
  let open Tir.Texpr in
  register_binary "add" (fun a b -> a +. b);
  register_binary "subtract" (fun a b -> a -. b);
  register_binary "multiply" (fun a b -> a *. b);
  register_binary "divide" (fun a b -> a /. b);
  register_binary "maximum" (fun a b -> Binop (Max, a, b));
  register_binary "minimum" (fun a b -> Binop (Min, a, b));
  register_binary "power" (fun a b -> Binop (Pow, a, b));
  register_unary "exp" (fun x -> Unop (Exp, x));
  register_unary "log" (fun x -> Unop (Log, x));
  register_unary "negative" (fun x -> Unop (Neg, x));
  register_unary "sqrt" (fun x -> Unop (Sqrt, x));
  register_unary "rsqrt" (fun x -> Unop (Rsqrt, x));
  register_unary "tanh" (fun x -> Unop (Tanh, x));
  register_unary "sigmoid" (fun x -> Unop (Sigmoid, x));
  register_unary "erf" (fun x -> Unop (Erf, x));
  register_unary "relu" Tir.Kernels.relu;
  register_unary "silu" Tir.Kernels.silu;
  register_unary "gelu" Tir.Kernels.gelu

(* ---------- matmul ---------- *)

let matmul_rule : rule =
 fun ~args ~arg_sinfo ->
  ignore args;
  match arg_sinfo with
  | [ a; b ] -> (
      let ta = as_tensor "matmul" a and tb = as_tensor "matmul" b in
      let dtype = join_dtypes ta.Struct_info.dtype tb.Struct_info.dtype in
      match (ta.Struct_info.shape, tb.Struct_info.shape) with
      | Struct_info.Known da, Struct_info.Known db -> (
          let ra = List.length da and rb = List.length db in
          if ra < 2 || rb < 2 then fail "matmul: inputs must have rank >= 2";
          let k_a = List.nth da (ra - 1) in
          let k_b = List.nth db (rb - 2) in
          if not (Arith.Simplify.prove_equal k_a k_b) then
            fail "matmul: inner dimensions %s and %s do not match"
              (Arith.Expr.to_string k_a) (Arith.Expr.to_string k_b);
          let m = List.nth da (ra - 2) in
          let n = List.nth db (rb - 1) in
          let batch_a = List.filteri (fun i _ -> i < ra - 2) da in
          let batch_b = List.filteri (fun i _ -> i < rb - 2) db in
          match (batch_a, batch_b) with
          | batch, [] | [], batch ->
              Struct_info.tensor (batch @ [ m; n ])
                (match dtype with Some d -> d | None -> Base.Dtype.F32)
          | ba, bb when Arith.Simplify.prove_equal_shapes ba bb ->
              Struct_info.Tensor { shape = Known (ba @ [ m; n ]); dtype }
          | _, _ -> fail "matmul: batch dimensions do not match")
      | sa, sb -> (
          match (Struct_info.shape_info_ndim sa, Struct_info.shape_info_ndim sb) with
          | Some ra, Some rb ->
              Struct_info.Tensor { shape = Ndim (max ra rb); dtype }
          | _, _ -> Struct_info.Tensor { shape = Unknown_rank; dtype }))
  | _ -> fail "matmul: expected 2 arguments"

let matmul_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor ta; Struct_info.Tensor tb ] -> (
      let da = known_dims "matmul" ta.Struct_info.shape in
      let db = known_dims "matmul" tb.Struct_info.shape in
      let dtype = require_dtype "matmul" (join_dtypes ta.dtype tb.dtype) in
      let ra = List.length da and rb = List.length db in
      let m = List.nth da (ra - 2) in
      let k = List.nth da (ra - 1) in
      let n = List.nth db (rb - 1) in
      let batch_a = List.filteri (fun i _ -> i < ra - 2) da in
      match (batch_a, rb) with
      | [], 2 ->
          Some
            {
              kernel = Tir.Kernels.matmul_weights ~name:"matmul" ~m ~k ~n dtype;
              tensor_args = args;
              sym_args = [];
            }
      | batch, 2 ->
          Some
            {
              kernel =
                Tir.Kernels.matmul_weights ~name:"matmul" ~batch ~m ~k ~n dtype;
              tensor_args = args;
              sym_args = [];
            }
      | batch, _ ->
          Some
            {
              kernel = Tir.Kernels.matmul ~name:"batch_matmul" ~batch ~m ~k ~n dtype;
              tensor_args = args;
              sym_args = [];
            })
  | _ -> None

let () = register "matmul" ~legalize:matmul_legalizer matmul_rule

(* ---------- shape manipulation ---------- *)

let shape_of_value_arg args arg_sinfo i =
  (* A shape argument may be a literal Shape_expr or a variable whose
     annotation carries the symbolic dims. *)
  match List.nth_opt args i with
  | Some (Expr.Shape_expr dims) -> Some dims
  | Some (Expr.Var v) -> (
      match Rvar.sinfo v with
      | Struct_info.Shape (Struct_info.Known dims) -> Some dims
      | _ -> None)
  | _ -> (
      match List.nth_opt arg_sinfo i with
      | Some (Struct_info.Shape (Struct_info.Known dims)) -> Some dims
      | _ -> None)

let reshape_rule : rule =
 fun ~args ~arg_sinfo ->
  let t = tensor_arg "reshape" args arg_sinfo 0 in
  match shape_of_value_arg args arg_sinfo 1 with
  | Some dims -> Struct_info.Tensor { shape = Known dims; dtype = t.Struct_info.dtype }
  | None -> (
      match List.nth_opt arg_sinfo 1 with
      | Some (Struct_info.Shape si) ->
          Struct_info.Tensor
            {
              shape =
                (match Struct_info.shape_info_ndim si with
                | Some n -> Ndim n
                | None -> Unknown_rank);
              dtype = t.Struct_info.dtype;
            }
      | _ -> fail "reshape: second argument must be a shape")

let reshape_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  match (arg_sinfo, Struct_info.tensor_shape out) with
  | Struct_info.Tensor t :: _, Some to_dims ->
      let from_dims = known_dims "reshape" t.Struct_info.shape in
      let dtype = require_dtype "reshape" t.Struct_info.dtype in
      Some
        {
          kernel = Tir.Kernels.reshape ~name:"reshape" ~from_:from_dims ~to_:to_dims dtype;
          tensor_args = [ List.hd args ];
          sym_args = [];
        }
  | _ -> None

let () = register "reshape" ~legalize:reshape_legalizer reshape_rule

let flatten_rule : rule =
 fun ~args ~arg_sinfo ->
  let t = tensor_arg "flatten" args arg_sinfo 0 in
  match t.Struct_info.shape with
  | Struct_info.Known dims ->
      let total = List.fold_left Arith.Expr.mul one dims in
      Struct_info.Tensor
        {
          shape = Known [ Arith.Simplify.simplify total ];
          dtype = t.Struct_info.dtype;
        }
  | Struct_info.Ndim _ | Struct_info.Unknown_rank ->
      Struct_info.Tensor { shape = Ndim 1; dtype = t.Struct_info.dtype }

let flatten_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor t ] ->
      let dims = known_dims "flatten" t.Struct_info.shape in
      let dtype = require_dtype "flatten" t.Struct_info.dtype in
      let total =
        Arith.Simplify.simplify (List.fold_left Arith.Expr.mul one dims)
      in
      Some
        {
          kernel =
            Tir.Kernels.reshape ~name:"flatten" ~from_:dims ~to_:[ total ] dtype;
          tensor_args = args;
          sym_args = [];
        }
  | _ -> None

let () = register "flatten" ~legalize:flatten_legalizer flatten_rule

let perm_of_args args =
  match List.nth_opt args 1 with
  | Some (Expr.Shape_expr dims) ->
      let ints = List.map Arith.Expr.as_const dims in
      if List.for_all Option.is_some ints then
        Some (List.map Option.get ints)
      else None
  | _ -> None

let permute_rule : rule =
 fun ~args ~arg_sinfo ->
  let t = tensor_arg "permute_dims" args arg_sinfo 0 in
  match (t.Struct_info.shape, perm_of_args args) with
  | Struct_info.Known dims, Some perm ->
      if List.length perm <> List.length dims then
        fail "permute_dims: permutation rank mismatch";
      Struct_info.Tensor
        {
          shape = Known (List.map (fun i -> List.nth dims i) perm);
          dtype = t.Struct_info.dtype;
        }
  | (Struct_info.Ndim _ | Struct_info.Unknown_rank), _ | _, None ->
      Struct_info.Tensor
        {
          shape =
            (match Struct_info.shape_info_ndim t.Struct_info.shape with
            | Some n -> Ndim n
            | None -> Unknown_rank);
          dtype = t.Struct_info.dtype;
        }

let permute_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match (arg_sinfo, perm_of_args args) with
  | Struct_info.Tensor t :: _, Some perm ->
      let dims = known_dims "permute_dims" t.Struct_info.shape in
      let dtype = require_dtype "permute_dims" t.Struct_info.dtype in
      Some
        {
          kernel = Tir.Kernels.transpose ~name:"permute_dims" dims ~perm dtype;
          tensor_args = [ List.hd args ];
          sym_args = [];
        }
  | _ -> None

let () = register "permute_dims" ~legalize:permute_legalizer permute_rule

(* ---------- reductions over the last axis ---------- *)

let reduce_rule name : rule =
 fun ~args ~arg_sinfo ->
  let t = tensor_arg name args arg_sinfo 0 in
  match t.Struct_info.shape with
  | Struct_info.Known [] -> fail "%s: cannot reduce a rank-0 tensor" name
  | Struct_info.Known dims ->
      Struct_info.Tensor
        {
          shape = Known (List.filteri (fun i _ -> i < List.length dims - 1) dims);
          dtype = t.Struct_info.dtype;
        }
  | Struct_info.Ndim n when n > 0 ->
      Struct_info.Tensor { shape = Ndim (n - 1); dtype = t.Struct_info.dtype }
  | Struct_info.Ndim _ | Struct_info.Unknown_rank ->
      Struct_info.Tensor { shape = Unknown_rank; dtype = t.Struct_info.dtype }

let reduce_legalizer name kind : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor t ] ->
      let dims = known_dims name t.Struct_info.shape in
      let dtype = require_dtype name t.Struct_info.dtype in
      Some
        {
          kernel = Tir.Kernels.reduce ~name ~kind dims dtype;
          tensor_args = args;
          sym_args = [];
        }
  | _ -> None

let () =
  register "sum" ~legalize:(reduce_legalizer "sum" `Sum) (reduce_rule "sum");
  register "mean" ~legalize:(reduce_legalizer "mean" `Mean) (reduce_rule "mean");
  register "max" ~legalize:(reduce_legalizer "max" `Max) (reduce_rule "max")

(* ---------- softmax / rms_norm ---------- *)

let softmax_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor t ] ->
      let dims = known_dims "softmax" t.Struct_info.shape in
      let dtype = require_dtype "softmax" t.Struct_info.dtype in
      Some
        {
          kernel = Tir.Kernels.softmax_last ~name:"softmax" dims dtype;
          tensor_args = args;
          sym_args = [];
        }
  | _ -> None

let () = register "softmax" ~legalize:softmax_legalizer (unary_rule "softmax")

let rms_norm_rule : rule =
 fun ~args ~arg_sinfo ->
  let t = tensor_arg "rms_norm" args arg_sinfo 0 in
  Struct_info.Tensor t

let rms_norm_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor t; Struct_info.Tensor _ ] ->
      let dims = known_dims "rms_norm" t.Struct_info.shape in
      let dtype = require_dtype "rms_norm" t.Struct_info.dtype in
      Some
        {
          kernel = Tir.Kernels.rms_norm ~name:"rms_norm" dims ~eps:1e-5 dtype;
          tensor_args = args;
          sym_args = [];
        }
  | _ -> None

let () = register "rms_norm" ~legalize:rms_norm_legalizer rms_norm_rule

let layer_norm_rule : rule =
 fun ~args ~arg_sinfo ->
  let t = tensor_arg "layer_norm" args arg_sinfo 0 in
  Struct_info.Tensor t

let layer_norm_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor t; Struct_info.Tensor _; Struct_info.Tensor _ ] ->
      let dims = known_dims "layer_norm" t.Struct_info.shape in
      let dtype = require_dtype "layer_norm" t.Struct_info.dtype in
      Some
        {
          kernel = Tir.Kernels.layer_norm ~name:"layer_norm" dims ~eps:1e-5 dtype;
          tensor_args = args;
          sym_args = [];
        }
  | _ -> None

let () = register "layer_norm" ~legalize:layer_norm_legalizer layer_norm_rule

(* ---------- dtype cast: astype.<dtype> ---------- *)

let astype_dtype name =
  match String.index_opt name '.' with
  | Some i ->
      Base.Dtype.of_string (String.sub name (i + 1) (String.length name - i - 1))
  | None -> None

let astype_rule name : rule =
 fun ~args ~arg_sinfo ->
  let t = tensor_arg name args arg_sinfo 0 in
  match astype_dtype name with
  | Some dt -> Struct_info.Tensor { shape = t.Struct_info.shape; dtype = Some dt }
  | None -> fail "%s: unknown target dtype" name

let astype_legalizer name : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match (arg_sinfo, astype_dtype name) with
  | [ Struct_info.Tensor t ], Some to_ ->
      let dims = known_dims name t.Struct_info.shape in
      let from_ = require_dtype name t.Struct_info.dtype in
      Some
        {
          kernel = Tir.Kernels.cast_kernel ~name:"astype" dims ~from_ ~to_;
          tensor_args = args;
          sym_args = [];
        }
  | _ -> None

let () =
  List.iter
    (fun dt ->
      let name = "astype." ^ Base.Dtype.to_string dt in
      register name ~legalize:(astype_legalizer name) (astype_rule name))
    [ Base.Dtype.F16; Base.Dtype.F32; Base.Dtype.I32; Base.Dtype.U32 ]

(* ---------- take (embedding lookup) ---------- *)

let take_rule : rule =
 fun ~args ~arg_sinfo ->
  let table = tensor_arg "take" args arg_sinfo 0 in
  let idx = tensor_arg "take" args arg_sinfo 1 in
  match (table.Struct_info.shape, idx.Struct_info.shape) with
  | Struct_info.Known [ _rows; width ], Struct_info.Known [ n ] ->
      Struct_info.Tensor { shape = Known [ n; width ]; dtype = table.Struct_info.dtype }
  | _, _ ->
      Struct_info.Tensor { shape = Ndim 2; dtype = table.Struct_info.dtype }

let take_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor table; Struct_info.Tensor idx ] -> (
      match
        (known_dims "take" table.Struct_info.shape,
         known_dims "take" idx.Struct_info.shape)
      with
      | [ rows; width ], [ n ] ->
          let dtype = require_dtype "take" table.Struct_info.dtype in
          Some
            {
              kernel =
                Tir.Kernels.take_rows ~name:"take" ~rows ~width ~num_indices:n
                  dtype;
              tensor_args = args;
              sym_args = [];
            }
      | _, _ -> None)
  | _ -> None

let () = register "take" ~legalize:take_legalizer take_rule

(* ---------- where / clip ---------- *)

let where_rule : rule =
 fun ~args ~arg_sinfo ->
  match arg_sinfo with
  | [ cond; a; b ] ->
      let tc = as_tensor "where" cond in
      let ta = as_tensor "where" a in
      let tb = as_tensor "where" b in
      let dtype = join_dtypes ta.Struct_info.dtype tb.Struct_info.dtype in
      ignore args;
      (match
         (tc.Struct_info.shape, ta.Struct_info.shape, tb.Struct_info.shape)
       with
      | Struct_info.Known dc, Struct_info.Known da, Struct_info.Known db
        when Arith.Simplify.prove_equal_shapes dc da
             && Arith.Simplify.prove_equal_shapes da db ->
          Struct_info.Tensor { shape = Known da; dtype }
      | sc, _, _ -> (
          match Struct_info.shape_info_ndim sc with
          | Some n -> Struct_info.Tensor { shape = Ndim n; dtype }
          | None -> Struct_info.Tensor { shape = Unknown_rank; dtype }))
  | _ -> fail "where: expected 3 arguments"

let where_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor tc; Struct_info.Tensor ta; Struct_info.Tensor tb ] ->
      let dims = known_dims "where" tc.Struct_info.shape in
      let dtype = require_dtype "where" (join_dtypes ta.dtype tb.dtype) in
      let cbuf = Tir.Buffer.create "C" dims dtype in
      let abuf = Tir.Buffer.create "A" dims dtype in
      let bbuf = Tir.Buffer.create "B" dims dtype in
      let ybuf = Tir.Buffer.create "Y" dims dtype in
      let body =
        Tir.Stmt.grid
          (List.mapi (fun i d -> (Printf.sprintf "i%d" i, d)) dims)
          (fun idx ->
            Tir.Stmt.Store
              ( ybuf,
                List.map Tir.Texpr.idx idx,
                Tir.Texpr.Select
                  ( Tir.Texpr.Binop
                      (Tir.Texpr.Ne, Tir.Texpr.load cbuf idx, Tir.Texpr.f 0.0),
                    Tir.Texpr.load abuf idx,
                    Tir.Texpr.load bbuf idx ) ))
      in
      Some
        {
          kernel =
            Tir.Prim_func.create ~name:"where" ~params:[ cbuf; abuf; bbuf; ybuf ]
              body;
          tensor_args = args;
          sym_args = [];
        }
  | _ -> None

let () = register "where" ~legalize:where_legalizer where_rule

let clip_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor t ] ->
      let dims = known_dims "clip" t.Struct_info.shape in
      let dtype = require_dtype "clip" t.Struct_info.dtype in
      let op x =
        Tir.Texpr.Binop
          ( Tir.Texpr.Min,
            Tir.Texpr.Binop (Tir.Texpr.Max, x, Tir.Texpr.f (-1.0)),
            Tir.Texpr.f 1.0 )
      in
      Some
        {
          kernel = Tir.Kernels.unary ~name:"clip" ~op dims dtype;
          tensor_args = args;
          sym_args = [];
        }
  | _ -> None

let () = register "clip" ~legalize:clip_legalizer (unary_rule "clip")

(* ---------- data-dependent ops ---------- *)

let unique_rule : rule =
 fun ~args ~arg_sinfo ->
  (* Output length depends on runtime values: coarse rank-1 result
     (the paper's Figure 3 example). *)
  let t = tensor_arg "unique" args arg_sinfo 0 in
  Struct_info.Tensor { shape = Ndim 1; dtype = t.Struct_info.dtype }

let () = register "unique" unique_rule

(* ---------- concat along the last axis ---------- *)

let concat_rule : rule =
 fun ~args ~arg_sinfo ->
  let a = tensor_arg "concat" args arg_sinfo 0 in
  let b = tensor_arg "concat" args arg_sinfo 1 in
  let dtype = join_dtypes a.Struct_info.dtype b.Struct_info.dtype in
  match (a.Struct_info.shape, b.Struct_info.shape) with
  | Struct_info.Known da, Struct_info.Known db
    when List.length da = List.length db && da <> [] -> (
      let r = List.length da in
      let lead_a = List.filteri (fun i _ -> i < r - 1) da in
      let lead_b = List.filteri (fun i _ -> i < r - 1) db in
      if not (Arith.Simplify.prove_equal_shapes lead_a lead_b) then
        fail "concat: leading dimensions do not match"
      else
        let last =
          Arith.Simplify.simplify
            (Arith.Expr.add (List.nth da (r - 1)) (List.nth db (r - 1)))
        in
        Struct_info.Tensor { shape = Known (lead_a @ [ last ]); dtype })
  | sa, _ -> (
      match Struct_info.shape_info_ndim sa with
      | Some n -> Struct_info.Tensor { shape = Ndim n; dtype }
      | None -> Struct_info.Tensor { shape = Unknown_rank; dtype })

let concat_legalizer : legalizer =
 fun ~args ~arg_sinfo ~out ->
  ignore out;
  match arg_sinfo with
  | [ Struct_info.Tensor ta; Struct_info.Tensor tb ] ->
      let da = known_dims "concat" ta.Struct_info.shape in
      let db = known_dims "concat" tb.Struct_info.shape in
      let dtype = require_dtype "concat" (join_dtypes ta.dtype tb.dtype) in
      let r = List.length da in
      let lead = List.filteri (fun i _ -> i < r - 1) da in
      let la = List.nth da (r - 1) and lb = List.nth db (r - 1) in
      let a_buf = Tir.Buffer.create "A" da dtype in
      let b_buf = Tir.Buffer.create "B" db dtype in
      let y_buf =
        Tir.Buffer.create "Y" (lead @ [ Arith.Expr.add la lb ]) dtype
      in
      (* Two sequential loop nests: copy A, then copy B shifted. *)
      let copy_a =
        Tir.Stmt.grid
          (List.mapi (fun i d -> (Printf.sprintf "a%d" i, d)) da)
          (fun idx -> Tir.Stmt.Store (y_buf, List.map Tir.Texpr.idx idx, Tir.Texpr.load a_buf idx))
      in
      let copy_b =
        Tir.Stmt.grid
          (List.mapi (fun i d -> (Printf.sprintf "b%d" i, d)) db)
          (fun idx ->
            let outer = List.filteri (fun i _ -> i < r - 1) idx in
            let j = List.nth idx (r - 1) in
            Tir.Stmt.Store
              ( y_buf,
                List.map Tir.Texpr.idx (outer @ [ Arith.Expr.add j la ]),
                Tir.Texpr.load b_buf idx ))
      in
      let kernel =
        Tir.Prim_func.create ~name:"concat" ~params:[ a_buf; b_buf; y_buf ]
          (Tir.Stmt.seq [ copy_a; copy_b ])
      in
      Some { kernel; tensor_args = args; sym_args = [] }
  | _ -> None

let () = register "concat" ~legalize:concat_legalizer concat_rule
