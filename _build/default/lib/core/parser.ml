exception Parse_error of string

let fail_at line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s))) fmt

(* ---------- lexer ---------- *)

type tok =
  | Tname of string  (** identifiers, incl. dotted builtins *)
  | Tint of int
  | Tstring of string
  | Tpunct of string  (** ( ) [ ] , : = -> + - * // % ? *)

let tok_to_string = function
  | Tname s -> s
  | Tint i -> string_of_int i
  | Tstring s -> Printf.sprintf "%S" s
  | Tpunct s -> s

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '\''

let lex_line lineno (s : string) : tok list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '#' then i := n (* comment *)
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      push (Tint (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      while !j < n && is_name_char s.[!j] do incr j done;
      push (Tname (String.sub s !i (!j - !i)));
      i := !j
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do incr j done;
      if !j >= n then fail_at lineno "unterminated string";
      push (Tstring (String.sub s (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then begin
      push (Tpunct "->");
      i := !i + 2
    end
    else if c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9'
            && (match !toks with
                | Tint _ :: _ | Tname _ :: _ | Tpunct ")" :: _ | Tpunct "]" :: _ ->
                    false
                | _ -> true)
    then begin
      (* negative integer literal *)
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      push (Tint (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if c = '/' && !i + 1 < n && s.[!i + 1] = '/' then begin
      push (Tpunct "//");
      i := !i + 2
    end
    else if String.contains "()[],:=+-*%?" c then begin
      push (Tpunct (String.make 1 c));
      incr i
    end
    else if c = '@' then
      fail_at lineno "tensor program sections are not parseable"
    else fail_at lineno "unexpected character %C" c
  done;
  List.rev !toks

type line = { lineno : int; indent : int; toks : tok list }

let split_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun idx raw ->
         let indent =
           let i = ref 0 in
           while !i < String.length raw && raw.[!i] = ' ' do incr i done;
           !i
         in
         { lineno = idx + 1; indent; toks = lex_line (idx + 1) raw })
  |> List.filter (fun l -> l.toks <> [])

(* ---------- token-stream parser within a line (or joined lines) ---------- *)

type stream = { mutable toks : tok list; lineno : int }

let peek st = match st.toks with t :: _ -> Some t | [] -> None

let next st =
  match st.toks with
  | t :: rest ->
      st.toks <- rest;
      t
  | [] -> fail_at st.lineno "unexpected end of line"

let expect st want =
  let t = next st in
  if tok_to_string t <> want then
    fail_at st.lineno "expected %s, found %s" want (tok_to_string t)

let accept st want =
  match peek st with
  | Some t when tok_to_string t = want ->
      ignore (next st);
      true
  | _ -> false

(* ---------- symbolic variable scope ---------- *)

type scope = {
  mutable sym_vars : (string * Arith.Var.t) list;
  mutable vars : (string * Rvar.t) list;  (** graph-level bindings *)
}

let fresh_scope () = { sym_vars = []; vars = [] }

let sym_var scope name =
  match List.assoc_opt name scope.sym_vars with
  | Some v -> v
  | None ->
      let v = Arith.Var.fresh name in
      scope.sym_vars <- (name, v) :: scope.sym_vars;
      v

(* ---------- arith expressions ---------- *)

(* additive > multiplicative > atom, mirroring Arith.Expr.pp *)
let rec parse_arith scope st : Arith.Expr.t =
  let lhs = parse_arith_mul scope st in
  let rec loop acc =
    if accept st "+" then loop (Arith.Expr.Add (acc, parse_arith_mul scope st))
    else if accept st "-" then loop (Arith.Expr.Sub (acc, parse_arith_mul scope st))
    else acc
  in
  loop lhs

and parse_arith_mul scope st =
  let lhs = parse_arith_atom scope st in
  let rec loop acc =
    if accept st "*" then loop (Arith.Expr.Mul (acc, parse_arith_atom scope st))
    else if accept st "//" then
      loop (Arith.Expr.Floor_div (acc, parse_arith_atom scope st))
    else if accept st "%" then
      loop (Arith.Expr.Floor_mod (acc, parse_arith_atom scope st))
    else acc
  in
  loop lhs

and parse_arith_atom scope st =
  match next st with
  | Tint i -> Arith.Expr.Const i
  | Tname "min" ->
      expect st "(";
      let a = parse_arith scope st in
      expect st ",";
      let b = parse_arith scope st in
      expect st ")";
      Arith.Expr.Min (a, b)
  | Tname "max" ->
      expect st "(";
      let a = parse_arith scope st in
      expect st ",";
      let b = parse_arith scope st in
      expect st ")";
      Arith.Expr.Max (a, b)
  | Tname n -> Arith.Expr.Var (sym_var scope n)
  | Tpunct "(" ->
      let e = parse_arith scope st in
      expect st ")";
      e
  | t -> fail_at st.lineno "expected an integer expression, found %s" (tok_to_string t)

let parse_arith_list scope st ~closing =
  let rec go acc =
    match peek st with
    | Some t when tok_to_string t = closing ->
        ignore (next st);
        List.rev acc
    | _ ->
        let e = parse_arith scope st in
        if accept st "," then go (e :: acc)
        else begin
          expect st closing;
          List.rev (e :: acc)
        end
  in
  go []

(* ---------- struct info ---------- *)

let parse_dtype st =
  match next st with
  | Tstring s -> (
      match Base.Dtype.of_string s with
      | Some dt -> dt
      | None -> fail_at st.lineno "unknown dtype %S" s)
  | t -> fail_at st.lineno "expected a dtype string, found %s" (tok_to_string t)

let rec parse_sinfo_st scope st : Struct_info.t =
  match next st with
  | Tname "Object" -> Struct_info.Object
  | Tname "Prim" ->
      expect st "(";
      let dt = parse_dtype st in
      expect st ")";
      Struct_info.Prim dt
  | Tname "Shape" ->
      expect st "(";
      let si = parse_shape_info scope st ~bracketed:true in
      expect st ")";
      Struct_info.Shape si
  | Tname "Tensor" ->
      expect st "(";
      let shape = parse_shape_info scope st ~bracketed:false in
      let dtype = if accept st "," then Some (parse_dtype st) else None in
      expect st ")";
      Struct_info.Tensor { shape; dtype }
  | Tname "Tuple" ->
      expect st "[";
      let rec go acc =
        if accept st "]" then List.rev acc
        else
          let si = parse_sinfo_st scope st in
          if accept st "," then go (si :: acc)
          else begin
            expect st "]";
            List.rev (si :: acc)
          end
      in
      Struct_info.Tuple (go [])
  | Tname "Callable" ->
      expect st "(";
      expect st "[";
      let rec go acc =
        if accept st "]" then List.rev acc
        else
          let si = parse_sinfo_st scope st in
          if accept st "," then go (si :: acc)
          else begin
            expect st "]";
            List.rev (si :: acc)
          end
      in
      let params = go [] in
      expect st ",";
      let ret = parse_sinfo_st scope st in
      expect st ")";
      Struct_info.Callable { params; ret }
  | t -> fail_at st.lineno "expected an annotation, found %s" (tok_to_string t)

(* Shape payloads: "(dims)" / "([dims])" / "ndim=K" / "ndim=?" *)
and parse_shape_info scope st ~bracketed : Struct_info.shape_info =
  match peek st with
  | Some (Tname "ndim") ->
      ignore (next st);
      expect st "=";
      (match next st with
      | Tint k -> Struct_info.Ndim k
      | Tpunct "?" -> Struct_info.Unknown_rank
      | t -> fail_at st.lineno "expected a rank, found %s" (tok_to_string t))
  | Some (Tpunct ("(" | "[")) ->
      let opener = tok_to_string (next st) in
      let closing = if opener = "(" then ")" else "]" in
      if bracketed && opener = "[" then
        Struct_info.Known (parse_arith_list scope st ~closing:"]")
      else Struct_info.Known (parse_arith_list scope st ~closing)
  | Some t -> fail_at st.lineno "expected a shape, found %s" (tok_to_string t)
  | None -> fail_at st.lineno "expected a shape"

(* ---------- graph expressions ---------- *)

let sinfo_ahead st =
  match peek st with
  | Some (Tname ("Object" | "Prim" | "Shape" | "Tensor" | "Tuple" | "Callable"))
    ->
      true
  | _ -> false

let resolve_callee scope mod_ name =
  match List.assoc_opt name scope.vars with
  | Some v -> Expr.Var v
  | None ->
      if Ir_module.mem mod_ name then Expr.Global_var name
      else if
        Op.deduce_rule name <> None
        || String.contains name '.'
        || List.mem name
             [ "call_tir"; "call_dps_library"; "call_tir_inplace" ]
      then Expr.Op name
      else Expr.Global_var name

let rec parse_expr scope mod_ st : Expr.expr =
  let atom = parse_expr_atom scope mod_ st in
  parse_postfix scope mod_ st atom

and parse_postfix scope mod_ st acc =
  match peek st with
  | Some (Tpunct "[") ->
      ignore (next st);
      let idx = match next st with
        | Tint i -> i
        | t -> fail_at st.lineno "expected a tuple index, found %s" (tok_to_string t)
      in
      expect st "]";
      parse_postfix scope mod_ st (Expr.Tuple_get (acc, idx))
  | Some (Tpunct "(") ->
      ignore (next st);
      let args, sinfo_args = parse_call_args scope mod_ st in
      parse_postfix scope mod_ st (Expr.Call { callee = acc; args; sinfo_args })
  | _ -> acc

and parse_call_args scope mod_ st =
  let args = ref [] and sinfos = ref [] in
  let rec go () =
    if accept st ")" then ()
    else begin
      if sinfo_ahead st then sinfos := parse_sinfo_st scope st :: !sinfos
      else args := parse_expr scope mod_ st :: !args;
      if accept st "," then go () else expect st ")"
    end
  in
  go ();
  (List.rev !args, List.rev !sinfos)

and parse_expr_atom scope mod_ st : Expr.expr =
  match next st with
  | Tname "shape" ->
      expect st "(";
      Expr.Shape_expr (parse_arith_list scope st ~closing:")")
  | Tname "const" -> fail_at st.lineno "constant literals are not parseable"
  | Tname "if" -> fail_at st.lineno "if expressions are not parseable"
  | Tname name -> (
      match List.assoc_opt name scope.vars with
      | Some v -> Expr.Var v
      | None -> resolve_callee scope mod_ name)
  | Tstring s -> Expr.Extern_func s
  | Tint i -> Expr.Prim_value (Arith.Expr.Const i)
  | Tpunct "(" ->
      (* tuple (or parenthesized expression: a 1-tuple never prints) *)
      let rec go acc =
        if accept st ")" then List.rev acc
        else
          let e = parse_expr scope mod_ st in
          if accept st "," then go (e :: acc)
          else begin
            expect st ")";
            List.rev (e :: acc)
          end
      in
      Expr.Tuple (go [])
  | t -> fail_at st.lineno "unexpected token %s in expression" (tok_to_string t)

(* ---------- functions ---------- *)

let stream_of (l : line) = { toks = l.toks; lineno = l.lineno }

let parse_params scope st =
  expect st "(";
  let rec go acc =
    if accept st ")" then List.rev acc
    else
      match next st with
      | Tname pname ->
          expect st ":";
          let si = parse_sinfo_st scope st in
          let v = Rvar.fresh pname si in
          scope.vars <- (pname, v) :: scope.vars;
          let acc = v :: acc in
          if accept st "," then go acc
          else begin
            expect st ")";
            List.rev acc
          end
      | t -> fail_at st.lineno "expected a parameter name, found %s" (tok_to_string t)
  in
  go []

type fstate = {
  mutable blocks : Expr.block list;  (** reversed *)
  mutable cur : Expr.binding list;  (** reversed *)
  mutable cur_df : bool;
}

let flush fs =
  if fs.cur <> [] then begin
    fs.blocks <-
      { Expr.dataflow = fs.cur_df; bindings = List.rev fs.cur } :: fs.blocks;
    fs.cur <- []
  end

let parse_binding scope mod_ (l : line) : Expr.binding =
  let st = stream_of l in
  match next st with
  | Tname vname -> (
      match peek st with
      | Some (Tpunct ":") ->
          ignore (next st);
          let si = parse_sinfo_st scope st in
          expect st "=";
          let e = parse_expr scope mod_ st in
          if st.toks <> [] then
            fail_at l.lineno "trailing tokens after binding";
          let v = Rvar.fresh vname si in
          scope.vars <- (vname, v) :: scope.vars;
          Expr.Bind (v, e)
      | Some (Tpunct "=") ->
          ignore (next st);
          (match next st with
          | Tname "match_cast" ->
              expect st "(";
              let e = parse_expr scope mod_ st in
              expect st ",";
              let si = parse_sinfo_st scope st in
              expect st ")";
              let v = Rvar.fresh vname si in
              scope.vars <- (vname, v) :: scope.vars;
              Expr.Match_cast (v, e, si)
          | t ->
              fail_at l.lineno "expected match_cast after '=', found %s"
                (tok_to_string t))
      | _ -> fail_at l.lineno "expected ':' or '=' after %s" vname)
  | t -> fail_at l.lineno "expected a binding, found %s" (tok_to_string t)

let parse_func_lines mod_ (lines : line list) : (string * Expr.func) * line list =
  match lines with
  | [] -> raise (Parse_error "expected a function definition")
  | head :: rest ->
      let st = stream_of head in
      expect st "def";
      let fname =
        match next st with
        | Tname n -> n
        | t -> fail_at head.lineno "expected a function name, found %s" (tok_to_string t)
      in
      let scope = fresh_scope () in
      let params = parse_params scope st in
      expect st "->";
      let ret_sinfo = parse_sinfo_st scope st in
      expect st ":";
      let fs = { blocks = []; cur = []; cur_df = false } in
      let result = ref None in
      let rec consume = function
        | [] -> []
        | (l : line) :: rest when l.indent = 0 -> l :: rest (* next def *)
        | l :: rest -> (
            match l.toks with
            | Tname "with" :: Tname "dataflow" :: _ ->
                flush fs;
                fs.cur_df <- true;
                consume rest
            | Tname "return" :: ret_toks ->
                let st = { toks = ret_toks; lineno = l.lineno } in
                result := Some (parse_expr scope mod_ st);
                flush fs;
                consume rest
            | _ ->
                (* dataflow bindings print two columns deeper *)
                if fs.cur_df && l.indent <= 4 then begin
                  flush fs;
                  fs.cur_df <- false
                end;
                fs.cur <- parse_binding scope mod_ l :: fs.cur;
                consume rest)
      in
      let remaining = consume rest in
      flush fs;
      let body_result =
        match !result with
        | Some r -> r
        | None -> fail_at head.lineno "function %s has no return" fname
      in
      let blocks = List.rev fs.blocks in
      let body =
        match blocks with
        | [] -> body_result
        | _ -> Expr.Seq { blocks; body = body_result }
      in
      ((fname, { Expr.params; ret_sinfo; body; attrs = [] }), remaining)

let parse_module ?(into = Ir_module.empty) text =
  let lines = split_lines text in
  let rec go mod_ = function
    | [] -> mod_
    | lines ->
        let (name, f), rest = parse_func_lines mod_ lines in
        go (Ir_module.add_func mod_ name f) rest
  in
  go into lines

let parse_func ?(mod_ = Ir_module.empty) text =
  let lines = split_lines text in
  let (name, f), rest = parse_func_lines mod_ lines in
  if rest <> [] then
    raise (Parse_error "parse_func: trailing content after the function");
  (name, f)

let parse_sinfo text =
  let lines = split_lines text in
  match lines with
  | [ l ] ->
      let st = stream_of l in
      let scope = fresh_scope () in
      let si = parse_sinfo_st scope st in
      if st.toks <> [] then fail_at l.lineno "trailing tokens";
      si
  | _ -> raise (Parse_error "parse_sinfo: expected one line")
