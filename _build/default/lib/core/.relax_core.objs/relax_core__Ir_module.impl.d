lib/core/ir_module.ml: Expr List Map Printf String Tir
