lib/core/builder.mli: Arith Expr Ir_module Rvar Struct_info Tir
