lib/core/printer.ml: Arith Base Expr Format Ir_module List Printf Rvar String Struct_info Tir
