lib/core/well_formed.ml: Arith Deduce Expr Format Ir_module List Printf Rvar String Struct_info Tir
