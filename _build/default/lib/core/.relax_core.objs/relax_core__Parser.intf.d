lib/core/parser.mli: Expr Ir_module Struct_info
