lib/core/expr.mli: Arith Base Rvar Struct_info
