lib/core/struct_info.mli: Arith Base Format
