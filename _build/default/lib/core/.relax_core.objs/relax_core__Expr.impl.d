lib/core/expr.ml: Arith Base List Rvar Struct_info
