lib/core/deduce.mli: Expr Ir_module Struct_info
