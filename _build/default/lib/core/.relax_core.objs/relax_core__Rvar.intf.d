lib/core/rvar.mli: Format Map Set Struct_info
