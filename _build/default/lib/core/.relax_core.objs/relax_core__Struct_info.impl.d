lib/core/struct_info.ml: Arith Base Format List Option Printf String
