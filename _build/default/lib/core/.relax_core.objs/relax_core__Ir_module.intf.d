lib/core/ir_module.mli: Expr Tir
