lib/core/op.mli: Arith Base Expr Struct_info Tir
