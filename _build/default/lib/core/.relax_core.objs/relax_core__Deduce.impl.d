lib/core/deduce.ml: Arith Array Base Expr Format Ir_module List Op Rvar Struct_info
