lib/core/builder.ml: Deduce Expr Ir_module List Printf Rvar Tir
