lib/core/printer.mli: Expr Format Ir_module
