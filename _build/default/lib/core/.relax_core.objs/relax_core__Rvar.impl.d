lib/core/rvar.ml: Base Format Int Map Set Struct_info
