lib/core/well_formed.mli: Ir_module
