lib/core/parser.ml: Arith Base Expr Format Ir_module List Op Printf Rvar String Struct_info
