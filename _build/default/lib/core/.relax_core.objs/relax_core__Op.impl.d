lib/core/op.ml: Arith Base Expr Format Hashtbl List Option Printf Rvar String Struct_info Tir
