(** Structural annotations (Table 1 of the paper).

    Every Relax value carries an annotation conveying compile-time
    structural information — the overall kind of value (tensor, shape,
    tuple, callable) plus symbolic shape and dtype detail. First-class
    symbolic shapes live here: a tensor dimension is an arbitrary
    {!Arith.Expr.t}, so relations like "this buffer holds [n * 4]
    elements" survive every transformation. *)

type shape_info =
  | Known of Arith.Expr.t list
      (** fully symbolic per-dimension description, e.g. [(n, 4)] *)
  | Ndim of int
      (** rank known, dimensions unknown — the coarse fallback used
          for data-dependent operators like [unique] *)
  | Unknown_rank

type t =
  | Object  (** any runtime value *)
  | Prim of Base.Dtype.t  (** scalar value of the given dtype *)
  | Shape of shape_info  (** first-class shape value *)
  | Tensor of tensor_info
  | Tuple of t list
  | Callable of callable_info

and tensor_info = { shape : shape_info; dtype : Base.Dtype.t option }
and callable_info = { params : t list; ret : t }

val tensor : Arith.Expr.t list -> Base.Dtype.t -> t
val tensor_ndim : int -> Base.Dtype.t -> t
val shape : Arith.Expr.t list -> t
val shape_ndim : int -> t

val tensor_shape : t -> Arith.Expr.t list option
(** The symbolic dimensions if the annotation is a tensor of fully
    known symbolic shape. *)

val tensor_dtype : t -> Base.Dtype.t option
val ndim : t -> int option
(** Rank of a tensor or shape annotation when known. *)

val shape_info_ndim : shape_info -> int option

val free_sym_vars : t -> Arith.Var.Set.t
val subst : Arith.Expr.t Arith.Var.Map.t -> t -> t

val erase_to_coarse : t -> t
(** Replace symbolic dimension lists by rank-only information — what
    deduction falls back to when symbolic tracking fails. *)

val equal : t -> t -> bool
(** Semantic equality: symbolic dimensions are compared with the
    equality prover, so [Tensor((n + n,))] equals [Tensor((2 * n,))]. *)

val subsumes : t -> t -> bool
(** [subsumes general specific]: every value described by [specific]
    is also described by [general]. [Object] subsumes everything;
    [Tensor(ndim=2)] subsumes [Tensor((n, 4))]. Used for function
    boundary checks and [match_cast] validation. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
