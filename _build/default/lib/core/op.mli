(** The graph-level operator registry.

    Each tensor operator registers a shape-deduction rule (§4.1) —
    taking argument annotations and values, returning the output
    annotation — and optionally a legalizer that produces the
    loop-level tensor program implementing it (used by the LegalizeOps
    pass to lower graph operators to [call_tir]).

    The standard operator set is registered at module load. *)

exception Deduce_error of string

type rule = args:Expr.expr list -> arg_sinfo:Struct_info.t list -> Struct_info.t
(** Forward deduction: output annotation from input annotations (and
    argument values, for operators like [reshape] whose output shape
    is a first-class shape argument).
    @raise Deduce_error on provably ill-formed applications; coarse
    annotations are returned when the inputs are merely imprecise. *)

type legalized = {
  kernel : Tir.Prim_func.t;  (** generated tensor program *)
  tensor_args : Expr.expr list;  (** args to pass (non-tensor args dropped) *)
  sym_args : Arith.Expr.t list;
      (** extra symbolic arguments the kernel needs (Figure 8) *)
}

type legalizer =
  args:Expr.expr list ->
  arg_sinfo:Struct_info.t list ->
  out:Struct_info.t ->
  legalized option
(** [None] when the operator cannot be expressed as a loop nest (e.g.
    data-dependent [unique], which lowers to a runtime builtin). *)

val register : string -> ?legalize:legalizer -> rule -> unit
(** @raise Invalid_argument on duplicate registration. *)

val deduce_rule : string -> rule option
val legalizer : string -> legalizer option
val registered : unit -> string list

(** {1 Helpers used by rules and tests} *)

val broadcast_shapes :
  Arith.Expr.t list -> Arith.Expr.t list -> Arith.Expr.t list option
(** Result of broadcasting two symbolic shapes: equal-rank dims must
    be provably equal (or one side the constant 1); a lower-rank side
    is right-aligned. [None] when incompatible. *)

val join_dtypes : Base.Dtype.t option -> Base.Dtype.t option -> Base.Dtype.t option
(** @raise Deduce_error when both are known and different. *)
