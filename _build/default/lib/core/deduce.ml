exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Bind signature variables by structural unification of a parameter
   annotation against an argument annotation. Imprecise arguments bind
   nothing (the runtime check at the function boundary covers them). *)
let rec unify_sinfo env (param : Struct_info.t) (arg : Struct_info.t) =
  match (param, arg) with
  | Struct_info.Tensor tp, Struct_info.Tensor ta ->
      unify_shape_info env tp.Struct_info.shape ta.Struct_info.shape
  | Struct_info.Shape sp, Struct_info.Shape sa -> unify_shape_info env sp sa
  | Struct_info.Tuple ps, Struct_info.Tuple as_ when List.length ps = List.length as_ ->
      List.iter2 (unify_sinfo env) ps as_
  | _, _ -> ()

and unify_shape_info env (param : Struct_info.shape_info)
    (arg : Struct_info.shape_info) =
  match (param, arg) with
  | Struct_info.Known dp, Struct_info.Known da
    when List.length dp = List.length da ->
      List.iter2
        (fun p a ->
          match p with
          | Arith.Expr.Var v ->
              if not (Arith.Var.Map.mem v !env) then
                env := Arith.Var.Map.add v a !env
          | Arith.Expr.Const _ | Arith.Expr.Add _ | Arith.Expr.Sub _
          | Arith.Expr.Mul _ | Arith.Expr.Floor_div _ | Arith.Expr.Floor_mod _
          | Arith.Expr.Min _ | Arith.Expr.Max _ ->
              ())
        dp da
  | _, _ -> ()

let signature_call_sinfo ~params ~ret ~args =
  if List.length params <> List.length args then
    fail "function call arity mismatch: %d parameters, %d arguments"
      (List.length params) (List.length args);
  let env = ref Arith.Var.Map.empty in
  List.iter2 (fun p a -> unify_sinfo env p a) params args;
  let ret' = Struct_info.subst !env ret in
  (* Any signature variable that survives substitution is unbound at
     this call site: deduction falls back to rank-only information. *)
  let sig_vars =
    List.fold_left
      (fun acc p -> Arith.Var.Set.union acc (Struct_info.free_sym_vars p))
      (Struct_info.free_sym_vars ret)
      params
  in
  let leftover =
    Arith.Var.Set.inter (Struct_info.free_sym_vars ret') sig_vars
  in
  if Arith.Var.Set.is_empty leftover then ret'
  else Struct_info.erase_to_coarse ret'

let const_sinfo (nd : Base.Ndarray.t) =
  Struct_info.tensor
    (List.map Arith.Expr.const (Array.to_list nd.Base.Ndarray.shape))
    nd.Base.Ndarray.dtype

let join_branch a b =
  if Struct_info.equal a b then a
  else
    let a' = Struct_info.erase_to_coarse a
    and b' = Struct_info.erase_to_coarse b in
    if Struct_info.equal a' b' then a' else Struct_info.Object

let rec expr_sinfo (mod_ : Ir_module.t) (e : Expr.expr) : Struct_info.t =
  match e with
  | Expr.Var v -> Rvar.sinfo v
  | Expr.Const nd -> const_sinfo nd
  | Expr.Prim_value _ -> Struct_info.Prim Base.Dtype.I64
  | Expr.Shape_expr dims -> Struct_info.shape dims
  | Expr.Tuple es -> Struct_info.Tuple (List.map (expr_sinfo mod_) es)
  | Expr.Tuple_get (e, i) -> (
      match expr_sinfo mod_ e with
      | Struct_info.Tuple ts -> (
          match List.nth_opt ts i with
          | Some t -> t
          | None -> fail "tuple index %d out of bounds" i)
      | Struct_info.Object -> Struct_info.Object
      | si -> fail "tuple_get on non-tuple %s" (Struct_info.to_string si))
  | Expr.Global_var name -> (
      match Ir_module.find mod_ name with
      | Some (Ir_module.Relax_func f) -> Expr.func_callable_sinfo f
      | Some (Ir_module.Tir_func _) -> Struct_info.Object
      | None -> Struct_info.Object)
  | Expr.Extern_func _ | Expr.Op _ -> Struct_info.Object
  | Expr.Call c -> call_sinfo mod_ c
  | Expr.If { cond = _; then_; else_ } ->
      join_branch (expr_sinfo mod_ then_) (expr_sinfo mod_ else_)
  | Expr.Seq { body; _ } -> expr_sinfo mod_ body

and call_sinfo mod_ (c : Expr.call) : Struct_info.t =
  match c.Expr.callee with
  | Expr.Op "call_tir" -> (
      match c.Expr.sinfo_args with
      | [ out ] -> out
      | _ -> fail "call_tir: expected exactly one output annotation")
  | Expr.Op "call_dps_library" -> (
      match c.Expr.sinfo_args with
      | [ out ] -> out
      | _ -> fail "call_dps_library: expected exactly one output annotation")
  | Expr.Op
      ( "builtin.alloc_tensor" | "builtin.tensor_from_storage"
      | "builtin.graph_run" | "call_tir_inplace" )
    -> (
      match c.Expr.sinfo_args with
      | [ out ] -> out
      | _ -> fail "builtin: expected exactly one output annotation")
  | Expr.Op ("builtin.alloc_storage" | "builtin.kernel_call" | "builtin.extern_call" | "builtin.kill")
    ->
      Struct_info.Object
  | Expr.Op name -> (
      match Op.deduce_rule name with
      | Some rule -> (
          let arg_sinfo = List.map (expr_sinfo mod_) c.Expr.args in
          try rule ~args:c.Expr.args ~arg_sinfo
          with Op.Deduce_error msg -> raise (Error msg))
      | None -> fail "unknown operator %s" name)
  | Expr.Global_var name -> (
      match Ir_module.find mod_ name with
      | Some (Ir_module.Relax_func f) ->
          signature_call_sinfo
            ~params:(List.map Rvar.sinfo f.Expr.params)
            ~ret:f.Expr.ret_sinfo
            ~args:(List.map (expr_sinfo mod_) c.Expr.args)
      | Some (Ir_module.Tir_func _) ->
          fail "direct call to tensor program %s (use call_tir)" name
      | None -> fail "call to unknown global %s" name)
  | Expr.Var v -> (
      (* First-class function value: deduce from the Callable
         annotation (Figure 7's f0 case). *)
      match Rvar.sinfo v with
      | Struct_info.Callable { params; ret } ->
          signature_call_sinfo ~params ~ret
            ~args:(List.map (expr_sinfo mod_) c.Expr.args)
      | Struct_info.Object -> Struct_info.Object
      | si -> fail "call to non-callable %s" (Struct_info.to_string si))
  | Expr.Extern_func _ -> Struct_info.Object
  | Expr.Const _ | Expr.Prim_value _ | Expr.Shape_expr _ | Expr.Tuple _
  | Expr.Tuple_get _ | Expr.Call _ | Expr.If _ | Expr.Seq _ ->
      fail "unsupported callee expression"
