(** Forward symbolic shape deduction (§4.1).

    Deduces the structural annotation of any expression from its
    parts: operator calls use the registered rules, cross-level calls
    ([call_tir] / [call_dps_library]) read their explicit output
    annotation, and subgraph function calls are deduced
    interprocedurally from the callee's signature alone (Figure 7) —
    symbolic variables in the signature are bound by unifying
    parameter annotations with argument annotations, then substituted
    into the return annotation, falling back to a coarse annotation
    when a variable cannot be bound. *)

exception Error of string

val expr_sinfo : Ir_module.t -> Expr.expr -> Struct_info.t
(** Annotation of an ANF expression (sub-expressions must be leaves,
    as produced by the builder).
    @raise Error on arity errors or provably inconsistent shapes. *)

val signature_call_sinfo :
  params:Struct_info.t list ->
  ret:Struct_info.t ->
  args:Struct_info.t list ->
  Struct_info.t
(** Interprocedural deduction from a function signature: bind the
    signature's symbolic variables against [args], substitute into
    [ret], coarsen whatever remains unbound. *)
