(** Structural well-formedness checking of cross-level modules.

    Invoked by tests and (in debug pipelines) between passes. Checks:
    ANF discipline, def-before-use of graph variables, purity of
    dataflow blocks (no control flow inside), consistency of recorded
    annotations with fresh forward deduction, [call_tir] callee
    existence and arity against the tensor program's signature, and
    closedness of symbolic variables. *)

type violation = { func : string; message : string }

val check_module : Ir_module.t -> violation list
(** Empty list iff the module is well-formed. *)

val assert_well_formed : Ir_module.t -> unit
(** @raise Failure listing all violations if any. *)
