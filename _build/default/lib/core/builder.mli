(** Block builder: the programmatic frontend for constructing Relax
    functions in A-normal form with automatic shape deduction.

    Mirrors the nn.Module-style construction the paper uses to build
    models (§5.1): every emitted expression is bound to a fresh
    variable whose annotation is deduced on the spot, so symbolic
    shape relations are tracked during model construction. *)

type t

val create : ?mod_:Ir_module.t -> unit -> t
val module_ : t -> Ir_module.t

val add_tir : t -> Tir.Prim_func.t -> string
(** Register a tensor program; returns the (possibly suffixed) global
    name. Structurally identical re-additions of the same function
    object reuse the existing name. *)

val function_ :
  t ->
  name:string ->
  params:(string * Struct_info.t) list ->
  ?attrs:(string * string) list ->
  (Rvar.t list -> Expr.expr) ->
  unit
(** Build a graph-level function and add it to the module. The
    callback receives the parameter variables and returns the result
    expression (typically a variable emitted earlier); all bindings
    emitted during the callback form the function body. *)

val dataflow : t -> (unit -> 'a) -> 'a
(** Run the callback with emissions collected into a dataflow block. *)

val emit : t -> ?name:string -> Expr.expr -> Rvar.t
(** Bind the expression to a fresh variable with deduced annotation.
    @raise Deduce.Error when deduction fails. *)

val emit_match_cast : t -> ?name:string -> Expr.expr -> Struct_info.t -> Rvar.t
(** Assert a more specific annotation ([match_cast], §3.2); compiles
    to a runtime check. *)

val emit_if :
  t ->
  cond:Expr.expr ->
  then_:(unit -> Expr.expr) ->
  else_:(unit -> Expr.expr) ->
  ?name:string ->
  unit ->
  Rvar.t
(** Structured control flow. Each branch callback emits its own
    bindings (collected into the branch body) and returns the branch
    result. Control flow is not allowed inside dataflow blocks
    (§3.1), so the [If] binding lands in a plain binding block; an
    enclosing {!dataflow} region is split around it. The result
    annotation is the join of the branch annotations (coarsened when
    they disagree). *)

val emit_call_tir :
  t ->
  Tir.Prim_func.t ->
  Expr.expr list ->
  out:Struct_info.t ->
  ?sym_args:Arith.Expr.t list ->
  ?name:string ->
  unit ->
  Rvar.t
(** Register the tensor program and emit a [call_tir] to it. *)

val emit_call_tir_inplace :
  t ->
  Tir.Prim_func.t ->
  Expr.expr list ->
  out_index:int ->
  out:Struct_info.t ->
  ?sym_args:Arith.Expr.t list ->
  ?name:string ->
  unit ->
  Rvar.t
(** Register the tensor program and emit a [call_tir_inplace]: the
    kernel mutates argument [out_index] instead of allocating. *)

val emit_call_dps_library :
  t -> string -> Expr.expr list -> out:Struct_info.t -> ?name:string -> unit -> Rvar.t
