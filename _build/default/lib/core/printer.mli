(** Human-readable rendering of Relax modules in the paper's
    TVMScript-like surface syntax (Figures 3-4). *)

val pp_expr : Format.formatter -> Expr.expr -> unit
val pp_func : Format.formatter -> string -> Expr.func -> unit
val pp_module : Format.formatter -> Ir_module.t -> unit
val module_to_string : Ir_module.t -> string
val func_to_string : string -> Expr.func -> string
