type shape_info =
  | Known of Arith.Expr.t list
  | Ndim of int
  | Unknown_rank

type t =
  | Object
  | Prim of Base.Dtype.t
  | Shape of shape_info
  | Tensor of tensor_info
  | Tuple of t list
  | Callable of callable_info

and tensor_info = { shape : shape_info; dtype : Base.Dtype.t option }
and callable_info = { params : t list; ret : t }

let tensor dims dtype = Tensor { shape = Known dims; dtype = Some dtype }
let tensor_ndim n dtype = Tensor { shape = Ndim n; dtype = Some dtype }
let shape dims = Shape (Known dims)
let shape_ndim n = Shape (Ndim n)

let tensor_shape = function
  | Tensor { shape = Known dims; _ } -> Some dims
  | Tensor _ | Object | Prim _ | Shape _ | Tuple _ | Callable _ -> None

let tensor_dtype = function
  | Tensor { dtype; _ } -> dtype
  | Object | Prim _ | Shape _ | Tuple _ | Callable _ -> None

let shape_info_ndim = function
  | Known dims -> Some (List.length dims)
  | Ndim n -> Some n
  | Unknown_rank -> None

let ndim = function
  | Tensor { shape; _ } | Shape shape -> shape_info_ndim shape
  | Object | Prim _ | Tuple _ | Callable _ -> None

let shape_info_free_vars = function
  | Known dims ->
      List.fold_left
        (fun acc d -> Arith.Var.Set.union acc (Arith.Expr.free_vars d))
        Arith.Var.Set.empty dims
  | Ndim _ | Unknown_rank -> Arith.Var.Set.empty

let rec free_sym_vars = function
  | Object | Prim _ -> Arith.Var.Set.empty
  | Shape si -> shape_info_free_vars si
  | Tensor { shape; _ } -> shape_info_free_vars shape
  | Tuple ts ->
      List.fold_left
        (fun acc t -> Arith.Var.Set.union acc (free_sym_vars t))
        Arith.Var.Set.empty ts
  | Callable { params; ret } ->
      List.fold_left
        (fun acc t -> Arith.Var.Set.union acc (free_sym_vars t))
        (free_sym_vars ret) params

let subst_shape_info env = function
  | Known dims -> Known (List.map (Arith.Expr.subst env) dims)
  | (Ndim _ | Unknown_rank) as si -> si

let rec subst env = function
  | (Object | Prim _) as t -> t
  | Shape si -> Shape (subst_shape_info env si)
  | Tensor { shape; dtype } -> Tensor { shape = subst_shape_info env shape; dtype }
  | Tuple ts -> Tuple (List.map (subst env) ts)
  | Callable { params; ret } ->
      Callable { params = List.map (subst env) params; ret = subst env ret }

let erase_shape_info = function
  | Known dims -> Ndim (List.length dims)
  | (Ndim _ | Unknown_rank) as si -> si

let rec erase_to_coarse = function
  | (Object | Prim _) as t -> t
  | Shape si -> Shape (erase_shape_info si)
  | Tensor { shape; dtype } -> Tensor { shape = erase_shape_info shape; dtype }
  | Tuple ts -> Tuple (List.map erase_to_coarse ts)
  | Callable _ as t -> t

let shape_info_equal a b =
  match (a, b) with
  | Known da, Known db -> Arith.Simplify.prove_equal_shapes da db
  | Ndim na, Ndim nb -> na = nb
  | Unknown_rank, Unknown_rank -> true
  | (Known _ | Ndim _ | Unknown_rank), _ -> false

let rec equal a b =
  match (a, b) with
  | Object, Object -> true
  | Prim da, Prim db -> Base.Dtype.equal da db
  | Shape sa, Shape sb -> shape_info_equal sa sb
  | Tensor ta, Tensor tb ->
      shape_info_equal ta.shape tb.shape
      && Option.equal Base.Dtype.equal ta.dtype tb.dtype
  | Tuple ta, Tuple tb ->
      List.length ta = List.length tb && List.for_all2 equal ta tb
  | Callable ca, Callable cb ->
      List.length ca.params = List.length cb.params
      && List.for_all2 equal ca.params cb.params
      && equal ca.ret cb.ret
  | (Object | Prim _ | Shape _ | Tensor _ | Tuple _ | Callable _), _ -> false

let shape_info_subsumes general specific =
  match (general, specific) with
  | Unknown_rank, (Known _ | Ndim _ | Unknown_rank) -> true
  | Ndim n, Known dims -> n = List.length dims
  | Ndim n, Ndim m -> n = m
  | Known da, Known db -> Arith.Simplify.prove_equal_shapes da db
  | (Known _ | Ndim _), _ -> false

let rec subsumes general specific =
  match (general, specific) with
  | Object, _ -> true
  | Prim da, Prim db -> Base.Dtype.equal da db
  | Shape sa, Shape sb -> shape_info_subsumes sa sb
  | Tensor ta, Tensor tb ->
      shape_info_subsumes ta.shape tb.shape
      && (match (ta.dtype, tb.dtype) with
         | None, _ -> true
         | Some da, Some db -> Base.Dtype.equal da db
         | Some _, None -> false)
  | Tuple ta, Tuple tb ->
      List.length ta = List.length tb && List.for_all2 subsumes ta tb
  | Callable ca, Callable cb ->
      (* Parameters contravariant, return covariant. *)
      List.length ca.params = List.length cb.params
      && List.for_all2 subsumes cb.params ca.params
      && subsumes ca.ret cb.ret
  | (Prim _ | Shape _ | Tensor _ | Tuple _ | Callable _), _ -> false

let pp_shape_info fmt = function
  | Known dims ->
      Format.fprintf fmt "(%s)"
        (String.concat ", " (List.map Arith.Expr.to_string dims))
  | Ndim n -> Format.fprintf fmt "ndim=%d" n
  | Unknown_rank -> Format.pp_print_string fmt "ndim=?"

let rec pp fmt = function
  | Object -> Format.pp_print_string fmt "Object"
  | Prim dt -> Format.fprintf fmt "Prim(\"%s\")" (Base.Dtype.to_string dt)
  | Shape si -> Format.fprintf fmt "Shape%a" pp_paren_shape si
  | Tensor { shape; dtype } ->
      Format.fprintf fmt "Tensor(%a%s)" pp_shape_info shape
        (match dtype with
        | Some dt -> Printf.sprintf ", \"%s\"" (Base.Dtype.to_string dt)
        | None -> "")
  | Tuple ts ->
      Format.fprintf fmt "Tuple[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp)
        ts
  | Callable { params; ret } ->
      Format.fprintf fmt "Callable([%a], %a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp)
        params pp ret

and pp_paren_shape fmt = function
  | Known dims ->
      Format.fprintf fmt "([%s])"
        (String.concat ", " (List.map Arith.Expr.to_string dims))
  | Ndim n -> Format.fprintf fmt "(ndim=%d)" n
  | Unknown_rank -> Format.pp_print_string fmt "(ndim=?)"

let to_string t = Format.asprintf "%a" pp t
