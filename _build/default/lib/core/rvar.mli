(** Relax graph-level variables.

    Each variable carries its structural annotation. Variables are
    identified by a unique id; two variables with the same surface
    name are distinct unless they are the same object. *)

type t = private { name : string; id : int; sinfo : Struct_info.t }

val fresh : string -> Struct_info.t -> t
val with_sinfo : t -> Struct_info.t -> t
(** Same identity, refined annotation (used by re-deduction). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val name : t -> string
val sinfo : t -> Struct_info.t
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
