let rec pp_expr fmt (e : Expr.expr) =
  match e with
  | Expr.Var v -> Rvar.pp fmt v
  | Expr.Const nd -> Format.fprintf fmt "const(%a)" Base.Ndarray.pp nd
  | Expr.Prim_value e -> Arith.Expr.pp fmt e
  | Expr.Shape_expr dims ->
      Format.fprintf fmt "shape(%s)"
        (String.concat ", " (List.map Arith.Expr.to_string dims))
  | Expr.Tuple es ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        es
  | Expr.Tuple_get (e, i) -> Format.fprintf fmt "%a[%d]" pp_expr e i
  | Expr.Global_var name -> Format.pp_print_string fmt name
  | Expr.Extern_func name -> Format.fprintf fmt "%S" name
  | Expr.Op name -> Format.pp_print_string fmt name
  | Expr.Call { callee; args; sinfo_args } ->
      Format.fprintf fmt "%a(%a%s)" pp_expr callee
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        args
        (match sinfo_args with
        | [] -> ""
        | sis ->
            ", " ^ String.concat ", " (List.map Struct_info.to_string sis))
  | Expr.If { cond; then_; else_ } ->
      Format.fprintf fmt "if %a then %a else %a" pp_expr cond pp_expr then_
        pp_expr else_
  | Expr.Seq { blocks; body } ->
      List.iter (pp_block fmt 4) blocks;
      Format.fprintf fmt "    return %a@\n" pp_expr body

and pp_branch fmt indent (e : Expr.expr) =
  let pad = String.make indent ' ' in
  match e with
  | Expr.Seq { blocks; body } ->
      List.iter (pp_block fmt indent) blocks;
      Format.fprintf fmt "%s%a@\n" pad pp_expr body
  | e -> Format.fprintf fmt "%s%a@\n" pad pp_expr e

and pp_block fmt indent (b : Expr.block) =
  let pad = String.make indent ' ' in
  if b.Expr.dataflow then Format.fprintf fmt "%swith dataflow():@\n" pad;
  let inner = if b.Expr.dataflow then indent + 2 else indent in
  let ipad = String.make inner ' ' in
  List.iter
    (fun binding ->
      match binding with
      | Expr.Bind (v, Expr.If { cond; then_; else_ }) ->
          Format.fprintf fmt "%s%s: %s = if %a:@\n" ipad (Rvar.name v)
            (Struct_info.to_string (Rvar.sinfo v))
            pp_expr cond;
          pp_branch fmt (inner + 2) then_;
          Format.fprintf fmt "%selse:@\n" ipad;
          pp_branch fmt (inner + 2) else_
      | Expr.Bind (v, e) ->
          Format.fprintf fmt "%s%s: %s = %a@\n" ipad (Rvar.name v)
            (Struct_info.to_string (Rvar.sinfo v))
            pp_expr e
      | Expr.Match_cast (v, e, si) ->
          Format.fprintf fmt "%s%s = match_cast(%a, %s)@\n" ipad (Rvar.name v)
            pp_expr e (Struct_info.to_string si))
    b.Expr.bindings

let pp_func fmt name (f : Expr.func) =
  Format.fprintf fmt "def %s(%s) -> %s:@\n" name
    (String.concat ", "
       (List.map
          (fun p ->
            Printf.sprintf "%s: %s" (Rvar.name p)
              (Struct_info.to_string (Rvar.sinfo p)))
          f.Expr.params))
    (Struct_info.to_string f.Expr.ret_sinfo);
  (match f.Expr.attrs with
  | [] -> ()
  | attrs ->
      Format.fprintf fmt "    # attrs: %s@\n"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs)));
  match f.Expr.body with
  | Expr.Seq _ as body -> pp_expr fmt body
  | body -> Format.fprintf fmt "    return %a@\n" pp_expr body

let pp_module fmt (m : Ir_module.t) =
  List.iter
    (fun (name, item) ->
      (match item with
      | Ir_module.Relax_func f -> pp_func fmt name f
      | Ir_module.Tir_func f -> Tir.Prim_func.pp fmt f);
      Format.pp_print_newline fmt ())
    (Ir_module.items m)

let module_to_string m = Format.asprintf "%a" pp_module m
let func_to_string name f = Format.asprintf "%a" (fun fmt -> pp_func fmt name) f
