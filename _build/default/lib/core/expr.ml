type expr =
  | Var of Rvar.t
  | Const of Base.Ndarray.t
  | Prim_value of Arith.Expr.t
  | Shape_expr of Arith.Expr.t list
  | Tuple of expr list
  | Tuple_get of expr * int
  | Global_var of string
  | Extern_func of string
  | Op of string
  | Call of call
  | If of { cond : expr; then_ : expr; else_ : expr }
  | Seq of { blocks : block list; body : expr }

and call = {
  callee : expr;
  args : expr list;
  sinfo_args : Struct_info.t list;
}

and binding =
  | Bind of Rvar.t * expr
  | Match_cast of Rvar.t * expr * Struct_info.t

and block = { dataflow : bool; bindings : binding list }

type func = {
  params : Rvar.t list;
  ret_sinfo : Struct_info.t;
  body : expr;
  attrs : (string * string) list;
}

let call_op name args = Call { callee = Op name; args; sinfo_args = [] }
let call_fn callee args = Call { callee; args; sinfo_args = [] }

let call_tir fname args ~out ?(sym_args = []) () =
  Call
    {
      callee = Op "call_tir";
      args = [ Global_var fname; Tuple args; Shape_expr sym_args ];
      sinfo_args = [ out ];
    }

let call_dps_library fname args ~out =
  Call
    {
      callee = Op "call_dps_library";
      args = [ Extern_func fname; Tuple args ];
      sinfo_args = [ out ];
    }

let call_tir_inplace fname args ~out_index ~out ?(sym_args = []) () =
  Call
    {
      callee = Op "call_tir_inplace";
      args =
        [ Global_var fname; Tuple args; Shape_expr sym_args;
          Prim_value (Arith.Expr.const out_index) ];
      sinfo_args = [ out ];
    }

let as_call_tir_inplace = function
  | Call
      {
        callee = Op "call_tir_inplace";
        args =
          [ Global_var fname; Tuple args; Shape_expr sym_args;
            Prim_value idx ];
        sinfo_args = [ out ];
      } -> (
      match Arith.Expr.as_const idx with
      | Some i -> Some (fname, args, i, out, sym_args)
      | None -> None)
  | _ -> None

let as_call_tir = function
  | Call
      {
        callee = Op "call_tir";
        args = [ Global_var fname; Tuple args; Shape_expr sym_args ];
        sinfo_args = [ out ];
      } ->
      Some (fname, args, out, sym_args)
  | _ -> None

let as_call_dps_library = function
  | Call
      {
        callee = Op "call_dps_library";
        args = [ Extern_func fname; Tuple args ];
        sinfo_args = [ out ];
      } ->
      Some (fname, args, out)
  | _ -> None

let binding_var = function Bind (v, _) -> v | Match_cast (v, _, _) -> v
let bound_expr = function Bind (_, e) -> e | Match_cast (_, e, _) -> e

let func_callable_sinfo f =
  Struct_info.Callable
    { params = List.map Rvar.sinfo f.params; ret = f.ret_sinfo }

let body_blocks f =
  match f.body with
  | Seq { blocks; body } -> (blocks, body)
  | (Var _ | Const _ | Prim_value _ | Shape_expr _ | Tuple _ | Tuple_get _
    | Global_var _ | Extern_func _ | Op _ | Call _ | If _) as e ->
      ([], e)

let map_bindings fn f =
  let map_block b = { b with bindings = List.map fn b.bindings } in
  let body =
    match f.body with
    | Seq { blocks; body } -> Seq { blocks = List.map map_block blocks; body }
    | e -> e
  in
  { f with body }

let rec free_vars_aux bound acc = function
  | Var v -> if Rvar.Set.mem v bound then acc else Rvar.Set.add v acc
  | Const _ | Prim_value _ | Shape_expr _ | Global_var _ | Extern_func _
  | Op _ ->
      acc
  | Tuple es -> List.fold_left (free_vars_aux bound) acc es
  | Tuple_get (e, _) -> free_vars_aux bound acc e
  | Call { callee; args; _ } ->
      List.fold_left (free_vars_aux bound) (free_vars_aux bound acc callee) args
  | If { cond; then_; else_ } ->
      let acc = free_vars_aux bound acc cond in
      let acc = free_vars_aux bound acc then_ in
      free_vars_aux bound acc else_
  | Seq { blocks; body } ->
      let bound, acc =
        List.fold_left
          (fun (bound, acc) block ->
            List.fold_left
              (fun (bound, acc) b ->
                let acc = free_vars_aux bound acc (bound_expr b) in
                (Rvar.Set.add (binding_var b) bound, acc))
              (bound, acc) block.bindings)
          (bound, acc) blocks
      in
      free_vars_aux bound acc body

let free_vars e = free_vars_aux Rvar.Set.empty Rvar.Set.empty e

let rec sym_vars_of_expr = function
  | Var v -> Struct_info.free_sym_vars (Rvar.sinfo v)
  | Const _ | Global_var _ | Extern_func _ | Op _ -> Arith.Var.Set.empty
  | Prim_value e -> Arith.Expr.free_vars e
  | Shape_expr dims ->
      List.fold_left
        (fun acc d -> Arith.Var.Set.union acc (Arith.Expr.free_vars d))
        Arith.Var.Set.empty dims
  | Tuple es ->
      List.fold_left
        (fun acc e -> Arith.Var.Set.union acc (sym_vars_of_expr e))
        Arith.Var.Set.empty es
  | Tuple_get (e, _) -> sym_vars_of_expr e
  | Call { callee; args; sinfo_args } ->
      let acc = sym_vars_of_expr callee in
      let acc =
        List.fold_left
          (fun acc e -> Arith.Var.Set.union acc (sym_vars_of_expr e))
          acc args
      in
      List.fold_left
        (fun acc si -> Arith.Var.Set.union acc (Struct_info.free_sym_vars si))
        acc sinfo_args
  | If { cond; then_; else_ } ->
      Arith.Var.Set.union (sym_vars_of_expr cond)
        (Arith.Var.Set.union (sym_vars_of_expr then_) (sym_vars_of_expr else_))
  | Seq { blocks; body } ->
      let acc =
        List.fold_left
          (fun acc block ->
            List.fold_left
              (fun acc b ->
                let acc =
                  Arith.Var.Set.union acc (sym_vars_of_expr (bound_expr b))
                in
                Arith.Var.Set.union acc
                  (Struct_info.free_sym_vars (Rvar.sinfo (binding_var b))))
              acc block.bindings)
          Arith.Var.Set.empty blocks
      in
      Arith.Var.Set.union acc (sym_vars_of_expr body)

let free_sym_vars_of_func f =
  let introduced =
    List.fold_left
      (fun acc p ->
        Arith.Var.Set.union acc (Struct_info.free_sym_vars (Rvar.sinfo p)))
      Arith.Var.Set.empty f.params
  in
  (* match_cast bindings also introduce symbolic variables. *)
  let introduced =
    match f.body with
    | Seq { blocks; _ } ->
        List.fold_left
          (fun acc block ->
            List.fold_left
              (fun acc b ->
                match b with
                | Match_cast (_, _, si) ->
                    Arith.Var.Set.union acc (Struct_info.free_sym_vars si)
                | Bind _ -> acc)
              acc block.bindings)
          introduced blocks
    | _ -> introduced
  in
  Arith.Var.Set.diff
    (Arith.Var.Set.union (sym_vars_of_expr f.body)
       (Struct_info.free_sym_vars f.ret_sinfo))
    introduced

let callee_tir_names f =
  let blocks, _ = body_blocks f in
  List.concat_map
    (fun block ->
      List.filter_map
        (fun b ->
          match as_call_tir (bound_expr b) with
          | Some (name, _, _, _) -> Some name
          | None -> None)
        block.bindings)
    blocks
