type item = Relax_func of Expr.func | Tir_func of Tir.Prim_func.t

module Smap = Map.Make (String)

type t = {
  table : item Smap.t;
  order : string list;  (** reverse insertion order *)
}

let empty = { table = Smap.empty; order = [] }

let add t name item =
  let order = if Smap.mem name t.table then t.order else name :: t.order in
  { table = Smap.add name item t.table; order }

let add_func t name f = add t name (Relax_func f)
let add_tir t name f = add t name (Tir_func f)

let add_tir_fresh t (f : Tir.Prim_func.t) =
  let base = f.Tir.Prim_func.name in
  let rec pick i =
    let candidate = if i = 0 then base else Printf.sprintf "%s_%d" base i in
    if Smap.mem candidate t.table then pick (i + 1) else candidate
  in
  let name = pick 0 in
  let f = Tir.Prim_func.with_name f name in
  (add_tir t name f, name)

let remove t name =
  {
    table = Smap.remove name t.table;
    order = List.filter (fun n -> n <> name) t.order;
  }

let find t name = Smap.find_opt name t.table

let find_func t name =
  match find t name with
  | Some (Relax_func f) -> Some f
  | Some (Tir_func _) | None -> None

let find_tir t name =
  match find t name with
  | Some (Tir_func f) -> Some f
  | Some (Relax_func _) | None -> None

let mem t name = Smap.mem name t.table

let items t =
  List.rev_map (fun name -> (name, Smap.find name t.table)) t.order

let funcs t =
  List.filter_map
    (fun (name, item) ->
      match item with Relax_func f -> Some (name, f) | Tir_func _ -> None)
    (items t)

let tir_funcs t =
  List.filter_map
    (fun (name, item) ->
      match item with Tir_func f -> Some (name, f) | Relax_func _ -> None)
    (items t)

let map_funcs fn t =
  {
    t with
    table =
      Smap.mapi
        (fun name item ->
          match item with
          | Relax_func f -> Relax_func (fn name f)
          | Tir_func _ -> item)
        t.table;
  }

let map_tir fn t =
  {
    t with
    table =
      Smap.mapi
        (fun name item ->
          match item with
          | Tir_func f -> Tir_func (fn name f)
          | Relax_func _ -> item)
        t.table;
  }

let update_func t name f =
  if not (Smap.mem name t.table) then raise Not_found;
  { t with table = Smap.add name (Relax_func f) t.table }
