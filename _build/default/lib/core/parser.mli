(** Parser for the printed Relax surface syntax.

    Inverse of {!Printer} for graph-level functions: modules written
    in the paper-style syntax (Figures 3-4) — function definitions
    with struct-info annotations, dataflow blocks, bindings,
    [match_cast], operator calls, [call_tir]-style cross-level calls
    and first-class shape expressions — parse back into
    {!Ir_module.t}, giving the usual write/print/parse round trip.

    Scope and conventions:
    - Graph-level functions only: tensor programs are registered
      programmatically (a [@tensorir_function] section is rejected).
    - Symbolic shape variables are scoped per function and identified
      by name: every occurrence of [n] inside one function denotes
      the same variable.
    - A callee name resolves to (in priority order) a bound variable,
      a previously parsed or pre-registered global, or a primitive
      operator.
    - Constants ([const(...)]) and [if] bindings are printed in a
      lossy form and are rejected by the parser. *)

exception Parse_error of string
(** Carries a line/column-annotated message. *)

val parse_module : ?into:Ir_module.t -> string -> Ir_module.t
(** Parse every function definition in the text, adding them (in
    order) to [into] (default {!Ir_module.empty}) — existing entries
    are available for callee resolution.
    @raise Parse_error on malformed input. *)

val parse_func : ?mod_:Ir_module.t -> string -> string * Expr.func
(** Parse exactly one function definition; returns its name. *)

val parse_sinfo : string -> Struct_info.t
(** Parse a standalone annotation, e.g.
    ["Tensor((n, 4), \"f32\")"]. Symbolic names create fresh
    variables scoped to this call. *)
