(** The cross-level IR module.

    One container maps global names to functions of either level:
    graph-level Relax functions and loop-level tensor programs share a
    namespace and are transformed jointly by passes — the essence of
    the paper's cross-level abstraction (§3.3). *)

type item =
  | Relax_func of Expr.func
  | Tir_func of Tir.Prim_func.t

type t

val empty : t
val add_func : t -> string -> Expr.func -> t
val add_tir : t -> string -> Tir.Prim_func.t -> t
val add_tir_fresh : t -> Tir.Prim_func.t -> t * string
(** Add a tensor program under its own name, suffixing to avoid
    collisions; returns the name actually used. *)

val remove : t -> string -> t
val find : t -> string -> item option
val find_func : t -> string -> Expr.func option
val find_tir : t -> string -> Tir.Prim_func.t option
val mem : t -> string -> bool

val funcs : t -> (string * Expr.func) list
(** Graph-level functions in insertion order. *)

val tir_funcs : t -> (string * Tir.Prim_func.t) list
val items : t -> (string * item) list

val map_funcs : (string -> Expr.func -> Expr.func) -> t -> t
val map_tir : (string -> Tir.Prim_func.t -> Tir.Prim_func.t) -> t -> t

val update_func : t -> string -> Expr.func -> t
(** Replace an existing graph function. @raise Not_found if absent. *)
