type t = { name : string; id : int }

let fresh name = { name; id = Base.Id.fresh () }
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let name t = t.name
let pp fmt t = Format.pp_print_string fmt t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
