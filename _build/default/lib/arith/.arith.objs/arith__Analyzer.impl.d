lib/arith/analyzer.ml: Bounds Expr Simplify Var
