lib/arith/bounds.ml: Expr Format List Option Simplify
