lib/arith/expr.ml: Format Int Stdlib Var
