lib/arith/simplify.ml: Expr Int List Map Var
