lib/arith/var.ml: Base Format Int Map Set
