lib/arith/simplify.mli: Expr
