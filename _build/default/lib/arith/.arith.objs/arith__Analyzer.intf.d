lib/arith/analyzer.mli: Bounds Expr Var
