lib/arith/expr.mli: Format Var
