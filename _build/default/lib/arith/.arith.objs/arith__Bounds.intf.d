lib/arith/bounds.mli: Expr Format Var
