lib/arith/var.mli: Format Map Set
