(** Canonical simplification of symbolic integer expressions.

    Expressions are normalized to a sum-of-products form: a polynomial
    with integer coefficients over "atoms" (variables and opaque
    subterms such as [floordiv]/[floormod]/[min]/[max] whose arguments
    are recursively canonicalized). Two expressions are proved equal by
    canonicalizing their difference to the constant zero — this is the
    [RequestReuseWithSymShape] equality oracle of Algorithm 3 and the
    expression-equality proof mentioned in §3.1 of the paper. *)

val simplify : Expr.t -> Expr.t
(** Canonical form. Idempotent: [simplify (simplify e)] is
    syntactically equal to [simplify e]. *)

val prove_equal : Expr.t -> Expr.t -> bool
(** [prove_equal a b] is [true] only if [a = b] for every assignment
    of the free variables. A [false] answer means "could not prove",
    not "provably different". *)

val prove_equal_shapes : Expr.t list -> Expr.t list -> bool
(** Pointwise {!prove_equal} on equal-length dimension lists. *)
