type interval = { lo : int option; hi : int option }

let unbounded = { lo = None; hi = None }
let exactly c = { lo = Some c; hi = Some c }
let range lo hi = { lo = Some lo; hi = Some hi }
let at_least lo = { lo = Some lo; hi = None }
let at_most hi = { lo = None; hi = Some hi }

let opt_map2 f a b =
  match (a, b) with Some x, Some y -> Some (f x y) | _, _ -> None

let add_i a b = { lo = opt_map2 ( + ) a.lo b.lo; hi = opt_map2 ( + ) a.hi b.hi }

let neg_i a =
  { lo = Option.map (fun x -> -x) a.hi; hi = Option.map (fun x -> -x) a.lo }

let sub_i a b = add_i a (neg_i b)

(* Multiplication considers the four corner products; any missing
   corner that could matter makes that side unbounded. With signs
   unknown, a single infinite endpoint poisons both sides. *)
let mul_i a b =
  let corners =
    [ (a.lo, b.lo); (a.lo, b.hi); (a.hi, b.lo); (a.hi, b.hi) ]
  in
  let products = List.map (fun (x, y) -> opt_map2 ( * ) x y) corners in
  if List.exists (fun p -> p = None) products then
    (* A finite result is still possible when one operand is exactly 0;
       keep it simple and sound: only fully finite operands give finite
       bounds, except multiplication by the exact constant zero. *)
    if a = exactly 0 || b = exactly 0 then exactly 0 else unbounded
  else
    let vals = List.filter_map (fun p -> p) products in
    { lo = Some (List.fold_left min max_int vals);
      hi = Some (List.fold_left max min_int vals) }

let div_const_i a c =
  if c > 0 then
    { lo = Option.map (fun x -> Expr.fdiv x c) a.lo;
      hi = Option.map (fun x -> Expr.fdiv x c) a.hi }
  else if c < 0 then
    { lo = Option.map (fun x -> Expr.fdiv x c) a.hi;
      hi = Option.map (fun x -> Expr.fdiv x c) a.lo }
  else unbounded

let min_i a b =
  { lo = opt_map2 min a.lo b.lo;
    hi =
      (match (a.hi, b.hi) with
      | Some x, Some y -> Some (min x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None) }

let max_i a b =
  { hi = opt_map2 max a.hi b.hi;
    lo =
      (match (a.lo, b.lo) with
      | Some x, Some y -> Some (max x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None) }

let rec eval env (e : Expr.t) : interval =
  match e with
  | Expr.Const c -> exactly c
  | Expr.Var v -> env v
  | Expr.Add (a, b) -> add_i (eval env a) (eval env b)
  | Expr.Sub (a, b) -> sub_i (eval env a) (eval env b)
  | Expr.Mul (a, b) -> mul_i (eval env a) (eval env b)
  | Expr.Floor_div (a, b) -> (
      match Expr.as_const b with
      | Some c when c <> 0 -> div_const_i (eval env a) c
      | _ -> unbounded)
  | Expr.Floor_mod (_, b) -> (
      (* x mod c lies in [0, c-1] for positive c regardless of x. *)
      match Expr.as_const b with
      | Some c when c > 0 -> range 0 (c - 1)
      | _ -> unbounded)
  | Expr.Min (a, b) -> min_i (eval env a) (eval env b)
  | Expr.Max (a, b) -> max_i (eval env a) (eval env b)

let upper_bound env e = (eval env (Simplify.simplify e)).hi
let lower_bound env e = (eval env (Simplify.simplify e)).lo

let prove_nonneg env e =
  match lower_bound env e with Some lo -> lo >= 0 | None -> false

let prove_leq env a b = prove_nonneg env (Expr.Sub (b, a))

let pp_interval fmt { lo; hi } =
  let pp_opt fmt = function
    | Some x -> Format.pp_print_int fmt x
    | None -> Format.pp_print_string fmt "inf"
  in
  Format.fprintf fmt "[%a, %a]" pp_opt lo pp_opt hi
