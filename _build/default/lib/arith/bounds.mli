(** Interval (bound) analysis for symbolic expressions.

    Used by dynamic shape–aware memory planning (§4.3): when the user
    annotates upper bounds for symbolic variables (e.g. the maximum
    context length of an LLM), the planner computes a static upper
    bound for every symbolic allocation size and allocates adequate
    memory ahead of time. *)

type interval = { lo : int option; hi : int option }
(** [None] means unbounded on that side. *)

val unbounded : interval
val exactly : int -> interval
val range : int -> int -> interval
val at_least : int -> interval
val at_most : int -> interval

val eval : (Var.t -> interval) -> Expr.t -> interval
(** Interval of the expression under per-variable intervals.
    Conservative: the true range is always contained in the result. *)

val upper_bound : (Var.t -> interval) -> Expr.t -> int option
(** [Some hi] iff a finite upper bound can be established. *)

val lower_bound : (Var.t -> interval) -> Expr.t -> int option

val prove_nonneg : (Var.t -> interval) -> Expr.t -> bool
(** [true] only if the expression is provably [>= 0]. *)

val prove_leq : (Var.t -> interval) -> Expr.t -> Expr.t -> bool
(** [prove_leq env a b] is [true] only if [a <= b] is provable from
    the intervals after canonicalizing [b - a]. *)

val pp_interval : Format.formatter -> interval -> unit
