type t =
  | Const of int
  | Var of Var.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Floor_div of t * t
  | Floor_mod of t * t
  | Min of t * t
  | Max of t * t

let const c = Const c
let var v = Var v
let sym name = Var (Var.fresh name)

(* Floor division/modulo on native ints; OCaml's (/) truncates toward
   zero, which differs from floor semantics for negative operands. *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if (r <> 0) && (r < 0) <> (b < 0) then q - 1 else q

let fmod a b =
  let r = a mod b in
  if (r <> 0) && (r < 0) <> (b < 0) then r + b else r

let add a b =
  match (a, b) with
  | Const x, Const y -> Const (x + y)
  | Const 0, e | e, Const 0 -> e
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | Const x, Const y -> Const (x - y)
  | e, Const 0 -> e
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Const x, Const y -> Const (x * y)
  | Const 1, e | e, Const 1 -> e
  | (Const 0 as z), _ | _, (Const 0 as z) -> z
  | _ -> Mul (a, b)

let floor_div a b =
  match (a, b) with
  | Const x, Const y when y <> 0 -> Const (fdiv x y)
  | e, Const 1 -> e
  | _ -> Floor_div (a, b)

let floor_mod a b =
  match (a, b) with
  | Const x, Const y when y <> 0 -> Const (fmod x y)
  | _, Const 1 -> Const 0
  | _ -> Floor_mod (a, b)

let min_ a b =
  match (a, b) with
  | Const x, Const y -> Const (min x y)
  | _ -> Min (a, b)

let max_ a b =
  match (a, b) with
  | Const x, Const y -> Const (max x y)
  | _ -> Max (a, b)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = floor_div
let ( % ) = floor_mod

let rec free_vars = function
  | Const _ -> Var.Set.empty
  | Var v -> Var.Set.singleton v
  | Add (a, b)
  | Sub (a, b)
  | Mul (a, b)
  | Floor_div (a, b)
  | Floor_mod (a, b)
  | Min (a, b)
  | Max (a, b) ->
      Var.Set.union (free_vars a) (free_vars b)

let as_const = function Const c -> Some c | _ -> None
let is_const = function Const _ -> true | _ -> false

let rec equal_syntactic a b =
  match (a, b) with
  | Const x, Const y -> Int.equal x y
  | Var x, Var y -> Var.equal x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Floor_div (a1, a2), Floor_div (b1, b2)
  | Floor_mod (a1, a2), Floor_mod (b1, b2)
  | Min (a1, a2), Min (b1, b2)
  | Max (a1, a2), Max (b1, b2) ->
      equal_syntactic a1 b1 && equal_syntactic a2 b2
  | ( ( Const _ | Var _ | Add _ | Sub _ | Mul _ | Floor_div _ | Floor_mod _
      | Min _ | Max _ ),
      _ ) ->
      false

let node_rank = function
  | Const _ -> 0
  | Var _ -> 1
  | Add _ -> 2
  | Sub _ -> 3
  | Mul _ -> 4
  | Floor_div _ -> 5
  | Floor_mod _ -> 6
  | Min _ -> 7
  | Max _ -> 8

let rec compare_syntactic a b =
  match (a, b) with
  | Const x, Const y -> Int.compare x y
  | Var x, Var y -> Var.compare x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Floor_div (a1, a2), Floor_div (b1, b2)
  | Floor_mod (a1, a2), Floor_mod (b1, b2)
  | Min (a1, a2), Min (b1, b2)
  | Max (a1, a2), Max (b1, b2) ->
      let c = compare_syntactic a1 b1 in
      if c <> 0 then c else compare_syntactic a2 b2
  | ( ( Const _ | Var _ | Add _ | Sub _ | Mul _ | Floor_div _ | Floor_mod _
      | Min _ | Max _ ),
      _ ) ->
      Int.compare (node_rank a) (node_rank b)

let rec subst env = function
  | Const _ as e -> e
  | Var v as e -> ( match Var.Map.find_opt v env with Some e' -> e' | None -> e)
  | Add (a, b) -> add (subst env a) (subst env b)
  | Sub (a, b) -> sub (subst env a) (subst env b)
  | Mul (a, b) -> mul (subst env a) (subst env b)
  | Floor_div (a, b) -> floor_div (subst env a) (subst env b)
  | Floor_mod (a, b) -> floor_mod (subst env a) (subst env b)
  | Min (a, b) -> min_ (subst env a) (subst env b)
  | Max (a, b) -> max_ (subst env a) (subst env b)

let rec eval env = function
  | Const c -> c
  | Var v -> env v
  | Add (a, b) -> Stdlib.( + ) (eval env a) (eval env b)
  | Sub (a, b) -> Stdlib.( - ) (eval env a) (eval env b)
  | Mul (a, b) -> Stdlib.( * ) (eval env a) (eval env b)
  | Floor_div (a, b) ->
      let d = eval env b in
      if d = 0 then raise Division_by_zero else fdiv (eval env a) d
  | Floor_mod (a, b) ->
      let d = eval env b in
      if d = 0 then raise Division_by_zero else fmod (eval env a) d
  | Min (a, b) -> Stdlib.min (eval env a) (eval env b)
  | Max (a, b) -> Stdlib.max (eval env a) (eval env b)

let eval_opt env e =
  let exception Unbound in
  let lookup v = match env v with Some x -> x | None -> raise Unbound in
  match eval lookup e with
  | x -> Some x
  | exception (Unbound | Division_by_zero) -> None

(* Precedence-aware printing: additive 1, multiplicative 2, atoms 3. *)
let rec pp_prec prec fmt e =
  let open Format in
  let paren p body =
    if Stdlib.( > ) prec p then fprintf fmt "(%t)" body else body fmt
  in
  match e with
  | Const c -> pp_print_int fmt c
  | Var v -> Var.pp fmt v
  | Add (a, b) ->
      paren 1 (fun fmt -> fprintf fmt "%a + %a" (pp_prec 1) a (pp_prec 2) b)
  | Sub (a, b) ->
      paren 1 (fun fmt -> fprintf fmt "%a - %a" (pp_prec 1) a (pp_prec 2) b)
  | Mul (a, b) ->
      paren 2 (fun fmt -> fprintf fmt "%a * %a" (pp_prec 2) a (pp_prec 3) b)
  | Floor_div (a, b) ->
      paren 2 (fun fmt -> fprintf fmt "%a // %a" (pp_prec 2) a (pp_prec 3) b)
  | Floor_mod (a, b) ->
      paren 2 (fun fmt -> fprintf fmt "%a %% %a" (pp_prec 2) a (pp_prec 3) b)
  | Min (a, b) ->
      paren 3 (fun fmt -> fprintf fmt "min(%a, %a)" (pp_prec 0) a (pp_prec 0) b)
  | Max (a, b) ->
      paren 3 (fun fmt -> fprintf fmt "max(%a, %a)" (pp_prec 0) a (pp_prec 0) b)

let pp fmt e = pp_prec 0 fmt e
let to_string e = Format.asprintf "%a" pp e
