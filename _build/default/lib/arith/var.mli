(** Symbolic integer variables.

    A variable pairs a surface name (e.g. ["n"]) with a process-unique
    id, so two [sym_var "n"] calls produce distinct variables. Shape
    annotations, loop extents and loop indices all use this type. *)

type t = private { name : string; id : int }

val fresh : string -> t
(** A new variable distinct from every previously created one. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val name : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
