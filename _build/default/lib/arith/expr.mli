(** Symbolic integer expressions.

    This is the single expression system shared by loop-level tensor
    programs (extents, indices) and graph-level shape annotations, as
    in the paper (§3.1): "we reuse the loop-level tensor program
    expression system, so that shape annotations support all integer
    expressions that tensor programs support".

    Division and modulo follow floor semantics (rounding toward
    negative infinity), matching TVM's [floordiv]/[floormod]. *)

type t =
  | Const of int
  | Var of Var.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Floor_div of t * t
  | Floor_mod of t * t
  | Min of t * t
  | Max of t * t

(** {1 Smart constructors}

    These perform cheap local folding (constants, neutral elements)
    but no global canonicalization; see {!Simplify} for that. *)

val const : int -> t
val var : Var.t -> t
val sym : string -> t
(** [sym name] is [var (Var.fresh name)]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val floor_div : t -> t -> t
val floor_mod : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( % ) : t -> t -> t

(** {1 Integer helpers} *)

val fdiv : int -> int -> int
(** Floor division on native ints (rounds toward negative infinity). *)

val fmod : int -> int -> int
(** Floor modulo on native ints; result has the divisor's sign. *)

(** {1 Queries} *)

val free_vars : t -> Var.Set.t

val as_const : t -> int option
(** [Some c] iff the expression is syntactically [Const c]. *)

val is_const : t -> bool

val equal_syntactic : t -> t -> bool
(** Structural equality up to nothing — no algebra. Use
    {!Simplify.prove_equal} for semantic equality. *)

val compare_syntactic : t -> t -> int

(** {1 Transformations} *)

val subst : t Var.Map.t -> t -> t
(** Capture-free substitution of variables by expressions. *)

val eval : (Var.t -> int) -> t -> int
(** Evaluate under a full environment.
    @raise Division_by_zero on division or modulo by zero. *)

val eval_opt : (Var.t -> int option) -> t -> int option
(** Evaluate under a partial environment; [None] if any needed
    variable is unbound or a division by zero occurs. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
