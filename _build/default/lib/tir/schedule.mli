(** Loop transformations on tensor programs (the TensorIR scheduling
    layer used by §4.6's "analysis-based dynamic shape-aware schedule
    rules").

    Schedules are semantics-preserving rewrites of a prim func's loop
    nest. Loops are identified by their loop variable. Splitting a
    loop with a symbolic extent inserts a bounds guard unless the
    factor provably divides the extent — the shape-aware
    specialization of §3.3 (static dimensions get guard-free tiled
    code, dynamic ones keep the guard). *)

exception Schedule_error of string

val loop_vars : Prim_func.t -> Arith.Var.t list
(** All loop variables, outermost-first in program order. *)

val split :
  Prim_func.t -> loop:Arith.Var.t -> factor:int -> Prim_func.t * Arith.Var.t * Arith.Var.t
(** [split f ~loop ~factor] replaces [for v in extent] by
    [for v_o in ceil(extent/factor): for v_i in factor] with
    [v := v_o * factor + v_i], guarding the body when divisibility
    cannot be proved. Returns the new function and the outer/inner
    loop variables.
    @raise Schedule_error if the loop is not found or [factor <= 0]. *)

val reorder : Prim_func.t -> outer:Arith.Var.t -> inner:Arith.Var.t -> Prim_func.t
(** Swap two perfectly-nested adjacent loops ([inner]'s [For] must be
    the entire body of [outer]'s, and [inner]'s extent must not use
    [outer]'s variable). The caller asserts iteration independence, as
    in TensorIR's unchecked schedule primitives; the test suite
    verifies equivalence through the interpreter.
    @raise Schedule_error if the loops are not perfectly nested. *)

val parallelize : Prim_func.t -> loop:Arith.Var.t -> Prim_func.t
(** Mark a loop as parallel (a code-generation annotation). *)

val unroll : Prim_func.t -> loop:Arith.Var.t -> Prim_func.t
(** Fully unroll a loop with a small constant extent.
    @raise Schedule_error if the extent is not a constant [<= 64]. *)

val tile2 :
  Prim_func.t ->
  i:Arith.Var.t ->
  j:Arith.Var.t ->
  ti:int ->
  tj:int ->
  Prim_func.t
(** Classic 2-D tiling of two perfectly-nested loops:
    [(i, j) -> (i_o, j_o, i_i, j_i)]. *)

val auto_schedule : Prim_func.t -> Prim_func.t
(** The analysis-based rule of §4.6: classify the program
    ({!Pattern.classify}) and apply a matching default schedule —
    tile + parallelize matmul-like programs on their two output
    loops, parallelize the outermost loop of elementwise/injective
    programs, leave the rest untouched. Dynamic extents keep their
    guards; static ones tile cleanly. *)
