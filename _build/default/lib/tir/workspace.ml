let detect (f : Prim_func.t) =
  List.filter
    (fun b ->
      match b.Buffer.scope with
      | Buffer.Global -> true
      | Buffer.Shared | Buffer.Local -> false)
    (Stmt.allocs f.Prim_func.body)

let rec remove_global_allocs (s : Stmt.t) : Stmt.t =
  match s with
  | Stmt.Seq ss -> Stmt.seq (List.map remove_global_allocs ss)
  | Stmt.For r -> Stmt.For { r with body = remove_global_allocs r.body }
  | Stmt.Alloc (b, body) -> (
      match b.Buffer.scope with
      | Buffer.Global -> remove_global_allocs body
      | Buffer.Shared | Buffer.Local ->
          Stmt.Alloc (b, remove_global_allocs body))
  | Stmt.If (c, t, e) ->
      Stmt.If (c, remove_global_allocs t, Option.map remove_global_allocs e)
  | (Stmt.Store _ | Stmt.Assert _ | Stmt.Evaluate _) as s -> s

let lift (f : Prim_func.t) =
  match detect f with
  | [] -> None
  | workspaces ->
      let body = remove_global_allocs f.Prim_func.body in
      let params =
        Prim_func.inputs f @ workspaces @ Prim_func.outputs f
      in
      let f' =
        Prim_func.create
          ~sym_params:f.Prim_func.sym_params
          ~num_outputs:f.Prim_func.num_outputs
          ~attrs:f.Prim_func.attrs ~name:f.Prim_func.name ~params body
      in
      Some (f', workspaces)
