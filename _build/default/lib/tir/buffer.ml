type scope = Global | Shared | Local

type t = {
  name : string;
  id : int;
  shape : Arith.Expr.t list;
  dtype : Base.Dtype.t;
  scope : scope;
}

let create ?(scope = Global) name shape dtype =
  { name; id = Base.Id.fresh (); shape; dtype; scope }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let ndim t = List.length t.shape

let numel t =
  List.fold_left Arith.Expr.mul (Arith.Expr.const 1) t.shape

let size_in_bytes t =
  Arith.Expr.mul (numel t)
    (Arith.Expr.const (Base.Dtype.size_in_bytes t.dtype))

let free_sym_vars t =
  List.fold_left
    (fun acc d -> Arith.Var.Set.union acc (Arith.Expr.free_vars d))
    Arith.Var.Set.empty t.shape

let with_shape t shape = { t with shape }

let scope_to_string = function
  | Global -> "global"
  | Shared -> "shared"
  | Local -> "local"

let pp fmt t =
  Format.fprintf fmt "%s: Buffer((%s), \"%s\")" t.name
    (String.concat ", " (List.map Arith.Expr.to_string t.shape))
    (Base.Dtype.to_string t.dtype)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
