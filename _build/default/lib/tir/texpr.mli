(** Scalar value expressions inside tensor programs.

    These are the right-hand sides of buffer stores: loads, float and
    integer arithmetic, comparisons, bit manipulation (for quantized
    weight decoding), casts and selects. Integer index arithmetic over
    loop and shape variables is embedded via the [Idx] constructor,
    keeping the symbolic-shape expression system ({!Arith.Expr})
    shared between levels. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div          (** float division / integer truncated division *)
  | Floor_div
  | Floor_mod
  | Min
  | Max
  | Pow
  | Bit_and
  | Bit_or
  | Bit_xor
  | Shift_left
  | Shift_right
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Exp
  | Log
  | Sqrt
  | Rsqrt
  | Tanh
  | Sigmoid
  | Erf
  | Abs
  | Not
  | Cos
  | Sin

type t =
  | Imm_int of int
  | Imm_float of float
  | Idx of Arith.Expr.t
      (** integer expression over loop/shape variables *)
  | Load of Buffer.t * t list
  | Binop of binop * t * t
  | Unop of unop * t
  | Cast of Base.Dtype.t * t
  | Select of t * t * t  (** [Select (cond, then_, else_)] *)

val idx : Arith.Expr.t -> t
val iv : Arith.Var.t -> t
(** Index variable as a value. *)

val f : float -> t
val i : int -> t
val load : Buffer.t -> Arith.Expr.t list -> t
(** Load with plain integer indices (the common, analyzable case). *)

val load_v : Buffer.t -> t list -> t
(** Load with arbitrary value indices (data-dependent gather). *)

val ( +. ) : t -> t -> t
val ( -. ) : t -> t -> t
val ( *. ) : t -> t -> t
val ( /. ) : t -> t -> t

val as_index : t -> Arith.Expr.t option
(** [Some e] iff the expression is a pure integer index expression. *)

val map_buffers : (Buffer.t -> Buffer.t) -> t -> t
val subst_vars : Arith.Expr.t Arith.Var.Map.t -> t -> t
(** Substitute symbolic variables inside [Idx] sub-expressions. *)

val loads : t -> (Buffer.t * t list) list
(** All buffer loads, outermost first. *)

val count_flops : t -> int
(** Arithmetic operations in one evaluation of this expression. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
