(** Symbolic cost analysis of tensor programs.

    Produces the quantities the device performance model consumes:
    arithmetic work and global-memory traffic, both as symbolic
    expressions over the program's shape variables. Traffic per buffer
    is the smaller of its footprint (ideal on-chip reuse — the regime
    that makes LLM decode bandwidth-bound in the paper's evaluation)
    and the executed access count (the gather/copy regime, where a
    kernel touches far less than the whole buffer).

    Shared/local scratch buffers do not count toward global traffic:
    this is exactly the benefit FuseTensorIR obtains by demoting
    intermediates into fused kernels. *)

type t = {
  flops : Arith.Expr.t;  (** arithmetic ops over the full loop nest *)
  bytes_read : Arith.Expr.t;  (** global footprint loaded *)
  bytes_written : Arith.Expr.t;  (** global footprint stored *)
}

val analyze : Prim_func.t -> t

val total_bytes : t -> Arith.Expr.t

val eval :
  (Arith.Var.t -> int) -> t -> flops:int ref -> bytes:int ref -> unit
(** Evaluate and accumulate into the two counters. *)
