type t = {
  flops : Arith.Expr.t;
  bytes_read : Arith.Expr.t;
  bytes_written : Arith.Expr.t;
}

(* Arithmetic work: flops of each store/evaluate, multiplied by the
   extents of enclosing loops. Both branches of an [If] are counted —
   a small overestimate for init guards, dominated by the loop body. *)
let rec flops_of_stmt (s : Stmt.t) : Arith.Expr.t =
  match s with
  | Stmt.Seq ss ->
      List.fold_left
        (fun acc s -> Arith.Expr.add acc (flops_of_stmt s))
        (Arith.Expr.const 0) ss
  | Stmt.For { extent; body; _ } -> Arith.Expr.mul extent (flops_of_stmt body)
  | Stmt.Store (_, idxs, v) ->
      Arith.Expr.const
        (Texpr.count_flops v
        + List.fold_left (fun acc i -> acc + Texpr.count_flops i) 0 idxs)
  | Stmt.If (c, t, e) ->
      Arith.Expr.add
        (Arith.Expr.const (Texpr.count_flops c))
        (Arith.Expr.add (flops_of_stmt t)
           (match e with
           | Some e -> flops_of_stmt e
           | None -> Arith.Expr.const 0))
  | Stmt.Alloc (_, body) -> flops_of_stmt body
  | Stmt.Assert _ -> Arith.Expr.const 0
  | Stmt.Evaluate e -> Arith.Expr.const (Texpr.count_flops e)

let is_global (b : Buffer.t) =
  match b.Buffer.scope with
  | Buffer.Global -> true
  | Buffer.Shared | Buffer.Local -> false

(* Global-memory traffic per buffer: the smaller of its footprint
   (ideal on-chip reuse — the matmul/attention regime) and the number
   of accesses actually executed (the gather/copy regime, where a
   kernel touches far less than the whole buffer, e.g. an embedding
   lookup into a large table). *)
let accumulate add_access stmt =
  let rec walk mult (s : Stmt.t) =
    match s with
    | Stmt.Seq ss -> List.iter (walk mult) ss
    | Stmt.For { extent; body; _ } -> walk (Arith.Expr.mul mult extent) body
    | Stmt.Store (b, idxs, v) ->
        add_access `Write b mult;
        List.iter
          (fun (lb, _) -> add_access `Read lb mult)
          (List.concat_map Texpr.loads idxs @ Texpr.loads v)
    | Stmt.If (c, t, e) ->
        List.iter (fun (lb, _) -> add_access `Read lb mult) (Texpr.loads c);
        walk mult t;
        (match e with Some e -> walk mult e | None -> ())
    | Stmt.Alloc (_, body) -> walk mult body
    | Stmt.Assert (c, _) ->
        List.iter (fun (lb, _) -> add_access `Read lb mult) (Texpr.loads c)
    | Stmt.Evaluate e ->
        List.iter (fun (lb, _) -> add_access `Read lb mult) (Texpr.loads e)
  in
  walk (Arith.Expr.const 1) stmt

let analyze (f : Prim_func.t) : t =
  let body = f.Prim_func.body in
  let reads : (int, Buffer.t * Arith.Expr.t) Hashtbl.t = Hashtbl.create 8 in
  let writes : (int, Buffer.t * Arith.Expr.t) Hashtbl.t = Hashtbl.create 8 in
  let add_access kind (b : Buffer.t) mult =
    if is_global b then begin
      let table = match kind with `Read -> reads | `Write -> writes in
      let prev =
        match Hashtbl.find_opt table b.Buffer.id with
        | Some (_, e) -> e
        | None -> Arith.Expr.const 0
      in
      Hashtbl.replace table b.Buffer.id (b, Arith.Expr.add prev mult)
    end
  in
  accumulate add_access body;
  let traffic table =
    Hashtbl.fold
      (fun _ ((b : Buffer.t), accesses) acc ->
        let elem = Arith.Expr.const (Base.Dtype.size_in_bytes b.Buffer.dtype) in
        let by_access = Arith.Expr.mul accesses elem in
        Arith.Expr.add acc (Arith.Expr.min_ (Buffer.size_in_bytes b) by_access))
      table (Arith.Expr.const 0)
  in
  {
    flops = Arith.Simplify.simplify (flops_of_stmt body);
    bytes_read = Arith.Simplify.simplify (traffic reads);
    bytes_written = Arith.Simplify.simplify (traffic writes);
  }

let total_bytes t = Arith.Expr.add t.bytes_read t.bytes_written

let eval lookup t ~flops ~bytes =
  flops := !flops + Arith.Expr.eval lookup t.flops;
  bytes :=
    !bytes
    + Arith.Expr.eval lookup t.bytes_read
    + Arith.Expr.eval lookup t.bytes_written
