lib/tir/kernels.mli: Arith Base Prim_func Texpr
