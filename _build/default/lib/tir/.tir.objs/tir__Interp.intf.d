lib/tir/interp.mli: Arith Base Prim_func
