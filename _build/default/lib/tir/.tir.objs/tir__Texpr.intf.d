lib/tir/texpr.mli: Arith Base Buffer Format
