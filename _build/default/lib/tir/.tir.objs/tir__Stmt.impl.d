lib/tir/stmt.ml: Arith Base Buffer Format List Option String Texpr
