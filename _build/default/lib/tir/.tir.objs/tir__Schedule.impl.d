lib/tir/schedule.ml: Arith Format List Option Pattern Prim_func Stmt Texpr
