lib/tir/buffer.mli: Arith Base Format Map Set
