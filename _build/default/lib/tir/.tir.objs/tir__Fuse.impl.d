lib/tir/fuse.ml: Arith Buffer Format List Prim_func Stmt String
