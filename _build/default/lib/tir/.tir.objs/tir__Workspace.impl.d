lib/tir/workspace.ml: Buffer List Option Prim_func Stmt
