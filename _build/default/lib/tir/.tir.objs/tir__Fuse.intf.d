lib/tir/fuse.mli: Arith Buffer Prim_func
