lib/tir/cost.mli: Arith Prim_func
