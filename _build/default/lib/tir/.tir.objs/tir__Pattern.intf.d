lib/tir/pattern.mli: Prim_func
