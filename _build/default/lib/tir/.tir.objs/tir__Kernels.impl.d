lib/tir/kernels.ml: Arith Base Buffer List Prim_func Printf Stmt Texpr
