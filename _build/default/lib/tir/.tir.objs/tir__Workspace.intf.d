lib/tir/workspace.mli: Buffer Prim_func
