lib/tir/stmt.mli: Arith Buffer Format Texpr
