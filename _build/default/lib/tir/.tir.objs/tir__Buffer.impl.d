lib/tir/buffer.ml: Arith Base Format Int List Map Set String
