lib/tir/prim_func.mli: Arith Buffer Format Stmt
