lib/tir/prim_func.ml: Arith Buffer Format List Printf Stmt String Texpr
