lib/tir/cost.ml: Arith Base Buffer Hashtbl List Prim_func Stmt Texpr
