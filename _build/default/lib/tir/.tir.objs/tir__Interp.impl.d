lib/tir/interp.ml: Arith Array Base Buffer Float Format Hashtbl List Prim_func Stmt Texpr
