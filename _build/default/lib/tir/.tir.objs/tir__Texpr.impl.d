lib/tir/texpr.ml: Arith Base Buffer Format List
