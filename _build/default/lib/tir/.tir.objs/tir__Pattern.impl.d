lib/tir/pattern.ml: Arith Buffer List Prim_func Stmt Texpr
