lib/tir/schedule.mli: Arith Prim_func
