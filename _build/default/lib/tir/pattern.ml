type kind =
  | Element_wise
  | Broadcast
  | Injective
  | Reduction
  | Output_ewise_fusible
  | Opaque

let kind_to_string = function
  | Element_wise -> "ElementWise"
  | Broadcast -> "Broadcast"
  | Injective -> "Injective"
  | Reduction -> "Reduction"
  | Output_ewise_fusible -> "OutputEwiseFusible"
  | Opaque -> "Opaque"

let kind_of_string = function
  | "ElementWise" -> Some Element_wise
  | "Broadcast" -> Some Broadcast
  | "Injective" -> Some Injective
  | "Reduction" -> Some Reduction
  | "OutputEwiseFusible" -> Some Output_ewise_fusible
  | "Opaque" -> Some Opaque
  | _ -> None

(* Severity order used to combine per-read classifications: a single
   harder read makes the whole program harder. *)
let severity = function
  | Element_wise -> 0
  | Broadcast -> 1
  | Injective -> 2
  | Reduction -> 3
  | Output_ewise_fusible -> 4
  | Opaque -> 5

let max_kind a b = if severity a >= severity b then a else b

(* Stores paired with the loop variables enclosing them. *)
type store_site = {
  target : Buffer.t;
  indices : Texpr.t list;
  value : Texpr.t;
  loop_vars : Arith.Var.t list;
}

let collect_stores (f : Prim_func.t) : store_site list =
  let rec go loop_vars = function
    | Stmt.Seq ss -> List.concat_map (go loop_vars) ss
    | Stmt.For { var; body; _ } -> go (loop_vars @ [ var ]) body
    | Stmt.Store (target, indices, value) ->
        [ { target; indices; value; loop_vars } ]
    | Stmt.If (_, t, e) -> (
        go loop_vars t @ match e with Some e -> go loop_vars e | None -> [])
    | Stmt.Alloc (_, body) -> go loop_vars body
    | Stmt.Assert _ | Stmt.Evaluate _ -> []
  in
  go [] f.Prim_func.body

let as_indices idxs = List.map Texpr.as_index idxs

let all_some xs =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Some x :: tl -> go (x :: acc) tl
    | None :: _ -> None
  in
  go [] xs

let indices_equal a b =
  List.length a = List.length b && List.for_all2 Arith.Simplify.prove_equal a b

let is_element_wise r w = indices_equal r w

(* r is an order-preserving selection of w's indices (e.g. B[j] read
   while writing C[i, j]). *)
let is_broadcast r w =
  let rec go r w =
    match (r, w) with
    | [], _ -> true
    | _ :: _, [] -> false
    | ri :: rt, wi :: wt ->
        if Arith.Simplify.prove_equal ri wi then go rt wt else go r wt
  in
  List.length r < List.length w && go r w

(* Every read coordinate is a function of the write coordinates only:
   no reduction variable is involved, so the producer can be inlined
   into any consumer position (transpose, reshape-style flattening). *)
let is_injective r w =
  let wvars =
    List.fold_left
      (fun acc e -> Arith.Var.Set.union acc (Arith.Expr.free_vars e))
      Arith.Var.Set.empty w
  in
  List.for_all (fun e -> Arith.Var.Set.subset (Arith.Expr.free_vars e) wvars) r

(* Accumulation into the output at the write indices with a multiply
   of two loads: the matmul/convolution shape. *)
let is_fuse_multiply_add (site : store_site) w_idx =
  let rec has_self_accum e =
    match e with
    | Texpr.Binop (Texpr.Add, a, b) ->
        is_self_load a || is_self_load b || has_self_accum a || has_self_accum b
    | Texpr.Cast (_, a) -> has_self_accum a
    | Texpr.Imm_int _ | Texpr.Imm_float _ | Texpr.Idx _ | Texpr.Load _
    | Texpr.Binop _ | Texpr.Unop _ | Texpr.Select _ ->
        false
  and is_self_load e =
    match e with
    | Texpr.Load (b, idxs) -> (
        Buffer.equal b site.target
        &&
        match all_some (as_indices idxs) with
        | Some r -> indices_equal r w_idx
        | None -> false)
    | Texpr.Cast (_, a) -> is_self_load a
    | Texpr.Imm_int _ | Texpr.Imm_float _ | Texpr.Idx _ | Texpr.Binop _
    | Texpr.Unop _ | Texpr.Select _ ->
        false
  in
  let rec has_mul_of_loads e =
    match e with
    | Texpr.Binop (Texpr.Mul, a, b) ->
        (contains_load a && contains_load b)
        || has_mul_of_loads a || has_mul_of_loads b
    | Texpr.Binop (_, a, b) -> has_mul_of_loads a || has_mul_of_loads b
    | Texpr.Unop (_, a) | Texpr.Cast (_, a) -> has_mul_of_loads a
    | Texpr.Select (c, a, b) ->
        has_mul_of_loads c || has_mul_of_loads a || has_mul_of_loads b
    | Texpr.Imm_int _ | Texpr.Imm_float _ | Texpr.Idx _ | Texpr.Load _ -> false
  and contains_load e = Texpr.loads e <> []
  in
  has_self_accum site.value && has_mul_of_loads site.value

let has_reduction_loop sites w_idx =
  let wvars =
    List.fold_left
      (fun acc e -> Arith.Var.Set.union acc (Arith.Expr.free_vars e))
      Arith.Var.Set.empty w_idx
  in
  List.exists
    (fun site ->
      List.exists
        (fun lv -> not (Arith.Var.Set.mem lv wvars))
        site.loop_vars)
    sites

let classify (f : Prim_func.t) : kind =
  let outputs = Buffer.Set.of_list (Prim_func.outputs f) in
  let sites = collect_stores f in
  if sites = [] then Opaque
  else
    (* Stores to anything but the declared outputs (a global workspace,
       a shared staging buffer) defeat index-based classification. *)
    let to_outputs, others =
      List.partition (fun s -> Buffer.Set.mem s.target outputs) sites
    in
    if others <> [] || to_outputs = [] then Opaque
    else
      let w_indices = List.map (fun s -> as_indices s.indices) to_outputs in
      match all_some (List.map all_some w_indices) with
      | None -> Opaque (* data-dependent write position (scatter) *)
      | Some (w0 :: rest) when List.for_all (indices_equal w0) rest ->
          let w_idx = w0 in
          (* Reads of input buffers; reads of the output itself are the
             accumulation pattern handled by the FMA check. *)
          let reads =
            List.concat_map
              (fun site ->
                List.filter
                  (fun (b, _) -> not (Buffer.equal b site.target))
                  (Texpr.loads site.value
                  @ List.concat_map Texpr.loads site.indices))
              to_outputs
          in
          let classify_read (_, idxs) =
            match all_some (as_indices idxs) with
            | None -> Opaque (* data-dependent gather *)
            | Some r ->
                if is_element_wise r w_idx then Element_wise
                else if is_broadcast r w_idx then Broadcast
                else if is_injective r w_idx then Injective
                else Opaque
          in
          let kinds = List.map classify_read reads in
          let has_elem_wise = List.mem Element_wise kinds in
          let kind = List.fold_left max_kind Element_wise kinds in
          if kind = Broadcast && has_elem_wise then Element_wise
          else if severity kind <= severity Injective then kind
          else if
            List.exists (fun s -> is_fuse_multiply_add s w_idx) to_outputs
          then Output_ewise_fusible
          else if has_reduction_loop to_outputs w_idx then Reduction
          else Opaque
      | Some _ -> Opaque

let annotate f =
  Prim_func.with_attr f "compute_pattern" (kind_to_string (classify f))

let kind_of f =
  match Prim_func.attr f "compute_pattern" with
  | Some s -> ( match kind_of_string s with Some k -> k | None -> classify f)
  | None -> classify f
