type t = {
  name : string;
  params : Buffer.t list;
  sym_params : Arith.Var.t list;
  num_outputs : int;
  body : Stmt.t;
  attrs : (string * string) list;
}

(* Free symbolic variables of a statement, excluding loop-bound vars. *)
let rec stmt_free_vars bound = function
  | Stmt.Seq ss ->
      List.fold_left
        (fun acc s -> Arith.Var.Set.union acc (stmt_free_vars bound s))
        Arith.Var.Set.empty ss
  | Stmt.For r ->
      let ext = Arith.Var.Set.diff (Arith.Expr.free_vars r.extent) bound in
      let bound' = Arith.Var.Set.add r.var bound in
      Arith.Var.Set.union ext (stmt_free_vars bound' r.body)
  | Stmt.Store (b, idxs, v) ->
      let acc = Arith.Var.Set.diff (Buffer.free_sym_vars b) bound in
      let acc =
        List.fold_left
          (fun acc e -> Arith.Var.Set.union acc (texpr_free_vars bound e))
          acc idxs
      in
      Arith.Var.Set.union acc (texpr_free_vars bound v)
  | Stmt.If (c, t, e) ->
      let acc = texpr_free_vars bound c in
      let acc = Arith.Var.Set.union acc (stmt_free_vars bound t) in
      Arith.Var.Set.union acc
        (match e with
        | Some e -> stmt_free_vars bound e
        | None -> Arith.Var.Set.empty)
  | Stmt.Alloc (b, body) ->
      Arith.Var.Set.union
        (Arith.Var.Set.diff (Buffer.free_sym_vars b) bound)
        (stmt_free_vars bound body)
  | Stmt.Assert (c, _) -> texpr_free_vars bound c
  | Stmt.Evaluate e -> texpr_free_vars bound e

and texpr_free_vars bound = function
  | Texpr.Imm_int _ | Texpr.Imm_float _ -> Arith.Var.Set.empty
  | Texpr.Idx e -> Arith.Var.Set.diff (Arith.Expr.free_vars e) bound
  | Texpr.Load (b, idxs) ->
      List.fold_left
        (fun acc e -> Arith.Var.Set.union acc (texpr_free_vars bound e))
        (Arith.Var.Set.diff (Buffer.free_sym_vars b) bound)
        idxs
  | Texpr.Binop (_, a, b) ->
      Arith.Var.Set.union (texpr_free_vars bound a) (texpr_free_vars bound b)
  | Texpr.Unop (_, a) | Texpr.Cast (_, a) -> texpr_free_vars bound a
  | Texpr.Select (c, a, b) ->
      Arith.Var.Set.union (texpr_free_vars bound c)
        (Arith.Var.Set.union (texpr_free_vars bound a) (texpr_free_vars bound b))

let param_shape_vars params =
  List.fold_left
    (fun acc b -> Arith.Var.Set.union acc (Buffer.free_sym_vars b))
    Arith.Var.Set.empty params

let derivable_of params =
  List.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc dim ->
          match dim with
          | Arith.Expr.Var v -> Arith.Var.Set.add v acc
          | Arith.Expr.Const _ | Arith.Expr.Add _ | Arith.Expr.Sub _
          | Arith.Expr.Mul _ | Arith.Expr.Floor_div _ | Arith.Expr.Floor_mod _
          | Arith.Expr.Min _ | Arith.Expr.Max _ ->
              acc)
        acc b.Buffer.shape)
    Arith.Var.Set.empty params

let create ?(sym_params = []) ?(num_outputs = 1) ?(attrs = []) ~name ~params
    body =
  if num_outputs > List.length params then
    invalid_arg "Prim_func.create: num_outputs exceeds parameter count";
  let free =
    Arith.Var.Set.union (param_shape_vars params)
      (stmt_free_vars Arith.Var.Set.empty body)
  in
  let known =
    Arith.Var.Set.union (derivable_of params)
      (Arith.Var.Set.of_list sym_params)
  in
  let missing = Arith.Var.Set.diff free known in
  if not (Arith.Var.Set.is_empty missing) then
    invalid_arg
      (Printf.sprintf
         "Prim_func.create(%s): symbolic variable(s) %s are neither derivable \
          from parameter shapes nor passed as sym_params"
         name
         (String.concat ", "
            (List.map Arith.Var.name (Arith.Var.Set.elements missing))));
  { name; params; sym_params; num_outputs; body; attrs }

let inputs t =
  let n = List.length t.params - t.num_outputs in
  List.filteri (fun i _ -> i < n) t.params

let outputs t =
  let n = List.length t.params - t.num_outputs in
  List.filteri (fun i _ -> i >= n) t.params

let attr t key = List.assoc_opt key t.attrs
let with_attr t key value = { t with attrs = (key, value) :: List.remove_assoc key t.attrs }
let with_name t name = { t with name }

let free_sym_vars t =
  Arith.Var.Set.union (param_shape_vars t.params)
    (stmt_free_vars Arith.Var.Set.empty t.body)

let derivable_sym_vars t = derivable_of t.params

let rename_params t =
  let var_env =
    List.fold_left
      (fun acc v ->
        Arith.Var.Map.add v (Arith.Expr.var (Arith.Var.fresh (Arith.Var.name v))) acc)
      Arith.Var.Map.empty
      (Arith.Var.Set.elements (free_sym_vars t))
  in
  let fresh_buffer b =
    Buffer.create ~scope:b.Buffer.scope b.Buffer.name
      (List.map (Arith.Expr.subst var_env) b.Buffer.shape)
      b.Buffer.dtype
  in
  let buf_map =
    List.fold_left
      (fun acc b -> Buffer.Map.add b (fresh_buffer b) acc)
      Buffer.Map.empty t.params
  in
  let map_buf b = match Buffer.Map.find_opt b buf_map with
    | Some b' -> b'
    | None ->
        (* Non-parameter buffers (local allocs) keep identity but get
           substituted shapes via subst_vars below. *)
        b
  in
  let body = Stmt.subst_vars var_env (Stmt.map_buffers map_buf t.body) in
  let params = List.map (fun b -> Buffer.Map.find b buf_map) t.params in
  let sym_params =
    List.map
      (fun v ->
        match Arith.Var.Map.find_opt v var_env with
        | Some (Arith.Expr.Var v') -> v'
        | Some _ | None -> v)
      t.sym_params
  in
  { t with params; sym_params; body }

let pp fmt t =
  Format.fprintf fmt "@tensorir_function%s@\ndef %s(%s)%s:@\n"
    (match attr t "compute_pattern" with
    | Some p -> Printf.sprintf "  # compute_pattern = %s" p
    | None -> "")
    t.name
    (String.concat ", "
       (List.map (fun b -> Format.asprintf "%a" Buffer.pp b) t.params))
    (match t.sym_params with
    | [] -> ""
    | vs ->
        Printf.sprintf "  # sym: %s"
          (String.concat ", " (List.map Arith.Var.name vs)));
  Stmt.pp_indent fmt 2 t.body

let to_string t = Format.asprintf "%a" pp t
