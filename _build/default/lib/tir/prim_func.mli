(** Loop-level tensor program functions (the TensorIR analogue).

    A prim func follows destination-passing style: its buffer
    parameters are inputs, then intermediate workspaces (if lifted to
    the caller, §4.4), then outputs. [sym_params] receive the runtime
    values of symbolic shape variables that cannot be derived from the
    buffer arguments alone (the extra symbolic arguments of Figure 8). *)

type t = private {
  name : string;
  params : Buffer.t list;
  sym_params : Arith.Var.t list;
  num_outputs : int;  (** trailing buffer params that are outputs *)
  body : Stmt.t;
  attrs : (string * string) list;
}

val create :
  ?sym_params:Arith.Var.t list ->
  ?num_outputs:int ->
  ?attrs:(string * string) list ->
  name:string ->
  params:Buffer.t list ->
  Stmt.t ->
  t
(** @raise Invalid_argument if [num_outputs] exceeds the parameter
    count or a symbolic variable used by shapes or the body is neither
    bound by a loop nor derivable from parameter shapes nor listed in
    [sym_params]. *)

val inputs : t -> Buffer.t list
val outputs : t -> Buffer.t list

val attr : t -> string -> string option
val with_attr : t -> string -> string -> t
val with_name : t -> string -> t

val free_sym_vars : t -> Arith.Var.Set.t
(** Symbolic variables appearing in parameter shapes or the body. *)

val derivable_sym_vars : t -> Arith.Var.Set.t
(** Variables recoverable from buffer parameter shapes at call time
    (those appearing as a bare dimension of some parameter). *)

val rename_params : t -> t
(** Fresh copies of all buffer params and symbolic vars (alpha
    renaming); used when inlining one func into another. Returns the
    renamed function. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
