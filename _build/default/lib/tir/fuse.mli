(** Merging of tensor programs into a single kernel — the loop-level
    half of the FuseTensorIR transformation (§4.2).

    Given the tensor programs called inside a fused subgraph function
    and the dataflow between them, [merge] produces one prim func whose
    body runs the constituent bodies in sequence, with the intermediate
    tensors demoted to on-chip ([Shared]) scratch. Demotion is what
    realizes fusion's benefit under the cost model: intermediates stop
    counting toward global-memory traffic, and the merged function is
    launched as a single kernel.

    Symbolic shapes are preserved throughout: each callee's shape
    variables are bound by unifying its declared parameter shapes with
    the shapes of the buffers actually passed, so a callee declared for
    shape [(m, 4)] instantiated at [(n * 2, 4)] specializes correctly
    (the situation of Figure 8 of the paper). *)

exception Fusion_error of string

type call = {
  callee : Prim_func.t;
  buffer_args : Buffer.t list;  (** positional, one per callee param *)
  sym_args : Arith.Expr.t list;
      (** positional values for the callee's [sym_params] — symbolic
          arguments that do not appear in any buffer shape (e.g. a
          RoPE position) *)
}

val merge :
  name:string ->
  inputs:Buffer.t list ->
  outputs:Buffer.t list ->
  temps:Buffer.t list ->
  calls:call list ->
  ?sym_params:Arith.Var.t list ->
  unit ->
  Prim_func.t
(** [merge ~name ~inputs ~outputs ~temps ~calls ()] builds the fused
    function. [calls] are in dataflow order; each callee's buffer
    arguments are given positionally and must be drawn from
    [inputs @ outputs @ temps]. [temps] become [Shared]-scope
    allocations wrapping the body.

    @raise Fusion_error if a callee's symbolic parameters cannot be
    bound by shape unification or [sym_args], or an argument list has
    the wrong arity. *)
