(** Statements of loop-level tensor programs. *)

type for_kind =
  | Serial
  | Parallel  (** paper-level marker for GPU-parallelizable loops *)

type t =
  | Seq of t list
  | For of { var : Arith.Var.t; extent : Arith.Expr.t; kind : for_kind; body : t }
  | Store of Buffer.t * Texpr.t list * Texpr.t
      (** [Store (buf, indices, value)]: [buf[indices] = value] *)
  | If of Texpr.t * t * t option
  | Alloc of Buffer.t * t
      (** Scoped allocation; a [Buffer.Global] alloc is an intermediate
          workspace eligible for cross-level lifting (§4.4). *)
  | Assert of Texpr.t * string
  | Evaluate of Texpr.t

val seq : t list -> t
(** Flattens nested [Seq]s; a singleton collapses to its element. *)

val for_ : Arith.Var.t -> Arith.Expr.t -> t -> t
val for_par : Arith.Var.t -> Arith.Expr.t -> t -> t

val grid : (string * Arith.Expr.t) list -> (Arith.Expr.t list -> t) -> t
(** [grid [("i", n); ("j", m)] body] builds the nested serial loops
    and hands the loop variables (as expressions) to [body]. *)

val map_buffers : (Buffer.t -> Buffer.t) -> t -> t
val subst_vars : Arith.Expr.t Arith.Var.Map.t -> t -> t

val stores : t -> (Buffer.t * Texpr.t list) list
(** Buffers written anywhere in the statement (with their indices). *)

val loads : t -> (Buffer.t * Texpr.t list) list
val allocs : t -> Buffer.t list
(** All [Alloc]ed buffers, outermost first. *)

val buffers_accessed : t -> Buffer.Set.t
val pp : Format.formatter -> t -> unit

val pp_indent : Format.formatter -> int -> t -> unit
(** [pp] starting at the given indentation (spaces). *)
