exception Fusion_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Fusion_error s)) fmt

(* Bind a callee's symbolic variables by unifying its declared
   parameter shapes with the shapes of the actual buffers. A declared
   dimension that is a bare variable binds it to the actual dimension
   expression; other declared dimensions are checked by equality proof
   after every variable is bound. *)
type call = {
  callee : Prim_func.t;
  buffer_args : Buffer.t list;
  sym_args : Arith.Expr.t list;
}

let unify_call (callee : Prim_func.t) (args : Buffer.t list)
    (sym_args : Arith.Expr.t list) : Arith.Expr.t Arith.Var.Map.t =
  if List.length args <> List.length callee.Prim_func.params then
    fail "%s: expected %d buffer arguments, got %d" callee.Prim_func.name
      (List.length callee.Prim_func.params)
      (List.length args);
  if List.length sym_args <> List.length callee.Prim_func.sym_params then
    fail "%s: expected %d symbolic arguments, got %d" callee.Prim_func.name
      (List.length callee.Prim_func.sym_params)
      (List.length sym_args);
  let env =
    ref
      (List.fold_left2
         (fun acc v e -> Arith.Var.Map.add v e acc)
         Arith.Var.Map.empty callee.Prim_func.sym_params sym_args)
  in
  let deferred = ref [] in
  List.iter2
    (fun (p : Buffer.t) (a : Buffer.t) ->
      if List.length p.Buffer.shape <> List.length a.Buffer.shape then
        fail "%s: param %s rank mismatch" callee.Prim_func.name p.Buffer.name;
      List.iter2
        (fun declared actual ->
          match declared with
          | Arith.Expr.Var v -> (
              match Arith.Var.Map.find_opt v !env with
              | Some prev ->
                  if not (Arith.Simplify.prove_equal prev actual) then
                    fail "%s: %s bound to both %s and %s"
                      callee.Prim_func.name (Arith.Var.name v)
                      (Arith.Expr.to_string prev)
                      (Arith.Expr.to_string actual)
              | None -> env := Arith.Var.Map.add v actual !env)
          | Arith.Expr.Const _ | Arith.Expr.Add _ | Arith.Expr.Sub _
          | Arith.Expr.Mul _ | Arith.Expr.Floor_div _ | Arith.Expr.Floor_mod _
          | Arith.Expr.Min _ | Arith.Expr.Max _ ->
              deferred := (declared, actual) :: !deferred)
        p.Buffer.shape a.Buffer.shape)
    callee.Prim_func.params args;
  List.iter
    (fun (declared, actual) ->
      let substituted = Arith.Expr.subst !env declared in
      if not (Arith.Simplify.prove_equal substituted actual) then
        fail "%s: declared dim %s does not match actual %s"
          callee.Prim_func.name
          (Arith.Expr.to_string declared)
          (Arith.Expr.to_string actual))
    !deferred;
  let unbound =
    Arith.Var.Set.diff
      (Prim_func.free_sym_vars callee)
      (Arith.Var.Map.fold
         (fun v _ acc -> Arith.Var.Set.add v acc)
         !env Arith.Var.Set.empty)
  in
  if not (Arith.Var.Set.is_empty unbound) then
    fail "%s: symbolic variable(s) %s not bound by shape unification"
      callee.Prim_func.name
      (String.concat ", "
         (List.map Arith.Var.name (Arith.Var.Set.elements unbound)));
  !env

let inline_call { callee; buffer_args = args; sym_args } : Stmt.t =
  (* Alpha-rename first so that inlining the same callee twice in one
     fused body never shares variables or parameter buffers. *)
  let callee = Prim_func.rename_params callee in
  let env = unify_call callee args sym_args in
  let buf_map =
    List.fold_left2
      (fun acc p a -> Buffer.Map.add p a acc)
      Buffer.Map.empty callee.Prim_func.params args
  in
  let map_buf b =
    match Buffer.Map.find_opt b buf_map with Some b' -> b' | None -> b
  in
  Stmt.subst_vars env (Stmt.map_buffers map_buf callee.Prim_func.body)

let merge ~name ~inputs ~outputs ~temps ~calls ?(sym_params = []) () =
  let body = Stmt.seq (List.map inline_call calls) in
  let body =
    List.fold_right
      (fun temp acc ->
        let shared =
          Buffer.create ~scope:Buffer.Shared temp.Buffer.name temp.Buffer.shape
            temp.Buffer.dtype
        in
        (* The temp keeps its identity inside the body; retarget
           accesses to the shared-scope replacement. *)
        Stmt.Alloc
          ( shared,
            Stmt.map_buffers
              (fun b -> if Buffer.equal b temp then shared else b)
              acc ))
      temps body
  in
  let params = inputs @ outputs in
  let sym_params =
    if sym_params <> [] then sym_params
    else
      (* Any shape variable not derivable from parameter shapes must be
         passed explicitly (Figure 8's extra symbolic argument). *)
      let derivable =
        List.fold_left
          (fun acc (b : Buffer.t) ->
            List.fold_left
              (fun acc dim ->
                match dim with
                | Arith.Expr.Var v -> Arith.Var.Set.add v acc
                | Arith.Expr.Const _ | Arith.Expr.Add _ | Arith.Expr.Sub _
                | Arith.Expr.Mul _ | Arith.Expr.Floor_div _
                | Arith.Expr.Floor_mod _ | Arith.Expr.Min _ | Arith.Expr.Max _
                  ->
                    acc)
              acc b.Buffer.shape)
          Arith.Var.Set.empty params
      in
      let all =
        List.fold_left
          (fun acc (b : Buffer.t) ->
            Arith.Var.Set.union acc (Buffer.free_sym_vars b))
          Arith.Var.Set.empty (params @ temps)
      in
      Arith.Var.Set.elements (Arith.Var.Set.diff all derivable)
  in
  Prim_func.create ~sym_params ~num_outputs:(List.length outputs) ~name ~params
    body
