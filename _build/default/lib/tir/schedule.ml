exception Schedule_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Schedule_error s)) fmt

let rec loop_vars_of_stmt (s : Stmt.t) =
  match s with
  | Stmt.Seq ss -> List.concat_map loop_vars_of_stmt ss
  | Stmt.For { var; body; _ } -> var :: loop_vars_of_stmt body
  | Stmt.If (_, t, e) -> (
      loop_vars_of_stmt t
      @ match e with Some e -> loop_vars_of_stmt e | None -> [])
  | Stmt.Alloc (_, body) -> loop_vars_of_stmt body
  | Stmt.Store _ | Stmt.Assert _ | Stmt.Evaluate _ -> []

let loop_vars (f : Prim_func.t) = loop_vars_of_stmt f.Prim_func.body

(* Rewrite the unique For node binding [loop]; [rewrite] receives the
   For's record and produces the replacement statement. *)
let rewrite_loop (f : Prim_func.t) (loop : Arith.Var.t) rewrite =
  let found = ref false in
  let rec go (s : Stmt.t) : Stmt.t =
    match s with
    | Stmt.Seq ss -> Stmt.Seq (List.map go ss)
    | Stmt.For { var; extent; kind; body } when Arith.Var.equal var loop ->
        found := true;
        rewrite ~var ~extent ~kind ~body
    | Stmt.For r -> Stmt.For { r with body = go r.body }
    | Stmt.If (c, t, e) -> Stmt.If (c, go t, Option.map go e)
    | Stmt.Alloc (b, body) -> Stmt.Alloc (b, go body)
    | (Stmt.Store _ | Stmt.Assert _ | Stmt.Evaluate _) as s -> s
  in
  let body = go f.Prim_func.body in
  if not !found then fail "loop %s not found" (Arith.Var.name loop);
  Prim_func.create
    ~sym_params:f.Prim_func.sym_params
    ~num_outputs:f.Prim_func.num_outputs ~attrs:f.Prim_func.attrs
    ~name:f.Prim_func.name ~params:f.Prim_func.params body

let split (f : Prim_func.t) ~loop ~factor =
  if factor <= 0 then fail "split factor must be positive";
  let outer = Arith.Var.fresh (Arith.Var.name loop ^ "_o") in
  let inner = Arith.Var.fresh (Arith.Var.name loop ^ "_i") in
  let f' =
    rewrite_loop f loop (fun ~var ~extent ~kind ~body ->
        let fe = Arith.Expr.const factor in
        let outer_extent =
          Arith.Simplify.simplify
            (Arith.Expr.floor_div
               (Arith.Expr.add extent (Arith.Expr.const (factor - 1)))
               fe)
        in
        let fused =
          Arith.Expr.add
            (Arith.Expr.mul (Arith.Expr.var outer) fe)
            (Arith.Expr.var inner)
        in
        let body = Stmt.subst_vars (Arith.Var.Map.singleton var fused) body in
        (* Divisible extents (proved symbolically) need no guard. *)
        let divisible =
          Arith.Simplify.prove_equal (Arith.Expr.mul outer_extent fe) extent
        in
        let body =
          if divisible then body
          else
            Stmt.If
              ( Texpr.Binop (Texpr.Lt, Texpr.idx fused, Texpr.idx extent),
                body,
                None )
        in
        Stmt.For
          {
            var = outer;
            extent = outer_extent;
            kind;
            body = Stmt.For { var = inner; extent = fe; kind = Stmt.Serial; body };
          })
  in
  (f', outer, inner)

(* Free symbolic variables of a scalar expression (indices only). *)
let rec texpr_vars (e : Texpr.t) =
  match e with
  | Texpr.Imm_int _ | Texpr.Imm_float _ -> Arith.Var.Set.empty
  | Texpr.Idx ie -> Arith.Expr.free_vars ie
  | Texpr.Load (_, idxs) ->
      List.fold_left
        (fun acc i -> Arith.Var.Set.union acc (texpr_vars i))
        Arith.Var.Set.empty idxs
  | Texpr.Binop (_, a, b) -> Arith.Var.Set.union (texpr_vars a) (texpr_vars b)
  | Texpr.Unop (_, a) | Texpr.Cast (_, a) -> texpr_vars a
  | Texpr.Select (c, a, b) ->
      Arith.Var.Set.union (texpr_vars c)
        (Arith.Var.Set.union (texpr_vars a) (texpr_vars b))

let reorder (f : Prim_func.t) ~outer ~inner =
  rewrite_loop f outer (fun ~var ~extent ~kind ~body ->
      let check_extent (ri_extent : Arith.Expr.t) =
        if Arith.Var.Set.mem var (Arith.Expr.free_vars ri_extent) then
          fail "cannot reorder: inner extent depends on outer variable"
      in
      match body with
      | Stmt.For ri when Arith.Var.equal ri.var inner ->
          check_extent ri.extent;
          Stmt.For
            { ri with body = Stmt.For { var; extent; kind; body = ri.body } }
      | Stmt.If (cond, Stmt.For ri, None)
        when Arith.Var.equal ri.var inner
             && not (Arith.Var.Set.mem ri.var (texpr_vars cond)) ->
          (* A bounds guard between the loops (from a dynamic-extent
             split) commutes with the inner loop when it does not read
             the inner variable. *)
          check_extent ri.extent;
          Stmt.For
            {
              ri with
              body =
                Stmt.For
                  { var; extent; kind; body = Stmt.If (cond, ri.body, None) };
            }
      | _ ->
          fail "loops %s and %s are not perfectly nested"
            (Arith.Var.name outer) (Arith.Var.name inner))

let parallelize (f : Prim_func.t) ~loop =
  rewrite_loop f loop (fun ~var ~extent ~kind:_ ~body ->
      Stmt.For { var; extent; kind = Stmt.Parallel; body })

let unroll (f : Prim_func.t) ~loop =
  rewrite_loop f loop (fun ~var ~extent ~kind:_ ~body ->
      match Arith.Expr.as_const extent with
      | Some n when n >= 0 && n <= 64 ->
          Stmt.seq
            (List.init n (fun i ->
                 Stmt.subst_vars
                   (Arith.Var.Map.singleton var (Arith.Expr.const i))
                   body))
      | Some n -> fail "unroll: extent %d too large" n
      | None -> fail "unroll: extent is not constant")

let tile2 f ~i ~j ~ti ~tj =
  (* (i, j, ...) -> (i_o, i_i, j_o, j_i) -> (i_o, j_o, i_i, j_i) *)
  let f, _io, ii = split f ~loop:i ~factor:ti in
  let f, jo, _ji = split f ~loop:j ~factor:tj in
  reorder f ~outer:ii ~inner:jo

let auto_schedule (f : Prim_func.t) =
  match Pattern.classify f with
  | Pattern.Output_ewise_fusible -> (
      (* The two loops enclosing the FMA accumulation are the output
         coordinates; tile and parallelize them. *)
      match loop_vars f with
      | i :: j :: _ -> (
          try
            let tiled = tile2 f ~i ~j ~ti:32 ~tj:32 in
            match loop_vars_of_stmt tiled.Prim_func.body with
            | o :: _ -> parallelize tiled ~loop:o
            | [] -> tiled
          with Schedule_error _ -> f)
      | _ -> f)
  | Pattern.Element_wise | Pattern.Broadcast | Pattern.Injective -> (
      match loop_vars f with
      | o :: _ -> ( try parallelize f ~loop:o with Schedule_error _ -> f)
      | [] -> f)
  | Pattern.Reduction | Pattern.Opaque -> f
