type for_kind = Serial | Parallel

type t =
  | Seq of t list
  | For of { var : Arith.Var.t; extent : Arith.Expr.t; kind : for_kind; body : t }
  | Store of Buffer.t * Texpr.t list * Texpr.t
  | If of Texpr.t * t * t option
  | Alloc of Buffer.t * t
  | Assert of Texpr.t * string
  | Evaluate of Texpr.t

let seq stmts =
  let rec flatten = function
    | Seq inner -> List.concat_map flatten inner
    | s -> [ s ]
  in
  match List.concat_map flatten stmts with [ s ] -> s | ss -> Seq ss

let for_ var extent body = For { var; extent; kind = Serial; body }
let for_par var extent body = For { var; extent; kind = Parallel; body }

let grid dims body =
  let vars = List.map (fun (name, _) -> Arith.Var.fresh name) dims in
  let exprs = List.map Arith.Expr.var vars in
  let inner = body exprs in
  List.fold_right2
    (fun var (_, extent) acc -> for_ var extent acc)
    vars dims inner

let rec map_buffers fn = function
  | Seq ss -> Seq (List.map (map_buffers fn) ss)
  | For r -> For { r with body = map_buffers fn r.body }
  | Store (b, idxs, v) ->
      Store (fn b, List.map (Texpr.map_buffers fn) idxs, Texpr.map_buffers fn v)
  | If (c, t, e) ->
      If (Texpr.map_buffers fn c, map_buffers fn t, Option.map (map_buffers fn) e)
  | Alloc (b, body) -> Alloc (fn b, map_buffers fn body)
  | Assert (c, msg) -> Assert (Texpr.map_buffers fn c, msg)
  | Evaluate e -> Evaluate (Texpr.map_buffers fn e)

let subst_buffer_shape env b =
  Buffer.with_shape b (List.map (Arith.Expr.subst env) b.Buffer.shape)

let rec subst_vars env = function
  | Seq ss -> Seq (List.map (subst_vars env) ss)
  | For r ->
      For
        { r with
          extent = Arith.Expr.subst env r.extent;
          body = subst_vars env r.body }
  | Store (b, idxs, v) ->
      Store
        ( subst_buffer_shape env b,
          List.map (Texpr.subst_vars env) idxs,
          Texpr.subst_vars env v )
  | If (c, t, e) ->
      If (Texpr.subst_vars env c, subst_vars env t, Option.map (subst_vars env) e)
  | Alloc (b, body) -> Alloc (subst_buffer_shape env b, subst_vars env body)
  | Assert (c, msg) -> Assert (Texpr.subst_vars env c, msg)
  | Evaluate e -> Evaluate (Texpr.subst_vars env e)

let rec stores = function
  | Seq ss -> List.concat_map stores ss
  | For r -> stores r.body
  | Store (b, idxs, _) -> [ (b, idxs) ]
  | If (_, t, e) -> stores t @ (match e with Some e -> stores e | None -> [])
  | Alloc (_, body) -> stores body
  | Assert _ | Evaluate _ -> []

let rec loads = function
  | Seq ss -> List.concat_map loads ss
  | For r -> loads r.body
  | Store (_, idxs, v) -> List.concat_map Texpr.loads idxs @ Texpr.loads v
  | If (c, t, e) ->
      Texpr.loads c @ loads t @ (match e with Some e -> loads e | None -> [])
  | Alloc (_, body) -> loads body
  | Assert (c, _) -> Texpr.loads c
  | Evaluate e -> Texpr.loads e

let rec allocs = function
  | Seq ss -> List.concat_map allocs ss
  | For r -> allocs r.body
  | Store _ | Assert _ | Evaluate _ -> []
  | If (_, t, e) -> allocs t @ (match e with Some e -> allocs e | None -> [])
  | Alloc (b, body) -> b :: allocs body

let buffers_accessed stmt =
  let add acc (b, _) = Buffer.Set.add b acc in
  let acc = List.fold_left add Buffer.Set.empty (stores stmt) in
  List.fold_left add acc (loads stmt)

let rec pp_indent fmt indent stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Seq ss -> List.iter (pp_indent fmt indent) ss
  | For r ->
      Format.fprintf fmt "%sfor %a in range(%a)%s:@\n" pad Arith.Var.pp r.var
        Arith.Expr.pp r.extent
        (match r.kind with Serial -> "" | Parallel -> "  # parallel");
      pp_indent fmt (indent + 2) r.body
  | Store (b, idxs, v) ->
      Format.fprintf fmt "%s%s[%a] = %a@\n" pad b.Buffer.name
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Texpr.pp)
        idxs Texpr.pp v
  | If (c, t, e) -> (
      Format.fprintf fmt "%sif %a:@\n" pad Texpr.pp c;
      pp_indent fmt (indent + 2) t;
      match e with
      | Some e ->
          Format.fprintf fmt "%selse:@\n" pad;
          pp_indent fmt (indent + 2) e
      | None -> ())
  | Alloc (b, body) ->
      Format.fprintf fmt "%s%s = alloc_buffer((%s), \"%s\", \"%s\")@\n" pad
        b.Buffer.name
        (String.concat ", " (List.map Arith.Expr.to_string b.Buffer.shape))
        (Base.Dtype.to_string b.Buffer.dtype)
        (Buffer.scope_to_string b.Buffer.scope);
      pp_indent fmt indent body
  | Assert (c, msg) -> Format.fprintf fmt "%sassert %a, %S@\n" pad Texpr.pp c msg
  | Evaluate e -> Format.fprintf fmt "%s%a@\n" pad Texpr.pp e

let pp fmt stmt = pp_indent fmt 0 stmt
