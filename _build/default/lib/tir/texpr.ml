type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Floor_div
  | Floor_mod
  | Min
  | Max
  | Pow
  | Bit_and
  | Bit_or
  | Bit_xor
  | Shift_left
  | Shift_right
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Exp
  | Log
  | Sqrt
  | Rsqrt
  | Tanh
  | Sigmoid
  | Erf
  | Abs
  | Not
  | Cos
  | Sin

type t =
  | Imm_int of int
  | Imm_float of float
  | Idx of Arith.Expr.t
  | Load of Buffer.t * t list
  | Binop of binop * t * t
  | Unop of unop * t
  | Cast of Base.Dtype.t * t
  | Select of t * t * t

let idx e = Idx e
let iv v = Idx (Arith.Expr.var v)
let f x = Imm_float x
let i x = Imm_int x
let load buf indices = Load (buf, List.map idx indices)
let load_v buf indices = Load (buf, indices)
let ( +. ) a b = Binop (Add, a, b)
let ( -. ) a b = Binop (Sub, a, b)
let ( *. ) a b = Binop (Mul, a, b)
let ( /. ) a b = Binop (Div, a, b)

let as_index = function
  | Idx e -> Some e
  | Imm_int c -> Some (Arith.Expr.const c)
  | Imm_float _ | Load _ | Binop _ | Unop _ | Cast _ | Select _ -> None

let rec map_buffers fn = function
  | (Imm_int _ | Imm_float _ | Idx _) as e -> e
  | Load (b, idxs) -> Load (fn b, List.map (map_buffers fn) idxs)
  | Binop (op, a, b) -> Binop (op, map_buffers fn a, map_buffers fn b)
  | Unop (op, a) -> Unop (op, map_buffers fn a)
  | Cast (dt, a) -> Cast (dt, map_buffers fn a)
  | Select (c, a, b) ->
      Select (map_buffers fn c, map_buffers fn a, map_buffers fn b)

let rec subst_vars env = function
  | (Imm_int _ | Imm_float _) as e -> e
  | Idx e -> Idx (Arith.Expr.subst env e)
  | Load (b, idxs) ->
      let shape = List.map (Arith.Expr.subst env) b.Buffer.shape in
      Load (Buffer.with_shape b shape, List.map (subst_vars env) idxs)
  | Binop (op, a, b) -> Binop (op, subst_vars env a, subst_vars env b)
  | Unop (op, a) -> Unop (op, subst_vars env a)
  | Cast (dt, a) -> Cast (dt, subst_vars env a)
  | Select (c, a, b) ->
      Select (subst_vars env c, subst_vars env a, subst_vars env b)

let rec loads = function
  | Imm_int _ | Imm_float _ | Idx _ -> []
  | Load (b, idxs) -> ((b, idxs) :: List.concat_map loads idxs)
  | Binop (_, a, b) -> loads a @ loads b
  | Unop (_, a) -> loads a
  | Cast (_, a) -> loads a
  | Select (c, a, b) -> loads c @ loads a @ loads b

let rec count_flops = function
  | Imm_int _ | Imm_float _ | Idx _ -> 0
  | Load (_, idxs) -> List.fold_left (fun acc e -> acc + count_flops e) 0 idxs
  | Binop (_, a, b) -> 1 + count_flops a + count_flops b
  | Unop (_, a) -> 1 + count_flops a
  | Cast (_, a) -> count_flops a
  | Select (c, a, b) -> 1 + count_flops c + count_flops a + count_flops b

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Floor_div -> "//"
  | Floor_mod -> "%"
  | Min -> "min"
  | Max -> "max"
  | Pow -> "pow"
  | Bit_and -> "&"
  | Bit_or -> "|"
  | Bit_xor -> "^"
  | Shift_left -> "<<"
  | Shift_right -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let unop_to_string = function
  | Neg -> "-"
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Rsqrt -> "rsqrt"
  | Tanh -> "tanh"
  | Sigmoid -> "sigmoid"
  | Erf -> "erf"
  | Abs -> "abs"
  | Not -> "!"
  | Cos -> "cos"
  | Sin -> "sin"

let rec pp fmt = function
  | Imm_int c -> Format.pp_print_int fmt c
  | Imm_float x -> Format.fprintf fmt "%g" x
  | Idx e -> Arith.Expr.pp fmt e
  | Load (b, idxs) ->
      Format.fprintf fmt "%s[%a]" b.Buffer.name
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp)
        idxs
  | Binop (((Min | Max | Pow) as op), a, b) ->
      Format.fprintf fmt "%s(%a, %a)" (binop_to_string op) pp a pp b
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp a (binop_to_string op) pp b
  | Unop (((Neg | Not) as op), a) ->
      Format.fprintf fmt "%s%a" (unop_to_string op) pp a
  | Unop (op, a) -> Format.fprintf fmt "%s(%a)" (unop_to_string op) pp a
  | Cast (dt, a) ->
      Format.fprintf fmt "cast<%s>(%a)" (Base.Dtype.to_string dt) pp a
  | Select (c, a, b) ->
      Format.fprintf fmt "select(%a, %a, %a)" pp c pp a pp b

let to_string e = Format.asprintf "%a" pp e
