(** Buffers: named, typed, symbolically-shaped memory regions.

    Tensor programs read and write buffers through explicit indices
    (destination-passing style). Shapes are symbolic expressions over
    {!Arith.Var.t}, so a single compiled tensor program serves every
    runtime value of its dynamic dimensions. *)

type scope =
  | Global  (** device global memory; participates in memory planning *)
  | Shared  (** on-chip scratch (e.g. shared memory); not planned *)
  | Local   (** registers; not planned *)

type t = private {
  name : string;
  id : int;
  shape : Arith.Expr.t list;
  dtype : Base.Dtype.t;
  scope : scope;
}

val create : ?scope:scope -> string -> Arith.Expr.t list -> Base.Dtype.t -> t
(** A fresh buffer (unique id) with [Global] scope by default. *)

val equal : t -> t -> bool
(** Identity (by id), not structural. *)

val compare : t -> t -> int
val ndim : t -> int

val numel : t -> Arith.Expr.t
(** Symbolic element count: the product of the dimensions. *)

val size_in_bytes : t -> Arith.Expr.t
val free_sym_vars : t -> Arith.Var.Set.t
val with_shape : t -> Arith.Expr.t list -> t
(** Same identity, different shape — used when specializing symbolic
    dims; keeps the id so substitutions remain consistent. *)

val pp : Format.formatter -> t -> unit
val scope_to_string : scope -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
