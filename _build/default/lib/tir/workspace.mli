(** Detection and lifting of tensor-program workspaces (§4.4).

    A tensor program such as split-K matmul allocates an intermediate
    global buffer for partial results. This module detects such
    allocations from analysis feedback and rewrites the function to
    receive the workspace as an explicit parameter, so the graph-level
    caller can allocate it — making it visible to global memory
    planning. The graph-level half of the rewrite lives in
    [Relax_passes.Lift_workspace]. *)

val detect : Prim_func.t -> Buffer.t list
(** Global-scope allocations inside the function body. *)

val lift : Prim_func.t -> (Prim_func.t * Buffer.t list) option
(** [Some (f', workspaces)] when the function has global allocations:
    [f'] takes the workspaces as extra buffer parameters inserted
    between the inputs and the outputs, and its body no longer
    allocates. [None] when there is nothing to lift. *)
