(** Compute-pattern analysis of tensor programs (Algorithm 1).

    This is the "analysis feedback" pass of the paper: instead of
    manually annotating every high-level operator with its fusion
    properties, the compiler classifies each tensor program by pattern
    matching on its loop nest and buffer access indices. The resulting
    kind drives pattern-match-based operator fusion (Algorithm 2). *)

type kind =
  | Element_wise
  | Broadcast
  | Injective
  | Reduction
  | Output_ewise_fusible  (** matmul/conv-like: elementwise ops fuse into its output *)
  | Opaque

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val classify : Prim_func.t -> kind
(** Pattern kind of a tensor program, derived from its read and write
    indices per Algorithm 1 of the paper. *)

val annotate : Prim_func.t -> Prim_func.t
(** [classify] and record the result as the ["compute_pattern"]
    function attribute. *)

val kind_of : Prim_func.t -> kind
(** The recorded attribute if present, else [classify]. *)
