(** Constant folding inside dataflow blocks.

    A pure operator call whose arguments are all constants (or
    constant shapes) is evaluated at compile time through its own
    legalized tensor program and replaced by the resulting constant —
    the standard graph-level cleanup that runs early in Relax
    pipelines (weights pre-transformation in MLC-style deployments).
    Dead producers are left for {!Dce}. *)

val run_func : Relax_core.Ir_module.t -> Relax_core.Expr.func -> Relax_core.Expr.func
val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
