(** Analysis feedback (Algorithm 1 driver): classify every tensor
    program in the module and record its compute pattern as a function
    attribute, replacing the manual operator annotations traditional
    compilers require. *)

val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
