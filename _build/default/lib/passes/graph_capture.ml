open Relax_core

let capture_counter = ref 0

let is_capturable (b : Expr.binding) =
  match b with
  | Expr.Bind
      ( _,
        Expr.Call
          {
            callee =
              Expr.Op
                ( "builtin.kernel_call" | "builtin.extern_call"
                | "builtin.tensor_from_storage" );
            _;
          } ) ->
      true
  | Expr.Bind _ | Expr.Match_cast _ -> false

let is_call (b : Expr.binding) =
  match b with
  | Expr.Bind
      ( _,
        Expr.Call
          { callee = Expr.Op ("builtin.kernel_call" | "builtin.extern_call"); _ }
      ) ->
      true
  | Expr.Bind _ | Expr.Match_cast _ -> false

(* Split bindings into maximal runs of capturable bindings and the
   bindings between them. *)
let runs_of bindings =
  let rec go acc cur = function
    | [] -> List.rev (if cur = [] then acc else `Run (List.rev cur) :: acc)
    | b :: rest ->
        if is_capturable b then go acc (b :: cur) rest
        else
          let acc = if cur = [] then acc else `Run (List.rev cur) :: acc in
          go (`Single b :: acc) [] rest
  in
  go [] [] bindings

let sym_vars_of_bindings bindings =
  List.fold_left
    (fun acc b ->
      let e = Expr.bound_expr b in
      let rec vars_of (e : Expr.expr) =
        match e with
        | Expr.Shape_expr dims ->
            List.fold_left
              (fun acc d -> Arith.Var.Set.union acc (Arith.Expr.free_vars d))
              Arith.Var.Set.empty dims
        | Expr.Prim_value p -> Arith.Expr.free_vars p
        | Expr.Call { args; _ } ->
            List.fold_left
              (fun acc a -> Arith.Var.Set.union acc (vars_of a))
              Arith.Var.Set.empty args
        | Expr.Tuple es ->
            List.fold_left
              (fun acc a -> Arith.Var.Set.union acc (vars_of a))
              Arith.Var.Set.empty es
        | _ -> Arith.Var.Set.empty
      in
      Arith.Var.Set.union acc (vars_of e))
    Arith.Var.Set.empty bindings

let lift_region mod_ref fname region ~used_after =
  let defined = List.map Expr.binding_var region in
  let is_defined v = List.exists (Rvar.equal v) defined in
  (* External variables in first-use order. *)
  let externals = ref [] in
  List.iter
    (fun b ->
      Rvar.Set.iter
        (fun v ->
          if (not (is_defined v)) && not (List.exists (Rvar.equal v) !externals)
          then externals := !externals @ [ v ])
        (Expr.free_vars (Expr.bound_expr b)))
    region;
  let externals = !externals in
  let outputs =
    List.filter (fun v -> Rvar.Set.mem v used_after) defined
  in
  let params = List.map Util.fresh_like externals in
  let sym_needed = sym_vars_of_bindings region in
  let sym_list = Arith.Var.Set.elements sym_needed in
  let shape_param =
    match sym_list with
    | [] -> None
    | vs -> Some (Rvar.fresh "s" (Struct_info.shape (List.map Arith.Expr.var vs)))
  in
  let env =
    List.fold_left2
      (fun acc ext p -> Rvar.Map.add ext (Expr.Var p) acc)
      Rvar.Map.empty externals params
  in
  let inner =
    List.map
      (fun b ->
        match b with
        | Expr.Bind (v, e) -> Expr.Bind (v, Util.subst_vars env e)
        | Expr.Match_cast (v, e, si) ->
            Expr.Match_cast (v, Util.subst_vars env e, si))
      region
  in
  let ret_expr, ret_sinfo =
    match outputs with
    | [ v ] -> (Expr.Var v, Rvar.sinfo v)
    | vs ->
        ( Expr.Tuple (List.map (fun v -> Expr.Var v) vs),
          Struct_info.Tuple (List.map Rvar.sinfo vs) )
  in
  let subgraph =
    {
      Expr.params =
        (params @ match shape_param with Some s -> [ s ] | None -> []);
      ret_sinfo;
      body =
        Expr.Seq
          { blocks = [ { Expr.dataflow = false; bindings = inner } ];
            body = ret_expr };
      attrs = [ ("captured_graph", "1") ];
    }
  in
  incr capture_counter;
  let name = Printf.sprintf "%s_cuda_graph_%d" fname !capture_counter in
  mod_ref := Ir_module.add_func !mod_ref name subgraph;
  let call_args =
    (Expr.Global_var name :: List.map (fun v -> Expr.Var v) externals)
    @
    match sym_list with
    | [] -> []
    | vs -> [ Expr.Shape_expr (List.map Arith.Expr.var vs) ]
  in
  let call =
    Expr.Call
      {
        callee = Expr.Op "builtin.graph_run";
        args = Expr.Prim_value (Arith.Expr.const !capture_counter) :: call_args;
        sinfo_args = [ ret_sinfo ];
      }
  in
  match outputs with
  | [ v ] -> [ Expr.Bind (v, call) ]
  | vs ->
      let tup = Rvar.fresh "captured" ret_sinfo in
      Expr.Bind (tup, call)
      :: List.mapi (fun i v -> Expr.Bind (v, Expr.Tuple_get (Expr.Var tup, i))) vs

let run_func mod_ref fname (f : Expr.func) =
  if not (Memory_plan.plan_is_static f) then f
  else
    match f.Expr.body with
    | Expr.Seq { blocks = [ { Expr.bindings; dataflow } ]; body } ->
        let pieces = runs_of bindings in
        (* Variables used after each position, including the result. *)
        let result_vars = Expr.free_vars body in
        let rec rebuild pieces =
          match pieces with
          | [] -> []
          | `Single b :: rest -> b :: rebuild rest
          | `Run region :: rest ->
              let calls = List.length (List.filter is_call region) in
              if calls < 2 then region @ rebuild rest
              else
                let after_bindings =
                  List.concat_map
                    (function `Single b -> [ b ] | `Run r -> r)
                    rest
                in
                let used_after =
                  List.fold_left
                    (fun acc b ->
                      Rvar.Set.union acc
                        (Expr.free_vars (Expr.bound_expr b)))
                    result_vars after_bindings
                in
                lift_region mod_ref fname region ~used_after @ rebuild rest
        in
        let bindings = rebuild pieces in
        {
          f with
          Expr.body =
            Expr.Seq { blocks = [ { Expr.dataflow; bindings } ]; body };
        }
    | _ -> f

let run mod_ =
  let mod_ref = ref mod_ in
  List.iter
    (fun (name, f) ->
      if List.assoc_opt "captured_graph" f.Expr.attrs = None then
        mod_ref := Ir_module.update_func !mod_ref name (run_func mod_ref name f))
    (Ir_module.funcs mod_);
  !mod_ref
