(** The cross-level optimization and lowering pipeline (Figure 13).

    Fixed pass order, no fixed point:
    {v
      Normalize -> DispatchLibrary -> LegalizeOps -> AnnotatePatterns
        -> FuseOps -> FuseTensorIR -> DCE -> LiftWorkspace
        -> ExplicitMemory -> MemoryPlan -> GraphCapture -> ToVM
    v}
    Every stage is individually toggleable, which is what the paper's
    ablation study (Figure 17) exercises. *)

type options = {
  dispatch_library : bool;
  lib_all_batches : bool;
      (** dispatch matmuls to the library even at batch 1 (models
          library-centric systems like vLLM; Relax keeps generated
          matrix-vector kernels there, §5.1) *)
  fusion : bool;
  schedule_tensorir : bool;
      (** apply the analysis-based default schedules of §4.6
          ({!Tir.Schedule.auto_schedule}) to every tensor program
          after fusion *)
  lift_workspace : bool;
  memory_plan : bool;
  graph_capture : bool;
  upper_bounds : (Arith.Var.t * int) list;
      (** user-annotated bounds, e.g. max context length (§4.3) *)
}

val default_options : options
(** Everything enabled, no bounds. *)

val all_off : options

val compile :
  ?options:options ->
  device:Runtime.Device.t ->
  Relax_core.Ir_module.t ->
  Runtime.Vm.program
(** Library dispatch only fires on devices with a vendor library;
    graph capture only on devices supporting it. *)

val lower :
  ?options:options ->
  device:Runtime.Device.t ->
  Relax_core.Ir_module.t ->
  Relax_core.Ir_module.t
(** The IR-to-IR part of {!compile}, for inspection and tests. *)
