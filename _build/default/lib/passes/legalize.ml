open Relax_core

(* Freshen non-constant dims, sharing fresh variables between
   occurrences of provably-equal expressions so that shape relations
   (same input/output extents, matching inner dimensions) survive in
   the generated kernel's signature. *)
type freshener = {
  mutable mapping : (Arith.Expr.t * Arith.Var.t) list;
}

let fresh_dim fr (e : Arith.Expr.t) =
  match e with
  | Arith.Expr.Const _ -> e
  | _ -> (
      let canon = Arith.Simplify.simplify e in
      match
        List.find_opt
          (fun (prev, _) -> Arith.Simplify.prove_equal prev canon)
          fr.mapping
      with
      | Some (_, v) -> Arith.Expr.var v
      | None ->
          let v = Arith.Var.fresh "d" in
          fr.mapping <- (canon, v) :: fr.mapping;
          Arith.Expr.var v)

let fresh_shape_info fr (si : Struct_info.shape_info) =
  match si with
  | Struct_info.Known dims -> Struct_info.Known (List.map (fresh_dim fr) dims)
  | Struct_info.Ndim _ | Struct_info.Unknown_rank -> si

let rec fresh_sinfo fr (si : Struct_info.t) =
  match si with
  | Struct_info.Tensor t ->
      Struct_info.Tensor { t with Struct_info.shape = fresh_shape_info fr t.Struct_info.shape }
  | Struct_info.Shape s -> Struct_info.Shape (fresh_shape_info fr s)
  | Struct_info.Tuple ts -> Struct_info.Tuple (List.map (fresh_sinfo fr) ts)
  | Struct_info.Object | Struct_info.Prim _ | Struct_info.Callable _ -> si

let legalize_func mod_ref fname (f : Expr.func) =
  let rewrite (b : Expr.binding) =
    match b with
    | Expr.Bind (v, Expr.Call { callee = Expr.Op name; args; sinfo_args = [] })
      -> (
        match Op.legalizer name with
        | None ->
            failwith
              (Printf.sprintf
                 "Legalize: operator %s (in %s) has no registered legalizer"
                 name fname)
        | Some legalize -> (
            let arg_sinfo = List.map (Deduce.expr_sinfo !mod_ref) args in
            let out = Rvar.sinfo v in
            let fr = { mapping = [] } in
            let arg_sinfo_fresh = List.map (fresh_sinfo fr) arg_sinfo in
            let out_fresh = fresh_sinfo fr out in
            match
              legalize ~args ~arg_sinfo:arg_sinfo_fresh ~out:out_fresh
            with
            | None ->
                failwith
                  (Printf.sprintf "Legalize: %s could not be legalized" name)
            | Some { Op.kernel; tensor_args; sym_args } ->
                let mod_, kname = Ir_module.add_tir_fresh !mod_ref kernel in
                mod_ref := mod_;
                [
                  Expr.Bind
                    (v, Expr.call_tir kname tensor_args ~out ~sym_args ());
                ]))
    | Expr.Bind _ | Expr.Match_cast _ -> [ b ]
  in
  Util.map_func_bindings rewrite f

let run mod_ =
  let mod_ref = ref mod_ in
  let funcs = Ir_module.funcs mod_ in
  List.iter
    (fun (name, f) ->
      let f' = legalize_func mod_ref name f in
      mod_ref := Ir_module.update_func !mod_ref name f')
    funcs;
  !mod_ref
