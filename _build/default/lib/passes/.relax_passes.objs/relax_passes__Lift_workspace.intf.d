lib/passes/lift_workspace.mli: Relax_core
