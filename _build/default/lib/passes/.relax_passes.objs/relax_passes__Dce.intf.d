lib/passes/dce.mli: Relax_core
