lib/passes/memory_plan.ml: Arith Expr Hashtbl Ir_module List Relax_core Rvar Struct_info Util
