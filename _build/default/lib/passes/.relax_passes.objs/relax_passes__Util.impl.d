lib/passes/util.ml: Arith Base Expr List Relax_core Rvar Struct_info
