lib/passes/normalize.ml: Deduce Expr Ir_module List Printf Relax_core Rvar Struct_info
