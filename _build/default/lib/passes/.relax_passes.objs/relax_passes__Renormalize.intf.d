lib/passes/renormalize.mli: Relax_core
