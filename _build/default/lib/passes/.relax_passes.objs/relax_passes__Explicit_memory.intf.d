lib/passes/explicit_memory.mli: Relax_core
