lib/passes/legalize.mli: Relax_core
