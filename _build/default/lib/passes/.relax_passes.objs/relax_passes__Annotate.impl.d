lib/passes/annotate.ml: Relax_core Tir
