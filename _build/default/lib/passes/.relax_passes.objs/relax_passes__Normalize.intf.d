lib/passes/normalize.mli: Relax_core
