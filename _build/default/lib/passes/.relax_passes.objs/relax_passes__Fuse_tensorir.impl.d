lib/passes/fuse_tensorir.ml: Arith Expr Hashtbl Ir_module List Relax_core Rvar Struct_info Tir Util
