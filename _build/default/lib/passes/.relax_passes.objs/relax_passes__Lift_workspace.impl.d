lib/passes/lift_workspace.ml: Arith Deduce Expr Hashtbl Ir_module List Relax_core Rvar Struct_info Tir Util
