lib/passes/graph_capture.mli: Relax_core
