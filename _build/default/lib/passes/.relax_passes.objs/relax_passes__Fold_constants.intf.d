lib/passes/fold_constants.mli: Relax_core
