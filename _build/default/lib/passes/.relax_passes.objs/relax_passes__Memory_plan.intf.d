lib/passes/memory_plan.mli: Arith Relax_core
