lib/passes/util.mli: Arith Expr Relax_core Rvar Struct_info
