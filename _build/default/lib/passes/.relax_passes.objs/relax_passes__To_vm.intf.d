lib/passes/to_vm.mli: Relax_core Runtime
