lib/passes/renormalize.ml: Deduce Expr Hashtbl Ir_module List Relax_core Rvar Struct_info
