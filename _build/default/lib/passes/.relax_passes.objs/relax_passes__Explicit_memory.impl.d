lib/passes/explicit_memory.ml: Array Expr Hashtbl Ir_module List Printf Relax_core Rvar Struct_info
