lib/passes/fuse_tensorir.mli: Relax_core
