lib/passes/dispatch_library.mli: Arith Relax_core
