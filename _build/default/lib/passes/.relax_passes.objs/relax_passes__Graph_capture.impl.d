lib/passes/graph_capture.ml: Arith Expr Ir_module List Memory_plan Printf Relax_core Rvar Struct_info Util
