lib/passes/fuse_ops.mli: Relax_core
