lib/passes/annotate.mli: Relax_core
