lib/passes/pipeline.mli: Arith Relax_core Runtime
