lib/passes/fuse_ops.ml: Arith Array Expr Hashtbl Ir_module List Printf Relax_core Rvar String Struct_info Tir Util
