lib/passes/fold_constants.ml: Arith Array Base Expr Hashtbl Ir_module List Op Relax_core Rvar Struct_info Tir Util
