lib/passes/dispatch_library.ml: Arith Expr Ir_module List Relax_core Rvar Struct_info Util
