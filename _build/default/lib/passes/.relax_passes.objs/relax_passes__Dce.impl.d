lib/passes/dce.ml: Expr Hashtbl Ir_module List Relax_core Rvar Util
