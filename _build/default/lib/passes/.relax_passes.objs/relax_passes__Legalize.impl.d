lib/passes/legalize.ml: Arith Deduce Expr Ir_module List Op Printf Relax_core Rvar Struct_info Util
