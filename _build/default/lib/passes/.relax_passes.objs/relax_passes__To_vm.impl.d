lib/passes/to_vm.ml: Arith Array Base Expr Hashtbl Ir_module List Printf Relax_core Runtime Rvar Struct_info
