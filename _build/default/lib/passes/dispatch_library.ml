open Relax_core

type pattern = {
  op_name : string;
  library_fn : string -> string;
  min_batch : int;
}

let default_patterns =
  [
    { op_name = "matmul"; library_fn = (fun v -> v ^ ".matmul"); min_batch = 2 };
    {
      op_name = "rms_norm";
      library_fn = (fun v -> v ^ ".rms_norm");
      min_batch = 0;
    };
  ]

(* Leading extent (product of all but the last dimension) of the first
   argument, when its annotation is precise enough. *)
let leading_extent (args : Expr.expr list) =
  match args with
  | Expr.Var v :: _ -> (
      match Struct_info.tensor_shape (Rvar.sinfo v) with
      | Some dims when dims <> [] ->
          let lead = List.filteri (fun i _ -> i < List.length dims - 1) dims in
          Some
            (Arith.Simplify.simplify
               (List.fold_left Arith.Expr.mul (Arith.Expr.const 1) lead))
      | Some _ | None -> None)
  | _ -> None

let run ?(patterns = default_patterns) ~vendor ?(bound_of = fun _ -> None) mod_ =
  ignore bound_of;
  let rewrite_binding (b : Expr.binding) =
    match b with
    | Expr.Bind (v, Expr.Call { callee = Expr.Op name; args; sinfo_args = [] })
      -> (
        match List.find_opt (fun p -> p.op_name = name) patterns with
        | Some p ->
            let batch_ok =
              match leading_extent args with
              | Some e -> (
                  match Arith.Expr.as_const e with
                  | Some c -> c >= p.min_batch
                  | None -> true (* dynamic extent: assume large *))
              | None -> true
            in
            if batch_ok then
              [
                Expr.Bind
                  ( v,
                    Expr.call_dps_library (p.library_fn vendor) args
                      ~out:(Rvar.sinfo v) );
              ]
            else [ b ]
        | None -> [ b ])
    | Expr.Bind _ | Expr.Match_cast _ -> [ b ]
  in
  Ir_module.map_funcs (fun _ f -> Util.map_func_bindings rewrite_binding f) mod_
