(** Normalization to A-normal form.

    The block builder produces ANF by construction, but hand-written
    programs (via {!Relax_core.Parser}) and mechanically generated
    ones may nest calls inside call arguments, tuples or returns.
    This pass flattens every non-leaf sub-expression into its own
    binding with a forward-deduced annotation, so all later passes can
    rely on the ANF discipline. Idempotent. *)

val run_func : Relax_core.Ir_module.t -> Relax_core.Expr.func -> Relax_core.Expr.func
val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
