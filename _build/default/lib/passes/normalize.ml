open Relax_core

(* A leaf can appear directly as a call/tuple argument. *)
let is_leaf (e : Expr.expr) =
  match e with
  | Expr.Var _ | Expr.Const _ | Expr.Prim_value _ | Expr.Shape_expr _
  | Expr.Global_var _ | Expr.Extern_func _ | Expr.Op _ ->
      true
  | Expr.Tuple _ | Expr.Tuple_get _ | Expr.Call _ | Expr.If _ | Expr.Seq _ ->
      false

type ctx = { mod_ : Ir_module.t; mutable fresh : int }

let fresh_name ctx =
  let n = ctx.fresh in
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "nrm%d" n

(* Normalize [e]; non-leaf sub-expressions are emitted as bindings via
   [emit]. [root] controls whether [e] itself may stay compound (a
   binding's RHS may; an argument may not). *)
let rec norm_expr ctx emit ~root (e : Expr.expr) : Expr.expr =
  let as_arg e =
    let e = norm_expr ctx emit ~root:false e in
    if is_leaf e then e
    else begin
      let sinfo =
        try Deduce.expr_sinfo ctx.mod_ e
        with Deduce.Error _ -> Struct_info.Object
      in
      let v = Rvar.fresh (fresh_name ctx) sinfo in
      emit (Expr.Bind (v, e));
      Expr.Var v
    end
  in
  match e with
  | _ when is_leaf e -> e
  | Expr.Tuple es ->
      let e' = Expr.Tuple (List.map as_arg es) in
      if root then e' else e'
  | Expr.Tuple_get (inner, i) -> Expr.Tuple_get (as_arg inner, i)
  | Expr.Call c ->
      let special =
        match c.Expr.callee with
        | Expr.Op
            ( "call_tir" | "call_dps_library" | "call_tir_inplace"
            | "builtin.alloc_tensor" | "builtin.alloc_storage"
            | "builtin.tensor_from_storage" | "builtin.kernel_call"
            | "builtin.extern_call" | "builtin.kill" | "builtin.graph_run" ) ->
            true
        | _ -> false
      in
      if special then
        (* Cross-level call forms carry a structural argument tuple
           the passes pattern-match on: keep the skeleton, normalize
           only the tensor arguments inside it. *)
        Expr.Call
          {
            c with
            Expr.args =
              List.map
                (fun a ->
                  match a with
                  | Expr.Tuple es -> Expr.Tuple (List.map as_arg es)
                  | a when is_leaf a -> a
                  | a -> as_arg a)
                c.Expr.args;
          }
      else Expr.Call { c with Expr.args = List.map as_arg c.Expr.args }
  | Expr.If { cond; then_; else_ } ->
      Expr.If
        {
          cond = as_arg cond;
          then_ = norm_body ctx then_;
          else_ = norm_body ctx else_;
        }
  | Expr.Seq _ -> norm_body ctx e
  | _ -> e

(* Normalize a region (If branch or function body). *)
and norm_body ctx (e : Expr.expr) : Expr.expr =
  let blocks, result =
    match e with
    | Expr.Seq { blocks; body } -> (blocks, body)
    | e -> ([], e)
  in
  let out_blocks = ref [] in
  let norm_block (blk : Expr.block) =
    let acc = ref [] in
    let emit b = acc := b :: !acc in
    List.iter
      (fun binding ->
        match binding with
        | Expr.Bind (v, rhs) ->
            let rhs = norm_expr ctx emit ~root:true rhs in
            emit (Expr.Bind (v, rhs))
        | Expr.Match_cast (v, rhs, si) ->
            let rhs = norm_expr ctx emit ~root:false rhs in
            emit (Expr.Match_cast (v, rhs, si)))
      blk.Expr.bindings;
    { blk with Expr.bindings = List.rev !acc }
  in
  List.iter (fun blk -> out_blocks := norm_block blk :: !out_blocks) blocks;
  (* The result must be a leaf or a tuple of leaves. *)
  let tail = ref [] in
  let emit b = tail := b :: !tail in
  let result =
    match result with
    | e when is_leaf e -> e
    | Expr.Tuple es ->
        Expr.Tuple
          (List.map
             (fun inner ->
               let inner = norm_expr ctx emit ~root:false inner in
               if is_leaf inner then inner
               else begin
                 let sinfo =
                   try Deduce.expr_sinfo ctx.mod_ inner
                   with Deduce.Error _ -> Struct_info.Object
                 in
                 let v = Rvar.fresh (fresh_name ctx) sinfo in
                 emit (Expr.Bind (v, inner));
                 Expr.Var v
               end)
             es)
    | e ->
        let e = norm_expr ctx emit ~root:true e in
        let sinfo =
          try Deduce.expr_sinfo ctx.mod_ e
          with Deduce.Error _ -> Struct_info.Object
        in
        let v = Rvar.fresh (fresh_name ctx) sinfo in
        emit (Expr.Bind (v, e));
        Expr.Var v
  in
  if !tail <> [] then
    out_blocks :=
      { Expr.dataflow = false; bindings = List.rev !tail } :: !out_blocks;
  match List.rev !out_blocks with
  | [] -> result
  | blocks -> Expr.Seq { blocks; body = result }

let run_func mod_ (f : Expr.func) =
  let ctx = { mod_; fresh = 0 } in
  { f with Expr.body = norm_body ctx f.Expr.body }

let run mod_ = Ir_module.map_funcs (fun _ f -> run_func mod_ f) mod_
