(** FuseTensorIR (§4.2, Figure 9): the cross-level half of fusion.

    For every subgraph function produced by FuseOps (attribute
    [("fused", "1")]), merge the tensor programs it calls into a
    single kernel via {!Tir.Fuse.merge} — intermediates become on-chip
    scratch — and replace every call to the subgraph function with a
    direct [call_tir] of the merged kernel, passing the subgraph's
    extra symbolic arguments through. The subgraph function is then
    removed from the module.

    Subgraph functions containing anything but [call_tir] bindings of
    variable arguments are left as ordinary functions (conservative
    bail-out). *)

val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
