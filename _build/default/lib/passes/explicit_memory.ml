open Relax_core

let dummy_var () = Rvar.fresh "_" Struct_info.Object

let out_dims fname (out : Struct_info.t) =
  match Struct_info.tensor_shape out with
  | Some dims -> dims
  | None ->
      failwith
        (Printf.sprintf
           "ExplicitMemory: %s output annotation must have a known symbolic \
            shape (got %s)"
           fname (Struct_info.to_string out))

let lower_bindings (b : Expr.binding) : Expr.binding list =
  match b with
  | Expr.Bind (v, e) -> (
      match Expr.as_call_tir e with
      | Some (kname, args, out, sym_args) ->
          let dims = out_dims kname out in
          [
            Expr.Bind
              ( v,
                Expr.Call
                  {
                    callee = Expr.Op "builtin.alloc_tensor";
                    args = [ Expr.Shape_expr dims ];
                    sinfo_args = [ out ];
                  } );
            Expr.Bind
              ( dummy_var (),
                Expr.Call
                  {
                    callee = Expr.Op "builtin.kernel_call";
                    args =
                      (Expr.Global_var kname :: args)
                      @ [ Expr.Var v ]
                      @ List.map (fun s -> Expr.Prim_value s) sym_args;
                    sinfo_args = [];
                  } );
          ]
      | None -> (
          match Expr.as_call_tir_inplace e with
          | Some (kname, args, out_index, _out, sym_args) ->
              (* No allocation: the kernel mutates args.(out_index);
                 the binding aliases that argument. *)
              let target =
                match List.nth_opt args out_index with
                | Some a -> a
                | None ->
                    failwith "ExplicitMemory: call_tir_inplace index out of range"
              in
              [
                Expr.Bind
                  ( dummy_var (),
                    Expr.Call
                      {
                        callee = Expr.Op "builtin.kernel_call";
                        args =
                          (Expr.Global_var kname :: args)
                          @ List.map (fun s -> Expr.Prim_value s) sym_args;
                        sinfo_args = [];
                      } );
                Expr.Bind (v, target);
              ]
          | None ->
          match Expr.as_call_dps_library e with
          | Some (fname, args, out) ->
              let dims = out_dims fname out in
              [
                Expr.Bind
                  ( v,
                    Expr.Call
                      {
                        callee = Expr.Op "builtin.alloc_tensor";
                        args = [ Expr.Shape_expr dims ];
                        sinfo_args = [ out ];
                      } );
                Expr.Bind
                  ( dummy_var (),
                    Expr.Call
                      {
                        callee = Expr.Op "builtin.extern_call";
                        args = (Expr.Extern_func fname :: args) @ [ Expr.Var v ];
                        sinfo_args = [];
                      } );
              ]
          | None -> [ b ]))
  | Expr.Match_cast _ -> [ b ]

let is_alloc_binding (b : Expr.binding) =
  match b with
  | Expr.Bind (_, Expr.Call { callee = Expr.Op "builtin.alloc_tensor"; _ }) ->
      true
  | Expr.Bind _ | Expr.Match_cast _ -> false

(* Insert builtin.kill markers after the last use of each allocated
   tensor. Result variables are never killed. *)
let insert_kills (bindings : Expr.binding list) (result : Expr.expr) :
    Expr.binding list =
  let arr = Array.of_list bindings in
  let allocated =
    Array.to_list arr
    |> List.filter is_alloc_binding
    |> List.map Expr.binding_var
    |> Rvar.Set.of_list
  in
  let result_vars = Expr.free_vars result in
  let last_use = Hashtbl.create 16 in
  Array.iteri
    (fun i b ->
      Rvar.Set.iter
        (fun v -> Hashtbl.replace last_use v.Rvar.id i)
        (Expr.free_vars (Expr.bound_expr b)))
    arr;
  let kills_at = Hashtbl.create 16 in
  Rvar.Set.iter
    (fun v ->
      if not (Rvar.Set.mem v result_vars) then
        match Hashtbl.find_opt last_use v.Rvar.id with
        | Some i ->
            let cur = try Hashtbl.find kills_at i with Not_found -> [] in
            Hashtbl.replace kills_at i (v :: cur)
        | None -> ())
    allocated;
  List.concat
    (List.mapi
       (fun i b ->
         match Hashtbl.find_opt kills_at i with
         | Some vs ->
             [
               b;
               Expr.Bind
                 ( dummy_var (),
                   Expr.Call
                     {
                       callee = Expr.Op "builtin.kill";
                       args = List.map (fun v -> Expr.Var v) vs;
                       sinfo_args = [];
                     } );
             ]
         | None -> [ b ])
       (Array.to_list arr))

(* Lower an If branch body in place: each branch is a self-contained
   region whose allocations stay unplanned (conservative). *)
let rec lower_expr (e : Expr.expr) : Expr.expr =
  match e with
  | Expr.Seq { blocks; body } ->
      let bindings =
        List.concat_map
          (fun (blk : Expr.block) ->
            List.concat_map lower_binding_rec blk.Expr.bindings)
          blocks
      in
      Expr.Seq { blocks = [ { Expr.dataflow = false; bindings } ]; body }
  | Expr.If { cond; then_; else_ } ->
      Expr.If { cond; then_ = lower_expr then_; else_ = lower_expr else_ }
  | e -> e

and lower_binding_rec (b : Expr.binding) : Expr.binding list =
  match b with
  | Expr.Bind (v, (Expr.If _ as e)) -> [ Expr.Bind (v, lower_expr e) ]
  | b -> lower_bindings b

let run_func (f : Expr.func) =
  match f.Expr.body with
  | Expr.Seq { blocks; body } ->
      let bindings =
        List.concat_map
          (fun (blk : Expr.block) ->
            List.concat_map lower_binding_rec blk.Expr.bindings)
          blocks
      in
      let bindings = insert_kills bindings body in
      {
        f with
        Expr.body =
          Expr.Seq
            { blocks = [ { Expr.dataflow = false; bindings } ]; body };
      }
  | _ -> f

let run mod_ = Ir_module.map_funcs (fun _ f -> run_func f) mod_
