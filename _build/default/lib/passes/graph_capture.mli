(** Graph offloading — the CUDA Graph analogue (§4.5).

    After static memory planning, lifts maximal regions of kernel and
    library calls (plus the zero-cost tensor instantiations between
    them) into subgraph functions invoked through the
    [builtin.graph_run] builtin. At runtime the first invocation of a
    region captures it; every later invocation replays it, eliminating
    per-kernel launch overhead (the VM charges a single replay
    overhead instead).

    Preconditions, checked per function: the target device supports
    graph capture, and the memory plan is fully static
    ({!Memory_plan.plan_is_static}) — exactly the paper's requirement
    that all memory accessed by captured kernels be statically
    allocated. *)

val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
(** Functions that fail the preconditions are left unchanged. Only
    regions containing at least two kernel/library calls are lifted. *)
