open Relax_core

(* Is [fresh] strictly more precise than [recorded]? Refinement means
   the recorded annotation subsumes the fresh one but not vice versa. *)
let refines ~recorded ~fresh =
  Struct_info.subsumes recorded fresh && not (Struct_info.equal recorded fresh)

let run_func mod_ (f : Expr.func) =
  (* Variables refined earlier in the walk must be seen with their new
     annotations by later deductions: substitute as we go. *)
  let refined : (int, Rvar.t) Hashtbl.t = Hashtbl.create 16 in
  let rewrite_var (v : Rvar.t) =
    match Hashtbl.find_opt refined v.Rvar.id with Some v' -> v' | None -> v
  in
  let rec rewrite_uses (e : Expr.expr) : Expr.expr =
    match e with
    | Expr.Var v -> Expr.Var (rewrite_var v)
    | Expr.Tuple es -> Expr.Tuple (List.map rewrite_uses es)
    | Expr.Tuple_get (e, i) -> Expr.Tuple_get (rewrite_uses e, i)
    | Expr.Call c ->
        Expr.Call { c with Expr.args = List.map rewrite_uses c.Expr.args }
    | Expr.If { cond; then_; else_ } ->
        Expr.If
          {
            cond = rewrite_uses cond;
            then_ = rewrite_body then_;
            else_ = rewrite_body else_;
          }
    | e -> e
  and rewrite_body (e : Expr.expr) : Expr.expr =
    match e with
    | Expr.Seq { blocks; body } ->
        let blocks =
          List.map
            (fun (blk : Expr.block) ->
              { blk with Expr.bindings = List.map rewrite_binding blk.Expr.bindings })
            blocks
        in
        Expr.Seq { blocks; body = rewrite_uses body }
    | e -> rewrite_uses e
  and rewrite_binding (b : Expr.binding) : Expr.binding =
    match b with
    | Expr.Match_cast (v, e, si) -> Expr.Match_cast (v, rewrite_uses e, si)
    | Expr.Bind (v, e) -> (
        let e = rewrite_uses e in
        match Deduce.expr_sinfo mod_ e with
        | fresh when refines ~recorded:(Rvar.sinfo v) ~fresh ->
            let v' = Rvar.with_sinfo v fresh in
            Hashtbl.replace refined v.Rvar.id v';
            Expr.Bind (v', e)
        | _ | (exception Deduce.Error _) -> Expr.Bind (v, e))
  in
  { f with Expr.body = rewrite_body f.Expr.body }

let run mod_ = Ir_module.map_funcs (fun _ f -> run_func mod_ f) mod_
