open Relax_core

(* Recover the caller-side symbolic shape of a lifted workspace: unify
   the kernel's declared input shapes with the call-site argument
   annotations and substitute into the workspace's declared shape. *)
let caller_workspace_shape (kernel : Tir.Prim_func.t)
    (arg_sinfos : Struct_info.t list) (ws : Tir.Buffer.t) =
  let env = ref Arith.Var.Map.empty in
  List.iteri
    (fun i (b : Tir.Buffer.t) ->
      match List.nth_opt arg_sinfos i with
      | Some si -> (
          match Struct_info.tensor_shape si with
          | Some dims when List.length dims = List.length b.Tir.Buffer.shape ->
              List.iter2
                (fun declared actual ->
                  match declared with
                  | Arith.Expr.Var v ->
                      if not (Arith.Var.Map.mem v !env) then
                        env := Arith.Var.Map.add v actual !env
                  | _ -> ())
                b.Tir.Buffer.shape dims
          | _ -> ())
      | None -> ())
    (Tir.Prim_func.inputs kernel);
  List.map (Arith.Expr.subst !env) ws.Tir.Buffer.shape

let run mod_ =
  let mod_ref = ref mod_ in
  (* Kernel name -> lifted kernel name (kernels rewritten in place). *)
  let lifted = Hashtbl.create 8 in
  List.iter
    (fun (kname, kernel) ->
      match Tir.Workspace.lift kernel with
      | Some (kernel', workspaces) ->
          mod_ref :=
            Ir_module.add_tir (Ir_module.remove !mod_ref kname) kname
              (Tir.Prim_func.with_name kernel' kname);
          Hashtbl.replace lifted kname (kernel, workspaces)
      | None -> ())
    (Ir_module.tir_funcs mod_);
  let rewrite_func (f : Expr.func) =
    let mod_now = !mod_ref in
    let rewrite (b : Expr.binding) =
      match b with
      | Expr.Bind (v, e) -> (
          match Expr.as_call_tir e with
          | Some (kname, args, out, sym_args) -> (
              match Hashtbl.find_opt lifted kname with
              | Some (orig_kernel, workspaces) ->
                  let arg_sinfos =
                    List.map (Deduce.expr_sinfo mod_now) args
                  in
                  let ws_bindings, ws_vars =
                    List.split
                      (List.map
                         (fun ws ->
                           let dims =
                             caller_workspace_shape orig_kernel arg_sinfos ws
                           in
                           let sinfo =
                             Struct_info.tensor dims ws.Tir.Buffer.dtype
                           in
                           let wv = Rvar.fresh "workspace" sinfo in
                           ( Expr.Bind
                               ( wv,
                                 Expr.Call
                                   {
                                     callee = Expr.Op "builtin.alloc_tensor";
                                     args = [ Expr.Shape_expr dims ];
                                     sinfo_args = [ sinfo ];
                                   } ),
                             Expr.Var wv ))
                         workspaces)
                  in
                  ws_bindings
                  @ [
                      Expr.Bind
                        ( v,
                          Expr.call_tir kname (args @ ws_vars) ~out ~sym_args
                            () );
                    ]
              | None -> [ b ])
          | None -> [ b ])
      | Expr.Match_cast _ -> [ b ]
    in
    (* Workspace allocation is an effect: the enclosing block loses its
       dataflow purity only in the paper's formal sense after explicit
       lowering; here the alloc builtin is still side-effect-free from
       the graph's perspective, so the block kind is preserved. *)
    Util.map_func_bindings rewrite f
  in
  Ir_module.map_funcs (fun _ f -> rewrite_func f) !mod_ref
