(** Cross-level tensor program workspace lifting (§4.4, Figure 11).

    For every [call_tir] whose kernel allocates global intermediate
    memory (detected by {!Tir.Workspace}), rewrite the kernel to take
    the workspace as an explicit parameter and rewrite the graph-level
    call site to allocate the workspace and pass it in. The lifted
    allocation then participates in global memory planning — an
    optimization only expressible with a cross-level abstraction. *)

val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
