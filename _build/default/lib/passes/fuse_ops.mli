(** FuseOps (Algorithm 2): dynamic shape-aware operator fusion.

    Groups [call_tir] bindings inside dataflow blocks using the
    compute patterns recorded by the analysis-feedback pass:

    - chains of ElementWise / Broadcast / Injective programs merge;
    - Injective producers (e.g. the custom quantization decode of
      Figure 9) merge into a consuming OutputEwiseFusible program
      (matmul-like) as prologues;
    - ElementWise / Broadcast consumers merge into OutputEwiseFusible
      or Reduction groups as epilogues.

    A producer is only pulled into a group when its result has a
    single consumer. Each multi-binding group becomes a new subgraph
    function; when the group's symbolic variables are not derivable
    from its tensor parameters, an extra [Shape] parameter carries
    them (Figure 8). The original bindings are replaced by a call to
    the subgraph function. Fused functions carry the attribute
    [("fused", "1")] for FuseTensorIR. *)

val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
