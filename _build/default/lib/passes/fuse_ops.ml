open Relax_core

type kind = Tir.Pattern.kind

let severity = function
  | Tir.Pattern.Element_wise -> 0
  | Tir.Pattern.Broadcast -> 1
  | Tir.Pattern.Injective -> 2
  | Tir.Pattern.Reduction -> 3
  | Tir.Pattern.Output_ewise_fusible -> 4
  | Tir.Pattern.Opaque -> 5

let is_light = function
  | Tir.Pattern.Element_wise | Tir.Pattern.Broadcast | Tir.Pattern.Injective ->
      true
  | Tir.Pattern.Reduction | Tir.Pattern.Output_ewise_fusible
  | Tir.Pattern.Opaque ->
      false

(* Fusion rules: can a binding of kind [bk] join a group of kind [gk],
   and what is the merged group kind? *)
let combine (gk : kind) (bk : kind) : kind option =
  match (gk, bk) with
  | _, _ when is_light gk && is_light bk ->
      Some (if severity gk >= severity bk then gk else bk)
  | _, Tir.Pattern.Output_ewise_fusible when is_light gk ->
      Some Tir.Pattern.Output_ewise_fusible (* prologue, e.g. decode_q4 -> mm *)
  | _, Tir.Pattern.Reduction when is_light gk -> Some Tir.Pattern.Reduction
  | Tir.Pattern.Output_ewise_fusible, (Tir.Pattern.Element_wise | Tir.Pattern.Broadcast)
    ->
      Some Tir.Pattern.Output_ewise_fusible (* epilogue, e.g. mm + relu *)
  | Tir.Pattern.Reduction, (Tir.Pattern.Element_wise | Tir.Pattern.Broadcast) ->
      Some Tir.Pattern.Reduction
  | _, _ -> None

(* Union-find over binding indices within one block. *)
type uf = { parent : int array; kinds : (int, kind) Hashtbl.t }

let rec find uf i = if uf.parent.(i) = i then i else find uf uf.parent.(i)

let fused_counter = ref 0

let fuse_block mod_ref _fname (counts : int Rvar.Map.t) (block : Expr.block) :
    Expr.block =
  if not block.Expr.dataflow then block
  else begin
    let bindings = Array.of_list block.Expr.bindings in
    let n = Array.length bindings in
    let kind_of i =
      match bindings.(i) with
      | Expr.Bind (_, e) -> (
          match Expr.as_call_tir e with
          | Some (kname, _, _, _) -> (
              match Ir_module.find_tir !mod_ref kname with
              | Some kf -> (
                  match Tir.Pattern.kind_of kf with
                  | Tir.Pattern.Opaque -> None
                  | k -> Some k)
              | None -> None)
          | None -> None)
      | Expr.Match_cast _ -> None
    in
    let kinds = Array.init n kind_of in
    let producer = Hashtbl.create 16 in
    Array.iteri
      (fun i b -> Hashtbl.replace producer (Expr.binding_var b) i)
      bindings;
    let uf = { parent = Array.init n (fun i -> i); kinds = Hashtbl.create 16 } in
    Array.iteri
      (fun i k -> match k with Some k -> Hashtbl.replace uf.kinds i k | None -> ())
      kinds;
    let group_kind i = Hashtbl.find_opt uf.kinds (find uf i) in
    (* Try to merge binding i into the group of the producer of each of
       its single-use arguments. *)
    for i = 0 to n - 1 do
      match (bindings.(i), kinds.(i)) with
      | Expr.Bind (_, e), Some _ -> (
          match Expr.as_call_tir e with
          | Some (_, args, _, _) ->
              List.iter
                (fun arg ->
                  match arg with
                  | Expr.Var a -> (
                      match Hashtbl.find_opt producer a with
                      | Some p when find uf p <> find uf i -> (
                          let single_use =
                            Rvar.Map.find_opt a counts = Some 1
                          in
                          match
                            (group_kind p, group_kind i, single_use)
                          with
                          | Some gk, Some ik, true -> (
                              match combine gk ik with
                              | Some merged ->
                                  let rp = find uf p and ri = find uf i in
                                  uf.parent.(rp) <- ri;
                                  Hashtbl.replace uf.kinds ri merged
                              | None -> ())
                          | _, _, _ -> ())
                      | Some _ | None -> ())
                  | _ -> ())
                args
          | None -> ())
      | _, _ -> ()
    done;
    (* Collect groups in index order. *)
    let groups = Hashtbl.create 8 in
    for i = 0 to n - 1 do
      if kinds.(i) <> None then begin
        let r = find uf i in
        let cur = try Hashtbl.find groups r with Not_found -> [] in
        Hashtbl.replace groups r (i :: cur)
      end
    done;
    let multi =
      Hashtbl.fold
        (fun r members acc ->
          let members = List.rev members in
          if List.length members >= 2 then (r, members) :: acc else acc)
        groups []
    in
    (* Build one subgraph function per multi-member group. *)
    let replacement = Hashtbl.create 8 in
    (* last-index -> replacement binding *)
    let dropped = Hashtbl.create 8 in
    List.iter
      (fun (_, members) ->
        let internal_vars =
          List.map (fun i -> Expr.binding_var bindings.(i)) members
        in
        let is_internal v = List.exists (Rvar.equal v) internal_vars in
        (* External tensor inputs in first-use order. *)
        let externals = ref [] in
        List.iter
          (fun i ->
            match bindings.(i) with
            | Expr.Bind (_, e) -> (
                match Expr.as_call_tir e with
                | Some (_, args, _, _) ->
                    List.iter
                      (fun arg ->
                        match arg with
                        | Expr.Var a
                          when (not (is_internal a))
                               && not (List.exists (Rvar.equal a) !externals)
                          ->
                            externals := !externals @ [ a ]
                        | _ -> ())
                      args
                | None -> ())
            | Expr.Match_cast _ -> ())
          members;
        let externals = !externals in
        let params = List.map Util.fresh_like externals in
        (* Symbolic variables of the group, and those derivable from
           bare dims of the tensor parameters. *)
        let needed =
          List.fold_left
            (fun acc i ->
              match bindings.(i) with
              | Expr.Bind (v, e) ->
                  let acc =
                    Arith.Var.Set.union acc
                      (Struct_info.free_sym_vars (Rvar.sinfo v))
                  in
                  (match Expr.as_call_tir e with
                  | Some (_, _, out, sym_args) ->
                      let acc =
                        Arith.Var.Set.union acc (Struct_info.free_sym_vars out)
                      in
                      List.fold_left
                        (fun acc sa ->
                          Arith.Var.Set.union acc (Arith.Expr.free_vars sa))
                        acc sym_args
                  | None -> acc)
              | Expr.Match_cast _ -> acc)
            (List.fold_left
               (fun acc p ->
                 Arith.Var.Set.union acc
                   (Struct_info.free_sym_vars (Rvar.sinfo p)))
               Arith.Var.Set.empty params)
            members
        in
        let derivable =
          List.fold_left
            (fun acc p ->
              match Struct_info.tensor_shape (Rvar.sinfo p) with
              | Some dims ->
                  List.fold_left
                    (fun acc d ->
                      match d with
                      | Arith.Expr.Var v -> Arith.Var.Set.add v acc
                      | _ -> acc)
                    acc dims
              | None -> acc)
            Arith.Var.Set.empty params
        in
        let missing =
          Arith.Var.Set.elements (Arith.Var.Set.diff needed derivable)
        in
        let shape_param =
          match missing with
          | [] -> None
          | vs ->
              Some
                (Rvar.fresh "s"
                   (Struct_info.shape (List.map Arith.Expr.var vs)))
        in
        let all_params =
          params @ match shape_param with Some s -> [ s ] | None -> []
        in
        (* Subgraph body: group bindings with externals renamed. *)
        let env =
          List.fold_left2
            (fun acc ext p -> Rvar.Map.add ext (Expr.Var p) acc)
            Rvar.Map.empty externals params
        in
        let inner_bindings =
          List.map
            (fun i ->
              match bindings.(i) with
              | Expr.Bind (v, e) -> Expr.Bind (v, Util.subst_vars env e)
              | Expr.Match_cast (v, e, si) ->
                  Expr.Match_cast (v, Util.subst_vars env e, si))
            members
        in
        let last_var = Expr.binding_var bindings.(List.nth members (List.length members - 1)) in
        let subgraph =
          {
            Expr.params = all_params;
            ret_sinfo = Rvar.sinfo last_var;
            body =
              Expr.Seq
                {
                  blocks =
                    [ { Expr.dataflow = true; bindings = inner_bindings } ];
                  body = Expr.Var last_var;
                };
            attrs = [ ("fused", "1") ];
          }
        in
        incr fused_counter;
        let base_name =
          let kernel_names =
            List.filter_map
              (fun i ->
                match bindings.(i) with
                | Expr.Bind (_, e) -> (
                    match Expr.as_call_tir e with
                    | Some (kname, _, _, _) -> Some kname
                    | None -> None)
                | Expr.Match_cast _ -> None)
              members
          in
          "fused_" ^ String.concat "_" kernel_names
        in
        let rec unique_name candidate i =
          if Ir_module.mem !mod_ref candidate then
            unique_name (Printf.sprintf "%s_%d" base_name i) (i + 1)
          else candidate
        in
        let name = unique_name base_name 1 in
        mod_ref := Ir_module.add_func !mod_ref name subgraph;
        (* Caller-side replacement at the last member's position. *)
        let call_args =
          List.map (fun v -> Expr.Var v) externals
          @
          match missing with
          | [] -> []
          | vs -> [ Expr.Shape_expr (List.map Arith.Expr.var vs) ]
        in
        let last = List.nth members (List.length members - 1) in
        Hashtbl.replace replacement last
          (Expr.Bind (last_var, Expr.call_fn (Expr.Global_var name) call_args));
        List.iter
          (fun i -> if i <> last then Hashtbl.replace dropped i ())
          members)
      multi;
    let new_bindings =
      List.concat
        (List.mapi
           (fun i b ->
             if Hashtbl.mem dropped i then []
             else
               match Hashtbl.find_opt replacement i with
               | Some r -> [ r ]
               | None -> [ b ])
           (Array.to_list bindings))
    in
    { block with Expr.bindings = new_bindings }
  end

let run mod_ =
  let mod_ref = ref mod_ in
  List.iter
    (fun (name, f) ->
      if List.assoc_opt "fused" f.Expr.attrs = None then begin
        let counts = Util.use_counts f in
        let body =
          match f.Expr.body with
          | Expr.Seq { blocks; body } ->
              Expr.Seq
                {
                  blocks = List.map (fuse_block mod_ref name counts) blocks;
                  body;
                }
          | e -> e
        in
        mod_ref := Ir_module.update_func !mod_ref name { f with Expr.body }
      end)
    (Ir_module.funcs mod_);
  !mod_ref
