open Relax_core

type pool_entry = {
  storage : Rvar.t;
  size : Arith.Expr.t;
  mutable free : bool;
}

let alloc_tensor_parts (b : Expr.binding) =
  match b with
  | Expr.Bind
      ( v,
        Expr.Call
          {
            callee = Expr.Op "builtin.alloc_tensor";
            args = [ Expr.Shape_expr dims ];
            sinfo_args = [ sinfo ];
          } ) ->
      Some (v, dims, sinfo)
  | Expr.Bind _ | Expr.Match_cast _ -> None

let kill_vars (b : Expr.binding) =
  match b with
  | Expr.Bind (_, Expr.Call { callee = Expr.Op "builtin.kill"; args; _ }) ->
      Some
        (List.filter_map
           (fun a -> match a with Expr.Var v -> Some v | _ -> None)
           args)
  | Expr.Bind _ | Expr.Match_cast _ -> None

let plan_func (analyzer : Arith.Analyzer.t) (f : Expr.func) =
  match f.Expr.body with
  | Expr.Seq { blocks = [ { Expr.bindings; dataflow } ]; body } ->
      let pool : pool_entry list ref = ref [] in
      let storage_prelude = ref [] in
      (* tensor var id -> pool entry holding it *)
      let holder = Hashtbl.create 16 in
      let request_size (e : Arith.Expr.t) =
        match Arith.Analyzer.upper_bound analyzer e with
        | Some ub -> Arith.Expr.const ub
        | None -> Arith.Analyzer.simplify analyzer e
      in
      let request_reuse (size : Arith.Expr.t) =
        List.find_opt
          (fun entry ->
            entry.free
            && (Arith.Simplify.prove_equal entry.size size
               ||
               match (Arith.Expr.as_const entry.size, Arith.Expr.as_const size) with
               | Some have, Some need -> have >= need
               | _, _ -> false))
          !pool
      in
      let rewritten =
        List.concat_map
          (fun b ->
            match alloc_tensor_parts b with
            | Some (v, dims, sinfo) ->
                let bytes =
                  match Util.tensor_bytes sinfo with
                  | Some e -> e
                  | None ->
                      failwith
                        "MemoryPlan: allocation without known shape/dtype"
                in
                let size = request_size bytes in
                let entry =
                  match request_reuse size with
                  | Some entry ->
                      entry.free <- false;
                      entry
                  | None ->
                      let sv = Rvar.fresh "storage" Struct_info.Object in
                      let entry = { storage = sv; size; free = false } in
                      pool := !pool @ [ entry ];
                      storage_prelude :=
                        !storage_prelude
                        @ [
                            Expr.Bind
                              ( sv,
                                Expr.Call
                                  {
                                    callee = Expr.Op "builtin.alloc_storage";
                                    args = [ Expr.Prim_value size ];
                                    sinfo_args = [];
                                  } );
                          ];
                      entry
                in
                Hashtbl.replace holder v.Rvar.id entry;
                [
                  Expr.Bind
                    ( v,
                      Expr.Call
                        {
                          callee = Expr.Op "builtin.tensor_from_storage";
                          args =
                            [ Expr.Var entry.storage; Expr.Shape_expr dims ];
                          sinfo_args = [ sinfo ];
                        } );
                ]
            | None -> (
                match kill_vars b with
                | Some vs ->
                    (* Recycle the storages at compile time; the marker
                       itself disappears (planned storages are never
                       freed at runtime). *)
                    List.iter
                      (fun v ->
                        match Hashtbl.find_opt holder v.Rvar.id with
                        | Some entry -> entry.free <- true
                        | None -> ())
                      vs;
                    []
                | None -> [ b ]))
          bindings
      in
      {
        f with
        Expr.body =
          Expr.Seq
            {
              blocks = [ { Expr.dataflow; bindings = !storage_prelude @ rewritten } ];
              body;
            };
      }
  | _ -> f

let run ?(bounds = []) mod_ =
  let analyzer = Arith.Analyzer.create () in
  List.iter (fun (v, hi) -> Arith.Analyzer.bind_upper_bound analyzer v ~hi) bounds;
  Ir_module.map_funcs (fun _ f -> plan_func analyzer f) mod_

let plan_is_static (f : Expr.func) =
  match f.Expr.body with
  | Expr.Seq { blocks; _ } ->
      List.for_all
        (fun (blk : Expr.block) ->
          List.for_all
            (fun b ->
              match b with
              | Expr.Bind
                  ( _,
                    Expr.Call
                      {
                        callee = Expr.Op "builtin.alloc_storage";
                        args = [ Expr.Prim_value size ];
                        _;
                      } ) ->
                  Arith.Expr.is_const size
              | Expr.Bind _ | Expr.Match_cast _ -> true)
            blk.Expr.bindings)
        blocks
  | _ -> true
