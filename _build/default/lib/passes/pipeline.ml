type options = {
  dispatch_library : bool;
  lib_all_batches : bool;
  fusion : bool;
  schedule_tensorir : bool;
  lift_workspace : bool;
  memory_plan : bool;
  graph_capture : bool;
  upper_bounds : (Arith.Var.t * int) list;
}

let default_options =
  {
    dispatch_library = true;
    lib_all_batches = false;
    fusion = true;
    schedule_tensorir = false;
    lift_workspace = true;
    memory_plan = true;
    graph_capture = true;
    upper_bounds = [];
  }

let all_off =
  {
    dispatch_library = false;
    lib_all_batches = false;
    fusion = false;
    schedule_tensorir = false;
    lift_workspace = false;
    memory_plan = false;
    graph_capture = false;
    upper_bounds = [];
  }

let lower ?(options = default_options) ~(device : Runtime.Device.t) mod_ =
  let mod_ = Normalize.run mod_ in
  let mod_ =
    match
      (options.dispatch_library && Runtime.Device.has_library device,
       Runtime.Library.vendor_prefix device.Runtime.Device.backend)
    with
    | true, Some vendor ->
        let patterns =
          if options.lib_all_batches then
            List.map
              (fun (p : Dispatch_library.pattern) ->
                { p with Dispatch_library.min_batch = 0 })
              Dispatch_library.default_patterns
          else Dispatch_library.default_patterns
        in
        Dispatch_library.run ~patterns ~vendor mod_
    | _, _ -> mod_
  in
  let mod_ = Legalize.run mod_ in
  let mod_ = Annotate.run mod_ in
  let mod_ =
    if options.fusion then Fuse_tensorir.run (Fuse_ops.run mod_) else mod_
  in
  let mod_ = Dce.prune_unused_tir (Dce.run mod_) in
  let mod_ =
    if options.schedule_tensorir then
      Relax_core.Ir_module.map_tir (fun _ f -> Tir.Schedule.auto_schedule f) mod_
    else mod_
  in
  (* Deduction runs between passes (§4.1): tighten annotations that
     transformations left coarser than a fresh forward deduction. *)
  let mod_ = Renormalize.run mod_ in
  let mod_ = if options.lift_workspace then Lift_workspace.run mod_ else mod_ in
  let mod_ = Explicit_memory.run mod_ in
  let mod_ =
    if options.memory_plan then Memory_plan.run ~bounds:options.upper_bounds mod_
    else mod_
  in
  let mod_ =
    if options.graph_capture && device.Runtime.Device.supports_graph_capture
    then Graph_capture.run mod_
    else mod_
  in
  mod_

let compile ?options ~device mod_ = To_vm.compile (lower ?options ~device mod_)
