open Relax_core

let run_func (f : Expr.func) =
  (* Iterate to a fixed point: removing a dead binding can kill the
     uses that kept its producers alive. *)
  let rec go f =
    let counts = Util.use_counts f in
    let changed = ref false in
    let f' =
      match f.Expr.body with
      | Expr.Seq { blocks; body } ->
          let blocks =
            List.map
              (fun (b : Expr.block) ->
                if not b.Expr.dataflow then b
                else
                  let effectful binding =
                    match Expr.bound_expr binding with
                    | Expr.Call { callee = Expr.Op "call_tir_inplace"; _ } ->
                        true
                    | _ -> false
                  in
                  {
                    b with
                    Expr.bindings =
                      List.filter
                        (fun binding ->
                          let v = Expr.binding_var binding in
                          effectful binding
                          ||
                          match Rvar.Map.find_opt v counts with
                          | Some _ -> true
                          | None ->
                              changed := true;
                              false)
                        b.Expr.bindings;
                  })
              blocks
          in
          { f with Expr.body = Expr.Seq { blocks; body } }
      | _ -> f
    in
    if !changed then go f' else f'
  in
  go f

let run mod_ = Ir_module.map_funcs (fun _ f -> run_func f) mod_

let prune_unused_tir mod_ =
  let used = Hashtbl.create 64 in
  let rec mark (e : Expr.expr) =
    match e with
    | Expr.Global_var name -> Hashtbl.replace used name ()
    | Expr.Tuple es -> List.iter mark es
    | Expr.Tuple_get (e, _) -> mark e
    | Expr.Call { callee; args; _ } ->
        mark callee;
        List.iter mark args
    | Expr.If { cond; then_; else_ } ->
        mark cond;
        mark then_;
        mark else_
    | Expr.Seq { blocks; body } ->
        List.iter
          (fun (b : Expr.block) ->
            List.iter (fun bd -> mark (Expr.bound_expr bd)) b.Expr.bindings)
          blocks;
        mark body
    | Expr.Var _ | Expr.Const _ | Expr.Prim_value _ | Expr.Shape_expr _
    | Expr.Extern_func _ | Expr.Op _ ->
        ()
  in
  List.iter (fun (_, f) -> mark f.Expr.body) (Ir_module.funcs mod_);
  List.fold_left
    (fun m (name, _) ->
      if Hashtbl.mem used name then m else Ir_module.remove m name)
    mod_ (Ir_module.tir_funcs mod_)
