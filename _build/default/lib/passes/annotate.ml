let run mod_ =
  Relax_core.Ir_module.map_tir (fun _ f -> Tir.Pattern.annotate f) mod_
