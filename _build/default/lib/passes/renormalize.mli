(** Re-run forward shape deduction over every binding (§4.1: "Relax
    automatically tracks and deduces symbolic shape annotations of
    intermediate values not only during model construction but also
    between compiler passes").

    Each bound variable's annotation is replaced by a fresh forward
    deduction of its right-hand side when the deduction is strictly
    more precise (a [Known] symbolic shape where the recorded
    annotation was rank-only); [match_cast] annotations are kept —
    they are assertions, not deductions. Runs in linear time over the
    program, per the paper's forward-deduction design. *)

val run_func : Relax_core.Ir_module.t -> Relax_core.Expr.func -> Relax_core.Expr.func
val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
