open Relax_core

let rec subst_vars env (e : Expr.expr) : Expr.expr =
  match e with
  | Expr.Var v -> (
      match Rvar.Map.find_opt v env with Some e' -> e' | None -> e)
  | Expr.Const _ | Expr.Prim_value _ | Expr.Shape_expr _ | Expr.Global_var _
  | Expr.Extern_func _ | Expr.Op _ ->
      e
  | Expr.Tuple es -> Expr.Tuple (List.map (subst_vars env) es)
  | Expr.Tuple_get (e, i) -> Expr.Tuple_get (subst_vars env e, i)
  | Expr.Call c ->
      Expr.Call
        {
          c with
          callee = subst_vars env c.Expr.callee;
          args = List.map (subst_vars env) c.Expr.args;
        }
  | Expr.If { cond; then_; else_ } ->
      Expr.If
        {
          cond = subst_vars env cond;
          then_ = subst_vars env then_;
          else_ = subst_vars env else_;
        }
  | Expr.Seq { blocks; body } ->
      Expr.Seq
        {
          blocks =
            List.map
              (fun (b : Expr.block) ->
                {
                  b with
                  Expr.bindings =
                    List.map
                      (fun binding ->
                        match binding with
                        | Expr.Bind (v, e) -> Expr.Bind (v, subst_vars env e)
                        | Expr.Match_cast (v, e, si) ->
                            Expr.Match_cast (v, subst_vars env e, si))
                      b.Expr.bindings;
                })
              blocks;
          body = subst_vars env body;
        }

let use_counts (f : Expr.func) =
  let counts = ref Rvar.Map.empty in
  let bump v =
    counts :=
      Rvar.Map.update v
        (function Some c -> Some (c + 1) | None -> Some 1)
        !counts
  in
  let rec visit (e : Expr.expr) =
    match e with
    | Expr.Var v -> bump v
    | Expr.Const _ | Expr.Prim_value _ | Expr.Shape_expr _ | Expr.Global_var _
    | Expr.Extern_func _ | Expr.Op _ ->
        ()
    | Expr.Tuple es -> List.iter visit es
    | Expr.Tuple_get (e, _) -> visit e
    | Expr.Call c ->
        visit c.Expr.callee;
        List.iter visit c.Expr.args
    | Expr.If { cond; then_; else_ } ->
        visit cond;
        visit then_;
        visit else_
    | Expr.Seq { blocks; body } ->
        List.iter
          (fun (b : Expr.block) ->
            List.iter (fun bd -> visit (Expr.bound_expr bd)) b.Expr.bindings)
          blocks;
        visit body
  in
  visit f.Expr.body;
  !counts

let rec map_bindings_in_expr fn (e : Expr.expr) : Expr.expr =
  match e with
  | Expr.Seq { blocks; body } ->
      Expr.Seq
        {
          blocks =
            List.map
              (fun (b : Expr.block) ->
                {
                  b with
                  Expr.bindings =
                    List.concat_map
                      (fun binding ->
                        let binding =
                          match binding with
                          | Expr.Bind (v, inner) ->
                              Expr.Bind (v, map_bindings_in_expr fn inner)
                          | Expr.Match_cast _ -> binding
                        in
                        fn binding)
                      b.Expr.bindings;
                })
              blocks;
          body;
        }
  | Expr.If { cond; then_; else_ } ->
      Expr.If
        {
          cond;
          then_ = map_bindings_in_expr fn then_;
          else_ = map_bindings_in_expr fn else_;
        }
  | e -> e

let map_func_bindings fn (f : Expr.func) =
  { f with Expr.body = map_bindings_in_expr fn f.Expr.body }

let fresh_like v = Rvar.fresh (Rvar.name v) (Rvar.sinfo v)

let tensor_bytes (si : Struct_info.t) =
  match si with
  | Struct_info.Tensor { shape = Struct_info.Known dims; dtype = Some dt } ->
      Some
        (Arith.Simplify.simplify
           (Arith.Expr.mul
              (List.fold_left Arith.Expr.mul (Arith.Expr.const 1) dims)
              (Arith.Expr.const (Base.Dtype.size_in_bytes dt))))
  | _ -> None
