(** Shared helpers for pass implementations: variable substitution in
    ANF expressions, use counting, and binding-list rewriting. *)

open Relax_core

val subst_vars : Expr.expr Rvar.Map.t -> Expr.expr -> Expr.expr
(** Replace free variable occurrences (does not descend into [Seq]
    binders' shadowing — passes operate on ANF where rebinding does
    not occur). *)

val use_counts : Expr.func -> int Rvar.Map.t
(** Number of occurrences of each variable in binding right-hand
    sides and the function result. *)

val map_func_bindings :
  (Expr.binding -> Expr.binding list) -> Expr.func -> Expr.func
(** Rewrite each binding into zero or more bindings, block structure
    preserved; recurses into [If] branch bodies. *)

val fresh_like : Rvar.t -> Rvar.t

val tensor_bytes : Struct_info.t -> Arith.Expr.t option
(** Symbolic byte size of a tensor annotation with known shape and
    dtype. *)
