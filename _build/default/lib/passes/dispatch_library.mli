(** Partial library lowering (§4.6, Figure 12).

    Rewrites graph-level operator calls matching registered
    "(pattern, library function)" pairs into [call_dps_library],
    leaving everything else for later passes — the composable
    partial-lowering the paper contrasts with single-shot lowering.
    Runs first in the pipeline (Figure 13) so libraries take priority
    on targets that have them. *)

type pattern = {
  op_name : string;  (** graph operator to match, e.g. ["matmul"] *)
  library_fn : string -> string;
      (** vendor prefix to qualified routine name *)
  min_batch : int;
      (** only dispatch when the leading (batch x rows) extent is
          known to be at least this large — the paper keeps
          compiler-generated matrix-vector kernels at batch 1 *)
}

val default_patterns : pattern list
(** matmul and rms_norm, with matmul dispatched for batch >= 2. *)

val run :
  ?patterns:pattern list ->
  vendor:string ->
  ?bound_of:(Arith.Var.t -> int option) ->
  Relax_core.Ir_module.t ->
  Relax_core.Ir_module.t
(** [bound_of] supplies lower bounds for symbolic dims when deciding
    [min_batch] (unknown symbolic extents count as large, since decode
    batch is the leading dim in the evaluated workloads). *)
