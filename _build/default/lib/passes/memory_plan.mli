(** Dynamic shape-aware static memory planning (Algorithm 3, §4.3).

    Runs on explicit-memory form. Walks each function's allocations in
    order, maintaining a compile-time storage pool:

    - an allocation whose symbolic size is provably equal to a free
      pooled storage's size — or, in upper-bound mode, fits within a
      free constant-size storage — reuses it;
    - otherwise a new storage binding is created (hoisted to the
      function entry) and the tensor instantiates from it;
    - kill markers recycle their tensors' storages into the
      compile-time pool and are removed from the program.

    With [bounds] supplying upper bounds for the symbolic variables
    (the paper's user-annotated context length / max batch), every
    storage size becomes a constant: the plan is fully static, memory
    is allocated once at load time, and graph capture (§4.5) becomes
    applicable. *)

val run :
  ?bounds:(Arith.Var.t * int) list ->
  Relax_core.Ir_module.t ->
  Relax_core.Ir_module.t

val plan_is_static : Relax_core.Expr.func -> bool
(** All [builtin.alloc_storage] sizes are constants. *)
