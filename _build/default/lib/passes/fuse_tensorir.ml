open Relax_core

(* Build a TIR buffer mirroring a graph-level tensor variable. *)
let buffer_of_var (v : Rvar.t) : Tir.Buffer.t option =
  match Rvar.sinfo v with
  | Struct_info.Tensor { shape = Struct_info.Known dims; dtype = Some dt } ->
      Some (Tir.Buffer.create (Rvar.name v) dims dt)
  | _ -> None

type plan = {
  kernel : Tir.Prim_func.t;
  sym_vars : Arith.Var.t list;  (** order of the merged kernel's sym params *)
}

(* Try to merge the tensor programs of one fused subgraph function. *)
let plan_subgraph mod_ (f : Expr.func) : plan option =
  let tensor_params, shape_params =
    List.partition
      (fun p ->
        match Rvar.sinfo p with Struct_info.Tensor _ -> true | _ -> false)
      f.Expr.params
  in
  let sym_vars =
    List.concat_map
      (fun p ->
        match Rvar.sinfo p with
        | Struct_info.Shape (Struct_info.Known dims) ->
            List.filter_map
              (fun d -> match d with Arith.Expr.Var v -> Some v | _ -> None)
              dims
        | _ -> [])
      shape_params
  in
  match f.Expr.body with
  | Expr.Seq { blocks = [ { Expr.bindings; _ } ]; body = Expr.Var result } -> (
      let buf_table = Hashtbl.create 16 in
      let buffer_for v =
        match Hashtbl.find_opt buf_table v.Rvar.id with
        | Some b -> Some b
        | None -> (
            match buffer_of_var v with
            | Some b ->
                Hashtbl.replace buf_table v.Rvar.id b;
                Some b
            | None -> None)
      in
      let exception Bail in
      try
        let calls =
          List.map
            (fun binding ->
              match binding with
              | Expr.Bind (v, e) -> (
                  match Expr.as_call_tir e with
                  | Some (kname, args, _out, sym_args) -> (
                      match Ir_module.find_tir mod_ kname with
                      | Some kernel ->
                          let arg_bufs =
                            List.map
                              (fun a ->
                                match a with
                                | Expr.Var av -> (
                                    match buffer_for av with
                                    | Some b -> b
                                    | None -> raise Bail)
                                | _ -> raise Bail)
                              args
                          in
                          let out_buf =
                            match buffer_for v with
                            | Some b -> b
                            | None -> raise Bail
                          in
                          (v, { Tir.Fuse.callee = kernel;
                                buffer_args = arg_bufs @ [ out_buf ];
                                sym_args })
                      | None -> raise Bail)
                  | None -> raise Bail)
              | Expr.Match_cast _ -> raise Bail)
            bindings
        in
        let input_bufs =
          List.filter_map
            (fun p ->
              match buffer_for p with Some b -> Some b | None -> None)
            tensor_params
        in
        if List.length input_bufs <> List.length tensor_params then raise Bail;
        let out_buf =
          match buffer_for result with Some b -> b | None -> raise Bail
        in
        let temps =
          List.filter_map
            (fun (v, _) -> if Rvar.equal v result then None else buffer_for v)
            calls
        in
        let kernel =
          Tir.Fuse.merge ~name:"merged" ~inputs:input_bufs ~outputs:[ out_buf ]
            ~temps
            ~calls:(List.map snd calls)
            ~sym_params:sym_vars ()
        in
        Some { kernel; sym_vars }
      with Bail | Tir.Fuse.Fusion_error _ -> None)
  | _ -> None

(* Rewrite call sites of fused subgraph functions into call_tir of the
   merged kernels. *)
let rewrite_calls (merged : (string, string * plan) Hashtbl.t) (f : Expr.func) =
  let rewrite (b : Expr.binding) =
    match b with
    | Expr.Bind (v, Expr.Call { callee = Expr.Global_var g; args; sinfo_args = [] })
      -> (
        match Hashtbl.find_opt merged g with
        | Some (kname, _plan) ->
            let tensor_args, shape_args =
              List.partition
                (fun a ->
                  match a with Expr.Shape_expr _ -> false | _ -> true)
                args
            in
            let sym_args =
              match shape_args with
              | [ Expr.Shape_expr dims ] -> dims
              | [] -> []
              | _ -> List.concat_map
                       (fun a ->
                         match a with Expr.Shape_expr d -> d | _ -> [])
                       shape_args
            in
            [
              Expr.Bind
                ( v,
                  Expr.call_tir kname tensor_args ~out:(Rvar.sinfo v) ~sym_args
                    () );
            ]
        | None -> [ b ])
    | Expr.Bind _ | Expr.Match_cast _ -> [ b ]
  in
  Util.map_func_bindings rewrite f

let run mod_ =
  let fused =
    List.filter
      (fun (_, f) -> List.assoc_opt "fused" f.Expr.attrs = Some "1")
      (Ir_module.funcs mod_)
  in
  let merged = Hashtbl.create 8 in
  let mod_ref = ref mod_ in
  List.iter
    (fun (name, f) ->
      match plan_subgraph !mod_ref f with
      | Some plan ->
          let kernel = Tir.Pattern.annotate (Tir.Prim_func.with_name plan.kernel name) in
          let m, kname = Ir_module.add_tir_fresh (Ir_module.remove !mod_ref name) kernel in
          mod_ref := m;
          Hashtbl.replace merged name (kname, plan)
      | None -> ())
    fused;
  Ir_module.map_funcs (fun _ f -> rewrite_calls merged f) !mod_ref
