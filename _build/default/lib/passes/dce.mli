(** Dead code elimination inside dataflow blocks.

    The paper's motivating use of dataflow blocks (§3.1): bindings in a
    dataflow block are pure, so any binding whose variable is never
    used can be dropped without changing observable behavior. Bindings
    in non-dataflow blocks are conservatively kept. *)

val run_func : Relax_core.Expr.func -> Relax_core.Expr.func
val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t

val prune_unused_tir : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
(** Remove tensor programs not referenced by any graph-level function
    (fusion and library dispatch leave originals behind). *)
