(** Lower cross-level calls to explicit memory form (Figure 5).

    Each [call_tir] / [call_dps_library] binding expands to an
    explicit output allocation followed by a destination-passing call:

    {v
      lv = call_tir(mm, [x, w], Tensor((n, 256), "f32"))
    v}
    becomes
    {v
      lv = builtin.alloc_tensor(shape(n, 256))   # annotated
      _  = builtin.kernel_call(mm, x, w, lv, n)
    v}

    Liveness-based kill markers ([builtin.kill]) are inserted after
    the last use of every allocated tensor so the runtime pool can
    recycle unplanned memory; static memory planning (§4.3) replaces
    allocations and removes the markers it subsumes. Blocks lose
    their dataflow marking (allocation and mutation are effects). *)

val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
