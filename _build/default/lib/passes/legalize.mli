(** LegalizeOps: lower remaining graph-level operator calls to
    [call_tir] of generated tensor programs (Figure 13's second
    stage).

    Symbolic dimensions are freshened before kernel generation:
    every distinct non-constant dimension expression becomes a fresh
    shape variable shared across all occurrences, so generated kernels
    are shape-polymorphic exactly where the program is dynamic and
    fully specialized where it is static — "code that specializes to
    most static dimensions and only uses dynamic dimensions when
    necessary" (§3.3). The call site keeps the original symbolic
    annotation, preserving graph-level shape relations. *)

val run : Relax_core.Ir_module.t -> Relax_core.Ir_module.t
(** @raise Failure on an operator with no registered legalizer whose
    result is actually needed. *)
