(** LLaVA-style multimodal model (§5.4, Figure 20): a CLIP ViT-L/14
    visual encoder whose projected patch embeddings prefix the
    language model (Vicuna-7B) prompt.

    The pipeline evaluated in Figure 20 is: encode one image
    (576 patch tokens at 336 px), prefill the language model over the
    image+prompt sequence, then decode 32 tokens. The image
    patchification is out of scope; the encoder input is the embedded
    patch sequence (DESIGN.md, substitutions). The prefill over
    projected embeddings is modeled by an ids-prefill of the same
    sequence length, which is cost-equivalent (embedding lookup is
    negligible next to the transformer stack). *)

val clip_patches : int
(** 576 = (336 / 14)^2 *)

val vision_encoder : unit -> Encoder.t
(** CLIP ViT-L/14: 24 layers, hidden 1024, projecting to Vicuna's
    hidden size 4096. *)

val language_model : Configs.t
(** Vicuna-7B. *)

val prompt_length : int -> int
(** Total prefill length for a text prompt of the given token count:
    image patches + prompt. *)
