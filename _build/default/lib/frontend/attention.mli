(** Customized attention tensor programs.

    These are exactly the paper's "user-defined operators ... written
    in loops" (§1, Figure 9): model-specific kernels built directly at
    the tensor-program level and invoked from the graph through
    [call_tir], with symbolic sequence lengths flowing across the
    level boundary. Grouped-query attention is handled inside the
    kernel (a query head reads key/value head [h / (heads / kv_heads)]).

    All kernels are destination-passing: the last buffer parameter is
    the output. *)

val decode :
  name:string ->
  batch:Arith.Expr.t ->
  heads:int ->
  kv_heads:int ->
  head_dim:int ->
  m:Arith.Expr.t ->
  Base.Dtype.t ->
  Tir.Prim_func.t
(** Single-position attention against a KV cache of context length
    [m]: inputs [Q: (b, heads, 1, d)], [K: (b, kv, m, d)],
    [V: (b, kv, m, d)], output [(b, heads, 1, d)]. *)

val prefill :
  ?causal:bool ->
  name:string ->
  heads:int ->
  kv_heads:int ->
  head_dim:int ->
  n:Arith.Expr.t ->
  Base.Dtype.t ->
  Tir.Prim_func.t
(** Self-attention over a full sequence (batch 1), causal by default:
    inputs
    [Q: (heads, n, d)], [K: (kv, n, d)], [V: (kv, n, d)], output
    [(heads, n, d)]. *)

val kv_append :
  name:string ->
  batch:Arith.Expr.t ->
  kv_heads:int ->
  head_dim:int ->
  m:Arith.Expr.t ->
  Base.Dtype.t ->
  Tir.Prim_func.t
(** Functional cache append: inputs [cache: (b, kv, m, d)] and
    [new_kv: (b, kv, 1, d)], output [(b, kv, m + 1, d)] — the result
    shape is a symbolic expression over the input's length. *)

val kv_write :
  name:string ->
  batch:Arith.Expr.t ->
  kv_heads:int ->
  head_dim:int ->
  max_ctx:Arith.Expr.t ->
  pos:Arith.Var.t ->
  Base.Dtype.t ->
  Tir.Prim_func.t
(** In-place cache update for the paged-cache extension: writes
    [new_kv: (b, kv, 1, d)] into row [pos] of the pre-allocated
    [cache: (b, kv, max_ctx, d)] (the cache is the DPS output and is
    mutated, no copy). Invoked through [call_tir_inplace]. *)

val decode_paged :
  name:string ->
  batch:Arith.Expr.t ->
  heads:int ->
  kv_heads:int ->
  head_dim:int ->
  max_ctx:Arith.Expr.t ->
  len:Arith.Var.t ->
  Base.Dtype.t ->
  Tir.Prim_func.t
(** Decode attention against a pre-allocated cache: reads only the
    first [len] positions of [K, V: (b, kv, max_ctx, d)] — the
    symbolic current length flows in as an explicit argument while
    the buffer extent stays at the bound. *)

val rope_decode :
  name:string ->
  batch:Arith.Expr.t ->
  heads:int ->
  head_dim:int ->
  pos:Arith.Var.t ->
  Base.Dtype.t ->
  Tir.Prim_func.t
(** Rotary position embedding at a single (symbolic) position [pos]:
    in/out [(b, heads, 1, d)]. [pos] becomes an explicit symbolic
    parameter of the tensor program (Figure 8's extra argument). *)

val rope_prefill :
  name:string ->
  heads:int ->
  head_dim:int ->
  n:Arith.Expr.t ->
  Base.Dtype.t ->
  Tir.Prim_func.t
(** Rotary embedding over positions [0, n): in/out [(heads, n, d)]. *)
