open Relax_core
module E = Arith.Expr

type sizes = {
  hidden : int;
  heads : int;
  head_dim : int;
  inter : int;
  enc_layers : int;
  dec_layers : int;
  vocab : int;
  audio_ctx : int;
  text_ctx : int;
}

let large_v3 =
  {
    hidden = 1280;
    heads = 20;
    head_dim = 64;
    inter = 5120;
    enc_layers = 32;
    dec_layers = 32;
    vocab = 51866;
    audio_ctx = 1500;
    text_ctx = 448;
  }

let tiny_sizes =
  {
    hidden = 8;
    heads = 2;
    head_dim = 4;
    inter = 16;
    enc_layers = 2;
    dec_layers = 2;
    vocab = 32;
    audio_ctx = 6;
    text_ctx = 8;
  }

let dt = Base.Dtype.F16
let c = E.const

let encoder s =
  Encoder.build ~name:"whisper_encode" ~seq:s.audio_ctx ~hidden:s.hidden
    ~heads:s.heads ~head_dim:s.head_dim ~inter:s.inter ~layers:s.enc_layers ()

type decoder = {
  mod_ : Ir_module.t;
  entry : string;
  ctx_var : Arith.Var.t;
  params : (string * Struct_info.t) list;
  sizes : sizes;
}

let decoder_step s =
  let m_var = Arith.Var.fresh "m" in
  let m = E.var m_var in
  let h = s.hidden and heads = s.heads and d = s.head_dim in
  let specs = ref [] in
  let declare name sinfo =
    let i = List.length !specs in
    specs := !specs @ [ (name, sinfo) ];
    i
  in
  let vec = Struct_info.tensor [ c h ] dt in
  let mat k n = Struct_info.tensor [ c k; c n ] dt in
  let ids_i =
    declare "ids"
      (Struct_info.Tensor { shape = Known [ c 1 ]; dtype = Some Base.Dtype.I32 })
  in
  let self_caches =
    List.init s.dec_layers (fun l ->
        ( declare (Printf.sprintf "k_cache_%d" l)
            (Struct_info.tensor [ c 1; c heads; m; c d ] dt),
          declare (Printf.sprintf "v_cache_%d" l)
            (Struct_info.tensor [ c 1; c heads; m; c d ] dt) ))
  in
  let cross_kv =
    List.init s.dec_layers (fun l ->
        ( declare (Printf.sprintf "cross_k_%d" l)
            (Struct_info.tensor [ c 1; c heads; c s.audio_ctx; c d ] dt),
          declare (Printf.sprintf "cross_v_%d" l)
            (Struct_info.tensor [ c 1; c heads; c s.audio_ctx; c d ] dt) ))
  in
  let emb_i = declare "embedding" (mat s.vocab h) in
  let layer_ws =
    List.init s.dec_layers (fun l ->
        let p name = Printf.sprintf "l%d_%s" l name in
        ( (declare (p "norm1_g") vec, declare (p "norm1_b") vec),
          ( declare (p "wq") (mat h (heads * d)),
            declare (p "wk") (mat h (heads * d)),
            declare (p "wv") (mat h (heads * d)),
            declare (p "wo") (mat (heads * d) h) ),
          (declare (p "norm_c_g") vec, declare (p "norm_c_b") vec),
          (declare (p "wq_c") (mat h (heads * d)), declare (p "wo_c") (mat (heads * d) h)),
          (declare (p "norm2_g") vec, declare (p "norm2_b") vec),
          (declare (p "w_up") (mat h s.inter), declare (p "w_down") (mat s.inter h))
        ))
  in
  let final_g = declare "final_norm_g" vec in
  let final_b = declare "final_norm_b" vec in
  let lm_head = declare "lm_head" (mat h s.vocab) in
  let append_kernel =
    Attention.kv_append ~name:"whisper_kv_append" ~batch:(c 1) ~kv_heads:heads
      ~head_dim:d ~m:(E.var (Arith.Var.fresh "mc")) dt
  in
  let self_attn =
    Attention.decode ~name:"whisper_self_attention" ~batch:(c 1) ~heads
      ~kv_heads:heads ~head_dim:d ~m:(E.var (Arith.Var.fresh "ms")) dt
  in
  let cross_attn =
    Attention.decode ~name:"whisper_cross_attention" ~batch:(c 1) ~heads
      ~kv_heads:heads ~head_dim:d ~m:(E.var (Arith.Var.fresh "mx")) dt
  in
  let b = Builder.create () in
  Builder.function_ b ~name:"whisper_decode" ~params:!specs (fun params ->
      Builder.dataflow b (fun () ->
          let p i = Expr.Var (List.nth params i) in
          let mm x w = Builder.emit b (Expr.call_op "matmul" [ x; w ]) in
          let ln x (g, bt) =
            Builder.emit b (Expr.call_op "layer_norm" [ x; p g; p bt ])
          in
          let reshape v dims =
            Builder.emit b
              (Expr.call_op "reshape" [ Expr.Var v; Expr.Shape_expr dims ])
          in
          let x = ref (Builder.emit b (Expr.call_op "take" [ p emb_i; p ids_i ])) in
          let new_caches = ref [] in
          List.iteri
            (fun l (n1, (wq, wk, wv, wo), nc, (wq_c, wo_c), n2, (wu, wd)) ->
              let ksi, vsi = List.nth self_caches l in
              let cki, cvi = List.nth cross_kv l in
              (* self attention with cache growth *)
              let hin = ln (Expr.Var !x) n1 in
              let q = reshape (mm (Expr.Var hin) (p wq)) [ c 1; c heads; c 1; c d ] in
              let k = reshape (mm (Expr.Var hin) (p wk)) [ c 1; c heads; c 1; c d ] in
              let v = reshape (mm (Expr.Var hin) (p wv)) [ c 1; c heads; c 1; c d ] in
              let kc' =
                Builder.emit_call_tir b append_kernel
                  [ p ksi; Expr.Var k ]
                  ~out:(Struct_info.tensor [ c 1; c heads; E.add m (c 1); c d ] dt)
                  ()
              in
              let vc' =
                Builder.emit_call_tir b append_kernel
                  [ p vsi; Expr.Var v ]
                  ~out:(Struct_info.tensor [ c 1; c heads; E.add m (c 1); c d ] dt)
                  ()
              in
              let at =
                Builder.emit_call_tir b self_attn
                  [ Expr.Var q; Expr.Var kc'; Expr.Var vc' ]
                  ~out:(Struct_info.tensor [ c 1; c heads; c 1; c d ] dt)
                  ()
              in
              let o = mm (Expr.Var (reshape at [ c 1; c (heads * d) ])) (p wo) in
              let x1 = Builder.emit b (Expr.call_op "add" [ Expr.Var !x; Expr.Var o ]) in
              (* cross attention into the pre-projected encoder K/V *)
              let hc = ln (Expr.Var x1) nc in
              let qc =
                reshape (mm (Expr.Var hc) (p wq_c)) [ c 1; c heads; c 1; c d ]
              in
              let atc =
                Builder.emit_call_tir b cross_attn
                  [ Expr.Var qc; p cki; p cvi ]
                  ~out:(Struct_info.tensor [ c 1; c heads; c 1; c d ] dt)
                  ()
              in
              let oc =
                mm (Expr.Var (reshape atc [ c 1; c (heads * d) ])) (p wo_c)
              in
              let x2 = Builder.emit b (Expr.call_op "add" [ Expr.Var x1; Expr.Var oc ]) in
              (* MLP *)
              let h2 = ln (Expr.Var x2) n2 in
              let u = mm (Expr.Var h2) (p wu) in
              let a = Builder.emit b (Expr.call_op "gelu" [ Expr.Var u ]) in
              let dn = mm (Expr.Var a) (p wd) in
              let x3 = Builder.emit b (Expr.call_op "add" [ Expr.Var x2; Expr.Var dn ]) in
              x := x3;
              new_caches := !new_caches @ [ kc'; vc' ])
            layer_ws;
          let xf = ln (Expr.Var !x) (final_g, final_b) in
          let logits = mm (Expr.Var xf) (p lm_head) in
          Expr.Tuple
            (Expr.Var logits :: List.map (fun v -> Expr.Var v) !new_caches)));
  {
    mod_ = Builder.module_ b;
    entry = "whisper_decode";
    ctx_var = m_var;
    params = !specs;
    sizes = s;
  }

let decoder_args dec ~ctx ~mode =
  let lookup v =
    if Arith.Var.equal v dec.ctx_var then ctx
    else failwith "Whisper.decoder_args: unexpected symbolic variable"
  in
  List.mapi
    (fun i (_, sinfo) ->
      match sinfo with
      | Struct_info.Tensor { shape = Struct_info.Known dims; dtype = Some dtype }
        -> (
          let shape = List.map (E.eval lookup) dims in
          match mode with
          | `Shadow -> Runtime.Vm.shadow_of_shape dtype shape
          | `Numeric seed ->
              Runtime.Vm.tensor
                (Base.Ndarray.random_uniform ~seed:(seed + i) dtype
                   (Array.of_list shape)))
      | _ -> failwith "Whisper.decoder_args: non-tensor parameter")
    dec.params

let upper_bound_hints dec = [ (dec.ctx_var, dec.sizes.text_ctx) ]
