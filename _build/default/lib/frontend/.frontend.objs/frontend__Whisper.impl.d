lib/frontend/whisper.ml: Arith Array Attention Base Builder Encoder Expr Ir_module List Printf Relax_core Runtime Struct_info
