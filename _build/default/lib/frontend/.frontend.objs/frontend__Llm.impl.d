lib/frontend/llm.ml: Arith Array Attention Base Builder Configs Expr Hashtbl Ir_module List Printf Relax_core Runtime Rvar Struct_info Tir
