lib/frontend/configs.ml:
