lib/frontend/llm.mli: Arith Configs Relax_core Runtime
