lib/frontend/encoder.mli: Relax_core Runtime
