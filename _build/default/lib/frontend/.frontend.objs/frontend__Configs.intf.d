lib/frontend/configs.mli:
