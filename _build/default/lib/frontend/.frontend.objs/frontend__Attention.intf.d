lib/frontend/attention.mli: Arith Base Tir
