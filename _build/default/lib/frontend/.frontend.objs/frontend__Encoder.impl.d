lib/frontend/encoder.ml: Arith Array Attention Base Builder Expr Ir_module List Option Printf Relax_core Runtime Struct_info
