lib/frontend/llava.mli: Configs Encoder
