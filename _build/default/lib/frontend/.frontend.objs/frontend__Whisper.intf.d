lib/frontend/whisper.mli: Arith Encoder Relax_core Runtime
