lib/frontend/attention.ml: Arith Base List Tir
