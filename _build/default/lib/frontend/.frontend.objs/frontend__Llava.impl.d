lib/frontend/llava.ml: Configs Encoder
