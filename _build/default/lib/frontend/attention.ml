module E = Arith.Expr
module T = Tir.Texpr
module S = Tir.Stmt

let c = E.const

(* kv head serving query head [h]: h // (heads / kv_heads). *)
let group_of h ~heads ~kv_heads = E.floor_div h (c (heads / kv_heads))

let decode ~name ~batch ~heads ~kv_heads ~head_dim ~m dtype =
  let b = batch and d = c head_dim in
  let q = Tir.Buffer.create "Q" [ b; c heads; c 1; d ] dtype in
  let k = Tir.Buffer.create "K" [ b; c kv_heads; m; d ] dtype in
  let v = Tir.Buffer.create "V" [ b; c kv_heads; m; d ] dtype in
  let o = Tir.Buffer.create "O" [ b; c heads; c 1; d ] dtype in
  let s = Tir.Buffer.create ~scope:Tir.Buffer.Shared "s" [ b; c heads; m ] dtype in
  let mx = Tir.Buffer.create ~scope:Tir.Buffer.Shared "mx" [ b; c heads ] dtype in
  let sm = Tir.Buffer.create ~scope:Tir.Buffer.Shared "sm" [ b; c heads ] dtype in
  let scale = 1.0 /. sqrt (float_of_int head_dim) in
  let body =
    S.grid
      [ ("bb", b); ("hh", c heads) ]
      (fun idx ->
        match idx with
        | [ bb; hh ] ->
            let g = group_of hh ~heads ~kv_heads in
            let j = Arith.Var.fresh "j" in
            let ej = E.var j in
            let dd = Arith.Var.fresh "dd" in
            let ed = E.var dd in
            let bh ixs = List.map T.idx ([ bb; hh ] @ ixs) in
            let score_loop =
              S.for_ j m
                (S.seq
                   [ S.Store (s, bh [ ej ], T.f 0.0);
                     S.for_ dd d
                       (S.Store
                          ( s,
                            bh [ ej ],
                            T.(
                              Load (s, bh [ ej ])
                              +. (load q [ bb; hh; c 0; ed ]
                                 *. load k [ bb; g; ej; ed ])) ));
                     S.Store
                       (s, bh [ ej ], T.(Load (s, bh [ ej ]) *. f scale));
                     S.Store
                       ( mx,
                         bh [],
                         T.Binop (T.Max, T.Load (mx, bh []), T.Load (s, bh [ ej ]))
                       ) ])
            in
            let softmax_loop =
              S.for_ j m
                (S.seq
                   [ S.Store
                       ( s,
                         bh [ ej ],
                         T.(Unop (Exp, Load (s, bh [ ej ]) -. Load (mx, bh []))) );
                     S.Store
                       (sm, bh [], T.(Load (sm, bh []) +. Load (s, bh [ ej ]))) ])
            in
            let out_loop =
              S.for_ dd d
                (S.seq
                   [ S.Store (o, bh [ c 0; ed ], T.f 0.0);
                     S.for_ j m
                       (S.Store
                          ( o,
                            bh [ c 0; ed ],
                            T.(
                              Load (o, bh [ c 0; ed ])
                              +. (Load (s, bh [ ej ])
                                  /. Load (sm, bh [])
                                 *. load v [ bb; g; ej; ed ])) )) ])
            in
            S.seq
              [ S.Store (mx, bh [], T.f neg_infinity);
                score_loop;
                S.Store (sm, bh [], T.f 0.0);
                softmax_loop;
                out_loop ]
        | _ -> assert false)
  in
  Tir.Prim_func.create ~name ~params:[ q; k; v; o ]
    (S.Alloc (s, S.Alloc (mx, S.Alloc (sm, body))))

let prefill ?(causal = true) ~name ~heads ~kv_heads ~head_dim ~n dtype =
  let d = c head_dim in
  let q = Tir.Buffer.create "Q" [ c heads; n; d ] dtype in
  let k = Tir.Buffer.create "K" [ c kv_heads; n; d ] dtype in
  let v = Tir.Buffer.create "V" [ c kv_heads; n; d ] dtype in
  let o = Tir.Buffer.create "O" [ c heads; n; d ] dtype in
  let s = Tir.Buffer.create ~scope:Tir.Buffer.Shared "s" [ c heads; n; n ] dtype in
  let mx = Tir.Buffer.create ~scope:Tir.Buffer.Shared "mx" [ c heads; n ] dtype in
  let sm = Tir.Buffer.create ~scope:Tir.Buffer.Shared "sm" [ c heads; n ] dtype in
  let scale = 1.0 /. sqrt (float_of_int head_dim) in
  let body =
    S.grid
      [ ("hh", c heads); ("ii", n) ]
      (fun idx ->
        match idx with
        | [ hh; ii ] ->
            let g = group_of hh ~heads ~kv_heads in
            let j = Arith.Var.fresh "j" in
            let ej = E.var j in
            let dd = Arith.Var.fresh "dd" in
            let ed = E.var dd in
            let hi ixs = List.map T.idx ([ hh; ii ] @ ixs) in
            let visible =
              if causal then T.Binop (T.Le, T.idx ej, T.idx ii)
              else T.Binop (T.Eq, T.i 0, T.i 0)
            in
            S.seq
              [ S.Store (mx, hi [], T.f neg_infinity);
                S.for_ j n
                  (S.seq
                     [ S.Store (s, hi [ ej ], T.f 0.0);
                       S.for_ dd d
                         (S.Store
                            ( s,
                              hi [ ej ],
                              T.(
                                Load (s, hi [ ej ])
                                +. (load q [ hh; ii; ed ] *. load k [ g; ej; ed ]))
                            ));
                       S.Store
                         ( s,
                           hi [ ej ],
                           T.Select
                             ( visible,
                               T.(Load (s, hi [ ej ]) *. f scale),
                               T.f (-1e30) ) );
                       S.Store
                         ( mx,
                           hi [],
                           T.Binop
                             (T.Max, T.Load (mx, hi []), T.Load (s, hi [ ej ]))
                         ) ]);
                S.Store (sm, hi [], T.f 0.0);
                S.for_ j n
                  (S.seq
                     [ S.Store
                         ( s,
                           hi [ ej ],
                           T.(Unop (Exp, Load (s, hi [ ej ]) -. Load (mx, hi [])))
                         );
                       S.Store
                         (sm, hi [], T.(Load (sm, hi []) +. Load (s, hi [ ej ])))
                     ]);
                S.for_ dd d
                  (S.seq
                     [ S.Store (o, hi [ ed ], T.f 0.0);
                       S.for_ j n
                         (S.Store
                            ( o,
                              hi [ ed ],
                              T.(
                                Load (o, hi [ ed ])
                                +. (Load (s, hi [ ej ])
                                    /. Load (sm, hi [])
                                   *. load v [ g; ej; ed ])) )) ]) ]
        | _ -> assert false)
  in
  Tir.Prim_func.create ~name ~params:[ q; k; v; o ]
    (S.Alloc (s, S.Alloc (mx, S.Alloc (sm, body))))

let kv_append ~name ~batch ~kv_heads ~head_dim ~m dtype =
  let b = batch and d = c head_dim in
  let cache = Tir.Buffer.create "C" [ b; c kv_heads; m; d ] dtype in
  let fresh = Tir.Buffer.create "N" [ b; c kv_heads; c 1; d ] dtype in
  let out = Tir.Buffer.create "Y" [ b; c kv_heads; E.add m (c 1); d ] dtype in
  let copy_old =
    S.grid
      [ ("bb", b); ("g", c kv_heads); ("j", m); ("dd", d) ]
      (fun idx ->
        S.Store (out, List.map T.idx idx, T.load cache idx))
  in
  let copy_new =
    S.grid
      [ ("bb", b); ("g", c kv_heads); ("dd", d) ]
      (fun idx ->
        match idx with
        | [ bb; g; dd ] ->
            S.Store
              ( out,
                List.map T.idx [ bb; g; m; dd ],
                T.load fresh [ bb; g; c 0; dd ] )
        | _ -> assert false)
  in
  Tir.Prim_func.create ~name ~params:[ cache; fresh; out ]
    (S.seq [ copy_old; copy_new ])

let kv_write ~name ~batch ~kv_heads ~head_dim ~max_ctx ~pos dtype =
  let b = batch and d = c head_dim in
  let fresh = Tir.Buffer.create "N" [ b; c kv_heads; c 1; d ] dtype in
  let cache = Tir.Buffer.create "C" [ b; c kv_heads; max_ctx; d ] dtype in
  let body =
    S.grid
      [ ("bb", b); ("g", c kv_heads); ("dd", d) ]
      (fun idx ->
        match idx with
        | [ bb; g; dd ] ->
            S.Store
              ( cache,
                List.map T.idx [ bb; g; E.var pos; dd ],
                T.load fresh [ bb; g; c 0; dd ] )
        | _ -> assert false)
  in
  (* DPS output = the cache itself (mutated in place). *)
  Tir.Prim_func.create ~sym_params:[ pos ] ~name ~params:[ fresh; cache ] body

let decode_paged ~name ~batch ~heads ~kv_heads ~head_dim ~max_ctx ~len dtype =
  let b = batch and d = c head_dim in
  let q = Tir.Buffer.create "Q" [ b; c heads; c 1; d ] dtype in
  let k = Tir.Buffer.create "K" [ b; c kv_heads; max_ctx; d ] dtype in
  let v = Tir.Buffer.create "V" [ b; c kv_heads; max_ctx; d ] dtype in
  let o = Tir.Buffer.create "O" [ b; c heads; c 1; d ] dtype in
  let m = E.var len in
  let s = Tir.Buffer.create ~scope:Tir.Buffer.Shared "s" [ b; c heads; m ] dtype in
  let mx = Tir.Buffer.create ~scope:Tir.Buffer.Shared "mx" [ b; c heads ] dtype in
  let sm = Tir.Buffer.create ~scope:Tir.Buffer.Shared "sm" [ b; c heads ] dtype in
  let scale = 1.0 /. sqrt (float_of_int head_dim) in
  let body =
    S.grid
      [ ("bb", b); ("hh", c heads) ]
      (fun idx ->
        match idx with
        | [ bb; hh ] ->
            let g = group_of hh ~heads ~kv_heads in
            let j = Arith.Var.fresh "j" in
            let ej = E.var j in
            let dd = Arith.Var.fresh "dd" in
            let ed = E.var dd in
            let bh ixs = List.map T.idx ([ bb; hh ] @ ixs) in
            S.seq
              [ S.Store (mx, bh [], T.f neg_infinity);
                S.for_ j m
                  (S.seq
                     [ S.Store (s, bh [ ej ], T.f 0.0);
                       S.for_ dd d
                         (S.Store
                            ( s,
                              bh [ ej ],
                              T.(
                                Load (s, bh [ ej ])
                                +. (load q [ bb; hh; c 0; ed ]
                                   *. load k [ bb; g; ej; ed ])) ));
                       S.Store (s, bh [ ej ], T.(Load (s, bh [ ej ]) *. f scale));
                       S.Store
                         ( mx,
                           bh [],
                           T.Binop (T.Max, T.Load (mx, bh []), T.Load (s, bh [ ej ]))
                         ) ]);
                S.Store (sm, bh [], T.f 0.0);
                S.for_ j m
                  (S.seq
                     [ S.Store
                         ( s,
                           bh [ ej ],
                           T.(Unop (Exp, Load (s, bh [ ej ]) -. Load (mx, bh []))) );
                       S.Store
                         (sm, bh [], T.(Load (sm, bh []) +. Load (s, bh [ ej ]))) ]);
                S.for_ dd d
                  (S.seq
                     [ S.Store (o, bh [ c 0; ed ], T.f 0.0);
                       S.for_ j m
                         (S.Store
                            ( o,
                              bh [ c 0; ed ],
                              T.(
                                Load (o, bh [ c 0; ed ])
                                +. (Load (s, bh [ ej ])
                                    /. Load (sm, bh [])
                                   *. load v [ bb; g; ej; ed ])) )) ]) ]
        | _ -> assert false)
  in
  Tir.Prim_func.create ~sym_params:[ len ] ~name ~params:[ q; k; v; o ]
    (S.Alloc (s, S.Alloc (mx, S.Alloc (sm, body))))

(* theta_j = 10000^(-2j/d) for the pair index j = dd / 2. *)
let rope_theta dd head_dim =
  T.Binop
    ( T.Pow,
      T.f 10000.0,
      T.(
        f 0.0
        -. (Cast (Base.Dtype.F32, T.idx (E.mul (E.floor_div dd (c 2)) (c 2)))
           /. f (float_of_int head_dim))) )

let rope_pair ~x ~load_at ~pos_expr ~dd ~head_dim =
  (* Rotate pairs (2j, 2j+1); [dd] is the absolute lane. *)
  ignore x;
  let theta = rope_theta dd head_dim in
  let angle = T.(pos_expr *. theta) in
  let even = E.floor_mod dd (c 2) in
  let partner_minus = E.sub dd (c 1) in
  let partner_plus = E.add dd (c 1) in
  let self = load_at dd in
  let is_even = T.Binop (T.Eq, T.idx even, T.i 0) in
  T.Select
    ( is_even,
      T.((self *. Unop (Cos, angle)) -. (load_at partner_plus *. Unop (Sin, angle))),
      T.((load_at partner_minus *. Unop (Sin, angle)) +. (self *. Unop (Cos, angle)))
    )

let rope_decode ~name ~batch ~heads ~head_dim ~pos dtype =
  let b = batch and d = c head_dim in
  let x = Tir.Buffer.create "X" [ b; c heads; c 1; d ] dtype in
  let y = Tir.Buffer.create "Y" [ b; c heads; c 1; d ] dtype in
  let pos_expr = T.Cast (Base.Dtype.F32, T.idx (E.var pos)) in
  let body =
    S.grid
      [ ("bb", b); ("hh", c heads); ("dd", d) ]
      (fun idx ->
        match idx with
        | [ bb; hh; dd ] ->
            let load_at lane = T.load x [ bb; hh; c 0; lane ] in
            S.Store
              ( y,
                List.map T.idx [ bb; hh; c 0; dd ],
                rope_pair ~x ~load_at ~pos_expr ~dd ~head_dim )
        | _ -> assert false)
  in
  Tir.Prim_func.create ~sym_params:[ pos ] ~name ~params:[ x; y ] body

let rope_prefill ~name ~heads ~head_dim ~n dtype =
  let d = c head_dim in
  let x = Tir.Buffer.create "X" [ c heads; n; d ] dtype in
  let y = Tir.Buffer.create "Y" [ c heads; n; d ] dtype in
  let body =
    S.grid
      [ ("hh", c heads); ("ii", n); ("dd", d) ]
      (fun idx ->
        match idx with
        | [ hh; ii; dd ] ->
            let pos_expr = T.Cast (Base.Dtype.F32, T.idx ii) in
            let load_at lane = T.load x [ hh; ii; lane ] in
            S.Store
              ( y,
                List.map T.idx [ hh; ii; dd ],
                rope_pair ~x ~load_at ~pos_expr ~dd ~head_dim )
        | _ -> assert false)
  in
  Tir.Prim_func.create ~name ~params:[ x; y ] body
