let clip_patches = 576

let vision_encoder () =
  Encoder.build ~name:"clip_vit_encode" ~seq:clip_patches ~hidden:1024
    ~heads:16 ~head_dim:64 ~inter:4096 ~layers:24
    ~proj_out:Configs.vicuna_7b.Configs.hidden ()

let language_model = Configs.vicuna_7b
let prompt_length text_tokens = clip_patches + text_tokens
