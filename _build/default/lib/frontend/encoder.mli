(** Transformer encoder builder (non-causal, fixed sequence length).

    Shared by the Whisper audio encoder and LLaVA's CLIP ViT visual
    encoder (§5.4): pre-norm blocks with bidirectional self-attention
    and a plain GELU MLP, plus an optional output projection (the
    multimodal projector in LLaVA). Patchification / mel-spectrogram
    frontends are out of scope: the input is the embedded sequence
    [(seq, hidden)] (see DESIGN.md on substitutions). *)

type t = {
  mod_ : Relax_core.Ir_module.t;
  entry : string;
  params : (string * Relax_core.Struct_info.t) list;
}

val build :
  name:string ->
  seq:int ->
  hidden:int ->
  heads:int ->
  head_dim:int ->
  inter:int ->
  layers:int ->
  ?proj_out:int ->
  unit ->
  t

val args_for : t -> mode:[ `Shadow | `Numeric of int ] -> Runtime.Vm.value list
