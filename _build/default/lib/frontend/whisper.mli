(** Whisper-style encoder-decoder ASR model (§5.4, Figure 19).

    The audio encoder is a non-causal transformer over 1500 audio
    positions (30 s at 50 frames/s); the decoder generates text tokens
    with self-attention over a growing KV cache plus cross-attention
    into the encoder output. Cross-attention keys/values are
    pre-projected once after encoding and passed to every decode step,
    as real implementations do.

    The mel-spectrogram/conv frontend is out of scope: the encoder
    input is the embedded audio sequence (DESIGN.md, substitutions). *)

type sizes = {
  hidden : int;
  heads : int;
  head_dim : int;
  inter : int;
  enc_layers : int;
  dec_layers : int;
  vocab : int;
  audio_ctx : int;
  text_ctx : int;
}

val large_v3 : sizes
val tiny_sizes : sizes  (** numeric test scale *)

val encoder : sizes -> Encoder.t
(** Audio encoder: [(audio_ctx, hidden)] to [(audio_ctx, hidden)]. *)

type decoder = {
  mod_ : Relax_core.Ir_module.t;
  entry : string;
  ctx_var : Arith.Var.t;  (** generated-token count so far *)
  params : (string * Relax_core.Struct_info.t) list;
  sizes : sizes;
}

val decoder_step : sizes -> decoder
(** One text-token decode step. Parameters: token id, per-layer self
    KV caches [(1, heads, m, d)], per-layer pre-projected cross K/V
    [(1, heads, audio_ctx, d)], weights. Returns logits and the grown
    self caches. *)

val decoder_args :
  decoder -> ctx:int -> mode:[ `Shadow | `Numeric of int ] -> Runtime.Vm.value list

val upper_bound_hints : decoder -> (Arith.Var.t * int) list
