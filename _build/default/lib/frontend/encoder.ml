open Relax_core
module E = Arith.Expr

type t = {
  mod_ : Ir_module.t;
  entry : string;
  params : (string * Struct_info.t) list;
}

let dt = Base.Dtype.F16
let c = E.const

let build ~name ~seq ~hidden ~heads ~head_dim ~inter ~layers ?proj_out () =
  let specs = ref [] in
  let declare pname sinfo =
    let i = List.length !specs in
    specs := !specs @ [ (pname, sinfo) ];
    i
  in
  let x_i = declare "x" (Struct_info.tensor [ c seq; c hidden ] dt) in
  let vec = Struct_info.tensor [ c hidden ] dt in
  let mat k n = Struct_info.tensor [ c k; c n ] dt in
  let layer_is =
    List.init layers (fun l ->
        let p s = Printf.sprintf "l%d_%s" l s in
        ( declare (p "norm1_g") vec,
          declare (p "norm1_b") vec,
          declare (p "wq") (mat hidden (heads * head_dim)),
          declare (p "wk") (mat hidden (heads * head_dim)),
          declare (p "wv") (mat hidden (heads * head_dim)),
          declare (p "wo") (mat (heads * head_dim) hidden),
          declare (p "norm2_g") vec,
          declare (p "norm2_b") vec,
          declare (p "w_up") (mat hidden inter),
          declare (p "w_down") (mat inter hidden) ))
  in
  let final_g = declare "final_norm_g" vec in
  let final_b = declare "final_norm_b" vec in
  let proj_i =
    Option.map (fun out -> declare "w_proj" (mat hidden out)) proj_out
  in
  let attn_kernel =
    Attention.prefill ~causal:false ~name:(name ^ "_attention") ~heads
      ~kv_heads:heads ~head_dim ~n:(E.var (Arith.Var.fresh "n")) dt
  in
  let b = Builder.create () in
  Builder.function_ b ~name ~params:!specs (fun params ->
      Builder.dataflow b (fun () ->
          let p i = Expr.Var (List.nth params i) in
          let mm x w = Builder.emit b (Expr.call_op "matmul" [ x; w ]) in
          let ln x g bt =
            Builder.emit b (Expr.call_op "layer_norm" [ x; p g; p bt ])
          in
          let to_heads v =
            let r3 =
              Builder.emit b
                (Expr.call_op "reshape"
                   [ Expr.Var v; Expr.Shape_expr [ c seq; c heads; c head_dim ] ])
            in
            Builder.emit b
              (Expr.call_op "permute_dims"
                 [ Expr.Var r3; Expr.Shape_expr [ c 1; c 0; c 2 ] ])
          in
          let x = ref (List.nth params x_i) in
          List.iter
            (fun (n1g, n1b, wq, wk, wv, wo, n2g, n2b, wu, wd) ->
              let h = ln (Expr.Var !x) n1g n1b in
              let q = to_heads (mm (Expr.Var h) (p wq)) in
              let k = to_heads (mm (Expr.Var h) (p wk)) in
              let v = to_heads (mm (Expr.Var h) (p wv)) in
              let at =
                Builder.emit_call_tir b attn_kernel
                  [ Expr.Var q; Expr.Var k; Expr.Var v ]
                  ~out:(Struct_info.tensor [ c heads; c seq; c head_dim ] dt)
                  ()
              in
              let atp =
                Builder.emit b
                  (Expr.call_op "permute_dims"
                     [ Expr.Var at; Expr.Shape_expr [ c 1; c 0; c 2 ] ])
              in
              let at2 =
                Builder.emit b
                  (Expr.call_op "reshape"
                     [ Expr.Var atp;
                       Expr.Shape_expr [ c seq; c (heads * head_dim) ] ])
              in
              let o = mm (Expr.Var at2) (p wo) in
              let x1 = Builder.emit b (Expr.call_op "add" [ Expr.Var !x; Expr.Var o ]) in
              let h2 = ln (Expr.Var x1) n2g n2b in
              let u = mm (Expr.Var h2) (p wu) in
              let a = Builder.emit b (Expr.call_op "gelu" [ Expr.Var u ]) in
              let dn = mm (Expr.Var a) (p wd) in
              let x2 = Builder.emit b (Expr.call_op "add" [ Expr.Var x1; Expr.Var dn ]) in
              x := x2)
            layer_is;
          let xf = ln (Expr.Var !x) final_g final_b in
          let out =
            match proj_i with
            | Some wp -> mm (Expr.Var xf) (p wp)
            | None -> xf
          in
          Expr.Var out));
  { mod_ = Builder.module_ b; entry = name; params = !specs }

let args_for t ~mode =
  List.mapi
    (fun i (_, sinfo) ->
      match sinfo with
      | Struct_info.Tensor { shape = Struct_info.Known dims; dtype = Some dtype }
        -> (
          let shape = List.map (E.eval (fun _ -> assert false)) dims in
          match mode with
          | `Shadow -> Runtime.Vm.shadow_of_shape dtype shape
          | `Numeric seed ->
              Runtime.Vm.tensor
                (Base.Ndarray.random_uniform ~seed:(seed + i) dtype
                   (Array.of_list shape)))
      | _ -> failwith "Encoder.args_for: non-tensor parameter")
    t.params
