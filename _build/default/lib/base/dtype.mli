(** Scalar data types used by tensors, buffers and scalar expressions.

    The set mirrors the dtypes exercised by the paper's workloads:
    float16/float32 activations, int32 indices, uint32 packed quantized
    weights, and booleans for masks. *)

type t =
  | F16
  | F32
  | I8
  | U8
  | I32
  | U32
  | I64
  | Bool

val to_string : t -> string
(** Short dtype name as written in annotations, e.g. ["f16"], ["u32"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}. *)

val size_in_bytes : t -> int
(** Storage footprint of one element. [F16] counts as 2 even though the
    numeric interpreter computes in double precision. *)

val is_float : t -> bool
val is_int : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
