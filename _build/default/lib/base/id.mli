(** Process-wide fresh integer identifiers.

    Variables across the arith, TIR and Relax layers carry a unique id
    so that alpha-distinct variables with the same surface name never
    collide during substitution or deduction. *)

val fresh : unit -> int
(** A new identifier, strictly increasing within a process. *)

val reset : unit -> unit
(** Reset the counter. Only for test isolation; never call from
    library code. *)
