type t =
  | F16
  | F32
  | I8
  | U8
  | I32
  | U32
  | I64
  | Bool

let to_string = function
  | F16 -> "f16"
  | F32 -> "f32"
  | I8 -> "i8"
  | U8 -> "u8"
  | I32 -> "i32"
  | U32 -> "u32"
  | I64 -> "i64"
  | Bool -> "bool"

let of_string = function
  | "f16" -> Some F16
  | "f32" -> Some F32
  | "i8" -> Some I8
  | "u8" -> Some U8
  | "i32" -> Some I32
  | "u32" -> Some U32
  | "i64" -> Some I64
  | "bool" -> Some Bool
  | _ -> None

let size_in_bytes = function
  | F16 -> 2
  | F32 -> 4
  | I8 | U8 | Bool -> 1
  | I32 | U32 -> 4
  | I64 -> 8

let is_float = function
  | F16 | F32 -> true
  | I8 | U8 | I32 | U32 | I64 | Bool -> false

let is_int = function
  | I8 | U8 | I32 | U32 | I64 | Bool -> true
  | F16 | F32 -> false

let equal (a : t) (b : t) = a = b
let pp fmt t = Format.pp_print_string fmt (to_string t)
