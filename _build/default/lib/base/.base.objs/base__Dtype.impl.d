lib/base/dtype.ml: Format
