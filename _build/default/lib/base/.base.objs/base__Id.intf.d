lib/base/id.mli:
