lib/base/id.ml:
