lib/base/ndarray.mli: Dtype Format
