lib/base/ndarray.ml: Array Dtype Format List Printf String
