examples/quickstart.mli:
