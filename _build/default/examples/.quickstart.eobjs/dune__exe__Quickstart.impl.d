examples/quickstart.ml: Arith Base Builder Expr Format List Printer Printf Relax_core Relax_passes Runtime Struct_info
