examples/llm_deploy.mli:
