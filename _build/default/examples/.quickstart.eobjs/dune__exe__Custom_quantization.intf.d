examples/custom_quantization.mli:
