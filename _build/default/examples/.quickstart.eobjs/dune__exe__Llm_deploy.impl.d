examples/llm_deploy.ml: Frontend List Printf Relax_passes Runtime
