examples/dynamic_shapes.mli:
