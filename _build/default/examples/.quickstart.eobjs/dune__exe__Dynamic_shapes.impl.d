examples/dynamic_shapes.ml: Arith Base Deduce Expr Ir_module List Printf Relax_core Rvar Struct_info
