examples/custom_quantization.ml: Arith Base Builder Expr Ir_module List Option Printer Printf Relax_core Relax_passes Runtime Struct_info Tir
