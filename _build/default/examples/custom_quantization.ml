(* Figure 9 end to end: a customized 4-bit quantization decode written
   as a loop-level tensor program, invoked from the graph through
   call_tir, classified Injective by the analysis-feedback pass, fused
   into the consuming matmul by FuseOps + FuseTensorIR, and verified
   numerically against the unfused execution.

     dune exec examples/custom_quantization.exe *)

open Relax_core

let () =
  let e = Arith.Expr.const in
  let f32 = Base.Dtype.F32 in
  let n = Arith.Var.fresh "n" in
  let en = Arith.Expr.var n in
  let kdim = e 8 and ndim = e 64 in

  (* The custom tensor program: unpack 8 nibbles per u32 word, apply a
     per-group scale — an operator no fixed graph vocabulary offers. *)
  let dq = Tir.Kernels.decode_q4 ~name:"decode_q4" ~k:kdim ~n:ndim f32 in
  let mm = Tir.Kernels.matmul_weights ~name:"mm" ~m:en ~k:kdim ~n:ndim f32 in
  Printf.printf "decode_q4 pattern kind: %s\n"
    (Tir.Pattern.kind_to_string (Tir.Pattern.classify dq));
  Printf.printf "matmul    pattern kind: %s\n\n"
    (Tir.Pattern.kind_to_string (Tir.Pattern.classify mm));

  let b = Builder.create () in
  Builder.function_ b ~name:"main"
    ~params:
      [ ("x", Struct_info.tensor [ en; kdim ] f32);
        ("wdata",
         Struct_info.Tensor
           { shape = Known [ kdim; e 8 ]; dtype = Some Base.Dtype.U32 });
        ("wscale", Struct_info.tensor [ kdim; e 2 ] f32) ]
    (fun params ->
      match params with
      | [ x; wdata; wscale ] ->
          Builder.dataflow b (fun () ->
              let w =
                Builder.emit_call_tir b dq
                  [ Expr.Var wdata; Expr.Var wscale ]
                  ~out:(Struct_info.tensor [ kdim; ndim ] f32)
                  ()
              in
              let o =
                Builder.emit_call_tir b mm
                  [ Expr.Var x; Expr.Var w ]
                  ~out:(Struct_info.tensor [ en; ndim ] f32)
                  ()
              in
              Expr.Var o)
      | _ -> assert false);
  let mod_ = Builder.module_ b in

  print_endline "--- before fusion ---";
  print_string
    (Printer.func_to_string "main" (Option.get (Ir_module.find_func mod_ "main")));

  let options =
    { Relax_passes.Pipeline.default_options with
      Relax_passes.Pipeline.dispatch_library = false;
      upper_bounds = [ (n, 16) ] }
  in
  let lowered =
    Relax_passes.Pipeline.lower ~options ~device:Runtime.Device.rtx4090 mod_
  in
  print_endline "\n--- fused kernels in the lowered module ---";
  List.iter
    (fun (name, kf) ->
      Printf.printf "  %s  (pattern %s)\n" name
        (Tir.Pattern.kind_to_string (Tir.Pattern.kind_of kf)))
    (Ir_module.tir_funcs lowered);

  (* Numeric check: fused pipeline vs running the two kernels by hand. *)
  let x = Base.Ndarray.random_uniform ~seed:4 f32 [| 3; 8 |] in
  let wdata = Base.Ndarray.random_uniform ~seed:5 Base.Dtype.U32 [| 8; 8 |] in
  let wscale = Base.Ndarray.random_uniform ~seed:6 f32 [| 8; 2 |] in
  let program = Relax_passes.To_vm.compile lowered in
  let vm = Runtime.Vm.create `Numeric program in
  let fused_out =
    Runtime.Vm.value_tensor
      (Runtime.Vm.run vm "main"
         [ Runtime.Vm.tensor x; Runtime.Vm.tensor wdata; Runtime.Vm.tensor wscale ])
  in
  let w_ref = Base.Ndarray.create f32 [| 8; 64 |] in
  Tir.Interp.run dq [ wdata; wscale; w_ref ];
  let o_ref = Base.Ndarray.create f32 [| 3; 64 |] in
  Tir.Interp.run mm [ x; w_ref; o_ref ];
  Printf.printf "\nfused result matches unfused reference: %b\n"
    (Base.Ndarray.equal_approx ~eps:1e-9 o_ref fused_out);
  Printf.printf "kernel launches for the fused pipeline: %d (one merged kernel)\n"
    (Runtime.Vm.stats vm).Runtime.Vm.kernel_launches
