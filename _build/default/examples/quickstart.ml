(* Quickstart: build a dynamic-shape model with the block builder,
   compile it through the cross-level pipeline, and run it.

     dune exec examples/quickstart.exe

   The model is a two-layer MLP whose batch dimension is a symbolic
   variable [n]: one compiled artifact serves every batch size. *)

open Relax_core

let () =
  let e = Arith.Expr.const in
  let f32 = Base.Dtype.F32 in

  (* 1. Declare a symbolic dimension and build the model. Every [emit]
     deduces the annotation of its result on the spot. *)
  let n = Arith.Var.fresh "n" in
  let en = Arith.Expr.var n in
  let b = Builder.create () in
  Builder.function_ b ~name:"main"
    ~params:
      [ ("x", Struct_info.tensor [ en; e 8 ] f32);
        ("w1", Struct_info.tensor [ e 8; e 16 ] f32);
        ("w2", Struct_info.tensor [ e 16; e 4 ] f32) ]
    (fun params ->
      match params with
      | [ x; w1; w2 ] ->
          Builder.dataflow b (fun () ->
              let h = Builder.emit b (Expr.call_op "matmul" [ Expr.Var x; Expr.Var w1 ]) in
              let a = Builder.emit b (Expr.call_op "relu" [ Expr.Var h ]) in
              let o = Builder.emit b (Expr.call_op "matmul" [ Expr.Var a; Expr.Var w2 ]) in
              Expr.Var o)
      | _ -> assert false);
  let mod_ = Builder.module_ b in

  print_endline "--- the model, with deduced symbolic annotations ---";
  print_string (Printer.module_to_string mod_);

  (* 2. Compile: library dispatch, legalization, fusion, memory
     planning, graph capture, VM codegen. The upper bound on [n]
     makes the memory plan fully static (§4.3 of the paper). *)
  let options =
    { Relax_passes.Pipeline.default_options with
      Relax_passes.Pipeline.upper_bounds = [ (n, 64) ] }
  in
  let program =
    Relax_passes.Pipeline.compile ~options ~device:Runtime.Device.rtx4090 mod_
  in

  (* 3. Run numerically at two different batch sizes with the same
     compiled program. *)
  let vm = Runtime.Vm.create `Numeric program in
  List.iter
    (fun batch ->
      let x = Base.Ndarray.random_uniform ~seed:1 f32 [| batch; 8 |] in
      let w1 = Base.Ndarray.random_uniform ~seed:2 f32 [| 8; 16 |] in
      let w2 = Base.Ndarray.random_uniform ~seed:3 f32 [| 16; 4 |] in
      let out =
        Runtime.Vm.run vm "main"
          [ Runtime.Vm.tensor x; Runtime.Vm.tensor w1; Runtime.Vm.tensor w2 ]
      in
      Format.printf "batch %d -> output %a@." batch Base.Ndarray.pp
        (Runtime.Vm.value_tensor out))
    [ 1; 5 ];

  (* 4. The same program in timed mode simulates device latency. *)
  let tvm = Runtime.Vm.create (`Timed Runtime.Device.rtx4090) program in
  ignore
    (Runtime.Vm.run tvm "main"
       [ Runtime.Vm.shadow_of_shape f32 [ 64; 8 ];
         Runtime.Vm.shadow_of_shape f32 [ 8; 16 ];
         Runtime.Vm.shadow_of_shape f32 [ 16; 4 ] ]);
  Printf.printf "simulated RTX 4090 time at batch 64: %.1f us\n"
    (Runtime.Vm.stats tvm).Runtime.Vm.elapsed_us
