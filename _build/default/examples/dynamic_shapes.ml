(* First-class symbolic shapes in action: the scenarios of Figure 3
   (symbolic deduction through reshape/flatten, the coarse fallback at
   a data-dependent operator, match_cast) and Figure 7
   (interprocedural deduction through a subgraph function signature).

     dune exec examples/dynamic_shapes.exe *)

open Relax_core

let show msg si = Printf.printf "  %-46s : %s\n" msg (Struct_info.to_string si)

let () =
  let e = Arith.Expr.const in
  let f32 = Base.Dtype.F32 in

  print_endline "--- Figure 3: symbolic tracking and the coarse fallback ---";
  let n = Arith.Expr.var (Arith.Var.fresh "n") in
  let x = Expr.Var (Rvar.fresh "x" (Struct_info.tensor [ n; e 2; e 2 ] f32)) in
  let mod_ = Ir_module.empty in
  let lv0 =
    Deduce.expr_sinfo mod_
      (Expr.call_op "reshape" [ x; Expr.Shape_expr [ n; e 4 ] ])
  in
  show "lv0 = reshape(x, (n, 4))" lv0;
  let lv1 =
    Deduce.expr_sinfo mod_
      (Expr.call_op "flatten" [ Expr.Var (Rvar.fresh "lv0" lv0) ])
  in
  show "lv1 = flatten(lv0)    (tracks n * 4!)" lv1;
  let lv2 =
    Deduce.expr_sinfo mod_
      (Expr.call_op "unique" [ Expr.Var (Rvar.fresh "lv1" lv1) ])
  in
  show "lv2 = unique(lv1)     (data-dependent)" lv2;
  (* match_cast reintroduces a symbolic description with a fresh
     variable m; the compiler emits a runtime check for it. *)
  let m = Arith.Expr.var (Arith.Var.fresh "m") in
  let lv3 = Struct_info.tensor [ m ] f32 in
  show "lv3 = match_cast(lv2, Tensor((m,)))" lv3;
  let lv4 =
    Deduce.expr_sinfo mod_ (Expr.call_op "exp" [ Expr.Var (Rvar.fresh "lv3" lv3) ])
  in
  show "lv4 = exp(lv3)" lv4;

  print_endline "";
  print_endline "--- Figure 7: deduction across subgraph function calls ---";
  (* subfn(s: Shape([n, m])) -> Tensor((n * m,), "f32") *)
  let nv = Arith.Var.fresh "n" and mv = Arith.Var.fresh "m" in
  let params = [ Struct_info.shape [ Arith.Expr.var nv; Arith.Expr.var mv ] ] in
  let ret =
    Struct_info.tensor [ Arith.Expr.mul (Arith.Expr.var nv) (Arith.Expr.var mv) ] f32
  in
  Printf.printf "  subfn : %s -> %s\n"
    (Struct_info.to_string (List.hd params))
    (Struct_info.to_string ret);
  let caller_n = Arith.Expr.var (Arith.Var.fresh "n") in
  show "subfn(shape(n, 4))"
    (Deduce.signature_call_sinfo ~params ~ret
       ~args:[ Struct_info.shape [ caller_n; e 4 ] ]);
  show "subfn(shape(3, 4))"
    (Deduce.signature_call_sinfo ~params ~ret
       ~args:[ Struct_info.shape [ e 3; e 4 ] ]);
  show "subfn(shape(n + 1, 4))"
    (Deduce.signature_call_sinfo ~params ~ret
       ~args:[ Struct_info.shape [ Arith.Expr.add caller_n (e 1); e 4 ] ]);
  show "subfn(y : Shape(ndim=2))   (coarse fallback)"
    (Deduce.signature_call_sinfo ~params ~ret ~args:[ Struct_info.shape_ndim 2 ]);

  print_endline "";
  print_endline "--- the equality prover behind memory-plan reuse (Alg. 3) ---";
  let two_n = Arith.Expr.mul caller_n (e 2) in
  let n_plus_n = Arith.Expr.add caller_n caller_n in
  Printf.printf "  prove 2*n == n + n       : %b\n"
    (Arith.Simplify.prove_equal two_n n_plus_n);
  Printf.printf "  prove 2*n == n + 1       : %b\n"
    (Arith.Simplify.prove_equal two_n (Arith.Expr.add caller_n (e 1)));
  let a = Arith.Analyzer.create () in
  Arith.Analyzer.bind_upper_bound a (Arith.Var.fresh "ignored") ~hi:1;
  (match Arith.Expr.free_vars caller_n |> Arith.Var.Set.choose_opt with
  | Some v -> Arith.Analyzer.bind_upper_bound a v ~hi:2048
  | None -> ());
  Printf.printf "  upper bound of 2*n given n <= 2048 : %s\n"
    (match Arith.Analyzer.upper_bound a two_n with
    | Some ub -> string_of_int ub
    | None -> "unknown")
