(* relax_compile: command-line driver.

   Compile a model from the zoo for a target device, optionally dump
   the IR before/after lowering, and report the simulated decode
   latency and the compiled program's shape.

     dune exec bin/relax_compile.exe -- --model tiny --dump-ir
     dune exec bin/relax_compile.exe -- --model llama3-8b \
         --device "NVIDIA RTX 4090" --batch 1 --ctx 1024
     dune exec bin/relax_compile.exe -- --model llama3-8b --quant q4 \
         --device "Jetson Orin" --no-fusion
     dune exec bin/relax_compile.exe -- --serve --model llama3-8b \
         --batch 16 --rate 10 --requests 40
     dune exec bin/relax_compile.exe -- --model tiny --lint --verify-passes *)

let models =
  [ ("tiny", Frontend.Configs.tiny);
    ("tiny-q", Frontend.Configs.tiny_q);
    ("tiny-tp", Frontend.Configs.tiny_tp);
    ("llama3-8b", Frontend.Configs.llama3_8b);
    ("llama2-7b", Frontend.Configs.llama2_7b);
    ("gemma-7b", Frontend.Configs.gemma_7b);
    ("qwen2-7b", Frontend.Configs.qwen2_7b);
    ("phi3-mini", Frontend.Configs.phi3_mini);
    ("redpajama-3b", Frontend.Configs.redpajama_3b) ]

(* Invalid or contradictory command lines: short message + usage on
   stderr, exit 2 (runtime failures exit 1, success 0). *)
let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "relax_compile: %s\n" msg;
      Printf.eprintf
        "usage: relax_compile [--model NAME] [--device NAME] [--batch N] \
         [--ctx N] [--quant f16|q4|q3]\n\
        \       [--dump-ir] [--no-fusion] [--no-library] [--no-planning] \
         [--no-capture] [--paged]\n\
        \       [--backend interp|closure|imp] [--trace] [--profile] \
         [--lint] [--verify-passes] [--json] [--fp-budget ULPS]\n\
        \       [--tp N]\n\
        \       [--serve [--rate R] [--requests N] [--policy \
         continuous|static] [--seed N]\n\
        \                [--admission fcfs|deadline] [--deadline-ms MS] \
         [--retries N]\n\
        \                [--faults P] [--fault-seed N] [--kv-share]\n\
        \                [--replicas M] [--route \
         round-robin|least-loaded|power-of-two|prefix-affinity]\n\
        \                [--replica-faults P] [--hedge] [--heartbeat-ms MS] \
         [--no-failover]]\n";
      exit 2)
    fmt

(* --tp: time one tensor-parallel decode step instead of the single-
   device path. The model is sharded over N simulated GPUs (lib/dist);
   the report splits time per device and charges the ccl.* collectives
   from the device's interconnect link. *)
let run_tp cfg (device : Runtime.Device.t) ~batch ~ctx ~tp ~profile =
  let ctx = min ctx cfg.Frontend.Configs.max_context in
  let rep = Dist.Tp.step_report cfg ~batch ~tp ~ctx ~device () in
  if profile then begin
    let { Dist.Tp.sh; prog } = Dist.Tp.compile_decode cfg ~batch ~tp ~device in
    let built = sh.Frontend.Llm.sbuilt in
    let p = Runtime.Profiler.create () in
    let vm =
      Runtime.Vm.create ~trace:(Runtime.Profiler.sink p) (`Timed device) prog
    in
    let args = Frontend.Llm.args_for built ~ctx ~mode:`Shadow () in
    let steps = 3 in
    for _ = 1 to steps do
      ignore (Runtime.Vm.run vm built.Frontend.Llm.entry args)
    done;
    Printf.printf "=== tensor-parallel profile (%d steps) ===\n" steps;
    print_string (Runtime.Profiler.report p)
  end;
  let link = device.Runtime.Device.link in
  Printf.printf "model            %s (f16, batch %d, context %d)\n"
    cfg.Frontend.Configs.name batch ctx;
  Printf.printf "device           %d x %s\n" tp device.Runtime.Device.name;
  Printf.printf "interconnect     %s: %.0f GB/s, %.1f us latency (%s)\n"
    link.Runtime.Device.link_name link.Runtime.Device.link_bw_gbps
    link.Runtime.Device.link_latency_us
    (match link.Runtime.Device.topology with
    | Runtime.Device.Ring -> "ring"
    | Runtime.Device.Fully_connected -> "fully connected");
  print_endline (Dist.Tp.report_to_string rep);
  Printf.printf "speedup          %.2fx over one device serializing all \
                 shards\n"
    (rep.Dist.Tp.serial_us /. rep.Dist.Tp.parallel_us)

(* --serve: drive the continuous-batching serving engine (lib/serve)
   instead of timing a lone decode step. [batch] becomes the scheduler's
   max batch; the workload is a seeded Poisson stream sized to the
   model's max context. With --replicas M > 1 the stream is routed
   across M independent engine replicas (lib/dist). *)
let run_serve cfg (device : Runtime.Device.t) precision ~max_batch ~rate
    ~requests ~policy_name ~seed ~admission_name ~deadline_ms ~retries
    ~faults_p ~fault_seed ~kv_share ~replicas ~route ~replica_faults_p
    ~hedge ~heartbeat_ms ~no_failover ~trace ~profile =
  let policy =
    match policy_name with
    | "continuous" -> Serve.Scheduler.Continuous
    | "static" -> Serve.Scheduler.Static
    | other -> usage_error "unknown policy %s (continuous|static)" other
  in
  let admission =
    match admission_name with
    | "fcfs" -> Serve.Scheduler.Fcfs
    | "deadline" | "deadline-aware" -> Serve.Scheduler.Deadline_aware
    | other -> usage_error "unknown admission %s (fcfs|deadline)" other
  in
  let mmax = cfg.Frontend.Configs.max_context in
  let workload =
    if kv_share then
      (* Prefix sharing needs requests with explicit token ids and
         overlapping prompts, so --kv-share swaps the plain Poisson
         stream for multi-turn chat sessions over one shared system
         prompt ([rate] becomes the session arrival rate; [requests]
         is split into ~4-turn sessions). *)
      Serve.Workload.multi_turn_chat ~seed ~rate_per_s:rate
        ~sessions:(max 1 ((requests + 3) / 4))
        ~turns:(min 4 requests) ~vocab:cfg.Frontend.Configs.vocab
        ~system_len:(max 4 (mmax / 8))
        ~max_total:mmax
        ~turn_user:(Serve.Workload.Uniform (max 1 (mmax / 32), max 2 (mmax / 16)))
        ~output:(Serve.Workload.Uniform (1, max 1 (mmax / 16)))
        ()
    else
      Serve.Workload.generate ~seed ~rate_per_s:rate ~num_requests:requests
        ~max_total:mmax
        ~prompt:(Serve.Workload.Uniform (max 1 (mmax / 8), max 2 (mmax / 4)))
        ~output:(Serve.Workload.Uniform (1, max 1 (mmax / 8)))
        ()
  in
  let workload =
    match deadline_ms with
    | Some ms -> Serve.Workload.with_deadline ~slack_us:(ms *. 1000.0) workload
    | None -> workload
  in
  let model = Serve.Scheduler.model ~cfg ~precision ~device in
  (* Same fault mix as the chaos benchmark: transient launch failures
     and stalls at the headline rate, allocation spikes at half of
     it, silent output corruption an order of magnitude rarer. *)
  let faults =
    if faults_p > 0.0 then
      Some
        { Runtime.Fault.disabled with
          Runtime.Fault.seed = fault_seed;
          kernel_fail_p = faults_p;
          stall_p = faults_p;
          oom_p = 0.5 *. faults_p;
          nan_p = 0.1 *. faults_p;
        }
    else None
  in
  let opts =
    { Serve.Scheduler.default_opts with
      Serve.Scheduler.policy;
      max_batch;
      admission;
      retry = { Serve.Scheduler.default_retry with max_attempts = retries };
      faults;
      kv_share;
    }
  in
  (* Replicated cluster: route the stream across M independent engine
     replicas and fold their metrics. --trace/--profile are
     single-engine affairs and were rejected up front. *)
  if replicas > 1 then begin
    (* Replica-scoped fault plan: crash and stall windows at the
       headline probability, router partitions at half of it, drawn
       from per-(replica, kind) streams off --fault-seed. *)
    let replica_faults =
      if replica_faults_p > 0.0 then begin
        let last_arrival =
          List.fold_left
            (fun acc (r : Serve.Workload.request) ->
              Float.max acc r.Serve.Workload.arrival_us)
            0.0 workload
        in
        Runtime.Fault.plan_replica_faults ~seed:fault_seed ~replicas
          ~horizon_us:(Float.max 1e6 (last_arrival *. 1.5))
          ~crash_p:replica_faults_p ~stall_p:replica_faults_p
          ~partition_p:(0.5 *. replica_faults_p) ()
      end
      else []
    in
    let copts =
      { Dist.Cluster.default_opts with
        Dist.Cluster.replicas;
        route;
        affinity_window = max 64 (mmax / 4);
        sched = opts;
        replica_faults;
        health =
          { Dist.Health.default_opts with
            Dist.Health.heartbeat_us = heartbeat_ms *. 1000.0;
          };
        health_aware = not no_failover;
        hedge;
      }
    in
    let r =
      try Dist.Cluster.run ~model copts workload with
      | Runtime.Fault.Error (cls, msg) ->
          Printf.eprintf "serving failed [%s]: %s\n"
            (Runtime.Fault.error_class_name cls)
            msg;
          exit 1
    in
    Printf.printf "model            %s (%s)\n" cfg.Frontend.Configs.name
      (match precision with
      | Frontend.Llm.F16 -> "f16"
      | Frontend.Llm.Q4 -> "q4"
      | Frontend.Llm.Q3 -> "q3");
    Printf.printf "device           %d x %s\n" replicas
      device.Runtime.Device.name;
    Printf.printf "policy           %s, max batch %d per replica\n"
      policy_name max_batch;
    Printf.printf "workload         %d requests at %.1f req/s (seed %d)\n"
      (List.length workload) rate seed;
    if copts.Dist.Cluster.replica_faults <> [] then
      Printf.printf
        "replica faults   %d windows (seed %d), %s routing%s, heartbeat \
         %.0f ms\n"
        (List.length copts.Dist.Cluster.replica_faults)
        fault_seed
        (if copts.Dist.Cluster.health_aware then "health-aware"
         else "health-blind")
        (if copts.Dist.Cluster.hedge then " + hedged decode" else "")
        heartbeat_ms;
    print_string (Dist.Cluster.to_string copts r);
    exit 0
  end;
  let recorder = if trace then Some (Runtime.Trace.recorder ()) else None in
  let profiler = if profile then Some (Runtime.Profiler.create ()) else None in
  let sink =
    match
      ( Option.map Runtime.Trace.sink recorder,
        Option.map Runtime.Profiler.sink profiler )
    with
    | Some r, Some p -> Some (Runtime.Trace.tee r p)
    | Some s, None | None, Some s -> Some s
    | None, None -> None
  in
  let r =
    try Serve.Scheduler.run ?trace:sink model opts workload with
    | Runtime.Fault.Error (cls, msg) ->
        Printf.eprintf "serving failed [%s]: %s\n"
          (Runtime.Fault.error_class_name cls)
          msg;
        exit 1
  in
  (match recorder with
  | Some rec_ ->
      print_endline "=== serving trace ===";
      List.iter
        (fun ev ->
          match ev with
          | Runtime.Trace.Serve _ ->
              print_endline (Runtime.Trace.to_string ev)
          | _ -> ())
        (Runtime.Trace.events rec_)
  | None -> ());
  (match profiler with
  | Some p ->
      print_endline "=== serving profile ===";
      print_string (Runtime.Profiler.report p)
  | None -> ());
  Printf.printf "model            %s (%s)\n" cfg.Frontend.Configs.name
    (match precision with
    | Frontend.Llm.F16 -> "f16"
    | Frontend.Llm.Q4 -> "q4"
    | Frontend.Llm.Q3 -> "q3");
  Printf.printf "device           %s\n" device.Runtime.Device.name;
  Printf.printf "policy           %s, max batch %d, block size %d tokens\n"
    policy_name max_batch opts.Serve.Scheduler.block_size;
  (match admission with
  | Serve.Scheduler.Deadline_aware ->
      Printf.printf "admission        deadline-aware%s, %d attempts/request\n"
        (match deadline_ms with
        | Some ms -> Printf.sprintf " (slack %.0f ms)" ms
        | None -> "")
        retries
  | Serve.Scheduler.Fcfs -> ());
  (match faults with
  | Some c ->
      Printf.printf
        "faults           seed %d: kernel %.3f, stall %.3f (x%.1f), oom \
         %.3f, nan %.3f\n"
        c.Runtime.Fault.seed c.Runtime.Fault.kernel_fail_p
        c.Runtime.Fault.stall_p c.Runtime.Fault.stall_factor
        c.Runtime.Fault.oom_p c.Runtime.Fault.nan_p
  | None -> ());
  if kv_share then
    Printf.printf
      "workload         %d chat requests, sessions at %.1f/s (seed %d), \
       shared system prompt\n"
      (List.length workload) rate seed
  else
    Printf.printf "workload         %d requests at %.1f req/s (seed %d)\n"
      requests rate seed;
  Printf.printf "KV blocks        %d x %d bytes\n"
    (Serve.Block_manager.total_blocks r.Serve.Scheduler.blocks)
    (Serve.Block_manager.block_bytes r.Serve.Scheduler.blocks);
  print_string (Serve.Metrics.to_string r.Serve.Scheduler.summary)

let run model_name device_name batch ctx quant backend_name dump_ir no_fusion
    no_library no_planning no_capture paged trace profile lint verify_passes
    json fp_budget serve rate requests policy seed admission deadline_ms
    retries faults
    fault_seed kv_share tp replicas route_name replica_faults hedge
    heartbeat_ms no_failover =
  let cfg =
    match List.assoc_opt model_name models with
    | Some cfg -> cfg
    | None ->
        usage_error "unknown model %s; available: %s" model_name
          (String.concat ", " (List.map fst models))
  in
  let device =
    match Runtime.Device.find device_name with
    | Some d -> d
    | None ->
        usage_error "unknown device %s; available: %s" device_name
          (String.concat ", "
             (List.map
                (fun (d : Runtime.Device.t) -> d.Runtime.Device.name)
                Runtime.Device.all_presets))
  in
  let precision =
    match quant with
    | "f16" -> Frontend.Llm.F16
    | "q4" -> Frontend.Llm.Q4
    | "q3" -> Frontend.Llm.Q3
    | other -> usage_error "unknown precision %s (f16|q4|q3)" other
  in
  let backend =
    match backend_name with
    | None -> Tir.Exec.default
    | Some name -> (
        match Tir.Exec.backend_of_string name with
        | Some b -> b
        | None ->
            usage_error "unknown backend %s (interp|closure|imp)" name)
  in
  if batch < 1 then usage_error "--batch must be >= 1 (got %d)" batch;
  if ctx < 1 then usage_error "--ctx must be >= 1 (got %d)" ctx;
  (* Serving knobs are meaningless on the compile-and-time path:
     reject them instead of silently ignoring them. *)
  if not serve then begin
    let requires name present =
      if present then usage_error "--%s requires --serve" name
    in
    requires "rate" (rate <> None);
    requires "requests" (requests <> None);
    requires "policy" (policy <> None);
    requires "seed" (seed <> None);
    requires "admission" (admission <> None);
    requires "deadline-ms" (deadline_ms <> None);
    requires "retries" (retries <> None);
    requires "faults" (faults <> None);
    requires "fault-seed" (fault_seed <> None);
    requires "kv-share" kv_share;
    requires "replicas" (replicas <> None);
    requires "route" (route_name <> None);
    requires "replica-faults" (replica_faults <> None);
    requires "hedge" hedge;
    requires "heartbeat-ms" (heartbeat_ms <> None);
    requires "no-failover" no_failover
  end
  else if backend_name <> None then
    (* Serving builds its VMs internally on the default backend; a
       selector that silently did nothing would be misleading. *)
    usage_error "--backend cannot be combined with --serve";
  if json && not (lint || verify_passes) then
    usage_error "--json requires --lint or --verify-passes";
  (match fp_budget with
  | None -> ()
  | Some b ->
      if not (lint || verify_passes) then
        usage_error "--fp-budget requires --lint or --verify-passes";
      if (not (Float.is_finite b)) || b <= 0.0 then
        usage_error "--fp-budget must be a positive ulp count (got %g)" b);
  (* --tp: tensor-parallel step timing, its own path. *)
  (match tp with
  | Some tp ->
      if tp < 1 then usage_error "--tp must be >= 1 (got %d)" tp;
      if serve then
        usage_error
          "--tp cannot be combined with --serve (replication across engines \
           is --replicas)";
      if precision <> Frontend.Llm.F16 then
        usage_error "--tp requires f16 (sharded builders are f16-only)";
      if not (Frontend.Llm.tp_supported cfg ~tp) then
        usage_error
          "%s does not shard at tp=%d (heads, kv_heads, inter, vocab and \
           hidden must all be divisible by tp; qkv biases unsupported)"
          cfg.Frontend.Configs.name tp;
      List.iter
        (fun (flag, on) ->
          if on then usage_error "--%s cannot be combined with --tp" flag)
        [ ("dump-ir", dump_ir); ("lint", lint); ("verify-passes", verify_passes);
          ("paged", paged); ("trace", trace);
          ("backend", backend_name <> None) ];
      run_tp cfg device ~batch ~ctx ~tp ~profile;
      exit 0
  | None -> ());
  let replicas_n = Option.value replicas ~default:1 in
  if replicas_n < 1 then
    usage_error "--replicas must be >= 1 (got %d)" replicas_n;
  let route =
    match route_name with
    | None -> Dist.Cluster.Round_robin
    | Some name -> (
        if replicas = None then usage_error "--route requires --replicas";
        match Dist.Cluster.route_of_string name with
        | Some r -> r
        | None ->
            usage_error
              "unknown route %s \
               (round-robin|least-loaded|power-of-two|prefix-affinity)"
              name)
  in
  if replicas_n > 1 && (trace || profile) then
    usage_error "--trace/--profile cannot be combined with --replicas";
  (* Cluster fault-tolerance knobs only mean something with more than
     one replica to fail over between. *)
  List.iter
    (fun (flag, present) ->
      if present && replicas_n < 2 then
        usage_error "--%s requires --replicas >= 2" flag)
    [ ("replica-faults", replica_faults <> None); ("hedge", hedge);
      ("heartbeat-ms", heartbeat_ms <> None); ("no-failover", no_failover) ];
  let replica_faults_p = Option.value replica_faults ~default:0.0 in
  if replica_faults_p < 0.0 || replica_faults_p > 1.0 then
    usage_error "--replica-faults must be a probability in [0, 1] (got %g)"
      replica_faults_p;
  let heartbeat_ms = Option.value heartbeat_ms ~default:10.0 in
  if heartbeat_ms <= 0.0 then
    usage_error "--heartbeat-ms must be > 0 (got %g)" heartbeat_ms;
  if serve then begin
    if dump_ir then usage_error "--dump-ir cannot be combined with --serve";
    if lint || verify_passes then
      usage_error "--lint/--verify-passes cannot be combined with --serve";
    if paged then
      usage_error "--paged is implied by --serve (serving is always paged)";
    let rate = Option.value rate ~default:5.0 in
    let requests = Option.value requests ~default:20 in
    let policy_name = Option.value policy ~default:"continuous" in
    let seed = Option.value seed ~default:42 in
    let admission_name = Option.value admission ~default:"fcfs" in
    let retries = Option.value retries ~default:3 in
    let faults_p = Option.value faults ~default:0.0 in
    let fault_seed = Option.value fault_seed ~default:0 in
    if rate <= 0.0 then usage_error "--rate must be > 0 (got %g)" rate;
    if requests < 1 then
      usage_error "--requests must be >= 1 (got %d)" requests;
    if retries < 1 then usage_error "--retries must be >= 1 (got %d)" retries;
    if faults_p < 0.0 || faults_p > 1.0 then
      usage_error "--faults must be a probability in [0, 1] (got %g)" faults_p;
    (match deadline_ms with
    | Some ms when ms <= 0.0 ->
        usage_error "--deadline-ms must be > 0 (got %g)" ms
    | _ -> ());
    run_serve cfg device precision ~max_batch:batch ~rate ~requests
      ~policy_name ~seed ~admission_name ~deadline_ms ~retries ~faults_p
      ~fault_seed ~kv_share ~replicas:replicas_n ~route ~replica_faults_p
      ~hedge ~heartbeat_ms ~no_failover ~trace ~profile;
    exit 0
  end;
  (* Memory planning sizes storages for the model's declared maximum
     context; running past it would (correctly) fail the storage-fit
     check, so clamp the requested context instead. *)
  let ctx =
    if ctx > cfg.Frontend.Configs.max_context then begin
      Printf.eprintf "note: ctx %d exceeds %s's max context, clamping to %d\n"
        ctx cfg.Frontend.Configs.name cfg.Frontend.Configs.max_context;
      cfg.Frontend.Configs.max_context
    end
    else ctx
  in
  let built =
    if paged then Frontend.Llm.decode_paged cfg ~batch precision
    else Frontend.Llm.decode cfg ~batch precision
  in
  let options =
    {
      Relax_passes.Pipeline.default_options with
      Relax_passes.Pipeline.fusion = not no_fusion;
      dispatch_library = not no_library;
      memory_plan = not no_planning;
      graph_capture = not no_capture;
      upper_bounds = Frontend.Llm.upper_bound_hints built;
    }
  in
  if dump_ir then begin
    print_endline "=== IR before lowering ===";
    print_string (Relax_core.Printer.module_to_string built.Frontend.Llm.mod_)
  end;
  let lowered =
    Relax_passes.Pipeline.lower ~options ~device built.Frontend.Llm.mod_
  in
  if dump_ir then begin
    print_endline "=== IR after lowering ===";
    print_string (Relax_core.Printer.module_to_string lowered)
  end;
  (* Static verification modes: print diagnostics and exit instead of
     timing a decode step. Exit 1 iff any diagnostic is an Error;
     warnings (unprovable bounds, data-dependent indices) pass. *)
  if lint || verify_passes then begin
    let bounds = options.Relax_passes.Pipeline.upper_bounds in
    let fp =
      match fp_budget with
      | None -> Some Analysis.Fp.default_opts
      | Some budget_ulps ->
          Some { Analysis.Fp.default_opts with Analysis.Fp.budget_ulps }
    in
    let failed = ref false in
    let emit title diags =
      if json then print_endline (Analysis.Diag.render_json diags)
      else if diags = [] then Printf.printf "%s: clean\n" title
      else begin
        Printf.printf "%s:\n" title;
        print_endline (Analysis.Diag.render diags)
      end;
      if Analysis.Diag.errors diags <> [] then failed := true
    in
    if lint then
      emit
        (Printf.sprintf "lint (%s lowered for %s)" cfg.Frontend.Configs.name
           device.Runtime.Device.name)
        (Relax_passes.Verify.check_module ~bounds ~fp lowered);
    if verify_passes then begin
      let input_diags =
        Relax_passes.Verify.check_module ~bounds ~fp built.Frontend.Llm.mod_
      in
      (if Analysis.Diag.errors input_diags <> [] then
         emit "verify-passes (errors pre-existing in the input module)"
           (Analysis.Diag.errors input_diags));
      let _, stage_diags =
        Relax_passes.Pipeline.lower_with_diags ~options ~fp ~device
          built.Frontend.Llm.mod_
      in
      emit "verify-passes (diagnostics introduced by pipeline stages)"
        stage_diags
    end;
    exit (if !failed then 1 else 0)
  end;
  let program = Relax_passes.To_vm.compile lowered in
  let recorder = if trace then Some (Runtime.Trace.recorder ()) else None in
  let profiler = if profile then Some (Runtime.Profiler.create ()) else None in
  let sink =
    match
      ( Option.map Runtime.Trace.sink recorder,
        Option.map Runtime.Profiler.sink profiler )
    with
    | Some r, Some p -> Some (Runtime.Trace.tee r p)
    | Some s, None | None, Some s -> Some s
    | None, None -> None
  in
  let vm = Runtime.Vm.create ?trace:sink ~backend (`Timed device) program in
  let args = Frontend.Llm.args_for built ~ctx ~mode:`Shadow () in
  let steps = 3 in
  for _ = 1 to steps do
    ignore (Runtime.Vm.run vm "decode" args)
  done;
  (match recorder with
  | Some r ->
      Printf.printf "=== trace (%d steps) ===\n" steps;
      List.iter
        (fun ev -> print_endline (Runtime.Trace.to_string ev))
        (Runtime.Trace.events r)
  | None -> ());
  (match profiler with
  | Some p ->
      Printf.printf "=== profile (%d steps) ===\n" steps;
      print_string (Runtime.Profiler.report p);
      Printf.printf "per step: %.4f ms over %d steps\n"
        (Runtime.Profiler.total_time_us p /. float_of_int steps /. 1e3)
        (Runtime.Profiler.steps p)
  | None -> ());
  let st = Runtime.Vm.stats vm in
  let per_step_ms = st.Runtime.Vm.elapsed_us /. 3.0 /. 1000.0 in
  Printf.printf "model            %s (%s, batch %d, context %d)\n"
    cfg.Frontend.Configs.name quant batch ctx;
  Printf.printf "device           %s\n" device.Runtime.Device.name;
  Printf.printf "kernels          %d tensor programs in module\n"
    (List.length (Relax_core.Ir_module.tir_funcs lowered));
  Printf.printf "launches/step    %d (+%d library calls)\n"
    (st.Runtime.Vm.kernel_launches / 3)
    (st.Runtime.Vm.lib_calls / 3);
  Printf.printf "decode latency   %.2f ms/token (%.1f tokens/s)\n" per_step_ms
    (1000.0 /. per_step_ms)

open Cmdliner

let model =
  Arg.(value & opt string "tiny" & info [ "model"; "m" ] ~doc:"Model name.")

let device =
  Arg.(
    value
    & opt string "NVIDIA RTX 4090"
    & info [ "device"; "d" ] ~doc:"Device preset name.")

let batch = Arg.(value & opt int 1 & info [ "batch"; "b" ] ~doc:"Batch size.")
let ctx = Arg.(value & opt int 1024 & info [ "ctx" ] ~doc:"Context length.")

let quant =
  Arg.(value & opt string "f16" & info [ "quant"; "q" ] ~doc:"f16, q4 or q3.")

let backend =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ]
        ~doc:
          "Kernel execution backend: $(b,interp) (reference tree \
           walker), $(b,closure) (compiled OCaml closures) or $(b,imp) \
           (flat imperative register machine with proof-elided bounds \
           checks; the default). All three are bit-identical on valid \
           kernels; the choice shows up in $(b,--profile)'s backend \
           column and per-backend time split.")

let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the IR.")
let no_fusion = Arg.(value & flag & info [ "no-fusion" ] ~doc:"Disable FuseOps.")
let no_library = Arg.(value & flag & info [ "no-library" ] ~doc:"Disable library dispatch.")
let no_planning = Arg.(value & flag & info [ "no-planning" ] ~doc:"Disable memory planning.")
let no_capture = Arg.(value & flag & info [ "no-capture" ] ~doc:"Disable graph capture.")
let paged = Arg.(value & flag & info [ "paged" ] ~doc:"Use the in-place paged KV cache.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Dump the full VM execution trace (one line per event).")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Aggregate the execution trace into a per-kernel profile \
           (calls, launches, simulated time, flops, bytes, peak memory).")

let lint =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the static verifier on the lowered module (graph-level \
           well-formedness, TIR memory safety, parallel-race detection, \
           floating-point round-off certification) instead of timing it. \
           Prints diagnostics and exits 1 if any has severity error, 0 \
           otherwise. The model's declared shape bounds (e.g. max \
           context) feed the prover.")

let verify_passes =
  Arg.(
    value & flag
    & info [ "verify-passes" ]
        ~doc:
          "Re-run the static verifier after every pipeline stage and \
           report the diagnostics each stage introduced, attributed to \
           that stage. Exits 1 if any stage introduces an error (or the \
           input module already has one).")

let json =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "With $(b,--lint)/$(b,--verify-passes): print diagnostics as a \
           versioned JSON object instead of pretty text (see \
           Analysis.Diag.render_json for the schema and the exit-code \
           contract).")

let fp_budget =
  Arg.(
    value
    & opt (some float) None
    & info [ "fp-budget" ] ~docv:"ULPS"
        ~doc:
          "With $(b,--lint)/$(b,--verify-passes): per-kernel round-off \
           error budget in ulps of each kernel's coarsest representation \
           (default $(b,2^24)). A kernel whose proved first-order error \
           bound exceeds the budget is an error; unprovable bounds only \
           warn.")

let serve =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Run the continuous-batching serving engine on a seeded Poisson \
           request stream instead of timing a single decode step. \
           $(b,--batch) sets the scheduler's max batch; combine with \
           $(b,--rate), $(b,--requests), $(b,--policy) and $(b,--seed).")

let rate =
  Arg.(
    value
    & opt (some float) None
    & info [ "rate" ] ~doc:"Serving: request arrival rate, req/s (default 5).")

let requests =
  Arg.(
    value
    & opt (some int) None
    & info [ "requests" ]
        ~doc:"Serving: number of requests to serve (default 20).")

let policy =
  Arg.(
    value
    & opt (some string) None
    & info [ "policy" ]
        ~doc:"Serving: continuous or static batching (default continuous).")

let seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~doc:"Serving: workload seed (default 42).")

let admission =
  Arg.(
    value
    & opt (some string) None
    & info [ "admission" ]
        ~doc:
          "Serving: admission policy, $(b,fcfs) (default) or $(b,deadline) \
           (shed requests whose deadline has passed or is infeasible under \
           the cost model).")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ]
        ~doc:
          "Serving: give every request a deadline this many milliseconds \
           after its arrival. Without it requests have no SLO and \
           $(b,--admission) deadline never sheds.")

let retries =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ]
        ~doc:
          "Serving: per-request attempt budget across transient faults and \
           corrupt tokens (default 3).")

let faults =
  Arg.(
    value
    & opt (some float) None
    & info [ "faults" ]
        ~doc:
          "Serving: arm seeded fault injection. P is the per-event \
           probability of transient kernel failures and device stalls; \
           allocation spikes fire at P/2 and output corruption at P/10.")

let fault_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ]
        ~doc:
          "Serving: fault injector seed (default 0); same seed, same fault \
           schedule.")

let kv_share =
  Arg.(
    value & flag
    & info [ "kv-share" ]
        ~doc:
          "Serving: enable cross-request KV prefix sharing (refcounted \
           blocks, prefix cache, copy-on-write forking) and switch the \
           workload to multi-turn chat sessions over a shared system \
           prompt so prefixes actually overlap. $(b,--rate) becomes the \
           session arrival rate and $(b,--requests) is split into \
           four-turn sessions. The metrics report gains prefix hit rate, \
           shared/COW block counts and KV bytes per token.")

let tp =
  Arg.(
    value
    & opt (some int) None
    & info [ "tp" ]
        ~doc:
          "Shard the model tensor-parallel over N simulated devices \
           (column/row-split matmuls, head-parallel attention, explicit \
           all-gather/all-reduce charged from the device interconnect) and \
           time one decode step, reporting per-device and communication \
           time. Requires f16 and a model whose heads/kv_heads/inter/vocab/\
           hidden all divide by N. Cannot be combined with $(b,--serve).")

let replicas =
  Arg.(
    value
    & opt (some int) None
    & info [ "replicas" ]
        ~doc:
          "Serving: spread the request stream across M independent engine \
           replicas (each with its own scheduler and KV blocks) and fold \
           their metrics. Requires $(b,--serve).")

let route =
  Arg.(
    value
    & opt (some string) None
    & info [ "route" ]
        ~doc:
          "Serving: cluster routing policy, one of $(b,round-robin) \
           (default), $(b,least-loaded), $(b,power-of-two), \
           $(b,prefix-affinity) (hash the prompt prefix so sessions stick \
           to a replica's KV cache; pair with $(b,--kv-share)). Requires \
           $(b,--replicas).")

let replica_faults =
  Arg.(
    value
    & opt (some float) None
    & info [ "replica-faults" ]
        ~doc:
          "Serving: arm seeded replica-scoped fault windows across the \
           cluster. P is the per-replica probability of a crash window and \
           of a stall window; router partitions fire at P/2. Windows are \
           drawn from independent per-(replica, kind) streams off \
           $(b,--fault-seed). Requires $(b,--replicas) >= 2.")

let hedge =
  Arg.(
    value & flag
    & info [ "hedge" ]
        ~doc:
          "Serving: hedged decode — duplicate requests routed to a \
           degraded replica onto the least-backlogged healthy one; the \
           earliest finish wins. Requires $(b,--replicas) >= 2.")

let heartbeat_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "heartbeat-ms" ]
        ~doc:
          "Serving: health-probe cadence in milliseconds (default 10). \
           Crash detection lands two missed probes after the crash. \
           Requires $(b,--replicas) >= 2.")

let no_failover =
  Arg.(
    value & flag
    & info [ "no-failover" ]
        ~doc:
          "Serving: disable health-aware routing and failover — the \
           health-blind baseline where a crashed replica's queue strands \
           until its engine restarts. Requires $(b,--replicas) >= 2.")

let cmd =
  Cmd.v
    (Cmd.info "relax_compile" ~doc:"Compile and time a model from the zoo")
    Term.(
      const run $ model $ device $ batch $ ctx $ quant $ backend $ dump_ir
      $ no_fusion $ no_library $ no_planning $ no_capture $ paged $ trace
      $ profile $ lint $ verify_passes $ json $ fp_budget $ serve $ rate
      $ requests
      $ policy $ seed $ admission $ deadline_ms $ retries $ faults
      $ fault_seed $ kv_share $ tp $ replicas $ route $ replica_faults
      $ hedge $ heartbeat_ms $ no_failover)

let () = exit (Cmd.eval cmd)
