(* relax_compile: command-line driver.

   Compile a model from the zoo for a target device, optionally dump
   the IR before/after lowering, and report the simulated decode
   latency and the compiled program's shape.

     dune exec bin/relax_compile.exe -- --model tiny --dump-ir
     dune exec bin/relax_compile.exe -- --model llama3-8b \
         --device "NVIDIA RTX 4090" --batch 1 --ctx 1024
     dune exec bin/relax_compile.exe -- --model llama3-8b --quant q4 \
         --device "Jetson Orin" --no-fusion
     dune exec bin/relax_compile.exe -- --serve --model llama3-8b \
         --batch 16 --rate 10 --requests 40 *)

let models =
  [ ("tiny", Frontend.Configs.tiny);
    ("tiny-q", Frontend.Configs.tiny_q);
    ("llama3-8b", Frontend.Configs.llama3_8b);
    ("llama2-7b", Frontend.Configs.llama2_7b);
    ("gemma-7b", Frontend.Configs.gemma_7b);
    ("qwen2-7b", Frontend.Configs.qwen2_7b);
    ("phi3-mini", Frontend.Configs.phi3_mini);
    ("redpajama-3b", Frontend.Configs.redpajama_3b) ]

(* --serve: drive the continuous-batching serving engine (lib/serve)
   instead of timing a lone decode step. [batch] becomes the scheduler's
   max batch; the workload is a seeded Poisson stream sized to the
   model's max context. *)
let run_serve cfg (device : Runtime.Device.t) precision ~max_batch ~rate
    ~requests ~policy_name ~seed ~trace ~profile =
  let policy =
    match policy_name with
    | "continuous" -> Serve.Scheduler.Continuous
    | "static" -> Serve.Scheduler.Static
    | other ->
        Printf.eprintf "unknown policy %s (continuous|static)\n" other;
        exit 1
  in
  let mmax = cfg.Frontend.Configs.max_context in
  let workload =
    Serve.Workload.generate ~seed ~rate_per_s:rate ~num_requests:requests
      ~max_total:mmax
      ~prompt:(Serve.Workload.Uniform (max 1 (mmax / 8), max 2 (mmax / 4)))
      ~output:(Serve.Workload.Uniform (1, max 1 (mmax / 8)))
      ()
  in
  let model = Serve.Scheduler.model ~cfg ~precision ~device in
  let opts =
    { Serve.Scheduler.default_opts with Serve.Scheduler.policy; max_batch }
  in
  let recorder = if trace then Some (Runtime.Trace.recorder ()) else None in
  let profiler = if profile then Some (Runtime.Profiler.create ()) else None in
  let sink =
    match
      ( Option.map Runtime.Trace.sink recorder,
        Option.map Runtime.Profiler.sink profiler )
    with
    | Some r, Some p -> Some (Runtime.Trace.tee r p)
    | Some s, None | None, Some s -> Some s
    | None, None -> None
  in
  let r = Serve.Scheduler.run ?trace:sink model opts workload in
  (match recorder with
  | Some rec_ ->
      print_endline "=== serving trace ===";
      List.iter
        (fun ev ->
          match ev with
          | Runtime.Trace.Serve _ ->
              print_endline (Runtime.Trace.to_string ev)
          | _ -> ())
        (Runtime.Trace.events rec_)
  | None -> ());
  (match profiler with
  | Some p ->
      print_endline "=== serving profile ===";
      print_string (Runtime.Profiler.report p)
  | None -> ());
  Printf.printf "model            %s (%s)\n" cfg.Frontend.Configs.name
    (match precision with
    | Frontend.Llm.F16 -> "f16"
    | Frontend.Llm.Q4 -> "q4"
    | Frontend.Llm.Q3 -> "q3");
  Printf.printf "device           %s\n" device.Runtime.Device.name;
  Printf.printf "policy           %s, max batch %d, block size %d tokens\n"
    policy_name max_batch opts.Serve.Scheduler.block_size;
  Printf.printf "workload         %d requests at %.1f req/s (seed %d)\n"
    requests rate seed;
  Printf.printf "KV blocks        %d x %d bytes\n"
    (Serve.Block_manager.total_blocks r.Serve.Scheduler.blocks)
    (Serve.Block_manager.block_bytes r.Serve.Scheduler.blocks);
  print_string (Serve.Metrics.to_string r.Serve.Scheduler.summary)

let run model_name device_name batch ctx quant dump_ir no_fusion no_library
    no_planning no_capture paged trace profile serve rate requests policy seed =
  let cfg =
    match List.assoc_opt model_name models with
    | Some cfg -> cfg
    | None ->
        Printf.eprintf "unknown model %s; available: %s\n" model_name
          (String.concat ", " (List.map fst models));
        exit 1
  in
  let device =
    match Runtime.Device.find device_name with
    | Some d -> d
    | None ->
        Printf.eprintf "unknown device %s; available: %s\n" device_name
          (String.concat ", "
             (List.map
                (fun (d : Runtime.Device.t) -> d.Runtime.Device.name)
                Runtime.Device.all_presets));
        exit 1
  in
  let precision =
    match quant with
    | "f16" -> Frontend.Llm.F16
    | "q4" -> Frontend.Llm.Q4
    | "q3" -> Frontend.Llm.Q3
    | other ->
        Printf.eprintf "unknown precision %s (f16|q4|q3)\n" other;
        exit 1
  in
  if serve then begin
    run_serve cfg device precision ~max_batch:batch ~rate ~requests
      ~policy_name:policy ~seed ~trace ~profile;
    exit 0
  end;
  (* Memory planning sizes storages for the model's declared maximum
     context; running past it would (correctly) fail the storage-fit
     check, so clamp the requested context instead. *)
  let ctx =
    if ctx > cfg.Frontend.Configs.max_context then begin
      Printf.eprintf "note: ctx %d exceeds %s's max context, clamping to %d\n"
        ctx cfg.Frontend.Configs.name cfg.Frontend.Configs.max_context;
      cfg.Frontend.Configs.max_context
    end
    else ctx
  in
  let built =
    if paged then Frontend.Llm.decode_paged cfg ~batch precision
    else Frontend.Llm.decode cfg ~batch precision
  in
  let options =
    {
      Relax_passes.Pipeline.default_options with
      Relax_passes.Pipeline.fusion = not no_fusion;
      dispatch_library = not no_library;
      memory_plan = not no_planning;
      graph_capture = not no_capture;
      upper_bounds = Frontend.Llm.upper_bound_hints built;
    }
  in
  if dump_ir then begin
    print_endline "=== IR before lowering ===";
    print_string (Relax_core.Printer.module_to_string built.Frontend.Llm.mod_)
  end;
  let lowered =
    Relax_passes.Pipeline.lower ~options ~device built.Frontend.Llm.mod_
  in
  if dump_ir then begin
    print_endline "=== IR after lowering ===";
    print_string (Relax_core.Printer.module_to_string lowered)
  end;
  let program = Relax_passes.To_vm.compile lowered in
  let recorder = if trace then Some (Runtime.Trace.recorder ()) else None in
  let profiler = if profile then Some (Runtime.Profiler.create ()) else None in
  let sink =
    match
      ( Option.map Runtime.Trace.sink recorder,
        Option.map Runtime.Profiler.sink profiler )
    with
    | Some r, Some p -> Some (Runtime.Trace.tee r p)
    | Some s, None | None, Some s -> Some s
    | None, None -> None
  in
  let vm = Runtime.Vm.create ?trace:sink (`Timed device) program in
  let args = Frontend.Llm.args_for built ~ctx ~mode:`Shadow () in
  let steps = 3 in
  for _ = 1 to steps do
    ignore (Runtime.Vm.run vm "decode" args)
  done;
  (match recorder with
  | Some r ->
      Printf.printf "=== trace (%d steps) ===\n" steps;
      List.iter
        (fun ev -> print_endline (Runtime.Trace.to_string ev))
        (Runtime.Trace.events r)
  | None -> ());
  (match profiler with
  | Some p ->
      Printf.printf "=== profile (%d steps) ===\n" steps;
      print_string (Runtime.Profiler.report p);
      Printf.printf "per step: %.4f ms over %d steps\n"
        (Runtime.Profiler.total_time_us p /. float_of_int steps /. 1e3)
        (Runtime.Profiler.steps p)
  | None -> ());
  let st = Runtime.Vm.stats vm in
  let per_step_ms = st.Runtime.Vm.elapsed_us /. 3.0 /. 1000.0 in
  Printf.printf "model            %s (%s, batch %d, context %d)\n"
    cfg.Frontend.Configs.name quant batch ctx;
  Printf.printf "device           %s\n" device.Runtime.Device.name;
  Printf.printf "kernels          %d tensor programs in module\n"
    (List.length (Relax_core.Ir_module.tir_funcs lowered));
  Printf.printf "launches/step    %d (+%d library calls)\n"
    (st.Runtime.Vm.kernel_launches / 3)
    (st.Runtime.Vm.lib_calls / 3);
  Printf.printf "decode latency   %.2f ms/token (%.1f tokens/s)\n" per_step_ms
    (1000.0 /. per_step_ms)

open Cmdliner

let model =
  Arg.(value & opt string "tiny" & info [ "model"; "m" ] ~doc:"Model name.")

let device =
  Arg.(
    value
    & opt string "NVIDIA RTX 4090"
    & info [ "device"; "d" ] ~doc:"Device preset name.")

let batch = Arg.(value & opt int 1 & info [ "batch"; "b" ] ~doc:"Batch size.")
let ctx = Arg.(value & opt int 1024 & info [ "ctx" ] ~doc:"Context length.")

let quant =
  Arg.(value & opt string "f16" & info [ "quant"; "q" ] ~doc:"f16, q4 or q3.")

let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the IR.")
let no_fusion = Arg.(value & flag & info [ "no-fusion" ] ~doc:"Disable FuseOps.")
let no_library = Arg.(value & flag & info [ "no-library" ] ~doc:"Disable library dispatch.")
let no_planning = Arg.(value & flag & info [ "no-planning" ] ~doc:"Disable memory planning.")
let no_capture = Arg.(value & flag & info [ "no-capture" ] ~doc:"Disable graph capture.")
let paged = Arg.(value & flag & info [ "paged" ] ~doc:"Use the in-place paged KV cache.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Dump the full VM execution trace (one line per event).")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Aggregate the execution trace into a per-kernel profile \
           (calls, launches, simulated time, flops, bytes, peak memory).")

let serve =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Run the continuous-batching serving engine on a seeded Poisson \
           request stream instead of timing a single decode step. \
           $(b,--batch) sets the scheduler's max batch; combine with \
           $(b,--rate), $(b,--requests), $(b,--policy) and $(b,--seed).")

let rate =
  Arg.(
    value & opt float 5.0
    & info [ "rate" ] ~doc:"Serving: request arrival rate, req/s.")

let requests =
  Arg.(
    value & opt int 20
    & info [ "requests" ] ~doc:"Serving: number of requests to serve.")

let policy =
  Arg.(
    value & opt string "continuous"
    & info [ "policy" ] ~doc:"Serving: continuous or static batching.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Serving: workload seed.")

let cmd =
  Cmd.v
    (Cmd.info "relax_compile" ~doc:"Compile and time a model from the zoo")
    Term.(
      const run $ model $ device $ batch $ ctx $ quant $ dump_ir $ no_fusion
      $ no_library $ no_planning $ no_capture $ paged $ trace $ profile
      $ serve $ rate $ requests $ policy $ seed)

let () = exit (Cmd.eval cmd)
