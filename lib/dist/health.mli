(** Per-replica health model for the serving cluster (DESIGN.md §14).

    A heartbeat prober walks the simulated clock at a fixed cadence
    and asks, for each replica, whether a probe at that instant
    succeeds against the {!Runtime.Fault} replica plan: it fails iff a
    crash or partition window covers it, and is slow iff a stall
    window does. A per-replica state machine folds the probe stream:

    - [Healthy]: probes succeeding at full speed.
    - [Degraded]: last probe succeeded but was slow (straggler) —
      routable, deprioritized.
    - [Down]: [down_after] consecutive probes failed. The circuit is
      open: probing drops to single half-open trials spaced by an
      exponentially growing backoff ([backoff_us] × [backoff_mult]^k,
      capped at [max_backoff_us]).
    - [Recovering]: a half-open trial succeeded; back at heartbeat
      cadence, promoted to [Healthy] after [recover_after] consecutive
      good probes.

    Probe outcomes depend only on the plan — never on serving load —
    so the whole timeline is computed deterministically up front and
    routing stays a pure function of (workload, policy, seed, plan). *)

type state = Healthy | Degraded | Down | Recovering

val state_name : state -> string
(** "healthy", "degraded", "down", "recovering". *)

type opts = {
  heartbeat_us : float;  (** probe cadence while the circuit is closed *)
  down_after : int;  (** consecutive failed probes before [Down] *)
  recover_after : int;  (** consecutive good probes before [Healthy] *)
  backoff_us : float;  (** first half-open retry delay once [Down] *)
  backoff_mult : float;  (** exponential growth per failed half-open trial *)
  max_backoff_us : float;  (** backoff ceiling *)
}

val default_opts : opts
(** 10 ms heartbeat, Down after 2 misses, Healthy after 2 good
    probes, 20 ms half-open backoff doubling up to 160 ms. *)

type transition = { t_us : float; replica : int; state : state }

val timeline :
  opts ->
  plan:Runtime.Fault.plan ->
  replicas:int ->
  horizon_us:float ->
  transition list
(** All state transitions in [\[0, horizon_us\]], sorted by time then
    replica. Replicas start [Healthy] at 0 (no transition emitted). A
    crash at [tc] is detected — i.e. the [Down] transition lands — at
    the [down_after]'th heartbeat after [tc]; recovery is observed at
    the first half-open probe after the window closes. *)

val state_at : transition list -> replica:int -> t_us:float -> state
(** The replica's state at [t_us] (transitions at exactly [t_us]
    already apply); [Healthy] before any transition. *)

val down_spans :
  transition list -> replica:int -> horizon_us:float -> (float * float) list
(** Maximal [\[t_down, t_back)] spans during which the replica was
    [Down], in time order; a span still open at the horizon closes
    there. *)

val downtime_us : transition list -> replica:int -> horizon_us:float -> float
(** Total [Down] time clipped to [\[0, horizon_us\]]. *)
