(* Tensor-parallel execution harness over the sharded Llm builders:
   compile a sharded module, slice one full-model weight set into
   per-shard parameters, run greedy decode differentially against
   TP=1, and report per-device/communication time from a timed run. *)

module Llm = Frontend.Llm
module Configs = Frontend.Configs

type compiled = {
  sh : Llm.sharded;
  prog : Runtime.Vm.program;
}

let compile_built ?(verify = false) ~device (built : Llm.built) =
  Relax_passes.Pipeline.compile
    ~options:
      { Relax_passes.Pipeline.default_options with
        Relax_passes.Pipeline.upper_bounds = Llm.upper_bound_hints built }
    ~verify ~device built.Llm.mod_

let compile_decode ?strategy ?verify cfg ~batch ~tp ~device =
  let sh = Llm.decode_paged_tp ?strategy cfg ~batch ~tp () in
  { sh; prog = compile_built ?verify ~device sh.Llm.sbuilt }

let compile_prefill ?strategy ?verify cfg ~tp ~device =
  let sh = Llm.prefill_tp ?strategy cfg ~tp () in
  { sh; prog = compile_built ?verify ~device sh.Llm.sbuilt }

(* ---------- weight slicing ---------- *)

(* Contiguous block [shard] of [tp] along [axis] of a 2-d matrix. The
   sharded builders only ever slice matmul weights, so 2-d is the
   whole contract. *)
let slice (full : Base.Ndarray.t) ~axis ~shard ~tp =
  let shape = full.Base.Ndarray.shape in
  if Array.length shape <> 2 then
    invalid_arg "Dist.Tp.slice: expected a 2-d weight matrix";
  let k = shape.(0) and n = shape.(1) in
  let dim = shape.(axis) in
  if dim mod tp <> 0 then
    invalid_arg
      (Printf.sprintf "Dist.Tp.slice: axis %d extent %d not divisible by %d"
         axis dim tp);
  let w = dim / tp in
  let off = shard * w in
  if axis = 0 then begin
    let out = Base.Ndarray.create full.Base.Ndarray.dtype [| w; n |] in
    for r = 0 to w - 1 do
      for j = 0 to n - 1 do
        Base.Ndarray.set_flat_float out
          ((r * n) + j)
          (Base.Ndarray.get_flat_float full (((off + r) * n) + j))
      done
    done;
    out
  end
  else begin
    let out = Base.Ndarray.create full.Base.Ndarray.dtype [| k; w |] in
    for r = 0 to k - 1 do
      for j = 0 to w - 1 do
        Base.Ndarray.set_flat_float out
          ((r * w) + j)
          (Base.Ndarray.get_flat_float full ((r * n) + off + j))
      done
    done;
    out
  end

let shard_args (sh : Llm.sharded) ~full ~input =
  let lookup nm =
    match List.assoc_opt nm full with
    | Some t -> t
    | None ->
        invalid_arg
          (Printf.sprintf "Dist.Tp.shard_args: no full-model tensor %S" nm)
  in
  List.map2
    (fun (nm, _) src ->
      match src with
      | Llm.Sh_input _ -> input nm
      | Llm.Sh_replicated s -> Runtime.Vm.tensor (lookup s)
      | Llm.Sh_sliced { src; axis; shard; tp } ->
          Runtime.Vm.tensor (slice (lookup src) ~axis ~shard ~tp))
    sh.Llm.sbuilt.Llm.params sh.Llm.srcs

(* ---------- greedy-decode differential runner ---------- *)

(* One full-model weight set per (cfg, seed): the TP=1 [decode_paged]
   parameter template, keyed by parameter name. Every TP degree slices
   the same tensors, so differential runs compare like against like. *)
let full_weights cfg ~seed =
  let fb = Llm.decode_paged cfg ~batch:1 Llm.F16 in
  List.filter_map
    (fun ((nm, _), v) ->
      match v with
      | Runtime.Vm.Tensor t -> Some (nm, t)
      | _ -> None)
    (List.combine fb.Llm.params
       (Llm.args_for fb ~ctx:0 ~seed ~mode:`Numeric ()))

let argmax logits =
  let n = Base.Ndarray.numel logits in
  let best = ref 0 and best_v = ref neg_infinity in
  for i = 0 to n - 1 do
    let v = Base.Ndarray.get_flat_float logits i in
    if v > !best_v then begin
      best_v := v;
      best := i
    end
  done;
  !best

let logits_of = function
  | Runtime.Vm.Tuple_val (l :: _) -> Runtime.Vm.value_tensor l
  | v -> Runtime.Vm.value_tensor v

let prefixed pre nm =
  String.length nm >= String.length pre
  && String.sub nm 0 (String.length pre) = pre

let generate ?strategy ?verify cfg ~tp ~seed ~prompt ~gen () =
  if prompt = [] then invalid_arg "Dist.Tp.generate: empty prompt";
  if gen < 1 then invalid_arg "Dist.Tp.generate: gen < 1";
  let { sh; prog } =
    compile_decode ?strategy ?verify cfg ~batch:1 ~tp
      ~device:Runtime.Device.rtx4090
  in
  let vm = Runtime.Vm.create `Numeric prog in
  let full = full_weights cfg ~seed in
  let mmax = cfg.Configs.max_context in
  let kvs = cfg.Configs.kv_heads / sh.Llm.tp in
  (* Persistent per-shard paged caches, plus per-step ids/cur_len:
     resolve the [Sh_input] parameters once into a mutable slot. *)
  let caches = Hashtbl.create 16 in
  let cur_ids = ref 0 and cur_pos = ref 0 in
  let template =
    shard_args sh ~full ~input:(fun nm ->
        if nm = "ids" then Runtime.Vm.Unit_val (* patched per step *)
        else if nm = "cur_len" then Runtime.Vm.Unit_val
        else if prefixed "k_cache" nm || prefixed "v_cache" nm then begin
          let t =
            Base.Ndarray.create Base.Dtype.F16
              [| 1; kvs; mmax; cfg.Configs.head_dim |]
          in
          Hashtbl.replace caches nm t;
          Runtime.Vm.tensor t
        end
        else
          invalid_arg
            (Printf.sprintf "Dist.Tp.generate: unexpected input %S" nm))
  in
  let names = List.map fst sh.Llm.sbuilt.Llm.params in
  let step () =
    let args =
      List.map2
        (fun nm v ->
          if nm = "ids" then
            Runtime.Vm.tensor
              (Base.Ndarray.of_int_list Base.Dtype.I32 [| 1 |] [ !cur_ids ])
          else if nm = "cur_len" then Runtime.Vm.Shape_val [| !cur_pos |]
          else v)
        names template
    in
    logits_of (Runtime.Vm.run vm sh.Llm.sbuilt.Llm.entry args)
  in
  let last_logits = ref None in
  List.iteri
    (fun i tok ->
      cur_ids := tok;
      cur_pos := i;
      last_logits := Some (step ()))
    prompt;
  let out = ref [] in
  for i = 1 to gen do
    let next = argmax (Option.get !last_logits) in
    out := next :: !out;
    if i < gen then begin
      cur_ids := next;
      cur_pos := List.length prompt + i - 1;
      last_logits := Some (step ())
    end
  done;
  (List.rev !out, Option.get !last_logits)

let bit_equal a b =
  a.Base.Ndarray.shape = b.Base.Ndarray.shape
  && a.Base.Ndarray.data = b.Base.Ndarray.data

(* ---------- timed step report ---------- *)

type step_report = {
  tp : int;
  strategy : Llm.tp_strategy;
  serial_us : float;
  parallel_us : float;
  comm_us : float;
  collectives : int;
  per_device_us : (string * float) list;
}

let step_report ?(strategy = Llm.Gather) cfg ~batch ~tp ~ctx ~device () =
  let { sh; prog } = compile_decode ~strategy cfg ~batch ~tp ~device in
  let prof = Runtime.Profiler.create () in
  let vm =
    Runtime.Vm.create ~trace:(Runtime.Profiler.sink prof) (`Timed device) prog
  in
  let built = sh.Llm.sbuilt in
  ignore
    (Runtime.Vm.run vm built.Llm.entry
       (Llm.args_for built ~ctx ~mode:`Shadow ()));
  let serial = Runtime.Profiler.total_time_us prof in
  let comm = Runtime.Profiler.comm_time_us prof in
  let split = Runtime.Profiler.device_split prof in
  let shard_us =
    List.filter_map
      (fun (tag, _, us) ->
        if String.length tag > 1 && tag.[0] = 'g' then Some us else None)
      split
  in
  let shared_us =
    List.fold_left
      (fun acc (tag, _, us) -> if tag = "shared" then acc +. us else acc)
      0.0 split
  in
  (* Parallel wall-clock for one step: replicated work runs on every
     device concurrently (it costs one copy of itself), shard work
     costs its slowest device, collectives serialize on the link. *)
  let parallel =
    match shard_us with
    | [] -> serial
    | us -> shared_us +. List.fold_left Float.max 0.0 us +. comm
  in
  {
    tp = sh.Llm.tp;
    strategy;
    serial_us = serial;
    parallel_us = parallel;
    comm_us = comm;
    collectives = Runtime.Profiler.collective_count prof;
    per_device_us = List.map (fun (tag, _, us) -> (tag, us)) split;
  }

let report_to_string r =
  Printf.sprintf
    "tp=%d %s: step %.1f us parallel (%.1f us serialized, comm %.1f us in %d \
     collectives)%s"
    r.tp
    (match r.strategy with Llm.Gather -> "gather" | Llm.Reduce -> "reduce")
    r.parallel_us r.serial_us r.comm_us r.collectives
    (match r.per_device_us with
    | [] -> ""
    | split ->
        "\n  "
        ^ String.concat ", "
            (List.map (fun (tag, us) -> Printf.sprintf "%s %.1f us" tag us) split))
