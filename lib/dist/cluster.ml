(* Replicated serving cluster: a router spreads one request stream
   across M independent Serve.Scheduler replicas, then each replica
   runs to completion on its own engine (own block manager, own
   clock). Dispatch is decided up front from per-replica backlog
   estimates (Scheduler.estimate_request_us), so it is deterministic
   and cheap — the golden routing tests pin the exact sequence. *)

module Scheduler = Serve.Scheduler
module Workload = Serve.Workload
module Metrics = Serve.Metrics

type route = Round_robin | Least_loaded | Power_of_two | Prefix_affinity

let route_name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Power_of_two -> "power-of-two"
  | Prefix_affinity -> "prefix-affinity"

let route_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "power-of-two" | "p2c" -> Some Power_of_two
  | "prefix-affinity" | "affinity" -> Some Prefix_affinity
  | _ -> None

type opts = {
  replicas : int;
  route : route;
  affinity_window : int;
  route_seed : int;
  sched : Scheduler.opts;
}

let default_opts =
  {
    replicas = 2;
    route = Round_robin;
    affinity_window = 64;
    route_seed = 0;
    sched = Scheduler.default_opts;
  }

(* 32-bit FNV-1a over token ids (4 little-endian bytes each). Not
   Hashtbl.hash: the routing goldens must not move across OCaml
   versions. *)
let fnv1a tokens =
  let h = ref 0x811c9dc5 in
  List.iter
    (fun tok ->
      let tok = tok land 0xffffffff in
      for b = 0 to 3 do
        h := !h lxor ((tok lsr (8 * b)) land 0xff);
        h := !h * 0x01000193 land 0xffffffff
      done)
    tokens;
  !h

let take n l = List.filteri (fun i _ -> i < n) l

let dispatch ~model opts (w : Workload.t) =
  if opts.replicas < 1 then invalid_arg "Dist.Cluster: replicas < 1";
  let m = opts.replicas in
  (* Estimated absolute time each replica's queue drains. Backlog at a
     request's arrival is max(0, busy_until - arrival): the same
     single-queue estimate for every policy, so policies differ only
     in how they use it. *)
  let busy_until = Array.make m 0.0 in
  let rr = ref 0 in
  let assigned = Hashtbl.create 64 in
  let rng = Random.State.make [| opts.route_seed |] in
  let round_robin () =
    let k = !rr mod m in
    incr rr;
    k
  in
  let backlog k (r : Workload.request) =
    Float.max 0.0 (busy_until.(k) -. r.Workload.arrival_us)
  in
  let least_loaded r =
    let best = ref 0 in
    for k = 1 to m - 1 do
      if backlog k r < backlog !best r then best := k
    done;
    !best
  in
  List.map
    (fun (r : Workload.request) ->
      let pick =
        match r.Workload.fork_of with
        | Some p when Hashtbl.mem assigned p ->
            (* Forks must land where their parent's KV lives. *)
            Hashtbl.find assigned p
        | _ -> (
            match opts.route with
            | Round_robin -> round_robin ()
            | Least_loaded -> least_loaded r
            | Power_of_two ->
                if m = 1 then 0
                else begin
                  let a = Random.State.int rng m in
                  let b = (a + 1 + Random.State.int rng (m - 1)) mod m in
                  if backlog a r <= backlog b r then a else b
                end
            | Prefix_affinity -> (
                match r.Workload.prompt_tokens with
                | Some toks when toks <> [] ->
                    fnv1a (take opts.affinity_window toks) mod m
                | _ -> round_robin ()))
      in
      Hashtbl.replace assigned r.Workload.id pick;
      let est =
        Scheduler.estimate_request_us model
          ~block_size:opts.sched.Scheduler.block_size r
      in
      busy_until.(pick) <-
        Float.max busy_until.(pick) r.Workload.arrival_us +. est;
      (r.Workload.id, pick))
    w

type result = {
  dispatch : (int * int) list;
  replica_results : Scheduler.result array;
  summary : Metrics.summary;
}

let run ?exec ~model opts (w : Workload.t) =
  let disp = dispatch ~model opts w in
  let where = Hashtbl.create 64 in
  List.iter (fun (id, k) -> Hashtbl.replace where id k) disp;
  let subs = Array.make opts.replicas [] in
  List.iter
    (fun (r : Workload.request) ->
      let k = Hashtbl.find where r.Workload.id in
      subs.(k) <- r :: subs.(k))
    w;
  let replica_results =
    Array.map (fun sub -> Scheduler.run ?exec model opts.sched (List.rev sub))
      subs
  in
  let fold f init = Array.fold_left f init replica_results in
  let makespan =
    fold (fun acc r -> Float.max acc r.Scheduler.clock_us) 0.0
  in
  let sum_clock = fold (fun acc r -> acc +. r.Scheduler.clock_us) 0.0 in
  (* Time-weighted over replica activity; a replica that never ran
     contributes nothing. *)
  let weighted f =
    if sum_clock > 0.0 then
      fold (fun acc r -> acc +. (f r.Scheduler.summary *. r.Scheduler.clock_us))
        0.0
      /. sum_clock
    else 0.0
  in
  let sum_i f = fold (fun acc r -> acc + f r.Scheduler.summary) 0 in
  let completed =
    List.concat (Array.to_list (Array.map (fun r -> r.Scheduler.completed) replica_results))
  in
  let summary =
    Metrics.summarize ~makespan_us:makespan
      ~occupancy:(weighted (fun s -> s.Metrics.occupancy))
      ~submitted:(List.length w)
      ~shed:(sum_i (fun s -> s.Metrics.shed))
      ~timeouts:(sum_i (fun s -> s.Metrics.timeouts))
      ~aborted:(sum_i (fun s -> s.Metrics.aborted))
      ~faults:(sum_i (fun s -> s.Metrics.faults))
      ~prefix_hit_rate:(weighted (fun s -> s.Metrics.prefix_hit_rate))
      ~cow_copies:(sum_i (fun s -> s.Metrics.cow_copies))
      ~kv_bytes_per_token:(weighted (fun s -> s.Metrics.kv_bytes_per_token))
      completed
  in
  { dispatch = disp; replica_results; summary }

let to_string opts (r : result) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "cluster: %d replicas, %s routing\n" opts.replicas
       (route_name opts.route));
  Array.iteri
    (fun k (rr : Scheduler.result) ->
      Buffer.add_string b
        (Printf.sprintf
           "  replica %d: %d completed, %.1f ms busy, %.1f tok/s\n" k
           rr.Scheduler.summary.Metrics.completed
           (rr.Scheduler.clock_us /. 1000.0)
           rr.Scheduler.summary.Metrics.tokens_per_s))
    r.replica_results;
  Buffer.add_string b (Metrics.to_string r.summary);
  Buffer.contents b
