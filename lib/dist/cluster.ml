(* Replicated serving cluster: a router spreads one request stream
   across M independent Serve.Scheduler replicas, then each replica
   runs to completion on its own engine (own block manager, own
   clock). Dispatch is decided up front from per-replica backlog
   estimates (Scheduler.estimate_request_us), so it is deterministic
   and cheap — the golden routing tests pin the exact sequence.

   Fault tolerance (DESIGN.md §14). A Runtime.Fault replica plan
   schedules crash / stall / partition windows; Health simulates the
   heartbeat prober against the plan up front, so the health timeline
   — like everything else about routing — is a pure function of
   (workload, policy, seed, plan). With [health_aware] on, routing
   never targets a Down replica and deprioritizes Degraded ones, and
   each detected crash splits the victim replica into "eras": the
   pre-crash era runs with [stop_at] the crash instant, everything it
   drains is re-admitted on surviving replicas (KV recomputed, bounded
   migrations), and the post-recovery era is a fresh engine
   incarnation — an engine restart has no KV either. With it off (the
   health-blind baseline the failover bench compares against), crashed
   replicas run their whole assignment through Scheduler outage
   windows: their queues strand until the engine returns. *)

module Scheduler = Serve.Scheduler
module Workload = Serve.Workload
module Metrics = Serve.Metrics
module Fault = Runtime.Fault
module Trace = Runtime.Trace

type route = Round_robin | Least_loaded | Power_of_two | Prefix_affinity

let route_name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Power_of_two -> "power-of-two"
  | Prefix_affinity -> "prefix-affinity"

let route_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "power-of-two" | "p2c" -> Some Power_of_two
  | "prefix-affinity" | "affinity" -> Some Prefix_affinity
  | _ -> None

type opts = {
  replicas : int;
  route : route;
  affinity_window : int;
  route_seed : int;
  sched : Scheduler.opts;
  replica_faults : Fault.plan;
  health : Health.opts;
  health_aware : bool;
  hedge : bool;
  max_migrations : int;
}

let default_opts =
  {
    replicas = 2;
    route = Round_robin;
    affinity_window = 64;
    route_seed = 0;
    sched = Scheduler.default_opts;
    replica_faults = [];
    health = Health.default_opts;
    health_aware = true;
    hedge = false;
    max_migrations = 2;
  }

(* 32-bit FNV-1a over token ids (4 little-endian bytes each). Not
   Hashtbl.hash: the routing goldens must not move across OCaml
   versions. *)
let fnv1a tokens =
  let h = ref 0x811c9dc5 in
  List.iter
    (fun tok ->
      let tok = tok land 0xffffffff in
      for b = 0 to 3 do
        h := !h lxor ((tok lsr (8 * b)) land 0xff);
        h := !h * 0x01000193 land 0xffffffff
      done)
    tokens;
  !h

let take n l = List.filteri (fun i _ -> i < n) l

(* ---------- the router ----------

   One mutable routing state shared by the up-front dispatch walk and
   (in failover runs) the mid-walk re-admission of drained requests.
   All decisions are deterministic; the only PRNG is the seeded
   power-of-two sampler. When every replica is Healthy at every
   decision point (in particular whenever the fault plan is empty),
   every policy reduces bit-for-bit to its pre-failover behavior — the
   existing routing goldens pin that. *)

type router = {
  busy_until : float array;
  mutable rr : int;
  rng : Random.State.t;
  assigned : (int, int) Hashtbl.t;  (* request id -> current replica *)
}

let make_router opts =
  {
    busy_until = Array.make opts.replicas 0.0;
    rr = 0;
    rng = Random.State.make [| opts.route_seed |];
    assigned = Hashtbl.create 64;
  }

(* Health penalty for routing order: prefer Healthy, then
   Degraded/Recovering, never Down unless nothing else is up. *)
let penalty = function
  | Health.Healthy -> 0
  | Health.Degraded | Health.Recovering -> 1
  | Health.Down -> 2

let route_pick ~opts ~rt ~state ~aware (r : Workload.request) ~t =
  let m = opts.replicas in
  let backlog k = Float.max 0.0 (rt.busy_until.(k) -. t) in
  let round_robin_legacy () =
    let k = rt.rr mod m in
    rt.rr <- rt.rr + 1;
    k
  in
  let round_robin_aware () =
    let start = rt.rr in
    rt.rr <- rt.rr + 1;
    let first_with p =
      let rec go i =
        if i >= m then None
        else
          let k = (start + i) mod m in
          if penalty (state k t) = p then Some k else go (i + 1)
      in
      go 0
    in
    match first_with 0 with
    | Some k -> k
    | None -> (
        match first_with 1 with Some k -> k | None -> start mod m)
  in
  let least_loaded_legacy () =
    let best = ref 0 in
    for k = 1 to m - 1 do
      if backlog k < backlog !best then best := k
    done;
    !best
  in
  let least_loaded_aware () =
    let best = ref 0 in
    let key k = (penalty (state k t), backlog k) in
    for k = 1 to m - 1 do
      if key k < key !best then best := k
    done;
    !best
  in
  match opts.route with
  | Round_robin -> if aware then round_robin_aware () else round_robin_legacy ()
  | Least_loaded -> if aware then least_loaded_aware () else least_loaded_legacy ()
  | Power_of_two ->
      if not aware then
        if m = 1 then 0
        else begin
          let a = Random.State.int rt.rng m in
          let b = (a + 1 + Random.State.int rt.rng (m - 1)) mod m in
          if backlog a <= backlog b then a else b
        end
      else begin
        let avail =
          List.filter (fun k -> state k t <> Health.Down) (List.init m Fun.id)
        in
        match avail with
        | [] -> least_loaded_aware ()
        | [ k ] -> k
        | _ ->
            let n = List.length avail in
            let a = List.nth avail (Random.State.int rt.rng n) in
            let b =
              List.nth avail
                ((List.length (List.filter (fun k -> k < a) avail)
                 + 1
                 + Random.State.int rt.rng (n - 1))
                mod n)
            in
            let pa = penalty (state a t) and pb = penalty (state b t) in
            if pa < pb then a
            else if pb < pa then b
            else if backlog a <= backlog b then a
            else b
      end
  | Prefix_affinity -> (
      match r.Workload.prompt_tokens with
      | Some toks when toks <> [] ->
          let h = fnv1a (take opts.affinity_window toks) mod m in
          if (not aware) || state h t = Health.Healthy then h
          else begin
            (* Deterministic fallback: the hash home unless it is not
               fully Healthy, then the next-healthiest replica —
               ordered by (health, backlog, scan distance from h) so a
               hot home's sessions re-spread over the survivors
               instead of piling onto h+1. *)
            let best = ref h and best_key = ref (penalty Health.Down + 1, 0.0) in
            for i = 0 to m - 1 do
              let k = (h + i) mod m in
              let key = (penalty (state k t), backlog k) in
              if key < !best_key then begin
                best := k;
                best_key := key
              end
            done;
            !best
          end
      | _ -> if aware then round_robin_aware () else round_robin_legacy ())

(* Legacy-exact backlog bump: max(busy, arrival) + estimate. *)
let note_assign ~model ~opts ~rt k (r : Workload.request) =
  let est =
    Scheduler.estimate_request_us model
      ~block_size:opts.sched.Scheduler.block_size r
  in
  rt.busy_until.(k) <-
    Float.max rt.busy_until.(k) r.Workload.arrival_us +. est

let pick_for ~opts ~rt ~state ~aware (r : Workload.request) ~t =
  match r.Workload.fork_of with
  | Some p when Hashtbl.mem rt.assigned p ->
      (* Forks must land where their parent's KV lives — unless that
         replica is currently believed Down. *)
      let pk = Hashtbl.find rt.assigned p in
      if aware && state pk t = Health.Down then
        route_pick ~opts ~rt ~state ~aware r ~t
      else pk
  | _ -> route_pick ~opts ~rt ~state ~aware r ~t

(* Probe horizon: past every arrival and fault window, plus slack for
   detection and half-open recovery to land. *)
let probe_horizon opts (w : Workload.t) =
  let last_arrival =
    List.fold_left
      (fun acc (r : Workload.request) -> Float.max acc r.Workload.arrival_us)
      0.0 w
  in
  let last_window =
    List.fold_left
      (fun acc (win : Fault.window) -> Float.max acc win.Fault.until_us)
      0.0 opts.replica_faults
  in
  Float.max last_arrival last_window
  +. (4.0 *. opts.health.Health.max_backoff_us)
  +. (float_of_int
        (opts.health.Health.down_after + opts.health.Health.recover_after + 4)
     *. opts.health.Health.heartbeat_us)

let timeline_of opts w =
  if opts.replica_faults = [] then []
  else
    Health.timeline opts.health ~plan:opts.replica_faults
      ~replicas:opts.replicas ~horizon_us:(probe_horizon opts w)

let dispatch ~model opts (w : Workload.t) =
  if opts.replicas < 1 then invalid_arg "Dist.Cluster: replicas < 1";
  let tl = timeline_of opts w in
  let state k t = Health.state_at tl ~replica:k ~t_us:t in
  let aware = opts.health_aware in
  let rt = make_router opts in
  List.map
    (fun (r : Workload.request) ->
      let pick = pick_for ~opts ~rt ~state ~aware r ~t:r.Workload.arrival_us in
      Hashtbl.replace rt.assigned r.Workload.id pick;
      note_assign ~model ~opts ~rt pick r;
      (r.Workload.id, pick))
    w

(* ---------- crash-era bookkeeping ---------- *)

(* Merge a replica's crash windows into maximal disjoint spans. *)
let merged_crash_spans plan ~replica =
  Fault.plan_windows plan ~replica ~rkind:Fault.Replica_crash ()
  |> List.map (fun (w : Fault.window) -> (w.Fault.from_us, w.Fault.until_us))
  |> List.sort compare
  |> List.fold_left
       (fun acc (a, b) ->
         match acc with
         | (pa, pb) :: rest when a <= pb -> (pa, Float.max pb b) :: rest
         | _ -> (a, b) :: acc)
       []
  |> List.rev

let stall_windows plan ~replica =
  Fault.plan_windows plan ~replica ~rkind:Fault.Replica_stall ()
  |> List.map (fun (w : Fault.window) ->
         (w.Fault.from_us, w.Fault.until_us, w.Fault.factor))

type crash_event = {
  ce_replica : int;
  ce_crash_us : float;  (* the engine died here *)
  ce_detect_us : float;  (* the health model marked it Down here *)
  ce_rejoin_us : float option;  (* first non-Down after detection *)
}

(* A crash window is *detected* iff the health model transitions to
   Down while the window is still open (consecutive probe misses fit
   inside it). Undetected blips are handled engine-side as Scheduler
   outage windows instead — nothing drains for them. *)
let crash_events opts tl =
  List.init opts.replicas (fun k ->
      merged_crash_spans opts.replica_faults ~replica:k
      |> List.filter_map (fun (tc, tce) ->
             let detect =
               match
                 List.find_opt
                   (fun (x : Health.transition) ->
                     x.Health.replica = k && x.Health.state = Health.Down
                     && x.Health.t_us >= tc && x.Health.t_us < tce)
                   tl
               with
               | Some x -> Some x.Health.t_us
               | None ->
                   if Health.state_at tl ~replica:k ~t_us:tc = Health.Down then
                     Some tc (* already believed down (e.g. partition) *)
                   else None
             in
             match detect with
             | None -> None
             | Some td ->
                 let tr =
                   List.find_opt
                     (fun (x : Health.transition) ->
                       x.Health.replica = k && x.Health.state <> Health.Down
                       && x.Health.t_us >= td)
                     tl
                   |> Option.map (fun (x : Health.transition) -> x.Health.t_us)
                 in
                 Some
                   {
                     ce_replica = k;
                     ce_crash_us = tc;
                     ce_detect_us = td;
                     ce_rejoin_us = tr;
                   }))
  |> List.concat
  |> List.sort (fun a b ->
         match compare a.ce_detect_us b.ce_detect_us with
         | 0 -> compare a.ce_replica b.ce_replica
         | c -> c)

let undetected_outages opts tl ~replica =
  let detected =
    crash_events opts tl
    |> List.filter (fun ce -> ce.ce_replica = replica)
    |> List.map (fun ce -> ce.ce_crash_us)
  in
  merged_crash_spans opts.replica_faults ~replica
  |> List.filter (fun (a, _) -> not (List.mem a detected))

(* ---------- the cluster run ---------- *)

type replica_report = {
  eras : (float * Scheduler.result) list;
      (* (era start, result) in time order; one era when the replica
         never crashed *)
  downtime_us : float;
}

type result = {
  dispatch : (int * int) list;
  hedged : (int * int) list;
  migrations : (int * int * int) list;
  replica_reports : replica_report array;
  health : Health.transition list;
  summary : Metrics.summary;
}

let run ?trace ?exec ~model opts (w : Workload.t) =
  if opts.replicas < 1 then invalid_arg "Dist.Cluster: replicas < 1";
  let m = opts.replicas in
  let plan = opts.replica_faults in
  let aware = opts.health_aware in
  let tl = timeline_of opts w in
  let state k t = Health.state_at tl ~replica:k ~t_us:t in
  let emit tag ~id ~t ~batch ~tokens =
    match trace with
    | None -> ()
    | Some sink -> sink (Trace.Serve { tag; id; t_us = t; batch; tokens })
  in
  (* Record the scheduled windows and the health transitions they
     cause up front — the plan is part of the run's configuration. *)
  (match trace with
  | None -> ()
  | Some sink ->
      List.iteri
        (fun i win -> sink (Trace.Fault_injected (Fault.window_event ~seq:i win)))
        plan);
  if plan <> [] then begin
    let horizon = probe_horizon opts w in
    for k = 0 to m - 1 do
      List.iter
        (fun (a, b) ->
          emit `Replica_down ~id:k ~t:a ~batch:0 ~tokens:0;
          if b < horizon then emit `Replica_up ~id:k ~t:b ~batch:0 ~tokens:0)
        (Health.down_spans tl ~replica:k ~horizon_us:horizon)
    done
  end;
  let rt = make_router opts in
  let sched_for k =
    if plan = [] then opts.sched
    else
      {
        opts.sched with
        Scheduler.slowdowns = stall_windows plan ~replica:k;
        outages =
          (if aware then undetected_outages opts tl ~replica:k
           else merged_crash_spans plan ~replica:k);
      }
  in
  (* Era state. *)
  let era_start = Array.make m 0.0 in
  let era_acc = Array.make m [] in
  let eras_done = Array.make m [] in
  let disp_acc = ref [] in
  let hedged = ref [] in
  let migrations = ref [] in
  let mig_aborted = ref [] in
  let migcount = Hashtbl.create 16 in
  let orig_arrival = Hashtbl.create 16 in
  let assign k (r : Workload.request) =
    era_acc.(k) <- r :: era_acc.(k);
    note_assign ~model ~opts ~rt k r
  in
  let hedge_target pick t =
    let best = ref None in
    for k = 0 to m - 1 do
      if k <> pick && state k t = Health.Healthy then
        let b = Float.max 0.0 (rt.busy_until.(k) -. t) in
        match !best with
        | Some (_, bb) when bb <= b -> ()
        | _ -> best := Some (k, b)
    done;
    Option.map fst !best
  in
  let route_original (r : Workload.request) =
    let t = r.Workload.arrival_us in
    let pick = pick_for ~opts ~rt ~state ~aware r ~t in
    Hashtbl.replace rt.assigned r.Workload.id pick;
    disp_acc := (r.Workload.id, pick) :: !disp_acc;
    assign pick r;
    if
      opts.hedge && aware
      && (match state pick t with
         | Health.Degraded | Health.Recovering -> true
         | Health.Healthy | Health.Down -> false)
    then
      match hedge_target pick t with
      | Some hk ->
          hedged := (r.Workload.id, hk) :: !hedged;
          emit `Hedge ~id:r.Workload.id ~t ~batch:hk ~tokens:0;
          assign hk r
      | None -> ()
  in
  let run_era ?stop_at k =
    let sub =
      List.stable_sort
        (fun (a : Workload.request) (b : Workload.request) ->
          compare a.Workload.arrival_us b.Workload.arrival_us)
        (List.rev era_acc.(k))
    in
    era_acc.(k) <- [];
    let res = Scheduler.run ?exec ?stop_at model (sched_for k) sub in
    eras_done.(k) <- (era_start.(k), res) :: eras_done.(k);
    res
  in
  let process_crash ce =
    let k = ce.ce_replica in
    let res = run_era ~stop_at:ce.ce_crash_us k in
    era_start.(k) <-
      (match ce.ce_rejoin_us with Some tr -> tr | None -> Float.infinity);
    let td = ce.ce_detect_us in
    List.iter
      (fun (d : Workload.request) ->
        let n =
          (Option.value (Hashtbl.find_opt migcount d.Workload.id) ~default:0)
          + 1
        in
        Hashtbl.replace migcount d.Workload.id n;
        if not (Hashtbl.mem orig_arrival d.Workload.id) then
          Hashtbl.replace orig_arrival d.Workload.id d.Workload.arrival_us;
        if n > opts.max_migrations then
          mig_aborted := d.Workload.id :: !mig_aborted
        else begin
          let pick = route_pick ~opts ~rt ~state ~aware d ~t:td in
          (* A migrant waits out the destination's own downtime if it
             was forced onto a not-yet-recovered replica. *)
          let arrival =
            if Float.is_finite era_start.(pick) then
              Float.max td era_start.(pick)
            else td
          in
          let d' = { d with Workload.arrival_us = arrival } in
          migrations := (d.Workload.id, k, pick) :: !migrations;
          emit `Failover ~id:d.Workload.id ~t:td ~batch:pick ~tokens:0;
          Hashtbl.replace rt.assigned d.Workload.id pick;
          assign pick d'
        end)
      res.Scheduler.drained
  in
  (* Merged walk: arrivals in order, crash detections interleaved at
     their detection times (arrivals tie-break first — a request
     landing exactly at the detection instant is routed against the
     already-Down state either way). *)
  let crashes = if aware then crash_events opts tl else [] in
  let rec walk arrivals crashes =
    match (arrivals, crashes) with
    | [], [] -> ()
    | (a : Workload.request) :: arest, [] ->
        route_original a;
        walk arest []
    | [], ce :: crest ->
        process_crash ce;
        walk [] crest
    | (a : Workload.request) :: arest, ce :: crest ->
        if a.Workload.arrival_us <= ce.ce_detect_us then begin
          route_original a;
          walk arest crashes
        end
        else begin
          process_crash ce;
          walk arrivals crest
        end
  in
  walk w crashes;
  (* Final era of every replica (the only era when nothing crashed). *)
  for k = 0 to m - 1 do
    ignore (run_era k)
  done;
  let reports_eras = Array.map List.rev eras_done in
  (* ---------- fold ---------- *)
  let fold_eras f init =
    Array.fold_left (fun acc eras -> List.fold_left f acc eras) init
      reports_eras
  in
  let makespan =
    fold_eras (fun acc (_, r) -> Float.max acc r.Scheduler.clock_us) 0.0
  in
  let dur (start, (r : Scheduler.result)) =
    Float.max 0.0 (r.Scheduler.clock_us -. start)
  in
  let sum_dur = fold_eras (fun acc e -> acc +. dur e) 0.0 in
  (* Time-weighted over replica activity; a replica that never ran
     contributes nothing. *)
  let weighted f =
    if sum_dur > 0.0 then
      fold_eras (fun acc ((_, r) as e) -> acc +. (f r.Scheduler.summary *. dur e))
        0.0
      /. sum_dur
    else 0.0
  in
  let sum_i f = fold_eras (fun acc (_, r) -> acc + f r.Scheduler.summary) 0 in
  (* Winner per request id: hedged duplicates (and rare crash-window
     double completions) resolve to the earliest finish. *)
  let tagged =
    List.concat
      (List.mapi
         (fun k eras ->
           List.concat_map
             (fun (_, (r : Scheduler.result)) ->
               List.map (fun rm -> (k, rm)) r.Scheduler.completed)
             eras)
         (Array.to_list reports_eras))
  in
  let winners = Hashtbl.create 64 in
  List.iter
    (fun ((_, (rm : Metrics.request_metrics)) as entry) ->
      match Hashtbl.find_opt winners rm.Metrics.id with
      | Some (_, (cur : Metrics.request_metrics))
        when cur.Metrics.finish_us <= rm.Metrics.finish_us ->
          ()
      | _ -> Hashtbl.replace winners rm.Metrics.id entry)
    tagged;
  let completed =
    List.filter_map
      (fun ((_, (rm : Metrics.request_metrics)) as entry) ->
        match Hashtbl.find_opt winners rm.Metrics.id with
        | Some e when e == entry ->
            (* Migrated requests keep their original arrival so the
               latency percentiles charge the full pre-crash wait. *)
            Some
              (match Hashtbl.find_opt orig_arrival rm.Metrics.id with
              | Some a -> { rm with Metrics.arrival_us = a }
              | None -> rm)
        | _ -> None)
      tagged
  in
  let hedge_wins =
    List.filter
      (fun (id, hk) ->
        match Hashtbl.find_opt winners id with
        | Some (k, (rm : Metrics.request_metrics)) when k = hk ->
            emit `Hedge_win ~id ~t:rm.Metrics.finish_us ~batch:hk ~tokens:0;
            true
        | _ -> false)
      (List.rev !hedged)
    |> List.length
  in
  (* Terminal resolution per id: completed beats aborted beats shed —
     a hedge or migration that saved a request means it was not lost. *)
  let ab = Hashtbl.create 16 and sh = Hashtbl.create 16 in
  let note tbl id =
    if
      (not (Hashtbl.mem winners id))
      && (not (Hashtbl.mem ab id))
      && not (Hashtbl.mem sh id)
    then Hashtbl.replace tbl id ()
  in
  fold_eras
    (fun () (_, (r : Scheduler.result)) ->
      List.iter (note ab) r.Scheduler.aborted)
    ();
  List.iter (note ab) (List.rev !mig_aborted);
  fold_eras
    (fun () (_, (r : Scheduler.result)) -> List.iter (note sh) r.Scheduler.shed)
    ();
  let shed = Hashtbl.length sh and aborted = Hashtbl.length ab in
  let timeouts = min (sum_i (fun s -> s.Metrics.timeouts)) shed in
  let fired_windows =
    List.length
      (List.filter (fun (win : Fault.window) -> win.Fault.from_us <= makespan)
         plan)
  in
  let downtime k =
    if plan = [] then 0.0
    else Health.downtime_us tl ~replica:k ~horizon_us:makespan
  in
  let failover_ids = Hashtbl.create 16 in
  List.iter (fun (id, _, _) -> Hashtbl.replace failover_ids id ()) !migrations;
  let summary =
    Metrics.summarize ~makespan_us:makespan
      ~occupancy:(weighted (fun s -> s.Metrics.occupancy))
      ~submitted:(List.length w) ~shed ~timeouts ~aborted
      ~faults:(sum_i (fun s -> s.Metrics.faults) + fired_windows)
      ~prefix_hit_rate:(weighted (fun s -> s.Metrics.prefix_hit_rate))
      ~cow_copies:(sum_i (fun s -> s.Metrics.cow_copies))
      ~kv_bytes_per_token:(weighted (fun s -> s.Metrics.kv_bytes_per_token))
      ~failovers:(Hashtbl.length failover_ids)
      ~migrations:(List.length !migrations)
      ~hedges:(List.length !hedged)
      ~hedge_wins
      ~replica_downtime_us:
        (List.fold_left
           (fun acc k -> acc +. downtime k)
           0.0
           (List.init m Fun.id))
      completed
  in
  {
    dispatch = List.rev !disp_acc;
    hedged = List.rev !hedged;
    migrations = List.rev !migrations;
    replica_reports =
      Array.init m (fun k ->
          { eras = reports_eras.(k); downtime_us = downtime k });
    health = tl;
    summary;
  }

let to_string opts (r : result) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "cluster: %d replicas, %s routing\n" opts.replicas
       (route_name opts.route));
  Array.iteri
    (fun k (rep : replica_report) ->
      let completed =
        List.fold_left
          (fun acc (_, (er : Scheduler.result)) ->
            acc + er.Scheduler.summary.Metrics.completed)
          0 rep.eras
      in
      let busy =
        List.fold_left
          (fun acc ((start, (er : Scheduler.result)) : float * _) ->
            acc +. Float.max 0.0 (er.Scheduler.clock_us -. start))
          0.0 rep.eras
      in
      let tokens =
        List.fold_left
          (fun acc (_, (er : Scheduler.result)) ->
            List.fold_left
              (fun a (rm : Metrics.request_metrics) -> a + rm.Metrics.tokens)
              acc er.Scheduler.completed)
          0 rep.eras
      in
      let tok_s =
        if busy > 0.0 then float_of_int tokens /. (busy /. 1e6) else 0.0
      in
      Buffer.add_string b
        (Printf.sprintf "  replica %d: %d completed, %.1f ms busy, %.1f tok/s%s\n"
           k completed (busy /. 1000.0) tok_s
           (if rep.downtime_us > 0.0 then
              Printf.sprintf ", down %.1f ms" (rep.downtime_us /. 1000.0)
            else "")))
    r.replica_reports;
  Buffer.add_string b (Metrics.to_string r.summary);
  Buffer.contents b
