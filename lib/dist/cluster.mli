(** Replicated serving cluster: one request stream spread across M
    independent {!Serve.Scheduler} replicas — data parallelism over
    requests, with cluster-level fault tolerance (DESIGN.md §14).

    Routing is decided deterministically in a single up-front walk:
    the router keeps a per-replica backlog estimate (queued work from
    {!Serve.Scheduler.estimate_request_us} — no engine runs during
    routing) and assigns each request as it arrives; then every
    replica serves its share with a private engine (own block manager,
    own clock, own metrics) and the per-replica results fold into one
    cluster summary whose makespan is the slowest replica's clock.

    Best-of-n forks always follow their parent's replica under every
    policy (a fork only shares KV with a parent on the same engine) —
    unless that replica is currently believed Down.

    {2 Fault tolerance}

    [opts.replica_faults] arms a {!Runtime.Fault} replica plan (crash
    / stall / partition windows). {!Health} simulates the heartbeat
    prober against the plan up front, so the per-replica health
    timeline — like everything else about routing — is a pure function
    of (workload, policy, seed, plan).

    With [health_aware = true] (default):
    - no policy routes to a replica believed [Down]; [Degraded]
      replicas are deprioritized ({!Prefix_affinity} keeps its hash
      home while it is [Healthy], else falls back to the
      next-healthiest replica deterministically — ordered by health,
      then estimated backlog, then scan distance from the home — so a
      hot home's sessions re-spread over the survivors);
    - each {e detected} crash splits the victim into eras: the
      pre-crash era runs with [stop_at] at the crash instant, and the
      requests it drains re-enter routing at the detection time on
      surviving replicas, KV recomputed from scratch (vLLM-style
      recompute preemption lifted across replicas). Each request
      migrates at most [max_migrations] times; past that it is
      aborted. The post-recovery era is a fresh engine incarnation —
      a restarted engine has no KV either, so era isolation is the
      correct restart semantics, not an approximation;
    - crash blips too short for the prober to detect are handed to
      the era run as engine-side outage windows instead — nothing
      drains, nothing is lost;
    - [hedge = true] additionally duplicates any request routed to a
      [Degraded] / [Recovering] replica onto the least-backlogged
      [Healthy] one; whichever copy finishes first wins (duplicates
      deduplicate in the fold, counted as [hedge_wins] when the hedge
      copy won).

    With [health_aware = false] — the health-blind baseline the
    failover bench compares against — routing ignores the plan
    entirely and each crashed replica runs its whole assignment
    through {!Serve.Scheduler} outage windows: its queue strands
    until the engine restarts. Stall windows degrade step time
    identically on both paths.

    When every replica is [Healthy] at every decision point (in
    particular whenever [replica_faults = []]), every policy routes
    bit-for-bit as the pre-failover cluster did and the folded
    summary is byte-identical — the routing goldens and the
    cluster-of-one test pin this. *)

type route =
  | Round_robin  (** arrival order modulo M *)
  | Least_loaded  (** smallest estimated backlog at arrival; ties
                      break to the lowest replica index *)
  | Power_of_two
      (** sample two distinct replicas from the seeded router PRNG,
          take the less loaded (ties keep the first draw) *)
  | Prefix_affinity
      (** FNV-1a hash of the first [affinity_window] prompt tokens
          modulo M, so requests sharing a prompt prefix land on the
          same replica and hit its KV prefix cache; requests without
          [prompt_tokens] fall back to round-robin *)

val route_name : route -> string
val route_of_string : string -> route option
(** Accepts the [route_name] forms plus the short aliases
    [rr]/[ll]/[p2c]/[affinity]. *)

type opts = {
  replicas : int;
  route : route;
  affinity_window : int;
      (** prompt-prefix length hashed by {!Prefix_affinity}; must
          exceed the shared system-prompt length for chat workloads
          to spread across replicas at all *)
  route_seed : int;  (** PRNG seed for {!Power_of_two} *)
  sched : Serve.Scheduler.opts;  (** per-replica engine options *)
  replica_faults : Runtime.Fault.plan;
      (** scheduled replica-scoped fault windows; [[]] (default)
          disarms every fault-tolerance path — routing, era splitting
          and the fold are then byte-identical to the pre-failover
          cluster *)
  health : Health.opts;  (** heartbeat prober configuration *)
  health_aware : bool;
      (** [false]: health-blind routing + engine outage windows (the
          naive baseline). Default [true]. *)
  hedge : bool;
      (** duplicate requests routed to Degraded replicas onto the
          least-backlogged Healthy one; earliest finish wins.
          Default [false]. *)
  max_migrations : int;
      (** per-request failover budget; a request drained more than
          this many times is aborted. Default 2. *)
}

val default_opts : opts
(** 2 replicas, round-robin, 64-token affinity window, seed 0,
    {!Serve.Scheduler.default_opts} engines, no fault plan,
    {!Health.default_opts}, health-aware, no hedging, 2 migrations. *)

val fnv1a : int list -> int
(** 32-bit FNV-1a over token ids (4 little-endian bytes each) —
    stable across OCaml versions, unlike [Hashtbl.hash]. *)

val dispatch :
  model:Serve.Scheduler.model ->
  opts ->
  Serve.Workload.t ->
  (int * int) list
(** The routing phase alone: [(request id, replica)] in arrival
    order, health-aware against the precomputed timeline but with no
    engines run — so no failover re-admission happens here. The
    determinism golden pins this: same (workload, policy, seed, plan)
    → byte-equal decisions, even as the healthy set changes
    mid-stream. Runs nothing beyond the shared cost-model VMs.
    @raise Invalid_argument if [replicas < 1]. *)

type replica_report = {
  eras : (float * Serve.Scheduler.result) list;
      (** (era start, era result) in time order; era clocks are
          absolute cluster time. One era when the replica never
          crashed; a detected crash ends an era (its result carries
          the drained set) and recovery starts the next. *)
  downtime_us : float;
      (** total time the health model held the replica [Down],
          clipped to the cluster makespan; 0.0 with no plan *)
}

type result = {
  dispatch : (int * int) list;
      (** realized primary routing, in workload order. With faults
          armed this is what actually ran — mid-walk failover bumps
          the backlog estimates later decisions see, so it can differ
          from what {!dispatch} (routing alone) would pick. *)
  hedged : (int * int) list;
      (** (request id, hedge replica) per duplicated dispatch *)
  migrations : (int * int * int) list;
      (** (request id, from, to) per failover re-admission, in
          detection order *)
  replica_reports : replica_report array;
  health : Health.transition list;  (** the full health timeline *)
  summary : Serve.Metrics.summary;
      (** cluster fold: makespan = slowest era end, counters summed,
          rates time-weighted by era duration, percentiles over the
          merged per-request metrics — deduplicated by earliest
          finish (hedges), migrated requests charged from their
          {e original} arrival — plus the failover counters
          ([failovers] / [migrations] / [hedges] / [hedge_wins] /
          [replica_downtime_us]) *)
}

val run :
  ?trace:Runtime.Trace.sink ->
  ?exec:Serve.Scheduler.exec ->
  model:Serve.Scheduler.model ->
  opts ->
  Serve.Workload.t ->
  result
(** Route, serve every era, fold. Replicas share [model]
    (compilations and memoized step costs are reused; all run-time
    state is per-{!Serve.Scheduler.run}), so a cluster run costs the
    engine loops, not M compilations. [trace] receives cluster-level
    events only (per-replica engine streams are not forwarded):
    {!Runtime.Trace.Fault_injected} per scheduled window, then
    [`Replica_down] / [`Replica_up] per health down-span (id =
    replica index), [`Failover] per migration (id = request, batch =
    destination replica), [`Hedge] / [`Hedge_win] when hedging.
    @raise Invalid_argument if [replicas < 1]. *)

val to_string : opts -> result -> string
(** Per-replica utilization lines (completed, busy time summed over
    eras, tok/s, downtime when nonzero) followed by the folded
    cluster summary. *)
