(** Replicated serving cluster: a deterministic router over M
    independent {!Serve.Scheduler} replicas.

    Dispatch happens in two phases. First the router walks the
    workload in arrival order and assigns every request to a replica,
    maintaining a per-replica backlog estimate from
    {!Serve.Scheduler.estimate_request_us} (a single-queue drain
    estimate — no engine runs during routing, so the dispatch
    sequence is a pure function of workload, policy and seed, which
    the golden tests pin). Then each replica serves its sub-stream to
    completion with its own engine — own block manager, own clock,
    own metrics — and the per-replica summaries fold into one cluster
    summary whose makespan is the slowest replica's clock.

    Best-of-n forks always follow their parent's replica under every
    policy: a fork only shares KV with a parent on the same engine. *)

type route =
  | Round_robin  (** arrival order modulo M *)
  | Least_loaded  (** smallest estimated backlog at arrival; ties
                      break to the lowest replica index *)
  | Power_of_two
      (** sample two distinct replicas from the seeded router PRNG,
          take the less loaded (ties keep the first draw) *)
  | Prefix_affinity
      (** FNV-1a hash of the first [affinity_window] prompt tokens
          modulo M, so requests sharing a prompt prefix land on the
          same replica and hit its KV prefix cache; requests without
          [prompt_tokens] fall back to round-robin *)

val route_name : route -> string
val route_of_string : string -> route option
(** Accepts the [route_name] forms plus the short aliases
    [rr]/[ll]/[p2c]/[affinity]. *)

type opts = {
  replicas : int;
  route : route;
  affinity_window : int;
      (** prompt-prefix length hashed by {!Prefix_affinity}; must
          exceed the shared system-prompt length for chat workloads
          to spread across replicas at all *)
  route_seed : int;  (** PRNG seed for {!Power_of_two} *)
  sched : Serve.Scheduler.opts;  (** per-replica engine options *)
}

val default_opts : opts
(** 2 replicas, round-robin, 64-token affinity window, seed 0,
    {!Serve.Scheduler.default_opts} engines. *)

val fnv1a : int list -> int
(** 32-bit FNV-1a over token ids (4 little-endian bytes each) —
    stable across OCaml versions, unlike [Hashtbl.hash]. *)

val dispatch :
  model:Serve.Scheduler.model ->
  opts ->
  Serve.Workload.t ->
  (int * int) list
(** The routing phase alone: [(request id, replica)] in arrival
    order. Runs nothing beyond the shared cost-model VMs. *)

type result = {
  dispatch : (int * int) list;
  replica_results : Serve.Scheduler.result array;
  summary : Serve.Metrics.summary;
      (** cluster fold: makespan = slowest replica, counters summed,
          rates time-weighted by replica activity, percentiles over
          the merged per-request metrics *)
}

val run :
  ?exec:Serve.Scheduler.exec ->
  model:Serve.Scheduler.model ->
  opts ->
  Serve.Workload.t ->
  result
(** Route, then serve every replica's sub-stream to completion.
    Replicas share [model] (compilations and memoized step costs are
    reused; all run-time state is per-{!Serve.Scheduler.run}), so a
    cluster run costs M engine loops, not M compilations. *)

val to_string : opts -> result -> string
(** Per-replica load lines followed by the cluster summary. *)
