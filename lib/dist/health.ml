(* Per-replica health state machine, driven by simulated heartbeat
   probes against a Runtime.Fault replica plan.

   The key property exploited by the cluster: the fault plan is fixed
   up front and probe outcomes depend only on the plan (a probe fails
   iff a crash or partition window covers it; it is slow iff a stall
   window does), never on serving load. So the whole health timeline
   can be computed deterministically before any request is routed, and
   routing stays a pure function of (workload, policy, seed, plan) —
   the same discipline that makes the dispatch goldens stable. *)

type state = Healthy | Degraded | Down | Recovering

let state_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Down -> "down"
  | Recovering -> "recovering"

type opts = {
  heartbeat_us : float;
  down_after : int;
  recover_after : int;
  backoff_us : float;
  backoff_mult : float;
  max_backoff_us : float;
}

let default_opts =
  {
    heartbeat_us = 10_000.0;
    down_after = 2;
    recover_after = 2;
    backoff_us = 20_000.0;
    backoff_mult = 2.0;
    max_backoff_us = 160_000.0;
  }

type transition = { t_us : float; replica : int; state : state }

let replica_timeline opts ~plan ~replica ~horizon_us =
  let out = ref [] in
  let emit t state = out := { t_us = t; replica; state } :: !out in
  let state = ref Healthy in
  let fails = ref 0 and goods = ref 0 in
  let backoff = ref opts.backoff_us in
  let t = ref opts.heartbeat_us in
  while !t <= horizon_us do
    let ok =
      (not (Runtime.Fault.crashed_at plan ~replica ~t_us:!t))
      && not (Runtime.Fault.partitioned_at plan ~replica ~t_us:!t)
    in
    let slow =
      ok && Runtime.Fault.stall_factor_at plan ~replica ~t_us:!t > 1.0
    in
    (match !state with
    | Down ->
        (* circuit open: this probe is the half-open trial *)
        if ok then begin
          state := Recovering;
          goods := 1;
          emit !t Recovering;
          if !goods >= opts.recover_after then begin
            state := Healthy;
            emit !t Healthy
          end;
          backoff := opts.backoff_us;
          t := !t +. opts.heartbeat_us
        end
        else begin
          (* still dead: back off exponentially before re-probing *)
          t := !t +. !backoff;
          backoff := Float.min opts.max_backoff_us (!backoff *. opts.backoff_mult)
        end
    | (Healthy | Degraded | Recovering) as s ->
        if not ok then begin
          goods := 0;
          incr fails;
          if !fails >= opts.down_after then begin
            state := Down;
            fails := 0;
            emit !t Down;
            backoff := opts.backoff_us;
            t := !t +. !backoff
          end
          else t := !t +. opts.heartbeat_us
        end
        else if slow then begin
          fails := 0;
          goods := 0;
          if s <> Degraded then begin
            state := Degraded;
            emit !t Degraded
          end;
          t := !t +. opts.heartbeat_us
        end
        else begin
          fails := 0;
          (match s with
          | Degraded | Recovering ->
              incr goods;
              if !goods >= opts.recover_after then begin
                state := Healthy;
                emit !t Healthy
              end
          | Healthy | Down -> ());
          t := !t +. opts.heartbeat_us
        end)
  done;
  List.rev !out

let timeline opts ~plan ~replicas ~horizon_us =
  List.init replicas (fun replica ->
      replica_timeline opts ~plan ~replica ~horizon_us)
  |> List.concat
  |> List.stable_sort (fun a b ->
         match compare a.t_us b.t_us with
         | 0 -> compare a.replica b.replica
         | c -> c)

let state_at tl ~replica ~t_us =
  List.fold_left
    (fun acc tr ->
      if tr.replica = replica && tr.t_us <= t_us then tr.state else acc)
    Healthy tl

let down_spans tl ~replica ~horizon_us =
  let spans = ref [] in
  let open_at = ref None in
  List.iter
    (fun tr ->
      if tr.replica = replica then
        match (tr.state, !open_at) with
        | Down, None -> open_at := Some tr.t_us
        | (Healthy | Degraded | Recovering), Some t0 ->
            spans := (t0, tr.t_us) :: !spans;
            open_at := None
        | _ -> ())
    tl;
  (match !open_at with
  | Some t0 -> spans := (t0, horizon_us) :: !spans
  | None -> ());
  List.rev !spans

let downtime_us tl ~replica ~horizon_us =
  List.fold_left
    (fun acc (a, b) -> acc +. (Float.min b horizon_us -. Float.min a horizon_us))
    0.0
    (down_spans tl ~replica ~horizon_us)
