(** Tensor-parallel execution harness (DESIGN.md §13).

    Builds on the sharded {!Frontend.Llm} constructors: compiles a
    sharded module through the full pipeline, slices one full-model
    weight set into per-shard parameters following the module's
    {!Frontend.Llm.shard_src} map, drives greedy decode numerically
    (the TP=1/2/4 differential tests), and reports per-device and
    interconnect time from a timed profiled step. *)

type compiled = {
  sh : Frontend.Llm.sharded;
  prog : Runtime.Vm.program;
}

val compile_decode :
  ?strategy:Frontend.Llm.tp_strategy ->
  ?verify:bool ->
  Frontend.Configs.t ->
  batch:int ->
  tp:int ->
  device:Runtime.Device.t ->
  compiled
(** Sharded [decode_paged] through {!Relax_passes.Pipeline.compile}
    with the model's upper-bound hints. [~verify:true] runs the static
    verifier (memory safety + race detection) after every pass and
    fails on any introduced error. *)

val compile_prefill :
  ?strategy:Frontend.Llm.tp_strategy ->
  ?verify:bool ->
  Frontend.Configs.t ->
  tp:int ->
  device:Runtime.Device.t ->
  compiled

val slice :
  Base.Ndarray.t -> axis:int -> shard:int -> tp:int -> Base.Ndarray.t
(** Contiguous block [shard] of [tp] along [axis] of a 2-d matrix.
    @raise Invalid_argument on non-2-d input or non-divisible extent. *)

val shard_args :
  Frontend.Llm.sharded ->
  full:(string * Base.Ndarray.t) list ->
  input:(string -> Runtime.Vm.value) ->
  Runtime.Vm.value list
(** VM arguments for a sharded build: replicated parameters copy the
    full-model tensor of the same name, sliced parameters cut their
    block out of it, and [Sh_input] parameters (ids, cur_len, KV
    caches) are supplied by [input], called with the parameter name. *)

val full_weights :
  Frontend.Configs.t -> seed:int -> (string * Base.Ndarray.t) list
(** The TP=1 [decode_paged] numeric parameter template by name — the
    single weight set every TP degree slices from, so differential
    runs compare like against like. *)

val generate :
  ?strategy:Frontend.Llm.tp_strategy ->
  ?verify:bool ->
  Frontend.Configs.t ->
  tp:int ->
  seed:int ->
  prompt:int list ->
  gen:int ->
  unit ->
  int list * Base.Ndarray.t
(** Greedy decode on a numeric VM: feed [prompt] one token per step
    through the sharded paged decoder, then generate [gen] tokens by
    argmax. Returns the generated tokens and the final step's logits.
    With the default [Gather] strategy the result is bit-identical
    across TP degrees for the same [seed] ({!bit_equal} on logits). *)

val argmax : Base.Ndarray.t -> int

val bit_equal : Base.Ndarray.t -> Base.Ndarray.t -> bool
(** Exact equality of shape and payload — no epsilon. *)

type step_report = {
  tp : int;
  strategy : Frontend.Llm.tp_strategy;
  serial_us : float;
      (** total simulated compute+comm time: what one device would
          take running every shard's work back to back *)
  parallel_us : float;
      (** modeled wall clock: replicated work + slowest shard +
          link time (collectives serialize on the interconnect) *)
  comm_us : float;  (** time in [ccl.*] collectives *)
  collectives : int;
  per_device_us : (string * float) list;
      (** {!Runtime.Profiler.device_split} of the step *)
}

val step_report :
  ?strategy:Frontend.Llm.tp_strategy ->
  Frontend.Configs.t ->
  batch:int ->
  tp:int ->
  ctx:int ->
  device:Runtime.Device.t ->
  unit ->
  step_report
(** One timed decode step at context length [ctx], profiled. The TP
    sweep in the benchmark uses this to find the degree where
    collective cost overtakes the per-shard compute saving. *)

val report_to_string : step_report -> string
