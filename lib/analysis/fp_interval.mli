(** Outward-rounded floating-point intervals.

    The value domain for the round-off analysis ({!Fp}): a closed
    interval [[lo, hi]] of reals with [lo <= hi], endpoints stored as
    IEEE doubles and widened one ulp outward after every operation so
    that the interval soundly contains the exact mathematical result
    regardless of the rounding of the endpoint computation itself.
    Endpoints may be infinite ([top] = [[-inf, +inf]]); NaN never
    appears — any operation whose endpoint arithmetic produces NaN
    (e.g. [inf - inf]) collapses to {!top}. *)

type t = private { lo : float; hi : float }

val v : float -> float -> t
(** [v lo hi]; swaps misordered endpoints, maps NaN to {!top}. *)

val point : float -> t
val top : t
val is_finite : t -> bool
val contains_zero : t -> bool

val mag : t -> float
(** [max |lo| |hi|] — the magnitude bound used for [u * mag] rounding
    terms. Infinite for unbounded intervals. *)

val min_abs : t -> float
(** Distance of the interval from zero: [0] when it contains zero,
    else [min |lo| |hi|]. *)

val width : t -> float
val hull : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** {!top} when the divisor contains zero. *)

val neg : t -> t
val abs_ : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

val square : t -> t
(** Image of [x * x] for [x] in the interval — never negative, unlike
    [mul t t] which treats the operands as independent. *)

val scale : float -> t -> t
(** Multiply both endpoints by a constant (outward-rounded). *)

val exp_ : t -> t
val log_ : t -> t
(** Domain [lo > 0]; callers must guard — returns {!top} otherwise. *)

val sqrt_ : t -> t
(** Negative part of the domain is clamped to 0. *)

val rsqrt_ : t -> t
(** Domain [lo > 0]; returns {!top} otherwise. *)

val tanh_ : t -> t
val sigmoid_ : t -> t
val erf_ : t -> t

val trig : t
(** [[-1, 1]] — the range bound used for [cos]/[sin]. *)

val to_string : t -> string
