(** Structured compiler diagnostics.

    Every static analysis in this library — and the graph-level
    {!Relax_core.Well_formed} checker — reports through this one type,
    so drivers can render uniformly (pretty text for humans, JSON for
    tooling), count severities, and attribute diagnostics to the
    compiler pass that introduced them. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** stable diagnostic class, e.g. ["oob-store"] *)
  func : string;  (** enclosing function or kernel name *)
  path : string list;
      (** location inside the function: loop vars, statement kind *)
  message : string;
  pass : string option;  (** provenance: the pass that introduced it *)
  key : string;
      (** stable identity used to diff diagnostics across passes; by
          construction independent of kernel renaming, so fusion
          producing [fused_foo] does not re-count [foo]'s findings *)
  data : (string * string) list;
      (** structured machine-readable payload rendered into the JSON
          ["data"] object (e.g. the fp-* error-bound provenance:
          bound, budget, output interval); empty for most codes and
          excluded from {!field-key} so numeric payloads never break
          cross-pass diffing *)
}

val make :
  severity ->
  code:string ->
  func:string ->
  ?path:string list ->
  ?key:string ->
  ?data:(string * string) list ->
  string ->
  t
(** [make sev ~code ~func msg]. [key] defaults to [code ^ "|" ^ msg];
    [data] defaults to empty. *)

val error :
  code:string ->
  func:string ->
  ?path:string list ->
  ?key:string ->
  ?data:(string * string) list ->
  string ->
  t

val warning :
  code:string ->
  func:string ->
  ?path:string list ->
  ?key:string ->
  ?data:(string * string) list ->
  string ->
  t

val with_pass : t -> string -> t
val is_error : t -> bool
val errors : t list -> t list
val severity_to_string : severity -> string

val to_string : t -> string
(** One-line pretty rendering:
    [error[oob-store] softmax @ i0/store Y: message (introduced by X)]. *)

val to_json : t -> string
(** Machine-readable rendering as a single JSON object. *)

val render : t list -> string
(** Pretty rendering of a list, one diagnostic per line, errors
    first. *)

val schema_version : int
(** Version of the JSON rendering emitted by {!render_json}; bumped
    whenever the object shape changes. *)

val render_json : t list -> string
(** Versioned JSON object
    [{"schema_version": n, "diagnostics": [...]}] wrapping the
    {!to_json} objects, errors first.

    Exit-code contract for drivers consuming this (the single source
    of truth, mirrored by [bin/relax_compile.ml --json]): exit 0 when
    no diagnostic has severity [Error] (warnings included in the
    payload are tolerated), exit 1 when at least one [Error] is
    present, exit 2 for usage errors — in which case no JSON is
    emitted at all. *)

val dedup : t list -> t list
(** Drop diagnostics whose {!field-key} already appeared earlier in
    the list (within-function noise reduction; keys are not unique
    across functions). *)

val tally : t list -> (string * int) list
(** Occurrence count per {!field-key}, for cross-pass diffing. *)
