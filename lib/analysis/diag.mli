(** Structured compiler diagnostics.

    Every static analysis in this library — and the graph-level
    {!Relax_core.Well_formed} checker — reports through this one type,
    so drivers can render uniformly (pretty text for humans, JSON for
    tooling), count severities, and attribute diagnostics to the
    compiler pass that introduced them. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** stable diagnostic class, e.g. ["oob-store"] *)
  func : string;  (** enclosing function or kernel name *)
  path : string list;
      (** location inside the function: loop vars, statement kind *)
  message : string;
  pass : string option;  (** provenance: the pass that introduced it *)
  key : string;
      (** stable identity used to diff diagnostics across passes; by
          construction independent of kernel renaming, so fusion
          producing [fused_foo] does not re-count [foo]'s findings *)
}

val make :
  severity ->
  code:string ->
  func:string ->
  ?path:string list ->
  ?key:string ->
  string ->
  t
(** [make sev ~code ~func msg]. [key] defaults to [code ^ "|" ^ msg]. *)

val error :
  code:string -> func:string -> ?path:string list -> ?key:string -> string -> t

val warning :
  code:string -> func:string -> ?path:string list -> ?key:string -> string -> t

val with_pass : t -> string -> t
val is_error : t -> bool
val errors : t list -> t list
val severity_to_string : severity -> string

val to_string : t -> string
(** One-line pretty rendering:
    [error[oob-store] softmax @ i0/store Y: message (introduced by X)]. *)

val to_json : t -> string
(** Machine-readable rendering as a single JSON object. *)

val render : t list -> string
(** Pretty rendering of a list, one diagnostic per line, errors
    first. *)

val render_json : t list -> string
(** JSON array of {!to_json} objects. *)

val dedup : t list -> t list
(** Drop diagnostics whose {!field-key} already appeared earlier in
    the list (within-function noise reduction; keys are not unique
    across functions). *)

val tally : t list -> (string * int) list
(** Occurrence count per {!field-key}, for cross-pass diffing. *)
