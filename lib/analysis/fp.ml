(* First-order round-off certification (FPTaylor-style) over TIR.

   Abstract value = (real interval, absolute error bound, proved?).
   The interval tracks the range of the exact mathematical value of an
   expression under the input assumption |input| <= input_mag; the
   error bound dominates |computed float - exact real| when every
   operation rounds faithfully within its ulp constant. Reductions are
   recognized syntactically as self-accumulating stores and collapsed
   to closed forms scaled by trip counts proved through the shared
   Prove context, so a sum of n terms costs n * delta_err + n * u *
   |partial| rather than a fixpoint iteration. *)

module E = Arith.Expr
module V = Arith.Var
module SB = Arith.Sym_bounds
module I = Fp_interval
module T = Tir.Texpr
module B = Tir.Buffer
module S = Tir.Stmt
module D = Base.Dtype
module M = Map.Make (Int)

type opts = {
  budget_ulps : float;
  input_mag : float;
  cond_limit : float;
  max_trip : int;
}

let default_opts =
  {
    budget_ulps = 16777216.0 (* 2^24 *);
    input_mag = 1.0;
    cond_limit = 1e4;
    max_trip = 1 lsl 24;
  }

let eps_of_dtype = function
  | D.F16 -> 4.8828125e-4 (* 2^-11 *)
  | D.F32 -> 5.960464477539063e-8 (* 2^-24 *)
  | _ -> 0.0

(* Shared ulp table: multiples of [u * |result|] charged per op.
   Basic arithmetic is correctly rounded (1); transcendentals are
   assumed faithfully rounded within 2 ulps. *)
let ulp_of_unop = function
  | T.Neg | T.Abs | T.Not -> 0.0
  | T.Sqrt -> 1.0
  | T.Exp | T.Log | T.Rsqrt | T.Tanh | T.Sigmoid | T.Erf | T.Cos | T.Sin ->
      2.0

type aval = { iv : I.t; err : float; tight : bool }

let unknown = { iv = I.top; err = infinity; tight = false }

(* err arithmetic must never produce NaN: 0 * inf = 0 here (an exact
   quantity scaled by an unbounded magnitude stays exact). *)
let pmul x y = if x = 0.0 || y = 0.0 then 0.0 else x *. y
let sane e = if Float.is_nan e then infinity else e

let join a b =
  if a == b then a
  else
    {
      iv = I.hull a.iv b.iv;
      err = Float.max a.err b.err;
      tight = a.tight && b.tight;
    }

type bound = {
  buffer : B.t;
  iv : I.t;
  abs_err : float;
  ulps : float;
  eps : float;
  proved : bool;
}

type report = { bounds : bound list; diags : Diag.t list }

type st = {
  opts : opts;
  u : float;  (** working-precision unit roundoff of this kernel *)
  func : string;
  mutable quant_eps : float;
      (** coarsest quantized representation decoded by the kernel *)
  mutable diags : Diag.t list;
}

(* Emitted only on finite evidence: an argument whose interval or
   error is unbounded is reported once as fp-unbounded at the output
   instead of as a spurious domain violation at every use. *)
let domain_warn st path opname (a : aval) =
  if Float.is_finite a.err && Float.is_finite (I.mag a.iv) then
    let d =
      Diag.warning ~code:"fp-domain" ~func:st.func ~path:(List.rev path)
        ~key:("fp-domain|" ^ opname)
        (Printf.sprintf
           "argument of %s may leave its domain (interval %s, error %.3g)"
           opname (I.to_string a.iv) a.err)
    in
    st.diags <- d :: st.diags

let rec texpr_equal a b =
  match (a, b) with
  | T.Imm_int x, T.Imm_int y -> x = y
  | T.Imm_float x, T.Imm_float y -> x = y
  | T.Idx x, T.Idx y -> E.equal_syntactic x y
  | T.Load (bx, ix), T.Load (by, iy) ->
      bx.B.id = by.B.id
      && List.length ix = List.length iy
      && List.for_all2 texpr_equal ix iy
  | T.Binop (o, x, y), T.Binop (o', x', y') ->
      o = o' && texpr_equal x x' && texpr_equal y y'
  | T.Unop (o, x), T.Unop (o', x') -> o = o' && texpr_equal x x'
  | T.Cast (d, x), T.Cast (d', x') -> D.equal d d' && texpr_equal x x'
  | T.Select (c, x, y), T.Select (c', x', y') ->
      texpr_equal c c' && texpr_equal x x' && texpr_equal y y'
  | _ -> false

let rec tvars e acc =
  match e with
  | T.Imm_int _ | T.Imm_float _ -> acc
  | T.Idx e -> V.Set.union (E.free_vars e) acc
  | T.Load (_, idxs) -> List.fold_left (fun a i -> tvars i a) acc idxs
  | T.Binop (_, a, b) -> tvars a (tvars b acc)
  | T.Unop (_, a) | T.Cast (_, a) -> tvars a acc
  | T.Select (c, a, b) -> tvars c (tvars a (tvars b acc))

let rec has_int_load e =
  match e with
  | T.Load (b, _) -> D.is_int b.B.dtype
  | T.Binop (_, a, b) -> has_int_load a || has_int_load b
  | T.Unop (_, a) | T.Cast (_, a) -> has_int_load a
  | T.Select (c, a, b) -> has_int_load c || has_int_load a || has_int_load b
  | _ -> false

(* Value range of raw integer data: the dtype's representable range.
   Shift/mask idioms narrow it further below. *)
let dtype_range = function
  | D.U8 -> Some (0.0, 255.0)
  | D.I8 -> Some (-128.0, 127.0)
  | D.U32 -> Some (0.0, 4294967295.0)
  | D.I32 -> Some (-2147483648.0, 2147483647.0)
  | D.I64 -> Some (-9.2233720368547758e18, 9.2233720368547758e18)
  | D.Bool -> Some (0.0, 1.0)
  | D.F16 | D.F32 -> None

let const_endpoint = function Some e -> E.as_const e | None -> None

(* Sound (not necessarily minimal) integer upper bound: binary search
   over the prove_le semi-decision. Every returned value was proved. *)
let search_hi st ctx ae =
  if not (Prove.prove_le ctx ae (E.const st.opts.max_trip)) then None
  else
    let rec bs lo hi =
      if lo >= hi then hi
      else
        let mid = (lo + hi) / 2 in
        if Prove.prove_le ctx ae (E.const mid) then bs lo mid
        else bs (mid + 1) hi
    in
    Some (bs 0 st.opts.max_trip)

let int_aval st ctx ae =
  let sb = Prove.eval ctx ae in
  match (const_endpoint sb.SB.lo, const_endpoint sb.SB.hi) with
  | Some l, Some h ->
      { iv = I.v (float_of_int l) (float_of_int h); err = 0.0; tight = true }
  | lo_c, hi_c ->
      let lo =
        match lo_c with
        | Some l -> float_of_int l
        | None -> if Prove.prove_nonneg ctx ae then 0.0 else neg_infinity
      in
      let hi =
        match hi_c with
        | Some h -> float_of_int h
        | None -> (
            match search_hi st ctx ae with
            | Some h -> float_of_int h
            | None -> infinity)
      in
      { iv = I.v lo hi; err = 0.0; tight = false }

(* Trip-count bounds of a loop extent, evaluated in the enclosing
   context: (min trips, max trips, exact). *)
let trip st ctx extent ~nonempty =
  let a = int_aval st ctx extent in
  if Float.is_finite (a.iv : I.t).hi then
    let hi = Float.max 0.0 a.iv.I.hi in
    let lo =
      Float.min hi
        (Float.max (if nonempty then 1.0 else 0.0) (Float.max 0.0 a.iv.I.lo))
    in
    Some (lo, hi, a.tight && a.iv.I.lo = a.iv.I.hi)
  else None

let rec eval st ctx env path (e : T.t) : aval =
  match e with
  | T.Imm_float x -> { iv = I.point x; err = 0.0; tight = true }
  | T.Imm_int n -> { iv = I.point (float_of_int n); err = 0.0; tight = true }
  | T.Cast (dt, x) when D.is_float dt -> cast_float st ctx env path dt x
  | T.Cast (_, x) ->
      (* float/int -> int truncation: hull widened one unit downward *)
      let r = eval st ctx env path x in
      { r with iv = I.hull r.iv (I.add r.iv (I.point (-1.0))) }
  | _ -> (
      match Lin.to_expr e with
      | Some ae -> int_aval st ctx ae
      | None -> eval_float st ctx env path e)

and eval_float st ctx env path e =
  match e with
  | T.Load (b, _) ->
      if D.is_float b.B.dtype then
        Option.value (M.find_opt b.B.id env) ~default:unknown
      else (
        match dtype_range b.B.dtype with
        | Some (lo, hi) -> { iv = I.v lo hi; err = 0.0; tight = true }
        | None -> unknown)
  | T.Binop (op, a, b) -> binop st ctx env path op a b
  | T.Unop (op, a) -> unop st ctx env path op a
  | T.Select (_, a, b) ->
      join (eval st ctx env path a) (eval st ctx env path b)
  | T.Idx _ | T.Imm_int _ | T.Imm_float _ | T.Cast _ -> unknown

and binop st ctx env path op ea eb =
  let mask_of = function T.Imm_int m when m >= 0 -> Some m | _ -> None in
  match op with
  | T.Bit_and -> (
      (* nibble extraction: [x land m] lies in [0, m] *)
      match (mask_of eb, mask_of ea) with
      | Some m, _ | _, Some m ->
          { iv = I.v 0.0 (float_of_int m); err = 0.0; tight = true }
      | None, None -> unknown)
  | T.Shift_right -> (
      let ra = eval st ctx env path ea in
      match eb with
      | T.Imm_int s
        when s >= 0 && Float.is_finite (ra.iv : I.t).hi && ra.iv.I.lo >= 0.0
        ->
          let d = float_of_int (1 lsl min s 62) in
          {
            iv = I.v 0.0 (Float.of_int (int_of_float (ra.iv.I.hi /. d)));
            err = 0.0;
            tight = ra.tight;
          }
      | _ -> unknown)
  | T.Bit_or | T.Bit_xor | T.Shift_left | T.Pow | T.Floor_div -> unknown
  | T.Floor_mod -> (
      let _ = eval st ctx env path ea in
      match eb with
      | T.Imm_float c when c > 0.0 ->
          { iv = I.v 0.0 c; err = 0.0; tight = false }
      | T.Imm_int c when c > 0 ->
          { iv = I.v 0.0 (float_of_int c); err = 0.0; tight = false }
      | _ -> unknown)
  | T.Eq | T.Ne | T.Lt | T.Le | T.Gt | T.Ge | T.And | T.Or ->
      let _ = eval st ctx env path ea and _ = eval st ctx env path eb in
      { iv = I.v 0.0 1.0; err = 0.0; tight = true }
  | T.Add | T.Sub | T.Mul | T.Div | T.Min | T.Max ->
      let ra = eval st ctx env path ea and rb = eval st ctx env path eb in
      let rnd iv = pmul st.u (I.mag iv) in
      let mk iv err tight = { iv; err = sane err; tight } in
      let both = ra.tight && rb.tight in
      (match op with
      | T.Add ->
          let iv = I.add ra.iv rb.iv in
          mk iv (ra.err +. rb.err +. rnd iv) both
      | T.Sub ->
          let iv = I.sub ra.iv rb.iv in
          mk iv (ra.err +. rb.err +. rnd iv) both
      | T.Mul when texpr_equal ea eb ->
          (* x * x: the image is nonnegative (crucial for the
             sum-of-squares feeding Rsqrt in the norm kernels) *)
          let iv = I.square ra.iv in
          mk iv
            (pmul (2.0 *. I.mag ra.iv) ra.err
            +. pmul ra.err ra.err +. rnd iv)
            ra.tight
      | T.Mul ->
          let iv = I.mul ra.iv rb.iv in
          mk iv
            (pmul (I.mag rb.iv) ra.err
            +. pmul (I.mag ra.iv) rb.err
            +. pmul ra.err rb.err +. rnd iv)
            both
      | T.Div ->
          (* the computed divisor ranges over iv_b +- err_b; it must
             stay away from zero for a first-order bound *)
          let mb = I.min_abs rb.iv -. rb.err in
          if I.contains_zero rb.iv || mb <= 0.0 then (
            domain_warn st path "Div" rb;
            unknown)
          else
            let iv = I.div ra.iv rb.iv in
            let err =
              (ra.err /. mb)
              +. (pmul (I.mag ra.iv) rb.err /. (mb *. mb))
              +. (pmul ra.err rb.err /. (mb *. mb))
              +. rnd iv
            in
            mk iv err (both && I.mag rb.iv /. mb <= st.opts.cond_limit)
      | T.Min ->
          (* exact selection: |min(a~,b~) - min(a,b)| <= max err *)
          mk (I.min_ ra.iv rb.iv) (Float.max ra.err rb.err) both
      | T.Max -> mk (I.max_ ra.iv rb.iv) (Float.max ra.err rb.err) both
      | _ -> unknown)

and unop st ctx env path op ea =
  let ra = eval st ctx env path ea in
  let rnd iv = pmul (ulp_of_unop op *. st.u) (I.mag iv) in
  let mk iv err tight = { iv; err = sane err; tight } in
  match op with
  | T.Neg -> { ra with iv = I.neg ra.iv }
  | T.Abs -> { ra with iv = I.abs_ ra.iv }
  | T.Not -> { iv = I.v 0.0 1.0; err = 0.0; tight = true }
  | T.Exp ->
      let iv = I.exp_ ra.iv in
      (* Lipschitz bound exp(hi + err) is only first-order-meaningful
         while the input error stays small *)
      let perr =
        if ra.err > 1.0 then infinity
        else pmul (exp ((ra.iv : I.t).hi +. ra.err)) ra.err
      in
      mk iv (perr +. rnd iv) ra.tight
  | T.Log ->
      let lo' = (ra.iv : I.t).lo -. ra.err in
      if lo' <= 0.0 then (
        domain_warn st path "Log" ra;
        unknown)
      else
        let iv = I.log_ ra.iv in
        mk iv
          ((ra.err /. lo') +. rnd (I.hull iv (I.point 1.0)))
          (ra.tight && I.mag ra.iv /. lo' <= st.opts.cond_limit)
  | T.Sqrt ->
      let lo' = (ra.iv : I.t).lo -. ra.err in
      if lo' < 0.0 then (
        domain_warn st path "Sqrt" ra;
        unknown)
      else
        let iv = I.sqrt_ ra.iv in
        (* min of the Lipschitz bound and |sqrt a - sqrt b| <=
           sqrt |a - b|, which stays finite at a zero endpoint *)
        let lip =
          if lo' > 0.0 then ra.err /. (2.0 *. sqrt lo') else infinity
        in
        mk iv (Float.min lip (sqrt ra.err) +. rnd iv) ra.tight
  | T.Rsqrt ->
      let lo' = (ra.iv : I.t).lo -. ra.err in
      if lo' <= 0.0 then (
        domain_warn st path "Rsqrt" ra;
        unknown)
      else
        let iv = I.rsqrt_ ra.iv in
        mk iv
          ((0.5 *. ra.err /. (lo' *. sqrt lo')) +. rnd iv)
          (ra.tight && I.mag ra.iv /. lo' <= st.opts.cond_limit)
  | T.Tanh ->
      (* Lipschitz 1, range clamp 2 *)
      mk (I.tanh_ ra.iv) (Float.min ra.err 2.0 +. rnd (I.point 1.0)) ra.tight
  | T.Sigmoid ->
      mk (I.sigmoid_ ra.iv)
        (Float.min (0.25 *. ra.err) 1.0 +. rnd (I.point 1.0))
        ra.tight
  | T.Erf ->
      (* Lipschitz 2/sqrt(pi); the interpreter's approximation is
         within 1.5e-7 of erf *)
      mk (I.erf_ ra.iv)
        (Float.min (1.1284 *. ra.err) 2.0 +. rnd (I.point 1.0) +. 2e-7)
        ra.tight
  | T.Cos | T.Sin ->
      mk I.trig (Float.min ra.err 2.0 +. rnd (I.point 1.0)) ra.tight

and cast_float st ctx env path dt x =
  let r = eval st ctx env path x in
  let quant_bits =
    (* decode idiom: a small exact integer range extracted from packed
       integer data is a quantized code; charge half a quantization
       step (pre-scale) and remember the representation coarseness *)
    if has_int_load x && r.err = 0.0 then
      let w = I.width r.iv in
      if Float.is_finite w && w > 0.0 && w <= 256.0 then
        Some (max 2 (int_of_float (ceil (log (w +. 1.0) /. log 2.0))))
      else None
    else None
  in
  match quant_bits with
  | Some bits ->
      st.quant_eps <-
        Float.max st.quant_eps (2.0 ** float_of_int (-(bits + 1)));
      { iv = r.iv; err = r.err +. 0.5; tight = r.tight }
  | None ->
      {
        iv = r.iv;
        err = sane (r.err +. pmul (eps_of_dtype dt) (I.mag r.iv));
        tight = r.tight;
      }

(* ------------------------------------------------------------------ *)
(* Statement walk: environment maps buffer id -> slot-abstracted aval
   (one abstract value for every element of the buffer). Stores that
   read their own cell back through an accumulating operator are
   recorded as updates and collapsed to closed forms at the first
   enclosing loop whose variable does not index the store. *)

type upd_kind = Uassign | Usum of aval | Umax of aval | Umin of aval

let find env (b : B.t) = Option.value (M.find_opt b.B.id env) ~default:unknown

let merge_env =
  M.merge (fun _ a b ->
      match (a, b) with
      | Some x, Some y -> Some (join x y)
      | (Some _ as x), None | None, (Some _ as x) -> x
      | None, None -> None)

let rec walk st ctx env path (s : S.t) :
    aval M.t * (B.t * V.Set.t * upd_kind) list =
  match s with
  | S.Seq ss ->
      List.fold_left
        (fun (env, us) s' ->
          let env', us' = walk st ctx env path s' in
          (env', us @ us'))
        (env, []) ss
  | S.Alloc (b, body) ->
      (* workspace storage starts zeroed *)
      let env =
        if D.is_float b.B.dtype then
          M.add b.B.id { iv = I.point 0.0; err = 0.0; tight = true } env
        else env
      in
      walk st ctx env path body
  | S.Assert _ | S.Evaluate _ -> (env, [])
  | S.If (_, t, e) ->
      let env_t, us_t = walk st ctx env ("if" :: path) t in
      let env_e, us_e =
        match e with
        | Some e -> walk st ctx env ("else" :: path) e
        | None -> (env, [])
      in
      (merge_env env_t env_e, us_t @ us_e)
  | S.Store (b, idxs, v) -> store st ctx env path b idxs v
  | S.For { var; extent; kind = _; body } ->
      for_loop st ctx env path var extent body

and store st ctx env path b idxs v =
  let path' = ("store " ^ b.B.name) :: path in
  if not (D.is_float b.B.dtype) then (
    ignore (eval st ctx env path' v);
    (env, []))
  else
    let self = function
      | T.Load (b', idxs') ->
          b'.B.id = b.B.id
          && List.length idxs = List.length idxs'
          && List.for_all2 texpr_equal idxs idxs'
      | _ -> false
    in
    let rec mentions = function
      | T.Load (b', idxs') ->
          b'.B.id = b.B.id || List.exists mentions idxs'
      | T.Binop (_, x, y) -> mentions x || mentions y
      | T.Unop (_, x) | T.Cast (_, x) -> mentions x
      | T.Select (c, x, y) -> mentions c || mentions x || mentions y
      | T.Imm_int _ | T.Imm_float _ | T.Idx _ -> false
    in
    let idx_vars = List.fold_left (fun acc i -> tvars i acc) V.Set.empty idxs in
    let ev e = eval st ctx env path' e in
    let upd =
      match v with
      | T.Binop (T.Add, l, e) when self l && not (mentions e) ->
          Some (Usum (ev e))
      | T.Binop (T.Add, e, l) when self l && not (mentions e) ->
          Some (Usum (ev e))
      | T.Binop (T.Sub, l, e) when self l && not (mentions e) ->
          let d = ev e in
          Some (Usum { d with iv = I.neg d.iv })
      | T.Binop (T.Max, l, e) when self l && not (mentions e) ->
          Some (Umax (ev e))
      | T.Binop (T.Max, e, l) when self l && not (mentions e) ->
          Some (Umax (ev e))
      | T.Binop (T.Min, l, e) when self l && not (mentions e) ->
          Some (Umin (ev e))
      | T.Binop (T.Min, e, l) when self l && not (mentions e) ->
          Some (Umin (ev e))
      | _ -> None
    in
    match upd with
    | Some (Usum d) ->
        let base = find env b in
        let iv = I.add base.iv d.iv in
        let once =
          {
            iv;
            err = sane (base.err +. d.err +. pmul st.u (I.mag iv));
            tight = base.tight && d.tight;
          }
        in
        (M.add b.B.id once env, [ (b, idx_vars, Usum d) ])
    | Some (Umax d) ->
        let base = find env b in
        let once =
          {
            iv = I.max_ base.iv d.iv;
            err = Float.max base.err d.err;
            tight = base.tight && d.tight;
          }
        in
        (M.add b.B.id once env, [ (b, idx_vars, Umax d) ])
    | Some (Umin d) ->
        let base = find env b in
        let once =
          {
            iv = I.min_ base.iv d.iv;
            err = Float.max base.err d.err;
            tight = base.tight && d.tight;
          }
        in
        (M.add b.B.id once env, [ (b, idx_vars, Umin d) ])
    | Some Uassign | None ->
        let r = ev v in
        (M.add b.B.id r env, [ (b, idx_vars, Uassign) ])

and for_loop st ctx env path var extent body =
  let ctx', nonempty = Prove.bind_loop ctx var ~extent in
  let path' = V.name var :: path in
  let env_out, us = walk st ctx' env path' body in
  let n = trip st ctx extent ~nonempty in
  let seen = Hashtbl.create 4 in
  let apply (envAcc, passed) (b, vars, kind) =
    let accum = not (V.Set.mem var vars) in
    let dup = accum && Hashtbl.mem seen b.B.id in
    if accum then Hashtbl.replace seen b.B.id ();
    match kind with
    | _ when dup ->
        (* two independent reductions into the same cells within one
           loop: no closed form, give up soundly *)
        (M.add b.B.id unknown envAcc, (b, vars, Uassign) :: passed)
    | Usum d when accum -> (
        let base = find env b in
        match n with
        | Some (nlo, nhi, exact) ->
            let total =
              let lo =
                if (d.iv : I.t).lo >= 0.0 then pmul nlo d.iv.I.lo
                else pmul nhi d.iv.I.lo
              in
              let hi =
                if (d.iv : I.t).hi >= 0.0 then pmul nhi d.iv.I.hi
                else pmul nlo d.iv.I.hi
              in
              I.v lo hi
            in
            let iv = I.add base.iv total in
            (* partial sums stay within mag(base) + n * mag(delta) *)
            let pmag = I.mag base.iv +. pmul nhi (I.mag d.iv) in
            let derr = sane (pmul nhi d.err +. pmul nhi (pmul st.u pmag)) in
            let cell =
              {
                iv;
                err = sane (base.err +. derr);
                tight = base.tight && d.tight && exact;
              }
            in
            ( M.add b.B.id cell envAcc,
              (b, vars, Usum { iv = total; err = derr; tight = cell.tight })
              :: passed )
        | None ->
            (M.add b.B.id unknown envAcc, (b, vars, Uassign) :: passed))
    | Umax d when accum ->
        let base = find env b in
        let maxed =
          {
            iv = I.max_ base.iv d.iv;
            err = Float.max base.err d.err;
            tight = base.tight && d.tight;
          }
        in
        let cell = if nonempty then maxed else join base maxed in
        (M.add b.B.id cell envAcc, (b, vars, Umax d) :: passed)
    | Umin d when accum ->
        let base = find env b in
        let mined =
          {
            iv = I.min_ base.iv d.iv;
            err = Float.max base.err d.err;
            tight = base.tight && d.tight;
          }
        in
        let cell = if nonempty then mined else join base mined in
        (M.add b.B.id cell envAcc, (b, vars, Umin d) :: passed)
    | _ ->
        (* per-slot assignment; an empty loop leaves the old value *)
        let envAcc =
          if nonempty then envAcc
          else
            match M.find_opt b.B.id env with
            | Some pre -> M.add b.B.id (join pre (find envAcc b)) envAcc
            | None -> envAcc
        in
        (envAcc, (b, vars, Uassign) :: passed)
  in
  let envF, passed = List.fold_left apply (env_out, []) us in
  (envF, List.rev passed)

(* ------------------------------------------------------------------ *)

let working_eps f =
  List.fold_left
    (fun acc (b : B.t) ->
      if D.is_float b.B.dtype then Float.max acc (eps_of_dtype b.dtype)
      else acc)
    (eps_of_dtype D.F32) f.Tir.Prim_func.params

let analyze ?(bounds = []) ?(opts = default_opts) ?func
    (f : Tir.Prim_func.t) : report =
  let name = Option.value func ~default:f.Tir.Prim_func.name in
  let st =
    { opts; u = working_eps f; func = name; quant_eps = 0.0; diags = [] }
  in
  let ctx = Prove.create ~bounds f in
  let seed_in env (b : B.t) =
    if D.is_float b.B.dtype then
      M.add b.B.id
        {
          iv = I.v (-.opts.input_mag) opts.input_mag;
          err = pmul (eps_of_dtype b.dtype) opts.input_mag;
          tight = true;
        }
        env
    else env
  in
  let seed_out env (b : B.t) =
    (* outputs hold arbitrary caller data until written; reading one
       before writing defeats certification *)
    if D.is_float b.B.dtype then
      M.add b.B.id { iv = I.top; err = 0.0; tight = false } env
    else env
  in
  let env0 =
    List.fold_left seed_out
      (List.fold_left seed_in M.empty (Tir.Prim_func.inputs f))
      (Tir.Prim_func.outputs f)
  in
  let env, _ = walk st ctx env0 [] f.Tir.Prim_func.body in
  let bounds_out = ref [] in
  List.iter
    (fun (b : B.t) ->
      if D.is_float b.B.dtype then
        match M.find_opt b.B.id env with
        | None -> ()
        | Some a ->
            if not (Float.is_finite a.err) then
              st.diags <-
                Diag.warning ~code:"fp-unbounded" ~func:name
                  ~key:("fp-unbounded|" ^ b.B.name)
                  (Printf.sprintf
                     "cannot bound round-off error of output %s (unbounded \
                      value interval or reduction extent)"
                     b.B.name)
                :: st.diags
            else begin
              let eps =
                Float.max
                  (Float.max st.u (eps_of_dtype b.dtype))
                  st.quant_eps
              in
              let m = I.mag a.iv in
              let ulps =
                if Float.is_finite m && m > 0.0 then a.err /. (eps *. m)
                else a.err /. eps
              in
              bounds_out :=
                {
                  buffer = b;
                  iv = a.iv;
                  abs_err = a.err;
                  ulps;
                  eps;
                  proved = a.tight;
                }
                :: !bounds_out;
              if ulps > opts.budget_ulps then
                let data =
                  [
                    ("bound_ulps", Printf.sprintf "%.6g" ulps);
                    ("budget_ulps", Printf.sprintf "%.6g" opts.budget_ulps);
                    ("abs_err", Printf.sprintf "%.6g" a.err);
                    ("interval", I.to_string a.iv);
                    ("eps", Printf.sprintf "%.6g" eps);
                    ("input_mag", Printf.sprintf "%.6g" opts.input_mag);
                  ]
                in
                let msg =
                  Printf.sprintf
                    "first-order round-off of output %s reaches %.3g ulps \
                     over interval %s (budget %.3g)"
                    b.B.name ulps (I.to_string a.iv) opts.budget_ulps
                in
                let d =
                  if a.tight then
                    Diag.error ~code:"fp-budget" ~func:name
                      ~key:("fp-budget|" ^ b.B.name) ~data msg
                  else
                    Diag.warning ~code:"fp-budget-unproved" ~func:name
                      ~key:("fp-budget-unproved|" ^ b.B.name) ~data msg
                in
                st.diags <- d :: st.diags
            end)
    (Tir.Prim_func.outputs f);
  { bounds = List.rev !bounds_out; diags = Diag.dedup (List.rev st.diags) }

let check ?bounds ?opts ?func f = (analyze ?bounds ?opts ?func f).diags
