(** Proof queries for backends (the bounds-elision contract).

    {!Tir.Imp_compile} may drop runtime bounds checks only for kernels
    this module vouches for; see DESIGN.md §12. *)

val memory_safe : ?bounds:(Arith.Var.t * int) list -> Tir.Prim_func.t -> bool
(** [true] iff {!Tir_safety.check} emits no bounds-related diagnostic
    (neither proved-out-of-bounds nor unprovable): every store and
    load of the kernel is statically proved in-bounds for all shapes,
    so runtime checks are redundant. Assertion diagnostics do not
    affect the result — asserts always keep their runtime check. *)

val prover : unit -> Tir.Prim_func.t -> bool
(** A memoizing [memory_safe] for kernel caches: results are cached
    per kernel name and revalidated by physical identity, so repeated
    compiles of the same kernel pay the analysis once. *)
