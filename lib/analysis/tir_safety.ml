module E = Arith.Expr
module SB = Arith.Sym_bounds
module S = Tir.Stmt
module T = Tir.Texpr

type kind = Kstore | Kload

type tri = True | False | Unknown

let rec cond_status ctx (c : T.t) : tri =
  match c with
  | T.Imm_int n -> if n <> 0 then True else False
  | T.Unop (T.Not, c) -> (
      match cond_status ctx c with
      | True -> False
      | False -> True
      | Unknown -> Unknown)
  | T.Binop (T.And, a, b) -> (
      match (cond_status ctx a, cond_status ctx b) with
      | True, True -> True
      | False, _ | _, False -> False
      | _ -> Unknown)
  | T.Binop (T.Or, a, b) -> (
      match (cond_status ctx a, cond_status ctx b) with
      | False, False -> False
      | True, _ | _, True -> True
      | _ -> Unknown)
  | T.Binop (((T.Eq | T.Ne | T.Lt | T.Le | T.Gt | T.Ge) as cmp), a, b) -> (
      match (Lin.to_expr a, Lin.to_expr b) with
      | Some a, Some b -> (
          let le x y = Prove.prove_le ctx x y in
          let lt x y = le (E.add x (E.const 1)) y in
          match cmp with
          | T.Lt -> if lt a b then True else if le b a then False else Unknown
          | T.Le -> if le a b then True else if lt b a then False else Unknown
          | T.Gt -> if lt b a then True else if le a b then False else Unknown
          | T.Ge -> if le b a then True else if lt a b then False else Unknown
          | T.Eq ->
              if le a b && le b a then True
              else if lt a b || lt b a then False
              else Unknown
          | T.Ne ->
              if lt a b || lt b a then True
              else if le a b && le b a then False
              else Unknown
          | _ -> Unknown)
      | _ -> Unknown)
  | _ -> Unknown

let check ?(bounds = []) ?func (f : Tir.Prim_func.t) : Diag.t list =
  let fname = match func with Some n -> n | None -> f.Tir.Prim_func.name in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let dim_key code (b : Tir.Buffer.t) i =
    Printf.sprintf "%s|%s|%d" code b.Tir.Buffer.name i
  in
  let check_access ctx ~path ~guarded ~reachable kind (b : Tir.Buffer.t) idxs =
    let shape = b.Tir.Buffer.shape in
    if List.length idxs <> List.length shape then
      emit
        (Diag.error ~code:"rank-mismatch" ~func:fname ~path
           ~key:(Printf.sprintf "rank-mismatch|%s" b.Tir.Buffer.name)
           (Printf.sprintf "buffer %s has rank %d but is accessed with %d indices"
              b.Tir.Buffer.name (List.length shape) (List.length idxs)))
    else
      List.iteri
        (fun i (idx, dim) ->
          match Lin.to_expr idx with
          | None ->
              emit
                (Diag.warning ~code:"dyn-index" ~func:fname ~path
                   ~key:(dim_key "dyn-index" b i)
                   (Printf.sprintf
                      "index %d of buffer %s is data-dependent (%s); bounds \
                       cannot be checked statically"
                      i b.Tir.Buffer.name (T.to_string idx)))
          | Some e ->
              let hi_ok =
                Prove.prove_le ctx e
                  (Arith.Simplify.simplify (E.sub dim (E.const 1)))
              in
              let lo_ok = Prove.prove_nonneg ctx e in
              if not (hi_ok && lo_ok) then (
                let iv = Prove.eval ctx e in
                let oob_hi =
                  match iv.SB.hi with
                  | Some h -> Prove.prove_le ctx dim h
                  | None -> false
                in
                let oob_lo =
                  match iv.SB.lo with
                  | Some l -> Prove.prove_le ctx l (E.const (-1))
                  | None -> false
                in
                let acc, code_oob, code_unproved =
                  match kind with
                  | Kstore -> ("store to", "oob-store", "unproved-store")
                  | Kload -> ("load from", "oob-load", "unproved-load")
                in
                if reachable && (not guarded) && iv.SB.exact && (oob_hi || oob_lo)
                then
                  emit
                    (Diag.error ~code:code_oob ~func:fname ~path
                       ~key:(dim_key code_oob b i)
                       (Printf.sprintf
                          "%s buffer %s is out of bounds: index %d is %s with \
                           range [%s, %s] but the extent is %s"
                          acc b.Tir.Buffer.name i (E.to_string e)
                          (match iv.SB.lo with
                          | Some l -> E.to_string l
                          | None -> "-inf")
                          (match iv.SB.hi with
                          | Some h -> E.to_string h
                          | None -> "+inf")
                          (E.to_string dim)))
                else
                  emit
                    (Diag.warning ~code:code_unproved ~func:fname ~path
                       ~key:(dim_key code_unproved b i)
                       (Printf.sprintf
                          "cannot prove %s buffer %s in bounds: index %d is %s \
                           against extent %s%s"
                          acc b.Tir.Buffer.name i (E.to_string e)
                          (E.to_string dim)
                          (if not lo_ok && hi_ok then
                             " (lower bound unproved)"
                           else "")))))
        (List.combine idxs shape)
  in
  (* Structural walk over value expressions: a [Select] guards its
     branches the way an [If] statement does (the RoPE kernels load
     the partner lane [dd +/- 1] under an even/odd-lane select), so
     branch hypotheses and residue refinements apply before the
     branch's loads are checked. *)
  let then_ctx ctx c =
    let hyps = Lin.hyps_of_cond c in
    Prove.refine { ctx with Prove.hyps = hyps @ ctx.Prove.hyps } hyps
  in
  let else_ctx ctx c =
    let hyps = Lin.neg_hyps_of_cond c in
    Prove.refine { ctx with Prove.hyps = hyps @ ctx.Prove.hyps } hyps
  in
  let rec check_loads ctx ~path ~guarded ~reachable (e : T.t) =
    match e with
    | T.Load (b, idxs) ->
        check_access ctx ~path ~guarded ~reachable Kload b idxs;
        List.iter (check_loads ctx ~path ~guarded ~reachable) idxs
    | T.Select (c, a, b) ->
        check_loads ctx ~path ~guarded ~reachable c;
        check_loads (then_ctx ctx c) ~path ~guarded:true ~reachable a;
        check_loads (else_ctx ctx c) ~path ~guarded:true ~reachable b
    | T.Binop (_, a, b) ->
        check_loads ctx ~path ~guarded ~reachable a;
        check_loads ctx ~path ~guarded ~reachable b
    | T.Unop (_, a) | T.Cast (_, a) ->
        check_loads ctx ~path ~guarded ~reachable a
    | T.Imm_int _ | T.Imm_float _ | T.Idx _ -> ()
  in
  let rec walk ctx ~path ~guarded ~reachable (s : S.t) =
    match s with
    | S.Seq ss -> List.iter (walk ctx ~path ~guarded ~reachable) ss
    | S.For { var; extent; kind = _; body } ->
        let ctx, nonempty = Prove.bind_loop ctx var ~extent in
        walk ctx
          ~path:(path @ [ Arith.Var.name var ])
          ~guarded
          ~reachable:(reachable && nonempty)
          body
    | S.Alloc (_, body) -> walk ctx ~path ~guarded ~reachable body
    | S.Store (b, idxs, v) ->
        let path = path @ [ "store " ^ b.Tir.Buffer.name ] in
        check_access ctx ~path ~guarded ~reachable Kstore b idxs;
        List.iter (check_loads ctx ~path ~guarded ~reachable) idxs;
        check_loads ctx ~path ~guarded ~reachable v
    | S.If (c, then_, else_) ->
        check_loads ctx ~path:(path @ [ "if" ]) ~guarded ~reachable c;
        walk (then_ctx ctx c) ~path:(path @ [ "if" ]) ~guarded:true ~reachable
          then_;
        Option.iter
          (walk (else_ctx ctx c)
             ~path:(path @ [ "else" ])
             ~guarded:true ~reachable)
          else_
    | S.Assert (c, msg) -> (
        let path = path @ [ "assert" ] in
        check_loads ctx ~path ~guarded ~reachable c;
        match cond_status ctx c with
        | True -> ()
        | False when reachable && not guarded ->
            emit
              (Diag.error ~code:"assert-violated" ~func:fname ~path
                 ~key:("assert-violated|" ^ msg)
                 (Printf.sprintf
                    "assertion %S is provably false: %s never holds" msg
                    (T.to_string c)))
        | False ->
            emit
              (Diag.warning ~code:"assert-unproved" ~func:fname ~path
                 ~key:("assert-unproved|" ^ msg)
                 (Printf.sprintf
                    "assertion %S is false on a possibly-unreachable path: %s"
                    msg (T.to_string c)))
        | Unknown ->
            emit
              (Diag.warning ~code:"assert-unproved" ~func:fname ~path
                 ~key:("assert-unproved|" ^ msg)
                 (Printf.sprintf "cannot prove assertion %S: %s" msg
                    (T.to_string c))))
    | S.Evaluate e -> check_loads ctx ~path ~guarded ~reachable e
  in
  let ctx = Prove.create ~bounds f in
  walk ctx ~path:[] ~guarded:false ~reachable:true f.Tir.Prim_func.body;
  Diag.dedup (List.rev !diags)
