(* Proof queries for backends: is a kernel proved memory-safe?

   This is the bridge that makes the static verifier load-bearing for
   performance (DESIGN.md §12): Tir.Imp_compile elides runtime bounds
   checks exactly when every access of the kernel is proved in-bounds
   here. The criterion is strict — any bounds-related diagnostic,
   error or warning, keeps the kernel on checked access:

   - [oob-store]/[oob-load]: proved out of bounds (would fault);
   - [unproved-store]/[unproved-load]: the analysis could not
     discharge the access, so it may be out of bounds at runtime;
   - [dyn-index]: a data-dependent index the analysis cannot see
     through;
   - [rank-mismatch]: the access shape itself is malformed.

   Assertion diagnostics ([assert-violated]/[assert-unproved]) do not
   block elision: asserts keep their own runtime check in every
   backend regardless of bounds elision. *)

let blocking_codes =
  [
    "oob-store";
    "oob-load";
    "unproved-store";
    "unproved-load";
    "dyn-index";
    "rank-mismatch";
  ]

let memory_safe ?bounds (f : Tir.Prim_func.t) =
  let diags = Tir_safety.check ?bounds f in
  not
    (List.exists
       (fun (d : Diag.t) -> List.mem d.Diag.code blocking_codes)
       diags)

(* A memoizing prover for kernel caches: keyed by kernel name,
   validated by physical identity (same discipline as the caches
   themselves), so serving loops pay the analysis once per kernel
   rather than once per compile. *)
let prover () =
  let memo : (string, Tir.Prim_func.t * bool) Hashtbl.t = Hashtbl.create 32 in
  fun (f : Tir.Prim_func.t) ->
    match Hashtbl.find_opt memo f.Tir.Prim_func.name with
    | Some (f', safe) when f' == f -> safe
    | _ ->
        let safe = memory_safe f in
        Hashtbl.replace memo f.Tir.Prim_func.name (f, safe);
        safe
