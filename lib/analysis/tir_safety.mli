(** TIR memory-safety analysis.

    Walks a loop-level tensor program and classifies every buffer
    access (stores and loads, including data-dependent gathers) as
    proved in-bounds (no diagnostic), proved out-of-bounds
    ({e Error}), or unprovable ({e Warning}). Loop variables range
    over [\[0, extent - 1\]]; free shape variables are assumed [>= 1]
    with optional annotated upper bounds. Branch guards contribute
    hypotheses on the then-path, so bound-checked accesses discharge.

    [Assert] statements are checked the same way: a condition proved
    false in a reachable, unguarded context is an {e Error}
    ([assert-violated]); an unprovable one is a {e Warning}
    ([assert-unproved]); a proved-redundant one is silent.

    Diagnostic codes: [oob-store], [oob-load], [unproved-store],
    [unproved-load], [dyn-index], [rank-mismatch], [assert-violated],
    [assert-unproved]. An {e Error} is only emitted when the access is
    provably executed: the enclosing loops are provably nonempty, no
    guard encloses it, and the index interval is exact (its endpoints
    are attained). *)

val check :
  ?bounds:(Arith.Var.t * int) list ->
  ?func:string ->
  Tir.Prim_func.t ->
  Diag.t list
(** [bounds] gives annotated upper bounds for symbolic shape
    variables; [func] overrides the function name used in
    diagnostics (defaults to the prim func's own name). *)
