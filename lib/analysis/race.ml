module E = Arith.Expr
module SB = Arith.Sym_bounds
module S = Tir.Stmt
module T = Tir.Texpr

type akind = Write | Read

type acc = {
  kind : akind;
  buf : Tir.Buffer.t;
  idxs : E.t option list;
  inner : (Arith.Var.t * E.t) list;  (* loops between the parallel loop and the access *)
  guarded : bool;
  reachable : bool;
}

let simp = Arith.Simplify.simplify

let check ?(bounds = []) ?func (f : Tir.Prim_func.t) : Diag.t list =
  let fname = match func with Some n -> n | None -> f.Tir.Prim_func.name in
  let diags = ref [] in
  let emit d = diags := d :: !diags in

  let check_parallel ctx ~reachable ~path pvar extent body =
    let at_least_2 =
      match (Prove.eval ctx extent).SB.lo with
      | Some l ->
          Arith.Analyzer.prove_nonneg ctx.Prove.az (simp (E.sub l (E.const 2)))
      | None -> false
    in
    let path = path @ [ Arith.Var.name pvar ] in
    (* Collect all accesses under the loop, tracking the serial loops
       between the parallel loop and each access. Buffers allocated
       inside the body are iteration-private: no cross-iteration race
       is possible on them. *)
    let accs = ref [] in
    let private_bufs = ref [] in
    let add kind buf idxs ~inner ~guarded ~reachable =
      accs :=
        { kind; buf; idxs = List.map Lin.to_expr idxs; inner; guarded; reachable }
        :: !accs
    in
    let add_loads e ~inner ~guarded ~reachable =
      List.iter
        (fun (b, tidxs) -> add Read b tidxs ~inner ~guarded ~reachable)
        (T.loads e)
    in
    let rec collect cctx ~inner ~guarded ~reachable s =
      match s with
      | S.Seq ss -> List.iter (collect cctx ~inner ~guarded ~reachable) ss
      | S.For { var; extent; kind = _; body } ->
          let cctx, nonempty = Prove.bind_loop cctx var ~extent in
          collect cctx
            ~inner:(inner @ [ (var, extent) ])
            ~guarded
            ~reachable:(reachable && nonempty)
            body
      | S.Alloc (b, body) ->
          private_bufs := b.Tir.Buffer.id :: !private_bufs;
          collect cctx ~inner ~guarded ~reachable body
      | S.Store (b, idxs, v) ->
          add Write b idxs ~inner ~guarded ~reachable;
          List.iter (add_loads ~inner ~guarded ~reachable) idxs;
          add_loads v ~inner ~guarded ~reachable
      | S.If (c, then_, else_) ->
          add_loads c ~inner ~guarded ~reachable;
          collect cctx ~inner ~guarded:true ~reachable then_;
          Option.iter (collect cctx ~inner ~guarded:true ~reachable) else_
      | S.Assert (c, _) | S.Evaluate c -> add_loads c ~inner ~guarded ~reachable
    in
    let pctx, _ = Prove.bind_loop ctx pvar ~extent in
    collect pctx ~inner:[] ~guarded:false ~reachable:true body;
    let accs = Array.of_list (List.rev !accs) in

    (* Two fresh copies of the parallel iteration, [v1 <> v2]. *)
    let v1 = Arith.Var.fresh (Arith.Var.name pvar ^ "'") in
    let v2 = Arith.Var.fresh (Arith.Var.name pvar ^ "''") in
    let pair_ctx =
      let c, _ = Prove.bind_loop ctx v1 ~extent in
      let c, _ = Prove.bind_loop c v2 ~extent in
      c
    in
    (* Renaming of one access's iteration: the parallel var becomes
       [pcopy] and every inner serial loop var gets a fresh copy bound
       to the same (renamed) extent. *)
    let rename_iteration ctx0 pcopy (a : acc) =
      let sub = ref (Arith.Var.Map.singleton pvar (E.var pcopy)) in
      let ctx = ref ctx0 in
      List.iter
        (fun (v, ext) ->
          let v' = Arith.Var.fresh (Arith.Var.name v ^ "'") in
          let c, _ = Prove.bind_loop !ctx v' ~extent:(E.subst !sub ext) in
          ctx := c;
          sub := Arith.Var.Map.add v (E.var v') !sub)
        a.inner;
      (!ctx, !sub)
    in
    (* diff = c*(v1 - v2) + r with |c| >= 1 and |r| <= |c| - 1 means
       distinct iterations cannot produce diff = 0. *)
    let disjoint_with ctx c r =
      Prove.prove_le ctx (E.const 1) c
      && Prove.prove_le ctx r (simp (E.sub c (E.const 1)))
      && Prove.prove_le ctx (simp (E.sub (E.const 1) c)) r
    in
    let dim_disjoint ctx ia ib =
      let diff = simp (E.sub ia ib) in
      let coeff v =
        simp (E.sub (E.subst (Arith.Var.Map.singleton v (E.add (E.var v) (E.const 1))) diff) diff)
      in
      let c1 = coeff v1 and c2 = coeff v2 in
      let clean e =
        let fv = E.free_vars e in
        not (Arith.Var.Set.mem v1 fv) && not (Arith.Var.Set.mem v2 fv)
      in
      clean c1 && clean c2
      && Arith.Simplify.prove_equal (E.add c1 c2) (E.const 0)
      &&
      let r = simp (E.sub diff (E.add (E.mul c1 (E.var v1)) (E.mul c2 (E.var v2)))) in
      clean r
      && (disjoint_with ctx c1 r
         || disjoint_with ctx (simp (E.sub (E.const 0) c1)) (simp (E.sub (E.const 0) r)))
    in
    let check_pair (a : acc) (b : acc) =
      let kinds = if a.kind = Write && b.kind = Write then `Ww else `Rw in
      let code_err = match kinds with `Ww -> "race-ww" | `Rw -> "race-rw" in
      let bname = a.buf.Tir.Buffer.name in
      let warn reason =
        emit
          (Diag.warning ~code:"race-unproved" ~func:fname ~path
             ~key:(Printf.sprintf "race-unproved|%s|%s" bname
                     (match kinds with `Ww -> "ww" | `Rw -> "rw"))
             (Printf.sprintf
                "cannot prove %s accesses to buffer %s disjoint across \
                 iterations of parallel loop %s%s"
                (match kinds with `Ww -> "write/write" | `Rw -> "write/read")
                bname (Arith.Var.name pvar) reason))
      in
      let all_idx =
        List.for_all Option.is_some a.idxs && List.for_all Option.is_some b.idxs
      in
      if (not all_idx) || List.length a.idxs <> List.length b.idxs then
        warn " (data-dependent or mismatched indices)"
      else
        let ia = List.map Option.get a.idxs and ib = List.map Option.get b.idxs in
        let ctx, sub_a = rename_iteration pair_ctx v1 a in
        let ctx, sub_b = rename_iteration ctx v2 b in
        let disjoint =
          List.exists2
            (fun ea eb -> dim_disjoint ctx (E.subst sub_a ea) (E.subst sub_b eb))
            ia ib
        in
        if disjoint then ()
        else
          (* Definite race: with shared inner positions, every
             dimension's indices are provably equal irrespective of the
             parallel iteration. *)
          let sub1 = Arith.Var.Map.singleton pvar (E.var v1)
          and sub2 = Arith.Var.Map.singleton pvar (E.var v2) in
          let definite =
            List.for_all2
              (fun ea eb ->
                Arith.Simplify.prove_equal (E.subst sub1 ea) (E.subst sub2 eb))
              ia ib
            && at_least_2 && reachable && a.reachable && b.reachable
            && (not a.guarded) && not b.guarded
          in
          if definite then
            emit
              (Diag.error ~code:code_err ~func:fname ~path
                 ~key:(Printf.sprintf "%s|%s" code_err bname)
                 (Printf.sprintf
                    "%s race: two distinct iterations of parallel loop %s %s \
                     buffer %s at the same indices"
                    (match kinds with `Ww -> "write/write" | `Rw -> "write/read")
                    (Arith.Var.name pvar)
                    (match kinds with
                    | `Ww -> "both write"
                    | `Rw -> "write and read")
                    bname))
          else warn ""
    in
    let n = Array.length accs in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        let a = accs.(i) and b = accs.(j) in
        if
          (a.kind = Write || b.kind = Write)
          && Tir.Buffer.equal a.buf b.buf
          && not (List.mem a.buf.Tir.Buffer.id !private_bufs)
        then check_pair a b
      done
    done
  in
  let rec walk ctx ~reachable ~path (s : S.t) =
    match s with
    | S.Seq ss -> List.iter (walk ctx ~reachable ~path) ss
    | S.For { var; extent; kind; body } ->
        if kind = S.Parallel then check_parallel ctx ~reachable ~path var extent body;
        let ctx, nonempty = Prove.bind_loop ctx var ~extent in
        walk ctx
          ~reachable:(reachable && nonempty)
          ~path:(path @ [ Arith.Var.name var ])
          body
    | S.Alloc (_, body) -> walk ctx ~reachable ~path body
    | S.If (_, then_, else_) ->
        (* A guard may keep the loop from running: suppress definite
           errors underneath by marking the region unreachable. *)
        walk ctx ~reachable:false ~path:(path @ [ "if" ]) then_;
        Option.iter (walk ctx ~reachable:false ~path:(path @ [ "else" ])) else_
    | S.Store _ | S.Assert _ | S.Evaluate _ -> ()
  in
  let ctx = Prove.create ~bounds f in
  walk ctx ~reachable:true ~path:[] f.Tir.Prim_func.body;
  Diag.dedup (List.rev !diags)
