(** Parallel-race detection for loop-level tensor programs.

    For every [Parallel] loop, considers each pair of accesses to the
    same buffer inside the loop body (write/write and write/read) and
    asks whether two {e symbolically distinct} iterations [i <> i']
    can touch the same element:

    - {e proved disjoint} — some dimension's index difference is
      affine in the two iteration copies, [c*(i - i') + r] with
      provable [|r| <= |c| - 1] and [|c| >= 1], so distinct iterations
      can never alias. This covers both the plain [Y\[i\]] pattern
      ([c = 1, r = 0]) and tiled [Y\[io*32 + ii\]] stores
      ([c = 32, r = ii - ii' in \[-31, 31\]]). No diagnostic.
    - {e definite race} — every dimension's indices are provably equal
      irrespective of the parallel iteration (the classic unguarded
      reduction [Y\[0\] += ...]), the loop provably runs at least two
      iterations, and the access is reachable and unguarded. Error
      [race-ww] / [race-rw].
    - otherwise a {e Warning} [race-unproved].

    Serial loops nested inside the parallel loop are renamed per
    iteration (different iterations may be at different inner
    positions); loops enclosing the parallel loop are shared. *)

val check :
  ?bounds:(Arith.Var.t * int) list ->
  ?func:string ->
  Tir.Prim_func.t ->
  Diag.t list
