type t = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }

(* One-ulp outward widening of finite endpoints. The endpoint
   computations below are done in double precision with unknown
   rounding direction; pushing each endpoint one representable value
   outward restores containment of the exact real result. *)
let down x = if Float.is_finite x then Float.pred x else x
let up x = if Float.is_finite x then Float.succ x else x

let v lo hi =
  if Float.is_nan lo || Float.is_nan hi then top
  else if lo <= hi then { lo; hi }
  else { lo = hi; hi = lo }

let point x = if Float.is_nan x then top else { lo = x; hi = x }
let out lo hi = v (down lo) (up hi)
let is_finite t = Float.is_finite t.lo && Float.is_finite t.hi
let contains_zero t = t.lo <= 0.0 && t.hi >= 0.0
let mag t = Float.max (Float.abs t.lo) (Float.abs t.hi)

let min_abs t =
  if contains_zero t then 0.0 else Float.min (Float.abs t.lo) (Float.abs t.hi)

let width t = t.hi -. t.lo
let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let add a b = out (a.lo +. b.lo) (a.hi +. b.hi)
let sub a b = out (a.lo -. b.hi) (a.hi -. b.lo)

(* 0 * inf = NaN under IEEE; in interval arithmetic the product of a
   zero endpoint with anything is 0. *)
let prod x y = if x = 0.0 || y = 0.0 then 0.0 else x *. y

let mul a b =
  let p1 = prod a.lo b.lo
  and p2 = prod a.lo b.hi
  and p3 = prod a.hi b.lo
  and p4 = prod a.hi b.hi in
  out
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))

let div a b =
  if contains_zero b then top
  else
    let q1 = a.lo /. b.lo
    and q2 = a.lo /. b.hi
    and q3 = a.hi /. b.lo
    and q4 = a.hi /. b.hi in
    if
      Float.is_nan q1 || Float.is_nan q2 || Float.is_nan q3 || Float.is_nan q4
    then top
    else
      out
        (Float.min (Float.min q1 q2) (Float.min q3 q4))
        (Float.max (Float.max q1 q2) (Float.max q3 q4))

let neg a = { lo = -.a.hi; hi = -.a.lo }

let abs_ a =
  if a.lo >= 0.0 then a
  else if a.hi <= 0.0 then neg a
  else { lo = 0.0; hi = mag a }

let min_ a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }
let max_ a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

let square a =
  let m = mag a and n = min_abs a in
  out (prod n n) (prod m m)

let scale c a =
  if Float.is_nan c then top
  else if c >= 0.0 then out (prod c a.lo) (prod c a.hi)
  else out (prod c a.hi) (prod c a.lo)

(* Monotone functions: evaluate at the endpoints, widen outward. *)
let exp_ a = out (exp a.lo) (exp a.hi)
let log_ a = if a.lo <= 0.0 then top else out (log a.lo) (log a.hi)

let sqrt_ a =
  let lo = Float.max 0.0 a.lo and hi = Float.max 0.0 a.hi in
  out (sqrt lo) (sqrt hi)

let rsqrt_ a =
  if a.lo <= 0.0 then top else out (1.0 /. sqrt a.hi) (1.0 /. sqrt a.lo)

let clamp1 t = { lo = Float.max (-1.0) t.lo; hi = Float.min 1.0 t.hi }
let tanh_ a = clamp1 (out (tanh a.lo) (tanh a.hi))

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let sigmoid_ a =
  let t = out (sigmoid a.lo) (sigmoid a.hi) in
  { lo = Float.max 0.0 t.lo; hi = Float.min 1.0 t.hi }

(* Tir.Interp.erf is the Abramowitz–Stegun 7.1.26 approximation with
   |error| <= 1.5e-7; widen by 2e-7 on each side to cover it. *)
let erf_ a =
  clamp1 (v (Tir.Interp.erf a.lo -. 2e-7) (Tir.Interp.erf a.hi +. 2e-7))

let trig = { lo = -1.0; hi = 1.0 }
let to_string t = Printf.sprintf "[%.6g, %.6g]" t.lo t.hi
