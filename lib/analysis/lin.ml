module E = Arith.Expr
module T = Tir.Texpr

let is_pow2_mask m = m >= 0 && (m + 1) land m = 0

let rec to_expr (e : T.t) : E.t option =
  match e with
  | T.Imm_int c -> Some (E.const c)
  | T.Idx e -> Some e
  | T.Binop (op, a, b) -> (
      match (to_expr a, to_expr b) with
      | Some a, Some b -> (
          match op with
          | T.Add -> Some (E.add a b)
          | T.Sub -> Some (E.sub a b)
          | T.Mul -> Some (E.mul a b)
          | T.Floor_div -> Some (E.floor_div a b)
          | T.Floor_mod -> Some (E.floor_mod a b)
          | T.Min -> Some (E.min_ a b)
          | T.Max -> Some (E.max_ a b)
          | T.Shift_left -> (
              match E.as_const b with
              | Some k when k >= 0 && k < 62 ->
                  Some (E.mul a (E.const (1 lsl k)))
              | _ -> None)
          | T.Shift_right -> (
              (* Arithmetic shift right is floor division by 2^k. *)
              match E.as_const b with
              | Some k when k >= 0 && k < 62 ->
                  Some (E.floor_div a (E.const (1 lsl k)))
              | _ -> None)
          | T.Bit_and -> (
              (* x & (2^k - 1) = x mod 2^k in two's complement. *)
              match (E.as_const a, E.as_const b) with
              | _, Some m when is_pow2_mask m ->
                  Some (E.floor_mod a (E.const (m + 1)))
              | Some m, _ when is_pow2_mask m ->
                  Some (E.floor_mod b (E.const (m + 1)))
              | _ -> None)
          | T.Div | T.Pow | T.Bit_or | T.Bit_xor | T.Eq | T.Ne | T.Lt
          | T.Le | T.Gt | T.Ge | T.And | T.Or ->
              None)
      | _ -> None)
  | T.Imm_float _ | T.Load _ | T.Unop _ | T.Cast _ | T.Select _ -> None

type hyp = Le of E.t * E.t

let one = E.const 1

let rec hyps_of_cond (c : T.t) : hyp list =
  match c with
  | T.Binop (T.And, a, b) -> hyps_of_cond a @ hyps_of_cond b
  | T.Binop (cmp, a, b) -> (
      match (to_expr a, to_expr b) with
      | Some a, Some b -> (
          match cmp with
          | T.Lt -> [ Le (E.add a one, b) ]
          | T.Le -> [ Le (a, b) ]
          | T.Gt -> [ Le (E.add b one, a) ]
          | T.Ge -> [ Le (b, a) ]
          | T.Eq -> [ Le (a, b); Le (b, a) ]
          | _ -> [])
      | _ -> [])
  | _ -> []

let rec neg_hyps_of_cond (c : T.t) : hyp list =
  match c with
  (* not (a || b) = (not a) && (not b) *)
  | T.Binop (T.Or, a, b) -> neg_hyps_of_cond a @ neg_hyps_of_cond b
  | T.Binop (cmp, a, b) -> (
      match (to_expr a, to_expr b) with
      | Some a, Some b -> (
          match cmp with
          | T.Lt -> [ Le (b, a) ]
          | T.Le -> [ Le (E.add b one, a) ]
          | T.Gt -> [ Le (a, b) ]
          | T.Ge -> [ Le (E.add a one, b) ]
          | T.Ne -> [ Le (a, b); Le (b, a) ]
          | T.Eq -> (
              (* a <> b is not a linear fact in general, but the
                 parity idiom [x mod c <> 0] implies [x mod c >= 1]
                 because floor-mod by a positive constant is
                 nonnegative. *)
              match (a, b) with
              | E.Floor_mod (_, E.Const c), E.Const 0 when c > 0 ->
                  [ Le (one, a) ]
              | E.Const 0, E.Floor_mod (_, E.Const c) when c > 0 ->
                  [ Le (one, b) ]
              | _ -> [])
          | _ -> [])
      | _ -> [])
  | T.Unop (T.Not, c) -> hyps_of_cond c
  | _ -> []
