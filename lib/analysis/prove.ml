module E = Arith.Expr
module SB = Arith.Sym_bounds

type ctx = {
  az : Arith.Analyzer.t;
  senv : SB.t Arith.Var.Map.t;
  hyps : Lin.hyp list;
}

let create ?(bounds = []) (f : Tir.Prim_func.t) =
  let az = Arith.Analyzer.create () in
  Arith.Var.Set.iter
    (fun v ->
      match List.assoc_opt v bounds with
      | Some hi -> Arith.Analyzer.bind_upper_bound az v ~hi
      | None -> Arith.Analyzer.bind_at_least az v ~lo:1)
    (Tir.Prim_func.free_sym_vars f);
  { az; senv = Arith.Var.Map.empty; hyps = [] }

let eval ctx e =
  SB.eval
    ~env:(fun v -> Arith.Var.Map.find_opt v ctx.senv)
    ~nonneg:(fun e ->
      Arith.Analyzer.prove_nonneg ctx.az (Arith.Simplify.simplify e))
    (Arith.Simplify.simplify e)

let bind_range ctx v ~lo ~hi ~exact =
  { ctx with senv = Arith.Var.Map.add v (SB.range ~var:v ~lo ~hi ~exact) ctx.senv }

let bind_loop ctx v ~extent =
  let ext = eval ctx extent in
  let nonempty =
    match ext.SB.lo with
    | Some l ->
        Arith.Analyzer.prove_nonneg ctx.az
          (Arith.Simplify.simplify (E.sub l (E.const 1)))
    | None -> false
  in
  let iv =
    {
      SB.lo = Some (E.const 0);
      hi = Option.map (fun h -> Arith.Simplify.simplify (E.sub h (E.const 1))) ext.SB.hi;
      exact = ext.SB.exact;
      vars = Arith.Var.Set.singleton v;
    }
  in
  ({ ctx with senv = Arith.Var.Map.add v iv ctx.senv }, nonempty)

(* Guard facts about [v mod c] tighten [v]'s own interval — the RoPE
   even/odd-lane idiom. [v mod c = 0] rounds both endpoints to
   multiples of [c]; [v mod c >= k] (constant endpoints only) moves
   them to the nearest value with a compatible residue. *)
let refine ctx hyps =
  let tighten v f =
    match Arith.Var.Map.find_opt v ctx.senv with
    | Some iv -> { ctx with senv = Arith.Var.Map.add v (f iv) ctx.senv }
    | None -> ctx
  in
  List.fold_left
    (fun ctx (Lin.Le (l, r)) ->
      match (l, r) with
      | E.Floor_mod (E.Var v, E.Const c), E.Const 0 when c > 0 ->
          let down h =
            Arith.Simplify.simplify
              (E.mul (E.floor_div h (E.const c)) (E.const c))
          in
          let up l0 =
            Arith.Simplify.simplify
              (E.sub (E.const 0)
                 (E.mul
                    (E.floor_div (E.sub (E.const 0) l0) (E.const c))
                    (E.const c)))
          in
          tighten v (fun iv ->
              { iv with SB.lo = Option.map up iv.SB.lo;
                hi = Option.map down iv.SB.hi })
      | E.Const k, E.Floor_mod (E.Var v, E.Const c) when k >= 1 && k < c ->
          tighten v (fun iv ->
              let lo =
                match iv.SB.lo with
                | Some (E.Const l0) ->
                    let r = E.fmod l0 c in
                    Some (E.const (if r >= k then l0 else l0 + k - r))
                | other -> other
              in
              let hi =
                match iv.SB.hi with
                | Some (E.Const h0) ->
                    let r = E.fmod h0 c in
                    Some (E.const (if r >= k then h0 else (E.fdiv h0 c * c) - 1))
                | other -> other
              in
              { iv with SB.lo; hi })
      | _ -> ctx)
    ctx hyps

(* Interval proof of [d >= 0]. *)
let box_nonneg ctx d =
  match (eval ctx d).SB.lo with
  | Some l -> Arith.Analyzer.prove_nonneg ctx.az (Arith.Simplify.simplify l)
  | None -> false

let prove_le ctx a b =
  let d = Arith.Simplify.simplify (E.sub b a) in
  box_nonneg ctx d
  || List.exists
       (fun (Lin.Le (l, r)) ->
         (* d >= (r - l) + (d - (r - l)) and r - l >= 0, so d >= 0
            follows from an interval proof of d - r + l >= 0. *)
         box_nonneg ctx (Arith.Simplify.simplify (E.add d (E.sub l r))))
       ctx.hyps

let prove_nonneg ctx e = prove_le ctx (E.const 0) e
