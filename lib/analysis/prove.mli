(** Proving context shared by the TIR analyses.

    Wraps an {!Arith.Analyzer} (integer intervals for the kernel's
    free shape variables: every extent is at least 1, with upper
    bounds from user annotations), a symbolic environment mapping
    in-scope loop variables to their iteration ranges, and the linear
    hypotheses contributed by enclosing guards. *)

type ctx = {
  az : Arith.Analyzer.t;
  senv : Arith.Sym_bounds.t Arith.Var.Map.t;
  hyps : Lin.hyp list;
}

val create : ?bounds:(Arith.Var.t * int) list -> Tir.Prim_func.t -> ctx
(** Fresh context for a kernel: binds every free symbolic variable of
    the function to [\[1, hi\]] ([hi] from [bounds] when annotated,
    unbounded otherwise). The [>= 1] convention mirrors the rest of
    the compiler: extents of instantiated kernels are nonzero. *)

val bind_loop : ctx -> Arith.Var.t -> extent:Arith.Expr.t -> ctx * bool
(** Enter a loop: binds the variable to [\[0, extent - 1\]] (extent
    bounds evaluated through the current environment, so nested
    data-dependent extents stay sound). The boolean is [true] when the
    loop provably executes at least once. *)

val bind_range :
  ctx -> Arith.Var.t -> lo:Arith.Expr.t -> hi:Arith.Expr.t -> exact:bool -> ctx
(** Bind an arbitrary symbolic range (used by the race analysis for
    renamed per-iteration variables). *)

val refine : ctx -> Lin.hyp list -> ctx
(** Strengthen bound-variable intervals from guard facts about
    residues: [v mod c = 0] rounds the interval endpoints of [v] to
    multiples of [c]; [v mod c >= k] (with constant endpoints) moves
    them to the nearest compatible residue. Facts that do not match
    these shapes are ignored (they still participate as {!prove_le}
    hypotheses). *)

val eval : ctx -> Arith.Expr.t -> Arith.Sym_bounds.t
(** Symbolic interval of an expression (simplified first). *)

val prove_le : ctx -> Arith.Expr.t -> Arith.Expr.t -> bool
(** [prove_le ctx a b] — sound semi-decision of [a <= b]: first by
    interval evaluation of [b - a], then modulo one guard hypothesis
    ([a <= b] follows from [l <= r] when [b - a >= r - l] is provable
    by intervals). *)

val prove_nonneg : ctx -> Arith.Expr.t -> bool
