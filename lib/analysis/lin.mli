(** Lowering of scalar tensor-program expressions ({!Tir.Texpr}) into
    the symbolic integer algebra ({!Arith.Expr}) that the provers
    understand, plus extraction of linear hypotheses from branch
    guards. Shared by the memory-safety and race analyses. *)

val to_expr : Tir.Texpr.t -> Arith.Expr.t option
(** [Some e] when the scalar expression is a pure integer index
    computation: immediates, [Idx], the integer-algebra binops, and
    power-of-two shift/mask tricks ([x >> k] = [x / 2^k],
    [x & (2^k - 1)] = [x mod 2^k]). [None] for anything involving
    floats, loads (data-dependent indices), casts or comparisons. *)

type hyp = Le of Arith.Expr.t * Arith.Expr.t
(** A proved-on-this-path fact [lhs <= rhs]. *)

val hyps_of_cond : Tir.Texpr.t -> hyp list
(** Hypotheses that hold inside the then-branch of a guard: a
    conjunction of integer comparisons becomes a list of [Le] facts
    (equalities contribute both directions); unconvertible conjuncts
    contribute nothing. *)

val neg_hyps_of_cond : Tir.Texpr.t -> hyp list
(** Hypotheses that hold when the guard is {e false} (the else
    branch): negated comparisons, plus the parity idiom
    [x mod c <> 0  ==>  x mod c >= 1]. *)
