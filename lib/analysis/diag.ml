type severity = Error | Warning

type t = {
  severity : severity;
  code : string;
  func : string;
  path : string list;
  message : string;
  pass : string option;
  key : string;
  data : (string * string) list;
}

let make severity ~code ~func ?(path = []) ?key ?(data = []) message =
  let key = match key with Some k -> k | None -> code ^ "|" ^ message in
  { severity; code; func; path; message; pass = None; key; data }

let error ~code ~func ?path ?key ?data message =
  make Error ~code ~func ?path ?key ?data message

let warning ~code ~func ?path ?key ?data message =
  make Warning ~code ~func ?path ?key ?data message

let with_pass t pass = { t with pass = Some pass }
let is_error t = t.severity = Error
let errors ts = List.filter is_error ts
let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string t =
  Printf.sprintf "%s[%s] %s%s: %s%s"
    (severity_to_string t.severity)
    t.code t.func
    (match t.path with [] -> "" | p -> " @ " ^ String.concat "/" p)
    t.message
    (match t.pass with
    | Some p -> Printf.sprintf " (introduced by %s)" p
    | None -> "")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let q s = "\"" ^ json_escape s ^ "\"" in
  Printf.sprintf
    "{\"severity\": %s, \"code\": %s, \"func\": %s, \"path\": [%s], \
     \"message\": %s, \"pass\": %s, \"data\": {%s}}"
    (q (severity_to_string t.severity))
    (q t.code) (q t.func)
    (String.concat ", " (List.map q t.path))
    (q t.message)
    (match t.pass with Some p -> q p | None -> "null")
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (q k) (q v)) t.data))

let sorted ts =
  List.stable_sort
    (fun a b ->
      compare
        (match a.severity with Error -> 0 | Warning -> 1)
        (match b.severity with Error -> 0 | Warning -> 1))
    ts

let render ts = String.concat "\n" (List.map to_string (sorted ts))

(* Version history of the machine-readable rendering:
   1 — bare JSON array of diagnostic objects (PR 5);
   2 — object wrapper {schema_version, diagnostics}, diagnostic
       objects gain a string-valued "data" payload (error-bound
       provenance for fp-* codes). *)
let schema_version = 2

let render_json ts =
  Printf.sprintf "{\"schema_version\": %d,\n \"diagnostics\": [%s]}"
    schema_version
    (String.concat ",\n  " (List.map to_json (sorted ts)))

let dedup ts =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t.key then false
      else (
        Hashtbl.add seen t.key ();
        true))
    ts

let tally ts =
  List.fold_left
    (fun acc t ->
      match List.assoc_opt t.key acc with
      | Some n -> (t.key, n + 1) :: List.remove_assoc t.key acc
      | None -> (t.key, 1) :: acc)
    [] ts
