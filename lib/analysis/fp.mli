(** First-order floating-point round-off certification for tensor
    programs (FPTaylor-style, DESIGN.md §15).

    Abstractly interprets a {!Tir.Prim_func} over pairs of a real-value
    interval ({!Fp_interval}) and an absolute round-off error bound.
    Every float [Binop]/[Unop] contributes [ulp_op * u * |result|]
    (one shared per-op ulp table covering [Exp]/[Log]/[Sqrt]/[Rsqrt]/
    [Tanh]/[Erf]/...), propagated first-order through the operation's
    Lipschitz constant; reductions recognized as self-accumulating
    stores collapse to closed forms scaled by loop trip counts bounded
    through the {!Prove} shape/loop context; quantized loads (f16
    representation, q4/q3 bit-extraction) contribute their
    representation error. Each output buffer's bound is normalized to
    ulps of the coarsest representation feeding the kernel and checked
    against a per-kernel budget.

    Severity policy mirrors {!Tir_safety}: a budget violation is an
    [Error] ([fp-budget]) only when the whole derivation is {e proved}
    — finite intervals, exact constant trip counts, no ill-conditioned
    division/[Rsqrt]/[Log] (interval spread beyond
    {!opts.cond_limit}). Anything less certain degrades to a
    [Warning] ([fp-budget-unproved], [fp-unbounded], [fp-domain]), so
    symbolic-extent reductions can never hard-fail the lint gate. *)

type opts = {
  budget_ulps : float;
      (** per-kernel output error budget, in ulps of the kernel's
          coarsest representation (default [2^24]) *)
  input_mag : float;
      (** input buffers are assumed to hold values in
          [[-input_mag, input_mag]] (default [1.0]) *)
  cond_limit : float;
      (** interval spread ([mag / min_abs]) beyond which a divisor or
          [Rsqrt]/[Log] argument is considered ill-conditioned and the
          derivation demoted to Warning-only (default [1e4]) *)
  max_trip : int;
      (** largest reduction extent the trip-count search will try to
          prove (default [2^24]) *)
}

val default_opts : opts

val eps_of_dtype : Base.Dtype.t -> float
(** Unit roundoff: [2^-11] for [F16], [2^-24] for [F32], [0] for
    integer types. *)

val ulp_of_unop : Tir.Texpr.unop -> float
(** The shared per-op ulp-error table: the assumed faithful-rounding
    multiple of [u * |result|] charged by one application. *)

type bound = {
  buffer : Tir.Buffer.t;  (** the output this bound certifies *)
  iv : Fp_interval.t;  (** real-value interval of the output *)
  abs_err : float;  (** absolute round-off bound over that interval *)
  ulps : float;  (** [abs_err / (eps * mag iv)] *)
  eps : float;  (** normalization unit: coarsest representation *)
  proved : bool;  (** derivation complete — Error-eligible *)
}

type report = { bounds : bound list; diags : Diag.t list }

val analyze :
  ?bounds:(Arith.Var.t * int) list ->
  ?opts:opts ->
  ?func:string ->
  Tir.Prim_func.t ->
  report
(** Certify every float output of the kernel. [bounds] are upper
    bounds for free symbolic shape variables (same convention as
    {!Tir_safety.check}). *)

val check :
  ?bounds:(Arith.Var.t * int) list ->
  ?opts:opts ->
  ?func:string ->
  Tir.Prim_func.t ->
  Diag.t list
(** Diagnostics only (the [--lint] entry point). *)
