open Relax_core

type stats = {
  mutable elapsed_us : float;
  mutable ops : int;
  mutable peak_bytes : int;
}

type mode = [ `Numeric | `Timed of Runtime.Device.t ]

let host_overhead_us = 12.0

type env = {
  mode : mode;
  mod_ : Ir_module.t;
  vars : (int, Runtime.Vm.value) Hashtbl.t;  (** Rvar id -> value *)
  sym : (int, int) Hashtbl.t;  (** Arith var id -> value *)
  kcache : Tir.Exec.Cache.t;  (** compiled kernels, per backend + shape sig *)
  st : stats;
  mutable live_bytes : int;
}

let fail fmt = Format.kasprintf failwith fmt

let value_of env (v : Rvar.t) =
  match Hashtbl.find_opt env.vars v.Rvar.id with
  | Some x -> x
  | None -> fail "Eager: variable %s unbound" (Rvar.name v)

let sym_lookup env (v : Arith.Var.t) =
  match Hashtbl.find_opt env.sym v.Arith.Var.id with
  | Some x -> x
  | None -> fail "Eager: symbolic variable %s unbound" (Arith.Var.name v)

(* Bind symbolic variables from a runtime value's shape. *)
let bind_shape env (sinfo : Struct_info.t) (value : Runtime.Vm.value) =
  match (sinfo, value) with
  | Struct_info.Tensor { shape = Struct_info.Known dims; _ }, _
  | Struct_info.Shape (Struct_info.Known dims), _ ->
      let actual = Runtime.Vm.value_shape value in
      List.iteri
        (fun i dim ->
          match dim with
          | Arith.Expr.Var v ->
              Hashtbl.replace env.sym v.Arith.Var.id actual.(i)
          | _ -> ())
        dims
  | _, _ -> ()

let alloc_tensor env dtype shape =
  let bytes =
    Array.fold_left ( * ) 1 shape * Base.Dtype.size_in_bytes dtype
  in
  env.live_bytes <- env.live_bytes + bytes;
  if env.live_bytes > env.st.peak_bytes then env.st.peak_bytes <- env.live_bytes;
  match env.mode with
  | `Numeric -> Runtime.Vm.tensor (Base.Ndarray.create dtype shape)
  | `Timed _ -> Runtime.Vm.Shadow { shape; dtype }

let charge env kernel lookup =
  env.st.ops <- env.st.ops + 1;
  match env.mode with
  | `Numeric -> env.st.elapsed_us <- env.st.elapsed_us +. host_overhead_us
  | `Timed dev ->
      let cost = Tir.Cost.analyze kernel in
      let flops = float_of_int (Arith.Expr.eval lookup cost.Tir.Cost.flops) in
      let bytes =
        float_of_int
          (Arith.Expr.eval lookup cost.Tir.Cost.bytes_read
          + Arith.Expr.eval lookup cost.Tir.Cost.bytes_written)
      in
      let t =
        Runtime.Device.kernel_time_us dev ~flops ~bytes
          ~compute_eff:dev.Runtime.Device.gen_eff
      in
      env.st.elapsed_us <-
        env.st.elapsed_us +. t +. dev.Runtime.Device.launch_overhead_us
        +. host_overhead_us

(* Execute one tensor program on runtime values. *)
let run_kernel env (kernel : Tir.Prim_func.t) (args : Runtime.Vm.value list)
    (sym_args : (Arith.Var.t * int) list) (out : Runtime.Vm.value) =
  let all = args @ [ out ] in
  let shapes = List.map Runtime.Vm.value_shape all in
  (* Recover the kernel's symbolic env from shapes for costing. *)
  let kenv = Hashtbl.create 8 in
  List.iter
    (fun ((v : Arith.Var.t), x) -> Hashtbl.replace kenv v.Arith.Var.id x)
    sym_args;
  List.iter2
    (fun (b : Tir.Buffer.t) shape ->
      List.iteri
        (fun d dim ->
          match dim with
          | Arith.Expr.Var v ->
              if not (Hashtbl.mem kenv v.Arith.Var.id) then
                Hashtbl.replace kenv v.Arith.Var.id shape.(d)
          | _ -> ())
        b.Tir.Buffer.shape)
    kernel.Tir.Prim_func.params shapes;
  let lookup (v : Arith.Var.t) =
    match Hashtbl.find_opt kenv v.Arith.Var.id with
    | Some x -> x
    | None -> fail "Eager: kernel %s variable %s unbound" kernel.Tir.Prim_func.name (Arith.Var.name v)
  in
  charge env kernel lookup;
  match env.mode with
  | `Numeric ->
      Tir.Exec.Cache.run env.kcache ~sym_args kernel
        (List.map Runtime.Vm.value_tensor all)
  | `Timed _ -> ()

let eval_dims env dims =
  Array.of_list (List.map (Arith.Expr.eval (sym_lookup env)) dims)

let rec eval_expr env (e : Expr.expr) : Runtime.Vm.value =
  match e with
  | Expr.Var v -> value_of env v
  | Expr.Const nd -> Runtime.Vm.tensor nd
  | Expr.Shape_expr dims -> Runtime.Vm.Shape_val (eval_dims env dims)
  | Expr.Tuple es -> Runtime.Vm.Tuple_val (List.map (eval_expr env) es)
  | Expr.Tuple_get (e, i) -> (
      match eval_expr env e with
      | Runtime.Vm.Tuple_val vs -> List.nth vs i
      | _ -> fail "Eager: tuple_get on non-tuple")
  | Expr.Call c -> eval_call env c
  | Expr.Prim_value p ->
      Runtime.Vm.Shape_val [| Arith.Expr.eval (sym_lookup env) p |]
  | Expr.Seq { blocks; body } ->
      List.iter
        (fun (blk : Expr.block) ->
          List.iter
            (fun binding ->
              let v = Expr.binding_var binding in
              let value = eval_expr env (Expr.bound_expr binding) in
              Hashtbl.replace env.vars v.Rvar.id value;
              bind_shape env (Rvar.sinfo v) value)
            blk.Expr.bindings)
        blocks;
      eval_expr env body
  | Expr.If { cond; then_; else_ } ->
      let truthy =
        match eval_expr env cond with
        | Runtime.Vm.Tensor nd ->
            Base.Ndarray.numel nd > 0 && Base.Ndarray.get_flat_float nd 0 <> 0.0
        | Runtime.Vm.Shape_val [| x |] -> x <> 0
        | _ -> fail "Eager: non-scalar condition"
      in
      eval_expr env (if truthy then then_ else else_)
  | Expr.Global_var _ | Expr.Extern_func _ | Expr.Op _ ->
      fail "Eager: unsupported expression"

and eval_call env (c : Expr.call) : Runtime.Vm.value =
  match Expr.as_call_tir (Expr.Call c) with
  | Some (kname, args, out_sinfo, sym_exprs) -> (
      match Ir_module.find_tir env.mod_ kname with
      | Some kernel ->
          let arg_vals = List.map (eval_expr env) args in
          let dims =
            match Struct_info.tensor_shape out_sinfo with
            | Some dims -> eval_dims env dims
            | None -> fail "Eager: call_tir without known output shape"
          in
          let dtype =
            match Struct_info.tensor_dtype out_sinfo with
            | Some dt -> dt
            | None -> Base.Dtype.F32
          in
          let out = alloc_tensor env dtype dims in
          let sym_args =
            List.map2
              (fun v e -> (v, Arith.Expr.eval (sym_lookup env) e))
              kernel.Tir.Prim_func.sym_params sym_exprs
          in
          run_kernel env kernel arg_vals sym_args out;
          out
      | None -> fail "Eager: kernel %s not found" kname)
  | None -> (
      match c.Expr.callee with
      | Expr.Op name -> (
          let args = c.Expr.args in
          let arg_vals = List.map (eval_expr env) args in
          let arg_sinfo =
            List.map
              (fun v ->
                match v with
                | Runtime.Vm.Tensor nd ->
                    Struct_info.tensor
                      (List.map Arith.Expr.const
                         (Array.to_list nd.Base.Ndarray.shape))
                      nd.Base.Ndarray.dtype
                | Runtime.Vm.Shadow { shape; dtype } ->
                    Struct_info.tensor
                      (List.map Arith.Expr.const (Array.to_list shape))
                      dtype
                | Runtime.Vm.Shape_val dims ->
                    Struct_info.shape
                      (List.map Arith.Expr.const (Array.to_list dims))
                | _ -> Struct_info.Object)
              arg_vals
          in
          (* Concretize shape-typed literal args so legalizers see
             static shapes. *)
          let args_concrete =
            List.map
              (fun a ->
                match a with
                | Expr.Shape_expr dims ->
                    Expr.Shape_expr
                      (List.map
                         (fun d ->
                           Arith.Expr.const
                             (Arith.Expr.eval (sym_lookup env) d))
                         dims)
                | a -> a)
              args
          in
          match Op.legalizer name with
          | None -> fail "Eager: operator %s has no legalizer" name
          | Some legalize -> (
              let rule =
                match Op.deduce_rule name with
                | Some r -> r
                | None -> fail "Eager: operator %s has no rule" name
              in
              let out_sinfo = rule ~args:args_concrete ~arg_sinfo in
              match legalize ~args:args_concrete ~arg_sinfo ~out:out_sinfo with
              | None -> fail "Eager: %s not legalizable" name
              | Some { Op.kernel; tensor_args; sym_args } ->
                  let tensor_vals =
                    List.map
                      (fun a ->
                        match a with
                        | Expr.Var _ | Expr.Const _ -> eval_expr env a
                        | _ ->
                            (* positional: match original arg values *)
                            let idx =
                              match
                                List.find_index (fun x -> x == a) args_concrete
                              with
                              | Some i -> i
                              | None -> 0
                            in
                            List.nth arg_vals idx)
                      tensor_args
                  in
                  let dims =
                    match Struct_info.tensor_shape out_sinfo with
                    | Some dims -> eval_dims env dims
                    | None -> fail "Eager: %s output shape unknown" name
                  in
                  let dtype =
                    match Struct_info.tensor_dtype out_sinfo with
                    | Some dt -> dt
                    | None -> Base.Dtype.F32
                  in
                  let out = alloc_tensor env dtype dims in
                  let sym_bindings =
                    List.map2
                      (fun v e -> (v, Arith.Expr.eval (sym_lookup env) e))
                      kernel.Tir.Prim_func.sym_params sym_args
                  in
                  run_kernel env kernel tensor_vals sym_bindings out;
                  out))
      | _ -> fail "Eager: unsupported callee")

let run ?(entry = "main") ?(backend = Tir.Exec.default) mode mod_ args =
  let f =
    match Ir_module.find_func mod_ entry with
    | Some f -> f
    | None -> fail "Eager: function %s not found" entry
  in
  let env =
    {
      mode;
      mod_;
      vars = Hashtbl.create 64;
      sym = Hashtbl.create 16;
      kcache = Tir.Exec.Cache.create ~prove:(Analysis.Proof.prover ()) backend;
      st = { elapsed_us = 0.0; ops = 0; peak_bytes = 0 };
      live_bytes = 0;
    }
  in
  List.iter2
    (fun (p : Rvar.t) v ->
      Hashtbl.replace env.vars p.Rvar.id v;
      bind_shape env (Rvar.sinfo p) v)
    f.Expr.params args;
  let blocks, result = Expr.body_blocks f in
  List.iter
    (fun (blk : Expr.block) ->
      List.iter
        (fun binding ->
          let v = Expr.binding_var binding in
          let value = eval_expr env (Expr.bound_expr binding) in
          Hashtbl.replace env.vars v.Rvar.id value;
          bind_shape env (Rvar.sinfo v) value)
        blk.Expr.bindings)
    blocks;
  (eval_expr env result, env.st)
