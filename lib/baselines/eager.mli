(** A genuine eager-mode executor — the HF-Transformers-with-PyTorch-
    eager baseline mechanism, implemented as our own code path.

    No compilation: the Relax function is walked binding by binding;
    each graph operator is legalized to a tensor program on the fly,
    a fresh output is allocated, and the kernel is interpreted
    (numeric) or charged to the device model (timed), with a host-side
    dispatch overhead per operator. No fusion, no memory planning, no
    graph capture — exactly the mechanisms the paper's eager baseline
    lacks. *)

type stats = {
  mutable elapsed_us : float;
  mutable ops : int;
  mutable peak_bytes : int;
}

type mode = [ `Numeric | `Timed of Runtime.Device.t ]

val host_overhead_us : float
(** Modeled per-operator host dispatch cost (Python + framework). *)

val run :
  ?entry:string ->
  ?backend:Tir.Exec.backend ->
  mode ->
  Relax_core.Ir_module.t ->
  Runtime.Vm.value list ->
  Runtime.Vm.value * stats
(** Execute the entry function ([main] by default) eagerly;
    [backend] picks the kernel execution backend (default imp, with
    proof-elided bounds checks — see {!Tir.Exec}).
    Cross-level calls ([call_tir]) are executed directly; graph
    operators are legalized per call. Tuple results are supported.
    @raise Failure on unsupported constructs. *)
