type data = Float_data of float array | Int_data of int array

type t = { dtype : Dtype.t; shape : int array; data : data }

let numel_of_shape shape =
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Ndarray: negative dimension" else acc * d)
    1 shape

let create dtype shape =
  let n = numel_of_shape shape in
  let data =
    if Dtype.is_float dtype then Float_data (Array.make n 0.0)
    else Int_data (Array.make n 0)
  in
  { dtype; shape = Array.copy shape; data }

let scalar dtype v =
  let t = create dtype [||] in
  (match t.data with
  | Float_data a -> a.(0) <- v
  | Int_data a -> a.(0) <- int_of_float v);
  t

let numel t = numel_of_shape t.shape
let size_in_bytes t = numel t * Dtype.size_in_bytes t.dtype

let linear_index t idx =
  let rank = Array.length t.shape in
  if Array.length idx <> rank then
    invalid_arg
      (Printf.sprintf "Ndarray.linear_index: rank mismatch (%d vs %d)"
         (Array.length idx) rank);
  let off = ref 0 in
  for d = 0 to rank - 1 do
    let i = idx.(d) in
    if i < 0 || i >= t.shape.(d) then
      invalid_arg
        (Printf.sprintf "Ndarray.linear_index: index %d out of bounds [0,%d) at axis %d"
           i t.shape.(d) d);
    off := (!off * t.shape.(d)) + i
  done;
  !off

let float_data t =
  match t.data with Float_data a -> Some a | Int_data _ -> None

let int_data t =
  match t.data with Int_data a -> Some a | Float_data _ -> None

let get_flat_float t i =
  match t.data with Float_data a -> a.(i) | Int_data a -> float_of_int a.(i)

let set_flat_float t i v =
  match t.data with
  | Float_data a -> a.(i) <- v
  | Int_data a -> a.(i) <- int_of_float v

let get_flat_int t i =
  match t.data with Int_data a -> a.(i) | Float_data a -> int_of_float a.(i)

let set_flat_int t i v =
  match t.data with
  | Int_data a -> a.(i) <- v
  | Float_data a -> a.(i) <- float_of_int v

let get_float t idx = get_flat_float t (linear_index t idx)
let set_float t idx v = set_flat_float t (linear_index t idx) v
let get_int t idx = get_flat_int t (linear_index t idx)
let set_int t idx v = set_flat_int t (linear_index t idx) v

let of_float_list dtype shape vals =
  let t = create dtype shape in
  let n = numel t in
  if List.length vals <> n then
    invalid_arg "Ndarray.of_float_list: element count mismatch";
  List.iteri (fun i v -> set_flat_float t i v) vals;
  t

let of_int_list dtype shape vals =
  let t = create dtype shape in
  let n = numel t in
  if List.length vals <> n then
    invalid_arg "Ndarray.of_int_list: element count mismatch";
  List.iteri (fun i v -> set_flat_int t i v) vals;
  t

let to_float_list t = List.init (numel t) (get_flat_float t)

let fill_float t v =
  match t.data with
  | Float_data a -> Array.fill a 0 (Array.length a) v
  | Int_data a -> Array.fill a 0 (Array.length a) (int_of_float v)

let init_float dtype shape f =
  let t = create dtype shape in
  let rank = Array.length shape in
  let idx = Array.make rank 0 in
  let n = numel t in
  for flat = 0 to n - 1 do
    let rem = ref flat in
    for d = rank - 1 downto 0 do
      idx.(d) <- !rem mod shape.(d);
      rem := !rem / shape.(d)
    done;
    set_flat_float t flat (f idx)
  done;
  t

(* Deterministic xorshift so tests and benches are reproducible. *)
let random_uniform ?(seed = 42) dtype shape =
  let t = create dtype shape in
  let state = ref (seed lor 1) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land max_int;
    !state
  in
  let n = numel t in
  for i = 0 to n - 1 do
    if Dtype.is_float dtype then
      set_flat_float t i ((float_of_int (next () mod 20001) /. 10000.0) -. 1.0)
    else set_flat_int t i (next () mod 16)
  done;
  t

let reshape_view t shape =
  if numel_of_shape shape <> numel t then
    invalid_arg "Ndarray.reshape_view: element count mismatch";
  { t with shape = Array.copy shape }

let copy t =
  let data =
    match t.data with
    | Float_data a -> Float_data (Array.copy a)
    | Int_data a -> Int_data (Array.copy a)
  in
  { t with data }

let equal_approx ?(eps = 1e-6) a b =
  a.shape = b.shape
  &&
  match (a.data, b.data) with
  | Float_data x, Float_data y ->
      let ok = ref true in
      Array.iteri (fun i v -> if abs_float (v -. y.(i)) > eps then ok := false) x;
      !ok
  | Int_data x, Int_data y -> x = y
  | Float_data _, Int_data _ | Int_data _, Float_data _ -> false

let pp fmt t =
  let shape_str =
    String.concat "x" (Array.to_list (Array.map string_of_int t.shape))
  in
  Format.fprintf fmt "ndarray<%s, %s>[" shape_str (Dtype.to_string t.dtype);
  let n = min 8 (numel t) in
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf fmt ", ";
    if Dtype.is_float t.dtype then Format.fprintf fmt "%g" (get_flat_float t i)
    else Format.fprintf fmt "%d" (get_flat_int t i)
  done;
  if numel t > 8 then Format.fprintf fmt ", ...";
  Format.fprintf fmt "]"
