(** Dense row-major tensors.

    The numeric container used by the TIR interpreter, the VM's numeric
    mode and the extern library implementations. Floating dtypes are
    backed by a [float array] (computed in double precision; [F16]/[F32]
    only affect the modeled storage footprint), integer dtypes by an
    [int array] so that bitwise quantization arithmetic is exact. *)

type data = Float_data of float array | Int_data of int array

type t = private {
  dtype : Dtype.t;
  shape : int array;
  data : data;
}

val create : Dtype.t -> int array -> t
(** Zero-initialized tensor.
    @raise Invalid_argument on a negative dimension. *)

val scalar : Dtype.t -> float -> t
(** Rank-0 tensor holding one value. *)

val numel : t -> int
val size_in_bytes : t -> int
(** Modeled footprint: [numel * Dtype.size_in_bytes dtype]. *)

val get_float : t -> int array -> float
val set_float : t -> int array -> float -> unit
val get_int : t -> int array -> int
val set_int : t -> int array -> int -> unit

val float_data : t -> float array option
(** The raw backing array of a float-dtype tensor ([None] for integer
    dtypes). Row-major, aliases the tensor: hot paths (the compiled
    kernel layer, library routines) index it directly instead of
    dispatching on dtype per element. *)

val int_data : t -> int array option
(** The raw backing array of an integer-dtype tensor ([None] for
    float dtypes). *)

val get_flat_float : t -> int -> float
val set_flat_float : t -> int -> float -> unit
val get_flat_int : t -> int -> int
val set_flat_int : t -> int -> int -> unit

val linear_index : t -> int array -> int
(** Row-major flattened offset.
    @raise Invalid_argument on rank mismatch or out-of-bounds index. *)

val of_float_list : Dtype.t -> int array -> float list -> t
val of_int_list : Dtype.t -> int array -> int list -> t
val to_float_list : t -> float list

val fill_float : t -> float -> unit
val init_float : Dtype.t -> int array -> (int array -> float) -> t

val random_uniform : ?seed:int -> Dtype.t -> int array -> t
(** Deterministic pseudo-random values in [(-1, 1)] for float dtypes,
    small non-negative ints for integer dtypes. *)

val reshape_view : t -> int array -> t
(** Same data, new shape. @raise Invalid_argument if element counts
    differ. The result aliases the input. *)

val copy : t -> t

val equal_approx : ?eps:float -> t -> t -> bool
(** Same dtype class, shape, and pointwise values within [eps]
    (default [1e-6]) for floats, exactly for ints. *)

val pp : Format.formatter -> t -> unit
(** Shape/dtype header plus up to the first eight elements. *)
