type violation = Analysis.Diag.t

let check_func mod_ fname (f : Expr.func) : violation list =
  let violations = ref [] in
  let report ~code fmt =
    Format.kasprintf
      (fun message ->
        violations := Analysis.Diag.error ~code ~func:fname message :: !violations)
      fmt
  in
  let check_leaf_defined defined (e : Expr.expr) =
    Rvar.Set.iter
      (fun v ->
        if not (Rvar.Set.mem v defined) then
          report ~code:"undef-var" "variable %s used before definition"
            (Rvar.name v))
      (Expr.free_vars e)
  in
  let check_call_tir (e : Expr.expr) =
    match Expr.as_call_tir e with
    | Some (name, args, out, sym_args) -> (
        match Ir_module.find mod_ name with
        | Some (Ir_module.Tir_func tf) ->
            let expected_bufs = List.length tf.Tir.Prim_func.params in
            let workspace_like = expected_bufs - List.length args - 1 in
            if workspace_like < 0 then
              report ~code:"call-tir-arity"
                "call_tir %s: %d tensor arguments for a kernel with %d \
                 buffer parameters"
                name (List.length args) expected_bufs;
            if
              List.length sym_args
              <> List.length tf.Tir.Prim_func.sym_params
            then
              report ~code:"call-tir-arity"
                "call_tir %s: %d symbolic arguments but kernel declares %d"
                name (List.length sym_args)
                (List.length tf.Tir.Prim_func.sym_params);
            (match out with
            | Struct_info.Tensor _ | Struct_info.Tuple _ -> ()
            | si ->
                report ~code:"call-tir-out"
                  "call_tir %s: output annotation %s is not a tensor" name
                  (Struct_info.to_string si))
        | Some (Ir_module.Relax_func _) ->
            report ~code:"call-tir-target"
              "call_tir target %s is a graph-level function" name
        | None ->
            report ~code:"call-tir-target"
              "call_tir target %s not found in module" name)
    | None -> ()
  in
  (* The defined set is threaded functionally so that [If] branch
     bodies check under a branch-local scope: bindings inside a branch
     do not leak into the other branch or the continuation. *)
  let rec check_binding in_dataflow defined (b : Expr.binding) =
    let e = Expr.bound_expr b in
    check_leaf_defined defined e;
    check_call_tir e;
    (match e with
    | Expr.If { cond = _; then_; else_ } ->
        if in_dataflow then
          report ~code:"dataflow-if" "control flow (If) inside a dataflow block";
        ignore (check_body defined then_);
        ignore (check_body defined else_)
    | Expr.Seq _ -> report ~code:"nested-seq" "nested Seq in ANF binding"
    | _ -> ());
    (match b with
    | Expr.Bind (v, e) -> (
        match Deduce.expr_sinfo mod_ e with
        | deduced ->
            let recorded = Rvar.sinfo v in
            if
              not
                (Struct_info.equal recorded deduced
                || Struct_info.subsumes recorded deduced
                || Struct_info.subsumes deduced recorded)
            then
              report ~code:"annot-mismatch"
                "binding %s: recorded annotation %s is inconsistent with \
                 deduced %s"
                (Rvar.name v)
                (Struct_info.to_string recorded)
                (Struct_info.to_string deduced)
        | exception Deduce.Error msg ->
            report ~code:"deduce-fail" "deduction failed: %s" msg)
    | Expr.Match_cast (v, e, si) -> (
        if not (Struct_info.equal (Rvar.sinfo v) si) then
          report ~code:"match-cast"
            "match_cast %s: variable annotation differs from cast target"
            (Rvar.name v);
        (* The cast may refine or (rarely) coarsen; it must at least be
           rank-compatible when both sides know the rank. *)
        match Deduce.expr_sinfo mod_ e with
        | deduced -> (
            match (Struct_info.ndim deduced, Struct_info.ndim si) with
            | Some a, Some b when a <> b ->
                report ~code:"match-cast"
                  "match_cast %s: rank %d value cast to rank %d" (Rvar.name v)
                  a b
            | _, _ -> ())
        | exception Deduce.Error msg ->
            report ~code:"deduce-fail" "deduction failed: %s" msg));
    let v = Expr.binding_var b in
    if Rvar.Set.mem v defined then
      report ~code:"rebinding" "variable %s is bound more than once"
        (Rvar.name v);
    Rvar.Set.add v defined
  and check_body defined (body : Expr.expr) =
    match body with
    | Expr.Seq { blocks; body } ->
        let defined =
          List.fold_left
            (fun defined (block : Expr.block) ->
              List.fold_left
                (fun defined b -> check_binding block.Expr.dataflow defined b)
                defined block.Expr.bindings)
            defined blocks
        in
        check_leaf_defined defined body;
        defined
    | body ->
        check_leaf_defined defined body;
        defined
  in
  ignore (check_body (Rvar.Set.of_list f.Expr.params) f.Expr.body);
  let leftover = Expr.free_sym_vars_of_func f in
  if not (Arith.Var.Set.is_empty leftover) then
    report ~code:"unbound-sym" "unbound symbolic variable(s): %s"
      (String.concat ", "
         (List.map Arith.Var.name (Arith.Var.Set.elements leftover)));
  List.rev !violations

let check_module mod_ =
  List.concat_map
    (fun (name, f) -> check_func mod_ name f)
    (Ir_module.funcs mod_)

let assert_well_formed mod_ =
  match check_module mod_ with
  | [] -> ()
  | violations ->
      failwith
        (String.concat "\n"
           (List.map
              (fun (v : violation) ->
                Printf.sprintf "[%s] %s" v.Analysis.Diag.func
                  v.Analysis.Diag.message)
              violations))
