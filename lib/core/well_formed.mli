(** Structural well-formedness checking of cross-level modules.

    Invoked by tests and (with [~verify:true]) between compiler
    passes. Checks: ANF discipline, def-before-use of graph variables
    (including inside [If] branch bodies, which check under a
    branch-local scope), single-assignment (no variable bound twice),
    purity of dataflow blocks (no control flow inside), consistency of
    recorded annotations with fresh forward deduction, [call_tir]
    callee existence and arity against the tensor program's signature,
    and closedness of symbolic variables.

    Violations are reported as structured diagnostics
    ({!Analysis.Diag.t}, always severity [Error]) so the same
    rendering and per-pass attribution machinery serves both IR
    levels. *)

type violation = Analysis.Diag.t

val check_func : Ir_module.t -> string -> Expr.func -> violation list
(** Check one graph-level function ([string] is its module name). *)

val check_module : Ir_module.t -> violation list
(** Empty list iff the module is well-formed. *)

val assert_well_formed : Ir_module.t -> unit
(** @raise Failure listing all violations if any. *)
