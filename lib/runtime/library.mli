(** Registry of external operator-library routines (§4.6).

    Mirrors the paper's vendor libraries (cuBLAS, CUTLASS, ...): each
    routine has a numeric implementation — deliberately written as
    plain OCaml loops, independent of the TIR interpreter, as a
    genuinely foreign code path — and a cost descriptor consumed by
    the device timing model. Routines follow destination-passing
    style: the last argument is the output.

    The standard routines ([<vendor>.matmul], [<vendor>.rms_norm])
    are registered at module load for the vendor prefixes [cublas],
    [rocblas] and [mps]. *)

type cost = {
  flops : float;
  bytes : float;
  small_batch : bool;
      (** the GEMV-shaped case where a padded library GEMM wastes
          bandwidth and compiler-generated kernels win (§5.1) *)
}

type impl = {
  name : string;
  compute : Base.Ndarray.t array -> unit;
  cost_fn : int array array -> Base.Dtype.t -> cost;
      (** argument shapes (output last) and dtype *)
}

val register : impl -> unit
(** Replaces any previous registration of the same name. *)

val find : string -> impl option
val registered : unit -> string list

val poison : Base.Ndarray.t -> unit
(** Corrupt a tensor the way a misbehaving vendor routine would:
    writes NaN into element 0 (no-op on empty tensors). Used by the
    VM's {!Fault} NaN-corruption injection point on extern-call
    outputs; downstream finiteness checks (or the serving layer's
    [Corrupt_output] handling) detect it. *)

val vendor_prefix : Device.backend -> string option
(** The library namespace available on a backend ([cublas] for CUDA,
    [rocblas] for ROCm, [mps] for Metal); [None] for backends without
    vendor libraries (Vulkan, OpenCL, WebGPU, CPU). *)

(** {1 Collectives}

    Cross-device collective routines for tensor-parallel sharded
    modules (DESIGN.md §13), registered as [ccl.all_gather] and
    [ccl.all_reduce]. Calling convention: arguments are the per-shard
    inputs [x_0 … x_{w-1}] in shard order followed by the output [y]
    (world size = argument count − 1). The VM charges their time from
    {!Device.link} instead of the memory roofline and emits
    {!Trace.Collective} events.

    [ccl.all_gather] concatenates shards along the last axis —
    bit-identical to the unsharded tensor the shards were sliced from.
    [ccl.all_reduce] sums shards as a left fold in shard order 0…w−1 —
    deterministic across runs, but a different association than an
    unsharded single sum. *)

val is_collective : string -> bool
(** True for routines in the [ccl.] namespace. *)
