(** Fold a {!Trace} event stream into per-kernel counters.

    The profiler is a {!Trace.sink}: attach it to a VM via
    [Vm.create ~trace:(Profiler.sink p)] and every kernel launch,
    library call, capture replay and allocation is aggregated into a
    table of per-routine counters (calls, launches that paid overhead,
    simulated time, flops, bytes moved) plus global memory statistics.

    Invariants the test suite relies on:
    - {!total_time_us} equals the VM's [stats.elapsed_us] for the same
      run (every charged microsecond appears in exactly one event);
    - {!peak_live_bytes} equals [Allocator.peak_bytes] of the VM's
      allocator (events carry live-bytes-after, so the fold recovers
      the exact peak);
    - per-row [calls - launches] counts replayed executions.

    The benchmark harness derives its tables from these counters, so
    benches and tests assert on the same numbers. *)

type row = {
  name : string;
  kind : [ `Kernel | `Extern | `Comm ];
  mutable calls : int;  (** total executions, including replays *)
  mutable launches : int;  (** executions that paid launch overhead *)
  mutable time_us : float;
  mutable flops : float;
  mutable bytes_moved : float;
  mutable origin : string option;
      (** provenance: the Relax binding that produced the call *)
  mutable backend : string;
      (** execution backend that ran the kernel ("interp" | "closure"
          | "imp", see {!Tir.Exec}); ["-"] for library routines and
          rows that have not seen a launch *)
}

type serve_counts = {
  arrivals : int;
  prefills : int;
  decode_steps : int;
  preempts : int;
  finishes : int;
  sheds : int;  (** [`Shed] + [`Timeout] (timeouts are sheds too) *)
  timeouts : int;
  retries : int;
  aborts : int;
  degrades : int;
  prefix_hits : int;  (** [`Prefix_hit]: admissions served from the prefix cache *)
  cow_copies : int;  (** [`Cow_copy]: writes into shared blocks that copied *)
  kv_evictions : int;  (** [`Evict]: cached refcount-0 blocks reclaimed *)
  failovers : int;  (** [`Failover]: requests migrated off a crashed replica *)
  hedges : int;  (** [`Hedge]: duplicate dispatches to cover stragglers *)
  hedge_wins : int;  (** [`Hedge_win]: hedge copies that finished first *)
  replica_downs : int;  (** [`Replica_down]: health transitions to Down *)
  replica_ups : int;  (** [`Replica_up]: recoveries back to non-Down *)
}
(** Counts of {!Trace.Serve} events by tag (all zero unless a serving
    engine fed its events into this profiler). *)

type t

val create : unit -> t
val sink : t -> Trace.sink
val feed : t -> Trace.event -> unit

val rows : t -> row list
(** Sorted by simulated time (descending), then name. *)

val find_row : t -> string -> row option
val call_time_us : t -> float
val total_time_us : t -> float
(** Call time plus step and replay overheads: equals the VM's
    [stats.elapsed_us] over the profiled runs. *)

val peak_live_bytes : t -> int
val steps : t -> int
val replays : t -> int
val event_count : t -> int
val alloc_count : t -> int
val reuse_count : t -> int
val free_count : t -> int
val serve_counts : t -> serve_counts

val backend_split : t -> (string * int * float) list
(** Kernel time attributed per execution backend:
    [(backend, calls, time_us)] sorted by backend name. Empty until a
    kernel launch is profiled. The [--profile] report renders this as
    a "backends:" line. *)

val comm_time_us : t -> float
(** Simulated time spent in collectives ([`Comm] rows). *)

val collective_count : t -> int
(** Total collective executions, including replays. *)

val device_split : t -> (string * int * float) list
(** Per-device attribution [(tag, calls, time_us)] for tensor-parallel
    sharded modules: shard tags ["g0"…"g<tp-1>"] (parsed from
    ["g<k>:"]-prefixed provenance), ["shared"] for replicated work that
    runs on every device, ["link"] for collectives. Empty unless some
    event carried a shard tag, so single-device runs are unaffected.
    The [--profile] report renders this as a "devices:" line. *)

val fault_count : t -> Fault.kind -> int
(** {!Trace.Fault_injected} events seen, by fault kind. *)

val faults_injected : t -> int
(** Total {!Trace.Fault_injected} events seen. *)

val report : ?top:int -> t -> string
(** Text table sorted by time; [top] truncates to the first [top]
    rows. Ends with call/time/memory total lines. *)
