(** The Relax virtual machine (§4.7).

    After lowering, a graph-level program is a sequence of VM
    instructions, each a call into a generated tensor program, an
    external library routine, or a runtime builtin (allocation, shape
    binding, graph capture). The same program executes in two modes:

    - [`Numeric]: tensors carry real data; kernels run as compiled
      OCaml closures ({!Tir.Compile}, cached per shape signature) and
      library routines through their OCaml implementations. Used by
      tests and examples.
    - [`Timed device]: tensors are shape-only shadows; each call
      accrues simulated time from the device roofline model plus
      launch overhead. Used by the benchmark harness at paper-scale
      shapes (see DESIGN.md §1 on this substitution).

    Both modes drive the allocator identically, so memory statistics
    (Table 2) are mode-independent. *)

type instr =
  | Match_shape of { src : int; dims : Arith.Expr.t array }
      (** Bind unbound symbolic variables from the runtime shape of
          register [src]; check already-bound/constant dimensions.
          Implements parameter binding and [match_cast]. *)
  | Alloc_storage of { dst : int; bytes : Arith.Expr.t }
      (** Planned storage: cached per call site across invocations
          (a static plan allocates once at load time); re-evaluated
          and reallocated only if the computed size changes. *)
  | Alloc_tensor of {
      dst : int;
      storage : int option;  (** [None]: own fresh storage (unplanned) *)
      dims : Arith.Expr.t array;
      dtype : Base.Dtype.t;
    }
  | Kill of int array
      (** Liveness markers inserted by memory planning: registers die
          here; owned storage is released to the allocator. *)
  | Call_kernel of {
      kernel : string;
      args : int array;  (** DPS: outputs are trailing registers *)
      sym_args : Arith.Expr.t array;
    }
  | Call_extern of { func : string; args : int array }
  | Call_func of { dst : int; func : string; args : int array }
  | Call_captured of { dst : int; func : string; args : int array; capture_id : int }
      (** Graph-capture region (§4.5): the first execution captures,
          later ones replay without per-kernel launch overhead. *)
  | Make_tuple of { dst : int; srcs : int array }
  | Get_tuple of { dst : int; src : int; index : int }
  | Make_shape of { dst : int; dims : Arith.Expr.t array }
      (** first-class shape value computed from the symbolic env *)
  | Cond of {
      cond : int;
      then_code : instr array;
      then_reg : int;
      else_code : instr array;
      else_reg : int;
      dst : int;
    }
      (** structured control flow: run one branch depending on the
          truthiness of register [cond] (non-zero scalar tensor,
          shape value or prim), then move the branch's result into
          [dst]. Timed mode takes the then-branch (data-dependent
          branches cannot be simulated without data). *)
  | Load_const of { dst : int; tensor : Base.Ndarray.t }
  | Ret of int

type vm_func = {
  fname : string;
  nparams : int;
  nregs : int;
  instrs : instr array;
  prov : string option array;
      (** provenance: the originating Relax binding name for each
          instruction (attached by [To_vm]), used to attribute trace
          events to source-level operations *)
}

type program = {
  funcs : (string * vm_func) list;
  mod_ : Relax_core.Ir_module.t;  (** kernel lookup for [Call_kernel] *)
}

type value =
  | Tensor of Base.Ndarray.t
  | Shadow of { shape : int array; dtype : Base.Dtype.t }
  | Storage_val of { id : int; bytes : int }
  | Shape_val of int array
  | Tuple_val of value list
  | Unit_val

type mode = [ `Numeric | `Timed of Device.t ]

type stats = {
  mutable elapsed_us : float;
  mutable kernel_launches : int;
  mutable lib_calls : int;
  mutable collective_calls : int;
  mutable graph_replays : int;
}

type t

exception Vm_error of string

(** [create ?allocator ?trace ?fault mode program] builds a VM.
    [trace] receives a {!Trace.event} for every observable runtime
    action (instruction begin/end, launches with resolved shapes and
    costs, allocator traffic, capture/replay, shape bind/check).
    Attach a {!Profiler} sink to aggregate, or a {!Trace.recorder} to
    assert on event sequences. No sink: zero tracing overhead.

    [fault] arms the VM with a seeded {!Fault} injector consulted at
    three points, each preceded by a {!Trace.Fault_injected} event:
    - every [Call_kernel] may fail transiently — the launch is
      skipped (no time charged, no launch event) and
      {!Fault.Error}[ (Transient, _)] is raised out of {!run};
    - every timed kernel/extern charge may stall, multiplying that
      launch's simulated time by the configured factor;
    - every [Call_extern] may corrupt its output: in numeric mode the
      destination tensor is {!Library.poison}ed with NaN (the call
      "succeeds", as a misbehaving vendor routine would).
    The injector does not cover allocation — arm the {!Allocator}
    itself for OOM spikes. No injector (or all-zero probabilities):
    behavior is byte-identical to a fault-free VM.

    [backend] selects the kernel execution backend
    (interp/closure/imp; default {!Tir.Exec.default}, i.e. imp). All
    backends are bit-identical on valid kernels; imp additionally
    elides bounds checks for kernels [Analysis.Tir_safety] proves
    memory-safe. *)
val create :
  ?allocator:Allocator.t ->
  ?trace:Trace.sink ->
  ?fault:Fault.t ->
  ?backend:Tir.Exec.backend ->
  mode ->
  program ->
  t
val stats : t -> stats

val kernel_cache : t -> Tir.Exec.Cache.t
(** The compiled-kernel cache backing numeric-mode [Call_kernel]:
    keyed by (kernel name, backend-prefixed shape signature), so a
    decode loop compiles each kernel once and replays thereafter, and
    caches of different backends never alias. *)

val allocator : t -> Allocator.t
val device : t -> Device.t option

val run : t -> string -> value list -> value
(** Invoke a VM function by name.
    @raise Vm_error on shape-check failures, missing functions, or
    mode/value mismatches. *)

val shadow_of_shape : Base.Dtype.t -> int list -> value
val tensor : Base.Ndarray.t -> value
val value_shape : value -> int array
(** @raise Vm_error if the value is not tensor-like. *)

val value_tensor : value -> Base.Ndarray.t
(** @raise Vm_error in timed mode (shadows carry no data). *)
