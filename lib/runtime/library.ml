type cost = { flops : float; bytes : float; small_batch : bool }

type impl = {
  name : string;
  compute : Base.Ndarray.t array -> unit;
  cost_fn : int array array -> Base.Dtype.t -> cost;
}

let registry : (string, impl) Hashtbl.t = Hashtbl.create 16
let register impl = Hashtbl.replace registry impl.name impl
let find name = Hashtbl.find_opt registry name

let registered () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

let poison (nd : Base.Ndarray.t) =
  if Base.Ndarray.numel nd > 0 then
    Base.Ndarray.set_flat_float nd 0 Float.nan

let vendor_prefix (b : Device.backend) =
  match b with
  | Device.Cuda -> Some "cublas"
  | Device.Rocm -> Some "rocblas"
  | Device.Metal -> Some "mps"
  | Device.Vulkan | Device.Opencl | Device.Webgpu | Device.Cpu -> None

(* ---------- matmul: X (..., m, k) x W (k, n) or batched W ---------- *)

let shape_bytes (shapes : int array array) (dt : Base.Dtype.t) =
  Array.fold_left
    (fun acc s ->
      acc
      +. float_of_int
           (Array.fold_left ( * ) 1 s * Base.Dtype.size_in_bytes dt))
    0.0 shapes

let matmul_compute (args : Base.Ndarray.t array) =
  match args with
  | [| x; w; y |] -> (
      let xs = x.Base.Ndarray.shape and ws = w.Base.Ndarray.shape in
      let rx = Array.length xs in
      let k = xs.(rx - 1) in
      let n = ws.(Array.length ws - 1) in
      let m = xs.(rx - 2) in
      let batch = Array.fold_left ( * ) 1 (Array.sub xs 0 (rx - 2)) in
      let w_batched = Array.length ws > 2 in
      match
        ( Base.Ndarray.float_data x,
          Base.Ndarray.float_data w,
          Base.Ndarray.float_data y )
      with
      | Some xd, Some wd, Some yd ->
          (* Raw arrays fetched once: no per-element dtype dispatch. *)
          for b = 0 to batch - 1 do
            for i = 0 to m - 1 do
              let xrow = ((b * m) + i) * k in
              let wbase = if w_batched then b * k * n else 0 in
              for j = 0 to n - 1 do
                let acc = ref 0.0 in
                for kk = 0 to k - 1 do
                  acc :=
                    !acc +. (xd.(xrow + kk) *. wd.(wbase + (kk * n) + j))
                done;
                yd.((((b * m) + i) * n) + j) <- !acc
              done
            done
          done
      | _ ->
          for b = 0 to batch - 1 do
            for i = 0 to m - 1 do
              for j = 0 to n - 1 do
                let acc = ref 0.0 in
                for kk = 0 to k - 1 do
                  let xv =
                    Base.Ndarray.get_flat_float x ((((b * m) + i) * k) + kk)
                  in
                  let wv =
                    if w_batched then
                      Base.Ndarray.get_flat_float w ((((b * k) + kk) * n) + j)
                    else Base.Ndarray.get_flat_float w ((kk * n) + j)
                  in
                  acc := !acc +. (xv *. wv)
                done;
                Base.Ndarray.set_flat_float y ((((b * m) + i) * n) + j) !acc
              done
            done
          done)
  | _ -> invalid_arg "library matmul: expected 3 arguments"

let matmul_cost (shapes : int array array) dt =
  match shapes with
  | [| xs; ws; _ys |] ->
      let rx = Array.length xs in
      let k = xs.(rx - 1) in
      let n = ws.(Array.length ws - 1) in
      let m = xs.(rx - 2) in
      let batch = Array.fold_left ( * ) 1 (Array.sub xs 0 (rx - 2)) in
      {
        flops = 2.0 *. float_of_int (batch * m * k * n);
        bytes = shape_bytes shapes dt;
        small_batch = batch * m <= 2;
      }
  | _ -> invalid_arg "library matmul cost: expected 3 shapes"

(* ---------- rms_norm: (x, weight, y) ---------- *)

let rms_norm_compute (args : Base.Ndarray.t array) =
  match args with
  | [| x; w; y |] -> (
      let xs = x.Base.Ndarray.shape in
      let r = Array.length xs in
      let h = xs.(r - 1) in
      let rows = Base.Ndarray.numel x / h in
      match
        ( Base.Ndarray.float_data x,
          Base.Ndarray.float_data w,
          Base.Ndarray.float_data y )
      with
      | Some xd, Some wd, Some yd ->
          for row = 0 to rows - 1 do
            let base = row * h in
            let ss = ref 0.0 in
            for j = 0 to h - 1 do
              let v = xd.(base + j) in
              ss := !ss +. (v *. v)
            done;
            let inv = 1.0 /. sqrt ((!ss /. float_of_int h) +. 1e-5) in
            for j = 0 to h - 1 do
              yd.(base + j) <- xd.(base + j) *. inv *. wd.(j)
            done
          done
      | _ ->
          for row = 0 to rows - 1 do
            let ss = ref 0.0 in
            for j = 0 to h - 1 do
              let v = Base.Ndarray.get_flat_float x ((row * h) + j) in
              ss := !ss +. (v *. v)
            done;
            let inv = 1.0 /. sqrt ((!ss /. float_of_int h) +. 1e-5) in
            for j = 0 to h - 1 do
              let v = Base.Ndarray.get_flat_float x ((row * h) + j) in
              let wv = Base.Ndarray.get_flat_float w j in
              Base.Ndarray.set_flat_float y ((row * h) + j) (v *. inv *. wv)
            done
          done)
  | _ -> invalid_arg "library rms_norm: expected 3 arguments"

let rms_norm_cost (shapes : int array array) dt =
  match shapes with
  | [| xs; _ws; _ys |] ->
      let n = Array.fold_left ( * ) 1 xs in
      {
        flops = 4.0 *. float_of_int n;
        bytes = shape_bytes shapes dt;
        small_batch = false;
      }
  | _ -> invalid_arg "library rms_norm cost: expected 3 shapes"

(* ---------- collectives: (x_0, ..., x_{w-1}, y) ---------- *)

let is_collective name =
  String.length name > 4 && String.sub name 0 4 = "ccl."

(* All-gather over the last axis: shard s of shape (..., c) lands at
   columns [s*c, (s+1)*c) of y (..., w*c).  Shards are concatenated,
   never summed, so the result is bit-identical to the unsharded
   computation that produced the full tensor. *)
let all_gather_compute (args : Base.Ndarray.t array) =
  let w = Array.length args - 1 in
  if w < 1 then invalid_arg "ccl.all_gather: expected >= 2 arguments";
  let y = args.(w) in
  let xs = args.(0).Base.Ndarray.shape in
  let c = xs.(Array.length xs - 1) in
  let rows = Base.Ndarray.numel args.(0) / max 1 c in
  let wc = w * c in
  for s = 0 to w - 1 do
    let x = args.(s) in
    match (Base.Ndarray.float_data x, Base.Ndarray.float_data y) with
    | Some xd, Some yd ->
        for r = 0 to rows - 1 do
          Array.blit xd (r * c) yd ((r * wc) + (s * c)) c
        done
    | _ ->
        for r = 0 to rows - 1 do
          for j = 0 to c - 1 do
            Base.Ndarray.set_flat_float y
              ((r * wc) + (s * c) + j)
              (Base.Ndarray.get_flat_float x ((r * c) + j))
          done
        done
  done

(* All-reduce: y = sum over shards, accumulated as a left fold in
   shard order 0..w-1.  The order is fixed so every run of the same
   sharded module produces the same floats — but the association
   differs from the unsharded single-sum, so reduce-strategy sharding
   is deterministic without being bit-identical to TP=1. *)
let all_reduce_compute (args : Base.Ndarray.t array) =
  let w = Array.length args - 1 in
  if w < 1 then invalid_arg "ccl.all_reduce: expected >= 2 arguments";
  let y = args.(w) in
  let n = Base.Ndarray.numel y in
  let all_raw =
    Array.for_all (fun a -> Base.Ndarray.float_data a <> None) args
  in
  if all_raw then begin
    let yd = Option.get (Base.Ndarray.float_data y) in
    let xd0 = Option.get (Base.Ndarray.float_data args.(0)) in
    Array.blit xd0 0 yd 0 n;
    for s = 1 to w - 1 do
      let xd = Option.get (Base.Ndarray.float_data args.(s)) in
      for i = 0 to n - 1 do
        yd.(i) <- yd.(i) +. xd.(i)
      done
    done
  end
  else
    for i = 0 to n - 1 do
      let acc = ref (Base.Ndarray.get_flat_float args.(0) i) in
      for s = 1 to w - 1 do
        acc := !acc +. Base.Ndarray.get_flat_float args.(s) i
      done;
      Base.Ndarray.set_flat_float y i !acc
    done

(* Cost from the library's point of view: the VM charges collectives
   from the device link model, not from this roofline cost, but the
   fields still feed flop accounting. *)
let collective_cost ~reduce (shapes : int array array) dt =
  let w = Array.length shapes - 1 in
  let out = shapes.(w) in
  let n = Array.fold_left ( * ) 1 out in
  {
    flops = (if reduce then float_of_int ((w - 1) * n) else 0.0);
    bytes = float_of_int (n * Base.Dtype.size_in_bytes dt);
    small_batch = false;
  }

let () =
  register
    {
      name = "ccl.all_gather";
      compute = all_gather_compute;
      cost_fn = collective_cost ~reduce:false;
    };
  register
    {
      name = "ccl.all_reduce";
      compute = all_reduce_compute;
      cost_fn = collective_cost ~reduce:true;
    }

let () =
  List.iter
    (fun vendor ->
      register
        {
          name = vendor ^ ".matmul";
          compute = matmul_compute;
          cost_fn = matmul_cost;
        };
      register
        {
          name = vendor ^ ".rms_norm";
          compute = rms_norm_compute;
          cost_fn = rms_norm_cost;
        })
    [ "cublas"; "rocblas"; "mps" ]
