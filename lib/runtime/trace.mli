(** Structured execution traces for the VM.

    Every observable runtime action of {!Vm.run} — instruction
    begin/end, kernel and library launches with resolved shapes and
    roofline cost, allocator traffic, graph capture/replay, shape-var
    binding and checking — is emitted as a typed event through an
    optional sink passed to {!Vm.create}. The stream is the single
    source of truth for the paper's evaluation counters: the
    {!Profiler} folds it into per-kernel tables, the benchmark harness
    derives Figures 14–17 / Table 2 from those folds, and the test
    suite asserts pass-level effects (fusion removes launches, memory
    planning reuses storage, capture replays skip launch overhead)
    directly on event sequences.

    Events carry both a mode-independent "shape" (what happened, on
    what operands) and timing fields populated in [`Timed] mode; the
    two renderings {!to_string} and {!shape_of} differ exactly in the
    timing fields, so [`Numeric] and [`Timed] runs of the same program
    produce identical {!shape_of} streams. *)

type alloc_kind = [ `Storage | `Tensor ]
(** [`Storage]: a planned storage allocated by [Alloc_storage]
    (persists across invocations). [`Tensor]: an unplanned tensor that
    owns fresh backing memory. *)

type event =
  | Enter of { func : string; top : bool; overhead_us : float }
      (** VM function entry. [top] marks an invocation through
          {!Vm.run} (one inference step); [overhead_us] is the
          per-step host overhead charged in timed mode. *)
  | Exit of { func : string }
  | Instr_begin of { func : string; pc : int; op : string; prov : string option }
      (** [prov] is the originating Relax binding name attached by
          the [To_vm] pass, attributing the instruction to a
          source-level operation. *)
  | Instr_end of { func : string; pc : int; elapsed_us : float }
      (** Closes the matching [Instr_begin]; [elapsed_us] is the
          simulated time charged by the instruction (0 in numeric
          mode). [Ret] instructions emit no end event. *)
  | Bind_shape of { var : string; value : int }
      (** A [Match_shape] bound a fresh symbolic variable. *)
  | Check_shape of { expr : string; value : int }
      (** A [Match_shape] checked an already-determined dimension. *)
  | Alloc of {
      kind : alloc_kind;
      id : int;
      bytes : int;
      reused : bool;
      live : int;
    }
      (** [reused]: a planned storage served from the cross-invocation
          cache, or a pool hit. [live] is allocator live bytes after
          the operation, so folds can recover peak memory exactly. *)
  | Tensor_in_storage of { storage_id : int; bytes : int }
      (** A tensor instantiated inside planned storage (no fresh
          allocation) — the memory plan's reuse in action. *)
  | Free of { id : int; bytes : int; live : int }
  | End_of_life of { id : int; bytes : int }
      (** Storage still owned by a register when its frame exits: its
          last possible use has passed. No allocator action is taken
          (pool blocks stay resident), but together with [Free] this
          closes every [`Tensor] allocation in the stream. *)
  | Kernel_launch of {
      kernel : string;
      prov : string option;
      replay : bool;
      shapes : int array array;
      flops : int;
      bytes_moved : int;
      elapsed_us : float;
      backend : string;
    }
      (** A generated-kernel call with fully resolved argument shapes
          and roofline cost. [replay]: executed inside a captured
          graph replay (no per-launch overhead was charged).
          [elapsed_us] includes launch overhead when charged.
          [backend] names the execution backend that ran (numeric
          mode) or would run (timed mode) the kernel — see
          {!Tir.Exec}; it is surfaced by the profiler's per-backend
          split, not by {!render}. *)
  | Extern_call of {
      func : string;
      prov : string option;
      replay : bool;
      shapes : int array array;
      flops : float;
      bytes_moved : float;
      elapsed_us : float;
    }  (** A vendor-library call (partial library lowering, §4.6). *)
  | Collective of {
      op : string;
      prov : string option;
      replay : bool;
      world : int;
      shapes : int array array;
      bytes_wire : float;
      elapsed_us : float;
    }
      (** A cross-device collective ("ccl.all_reduce" /
          "ccl.all_gather") over [world] shards of a tensor-parallel
          module (DESIGN.md §13). Charged from the device's
          {!Device.link} rather than its memory roofline; [bytes_wire]
          is the traffic the interconnect actually carried
          ({!Device.collective_wire_bytes}). *)
  | Capture_begin of { capture_id : int; func : string }
      (** First execution of a capture region: records the graph. *)
  | Capture_replay of { capture_id : int; func : string; overhead_us : float }
      (** Subsequent execution: replays at one fixed overhead. *)
  | Serve of {
      tag : serve_tag;
      id : int;
      t_us : float;
      batch : int;
      tokens : int;
    }
      (** A serving-engine scheduling decision (emitted by
          [Serve.Scheduler], never by the VM itself). [id] is the
          request id ([-1] for batch-level events), [t_us] the
          engine's simulated clock at emission, [batch] the live batch
          size and [tokens] the tokens processed by the event (prompt
          length for [`Prefill], batch-wide tokens for [`Decode_step],
          generated count for [`Finish]). [t_us] is a clock reading,
          not a duration — {!elapsed_us_of} is 0 so profiler time
          invariants over VM streams are unaffected.

          Resilience tags: [`Shed] (admission control rejected the
          request; [tokens] = prompt length), [`Timeout] (shed because
          its deadline already passed), [`Retry] (a transient fault or
          corrupt token costs the request one attempt; [tokens] =
          attempts consumed so far), [`Abort] (retry budget exhausted
          or request infeasible for the KV budget), [`Degrade]
          (persistent device stall shrank the effective batch; [batch]
          = new effective max batch, [id] = -1).

          KV prefix-sharing tags: [`Prefix_hit] (admission served
          [tokens] prompt tokens from the shared prefix cache),
          [`Cow_copy] (a write into a shared block copy-on-wrote;
          [tokens] = copies made), [`Evict] (cached refcount-0 blocks
          reclaimed under pool pressure; [tokens] = blocks evicted,
          [id] = -1). Never emitted when sharing is off.

          Cluster failover tags (emitted by [Dist.Cluster], never by a
          single-replica engine): [`Failover] (request [id] drained
          from a crashed replica and re-admitted elsewhere; [batch] =
          destination replica), [`Hedge] (a duplicate of request [id]
          was dispatched to a healthy replica; [batch] = hedge
          replica), [`Hedge_win] (the hedge copy finished first),
          [`Replica_down] / [`Replica_up] (health state machine marked
          replica [id] Down / back non-Down at [t_us]). *)
  | Fault_injected of Fault.event
      (** A {!Fault} injector fired at this point of the stream. The
          event precedes the consequence it causes (failed launch,
          inflated charge, OOM, corrupt output, …). Never emitted when
          injection is off. *)

and serve_tag =
  [ `Request_arrive
  | `Prefill
  | `Decode_step
  | `Preempt
  | `Finish
  | `Shed
  | `Timeout
  | `Retry
  | `Abort
  | `Degrade
  | `Prefix_hit
  | `Cow_copy
  | `Evict
  | `Failover
  | `Hedge
  | `Hedge_win
  | `Replica_down
  | `Replica_up ]

type sink = event -> unit

val serve_tag_name : serve_tag -> string
(** Short stable name ("arrive", "prefill", "decode_step", "preempt",
    "finish", "shed", "timeout", "retry", "abort", "degrade",
    "prefix_hit", "cow_copy", "evict", "failover", "hedge",
    "hedge_win", "replica_down", "replica_up") used by renderings and
    the profiler report. *)

val to_string : event -> string
(** One-line rendering including timing fields. *)

val shape_of : event -> string
(** One-line rendering with timing fields elided: the
    mode-independent shape of the event. [`Numeric] and [`Timed] runs
    of one program yield equal [shape_of] streams. *)

(** {1 Recording sink} *)

type recorder

val recorder : unit -> recorder
val sink : recorder -> sink
val events : recorder -> event list
(** Events in emission order. *)

val clear : recorder -> unit
val tee : sink -> sink -> sink

(** {1 Classification helpers} *)

val is_launch : ?include_replays:bool -> event -> bool
(** [Kernel_launch] events; [include_replays:false] keeps only
    launches that paid per-launch overhead (default [true]). *)

val is_extern : ?include_replays:bool -> event -> bool
val is_collective : ?include_replays:bool -> event -> bool
val is_fault : event -> bool
val elapsed_us_of : event -> float
(** Simulated time charged by the event ([Instr_end] excluded to
    avoid double counting its children). Summing over a stream
    reproduces [stats.elapsed_us]. *)
