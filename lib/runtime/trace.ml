type alloc_kind = [ `Storage | `Tensor ]

type event =
  | Enter of { func : string; top : bool; overhead_us : float }
  | Exit of { func : string }
  | Instr_begin of { func : string; pc : int; op : string; prov : string option }
  | Instr_end of { func : string; pc : int; elapsed_us : float }
  | Bind_shape of { var : string; value : int }
  | Check_shape of { expr : string; value : int }
  | Alloc of {
      kind : alloc_kind;
      id : int;
      bytes : int;
      reused : bool;
      live : int;
    }
  | Tensor_in_storage of { storage_id : int; bytes : int }
  | Free of { id : int; bytes : int; live : int }
  | End_of_life of { id : int; bytes : int }
  | Kernel_launch of {
      kernel : string;
      prov : string option;
      replay : bool;
      shapes : int array array;
      flops : int;
      bytes_moved : int;
      elapsed_us : float;
      backend : string;
          (* which execution backend ran (or, in timed mode, would
             run) the kernel: "interp" | "closure" | "imp" *)
    }
  | Extern_call of {
      func : string;
      prov : string option;
      replay : bool;
      shapes : int array array;
      flops : float;
      bytes_moved : float;
      elapsed_us : float;
    }
  | Collective of {
      op : string;  (* "ccl.all_reduce" | "ccl.all_gather" *)
      prov : string option;
      replay : bool;
      world : int;
      shapes : int array array;
      bytes_wire : float;  (* bytes the interconnect actually carried *)
      elapsed_us : float;
    }
  | Capture_begin of { capture_id : int; func : string }
  | Capture_replay of { capture_id : int; func : string; overhead_us : float }
  | Serve of {
      tag : serve_tag;
      id : int;
      t_us : float;
      batch : int;
      tokens : int;
    }
  | Fault_injected of Fault.event

and serve_tag =
  [ `Request_arrive
  | `Prefill
  | `Decode_step
  | `Preempt
  | `Finish
  | `Shed
  | `Timeout
  | `Retry
  | `Abort
  | `Degrade
  | `Prefix_hit
  | `Cow_copy
  | `Evict
  | `Failover
  | `Hedge
  | `Hedge_win
  | `Replica_down
  | `Replica_up ]

type sink = event -> unit

let serve_tag_name = function
  | `Request_arrive -> "arrive"
  | `Prefill -> "prefill"
  | `Decode_step -> "decode_step"
  | `Preempt -> "preempt"
  | `Finish -> "finish"
  | `Shed -> "shed"
  | `Timeout -> "timeout"
  | `Retry -> "retry"
  | `Abort -> "abort"
  | `Degrade -> "degrade"
  | `Prefix_hit -> "prefix_hit"
  | `Cow_copy -> "cow_copy"
  | `Evict -> "evict"
  | `Failover -> "failover"
  | `Hedge -> "hedge"
  | `Hedge_win -> "hedge_win"
  | `Replica_down -> "replica_down"
  | `Replica_up -> "replica_up"

let shapes_str shapes =
  shapes |> Array.to_list
  |> List.map (fun s ->
         s |> Array.to_list |> List.map string_of_int |> String.concat "x")
  |> String.concat ","

let prov_str = function None -> "" | Some p -> " @" ^ p

let render ~times ev =
  let us u = if times then Printf.sprintf " us=%.3f" u else "" in
  match ev with
  | Enter { func; top; overhead_us } ->
      Printf.sprintf "enter %s%s%s" func
        (if top then " (step)" else "")
        (us overhead_us)
  | Exit { func } -> Printf.sprintf "exit %s" func
  | Instr_begin { func; pc; op; prov } ->
      Printf.sprintf "instr %s#%d %s%s" func pc op (prov_str prov)
  | Instr_end { func; pc; elapsed_us } ->
      Printf.sprintf "end %s#%d%s" func pc (us elapsed_us)
  | Bind_shape { var; value } -> Printf.sprintf "bind %s=%d" var value
  | Check_shape { expr; value } -> Printf.sprintf "check %s=%d" expr value
  | Alloc { kind; id; bytes; reused; live } ->
      Printf.sprintf "alloc %s#%d %dB%s live=%d"
        (match kind with `Storage -> "storage" | `Tensor -> "tensor")
        id bytes
        (if reused then " reused" else "")
        live
  | Tensor_in_storage { storage_id; bytes } ->
      Printf.sprintf "tensor_in storage#%d %dB" storage_id bytes
  | Free { id; bytes; live } ->
      Printf.sprintf "free #%d %dB live=%d" id bytes live
  | End_of_life { id; bytes } -> Printf.sprintf "eol #%d %dB" id bytes
  (* [backend] is deliberately not rendered: golden traces pin this
     format, and backend attribution belongs to the profiler. *)
  | Kernel_launch
      { kernel; prov; replay; shapes; flops; bytes_moved; elapsed_us; _ } ->
      Printf.sprintf "kernel %s%s [%s] flops=%d bytes=%d%s%s" kernel
        (prov_str prov) (shapes_str shapes) flops bytes_moved
        (if replay then " replay" else "")
        (us elapsed_us)
  | Extern_call { func; prov; replay; shapes; flops; bytes_moved; elapsed_us } ->
      Printf.sprintf "extern %s%s [%s] flops=%.0f bytes=%.0f%s%s" func
        (prov_str prov) (shapes_str shapes) flops bytes_moved
        (if replay then " replay" else "")
        (us elapsed_us)
  | Collective { op; prov; replay; world; shapes; bytes_wire; elapsed_us } ->
      Printf.sprintf "collective %s%s [%s] world=%d wire=%.0f%s%s" op
        (prov_str prov) (shapes_str shapes) world bytes_wire
        (if replay then " replay" else "")
        (us elapsed_us)
  | Capture_begin { capture_id; func } ->
      Printf.sprintf "capture #%d %s" capture_id func
  | Capture_replay { capture_id; func; overhead_us } ->
      Printf.sprintf "replay #%d %s%s" capture_id func (us overhead_us)
  | Serve { tag; id; t_us; batch; tokens } ->
      Printf.sprintf "serve %s%s b=%d tokens=%d%s" (serve_tag_name tag)
        (if id >= 0 then Printf.sprintf " #%d" id else "")
        batch tokens
        (if times then Printf.sprintf " t=%.3f" t_us else "")
  | Fault_injected { Fault.seq; site; kind } ->
      Printf.sprintf "fault #%d %s @%s" seq (Fault.kind_name kind) site

let to_string ev = render ~times:true ev
let shape_of ev = render ~times:false ev

(* ---------- recording sink ---------- *)

type recorder = { mutable rev_events : event list }

let recorder () = { rev_events = [] }
let record r ev = r.rev_events <- ev :: r.rev_events
let sink r = record r
let events r = List.rev r.rev_events
let clear r = r.rev_events <- []

let tee a b ev =
  a ev;
  b ev

(* ---------- classification helpers (used by tests/tools) ---------- *)

let is_launch ?(include_replays = true) ev =
  match ev with
  | Kernel_launch { replay; _ } -> include_replays || not replay
  | _ -> false

let is_extern ?(include_replays = true) ev =
  match ev with
  | Extern_call { replay; _ } -> include_replays || not replay
  | _ -> false

let elapsed_us_of = function
  | Enter { overhead_us; _ } | Capture_replay { overhead_us; _ } -> overhead_us
  | Kernel_launch { elapsed_us; _ }
  | Extern_call { elapsed_us; _ }
  | Collective { elapsed_us; _ } ->
      elapsed_us
  | Exit _ | Instr_begin _ | Instr_end _ | Bind_shape _ | Check_shape _
  | Alloc _ | Tensor_in_storage _ | Free _ | End_of_life _ | Capture_begin _
  | Serve _ | Fault_injected _ ->
      (* Serving/fault events are markers on the engine's simulated
         clock; the time they bracket (or inflate) is charged by the
         underlying VM runs. *)
      0.0

let is_collective ?(include_replays = true) ev =
  match ev with
  | Collective { replay; _ } -> include_replays || not replay
  | _ -> false

let is_fault = function Fault_injected _ -> true | _ -> false
