(* Seeded fault injection + the typed failure taxonomy.

   A single injector owns one PRNG stream; every consulting component
   (Vm, Allocator, the serving scheduler) draws from it in program
   order, so a (config, program) pair fully determines the fault
   schedule. Draws with probability 0 skip the PRNG entirely: a config
   with one knob turned leaves the other kinds' schedules unchanged,
   and an all-zero config is indistinguishable from no injector. *)

type config = {
  seed : int;
  kernel_fail_p : float;
  stall_p : float;
  stall_factor : float;
  oom_p : float;
  nan_p : float;
}

let disabled =
  {
    seed = 0;
    kernel_fail_p = 0.0;
    stall_p = 0.0;
    stall_factor = 4.0;
    oom_p = 0.0;
    nan_p = 0.0;
  }

let enabled c =
  c.kernel_fail_p > 0.0 || c.stall_p > 0.0 || c.oom_p > 0.0 || c.nan_p > 0.0

type kind = Kernel_failure | Device_stall | Alloc_oom | Nan_corruption

let kind_name = function
  | Kernel_failure -> "kernel_failure"
  | Device_stall -> "device_stall"
  | Alloc_oom -> "alloc_oom"
  | Nan_corruption -> "nan_corruption"

let all_kinds = [ Kernel_failure; Device_stall; Alloc_oom; Nan_corruption ]

let kind_index = function
  | Kernel_failure -> 0
  | Device_stall -> 1
  | Alloc_oom -> 2
  | Nan_corruption -> 3

type event = { seq : int; site : string; kind : kind }

type t = {
  config : config;
  st : Random.State.t;
  mutable seq : int;
  counts : int array;
}

let create config =
  {
    config;
    st = Random.State.make [| config.seed |];
    seq = 0;
    counts = Array.make 4 0;
  }

let config t = t.config

let draw t p kind site =
  if p <= 0.0 then None
  else if Random.State.float t.st 1.0 < p then begin
    let ev = { seq = t.seq; site; kind } in
    t.seq <- t.seq + 1;
    t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
    Some ev
  end
  else None

let kernel_failure t ~site = draw t t.config.kernel_fail_p Kernel_failure site

let device_stall t ~site =
  match draw t t.config.stall_p Device_stall site with
  | Some ev -> Some (ev, t.config.stall_factor)
  | None -> None

let alloc_oom t ~site = draw t t.config.oom_p Alloc_oom site
let nan_corruption t ~site = draw t t.config.nan_p Nan_corruption site
let injected_total t = t.seq
let injected t kind = t.counts.(kind_index kind)

type error_class = Transient | Fatal | Resource_exhausted | Corrupt_output

exception Error of error_class * string

let error_class_name = function
  | Transient -> "transient"
  | Fatal -> "fatal"
  | Resource_exhausted -> "resource_exhausted"
  | Corrupt_output -> "corrupt_output"

let errorf cls fmt =
  Format.kasprintf (fun s -> raise (Error (cls, s))) fmt

let () =
  Printexc.register_printer (function
    | Error (cls, msg) ->
        Some (Printf.sprintf "Fault.Error(%s, %s)" (error_class_name cls) msg)
    | _ -> None)
