(* Seeded fault injection + the typed failure taxonomy.

   A single injector owns one PRNG stream; every consulting component
   (Vm, Allocator, the serving scheduler) draws from it in program
   order, so a (config, program) pair fully determines the fault
   schedule. Draws with probability 0 skip the PRNG entirely: a config
   with one knob turned leaves the other kinds' schedules unchanged,
   and an all-zero config is indistinguishable from no injector. *)

type config = {
  seed : int;
  kernel_fail_p : float;
  stall_p : float;
  stall_factor : float;
  oom_p : float;
  nan_p : float;
}

let disabled =
  {
    seed = 0;
    kernel_fail_p = 0.0;
    stall_p = 0.0;
    stall_factor = 4.0;
    oom_p = 0.0;
    nan_p = 0.0;
  }

let enabled c =
  c.kernel_fail_p > 0.0 || c.stall_p > 0.0 || c.oom_p > 0.0 || c.nan_p > 0.0

type kind =
  | Kernel_failure
  | Device_stall
  | Alloc_oom
  | Nan_corruption
  | Replica_crash
  | Replica_stall
  | Replica_partition

let kind_name = function
  | Kernel_failure -> "kernel_failure"
  | Device_stall -> "device_stall"
  | Alloc_oom -> "alloc_oom"
  | Nan_corruption -> "nan_corruption"
  | Replica_crash -> "replica_crash"
  | Replica_stall -> "replica_stall"
  | Replica_partition -> "replica_partition"

let all_kinds =
  [ Kernel_failure; Device_stall; Alloc_oom; Nan_corruption; Replica_crash;
    Replica_stall; Replica_partition ]

let kind_index = function
  | Kernel_failure -> 0
  | Device_stall -> 1
  | Alloc_oom -> 2
  | Nan_corruption -> 3
  | Replica_crash -> 4
  | Replica_stall -> 5
  | Replica_partition -> 6

type event = { seq : int; site : string; kind : kind }

type t = {
  config : config;
  st : Random.State.t;
  mutable seq : int;
  counts : int array;
}

let create config =
  {
    config;
    st = Random.State.make [| config.seed |];
    seq = 0;
    counts = Array.make (List.length all_kinds) 0;
  }

let config t = t.config

let draw t p kind site =
  if p <= 0.0 then None
  else if Random.State.float t.st 1.0 < p then begin
    let ev = { seq = t.seq; site; kind } in
    t.seq <- t.seq + 1;
    t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
    Some ev
  end
  else None

let kernel_failure t ~site = draw t t.config.kernel_fail_p Kernel_failure site

let device_stall t ~site =
  match draw t t.config.stall_p Device_stall site with
  | Some ev -> Some (ev, t.config.stall_factor)
  | None -> None

let alloc_oom t ~site = draw t t.config.oom_p Alloc_oom site
let nan_corruption t ~site = draw t t.config.nan_p Nan_corruption site
let injected_total t = t.seq
let injected t kind = t.counts.(kind_index kind)

(* Replica-scoped scheduled faults.

   Unlike the per-draw injector above, cluster faults are *windows* on
   the simulated clock: replica [replica] is crashed / stalled /
   partitioned from [from_us] (inclusive) to [until_us] (exclusive).
   Windows are planned up front from per-(replica, kind) independent
   PRNG streams, so arming one kind on one replica never perturbs the
   schedule of any other stream — the same discipline [draw] uses for
   probability-zero knobs. *)

type window = {
  replica : int;
  rkind : kind;
  from_us : float;
  until_us : float;
  factor : float;
}

type plan = window list

let window_active w t_us = t_us >= w.from_us && t_us < w.until_us

let plan_windows plan ~replica ?rkind () =
  List.filter
    (fun w ->
      w.replica = replica
      && match rkind with None -> true | Some k -> w.rkind = k)
    plan

let active_at plan ~replica rkind ~t_us =
  List.exists
    (fun w -> w.replica = replica && w.rkind = rkind && window_active w t_us)
    plan

let crashed_at plan ~replica ~t_us = active_at plan ~replica Replica_crash ~t_us

let partitioned_at plan ~replica ~t_us =
  active_at plan ~replica Replica_partition ~t_us

let stall_factor_at plan ~replica ~t_us =
  List.fold_left
    (fun acc w ->
      if w.replica = replica && w.rkind = Replica_stall && window_active w t_us
      then acc *. w.factor
      else acc)
    1.0 plan

let plan_replica_faults ~seed ~replicas ~horizon_us ?(crash_p = 0.0)
    ?(stall_p = 0.0) ?(partition_p = 0.0) ?(stall_factor = 4.0)
    ?(mean_down_us = 0.0) () =
  let mean_down_us =
    if mean_down_us > 0.0 then mean_down_us else horizon_us /. 5.0
  in
  let windows = ref [] in
  let sample replica rkind p factor =
    if p > 0.0 then begin
      (* one stream per (replica, kind): independent schedules *)
      let st = Random.State.make [| seed; replica; kind_index rkind |] in
      if Random.State.float st 1.0 < p then begin
        let from_us =
          horizon_us *. (0.1 +. (0.6 *. Random.State.float st 1.0))
        in
        let dur = mean_down_us *. (0.5 +. Random.State.float st 1.0) in
        let until_us = Float.min (from_us +. dur) (horizon_us *. 0.95) in
        if until_us > from_us then
          windows := { replica; rkind; from_us; until_us; factor } :: !windows
      end
    end
  in
  for replica = 0 to replicas - 1 do
    sample replica Replica_crash crash_p 1.0;
    sample replica Replica_stall stall_p stall_factor;
    sample replica Replica_partition partition_p 1.0
  done;
  List.sort
    (fun a b ->
      match compare a.from_us b.from_us with
      | 0 -> compare (a.replica, kind_index a.rkind) (b.replica, kind_index b.rkind)
      | c -> c)
    !windows

let window_event ~seq w =
  {
    seq;
    site = Printf.sprintf "replica-%d@%.0fus" w.replica w.from_us;
    kind = w.rkind;
  }

type error_class = Transient | Fatal | Resource_exhausted | Corrupt_output

exception Error of error_class * string

let error_class_name = function
  | Transient -> "transient"
  | Fatal -> "fatal"
  | Resource_exhausted -> "resource_exhausted"
  | Corrupt_output -> "corrupt_output"

let errorf cls fmt =
  Format.kasprintf (fun s -> raise (Error (cls, s))) fmt

let () =
  Printexc.register_printer (function
    | Error (cls, msg) ->
        Some (Printf.sprintf "Fault.Error(%s, %s)" (error_class_name cls) msg)
    | _ -> None)
