(** Analytic device performance models.

    The paper evaluates on physical GPUs; this sealed reproduction
    substitutes a roofline model per device (see DESIGN.md §1): a
    kernel's execution time is the maximum of its compute time
    (flops / sustained throughput) and its memory time
    (bytes / sustained bandwidth), plus a per-launch driver overhead.
    Graph capture replaces per-kernel launch overheads by a single
    replay overhead (§4.5 of the paper).

    Peak numbers come from public spec sheets; sustained-efficiency
    factors are what distinguish compiler-generated kernels from
    vendor libraries (partial library lowering, §4.6) and batch-1
    matrix-vector kernels (where generated code wins in the paper). *)

type backend = Cuda | Rocm | Metal | Vulkan | Opencl | Webgpu | Cpu

type topology = Ring | Fully_connected

type link = {
  link_name : string;
  link_bw_gbps : float;  (** per-direction effective link bandwidth *)
  link_latency_us : float;  (** per-hop transfer latency *)
  topology : topology;
}
(** Inter-device interconnect description, used to charge collective
    communication when a model is tensor-parallel sharded across
    simulated devices (DESIGN.md §13). *)

val pcie_gen4 : link
val pcie_gen3 : link
val nvlink : link
val unified_memory : link

val all_reduce_us : link -> world:int -> bytes:float -> float
(** Ring all-reduce latency for a full tensor of [bytes] across
    [world] peers: [2(w−1)/w · bytes/bw] plus per-hop latencies
    ([2(w−1)] hops on a ring, 2 on a fully connected fabric).
    Zero when [world <= 1]. *)

val all_gather_us : link -> world:int -> bytes:float -> float
(** Ring all-gather latency: [(w−1)/w · bytes/bw] plus [w−1] hop
    latencies (1 on a fully connected fabric). [bytes] is the size of
    the full gathered tensor. Zero when [world <= 1]. *)

val collective_wire_bytes :
  op:[ `All_reduce | `All_gather ] -> world:int -> bytes:float -> float
(** Bytes the link actually carries for a collective over a full
    tensor of [bytes] (the bandwidth term's numerator). *)

type t = {
  name : string;
  backend : backend;
  peak_gflops_f16 : float;
  peak_gflops_f32 : float;
  mem_bw_gbps : float;
  launch_overhead_us : float;
  graph_replay_overhead_us : float;
  supports_graph_capture : bool;
  vram_gb : float;
  gen_eff : float;  (** sustained fraction for compiler-generated kernels *)
  gen_gemv_eff : float;  (** same, for batch-1 matrix-vector workloads *)
  lib_gemm_eff : float;  (** vendor library GEMM efficiency; 0 = no library *)
  mem_eff : float;  (** sustained fraction of peak bandwidth *)
  step_overhead_us : float;
      (** fixed host cost per model invocation (e.g. browser JS and
          command-buffer submission on WebGPU) *)
  gen_gemm_traffic : float;
      (** traffic amplification of compiler-generated matmul-like
          kernels at high arithmetic intensity: imperfect tiling
          re-reads operands that a vendor library's blocked kernels
          stream once — the gap partial library lowering closes
          (§4.6, Figure 17) *)
  link : link;
      (** interconnect between peer instances of this device when
          sharded tensor-parallel *)
}

val peak_gflops : t -> Base.Dtype.t -> float

val kernel_time_us :
  t -> flops:float -> bytes:float -> compute_eff:float -> float
(** Roofline kernel time, excluding launch overhead. *)

val has_library : t -> bool

(** {1 Device presets used in the paper's evaluation} *)

val rtx4090 : t  (** Figures 14, 17, 19, 20; Tables 2 *)

val rx7900xtx : t  (** Figure 15 *)

val m2_ultra : t  (** Figures 16, 19, 20 *)

val iphone14pro : t  (** Table 3 *)

val samsung_s23 : t  (** Table 3 *)

val samsung_s24 : t  (** Figure 18 (GPU path) *)

val samsung_s24_cpu : t  (** Figure 18: llama.cpp runs CPU-only on Android *)

val orange_pi5 : t  (** Table 3 *)

val steam_deck : t  (** Table 3 *)

val jetson_orin : t  (** Table 3 *)

val webgpu_m3_max : t  (** Table 3: in-browser WebGPU on an M3 Max laptop *)

val all_presets : t list
val find : string -> t option
