(** Deterministic fault injection and the typed failure taxonomy.

    The paper's deployment story spans phones, browsers and discrete
    GPUs — environments where kernels sporadically fail, devices
    stall, allocations spike past the budget and vendor libraries
    corrupt outputs. This module gives those failures first-class,
    *testable* semantics: an injector is a seeded PRNG (never
    [Random.self_init]) consulted at well-defined injection points by
    the {!Vm} (kernel launches, extern calls, device timing), the
    {!Allocator} (allocation) and, at step granularity, the serving
    scheduler. Every fired injection is a typed {!event} with a
    stream-wide sequence number; the consulting component records it
    through {!Trace.Fault_injected}, so chaos runs are replayable and
    two runs with the same seed produce identical fault schedules.

    All probabilities default to 0; a draw with probability 0 does
    not consume PRNG state, so enabling one fault kind leaves the
    schedules of the others untouched and a config with every
    probability 0 is byte-identical to no injector at all. *)

type config = {
  seed : int;  (** PRNG seed; same seed = same fault schedule *)
  kernel_fail_p : float;
      (** per-launch probability of a transient kernel failure
          (raises {!Error}[ (Transient, _)] at the consulting site) *)
  stall_p : float;
      (** per-step probability of a device stall: the step's
          simulated time is multiplied by [stall_factor] *)
  stall_factor : float;  (** latency multiplier while stalled, > 1 *)
  oom_p : float;
      (** per-allocation probability of an OOM spike (raises
          {!Error}[ (Resource_exhausted, _)] from {!Allocator.alloc},
          or fails a KV-block grow in the scheduler) *)
  nan_p : float;
      (** per-extern-call probability of NaN output corruption
          ({!Library.poison} on the output tensor in numeric mode;
          [Corrupt_output] retry at the serving layer) *)
}

val disabled : config
(** Seed 0, every probability 0.0, stall factor 4.0. *)

val enabled : config -> bool
(** Any probability strictly positive. *)

type kind =
  | Kernel_failure
  | Device_stall
  | Alloc_oom
  | Nan_corruption
  | Replica_crash
      (** cluster scope: a replica's engine dies; its KV cache and
          in-flight batches are lost until the window closes *)
  | Replica_stall
      (** cluster scope: a straggler replica; every step is slowed by
          the window's [factor] *)
  | Replica_partition
      (** cluster scope: router-to-replica link drops; health probes
          fail but already-dispatched work is unaffected *)

val kind_name : kind -> string
(** Stable short names: "kernel_failure", "device_stall",
    "alloc_oom", "nan_corruption", "replica_crash", "replica_stall",
    "replica_partition". *)

val all_kinds : kind list

val kind_index : kind -> int
(** Dense 0-based index into [all_kinds], for counter arrays. *)

type event = {
  seq : int;  (** 0-based injection sequence number within this injector *)
  site : string;  (** where it fired (kernel name, "prefill", "alloc", ...) *)
  kind : kind;
}

type t
(** A live injector: config + seeded PRNG + injection counters. *)

val create : config -> t
val config : t -> config

(** {1 Draws}

    Each draw consults the PRNG iff the corresponding probability is
    positive, and returns [Some event] when the fault fires (also
    bumping the injector's counters). Callers are responsible for
    recording the event (e.g. through {!Trace.Fault_injected}) and
    acting on it. *)

val kernel_failure : t -> site:string -> event option
val device_stall : t -> site:string -> (event * float) option
(** The float is the configured [stall_factor] to apply. *)

val alloc_oom : t -> site:string -> event option
val nan_corruption : t -> site:string -> event option

val injected_total : t -> int
(** Number of events fired so far (= next event's [seq]). *)

val injected : t -> kind -> int

(** {1 Replica-scoped scheduled faults}

    Cluster-level faults are planned *windows* on the simulated clock
    rather than per-draw Bernoulli trials: replica [replica] is
    crashed / stalled / partitioned for [\[from_us, until_us)]. The
    plan is generated up front from per-(replica, kind) independent
    PRNG streams ([Random.State.make \[| seed; replica; kind |\]]), so
    arming one kind on one replica never perturbs any other stream,
    and a probability-0 kind consumes no PRNG state at all. Explicit
    windows can also be constructed directly (benches script exact
    scenarios such as "replica 2 dead for the middle third"). *)

type window = {
  replica : int;
  rkind : kind;  (** one of the [Replica_*] kinds *)
  from_us : float;  (** window start, inclusive *)
  until_us : float;  (** window end, exclusive *)
  factor : float;  (** stall slowdown multiplier; 1.0 for crash/partition *)
}

type plan = window list

val plan_replica_faults :
  seed:int ->
  replicas:int ->
  horizon_us:float ->
  ?crash_p:float ->
  ?stall_p:float ->
  ?partition_p:float ->
  ?stall_factor:float ->
  ?mean_down_us:float ->
  unit ->
  plan
(** Sample at most one window per (replica, kind): with probability
    [p] the window starts uniformly in the first 70% of the horizon
    and lasts [mean_down_us × U(0.5, 1.5)] (default mean: a fifth of
    the horizon), clamped to end by 95% of the horizon. Windows are
    returned sorted by start time. Same seed = same plan. *)

val window_active : window -> float -> bool
val plan_windows : plan -> replica:int -> ?rkind:kind -> unit -> window list
val crashed_at : plan -> replica:int -> t_us:float -> bool
val partitioned_at : plan -> replica:int -> t_us:float -> bool

val stall_factor_at : plan -> replica:int -> t_us:float -> float
(** Product of the factors of all active stall windows; 1.0 if none. *)

val window_event : seq:int -> window -> event
(** Typed event for recording a window through {!Trace.Fault_injected}. *)

(** {1 Typed failure taxonomy}

    The serving and VM layers raise {!Error} instead of stringly
    [Failure]/[Invalid_argument] so callers can make policy
    decisions: retry transients with backoff, shed on resource
    exhaustion, regenerate corrupt output, and only propagate
    fatals. {!Vm.Vm_error} remains for VM-internal programming
    errors (shape-check failures, missing functions). *)

type error_class =
  | Transient  (** retry with backoff may succeed (kernel blip) *)
  | Fatal  (** programming or configuration error; do not retry *)
  | Resource_exhausted
      (** memory/budget exceeded; shed load or wait for capacity *)
  | Corrupt_output  (** result data is wrong; discard and recompute *)

exception Error of error_class * string

val error_class_name : error_class -> string
(** "transient", "fatal", "resource_exhausted", "corrupt_output". *)

val errorf : error_class -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [errorf cls fmt ...] raises {!Error}[ (cls, msg)]. *)
