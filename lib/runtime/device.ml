type backend = Cuda | Rocm | Metal | Vulkan | Opencl | Webgpu | Cpu

type topology = Ring | Fully_connected

type link = {
  link_name : string;
  link_bw_gbps : float;
  link_latency_us : float;
  topology : topology;
}

(* Interconnect presets.  Bandwidths are per-direction effective rates;
   latency is the per-hop software+wire cost of one transfer. *)
let pcie_gen4 =
  {
    link_name = "pcie-gen4-x16";
    link_bw_gbps = 32.0;
    link_latency_us = 5.0;
    topology = Ring;
  }

let pcie_gen3 =
  {
    link_name = "pcie-gen3-x8";
    link_bw_gbps = 8.0;
    link_latency_us = 8.0;
    topology = Ring;
  }

let nvlink =
  {
    link_name = "nvlink4";
    link_bw_gbps = 450.0;
    link_latency_us = 1.8;
    topology = Fully_connected;
  }

let unified_memory =
  {
    link_name = "unified-memory";
    link_bw_gbps = 200.0;
    link_latency_us = 1.0;
    topology = Fully_connected;
  }

type t = {
  name : string;
  backend : backend;
  peak_gflops_f16 : float;
  peak_gflops_f32 : float;
  mem_bw_gbps : float;
  launch_overhead_us : float;
  graph_replay_overhead_us : float;
  supports_graph_capture : bool;
  vram_gb : float;
  gen_eff : float;
  gen_gemv_eff : float;
  lib_gemm_eff : float;
  mem_eff : float;
  step_overhead_us : float;
  gen_gemm_traffic : float;
  link : link;
}

(* Ring collective costs over [world] peers connected by [link].

   All-reduce (ring algorithm): each peer sends 2(w-1)/w of the tensor
   over the wire (reduce-scatter + all-gather phases), in 2(w-1)
   sequential hop steps.  All-gather: (w-1)/w of the full tensor, w-1
   hops.  A fully connected fabric (NVLink/unified memory) pays the
   same bandwidth term but only a constant number of latency hops.
   [bytes] is the size of the full (unsharded) tensor. *)
let hop_count topology ~world ~phases =
  match topology with
  | Ring -> phases * (world - 1)
  | Fully_connected -> phases

let all_reduce_us link ~world ~bytes =
  if world <= 1 then 0.0
  else
    let w = float_of_int world in
    (2.0 *. (w -. 1.0) /. w) *. bytes /. (link.link_bw_gbps *. 1e3)
    +. float_of_int (hop_count link.topology ~world ~phases:2)
       *. link.link_latency_us

let all_gather_us link ~world ~bytes =
  if world <= 1 then 0.0
  else
    let w = float_of_int world in
    ((w -. 1.0) /. w) *. bytes /. (link.link_bw_gbps *. 1e3)
    +. float_of_int (hop_count link.topology ~world ~phases:1)
       *. link.link_latency_us

(* Wire traffic actually carried by the link (the bandwidth term's
   numerator), for trace/profiler accounting. *)
let collective_wire_bytes ~op ~world ~bytes =
  if world <= 1 then 0.0
  else
    let w = float_of_int world in
    let frac = (w -. 1.0) /. w in
    match op with `All_reduce -> 2.0 *. frac *. bytes | `All_gather -> frac *. bytes

let peak_gflops t (dt : Base.Dtype.t) =
  match dt with
  | Base.Dtype.F16 -> t.peak_gflops_f16
  | Base.Dtype.F32 | Base.Dtype.I8 | Base.Dtype.U8 | Base.Dtype.I32
  | Base.Dtype.U32 | Base.Dtype.I64 | Base.Dtype.Bool ->
      t.peak_gflops_f32

let kernel_time_us t ~flops ~bytes ~compute_eff =
  (* GFLOP/s = 1e3 FLOP/us; GB/s = 1e3 B/us. *)
  let compute_us = flops /. (t.peak_gflops_f16 *. compute_eff *. 1e3) in
  let memory_us = bytes /. (t.mem_bw_gbps *. t.mem_eff *. 1e3) in
  Float.max compute_us memory_us

let has_library t = t.lib_gemm_eff > 0.0

let rtx4090 =
  {
    name = "NVIDIA RTX 4090";
    backend = Cuda;
    peak_gflops_f16 = 165_000.0;
    peak_gflops_f32 = 82_600.0;
    mem_bw_gbps = 1008.0;
    launch_overhead_us = 4.0;
    graph_replay_overhead_us = 18.0;
    supports_graph_capture = true;
    vram_gb = 24.0;
    gen_eff = 0.55;
    gen_gemv_eff = 0.85;
    lib_gemm_eff = 0.85;
    mem_eff = 0.85;
    step_overhead_us = 0.0;
    gen_gemm_traffic = 1.6;
    link = pcie_gen4;
  }

let rx7900xtx =
  {
    name = "AMD Radeon 7900 XTX";
    backend = Rocm;
    peak_gflops_f16 = 122_800.0;
    peak_gflops_f32 = 61_400.0;
    mem_bw_gbps = 960.0;
    launch_overhead_us = 6.0;
    graph_replay_overhead_us = 25.0;
    supports_graph_capture = true;
    vram_gb = 24.0;
    gen_eff = 0.50;
    gen_gemv_eff = 0.80;
    lib_gemm_eff = 0.62;
    mem_eff = 0.78;
    step_overhead_us = 0.0;
    gen_gemm_traffic = 1.65;
    link = pcie_gen4;
  }

let m2_ultra =
  {
    name = "Apple M2 Ultra";
    backend = Metal;
    peak_gflops_f16 = 27_200.0;
    peak_gflops_f32 = 27_200.0;
    mem_bw_gbps = 800.0;
    launch_overhead_us = 12.0;
    graph_replay_overhead_us = 0.0;
    supports_graph_capture = false;
    vram_gb = 64.0;
    gen_eff = 0.55;
    gen_gemv_eff = 0.80;
    lib_gemm_eff = 0.65;
    mem_eff = 0.80;
    step_overhead_us = 0.0;
    gen_gemm_traffic = 1.5;
    link = unified_memory;
  }

let iphone14pro =
  {
    name = "iPhone 14 Pro";
    backend = Metal;
    peak_gflops_f16 = 3_600.0;
    peak_gflops_f32 = 2_000.0;
    mem_bw_gbps = 51.2;
    launch_overhead_us = 15.0;
    graph_replay_overhead_us = 0.0;
    supports_graph_capture = false;
    vram_gb = 4.0;
    gen_eff = 0.45;
    gen_gemv_eff = 0.65;
    lib_gemm_eff = 0.0;
    mem_eff = 0.52;
    step_overhead_us = 0.0;
    gen_gemm_traffic = 1.5;
    link = unified_memory;
  }

let samsung_s23 =
  {
    name = "Samsung S23";
    backend = Opencl;
    peak_gflops_f16 = 4_700.0;
    peak_gflops_f32 = 2_350.0;
    mem_bw_gbps = 67.0;
    launch_overhead_us = 18.0;
    graph_replay_overhead_us = 0.0;
    supports_graph_capture = false;
    vram_gb = 8.0;  (* unified LPDDR5X *)
    gen_eff = 0.45;
    gen_gemv_eff = 0.65;
    lib_gemm_eff = 0.0;
    mem_eff = 0.60;
    step_overhead_us = 0.0;
    gen_gemm_traffic = 1.5;
    link = unified_memory;
  }

let samsung_s24 =
  {
    name = "Samsung S24";
    backend = Opencl;
    peak_gflops_f16 = 5_400.0;
    peak_gflops_f32 = 2_700.0;
    mem_bw_gbps = 77.0;
    launch_overhead_us = 17.0;
    graph_replay_overhead_us = 0.0;
    supports_graph_capture = false;
    vram_gb = 6.0;
    gen_eff = 0.45;
    gen_gemv_eff = 0.65;
    lib_gemm_eff = 0.0;
    mem_eff = 0.62;
    step_overhead_us = 0.0;
    gen_gemm_traffic = 1.5;
    link = unified_memory;
  }

let samsung_s24_cpu =
  {
    name = "Samsung S24 (CPU)";
    backend = Cpu;
    peak_gflops_f16 = 600.0;  (* 8 cores with NEON fp16 FMA *)
    peak_gflops_f32 = 300.0;
    mem_bw_gbps = 77.0;
    launch_overhead_us = 0.2;
    graph_replay_overhead_us = 0.0;
    supports_graph_capture = false;
    vram_gb = 6.0;
    gen_eff = 0.60;
    gen_gemv_eff = 0.60;
    lib_gemm_eff = 0.0;
    mem_eff = 0.33;
    step_overhead_us = 0.0;  (* CPU cores cannot saturate the LPDDR bus *)
    gen_gemm_traffic = 1.5;
    link = unified_memory;
  }

let orange_pi5 =
  {
    name = "Orange Pi 5";
    backend = Opencl;
    peak_gflops_f16 = 500.0;
    peak_gflops_f32 = 250.0;
    mem_bw_gbps = 17.0;
    launch_overhead_us = 25.0;
    graph_replay_overhead_us = 0.0;
    supports_graph_capture = false;
    vram_gb = 16.0;  (* unified LPDDR, 16 GB board *)
    gen_eff = 0.45;
    gen_gemv_eff = 0.60;
    lib_gemm_eff = 0.0;
    mem_eff = 0.75;
    step_overhead_us = 0.0;
    gen_gemm_traffic = 1.5;
    link = pcie_gen3;
  }

let steam_deck =
  {
    name = "Steam Deck";
    backend = Vulkan;
    peak_gflops_f16 = 3_200.0;
    peak_gflops_f32 = 1_600.0;
    mem_bw_gbps = 88.0;
    launch_overhead_us = 8.0;
    graph_replay_overhead_us = 0.0;
    supports_graph_capture = false;
    vram_gb = 16.0;  (* unified LPDDR5 *)
    gen_eff = 0.50;
    gen_gemv_eff = 0.70;
    lib_gemm_eff = 0.0;
    mem_eff = 0.78;
    step_overhead_us = 0.0;
    gen_gemm_traffic = 1.5;
    link = unified_memory;
  }

let jetson_orin =
  {
    name = "Jetson Orin";
    backend = Cuda;
    peak_gflops_f16 = 10_600.0;
    peak_gflops_f32 = 5_300.0;
    mem_bw_gbps = 204.8;
    launch_overhead_us = 6.0;
    graph_replay_overhead_us = 20.0;
    supports_graph_capture = true;
    vram_gb = 32.0;
    gen_eff = 0.50;
    gen_gemv_eff = 0.75;
    lib_gemm_eff = 0.70;
    mem_eff = 0.85;
    step_overhead_us = 0.0;
    gen_gemm_traffic = 1.5;
    link = pcie_gen4;
  }

let webgpu_m3_max =
  {
    name = "WebGPU (M3 Max)";
    backend = Webgpu;
    peak_gflops_f16 = 28_400.0;
    peak_gflops_f32 = 14_200.0;
    mem_bw_gbps = 400.0;
    launch_overhead_us = 2.0;  (* kernels batched into one command buffer *)
    graph_replay_overhead_us = 0.0;
    supports_graph_capture = false;
    vram_gb = 36.0;
    gen_eff = 0.40;
    gen_gemv_eff = 0.55;
    lib_gemm_eff = 0.0;
    mem_eff = 0.50;
    step_overhead_us = 2_000.0;  (* per-token JS + command submission *)
    gen_gemm_traffic = 1.5;
    link = unified_memory;
  }

let all_presets =
  [
    rtx4090;
    rx7900xtx;
    m2_ultra;
    iphone14pro;
    samsung_s23;
    samsung_s24;
    samsung_s24_cpu;
    orange_pi5;
    steam_deck;
    jetson_orin;
    webgpu_m3_max;
  ]

let find name = List.find_opt (fun d -> d.name = name) all_presets
