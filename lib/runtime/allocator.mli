(** Memory allocators with usage accounting.

    Two flavors model the paper's Table 2 comparison:
    - [`Planned]: storage is allocated once by the compiler's static
      memory plan and reused across shapes — the "with planning" rows.
    - [`Pooling]: a runtime pool that recycles freed blocks by exact
      size — the paper's "without planning" fallback, which grows as
      new dynamic shapes appear.
    - [`Naive]: allocate/free with no reuse (eager-framework model).

    All report live/peak bytes and allocation counts. *)

type kind = [ `Planned | `Pooling | `Naive ]

type t

val create : ?fault:Fault.t -> kind -> t
(** [?fault] arms the allocator with a seeded {!Fault} injector:
    every {!alloc} first draws an OOM-spike fault and raises
    {!Fault.Error}[ (Resource_exhausted, _)] when it fires (the
    allocation is not performed and no state changes). Omitted =
    fault-free, byte-identical to the pre-injection behavior. *)

val kind : t -> kind

val alloc : t -> int -> int
(** [alloc t bytes] returns a storage id. For [`Pooling], a free block
    of the exact size is reused when available.

    @raise Fault.Error [(Resource_exhausted, _)] when an armed
    injector's OOM draw fires (see {!create}). *)

val free : t -> int -> unit
(** Release the storage id: [`Pooling] returns the block to the pool
    (still resident); [`Naive]/[`Planned] release the memory. *)

val size_of : t -> int -> int option
(** Size in bytes of a still-resident storage id ([None] once a
    [`Naive]/[`Planned] storage has been freed). *)

val live_bytes : t -> int
(** Currently resident bytes (pool blocks count as resident). *)

val pool_free_bytes : t -> int
(** Bytes resident in the [`Pooling] free pool — allocated from the
    device but not currently backing any live storage. 0 for
    [`Planned]/[`Naive]. Admission controllers (the serving engine's
    block manager) read this to decide whether a new request's cache
    blocks fit without growing the pool. *)

val fragmentation : t -> float
(** Idle fraction of resident pool memory:
    [pool_free_bytes / live_bytes] (0.0 when nothing is resident).
    High values mean the pool holds blocks whose exact sizes no longer
    match demand — the paper's "without planning" growth pathology. *)

val peak_bytes : t -> int
val alloc_count : t -> int
(** Number of fresh (non-recycled) allocations performed. *)

val reset_stats : t -> unit
