type row = {
  name : string;
  kind : [ `Kernel | `Extern | `Comm ];
  mutable calls : int;
  mutable launches : int;
  mutable time_us : float;
  mutable flops : float;
  mutable bytes_moved : float;
  mutable origin : string option;
  mutable backend : string;  (* "-" until a Kernel_launch stamps it *)
}

type serve_counts = {
  arrivals : int;
  prefills : int;
  decode_steps : int;
  preempts : int;
  finishes : int;
  sheds : int;
  timeouts : int;
  retries : int;
  aborts : int;
  degrades : int;
  prefix_hits : int;
  cow_copies : int;
  kv_evictions : int;
  failovers : int;
  hedges : int;
  hedge_wins : int;
  replica_downs : int;
  replica_ups : int;
}

type t = {
  table : (string, row) Hashtbl.t;
  mutable steps : int;
  mutable overhead_us : float;
  mutable captures : int;
  mutable replays : int;
  mutable peak_live : int;
  mutable allocs : int;
  mutable reuses : int;
  mutable frees : int;
  mutable events : int;
  mutable serve : serve_counts;
  faults : int array;  (* indexed like Fault.all_kinds *)
  backends : (string, int * float) Hashtbl.t;
      (* execution backend -> (kernel calls, time_us) *)
  devices : (string, int * float) Hashtbl.t;
      (* device tag ("g0".."g<tp-1>" from sharded provenance, "shared"
         for replicated work, "link" for collectives) -> (calls, time_us) *)
}

(* Sharded modules name per-shard bindings "g<k>:...", which To_vm
   threads through as provenance.  Everything else is replicated work
   that runs on every device. *)
let device_tag_of_prov prov =
  match prov with
  | Some p -> (
      let n = String.length p in
      if n >= 3 && p.[0] = 'g' then
        match String.index_opt p ':' with
        | Some j when j >= 2 ->
            let num = String.sub p 1 (j - 1) in
            if String.for_all (fun c -> c >= '0' && c <= '9') num then
              Some ("g" ^ num)
            else None
        | _ -> None
      else None)
  | None -> None

let zero_serve =
  {
    arrivals = 0;
    prefills = 0;
    decode_steps = 0;
    preempts = 0;
    finishes = 0;
    sheds = 0;
    timeouts = 0;
    retries = 0;
    aborts = 0;
    degrades = 0;
    prefix_hits = 0;
    cow_copies = 0;
    kv_evictions = 0;
    failovers = 0;
    hedges = 0;
    hedge_wins = 0;
    replica_downs = 0;
    replica_ups = 0;
  }

let create () =
  {
    table = Hashtbl.create 32;
    steps = 0;
    overhead_us = 0.0;
    captures = 0;
    replays = 0;
    peak_live = 0;
    allocs = 0;
    reuses = 0;
    frees = 0;
    events = 0;
    serve = zero_serve;
    faults = Array.make (List.length Fault.all_kinds) 0;
    backends = Hashtbl.create 4;
    devices = Hashtbl.create 4;
  }

let bump_device t tag elapsed_us =
  let calls, us =
    Option.value (Hashtbl.find_opt t.devices tag) ~default:(0, 0.0)
  in
  Hashtbl.replace t.devices tag (calls + 1, us +. elapsed_us)

let kind_idx = Fault.kind_index

let row t kind name origin =
  match Hashtbl.find_opt t.table name with
  | Some r ->
      if r.origin = None then r.origin <- origin;
      r
  | None ->
      let r =
        {
          name;
          kind;
          calls = 0;
          launches = 0;
          time_us = 0.0;
          flops = 0.0;
          bytes_moved = 0.0;
          origin;
          backend = "-";
        }
      in
      Hashtbl.replace t.table name r;
      r

let feed t (ev : Trace.event) =
  t.events <- t.events + 1;
  match ev with
  | Trace.Enter { top; overhead_us; _ } ->
      if top then t.steps <- t.steps + 1;
      t.overhead_us <- t.overhead_us +. overhead_us
  | Trace.Kernel_launch
      { kernel; prov; replay; flops; bytes_moved; elapsed_us; backend; _ } ->
      let r = row t `Kernel kernel prov in
      r.calls <- r.calls + 1;
      if not replay then r.launches <- r.launches + 1;
      r.time_us <- r.time_us +. elapsed_us;
      r.flops <- r.flops +. float_of_int flops;
      r.bytes_moved <- r.bytes_moved +. float_of_int bytes_moved;
      r.backend <- backend;
      let calls, us =
        Option.value (Hashtbl.find_opt t.backends backend) ~default:(0, 0.0)
      in
      Hashtbl.replace t.backends backend (calls + 1, us +. elapsed_us);
      bump_device t
        (Option.value (device_tag_of_prov prov) ~default:"shared")
        elapsed_us
  | Trace.Extern_call { func; prov; replay; flops; bytes_moved; elapsed_us; _ }
    ->
      let r = row t `Extern func prov in
      r.calls <- r.calls + 1;
      if not replay then r.launches <- r.launches + 1;
      r.time_us <- r.time_us +. elapsed_us;
      r.flops <- r.flops +. flops;
      r.bytes_moved <- r.bytes_moved +. bytes_moved;
      bump_device t
        (Option.value (device_tag_of_prov prov) ~default:"shared")
        elapsed_us
  | Trace.Collective { op; prov; replay; bytes_wire; elapsed_us; _ } ->
      let r = row t `Comm op prov in
      r.calls <- r.calls + 1;
      if not replay then r.launches <- r.launches + 1;
      r.time_us <- r.time_us +. elapsed_us;
      r.bytes_moved <- r.bytes_moved +. bytes_wire;
      bump_device t "link" elapsed_us
  | Trace.Capture_begin _ -> t.captures <- t.captures + 1
  | Trace.Capture_replay { overhead_us; _ } ->
      t.replays <- t.replays + 1;
      t.overhead_us <- t.overhead_us +. overhead_us
  | Trace.Alloc { reused; live; _ } ->
      if reused then t.reuses <- t.reuses + 1 else t.allocs <- t.allocs + 1;
      if live > t.peak_live then t.peak_live <- live
  | Trace.Free { live; _ } ->
      t.frees <- t.frees + 1;
      if live > t.peak_live then t.peak_live <- live
  | Trace.Serve { tag; _ } ->
      let s = t.serve in
      t.serve <-
        (match tag with
        | `Request_arrive -> { s with arrivals = s.arrivals + 1 }
        | `Prefill -> { s with prefills = s.prefills + 1 }
        | `Decode_step -> { s with decode_steps = s.decode_steps + 1 }
        | `Preempt -> { s with preempts = s.preempts + 1 }
        | `Finish -> { s with finishes = s.finishes + 1 }
        | `Shed -> { s with sheds = s.sheds + 1 }
        | `Timeout -> { s with sheds = s.sheds + 1; timeouts = s.timeouts + 1 }
        | `Retry -> { s with retries = s.retries + 1 }
        | `Abort -> { s with aborts = s.aborts + 1 }
        | `Degrade -> { s with degrades = s.degrades + 1 }
        | `Prefix_hit -> { s with prefix_hits = s.prefix_hits + 1 }
        | `Cow_copy -> { s with cow_copies = s.cow_copies + 1 }
        | `Evict -> { s with kv_evictions = s.kv_evictions + 1 }
        | `Failover -> { s with failovers = s.failovers + 1 }
        | `Hedge -> { s with hedges = s.hedges + 1 }
        | `Hedge_win -> { s with hedge_wins = s.hedge_wins + 1 }
        | `Replica_down -> { s with replica_downs = s.replica_downs + 1 }
        | `Replica_up -> { s with replica_ups = s.replica_ups + 1 })
  | Trace.Fault_injected { Fault.kind; _ } ->
      t.faults.(kind_idx kind) <- t.faults.(kind_idx kind) + 1
  | Trace.Exit _ | Trace.Instr_begin _ | Trace.Instr_end _ | Trace.Bind_shape _
  | Trace.Check_shape _ | Trace.Tensor_in_storage _ | Trace.End_of_life _ ->
      ()

let sink t : Trace.sink = feed t

let rows t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun a b ->
         match compare b.time_us a.time_us with
         | 0 -> String.compare a.name b.name
         | c -> c)

let find_row t name = Hashtbl.find_opt t.table name

let call_time_us t =
  Hashtbl.fold (fun _ r acc -> acc +. r.time_us) t.table 0.0

let total_time_us t = call_time_us t +. t.overhead_us
let peak_live_bytes t = t.peak_live
let steps t = t.steps
let replays t = t.replays
let event_count t = t.events
let alloc_count t = t.allocs
let reuse_count t = t.reuses
let free_count t = t.frees
let serve_counts t = t.serve

let backend_split t =
  Hashtbl.fold (fun name (calls, us) acc -> (name, calls, us) :: acc)
    t.backends []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let comm_time_us t =
  Hashtbl.fold
    (fun _ r acc -> match r.kind with `Comm -> acc +. r.time_us | _ -> acc)
    t.table 0.0

let collective_count t =
  Hashtbl.fold
    (fun _ r acc -> match r.kind with `Comm -> acc + r.calls | _ -> acc)
    t.table 0

(* Per-device attribution, only meaningful for sharded modules: empty
   unless some provenance carried a "g<k>:" shard tag. *)
let device_split t =
  let tagged =
    Hashtbl.fold (fun tag _ acc -> acc || (tag <> "shared" && tag <> "link"))
      t.devices false
  in
  if not tagged then []
  else
    Hashtbl.fold (fun tag (calls, us) acc -> (tag, calls, us) :: acc)
      t.devices []
    |> List.sort (fun (a, _, _) (b, _, _) ->
           (* g0 < g1 < ... < g10 (numeric), then "link", then "shared" *)
           let key s =
             if String.length s > 1 && s.[0] = 'g' then
               match int_of_string_opt (String.sub s 1 (String.length s - 1))
               with
               | Some n -> (0, n, s)
               | None -> (1, 0, s)
             else (1, 0, s)
           in
           compare (key a) (key b))
let fault_count t kind = t.faults.(kind_idx kind)
let faults_injected t = Array.fold_left ( + ) 0 t.faults

let report ?(top = 0) t =
  let buf = Buffer.create 1024 in
  let all = rows t in
  let shown = if top > 0 && List.length all > top then top else List.length all in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %-6s %-8s %6s %7s %12s %10s %10s  %s\n" "name"
       "kind" "backend" "calls" "launch" "time ms" "GFLOP" "MiB moved" "origin");
  List.iteri
    (fun i r ->
      if i < shown then
        Buffer.add_string buf
          (Printf.sprintf "%-44s %-6s %-8s %6d %7d %12.4f %10.4f %10.2f  %s\n"
             r.name
             (match r.kind with
             | `Kernel -> "kernel"
             | `Extern -> "lib"
             | `Comm -> "comm")
             r.backend r.calls r.launches (r.time_us /. 1e3) (r.flops /. 1e9)
             (r.bytes_moved /. 1048576.0)
             (match r.origin with Some p -> p | None -> "-")))
    all;
  if shown < List.length all then
    Buffer.add_string buf
      (Printf.sprintf "  ... %d more rows\n" (List.length all - shown));
  let launches = List.fold_left (fun acc r -> acc + r.launches) 0 all in
  let calls = List.fold_left (fun acc r -> acc + r.calls) 0 all in
  Buffer.add_string buf
    (Printf.sprintf
       "calls: %d (%d launched, %d replayed) across %d kernels/routines; %d \
        captures, %d replays, %d steps\n"
       calls launches (calls - launches) (List.length all) t.captures
       t.replays t.steps);
  Buffer.add_string buf
    (Printf.sprintf
       "time: total %.4f ms = calls %.4f ms + overheads %.4f ms\n"
       (total_time_us t /. 1e3)
       (call_time_us t /. 1e3)
       (t.overhead_us /. 1e3));
  (match backend_split t with
  | [] -> ()
  | split ->
      Buffer.add_string buf
        (Printf.sprintf "backends: %s\n"
           (String.concat ", "
              (List.map
                 (fun (name, calls, us) ->
                   Printf.sprintf "%s %d calls %.4f ms" name calls (us /. 1e3))
                 split))));
  (match device_split t with
  | [] -> ()
  | split ->
      Buffer.add_string buf
        (Printf.sprintf "devices: %s\n"
           (String.concat ", "
              (List.map
                 (fun (tag, calls, us) ->
                   Printf.sprintf "%s %d calls %.4f ms" tag calls (us /. 1e3))
                 split)));
      if collective_count t > 0 then
        Buffer.add_string buf
          (Printf.sprintf "comm: %d collectives %.4f ms\n" (collective_count t)
             (comm_time_us t /. 1e3)));
  Buffer.add_string buf
    (Printf.sprintf
       "memory: peak live %.2f MiB (%d bytes); %d allocs, %d reused, %d frees\n"
       (float_of_int t.peak_live /. 1048576.0)
       t.peak_live t.allocs t.reuses t.frees);
  let s = t.serve in
  if s.arrivals + s.prefills + s.decode_steps + s.preempts + s.finishes > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "serving: %d arrivals, %d prefills, %d decode steps, %d preemptions, \
          %d finished\n"
         s.arrivals s.prefills s.decode_steps s.preempts s.finishes);
  if s.sheds + s.retries + s.aborts + s.degrades > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "resilience: %d shed (%d timed out), %d retries, %d aborted, %d \
          degrades\n"
         s.sheds s.timeouts s.retries s.aborts s.degrades);
  if s.prefix_hits + s.cow_copies + s.kv_evictions > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "kv sharing: %d prefix hits, %d cow copies, %d evictions\n"
         s.prefix_hits s.cow_copies s.kv_evictions);
  if s.failovers + s.hedges + s.replica_downs > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "failover: %d migrations, %d hedges (%d wins), %d replica downs, %d \
          replica ups\n"
         s.failovers s.hedges s.hedge_wins s.replica_downs s.replica_ups);
  if faults_injected t > 0 then
    Buffer.add_string buf
      (Printf.sprintf "faults: %d injected (%s)\n" (faults_injected t)
         (String.concat ", "
            (List.filter_map
               (fun k ->
                 let n = fault_count t k in
                 if n > 0 then
                   Some (Printf.sprintf "%d %s" n (Fault.kind_name k))
                 else None)
               Fault.all_kinds)));
  Buffer.contents buf
