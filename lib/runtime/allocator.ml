type kind = [ `Planned | `Pooling | `Naive ]

type storage = { size : int }

type t = {
  akind : kind;
  storages : (int, storage) Hashtbl.t;
  mutable free_pool : (int * int) list;  (** (size, id) blocks held by the pool *)
  mutable next_id : int;
  mutable live : int;
  mutable peak : int;
  mutable allocs : int;
  fault : Fault.t option;
}

let create ?fault akind =
  {
    akind;
    storages = Hashtbl.create 64;
    free_pool = [];
    next_id = 0;
    live = 0;
    peak = 0;
    allocs = 0;
    fault;
  }

let kind t = t.akind

let fresh_alloc t bytes =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.storages id { size = bytes };
  t.live <- t.live + bytes;
  if t.live > t.peak then t.peak <- t.live;
  t.allocs <- t.allocs + 1;
  id

let alloc t bytes =
  (match t.fault with
  | Some inj -> (
      match Fault.alloc_oom inj ~site:"alloc" with
      | Some _ ->
          Fault.errorf Fault.Resource_exhausted
            "injected allocator OOM (%d bytes requested, %d live)" bytes t.live
      | None -> ())
  | None -> ());
  match t.akind with
  | `Planned | `Naive -> fresh_alloc t bytes
  | `Pooling -> (
      match List.partition (fun (size, _) -> size = bytes) t.free_pool with
      | (_, id) :: rest_same, others ->
          t.free_pool <- List.map (fun (s, i) -> (s, i)) rest_same @ others;
          id
      | [], _ -> fresh_alloc t bytes)

let free t id =
  match Hashtbl.find_opt t.storages id with
  | None -> ()
  | Some { size } -> (
      match t.akind with
      | `Pooling ->
          (* Block stays resident in the pool. *)
          t.free_pool <- (size, id) :: t.free_pool
      | `Planned | `Naive ->
          Hashtbl.remove t.storages id;
          t.live <- t.live - size)

let size_of t id =
  Option.map (fun { size } -> size) (Hashtbl.find_opt t.storages id)

let live_bytes t = t.live

let pool_free_bytes t =
  List.fold_left (fun acc (size, _) -> acc + size) 0 t.free_pool

let fragmentation t =
  if t.live = 0 then 0.0
  else float_of_int (pool_free_bytes t) /. float_of_int t.live

let peak_bytes t = t.peak
let alloc_count t = t.allocs

let reset_stats t =
  t.peak <- t.live;
  t.allocs <- 0
