type instr =
  | Match_shape of { src : int; dims : Arith.Expr.t array }
  | Alloc_storage of { dst : int; bytes : Arith.Expr.t }
  | Alloc_tensor of {
      dst : int;
      storage : int option;
      dims : Arith.Expr.t array;
      dtype : Base.Dtype.t;
    }
  | Kill of int array
  | Call_kernel of {
      kernel : string;
      args : int array;
      sym_args : Arith.Expr.t array;
    }
  | Call_extern of { func : string; args : int array }
  | Call_func of { dst : int; func : string; args : int array }
  | Call_captured of { dst : int; func : string; args : int array; capture_id : int }
  | Make_tuple of { dst : int; srcs : int array }
  | Get_tuple of { dst : int; src : int; index : int }
  | Make_shape of { dst : int; dims : Arith.Expr.t array }
  | Cond of {
      cond : int;
      then_code : instr array;
      then_reg : int;
      else_code : instr array;
      else_reg : int;
      dst : int;
    }
  | Load_const of { dst : int; tensor : Base.Ndarray.t }
  | Ret of int

type vm_func = {
  fname : string;
  nparams : int;
  nregs : int;
  instrs : instr array;
  prov : string option array;
      (* originating Relax binding per instruction, for traces *)
}

type program = {
  funcs : (string * vm_func) list;
  mod_ : Relax_core.Ir_module.t;
}

type value =
  | Tensor of Base.Ndarray.t
  | Shadow of { shape : int array; dtype : Base.Dtype.t }
  | Storage_val of { id : int; bytes : int }
  | Shape_val of int array
  | Tuple_val of value list
  | Unit_val

type mode = [ `Numeric | `Timed of Device.t ]

type stats = {
  mutable elapsed_us : float;
  mutable kernel_launches : int;
  mutable lib_calls : int;
  mutable collective_calls : int;
  mutable graph_replays : int;
}

exception Vm_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Vm_error s)) fmt

type t = {
  mode : mode;
  program : program;
  alloc : Allocator.t;
  st : stats;
  trace : Trace.sink option;
  fault : Fault.t option;
  captured : (int, unit) Hashtbl.t;
  cost_cache : (string, Tir.Cost.t) Hashtbl.t;
  kernel_cache : Tir.Exec.Cache.t;
      (* (kernel name, backend-prefixed shape signature) -> compiled
         kernels: a decode loop compiles each kernel once and replays
         thereafter. The backend (interp/closure/imp) is fixed at VM
         creation; the imp backend elides bounds checks for kernels
         Analysis.Tir_safety proves memory-safe. *)
  storage_cache : (string * int, int * int) Hashtbl.t;
      (* (func, pc) -> (bytes, allocator id): planned storages are
         allocated once and reused across invocations *)
}

let create ?allocator ?trace ?fault ?(backend = Tir.Exec.default) mode program
    =
  let alloc =
    match allocator with Some a -> a | None -> Allocator.create `Pooling
  in
  {
    mode;
    program;
    alloc;
    st =
      {
        elapsed_us = 0.0;
        kernel_launches = 0;
        lib_calls = 0;
        collective_calls = 0;
        graph_replays = 0;
      };
    trace;
    fault;
    captured = Hashtbl.create 8;
    cost_cache = Hashtbl.create 64;
    kernel_cache = Tir.Exec.Cache.create ~prove:(Analysis.Proof.prover ()) backend;
    storage_cache = Hashtbl.create 32;
  }

let emit t ev = match t.trace with Some sink -> sink ev | None -> ()

(* Allocate and report whether the allocator recycled a pooled block. *)
let alloc_traced t kind bytes =
  let before = Allocator.alloc_count t.alloc in
  let id = Allocator.alloc t.alloc bytes in
  emit t
    (Trace.Alloc
       {
         kind;
         id;
         bytes;
         reused = Allocator.alloc_count t.alloc = before;
         live = Allocator.live_bytes t.alloc;
       });
  id

let instr_op = function
  | Match_shape _ -> "match_shape"
  | Alloc_storage _ -> "alloc_storage"
  | Alloc_tensor _ -> "alloc_tensor"
  | Kill _ -> "kill"
  | Call_kernel _ -> "call_kernel"
  | Call_extern _ -> "call_extern"
  | Call_func _ -> "call_func"
  | Call_captured _ -> "call_captured"
  | Make_tuple _ -> "make_tuple"
  | Get_tuple _ -> "get_tuple"
  | Make_shape _ -> "make_shape"
  | Cond _ -> "cond"
  | Load_const _ -> "load_const"
  | Ret _ -> "ret"

let stats t = t.st
let kernel_cache t = t.kernel_cache
let allocator t = t.alloc
let device t = match t.mode with `Timed d -> Some d | `Numeric -> None

let shadow_of_shape dtype dims =
  Shadow { shape = Array.of_list dims; dtype }

let tensor nd = Tensor nd

let value_shape = function
  | Tensor nd -> nd.Base.Ndarray.shape
  | Shadow { shape; _ } -> shape
  | Shape_val dims -> dims
  | Storage_val _ | Tuple_val _ | Unit_val ->
      fail "expected a tensor or shape value"

let value_dtype = function
  | Tensor nd -> nd.Base.Ndarray.dtype
  | Shadow { dtype; _ } -> dtype
  | Storage_val _ | Shape_val _ | Tuple_val _ | Unit_val ->
      fail "expected a tensor value"

let value_tensor = function
  | Tensor nd -> nd
  | Shadow _ -> fail "shadow tensors carry no data (timed mode)"
  | Storage_val _ | Shape_val _ | Tuple_val _ | Unit_val ->
      fail "expected a tensor value"

(* Per-invocation frame. *)
type frame = {
  regs : value option array;
  owned : int option array;  (** allocator storage owned by this register *)
  sym : (int, int) Hashtbl.t;  (** Arith var id -> runtime value *)
}

let reg frame i =
  match frame.regs.(i) with
  | Some v -> v
  | None -> fail "register %d read before write" i

let sym_lookup frame (v : Arith.Var.t) =
  match Hashtbl.find_opt frame.sym v.Arith.Var.id with
  | Some x -> x
  | None -> fail "unbound symbolic variable %s at runtime" (Arith.Var.name v)

let eval_dim frame e = Arith.Expr.eval (sym_lookup frame) e

(* Bind-or-check one declared dimension against an actual extent. *)
let match_dim t frame (declared : Arith.Expr.t) actual =
  match declared with
  | Arith.Expr.Var v -> (
      match Hashtbl.find_opt frame.sym v.Arith.Var.id with
      | Some bound ->
          if bound <> actual then
            fail "shape check failed: %s = %d but tensor has extent %d"
              (Arith.Var.name v) bound actual
          else
            emit t
              (Trace.Check_shape { expr = Arith.Var.name v; value = actual })
      | None ->
          Hashtbl.replace frame.sym v.Arith.Var.id actual;
          emit t (Trace.Bind_shape { var = Arith.Var.name v; value = actual }))
  | _ ->
      let expected = eval_dim frame declared in
      if expected <> actual then
        fail "shape check failed: expected extent %s = %d, got %d"
          (Arith.Expr.to_string declared)
          expected actual
      else
        emit t
          (Trace.Check_shape
             { expr = Arith.Expr.to_string declared; value = actual })

(* Unify a kernel's declared buffer shapes with actual argument shapes
   to recover its symbolic environment (same discipline as the TIR
   interpreter, but shape-only so it works on shadows). *)
let kernel_sym_env (kernel : Tir.Prim_func.t) (arg_shapes : int array list)
    (sym_args : (Arith.Var.t * int) list) =
  let env = Hashtbl.create 8 in
  List.iter (fun ((v : Arith.Var.t), x) -> Hashtbl.replace env v.Arith.Var.id x) sym_args;
  let deferred = ref [] in
  (try
     List.iter2
       (fun (b : Tir.Buffer.t) shape ->
         if List.length b.Tir.Buffer.shape <> Array.length shape then
           fail "kernel %s: rank mismatch on buffer %s" kernel.Tir.Prim_func.name
             b.Tir.Buffer.name;
         List.iteri
           (fun d dim ->
             match dim with
             | Arith.Expr.Var v -> (
                 match Hashtbl.find_opt env v.Arith.Var.id with
                 | Some bound ->
                     if bound <> shape.(d) then
                       fail "kernel %s: inconsistent binding of %s"
                         kernel.Tir.Prim_func.name (Arith.Var.name v)
                 | None -> Hashtbl.replace env v.Arith.Var.id shape.(d))
             | Arith.Expr.Const c ->
                 if c <> shape.(d) then
                   fail "kernel %s: buffer %s dim %d expected %d, got %d"
                     kernel.Tir.Prim_func.name b.Tir.Buffer.name d c shape.(d)
             | dim -> deferred := (dim, shape.(d)) :: !deferred)
           b.Tir.Buffer.shape)
       kernel.Tir.Prim_func.params arg_shapes
   with Invalid_argument _ ->
     fail "kernel %s: argument count mismatch" kernel.Tir.Prim_func.name);
  let lookup (v : Arith.Var.t) =
    match Hashtbl.find_opt env v.Arith.Var.id with
    | Some x -> x
    | None ->
        fail "kernel %s: symbolic variable %s not bound"
          kernel.Tir.Prim_func.name (Arith.Var.name v)
  in
  List.iter
    (fun (dim, actual) ->
      let v = Arith.Expr.eval lookup dim in
      if v <> actual then
        fail "kernel %s: dim %s = %d but argument has %d"
          kernel.Tir.Prim_func.name (Arith.Expr.to_string dim) v actual)
    !deferred;
  lookup

let kernel_cost t name kernel =
  match Hashtbl.find_opt t.cost_cache name with
  | Some c -> c
  | None ->
      let c = Tir.Cost.analyze kernel in
      Hashtbl.replace t.cost_cache name c;
      c

(* Charge simulated time for one generated-kernel launch; returns the
   microseconds charged (0 in numeric mode). *)
let charge_kernel t ~in_replay name kernel lookup dtype =
  t.st.kernel_launches <- t.st.kernel_launches + 1;
  match t.mode with
  | `Numeric -> 0.0
  | `Timed dev ->
      let cost = kernel_cost t name kernel in
      let flops = float_of_int (Arith.Expr.eval lookup cost.Tir.Cost.flops) in
      let bytes =
        float_of_int
          (Arith.Expr.eval lookup cost.Tir.Cost.bytes_read
          + Arith.Expr.eval lookup cost.Tir.Cost.bytes_written)
      in
      (* High-intensity matmul-like generated kernels re-read operands
         that a vendor library would stream once; matrix-vector shapes
         (low intensity) stream trivially and pay no penalty. *)
      let traffic_factor =
        match Tir.Pattern.kind_of kernel with
        | Tir.Pattern.Output_ewise_fusible
          when bytes > 0.0 && flops /. bytes > 12.0 ->
            dev.Device.gen_gemm_traffic
        | _ -> 1.0
      in
      let compute_us =
        flops /. (Device.peak_gflops dev dtype *. dev.Device.gen_eff *. 1e3)
      in
      let memory_us =
        bytes *. traffic_factor
        /. (dev.Device.mem_bw_gbps *. dev.Device.mem_eff *. 1e3)
      in
      let time = Float.max compute_us memory_us in
      let time =
        (* Injected device stall: this launch runs [stall_factor]x
           slower on the simulated clock. *)
        match t.fault with
        | Some inj -> (
            match Fault.device_stall inj ~site:name with
            | Some (ev, factor) ->
                emit t (Trace.Fault_injected ev);
                time *. factor
            | None -> time)
        | None -> time
      in
      let overhead = if in_replay then 0.0 else dev.Device.launch_overhead_us in
      t.st.elapsed_us <- t.st.elapsed_us +. time +. overhead;
      time +. overhead

let charge_extern t ~in_replay (impl : Library.impl) shapes dtype =
  t.st.lib_calls <- t.st.lib_calls + 1;
  match t.mode with
  | `Numeric -> 0.0
  | `Timed dev ->
      let cost = impl.Library.cost_fn shapes dtype in
      let lib_eff =
        if dev.Device.lib_gemm_eff > 0.0 then dev.Device.lib_gemm_eff else 0.3
      in
      let mem_factor = if cost.Library.small_batch then 0.7 else 1.0 in
      let compute_us =
        cost.Library.flops /. (Device.peak_gflops dev dtype *. lib_eff *. 1e3)
      in
      let memory_us =
        cost.Library.bytes
        /. (dev.Device.mem_bw_gbps *. dev.Device.mem_eff *. mem_factor *. 1e3)
      in
      let time = Float.max compute_us memory_us in
      let time =
        match t.fault with
        | Some inj -> (
            match Fault.device_stall inj ~site:impl.Library.name with
            | Some (ev, factor) ->
                emit t (Trace.Fault_injected ev);
                time *. factor
            | None -> time)
        | None -> time
      in
      let overhead = if in_replay then 0.0 else dev.Device.launch_overhead_us in
      let charged = time +. overhead in
      t.st.elapsed_us <- t.st.elapsed_us +. charged;
      charged

(* Charge a ccl.* collective from the device interconnect link model
   rather than the memory roofline: ring all-reduce moves 2(w-1)/w of
   the tensor, all-gather (w-1)/w, plus per-hop latencies
   (Device.all_reduce_us / all_gather_us).  Returns (charged, wire
   bytes). *)
let charge_collective t ~in_replay func ~world ~bytes =
  t.st.collective_calls <- t.st.collective_calls + 1;
  let op =
    if func = "ccl.all_reduce" then `All_reduce
    else if func = "ccl.all_gather" then `All_gather
    else fail "unknown collective %s" func
  in
  let wire = Device.collective_wire_bytes ~op ~world ~bytes in
  match t.mode with
  | `Numeric -> (0.0, wire)
  | `Timed dev ->
      let link = dev.Device.link in
      let time =
        match op with
        | `All_reduce -> Device.all_reduce_us link ~world ~bytes
        | `All_gather -> Device.all_gather_us link ~world ~bytes
      in
      let time =
        match t.fault with
        | Some inj -> (
            match Fault.device_stall inj ~site:func with
            | Some (ev, factor) ->
                emit t (Trace.Fault_injected ev);
                time *. factor
            | None -> time)
        | None -> time
      in
      let overhead = if in_replay then 0.0 else dev.Device.launch_overhead_us in
      let charged = time +. overhead in
      t.st.elapsed_us <- t.st.elapsed_us +. charged;
      (charged, wire)

let find_func t name =
  match List.assoc_opt name t.program.funcs with
  | Some f -> f
  | None -> fail "VM function %s not found" name

exception Return of value

let rec exec_func t ~in_replay ?(top = false) ?(overhead_us = 0.0)
    (f : vm_func) (args : value list) : value =
  if List.length args <> f.nparams then
    fail "%s: expected %d arguments, got %d" f.fname f.nparams
      (List.length args);
  let frame =
    {
      regs = Array.make f.nregs None;
      owned = Array.make f.nregs None;
      sym = Hashtbl.create 16;
    }
  in
  List.iteri (fun i v -> frame.regs.(i) <- Some v) args;
  emit t (Trace.Enter { func = f.fname; top; overhead_us });
  let step pc i =
    match t.trace with
    | None -> exec_instr t ~in_replay ~fname:f.fname ~pc ~prov:None frame i
    | Some sink ->
        let prov = if pc < Array.length f.prov then f.prov.(pc) else None in
        sink
          (Trace.Instr_begin { func = f.fname; pc; op = instr_op i; prov });
        let t0 = t.st.elapsed_us in
        exec_instr t ~in_replay ~fname:f.fname ~pc ~prov frame i;
        sink
          (Trace.Instr_end
             { func = f.fname; pc; elapsed_us = t.st.elapsed_us -. t0 })
  in
  match Array.iteri step f.instrs with
  | () -> fail "%s: function ended without Ret" f.fname
  | exception Return v ->
      (match t.trace with
      | None -> ()
      | Some sink ->
          (* Registers still owning storage at frame exit: their last
             possible use has passed (trace-only; nothing is freed). *)
          Array.iter
            (function
              | Some id ->
                  let bytes =
                    Option.value ~default:0 (Allocator.size_of t.alloc id)
                  in
                  sink (Trace.End_of_life { id; bytes })
              | None -> ())
            frame.owned;
          sink (Trace.Exit { func = f.fname }));
      v

and exec_instr t ~in_replay ~fname ~pc ~prov frame (i : instr) : unit =
  match i with
  | Match_shape { src; dims } ->
      let actual = value_shape (reg frame src) in
      if Array.length actual <> Array.length dims then
        fail "shape check failed: rank %d vs declared %d" (Array.length actual)
          (Array.length dims);
      Array.iteri (fun d declared -> match_dim t frame declared actual.(d)) dims
  | Alloc_storage { dst; bytes } ->
      (* Planned storages persist across invocations: the static plan
         allocates once; a changed symbolic size forces reallocation. *)
      let b = eval_dim frame bytes in
      let key = (fname, pc) in
      let id =
        match Hashtbl.find_opt t.storage_cache key with
        | Some (prev_bytes, prev_id) when prev_bytes = b ->
            emit t
              (Trace.Alloc
                 {
                   kind = `Storage;
                   id = prev_id;
                   bytes = b;
                   reused = true;
                   live = Allocator.live_bytes t.alloc;
                 });
            prev_id
        | Some (prev_bytes, prev_id) ->
            Allocator.free t.alloc prev_id;
            emit t
              (Trace.Free
                 {
                   id = prev_id;
                   bytes = prev_bytes;
                   live = Allocator.live_bytes t.alloc;
                 });
            let id = alloc_traced t `Storage b in
            Hashtbl.replace t.storage_cache key (b, id);
            id
        | None ->
            let id = alloc_traced t `Storage b in
            Hashtbl.replace t.storage_cache key (b, id);
            id
      in
      frame.regs.(dst) <- Some (Storage_val { id; bytes = b })
  | Alloc_tensor { dst; storage; dims; dtype } ->
      let shape = Array.map (eval_dim frame) dims in
      (match storage with
      | Some s ->
          (* Instantiate inside planned storage: check capacity. *)
          let needed =
            Array.fold_left ( * ) 1 shape * Base.Dtype.size_in_bytes dtype
          in
          (match reg frame s with
          | Storage_val { bytes; id } ->
              if needed > bytes then
                fail "tensor of %d bytes does not fit storage of %d bytes"
                  needed bytes
              else
                emit t
                  (Trace.Tensor_in_storage { storage_id = id; bytes = needed })
          | _ -> fail "Alloc_tensor: register %d is not a storage" s)
      | None ->
          let bytes =
            Array.fold_left ( * ) 1 shape * Base.Dtype.size_in_bytes dtype
          in
          frame.owned.(dst) <- Some (alloc_traced t `Tensor bytes));
      let v =
        match t.mode with
        | `Numeric -> Tensor (Base.Ndarray.create dtype shape)
        | `Timed _ -> Shadow { shape; dtype }
      in
      frame.regs.(dst) <- Some v
  | Kill regs ->
      Array.iter
        (fun r ->
          (match frame.owned.(r) with
          | Some id ->
              let bytes =
                Option.value ~default:0 (Allocator.size_of t.alloc id)
              in
              Allocator.free t.alloc id;
              emit t
                (Trace.Free { id; bytes; live = Allocator.live_bytes t.alloc })
          | None -> ());
          frame.owned.(r) <- None)
        regs
  | Call_kernel { kernel; args; sym_args } ->
      let kf =
        match Relax_core.Ir_module.find_tir t.program.mod_ kernel with
        | Some kf -> kf
        | None -> fail "kernel %s not found in module" kernel
      in
      let arg_vals = Array.to_list (Array.map (reg frame) args) in
      let shapes = List.map value_shape arg_vals in
      let sym_bindings =
        List.map2
          (fun v e -> (v, eval_dim frame e))
          kf.Tir.Prim_func.sym_params
          (Array.to_list sym_args)
      in
      let lookup = kernel_sym_env kf shapes sym_bindings in
      let dtype =
        (* Compute throughput follows the output's dtype: quantized
           kernels lead with packed integer inputs but do f16 math. *)
        match List.rev kf.Tir.Prim_func.params with
        | out :: _ -> out.Tir.Buffer.dtype
        | [] -> Base.Dtype.F32
      in
      (* Injected transient kernel failure: the launch never happens —
         no time is charged, no trace launch event is emitted — and
         the typed error surfaces to the caller's retry policy. *)
      (match t.fault with
      | Some inj -> (
          match Fault.kernel_failure inj ~site:kernel with
          | Some ev ->
              emit t (Trace.Fault_injected ev);
              raise
                (Fault.Error
                   ( Fault.Transient,
                     Printf.sprintf "injected transient failure in kernel %s"
                       kernel ))
          | None -> ())
      | None -> ());
      let charged = charge_kernel t ~in_replay kernel kf lookup dtype in
      (match t.trace with
      | Some sink ->
          let cost = kernel_cost t kernel kf in
          let flops = Arith.Expr.eval lookup cost.Tir.Cost.flops in
          let bytes_moved =
            Arith.Expr.eval lookup cost.Tir.Cost.bytes_read
            + Arith.Expr.eval lookup cost.Tir.Cost.bytes_written
          in
          sink
            (Trace.Kernel_launch
               {
                 kernel;
                 prov;
                 replay = in_replay;
                 shapes = Array.of_list shapes;
                 flops;
                 bytes_moved;
                 elapsed_us = charged;
                 backend =
                   Tir.Exec.backend_name
                     (Tir.Exec.Cache.backend t.kernel_cache);
               })
      | None -> ());
      (match t.mode with
      | `Numeric ->
          Tir.Exec.Cache.run t.kernel_cache ~sym_args:sym_bindings kf
            (List.map value_tensor arg_vals)
      | `Timed _ -> ())
  | Call_extern { func; args } ->
      let impl =
        match Library.find func with
        | Some impl -> impl
        | None -> fail "external function %s not registered" func
      in
      let arg_vals = Array.map (reg frame) args in
      let shapes = Array.map value_shape arg_vals in
      let dtype = value_dtype arg_vals.(Array.length arg_vals - 1) in
      if Library.is_collective func then begin
        (* Shard inputs x_0..x_{w-1} then output: world = nargs - 1.
           [bytes] is the full (unsharded) tensor: the output. *)
        let world = Array.length arg_vals - 1 in
        let out_shape = shapes.(Array.length shapes - 1) in
        let bytes =
          float_of_int
            (Array.fold_left ( * ) 1 out_shape * Base.Dtype.size_in_bytes dtype)
        in
        let charged, wire =
          charge_collective t ~in_replay func ~world ~bytes
        in
        match t.trace with
        | Some sink ->
            sink
              (Trace.Collective
                 {
                   op = func;
                   prov;
                   replay = in_replay;
                   world;
                   shapes;
                   bytes_wire = wire;
                   elapsed_us = charged;
                 })
        | None -> ()
      end
      else begin
        let charged = charge_extern t ~in_replay impl shapes dtype in
        match t.trace with
        | Some sink ->
            let cost = impl.Library.cost_fn shapes dtype in
            sink
              (Trace.Extern_call
                 {
                   func;
                   prov;
                   replay = in_replay;
                   shapes;
                   flops = cost.Library.flops;
                   bytes_moved = cost.Library.bytes;
                   elapsed_us = charged;
                 })
        | None -> ()
      end;
      (match t.mode with
      | `Numeric -> impl.Library.compute (Array.map value_tensor arg_vals)
      | `Timed _ -> ());
      (* Injected library corruption: the routine "succeeded" but its
         output (destination-passing: last argument) carries NaN. *)
      (match t.fault with
      | Some inj -> (
          match Fault.nan_corruption inj ~site:func with
          | Some ev ->
              emit t (Trace.Fault_injected ev);
              (match t.mode with
              | `Numeric ->
                  Library.poison
                    (value_tensor arg_vals.(Array.length arg_vals - 1))
              | `Timed _ -> ())
          | None -> ())
      | None -> ())
  | Call_func { dst; func; args } ->
      let callee = find_func t func in
      let v =
        exec_func t ~in_replay callee
          (Array.to_list (Array.map (reg frame) args))
      in
      frame.regs.(dst) <- Some v
  | Call_captured { dst; func; args; capture_id } ->
      let callee = find_func t func in
      let first = not (Hashtbl.mem t.captured capture_id) in
      let replay = not first in
      if replay then begin
        t.st.graph_replays <- t.st.graph_replays + 1;
        let overhead_us =
          match t.mode with
          | `Timed dev ->
              t.st.elapsed_us <-
                t.st.elapsed_us +. dev.Device.graph_replay_overhead_us;
              dev.Device.graph_replay_overhead_us
          | `Numeric -> 0.0
        in
        emit t (Trace.Capture_replay { capture_id; func; overhead_us })
      end
      else begin
        Hashtbl.replace t.captured capture_id ();
        emit t (Trace.Capture_begin { capture_id; func })
      end;
      let v =
        exec_func t ~in_replay:replay callee
          (Array.to_list (Array.map (reg frame) args))
      in
      frame.regs.(dst) <- Some v
  | Make_tuple { dst; srcs } ->
      frame.regs.(dst) <-
        Some (Tuple_val (Array.to_list (Array.map (reg frame) srcs)))
  | Get_tuple { dst; src; index } -> (
      match reg frame src with
      | Tuple_val vs -> (
          match List.nth_opt vs index with
          | Some v -> frame.regs.(dst) <- Some v
          | None -> fail "tuple index %d out of bounds" index)
      | _ -> fail "Get_tuple on non-tuple register %d" src)
  | Make_shape { dst; dims } ->
      frame.regs.(dst) <- Some (Shape_val (Array.map (eval_dim frame) dims))
  | Cond { cond; then_code; then_reg; else_code; else_reg; dst } ->
      let truthy =
        match reg frame cond with
        | Tensor nd ->
            Base.Ndarray.numel nd > 0 && Base.Ndarray.get_flat_float nd 0 <> 0.0
        | Shape_val [| x |] -> x <> 0
        | Shape_val _ -> true
        | Shadow _ -> true (* timed mode: branch statically *)
        | Storage_val _ | Tuple_val _ | Unit_val ->
            fail "Cond: register %d is not a scalar condition" cond
      in
      let code, res = if truthy then (then_code, then_reg) else (else_code, else_reg) in
      Array.iteri
        (fun pc i ->
          exec_instr t ~in_replay ~fname ~pc:(-pc - 1) ~prov:None frame i)
        code;
      frame.regs.(dst) <- Some (reg frame res)
  | Load_const { dst; tensor } ->
      let v =
        match t.mode with
        | `Numeric -> Tensor tensor
        | `Timed _ ->
            Shadow
              { shape = tensor.Base.Ndarray.shape;
                dtype = tensor.Base.Ndarray.dtype }
      in
      frame.regs.(dst) <- Some v
  | Ret r -> raise (Return (reg frame r))

let run t name args =
  let f = find_func t name in
  let overhead_us =
    match t.mode with
    | `Timed dev ->
        t.st.elapsed_us <- t.st.elapsed_us +. dev.Device.step_overhead_us;
        dev.Device.step_overhead_us
    | `Numeric -> 0.0
  in
  exec_func t ~in_replay:false ~top:true ~overhead_us f args
