(** Symbolic cost analysis of tensor programs.

    Produces the quantities the device performance model consumes:
    arithmetic work and global-memory traffic, both as symbolic
    expressions over the program's shape variables. Traffic per buffer
    is the smaller of its footprint (ideal on-chip reuse — the regime
    that makes LLM decode bandwidth-bound in the paper's evaluation)
    and the executed access count (the gather/copy regime, where a
    kernel touches far less than the whole buffer).

    Shared/local scratch buffers do not count toward global traffic:
    this is exactly the benefit FuseTensorIR obtains by demoting
    intermediates into fused kernels. *)

type t = {
  flops : Arith.Expr.t;  (** arithmetic ops over the full loop nest *)
  bytes_read : Arith.Expr.t;  (** global footprint loaded *)
  bytes_written : Arith.Expr.t;  (** global footprint stored *)
  transcendentals : Arith.Expr.t;
      (** transcendental library calls (exp, log, tanh, pow, ...) over
          the full loop nest — a subset of [flops], charged at a
          higher per-op rate by {!est_imp_ns} *)
}

val analyze : Prim_func.t -> t

val total_bytes : t -> Arith.Expr.t

val eval :
  (Arith.Var.t -> int) -> t -> flops:int ref -> bytes:int ref -> unit
(** Evaluate and accumulate into the two counters. *)

val est_imp_ns : Prim_func.t -> (Arith.Var.t -> int) -> float
(** Estimated execution time (nanoseconds) of the program on the imp
    register-machine backend for the given shape assignment. The model
    mirrors how {!Imp_compile} lowers each loop: an innermost
    single-store loop fuses into a native trip loop — priced at the
    reduction rate when the store accumulates into itself (matmul's
    FMA loop) and at the slightly higher streaming-map rate otherwise
    — while statements outside fusable loops pay per-instruction
    dispatch; transcendental calls carry a flat surcharge either way.
    Calibrated against BENCH_kernels.json so {!Schedule.auto_schedule}
    rankings agree with measured imp-backend times; only the relative
    ordering of estimates is meaningful. *)
