(** Compile tensor programs to cached OCaml closures (the numeric hot
    path).

    {!Interp} executes a prim func by walking the AST per tensor
    element with boxed values and hashtable variable lookups. This
    module instead translates the body once per (kernel, shape
    signature) into nested closures: symbolic shape variables become
    compile-time constants, loop variables live in a flat mutable
    [int array], and buffer accesses become precomputed-stride flat
    indexing on raw [float array]/[int array] storage with arithmetic
    dispatched on int/float kind at compile time.

    The VM's numeric mode, the eager baseline and constant folding all
    execute kernels through this module; {!Interp} remains the
    reference semantics, and test/test_compile.ml differential-tests
    the two paths for bit-identical outputs over every registered
    kernel and schedule-transformed variants. *)

type compiled = Base.Ndarray.t list -> unit
(** A bound kernel: call with arguments whose shapes match the
    signature it was compiled for (outputs mutated in place, as with
    {!Interp.run}). *)

val compile :
  ?sym_args:(Arith.Var.t * int) list ->
  Prim_func.t ->
  int array list ->
  compiled
(** [compile f arg_shapes] specializes [f] to the given concrete
    argument shapes. Symbolic variables are bound by unifying declared
    parameter shapes with [arg_shapes] (plus explicit [sym_args]),
    exactly as {!Interp.run} does.
    @raise Interp.Runtime_error on rank/shape inconsistencies or
    ill-kinded expressions (e.g. a float used as an index). *)

val run :
  ?sym_args:(Arith.Var.t * int) list ->
  Prim_func.t ->
  Base.Ndarray.t list ->
  unit
(** Compile-and-execute once (drop-in replacement for
    {!Interp.run}). Use {!Cache.run} on repeated execution paths. *)

val unify_shapes : (int, int) Hashtbl.t -> Prim_func.t -> int array list -> unit
(** Bind symbolic shape variables (var id -> concrete value) by
    unifying declared parameter shapes against concrete argument
    shapes, failing on any inconsistency. Shared with {!Imp_compile}
    so both backends resolve signatures identically.
    @raise Interp.Runtime_error on rank or dimension mismatch. *)

(** Memoizes compiled kernels by (kernel name, shape signature,
    symbolic arguments). Entries are validated by physical identity of
    the prim func, so a same-named but rebuilt kernel recompiles
    rather than reusing stale code. *)
module Cache : sig
  type t

  val create : unit -> t

  val run :
    t ->
    ?sym_args:(Arith.Var.t * int) list ->
    Prim_func.t ->
    Base.Ndarray.t list ->
    unit
  (** Execute through the cache: compile on first sight of a
      (kernel, shape signature), replay the stored closure after. *)

  val hits : t -> int
  val misses : t -> int

  val compiled_count : t -> int
  (** Number of distinct (kernel, shape signature) entries compiled. *)
end
