type t = {
  flops : Arith.Expr.t;
  bytes_read : Arith.Expr.t;
  bytes_written : Arith.Expr.t;
  transcendentals : Arith.Expr.t;
}

(* Arithmetic work: per-expression op counts of each store/evaluate,
   multiplied by the extents of enclosing loops. Both branches of an
   [If] are counted — a small overestimate for init guards, dominated
   by the loop body. Parameterized over the per-expression counter so
   flops and transcendental-call counts share one walk structure. *)
let rec ops_of_stmt count (s : Stmt.t) : Arith.Expr.t =
  match s with
  | Stmt.Seq ss ->
      List.fold_left
        (fun acc s -> Arith.Expr.add acc (ops_of_stmt count s))
        (Arith.Expr.const 0) ss
  | Stmt.For { extent; body; _ } ->
      Arith.Expr.mul extent (ops_of_stmt count body)
  | Stmt.Store (_, idxs, v) ->
      Arith.Expr.const
        (count v + List.fold_left (fun acc i -> acc + count i) 0 idxs)
  | Stmt.If (c, t, e) ->
      Arith.Expr.add
        (Arith.Expr.const (count c))
        (Arith.Expr.add (ops_of_stmt count t)
           (match e with
           | Some e -> ops_of_stmt count e
           | None -> Arith.Expr.const 0))
  | Stmt.Alloc (_, body) -> ops_of_stmt count body
  | Stmt.Assert _ -> Arith.Expr.const 0
  | Stmt.Evaluate e -> Arith.Expr.const (count e)

let flops_of_stmt = ops_of_stmt Texpr.count_flops

(* Transcendental library calls (exp, log, tanh, ... and pow): an
   order of magnitude slower than an add or multiply in the fused imp
   loops, so the time model charges them separately. Sqrt/rsqrt/abs
   are hardware-cheap and excluded. *)
let rec count_transcendentals (e : Texpr.t) : int =
  match e with
  | Texpr.Imm_int _ | Texpr.Imm_float _ | Texpr.Idx _ -> 0
  | Texpr.Load (_, idxs) ->
      List.fold_left (fun acc i -> acc + count_transcendentals i) 0 idxs
  | Texpr.Binop (op, a, b) ->
      (match op with Texpr.Pow -> 1 | _ -> 0)
      + count_transcendentals a + count_transcendentals b
  | Texpr.Unop (op, a) ->
      (match op with
      | Texpr.Exp | Texpr.Log | Texpr.Tanh | Texpr.Sigmoid | Texpr.Erf
      | Texpr.Cos | Texpr.Sin ->
          1
      | Texpr.Neg | Texpr.Abs | Texpr.Not | Texpr.Sqrt | Texpr.Rsqrt -> 0)
      + count_transcendentals a
  | Texpr.Cast (_, a) -> count_transcendentals a
  | Texpr.Select (c, a, b) ->
      count_transcendentals c + count_transcendentals a
      + count_transcendentals b

let trans_of_stmt = ops_of_stmt count_transcendentals

let is_global (b : Buffer.t) =
  match b.Buffer.scope with
  | Buffer.Global -> true
  | Buffer.Shared | Buffer.Local -> false

(* Global-memory traffic per buffer: the smaller of its footprint
   (ideal on-chip reuse — the matmul/attention regime) and the number
   of accesses actually executed (the gather/copy regime, where a
   kernel touches far less than the whole buffer, e.g. an embedding
   lookup into a large table). *)
let accumulate add_access stmt =
  let rec walk mult (s : Stmt.t) =
    match s with
    | Stmt.Seq ss -> List.iter (walk mult) ss
    | Stmt.For { extent; body; _ } -> walk (Arith.Expr.mul mult extent) body
    | Stmt.Store (b, idxs, v) ->
        add_access `Write b mult;
        List.iter
          (fun (lb, _) -> add_access `Read lb mult)
          (List.concat_map Texpr.loads idxs @ Texpr.loads v)
    | Stmt.If (c, t, e) ->
        List.iter (fun (lb, _) -> add_access `Read lb mult) (Texpr.loads c);
        walk mult t;
        (match e with Some e -> walk mult e | None -> ())
    | Stmt.Alloc (_, body) -> walk mult body
    | Stmt.Assert (c, _) ->
        List.iter (fun (lb, _) -> add_access `Read lb mult) (Texpr.loads c)
    | Stmt.Evaluate e ->
        List.iter (fun (lb, _) -> add_access `Read lb mult) (Texpr.loads e)
  in
  walk (Arith.Expr.const 1) stmt

let analyze (f : Prim_func.t) : t =
  let body = f.Prim_func.body in
  let reads : (int, Buffer.t * Arith.Expr.t) Hashtbl.t = Hashtbl.create 8 in
  let writes : (int, Buffer.t * Arith.Expr.t) Hashtbl.t = Hashtbl.create 8 in
  let add_access kind (b : Buffer.t) mult =
    if is_global b then begin
      let table = match kind with `Read -> reads | `Write -> writes in
      let prev =
        match Hashtbl.find_opt table b.Buffer.id with
        | Some (_, e) -> e
        | None -> Arith.Expr.const 0
      in
      Hashtbl.replace table b.Buffer.id (b, Arith.Expr.add prev mult)
    end
  in
  accumulate add_access body;
  let traffic table =
    Hashtbl.fold
      (fun _ ((b : Buffer.t), accesses) acc ->
        let elem = Arith.Expr.const (Base.Dtype.size_in_bytes b.Buffer.dtype) in
        let by_access = Arith.Expr.mul accesses elem in
        Arith.Expr.add acc (Arith.Expr.min_ (Buffer.size_in_bytes b) by_access))
      table (Arith.Expr.const 0)
  in
  {
    flops = Arith.Simplify.simplify (flops_of_stmt body);
    bytes_read = Arith.Simplify.simplify (traffic reads);
    bytes_written = Arith.Simplify.simplify (traffic writes);
    transcendentals = Arith.Simplify.simplify (trans_of_stmt body);
  }

let total_bytes t = Arith.Expr.add t.bytes_read t.bytes_written

(* Per-flop costs of the imp backend's loop forms, calibrated against
   BENCH_kernels.json on the development machine. The discriminator is
   the same one {!Imp_compile} uses: an innermost loop whose body is a
   single store fuses into a native trip loop — cheapest when it is a
   reduction (the accumulator lives in a register, matmul's hot loop),
   a little more per element for streaming maps (a load/store pair per
   element) — while any other statement pays per-instruction
   register-machine dispatch. Transcendental library calls carry a
   flat surcharge regardless of loop shape. The absolute numbers only
   need to be right relative to each other: schedule rankings compare
   estimates against estimates. *)
let imp_reduction_ns_per_flop = 1.2
let imp_map_ns_per_flop = 1.5
let imp_dispatch_ns_per_flop = 3.0
let imp_transcendental_ns = 8.0

let est_imp_ns (f : Prim_func.t) lookup : float =
  let ev e = float_of_int (Arith.Expr.eval lookup e) in
  let rec single_store = function
    | Stmt.Store (b, idxs, v) -> Some (b, idxs, v)
    | Stmt.Seq [ s ] -> single_store s
    | _ -> None
  in
  let store_cost ~fused (b : Buffer.t) idxs v =
    let flops =
      float_of_int
        (Texpr.count_flops v
        + List.fold_left (fun acc i -> acc + Texpr.count_flops i) 0 idxs)
    in
    let trans = float_of_int (count_transcendentals v) in
    let self_load =
      List.exists
        (fun ((b' : Buffer.t), li) -> b'.Buffer.id = b.Buffer.id && li = idxs)
        (Texpr.loads v)
    in
    let rate =
      if not fused then imp_dispatch_ns_per_flop
      else if self_load then imp_reduction_ns_per_flop
      else imp_map_ns_per_flop
    in
    (* a data-movement store (zero flops) still costs one element step *)
    let units = Float.max flops 1.0 in
    ((units -. trans) *. rate) +. (trans *. imp_transcendental_ns)
  in
  let rec walk mult (s : Stmt.t) : float =
    match s with
    | Stmt.Seq ss -> List.fold_left (fun acc s -> acc +. walk mult s) 0.0 ss
    | Stmt.For { extent; body; _ } -> (
        let n = Float.max (ev extent) 0.0 in
        match single_store body with
        | Some (b, idxs, v) -> mult *. n *. store_cost ~fused:true b idxs v
        | None -> walk (mult *. n) body)
    | Stmt.Store (b, idxs, v) -> mult *. store_cost ~fused:false b idxs v
    | Stmt.If (c, t, e) ->
        (mult *. float_of_int (Texpr.count_flops c)
        *. imp_dispatch_ns_per_flop)
        +. walk mult t
        +. (match e with Some e -> walk mult e | None -> 0.0)
    | Stmt.Alloc (_, body) -> walk mult body
    | Stmt.Assert _ -> 0.0
    | Stmt.Evaluate e ->
        mult
        *. float_of_int (Texpr.count_flops e)
        *. imp_dispatch_ns_per_flop
  in
  walk 1.0 f.Prim_func.body

let eval lookup t ~flops ~bytes =
  flops := !flops + Arith.Expr.eval lookup t.flops;
  bytes :=
    !bytes
    + Arith.Expr.eval lookup t.bytes_read
    + Arith.Expr.eval lookup t.bytes_written
