(* Kernel execution backends and the backend-aware kernel cache.

   Three ways to execute a prim func, all bit-identical on valid
   programs (differential-tested in test/test_compile.ml):

   - [Interp]: the reference tree-walking interpreter (no caching
     benefit beyond skipping re-unification; kept for semantics);
   - [Closure]: {!Compile}'s nested-closure backend;
   - [Imp]: {!Imp_compile}'s flat imperative register machine, the
     default. When a [prove] callback is installed (the VM injects
     [Analysis.Proof.prover], keeping this library independent of the
     analysis layer) and it vouches for a kernel, the imp backend
     elides runtime bounds checks (DESIGN.md §12).

   The cache is keyed by kernel name + backend-prefixed shape
   signature, so caches of different backends never alias — a
   [--backend] switch can never replay code compiled for another
   backend (test/test_compile.ml:backend cache keying). *)

type backend = Interp | Closure | Imp

let default = Imp
let all = [ Interp; Closure; Imp ]

let backend_name = function
  | Interp -> "interp"
  | Closure -> "closure"
  | Imp -> "imp"

let backend_of_string = function
  | "interp" -> Some Interp
  | "closure" -> Some Closure
  | "imp" -> Some Imp
  | _ -> None

module Cache = struct
  type runner = Base.Ndarray.t list -> unit

  type entry = {
    func : Prim_func.t;
    elide : bool;  (* Imp only: bounds checks elided for this kernel *)
    table : (string, runner) Hashtbl.t;
  }

  type t = {
    backend : backend;
    prove : Prim_func.t -> bool;
    entries : (string, entry) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let no_proof _ = false

  let create ?(prove = no_proof) backend =
    { backend; prove; entries = Hashtbl.create 32; hits = 0; misses = 0 }

  let backend t = t.backend
  let hits t = t.hits
  let misses t = t.misses

  let compiled_count t =
    Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.table) t.entries 0

  let elision_of t name =
    Option.map (fun e -> e.elide) (Hashtbl.find_opt t.entries name)

  (* Same shape-signature format as {!Compile.Cache}, prefixed with
     the backend so keys from different backends never collide. *)
  let sig_key backend (shapes : int array list)
      (sym_args : (Arith.Var.t * int) list) =
    let b = Stdlib.Buffer.create 32 in
    Stdlib.Buffer.add_string b (backend_name backend);
    Stdlib.Buffer.add_char b ':';
    List.iter
      (fun s ->
        Stdlib.Buffer.add_char b '[';
        Array.iter
          (fun d ->
            Stdlib.Buffer.add_string b (string_of_int d);
            Stdlib.Buffer.add_char b 'x')
          s;
        Stdlib.Buffer.add_char b ']')
      shapes;
    List.iter
      (fun (_, x) ->
        Stdlib.Buffer.add_char b '/';
        Stdlib.Buffer.add_string b (string_of_int x))
      sym_args;
    Stdlib.Buffer.contents b

  let compile_for t (e : entry) ~sym_args shapes : runner =
    match t.backend with
    | Interp -> fun args -> Interp.run ~sym_args e.func args
    | Closure -> Compile.compile ~sym_args e.func shapes
    | Imp -> Imp_compile.compile ~sym_args ~elide_bounds:e.elide e.func shapes

  let run t ?(sym_args = []) (f : Prim_func.t) (args : Base.Ndarray.t list) =
    let shapes = List.map (fun nd -> nd.Base.Ndarray.shape) args in
    let entry =
      (* Keyed by name, validated by physical identity, like
         {!Compile.Cache}: a rebuilt same-named kernel recompiles (and
         re-proves) rather than reusing stale code. *)
      match Hashtbl.find_opt t.entries f.Prim_func.name with
      | Some e when e.func == f -> e
      | Some _ | None ->
          let elide = t.backend = Imp && t.prove f in
          let e = { func = f; elide; table = Hashtbl.create 4 } in
          Hashtbl.replace t.entries f.Prim_func.name e;
          e
    in
    let key = sig_key t.backend shapes sym_args in
    let runner =
      match Hashtbl.find_opt entry.table key with
      | Some r ->
          t.hits <- t.hits + 1;
          r
      | None ->
          t.misses <- t.misses + 1;
          let r = compile_for t entry ~sym_args shapes in
          Hashtbl.replace entry.table key r;
          r
    in
    runner args
end
