exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type value = I of int | F of float

let to_f = function F x -> x | I x -> float_of_int x
let to_i = function
  | I x -> x
  | F x -> fail "expected an integer value, got float %g" x

let truth = function I 0 -> false | I _ -> true | F x -> x <> 0.0

let erf x =
  (* Abramowitz & Stegun 7.1.26; max abs error 1.5e-7. *)
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = abs_float x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429 in
  let poly = ((((a5 *. t) +. a4) *. t +. a3) *. t +. a2) *. t +. a1 in
  sign *. (1.0 -. (poly *. t *. exp (-.(x *. x))))

(* A single mutable environment threaded through execution. *)
type env = {
  vars : (int, int) Hashtbl.t; (* Arith var id -> value *)
  bufs : (int, Base.Ndarray.t) Hashtbl.t; (* Buffer id -> storage *)
}

let var_value env (v : Arith.Var.t) =
  match Hashtbl.find_opt env.vars v.Arith.Var.id with
  | Some x -> x
  | None -> fail "unbound symbolic variable %s" (Arith.Var.name v)

let eval_arith env e = Arith.Expr.eval (var_value env) e

let buffer_of env (b : Buffer.t) =
  match Hashtbl.find_opt env.bufs b.Buffer.id with
  | Some nd -> nd
  | None -> fail "unbound buffer %s" b.Buffer.name

let rec eval_expr env (e : Texpr.t) : value =
  match e with
  | Texpr.Imm_int c -> I c
  | Texpr.Imm_float x -> F x
  | Texpr.Idx ie -> I (eval_arith env ie)
  | Texpr.Load (b, idxs) ->
      let nd = buffer_of env b in
      let idx = Array.of_list (List.map (fun i -> to_i (eval_expr env i)) idxs) in
      if Base.Dtype.is_float b.Buffer.dtype then F (Base.Ndarray.get_float nd idx)
      else I (Base.Ndarray.get_int nd idx)
  | Texpr.Binop (op, a, b) -> eval_binop env op a b
  | Texpr.Unop (op, a) -> eval_unop op (eval_expr env a)
  | Texpr.Cast (dt, a) -> (
      let v = eval_expr env a in
      if Base.Dtype.is_float dt then F (to_f v)
      else
        match v with I x -> I x | F x -> I (int_of_float x))
  | Texpr.Select (c, a, b) ->
      if truth (eval_expr env c) then eval_expr env a else eval_expr env b

and eval_binop env op ea eb =
  let a = eval_expr env ea and b = eval_expr env eb in
  let bool_ x = I (if x then 1 else 0) in
  match (op, a, b) with
  | Texpr.Add, I x, I y -> I (x + y)
  | Texpr.Add, _, _ -> F (to_f a +. to_f b)
  | Texpr.Sub, I x, I y -> I (x - y)
  | Texpr.Sub, _, _ -> F (to_f a -. to_f b)
  | Texpr.Mul, I x, I y -> I (x * y)
  | Texpr.Mul, _, _ -> F (to_f a *. to_f b)
  | Texpr.Div, I x, I y ->
      if y = 0 then fail "integer division by zero" else I (x / y)
  | Texpr.Div, _, _ -> F (to_f a /. to_f b)
  | Texpr.Floor_div, I x, I y ->
      if y = 0 then fail "floordiv by zero" else I (Arith.Expr.fdiv x y)
  | Texpr.Floor_div, _, _ -> F (floor (to_f a /. to_f b))
  | Texpr.Floor_mod, I x, I y ->
      if y = 0 then fail "floormod by zero" else I (Arith.Expr.fmod x y)
  | Texpr.Floor_mod, _, _ -> F (Float.rem (to_f a) (to_f b))
  | Texpr.Min, I x, I y -> I (min x y)
  | Texpr.Min, _, _ -> F (Float.min (to_f a) (to_f b))
  | Texpr.Max, I x, I y -> I (max x y)
  | Texpr.Max, _, _ -> F (Float.max (to_f a) (to_f b))
  | Texpr.Pow, _, _ -> F (Float.pow (to_f a) (to_f b))
  | Texpr.Bit_and, _, _ -> I (to_i a land to_i b)
  | Texpr.Bit_or, _, _ -> I (to_i a lor to_i b)
  | Texpr.Bit_xor, _, _ -> I (to_i a lxor to_i b)
  | Texpr.Shift_left, _, _ -> I (to_i a lsl to_i b)
  | Texpr.Shift_right, _, _ -> I (to_i a asr to_i b)
  | Texpr.Eq, I x, I y -> bool_ (x = y)
  | Texpr.Eq, _, _ -> bool_ (to_f a = to_f b)
  | Texpr.Ne, I x, I y -> bool_ (x <> y)
  | Texpr.Ne, _, _ -> bool_ (to_f a <> to_f b)
  | Texpr.Lt, I x, I y -> bool_ (x < y)
  | Texpr.Lt, _, _ -> bool_ (to_f a < to_f b)
  | Texpr.Le, I x, I y -> bool_ (x <= y)
  | Texpr.Le, _, _ -> bool_ (to_f a <= to_f b)
  | Texpr.Gt, I x, I y -> bool_ (x > y)
  | Texpr.Gt, _, _ -> bool_ (to_f a > to_f b)
  | Texpr.Ge, I x, I y -> bool_ (x >= y)
  | Texpr.Ge, _, _ -> bool_ (to_f a >= to_f b)
  | Texpr.And, _, _ -> bool_ (truth a && truth b)
  | Texpr.Or, _, _ -> bool_ (truth a || truth b)

and eval_unop op v =
  match op with
  | Texpr.Neg -> ( match v with I x -> I (-x) | F x -> F (-.x))
  | Texpr.Exp -> F (exp (to_f v))
  | Texpr.Log -> F (log (to_f v))
  | Texpr.Sqrt -> F (sqrt (to_f v))
  | Texpr.Rsqrt -> F (1.0 /. sqrt (to_f v))
  | Texpr.Tanh -> F (tanh (to_f v))
  | Texpr.Sigmoid -> F (1.0 /. (1.0 +. exp (-.to_f v)))
  | Texpr.Erf -> F (erf (to_f v))
  | Texpr.Abs -> ( match v with I x -> I (abs x) | F x -> F (abs_float x))
  | Texpr.Not -> I (if truth v then 0 else 1)
  | Texpr.Cos -> F (cos (to_f v))
  | Texpr.Sin -> F (sin (to_f v))

let rec exec env (s : Stmt.t) =
  match s with
  | Stmt.Seq ss -> List.iter (exec env) ss
  | Stmt.For { var; extent; kind = _; body } ->
      let n = eval_arith env extent in
      for i = 0 to n - 1 do
        Hashtbl.replace env.vars var.Arith.Var.id i;
        exec env body
      done;
      Hashtbl.remove env.vars var.Arith.Var.id
  | Stmt.Store (b, idxs, v) ->
      let nd = buffer_of env b in
      let idx = Array.of_list (List.map (fun i -> to_i (eval_expr env i)) idxs) in
      let value = eval_expr env v in
      if Base.Dtype.is_float b.Buffer.dtype then
        Base.Ndarray.set_float nd idx (to_f value)
      else Base.Ndarray.set_int nd idx (to_i value)
  | Stmt.If (c, t, e) ->
      if truth (eval_expr env c) then exec env t
      else ( match e with Some e -> exec env e | None -> ())
  | Stmt.Alloc (b, body) ->
      let shape =
        Array.of_list (List.map (eval_arith env) b.Buffer.shape)
      in
      Hashtbl.replace env.bufs b.Buffer.id
        (Base.Ndarray.create b.Buffer.dtype shape);
      exec env body;
      Hashtbl.remove env.bufs b.Buffer.id
  | Stmt.Assert (c, msg) ->
      if not (truth (eval_expr env c)) then fail "assertion failed: %s" msg
  | Stmt.Evaluate e -> ignore (eval_expr env e)

let eval_shape lookup dims =
  Array.of_list (List.map (Arith.Expr.eval lookup) dims)

(* Bind symbolic variables by unifying declared parameter shapes with
   actual argument shapes; check non-variable dims once bound. *)
let unify_shapes env (f : Prim_func.t) args =
  let deferred = ref [] in
  List.iter2
    (fun (b : Buffer.t) (nd : Base.Ndarray.t) ->
      let declared = b.Buffer.shape in
      let actual = nd.Base.Ndarray.shape in
      if List.length declared <> Array.length actual then
        fail "%s: buffer %s rank mismatch (declared %d, got %d)"
          f.Prim_func.name b.Buffer.name (List.length declared)
          (Array.length actual);
      List.iteri
        (fun d dim ->
          match dim with
          | Arith.Expr.Const c ->
              if c <> actual.(d) then
                fail "%s: buffer %s dim %d mismatch (declared %d, got %d)"
                  f.Prim_func.name b.Buffer.name d c actual.(d)
          | Arith.Expr.Var v -> (
              match Hashtbl.find_opt env.vars v.Arith.Var.id with
              | Some bound ->
                  if bound <> actual.(d) then
                    fail
                      "%s: symbolic variable %s bound inconsistently (%d vs %d)"
                      f.Prim_func.name (Arith.Var.name v) bound actual.(d)
              | None -> Hashtbl.replace env.vars v.Arith.Var.id actual.(d))
          | Arith.Expr.Add _ | Arith.Expr.Sub _ | Arith.Expr.Mul _
          | Arith.Expr.Floor_div _ | Arith.Expr.Floor_mod _ | Arith.Expr.Min _
          | Arith.Expr.Max _ ->
              deferred := (b.Buffer.name, d, dim, actual.(d)) :: !deferred)
        declared)
    f.Prim_func.params args;
  List.iter
    (fun (bname, d, dim, actual) ->
      let v = eval_arith env dim in
      if v <> actual then
        fail "%s: buffer %s dim %d: %s = %d but argument has %d"
          f.Prim_func.name bname d (Arith.Expr.to_string dim) v actual)
    !deferred

let run ?(sym_args = []) (f : Prim_func.t) args =
  if List.length args <> List.length f.Prim_func.params then
    fail "%s: expected %d buffer arguments, got %d" f.Prim_func.name
      (List.length f.Prim_func.params)
      (List.length args);
  let env = { vars = Hashtbl.create 16; bufs = Hashtbl.create 16 } in
  List.iter
    (fun (v, x) -> Hashtbl.replace env.vars v.Arith.Var.id x)
    sym_args;
  unify_shapes env f args;
  List.iter2
    (fun (b : Buffer.t) nd -> Hashtbl.replace env.bufs b.Buffer.id nd)
    f.Prim_func.params args;
  exec env f.Prim_func.body
