(* Flat imperative IR ("Imp") and its register-machine evaluator.

   The closure backend ({!Compile}) pays one OCaml closure call per AST
   node per element. This IR removes that dispatch: a kernel lowers
   (see {!Imp_compile}) to a single flat [instr array] executed by a
   program-counter loop over unboxed int/float register files, with
   buffer accesses as flat offsets into the raw storage arrays.

   Design notes:
   - Registers are indices into two flat arrays ([int array] /
     [float array]) owned by the compiled kernel and reused across
     calls; the lowering is SSA-like (each value register is written
     before any read), so no clearing between runs is needed.
   - Loads and stores come in checked and unsafe variants. The checked
     forms use OCaml's bounds-checked array access; the unsafe forms
     ([Array.unsafe_get]/[unsafe_set]) are emitted only when
     {!Analysis.Tir_safety} proved every access of the kernel
     in-bounds (see the proof-elision contract in DESIGN.md §12).
   - [Fma] is fused at the *dispatch* level only: it computes
     [acc +. (a *. b)] with two IEEE roundings, exactly like the
     interpreter and the closure backend, so all three backends stay
     bit-identical.
   - Jump targets are absolute instruction indices. {!Imp_compile}
     emits symbolic label ids and resolves them when flattening. *)

(* Integer binary ops. Division/modulo keep the two failure behaviors
   of the existing backends: [Div]/[Fdiv]/[Fmod] are the Texpr-level
   ops raising {!Interp.Runtime_error} on a zero divisor, while
   [Fdivx]/[Fmodx] are the Arith-index-level ops raising
   [Division_by_zero] (what {!Arith.Expr.eval} and the closure
   backend's index path do). *)
type ibin =
  | Add
  | Sub
  | Mul
  | Div  (** truncating; fails "integer division by zero" *)
  | Fdiv  (** floor division; fails "floordiv by zero" *)
  | Fmod  (** floor modulo; fails "floormod by zero" *)
  | Fdivx  (** floor division; raises [Division_by_zero] *)
  | Fmodx  (** floor modulo; raises [Division_by_zero] *)
  | Min
  | Max
  | And_
  | Or_
  | Xor
  | Shl
  | Shr  (** arithmetic shift right, matching the interpreter's [asr] *)

type icmp = Eq | Ne | Lt | Le | Gt | Ge

type fbin = FAdd | FSub | FMul | FDiv | FRem | FMin | FMax | FPow

type funop =
  | FNeg
  | FExp
  | FLog
  | FSqrt
  | FRsqrt
  | FTanh
  | FSigmoid
  | FErf
  | FAbs
  | FCos
  | FSin
  | FFloor  (** used to build float floor-division as [floor (a /. b)] *)

(* A strided element stream for fused loops: element [i] lives at flat
   offset [iregs.(sbase) + i * sstride] of float buffer [sbuf]. The
   base register is loop-invariant address arithmetic hoisted by
   {!Imp_compile}; the stride is a per-signature constant. *)
type stream = { sbuf : int; sbase : int; sstride : int }

(* A float operand of a fused map loop: either a loop-invariant
   register or a strided stream. *)
type fsrc = Sreg of int | Sstream of stream

(* Fused innermost-loop forms ("superinstructions"). Per-element
   instruction dispatch costs more than the arithmetic it drives, so
   the lowering pattern-matches the innermost loops the kernel zoo
   and the scheduler actually emit — strided reductions and streaming
   maps — into single instructions whose trip loop runs natively.
   Each form performs exactly the per-element operations (same
   association, same rounding order) as the generic lowering, so
   bit-identity with the interpreter and closure backends is
   preserved. Loops that match no form take the generic unrolled
   path. *)
type floop_op =
  | Lsum of stream  (** acc <- acc +. s[i] *)
  | Lmax of stream  (** acc <- Float.max acc s[i] *)
  | Lmin of stream  (** acc <- Float.min acc s[i] *)
  | Ldot of stream * stream  (** acc <- acc +. (a[i] *. b[i]) *)
  | Lsum_exp_sub of stream * int
      (** acc <- acc +. exp (s[i] -. fregs.(c)): softmax denominators *)
  | Lsum_sq_sub of stream * int
      (** acc <- acc +. ((s[i] -. c) *. (s[i] -. c)): variance passes *)
  | Lmap_copy of { src : fsrc; dst : stream }
  | Lmap_unop of { op : funop; src : stream; dst : stream }
  | Lmap_bin of { op : fbin; a : fsrc; b : fsrc; dst : stream }
  | Lmap_exp_sub_div of { src : stream; c1 : int; c2 : int; dst : stream }
      (** dst[i] = exp (src[i] -. c1) /. c2: softmax normalize *)
  | Lmap_norm of { src : stream; c1 : int; c2 : int; g : stream; b : stream; dst : stream }
      (** dst[i] = ((src[i] -. c1) *. c2 *. g[i]) +. b[i]: layer_norm *)

type instr =
  (* integer registers *)
  | Iconst of { dst : int; v : int }
  | Imov of { dst : int; src : int }
  | Ibin of { op : ibin; dst : int; a : int; b : int }
  | Iaddi of { dst : int; a : int; imm : int }
  | Imuli of { dst : int; a : int; imm : int }
  | Icmp of { op : icmp; dst : int; a : int; b : int }
  | Itruth of { dst : int; a : int }  (** dst = (a <> 0) *)
  | Inot of { dst : int; a : int }  (** dst = logical not of a's truth *)
  | Ineg of { dst : int; a : int }
  | Iabs of { dst : int; a : int }
  (* float registers *)
  | Fconst of { dst : int; v : float }
  | Fmov of { dst : int; src : int }
  | Fbin of { op : fbin; dst : int; a : int; b : int }
  | Funop of { op : funop; dst : int; a : int }
  | Fcmp of { op : icmp; dst : int; a : int; b : int }  (** int dst *)
  | Ftruth of { dst : int; a : int }  (** int dst = (a <> 0.0) *)
  | Fma of { acc : int; a : int; b : int }  (** acc <- acc +. (a *. b) *)
  | Ffloat_of_int of { dst : int; src : int }
  | Fint_of_float of { dst : int; src : int }
  (* memory: effective index is iregs.(addr) + off *)
  | Fload of { dst : int; buf : int; addr : int; off : int }
  | Fload_u of { dst : int; buf : int; addr : int; off : int }
  | Fstore of { buf : int; addr : int; off : int; src : int }
  | Fstore_u of { buf : int; addr : int; off : int; src : int }
  | Iload of { dst : int; buf : int; addr : int; off : int }
  | Iload_u of { dst : int; buf : int; addr : int; off : int }
  | Istore of { buf : int; addr : int; off : int; src : int }
  | Istore_u of { buf : int; addr : int; off : int; src : int }
  (* control flow *)
  | Jmp of { target : int }
  | Jif of { c : int; target : int }  (** jump when iregs.(c) <> 0 *)
  | Jifnot of { c : int; target : int }
  | Jge of { a : int; b : int; target : int }
      (** jump when iregs.(a) >= iregs.(b): the loop guard *)
  (* scoped scratch buffers: a fresh zeroed array per scope entry,
     released (reset to [||]) at scope exit, like the interpreter's
     per-execution Ndarray and the closure backend's Alloc slot *)
  | Alloc_f of { buf : int; numel : int }
  | Alloc_i of { buf : int; numel : int }
  | Free_f of { buf : int }
  | Free_i of { buf : int }
  | Floop of { n : int; acc : int; op : floop_op; unsafe : bool }
      (** fused innermost loop: [n] is the trip-count ireg, [acc] the
          reduction freg (ignored by map forms), [unsafe] selects
          unchecked element access under the proof-elision contract *)
  | Fail of { msg : string }

type program = {
  code : instr array;
  n_iregs : int;
  n_fregs : int;
  n_bufs : int;
}

let fail msg = raise (Interp.Runtime_error msg)

(* The hot loop. All register and code accesses are unsafe: indices
   are produced by the compiler, never by data. Buffer *element*
   accesses are checked or unsafe according to the emitted opcode. *)
let exec (p : program) ~(iregs : int array) ~(fregs : float array)
    ~(fbufs : float array array) ~(ibufs : int array array) =
  let code = p.code in
  let n = Array.length code in
  let pc = ref 0 in
  while !pc < n do
    (match Array.unsafe_get code !pc with
    | Iconst { dst; v } -> Array.unsafe_set iregs dst v
    | Imov { dst; src } -> Array.unsafe_set iregs dst (Array.unsafe_get iregs src)
    | Ibin { op; dst; a; b } ->
        let x = Array.unsafe_get iregs a and y = Array.unsafe_get iregs b in
        let v =
          match op with
          | Add -> x + y
          | Sub -> x - y
          | Mul -> x * y
          | Div -> if y = 0 then fail "integer division by zero" else x / y
          | Fdiv -> if y = 0 then fail "floordiv by zero" else Arith.Expr.fdiv x y
          | Fmod -> if y = 0 then fail "floormod by zero" else Arith.Expr.fmod x y
          | Fdivx -> if y = 0 then raise Division_by_zero else Arith.Expr.fdiv x y
          | Fmodx -> if y = 0 then raise Division_by_zero else Arith.Expr.fmod x y
          | Min -> if x <= y then x else y
          | Max -> if x >= y then x else y
          | And_ -> x land y
          | Or_ -> x lor y
          | Xor -> x lxor y
          | Shl -> x lsl y
          | Shr -> x asr y
        in
        Array.unsafe_set iregs dst v
    | Iaddi { dst; a; imm } ->
        Array.unsafe_set iregs dst (Array.unsafe_get iregs a + imm)
    | Imuli { dst; a; imm } ->
        Array.unsafe_set iregs dst (Array.unsafe_get iregs a * imm)
    | Icmp { op; dst; a; b } ->
        let x = Array.unsafe_get iregs a and y = Array.unsafe_get iregs b in
        let v =
          match op with
          | Eq -> x = y
          | Ne -> x <> y
          | Lt -> x < y
          | Le -> x <= y
          | Gt -> x > y
          | Ge -> x >= y
        in
        Array.unsafe_set iregs dst (if v then 1 else 0)
    | Itruth { dst; a } ->
        Array.unsafe_set iregs dst (if Array.unsafe_get iregs a <> 0 then 1 else 0)
    | Inot { dst; a } ->
        Array.unsafe_set iregs dst (if Array.unsafe_get iregs a <> 0 then 0 else 1)
    | Ineg { dst; a } -> Array.unsafe_set iregs dst (-Array.unsafe_get iregs a)
    | Iabs { dst; a } -> Array.unsafe_set iregs dst (abs (Array.unsafe_get iregs a))
    | Fconst { dst; v } -> Array.unsafe_set fregs dst v
    | Fmov { dst; src } -> Array.unsafe_set fregs dst (Array.unsafe_get fregs src)
    | Fbin { op; dst; a; b } ->
        let x = Array.unsafe_get fregs a and y = Array.unsafe_get fregs b in
        let v =
          match op with
          | FAdd -> x +. y
          | FSub -> x -. y
          | FMul -> x *. y
          | FDiv -> x /. y
          | FRem -> Float.rem x y
          | FMin -> Float.min x y
          | FMax -> Float.max x y
          | FPow -> Float.pow x y
        in
        Array.unsafe_set fregs dst v
    | Funop { op; dst; a } ->
        let x = Array.unsafe_get fregs a in
        let v =
          match op with
          | FNeg -> -.x
          | FExp -> exp x
          | FLog -> log x
          | FSqrt -> sqrt x
          | FRsqrt -> 1.0 /. sqrt x
          | FTanh -> tanh x
          | FSigmoid -> 1.0 /. (1.0 +. exp (-.x))
          | FErf -> Interp.erf x
          | FAbs -> abs_float x
          | FCos -> cos x
          | FSin -> sin x
          | FFloor -> floor x
        in
        Array.unsafe_set fregs dst v
    | Fcmp { op; dst; a; b } ->
        let x = Array.unsafe_get fregs a and y = Array.unsafe_get fregs b in
        let v =
          match op with
          | Eq -> x = y
          | Ne -> x <> y
          | Lt -> x < y
          | Le -> x <= y
          | Gt -> x > y
          | Ge -> x >= y
        in
        Array.unsafe_set iregs dst (if v then 1 else 0)
    | Ftruth { dst; a } ->
        Array.unsafe_set iregs dst
          (if Array.unsafe_get fregs a <> 0.0 then 1 else 0)
    | Fma { acc; a; b } ->
        Array.unsafe_set fregs acc
          (Array.unsafe_get fregs acc
          +. (Array.unsafe_get fregs a *. Array.unsafe_get fregs b))
    | Ffloat_of_int { dst; src } ->
        Array.unsafe_set fregs dst (float_of_int (Array.unsafe_get iregs src))
    | Fint_of_float { dst; src } ->
        Array.unsafe_set iregs dst (int_of_float (Array.unsafe_get fregs src))
    | Fload { dst; buf; addr; off } ->
        Array.unsafe_set fregs dst
          (Array.unsafe_get fbufs buf).(Array.unsafe_get iregs addr + off)
    | Fload_u { dst; buf; addr; off } ->
        Array.unsafe_set fregs dst
          (Array.unsafe_get
             (Array.unsafe_get fbufs buf)
             (Array.unsafe_get iregs addr + off))
    | Fstore { buf; addr; off; src } ->
        (Array.unsafe_get fbufs buf).(Array.unsafe_get iregs addr + off) <-
          Array.unsafe_get fregs src
    | Fstore_u { buf; addr; off; src } ->
        Array.unsafe_set
          (Array.unsafe_get fbufs buf)
          (Array.unsafe_get iregs addr + off)
          (Array.unsafe_get fregs src)
    | Iload { dst; buf; addr; off } ->
        Array.unsafe_set iregs dst
          (Array.unsafe_get ibufs buf).(Array.unsafe_get iregs addr + off)
    | Iload_u { dst; buf; addr; off } ->
        Array.unsafe_set iregs dst
          (Array.unsafe_get
             (Array.unsafe_get ibufs buf)
             (Array.unsafe_get iregs addr + off))
    | Istore { buf; addr; off; src } ->
        (Array.unsafe_get ibufs buf).(Array.unsafe_get iregs addr + off) <-
          Array.unsafe_get iregs src
    | Istore_u { buf; addr; off; src } ->
        Array.unsafe_set
          (Array.unsafe_get ibufs buf)
          (Array.unsafe_get iregs addr + off)
          (Array.unsafe_get iregs src)
    | Jmp { target } -> pc := target - 1
    | Jif { c; target } ->
        if Array.unsafe_get iregs c <> 0 then pc := target - 1
    | Jifnot { c; target } ->
        if Array.unsafe_get iregs c = 0 then pc := target - 1
    | Jge { a; b; target } ->
        if Array.unsafe_get iregs a >= Array.unsafe_get iregs b then
          pc := target - 1
    | Alloc_f { buf; numel } -> fbufs.(buf) <- Array.make numel 0.0
    | Alloc_i { buf; numel } -> ibufs.(buf) <- Array.make numel 0
    | Free_f { buf } -> fbufs.(buf) <- [||]
    | Free_i { buf } -> ibufs.(buf) <- [||]
    | Floop { n; acc; op; unsafe } -> (
        let n = Array.unsafe_get iregs n in
        let arr (s : stream) = Array.unsafe_get fbufs s.sbuf in
        let base (s : stream) = Array.unsafe_get iregs s.sbase in
        match op with
        | Lsum s ->
            let a = arr s and a0 = base s and sa = s.sstride in
            let r = ref (Array.unsafe_get fregs acc) in
            if unsafe then
              for i = 0 to n - 1 do
                r := !r +. Array.unsafe_get a (a0 + (i * sa))
              done
            else
              for i = 0 to n - 1 do
                r := !r +. a.(a0 + (i * sa))
              done;
            Array.unsafe_set fregs acc !r
        | Lmax s ->
            let a = arr s and a0 = base s and sa = s.sstride in
            let r = ref (Array.unsafe_get fregs acc) in
            if unsafe then
              for i = 0 to n - 1 do
                r := Float.max !r (Array.unsafe_get a (a0 + (i * sa)))
              done
            else
              for i = 0 to n - 1 do
                r := Float.max !r a.(a0 + (i * sa))
              done;
            Array.unsafe_set fregs acc !r
        | Lmin s ->
            let a = arr s and a0 = base s and sa = s.sstride in
            let r = ref (Array.unsafe_get fregs acc) in
            if unsafe then
              for i = 0 to n - 1 do
                r := Float.min !r (Array.unsafe_get a (a0 + (i * sa)))
              done
            else
              for i = 0 to n - 1 do
                r := Float.min !r a.(a0 + (i * sa))
              done;
            Array.unsafe_set fregs acc !r
        | Ldot (sa_, sb_) ->
            let a = arr sa_ and a0 = base sa_ and sa = sa_.sstride in
            let b = arr sb_ and b0 = base sb_ and sb = sb_.sstride in
            let r = ref (Array.unsafe_get fregs acc) in
            if unsafe then
              for i = 0 to n - 1 do
                r :=
                  !r
                  +. Array.unsafe_get a (a0 + (i * sa))
                     *. Array.unsafe_get b (b0 + (i * sb))
              done
            else
              for i = 0 to n - 1 do
                r := !r +. (a.(a0 + (i * sa)) *. b.(b0 + (i * sb)))
              done;
            Array.unsafe_set fregs acc !r
        | Lsum_exp_sub (s, c) ->
            let a = arr s and a0 = base s and sa = s.sstride in
            let c = Array.unsafe_get fregs c in
            let r = ref (Array.unsafe_get fregs acc) in
            if unsafe then
              for i = 0 to n - 1 do
                r := !r +. exp (Array.unsafe_get a (a0 + (i * sa)) -. c)
              done
            else
              for i = 0 to n - 1 do
                r := !r +. exp (a.(a0 + (i * sa)) -. c)
              done;
            Array.unsafe_set fregs acc !r
        | Lsum_sq_sub (s, c) ->
            let a = arr s and a0 = base s and sa = s.sstride in
            let c = Array.unsafe_get fregs c in
            let r = ref (Array.unsafe_get fregs acc) in
            if unsafe then
              for i = 0 to n - 1 do
                let d = Array.unsafe_get a (a0 + (i * sa)) -. c in
                r := !r +. (d *. d)
              done
            else
              for i = 0 to n - 1 do
                let d = a.(a0 + (i * sa)) -. c in
                r := !r +. (d *. d)
              done;
            Array.unsafe_set fregs acc !r
        | Lmap_copy { src; dst } -> (
            let d = arr dst and d0 = base dst and sd = dst.sstride in
            match src with
            | Sreg c ->
                let v = Array.unsafe_get fregs c in
                if unsafe then
                  for i = 0 to n - 1 do
                    Array.unsafe_set d (d0 + (i * sd)) v
                  done
                else
                  for i = 0 to n - 1 do
                    d.(d0 + (i * sd)) <- v
                  done
            | Sstream s ->
                let a = arr s and a0 = base s and sa = s.sstride in
                if unsafe then
                  for i = 0 to n - 1 do
                    Array.unsafe_set d (d0 + (i * sd))
                      (Array.unsafe_get a (a0 + (i * sa)))
                  done
                else
                  for i = 0 to n - 1 do
                    d.(d0 + (i * sd)) <- a.(a0 + (i * sa))
                  done)
        | Lmap_unop { op; src; dst } ->
            let a = arr src and a0 = base src and sa = src.sstride in
            let d = arr dst and d0 = base dst and sd = dst.sstride in
            let f =
              match op with
              | FNeg -> ( ~-. )
              | FExp -> exp
              | FLog -> log
              | FSqrt -> sqrt
              | FRsqrt -> fun x -> 1.0 /. sqrt x
              | FTanh -> tanh
              | FSigmoid -> fun x -> 1.0 /. (1.0 +. exp (-.x))
              | FErf -> Interp.erf
              | FAbs -> abs_float
              | FCos -> cos
              | FSin -> sin
              | FFloor -> floor
            in
            if unsafe then
              for i = 0 to n - 1 do
                Array.unsafe_set d (d0 + (i * sd))
                  (f (Array.unsafe_get a (a0 + (i * sa))))
              done
            else
              for i = 0 to n - 1 do
                d.(d0 + (i * sd)) <- f a.(a0 + (i * sa))
              done
        | Lmap_bin { op; a; b; dst } ->
            let d = arr dst and d0 = base dst and sd = dst.sstride in
            let get (src : fsrc) : int -> float =
              (* operand fetcher: the closure-per-operand cost is paid
                 once per operand kind, not per element, because the
                 two hot all-stream / stream-scalar cases below bypass
                 it entirely *)
              match src with
              | Sreg c ->
                  let v = Array.unsafe_get fregs c in
                  fun _ -> v
              | Sstream s ->
                  let a = arr s and a0 = base s and sa = s.sstride in
                  if unsafe then fun i -> Array.unsafe_get a (a0 + (i * sa))
                  else fun i -> a.(a0 + (i * sa))
            in
            let fop =
              match op with
              | FAdd -> ( +. )
              | FSub -> ( -. )
              | FMul -> ( *. )
              | FDiv -> ( /. )
              | FRem -> Float.rem
              | FMin -> Float.min
              | FMax -> Float.max
              | FPow -> Float.pow
            in
            (match (a, b) with
            | Sstream sa_, Sstream sb_ ->
                let a = arr sa_ and a0 = base sa_ and sa = sa_.sstride in
                let b = arr sb_ and b0 = base sb_ and sb = sb_.sstride in
                if unsafe then
                  for i = 0 to n - 1 do
                    Array.unsafe_set d (d0 + (i * sd))
                      (fop
                         (Array.unsafe_get a (a0 + (i * sa)))
                         (Array.unsafe_get b (b0 + (i * sb))))
                  done
                else
                  for i = 0 to n - 1 do
                    d.(d0 + (i * sd)) <- fop a.(a0 + (i * sa)) b.(b0 + (i * sb))
                  done
            | Sstream sa_, Sreg c ->
                let a = arr sa_ and a0 = base sa_ and sa = sa_.sstride in
                let v = Array.unsafe_get fregs c in
                if unsafe then
                  for i = 0 to n - 1 do
                    Array.unsafe_set d (d0 + (i * sd))
                      (fop (Array.unsafe_get a (a0 + (i * sa))) v)
                  done
                else
                  for i = 0 to n - 1 do
                    d.(d0 + (i * sd)) <- fop a.(a0 + (i * sa)) v
                  done
            | _ ->
                let ga = get a and gb = get b in
                if unsafe then
                  for i = 0 to n - 1 do
                    Array.unsafe_set d (d0 + (i * sd)) (fop (ga i) (gb i))
                  done
                else
                  for i = 0 to n - 1 do
                    d.(d0 + (i * sd)) <- fop (ga i) (gb i)
                  done)
        | Lmap_exp_sub_div { src; c1; c2; dst } ->
            let a = arr src and a0 = base src and sa = src.sstride in
            let d = arr dst and d0 = base dst and sd = dst.sstride in
            let c1 = Array.unsafe_get fregs c1
            and c2 = Array.unsafe_get fregs c2 in
            if unsafe then
              for i = 0 to n - 1 do
                Array.unsafe_set d (d0 + (i * sd))
                  (exp (Array.unsafe_get a (a0 + (i * sa)) -. c1) /. c2)
              done
            else
              for i = 0 to n - 1 do
                d.(d0 + (i * sd)) <- exp (a.(a0 + (i * sa)) -. c1) /. c2
              done
        | Lmap_norm { src; c1; c2; g; b; dst } ->
            let x = arr src and x0 = base src and sx = src.sstride in
            let gg = arr g and g0 = base g and sg = g.sstride in
            let bb = arr b and b0 = base b and sb = b.sstride in
            let d = arr dst and d0 = base dst and sd = dst.sstride in
            let c1 = Array.unsafe_get fregs c1
            and c2 = Array.unsafe_get fregs c2 in
            if unsafe then
              for i = 0 to n - 1 do
                Array.unsafe_set d (d0 + (i * sd))
                  ((Array.unsafe_get x (x0 + (i * sx)) -. c1)
                   *. c2
                   *. Array.unsafe_get gg (g0 + (i * sg))
                  +. Array.unsafe_get bb (b0 + (i * sb)))
              done
            else
              for i = 0 to n - 1 do
                d.(d0 + (i * sd)) <-
                  ((x.(x0 + (i * sx)) -. c1) *. c2 *. gg.(g0 + (i * sg)))
                  +. bb.(b0 + (i * sb))
              done)
    | Fail { msg } -> fail msg);
    incr pc
  done

(* ---------- pretty printing (debugging, DESIGN.md examples) ---------- *)

let ibin_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Fdiv -> "fdiv"
  | Fmod -> "fmod"
  | Fdivx -> "fdivx"
  | Fmodx -> "fmodx"
  | Min -> "min"
  | Max -> "max"
  | And_ -> "and"
  | Or_ -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let fbin_name = function
  | FAdd -> "fadd"
  | FSub -> "fsub"
  | FMul -> "fmul"
  | FDiv -> "fdiv"
  | FRem -> "frem"
  | FMin -> "fmin"
  | FMax -> "fmax"
  | FPow -> "fpow"

let funop_name = function
  | FNeg -> "fneg"
  | FExp -> "fexp"
  | FLog -> "flog"
  | FSqrt -> "fsqrt"
  | FRsqrt -> "frsqrt"
  | FTanh -> "ftanh"
  | FSigmoid -> "fsigmoid"
  | FErf -> "ferf"
  | FAbs -> "fabs"
  | FCos -> "fcos"
  | FSin -> "fsin"
  | FFloor -> "ffloor"

let icmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let stream_str (s : stream) =
  Printf.sprintf "b%d[i%d + i*%d]" s.sbuf s.sbase s.sstride

let fsrc_str = function
  | Sreg r -> Printf.sprintf "f%d" r
  | Sstream s -> stream_str s

let floop_str (op : floop_op) =
  match op with
  | Lsum s -> Printf.sprintf "sum %s" (stream_str s)
  | Lmax s -> Printf.sprintf "max %s" (stream_str s)
  | Lmin s -> Printf.sprintf "min %s" (stream_str s)
  | Ldot (a, b) -> Printf.sprintf "dot %s, %s" (stream_str a) (stream_str b)
  | Lsum_exp_sub (s, c) ->
      Printf.sprintf "sum_exp_sub %s, f%d" (stream_str s) c
  | Lsum_sq_sub (s, c) -> Printf.sprintf "sum_sq_sub %s, f%d" (stream_str s) c
  | Lmap_copy { src; dst } ->
      Printf.sprintf "copy %s <- %s" (stream_str dst) (fsrc_str src)
  | Lmap_unop { op; src; dst } ->
      Printf.sprintf "map.%s %s <- %s" (funop_name op) (stream_str dst)
        (stream_str src)
  | Lmap_bin { op; a; b; dst } ->
      Printf.sprintf "map.%s %s <- %s, %s" (fbin_name op) (stream_str dst)
        (fsrc_str a) (fsrc_str b)
  | Lmap_exp_sub_div { src; c1; c2; dst } ->
      Printf.sprintf "map.exp_sub_div %s <- %s, f%d, f%d" (stream_str dst)
        (stream_str src) c1 c2
  | Lmap_norm { src; c1; c2; g; b; dst } ->
      Printf.sprintf "map.norm %s <- %s, f%d, f%d, %s, %s" (stream_str dst)
        (stream_str src) c1 c2 (stream_str g) (stream_str b)

let mem_str op dst_or_src buf addr off =
  Printf.sprintf "%s r%d, b%d[i%d%s]" op dst_or_src buf addr
    (if off = 0 then "" else Printf.sprintf "+%d" off)

let instr_to_string = function
  | Iconst { dst; v } -> Printf.sprintf "iconst i%d, %d" dst v
  | Imov { dst; src } -> Printf.sprintf "imov i%d, i%d" dst src
  | Ibin { op; dst; a; b } ->
      Printf.sprintf "%s i%d, i%d, i%d" (ibin_name op) dst a b
  | Iaddi { dst; a; imm } -> Printf.sprintf "iaddi i%d, i%d, %d" dst a imm
  | Imuli { dst; a; imm } -> Printf.sprintf "imuli i%d, i%d, %d" dst a imm
  | Icmp { op; dst; a; b } ->
      Printf.sprintf "icmp.%s i%d, i%d, i%d" (icmp_name op) dst a b
  | Itruth { dst; a } -> Printf.sprintf "itruth i%d, i%d" dst a
  | Inot { dst; a } -> Printf.sprintf "inot i%d, i%d" dst a
  | Ineg { dst; a } -> Printf.sprintf "ineg i%d, i%d" dst a
  | Iabs { dst; a } -> Printf.sprintf "iabs i%d, i%d" dst a
  | Fconst { dst; v } -> Printf.sprintf "fconst f%d, %h" dst v
  | Fmov { dst; src } -> Printf.sprintf "fmov f%d, f%d" dst src
  | Fbin { op; dst; a; b } ->
      Printf.sprintf "%s f%d, f%d, f%d" (fbin_name op) dst a b
  | Funop { op; dst; a } -> Printf.sprintf "%s f%d, f%d" (funop_name op) dst a
  | Fcmp { op; dst; a; b } ->
      Printf.sprintf "fcmp.%s i%d, f%d, f%d" (icmp_name op) dst a b
  | Ftruth { dst; a } -> Printf.sprintf "ftruth i%d, f%d" dst a
  | Fma { acc; a; b } -> Printf.sprintf "fma f%d, f%d, f%d" acc a b
  | Ffloat_of_int { dst; src } -> Printf.sprintf "f_of_i f%d, i%d" dst src
  | Fint_of_float { dst; src } -> Printf.sprintf "i_of_f i%d, f%d" dst src
  | Fload { dst; buf; addr; off } -> mem_str "fload" dst buf addr off
  | Fload_u { dst; buf; addr; off } -> mem_str "fload.u" dst buf addr off
  | Fstore { buf; addr; off; src } -> mem_str "fstore" src buf addr off
  | Fstore_u { buf; addr; off; src } -> mem_str "fstore.u" src buf addr off
  | Iload { dst; buf; addr; off } -> mem_str "iload" dst buf addr off
  | Iload_u { dst; buf; addr; off } -> mem_str "iload.u" dst buf addr off
  | Istore { buf; addr; off; src } -> mem_str "istore" src buf addr off
  | Istore_u { buf; addr; off; src } -> mem_str "istore.u" src buf addr off
  | Jmp { target } -> Printf.sprintf "jmp @%d" target
  | Jif { c; target } -> Printf.sprintf "jif i%d, @%d" c target
  | Jifnot { c; target } -> Printf.sprintf "jifnot i%d, @%d" c target
  | Jge { a; b; target } -> Printf.sprintf "jge i%d, i%d, @%d" a b target
  | Alloc_f { buf; numel } -> Printf.sprintf "alloc.f b%d, %d" buf numel
  | Alloc_i { buf; numel } -> Printf.sprintf "alloc.i b%d, %d" buf numel
  | Free_f { buf } -> Printf.sprintf "free.f b%d" buf
  | Free_i { buf } -> Printf.sprintf "free.i b%d" buf
  | Floop { n; acc; op; unsafe } ->
      Printf.sprintf "floop%s i%d, f%d: %s"
        (if unsafe then ".u" else "")
        n acc (floop_str op)
  | Fail { msg } -> Printf.sprintf "fail %S" msg

let to_string (p : program) =
  let b = Stdlib.Buffer.create 256 in
  Stdlib.Buffer.add_string b
    (Printf.sprintf "; iregs=%d fregs=%d bufs=%d\n" p.n_iregs p.n_fregs p.n_bufs);
  Array.iteri
    (fun i ins ->
      Stdlib.Buffer.add_string b (Printf.sprintf "%4d: %s\n" i (instr_to_string ins)))
    p.code;
  Stdlib.Buffer.contents b

(* Counts used by tests and by {!Cost} calibration notes: how many
   unsafe vs checked memory instructions a lowered program contains. *)
let count_mem (p : program) =
  Array.fold_left
    (fun (unsafe, checked) ins ->
      match ins with
      | Fload_u _ | Fstore_u _ | Iload_u _ | Istore_u _ -> (unsafe + 1, checked)
      | Fload _ | Fstore _ | Iload _ | Istore _ -> (unsafe, checked + 1)
      | Floop { unsafe = u; _ } ->
          (* a fused loop is one memory-touching instruction whose
             element accesses are all checked or all unsafe *)
          if u then (unsafe + 1, checked) else (unsafe, checked + 1)
      | _ -> (unsafe, checked))
    (0, 0) p.code
