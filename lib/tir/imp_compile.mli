(** Lower tensor programs to the flat imperative IR ({!Imp}).

    Per (kernel, shape signature): symbolic shapes become constants,
    loop-invariant index arithmetic is hoisted to the loop level of
    its deepest variable, buffer accesses become flat offsets into raw
    storage, innermost single-store loops are unrolled by 4 with
    register-promoted accumulators (and dispatch-fused
    multiply-accumulate) for float reductions. Results are
    bit-identical to {!Interp} and {!Compile} on valid programs
    (differential-tested in test/test_compile.ml).

    When [elide_bounds] is set — the caller must have proved the
    kernel memory-safe, e.g. via [Analysis.Tir_safety] (see
    DESIGN.md §12) — loads and stores use unchecked array access;
    otherwise every access keeps OCaml's flat bounds check, exactly
    like the closure backend. *)

type compiled = Base.Ndarray.t list -> unit
(** A bound kernel: call with arguments whose shapes match the
    signature it was compiled for (outputs mutated in place). *)

val lower :
  ?sym_args:(Arith.Var.t * int) list ->
  ?elide_bounds:bool ->
  Prim_func.t ->
  int array list ->
  Imp.program
(** The lowered program, for inspection ({!Imp.to_string},
    {!Imp.count_mem}) and tests.
    @raise Interp.Runtime_error on rank/shape inconsistencies or
    ill-kinded expressions. *)

val compile :
  ?sym_args:(Arith.Var.t * int) list ->
  ?elide_bounds:bool ->
  Prim_func.t ->
  int array list ->
  compiled
(** Lower and bind to a reusable executable closure (register files
    allocated once, reused across calls). *)

val run :
  ?sym_args:(Arith.Var.t * int) list ->
  ?elide_bounds:bool ->
  Prim_func.t ->
  Base.Ndarray.t list ->
  unit
(** Compile-and-execute once (drop-in replacement for
    {!Interp.run}); use a cache (see [Exec.Cache]) on hot paths. *)
