type shape = Arith.Expr.t list

let dims_named prefix shape =
  List.mapi (fun i extent -> (Printf.sprintf "%s%d" prefix i, extent)) shape

let relu x = Texpr.Binop (Texpr.Max, x, Texpr.f 0.0)
let silu x = Texpr.(x *. Unop (Sigmoid, x))

let inv_sqrt2 = 1.0 /. sqrt 2.0

let gelu x =
  (* 0.5 * x * (1 + erf(x / sqrt 2)) *)
  Texpr.(f 0.5 *. x *. (f 1.0 +. Unop (Erf, x *. f inv_sqrt2)))

let unary ~name ~op shape dtype =
  let x = Buffer.create "X" shape dtype in
  let y = Buffer.create "Y" shape dtype in
  let body =
    Stmt.grid (dims_named "i" shape) (fun idx ->
        Stmt.Store (y, List.map Texpr.idx idx, op (Texpr.load x idx)))
  in
  Prim_func.create ~name ~params:[ x; y ] body

let binary ~name ~op shape dtype =
  let a = Buffer.create "A" shape dtype in
  let b = Buffer.create "B" shape dtype in
  let y = Buffer.create "Y" shape dtype in
  let body =
    Stmt.grid (dims_named "i" shape) (fun idx ->
        Stmt.Store
          (y, List.map Texpr.idx idx, op (Texpr.load a idx) (Texpr.load b idx)))
  in
  Prim_func.create ~name ~params:[ a; b; y ] body

let broadcast_binary ~name ~op ~lhs ~rhs dtype =
  let extra = List.length lhs - List.length rhs in
  if extra < 0 then
    invalid_arg "Kernels.broadcast_binary: rhs has higher rank than lhs";
  let a = Buffer.create "A" lhs dtype in
  let b = Buffer.create "B" rhs dtype in
  let y = Buffer.create "Y" lhs dtype in
  let body =
    Stmt.grid (dims_named "i" lhs) (fun idx ->
        let rhs_idx = List.filteri (fun d _ -> d >= extra) idx in
        Stmt.Store
          ( y,
            List.map Texpr.idx idx,
            op (Texpr.load a idx) (Texpr.load b rhs_idx) ))
  in
  Prim_func.create ~name ~params:[ a; b; y ] body

let cast_kernel ~name shape ~from_ ~to_ =
  let x = Buffer.create "X" shape from_ in
  let y = Buffer.create "Y" shape to_ in
  let body =
    Stmt.grid (dims_named "i" shape) (fun idx ->
        Stmt.Store (y, List.map Texpr.idx idx, Texpr.Cast (to_, Texpr.load x idx)))
  in
  Prim_func.create ~name ~params:[ x; y ] body

let matmul_body ~x ~w ~y ~batch_idx ~m ~k ~n ~shared_rhs =
  let mi = Arith.Var.fresh "i" in
  let nj = Arith.Var.fresh "j" in
  let kk = Arith.Var.fresh "k" in
  let ei = Arith.Expr.var mi
  and ej = Arith.Expr.var nj
  and ek = Arith.Expr.var kk in
  let w_idx suffix = if shared_rhs then suffix else batch_idx @ suffix in
  let y_idx = batch_idx @ [ ei; ej ] in
  let init = Stmt.Store (y, List.map Texpr.idx y_idx, Texpr.f 0.0) in
  let accum =
    Stmt.Store
      ( y,
        List.map Texpr.idx y_idx,
        Texpr.(
          load y y_idx
          +. (load x (batch_idx @ [ ei; ek ]) *. load w (w_idx [ ek; ej ]))) )
  in
  Stmt.for_ mi m (Stmt.for_ nj n (Stmt.seq [ init; Stmt.for_ kk k accum ]))

let matmul_like ~name ?(batch = []) ~m ~k ~n ~shared_rhs dtype =
  let x = Buffer.create "X" (batch @ [ m; k ]) dtype in
  let w_shape = if shared_rhs then [ k; n ] else batch @ [ k; n ] in
  let w = Buffer.create "W" w_shape dtype in
  let y = Buffer.create "Y" (batch @ [ m; n ]) dtype in
  let body =
    Stmt.grid (dims_named "b" batch) (fun batch_idx ->
        matmul_body ~x ~w ~y ~batch_idx ~m ~k ~n ~shared_rhs)
  in
  Prim_func.create ~name ~params:[ x; w; y ] body

let matmul ~name ?batch ~m ~k ~n dtype =
  matmul_like ~name ?batch ~m ~k ~n ~shared_rhs:false dtype

let matmul_weights ~name ?batch ~m ~k ~n dtype =
  matmul_like ~name ?batch ~m ~k ~n ~shared_rhs:true dtype

let transpose ~name shape ~perm dtype =
  if List.length perm <> List.length shape then
    invalid_arg "Kernels.transpose: perm rank mismatch";
  let out_shape = List.map (fun d -> List.nth shape d) perm in
  let x = Buffer.create "X" shape dtype in
  let y = Buffer.create "Y" out_shape dtype in
  let body =
    Stmt.grid (dims_named "i" out_shape) (fun out_idx ->
        (* out[i...] = in[inverse-permuted i]: input axis a is output
           axis p where perm.(p) = a. *)
        let in_idx =
          List.mapi
            (fun in_axis _ ->
              let out_axis =
                match
                  List.find_index (fun p -> p = in_axis) perm
                with
                | Some p -> p
                | None -> invalid_arg "Kernels.transpose: perm not a permutation"
              in
              List.nth out_idx out_axis)
            shape
        in
        Stmt.Store (y, List.map Texpr.idx out_idx, Texpr.load x in_idx))
  in
  Prim_func.create ~name ~params:[ x; y ] body

let linearize idx shape =
  match (idx, shape) with
  | [], [] -> Arith.Expr.const 0
  | i0 :: it, _ :: st ->
      List.fold_left2
        (fun acc i extent -> Arith.Expr.(add (mul acc extent) i))
        i0 it st
  | _, _ -> invalid_arg "Kernels.linearize: rank mismatch"

let unflatten linear shape =
  (* Row-major: last axis varies fastest. *)
  let rev = List.rev shape in
  let rec go linear = function
    | [] -> []
    | [ _ ] -> [ linear ]
    | extent :: rest ->
        Arith.Expr.floor_mod linear extent
        :: go (Arith.Expr.floor_div linear extent) rest
  in
  List.rev (go linear rev)

let reshape ~name ~from_ ~to_ dtype =
  let x = Buffer.create "X" from_ dtype in
  let y = Buffer.create "Y" to_ dtype in
  let body =
    Stmt.grid (dims_named "i" to_) (fun out_idx ->
        let linear = linearize out_idx to_ in
        let in_idx = unflatten linear from_ in
        Stmt.Store (y, List.map Texpr.idx out_idx, Texpr.load x in_idx))
  in
  Prim_func.create ~name ~params:[ x; y ] body

let reduce ~name ~kind shape dtype =
  let outer, last =
    match List.rev shape with
    | last :: rev_outer -> (List.rev rev_outer, last)
    | [] -> invalid_arg "Kernels.reduce: rank-0 input"
  in
  let x = Buffer.create "X" shape dtype in
  let y = Buffer.create "Y" outer dtype in
  let r = Arith.Var.fresh "r" in
  let er = Arith.Expr.var r in
  let body =
    Stmt.grid (dims_named "i" outer) (fun out_idx ->
        let out_texpr = List.map Texpr.idx out_idx in
        let x_at = Texpr.load x (out_idx @ [ er ]) in
        let init_value =
          match kind with
          | `Sum | `Mean -> Texpr.f 0.0
          | `Max -> Texpr.f neg_infinity
        in
        let step =
          match kind with
          | `Sum | `Mean -> Texpr.(Load (y, out_texpr) +. x_at)
          | `Max -> Texpr.Binop (Texpr.Max, Texpr.Load (y, out_texpr), x_at)
        in
        let finish =
          match kind with
          | `Mean ->
              [ Stmt.Store
                  ( y,
                    out_texpr,
                    Texpr.(
                      Load (y, out_texpr)
                      /. Cast (dtype, Texpr.idx last)) ) ]
          | `Sum | `Max -> []
        in
        Stmt.seq
          ([ Stmt.Store (y, out_texpr, init_value);
             Stmt.for_ r last (Stmt.Store (y, out_texpr, step)) ]
          @ finish))
  in
  Prim_func.create ~name ~params:[ x; y ] body

let softmax_last ~name shape dtype =
  let outer, last =
    match List.rev shape with
    | last :: rev_outer -> (List.rev rev_outer, last)
    | [] -> invalid_arg "Kernels.softmax_last: rank-0 input"
  in
  let x = Buffer.create "X" shape dtype in
  let y = Buffer.create "Y" shape dtype in
  let mx = Buffer.create ~scope:Buffer.Shared "mx" outer dtype in
  let sm = Buffer.create ~scope:Buffer.Shared "sm" outer dtype in
  let r = Arith.Var.fresh "r" in
  let er = Arith.Expr.var r in
  let body =
    Stmt.grid (dims_named "i" outer) (fun o ->
        let ot = List.map Texpr.idx o in
        let x_at = Texpr.load x (o @ [ er ]) in
        let centered = Texpr.(Unop (Exp, x_at -. Load (mx, ot))) in
        Stmt.seq
          [ Stmt.Store (mx, ot, Texpr.f neg_infinity);
            Stmt.for_ r last
              (Stmt.Store
                 (mx, ot, Texpr.Binop (Texpr.Max, Texpr.Load (mx, ot), x_at)));
            Stmt.Store (sm, ot, Texpr.f 0.0);
            Stmt.for_ r last
              (Stmt.Store (sm, ot, Texpr.(Load (sm, ot) +. centered)));
            Stmt.for_ r last
              (Stmt.Store
                 ( y,
                   List.map Texpr.idx (o @ [ er ]),
                   Texpr.(centered /. Load (sm, ot)) )) ])
  in
  Prim_func.create ~name ~params:[ x; y ]
    (Stmt.Alloc (mx, Stmt.Alloc (sm, body)))

let softmax_last_reassoc ~name ?(bias = 8192.0) shape dtype =
  (* Deliberately mis-reassociated softmax: the normalizer accumulates
     [exp (x - mx) + bias] and subtracts [n * bias] afterwards.
     Algebraically the identity, numerically a catastrophic
     cancellation — each rounding error is amplified by the biased
     partial-sum magnitude. Exists as the seeded defect for the
     round-off certifier's golden tests (Analysis.Fp). *)
  let outer, last =
    match List.rev shape with
    | last :: rev_outer -> (List.rev rev_outer, last)
    | [] -> invalid_arg "Kernels.softmax_last_reassoc: rank-0 input"
  in
  let x = Buffer.create "X" shape dtype in
  let y = Buffer.create "Y" shape dtype in
  let mx = Buffer.create ~scope:Buffer.Shared "mx" outer dtype in
  let sm = Buffer.create ~scope:Buffer.Shared "sm" outer dtype in
  let r = Arith.Var.fresh "r" in
  let er = Arith.Expr.var r in
  let body =
    Stmt.grid (dims_named "i" outer) (fun o ->
        let ot = List.map Texpr.idx o in
        let x_at = Texpr.load x (o @ [ er ]) in
        let centered = Texpr.(Unop (Exp, x_at -. Load (mx, ot))) in
        Stmt.seq
          [ Stmt.Store (mx, ot, Texpr.f neg_infinity);
            Stmt.for_ r last
              (Stmt.Store
                 (mx, ot, Texpr.Binop (Texpr.Max, Texpr.Load (mx, ot), x_at)));
            Stmt.Store (sm, ot, Texpr.f 0.0);
            Stmt.for_ r last
              (Stmt.Store (sm, ot, Texpr.(Load (sm, ot) +. (centered +. f bias))));
            Stmt.Store
              ( sm,
                ot,
                Texpr.(
                  Load (sm, ot) -. (Cast (dtype, Texpr.idx last) *. f bias)) );
            Stmt.for_ r last
              (Stmt.Store
                 ( y,
                   List.map Texpr.idx (o @ [ er ]),
                   Texpr.(centered /. Load (sm, ot)) )) ])
  in
  Prim_func.create ~name ~params:[ x; y ]
    (Stmt.Alloc (mx, Stmt.Alloc (sm, body)))

let rms_norm ~name shape ~eps dtype =
  let outer, last =
    match List.rev shape with
    | last :: rev_outer -> (List.rev rev_outer, last)
    | [] -> invalid_arg "Kernels.rms_norm: rank-0 input"
  in
  let x = Buffer.create "X" shape dtype in
  let wt = Buffer.create "Wt" [ last ] dtype in
  let y = Buffer.create "Y" shape dtype in
  let ss = Buffer.create ~scope:Buffer.Shared "ss" outer dtype in
  let r = Arith.Var.fresh "r" in
  let er = Arith.Expr.var r in
  let body =
    Stmt.grid (dims_named "i" outer) (fun o ->
        let ot = List.map Texpr.idx o in
        let x_at = Texpr.load x (o @ [ er ]) in
        let inv_rms =
          Texpr.(
            Unop
              ( Rsqrt,
                (Load (ss, ot) /. Cast (dtype, Texpr.idx last)) +. f eps ))
        in
        Stmt.seq
          [ Stmt.Store (ss, ot, Texpr.f 0.0);
            Stmt.for_ r last
              (Stmt.Store (ss, ot, Texpr.(Load (ss, ot) +. (x_at *. x_at))));
            Stmt.for_ r last
              (Stmt.Store
                 ( y,
                   List.map Texpr.idx (o @ [ er ]),
                   Texpr.(x_at *. inv_rms *. load wt [ er ]) )) ])
  in
  Prim_func.create ~name ~params:[ x; wt; y ] (Stmt.Alloc (ss, body))

let layer_norm ~name shape ~eps dtype =
  let outer, last =
    match List.rev shape with
    | last :: rev_outer -> (List.rev rev_outer, last)
    | [] -> invalid_arg "Kernels.layer_norm: rank-0 input"
  in
  let x = Buffer.create "X" shape dtype in
  let gamma = Buffer.create "G" [ last ] dtype in
  let beta = Buffer.create "B" [ last ] dtype in
  let y = Buffer.create "Y" shape dtype in
  let mu = Buffer.create ~scope:Buffer.Shared "mu" outer dtype in
  let var = Buffer.create ~scope:Buffer.Shared "var" outer dtype in
  let r = Arith.Var.fresh "r" in
  let er = Arith.Expr.var r in
  let body =
    Stmt.grid (dims_named "i" outer) (fun o ->
        let ot = List.map Texpr.idx o in
        let x_at = Texpr.load x (o @ [ er ]) in
        let count = Texpr.Cast (dtype, Texpr.idx last) in
        let centered = Texpr.(x_at -. Load (mu, ot)) in
        Stmt.seq
          [ Stmt.Store (mu, ot, Texpr.f 0.0);
            Stmt.for_ r last (Stmt.Store (mu, ot, Texpr.(Load (mu, ot) +. x_at)));
            Stmt.Store (mu, ot, Texpr.(Load (mu, ot) /. count));
            Stmt.Store (var, ot, Texpr.f 0.0);
            Stmt.for_ r last
              (Stmt.Store (var, ot, Texpr.(Load (var, ot) +. (centered *. centered))));
            Stmt.Store (var, ot, Texpr.(Load (var, ot) /. count));
            Stmt.for_ r last
              (Stmt.Store
                 ( y,
                   List.map Texpr.idx (o @ [ er ]),
                   Texpr.(
                     (centered
                      *. Unop (Rsqrt, Load (var, ot) +. f eps)
                      *. load gamma [ er ])
                     +. load beta [ er ]) )) ])
  in
  Prim_func.create ~name ~params:[ x; gamma; beta; y ]
    (Stmt.Alloc (mu, Stmt.Alloc (var, body)))

let take_rows ~name ~rows ~width ~num_indices dtype =
  let table = Buffer.create "T" [ rows; width ] dtype in
  let indices = Buffer.create "I" [ num_indices ] Base.Dtype.I32 in
  let y = Buffer.create "Y" [ num_indices; width ] dtype in
  let body =
    Stmt.grid
      [ ("i", num_indices); ("j", width) ]
      (fun idx ->
        match idx with
        | [ i; j ] ->
            Stmt.Store
              ( y,
                [ Texpr.idx i; Texpr.idx j ],
                Texpr.load_v table [ Texpr.load indices [ i ]; Texpr.idx j ] )
        | _ -> assert false)
  in
  Prim_func.create ~name ~params:[ table; indices; y ] body

let ceil_div a b = Arith.Expr.floor_div (Arith.Expr.add a (Arith.Expr.const (b - 1))) (Arith.Expr.const b)

let decode_q4 ~name ~k ~n dtype =
  let c = Arith.Expr.const in
  let wdata = Buffer.create "Wdata" [ k; ceil_div n 8 ] Base.Dtype.U32 in
  let wscale = Buffer.create "Wscale" [ k; ceil_div n 32 ] dtype in
  let w = Buffer.create "W" [ k; n ] dtype in
  let body =
    Stmt.grid
      [ ("i", k); ("j", n) ]
      (fun idx ->
        match idx with
        | [ i; j ] ->
            let word = Texpr.load wdata [ i; Arith.Expr.floor_div j (c 8) ] in
            let shift = Texpr.idx (Arith.Expr.mul (Arith.Expr.floor_mod j (c 8)) (c 4)) in
            let nibble =
              Texpr.(
                Binop (Bit_and, Binop (Shift_right, word, shift), Texpr.i 15))
            in
            let scale = Texpr.load wscale [ i; Arith.Expr.floor_div j (c 32) ] in
            Stmt.Store
              ( w,
                [ Texpr.idx i; Texpr.idx j ],
                Texpr.((Cast (dtype, nibble) -. f 7.0) *. scale) )
        | _ -> assert false)
  in
  Prim_func.create ~name ~params:[ wdata; wscale; w ] body

let decode_q3 ~name ~k ~n dtype =
  let c = Arith.Expr.const in
  let wdata = Buffer.create "Wdata" [ k; ceil_div n 10 ] Base.Dtype.U32 in
  let wscale = Buffer.create "Wscale" [ k; ceil_div n 32 ] dtype in
  let w = Buffer.create "W" [ k; n ] dtype in
  let body =
    Stmt.grid
      [ ("i", k); ("j", n) ]
      (fun idx ->
        match idx with
        | [ i; j ] ->
            let word = Texpr.load wdata [ i; Arith.Expr.floor_div j (c 10) ] in
            let shift =
              Texpr.idx (Arith.Expr.mul (Arith.Expr.floor_mod j (c 10)) (c 3))
            in
            let bits =
              Texpr.(
                Binop (Bit_and, Binop (Shift_right, word, shift), Texpr.i 7))
            in
            let scale = Texpr.load wscale [ i; Arith.Expr.floor_div j (c 32) ] in
            Stmt.Store
              ( w,
                [ Texpr.idx i; Texpr.idx j ],
                Texpr.((Cast (dtype, bits) -. f 3.0) *. scale) )
        | _ -> assert false)
  in
  Prim_func.create ~name ~params:[ wdata; wscale; w ] body

let split_k_matmul ~name ~m ~k ~n ~splits dtype =
  let c = Arith.Expr.const in
  let x = Buffer.create "X" [ m; k ] dtype in
  let w = Buffer.create "W" [ k; n ] dtype in
  let y = Buffer.create "Y" [ m; n ] dtype in
  let workspace =
    Buffer.create ~scope:Buffer.Global "workspace" [ c splits; m; n ] dtype
  in
  let chunk = Arith.Expr.floor_div k (c splits) in
  let phase1 =
    Stmt.grid
      [ ("s", c splits); ("i", m); ("j", n) ]
      (fun idx ->
        match idx with
        | [ s; ii; jj ] ->
            let kk = Arith.Var.fresh "k0" in
            let ek = Arith.Expr.var kk in
            let global_k = Arith.Expr.(add (mul s chunk) ek) in
            Stmt.seq
              [ Stmt.Store (workspace, List.map Texpr.idx [ s; ii; jj ], Texpr.f 0.0);
                Stmt.for_ kk chunk
                  (Stmt.Store
                     ( workspace,
                       List.map Texpr.idx [ s; ii; jj ],
                       Texpr.(
                         load workspace [ s; ii; jj ]
                         +. (load x [ ii; global_k ] *. load w [ global_k; jj ]))
                     )) ]
        | _ -> assert false)
  in
  let phase2 =
    Stmt.grid
      [ ("i", m); ("j", n) ]
      (fun idx ->
        match idx with
        | [ ii; jj ] ->
            let s = Arith.Var.fresh "s1" in
            let es = Arith.Expr.var s in
            Stmt.seq
              [ Stmt.Store (y, List.map Texpr.idx [ ii; jj ], Texpr.f 0.0);
                Stmt.for_ s (c splits)
                  (Stmt.Store
                     ( y,
                       List.map Texpr.idx [ ii; jj ],
                       Texpr.(load y [ ii; jj ] +. load workspace [ es; ii; jj ]) ))
              ]
        | _ -> assert false)
  in
  Prim_func.create ~name ~params:[ x; w; y ]
    (Stmt.Alloc (workspace, Stmt.seq [ phase1; phase2 ]))
