(* Lower tensor programs (Stmt.t) to the flat imperative IR (Imp).

   Where {!Compile} translates each AST node to an OCaml closure (one
   indirect call per node per element), this module emits a flat
   instruction stream once per (kernel, shape signature):

   - symbolic shape variables resolve to constants, so loop extents,
     strides and constant-foldable index arithmetic become immediates;
   - loop-invariant *index* arithmetic is hoisted: every pure integer
     expression is emitted at the loop level of its deepest loop
     variable and memoized there (so a row base [i*K] is computed once
     per [i], not once per inner element);
   - buffer accesses are flat offsets into the raw storage arrays,
     with checked or unsafe element access chosen at compile time
     (see the proof-elision contract in DESIGN.md §12);
   - innermost single-store loops whose store value matches one of the
     {!Imp.floop_op} templates (strided reductions, streaming maps)
     fuse into a single [Imp.Floop] superinstruction whose trip loop
     runs natively, eliminating per-element dispatch entirely;
   - remaining innermost single-store loops are unrolled by 4, and
     float reductions whose accumulator address is loop-invariant are
     promoted to a register with a fused-dispatch multiply-accumulate
     ([Imp.Fma] — two IEEE roundings, bit-identical to the closure
     backend's [load +. (a *. b)]).

   Float expressions (loads included) are never hoisted or shared —
   they are emitted in statement order exactly where the closure
   backend would evaluate them — so store/load orderings, and thus
   results, are bit-identical to {!Interp} and {!Compile}. The only
   sanctioned divergences are on invalid programs (same contract as
   {!Compile}): the exact raise site of an out-of-bounds access can
   shift across an unrolled loop's pre-header, and elided kernels skip
   bounds checks that {!Analysis.Tir_safety} proved unreachable. *)

let fail fmt = Format.kasprintf (fun s -> raise (Interp.Runtime_error s)) fmt

(* ---------- lowering context ---------- *)

type item = Ins of Imp.instr | Lbl of int

(* One open loop level: its (reversed) item stream plus the memo table
   of pure index expressions already computed at this level. *)
type level = {
  mutable items : item list;
  mutable imemo : (Arith.Expr.t, int) Hashtbl.t;
}

type bslot = {
  index : int;  (* position in the program's buffer file *)
  is_float : bool;
  strides : int array;
  shape : int array;
}

type ctx = {
  sym : (int, int) Hashtbl.t;  (* shape var id -> constant *)
  var_reg : (int, int * int) Hashtbl.t;  (* loop var id -> (ireg, depth) *)
  bufs : (int, bslot) Hashtbl.t;
  mutable levels : level list;  (* head = innermost open loop *)
  mutable n_ireg : int;
  mutable n_freg : int;
  mutable n_buf : int;
  mutable n_lbl : int;
  ipool : (int, int) Hashtbl.t;  (* int constant -> level-0 ireg *)
  fpool : (float, int) Hashtbl.t;
  elide : bool;  (* proved safe: emit unsafe loads/stores *)
  (* reduction promotion: loads of (buffer id, these indices) read the
     accumulator register instead of memory *)
  mutable acc : (int * Texpr.t list * int) option;
}

let depth ctx = List.length ctx.levels - 1
let cur ctx = List.hd ctx.levels
let level_at ctx d = List.nth ctx.levels (depth ctx - d)

let emit_at ctx d ins =
  let lv = level_at ctx d in
  lv.items <- Ins ins :: lv.items

let emit ctx ins =
  let lv = cur ctx in
  lv.items <- Ins ins :: lv.items

let emit_lbl ctx l =
  let lv = cur ctx in
  lv.items <- Lbl l :: lv.items

let fresh_level () = { items = []; imemo = Hashtbl.create 16 }
let push_level ctx = ctx.levels <- fresh_level () :: ctx.levels

let pop_level ctx =
  match ctx.levels with
  | lv :: rest ->
      ctx.levels <- rest;
      List.rev lv.items
  | [] -> assert false

let splice ctx items =
  let lv = cur ctx in
  lv.items <- List.rev_append items lv.items

let new_ireg ctx = let r = ctx.n_ireg in ctx.n_ireg <- r + 1; r
let new_freg ctx = let r = ctx.n_freg in ctx.n_freg <- r + 1; r
let new_buf ctx = let r = ctx.n_buf in ctx.n_buf <- r + 1; r
let new_lbl ctx = let l = ctx.n_lbl in ctx.n_lbl <- l + 1; l

(* Constants live in a level-0 pool: materialized once, before any use
   (level-0 instructions always precede the statements compiled after
   them), and valid everywhere since they are never overwritten. *)
let iconst ctx v =
  match Hashtbl.find_opt ctx.ipool v with
  | Some r -> r
  | None ->
      let r = new_ireg ctx in
      emit_at ctx 0 (Imp.Iconst { dst = r; v });
      Hashtbl.replace ctx.ipool v r;
      r

let fconst ctx v =
  match Hashtbl.find_opt ctx.fpool v with
  | Some r -> r
  | None ->
      let r = new_freg ctx in
      emit_at ctx 0 (Imp.Fconst { dst = r; v });
      Hashtbl.replace ctx.fpool v r;
      r

let sym_lookup ctx (v : Arith.Var.t) = Hashtbl.find_opt ctx.sym v.Arith.Var.id

let slot_of ctx (b : Buffer.t) =
  match Hashtbl.find_opt ctx.bufs b.Buffer.id with
  | Some s -> s
  | None -> fail "unbound buffer %s" b.Buffer.name

let strides_of (shape : int array) =
  let rank = Array.length shape in
  let strides = Array.make rank 1 in
  for d = rank - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * shape.(d + 1)
  done;
  strides

(* ---------- index (Arith.Expr) lowering with hoisting ---------- *)

(* The hoisting level of a pure index expression: the depth of its
   deepest loop variable. Division and modulo by a divisor that is not
   a known nonzero constant can raise, so they are pinned to the
   current depth (inside any conditional) to preserve raise timing. *)
let rec arith_depth ctx (e : Arith.Expr.t) =
  match e with
  | Arith.Expr.Const _ -> 0
  | Arith.Expr.Var v -> (
      match sym_lookup ctx v with
      | Some _ -> 0
      | None -> (
          match Hashtbl.find_opt ctx.var_reg v.Arith.Var.id with
          | Some (_, d) -> d
          | None -> fail "unbound symbolic variable %s" (Arith.Var.name v)))
  | Arith.Expr.Add (a, b)
  | Arith.Expr.Sub (a, b)
  | Arith.Expr.Mul (a, b)
  | Arith.Expr.Min (a, b)
  | Arith.Expr.Max (a, b) ->
      max (arith_depth ctx a) (arith_depth ctx b)
  | Arith.Expr.Floor_div (a, b) | Arith.Expr.Floor_mod (a, b) -> (
      match Arith.Expr.eval_opt (sym_lookup ctx) b with
      | Some c when c <> 0 -> max (arith_depth ctx a) (arith_depth ctx b)
      | _ -> depth ctx)

let rec comp_arith ctx (e : Arith.Expr.t) : int =
  match Arith.Expr.eval_opt (sym_lookup ctx) e with
  | Some c -> iconst ctx c
  | None -> comp_arith_dyn ctx e

and comp_arith_dyn ctx (e : Arith.Expr.t) : int =
  let d = arith_depth ctx e in
  let lv = level_at ctx d in
  match Hashtbl.find_opt lv.imemo e with
  | Some r -> r
  | None ->
      let cfold x = Arith.Expr.eval_opt (sym_lookup ctx) x in
      let bin op a b =
        let ra = comp_arith ctx a in
        let rb = comp_arith ctx b in
        let r = new_ireg ctx in
        emit_at ctx d (Imp.Ibin { op; dst = r; a = ra; b = rb });
        r
      in
      let addi a imm =
        let ra = comp_arith ctx a in
        let r = new_ireg ctx in
        emit_at ctx d (Imp.Iaddi { dst = r; a = ra; imm });
        r
      in
      let muli a imm =
        let ra = comp_arith ctx a in
        let r = new_ireg ctx in
        emit_at ctx d (Imp.Imuli { dst = r; a = ra; imm });
        r
      in
      let r =
        match e with
        | Arith.Expr.Const c -> iconst ctx c
        | Arith.Expr.Var v -> (
            match sym_lookup ctx v with
            | Some c -> iconst ctx c
            | None -> (
                match Hashtbl.find_opt ctx.var_reg v.Arith.Var.id with
                | Some (r, _) -> r
                | None ->
                    fail "unbound symbolic variable %s" (Arith.Var.name v)))
        | Arith.Expr.Add (a, b) -> (
            match (cfold a, cfold b) with
            | Some c, _ -> addi b c
            | _, Some c -> addi a c
            | None, None -> bin Imp.Add a b)
        | Arith.Expr.Sub (a, b) -> (
            match cfold b with
            | Some c -> addi a (-c)
            | None -> bin Imp.Sub a b)
        | Arith.Expr.Mul (a, b) -> (
            match (cfold a, cfold b) with
            | Some c, _ -> muli b c
            | _, Some c -> muli a c
            | None, None -> bin Imp.Mul a b)
        | Arith.Expr.Floor_div (a, b) -> bin Imp.Fdivx a b
        | Arith.Expr.Floor_mod (a, b) -> bin Imp.Fmodx a b
        | Arith.Expr.Min (a, b) -> bin Imp.Min a b
        | Arith.Expr.Max (a, b) -> bin Imp.Max a b
      in
      Hashtbl.replace lv.imemo e r;
      r

(* ---------- expression lowering ---------- *)

type rcode = Ri of int | Rf of int

let to_f ctx = function
  | Rf r -> r
  | Ri r ->
      let d = new_freg ctx in
      emit ctx (Imp.Ffloat_of_int { dst = d; src = r });
      d

let to_i what = function
  | Ri r -> r
  | Rf _ -> fail "%s: expected an integer expression, got float" what

(* A register usable as a branch condition (zero = false). *)
let truth_reg ctx = function
  | Ri r -> r
  | Rf r ->
      let d = new_ireg ctx in
      emit ctx (Imp.Ftruth { dst = d; a = r });
      d

(* A normalized 0/1 truth value (for And/Or). *)
let truth01 ctx = function
  | Ri r ->
      let d = new_ireg ctx in
      emit ctx (Imp.Itruth { dst = d; a = r });
      d
  | Rf r ->
      let d = new_ireg ctx in
      emit ctx (Imp.Ftruth { dst = d; a = r });
      d

(* The static int/float kind of an expression, mirroring exactly the
   kind the closure backend's [code] variant would carry. *)
let rec is_float_expr (e : Texpr.t) =
  match e with
  | Texpr.Imm_int _ | Texpr.Idx _ -> false
  | Texpr.Imm_float _ -> true
  | Texpr.Load (b, _) -> Base.Dtype.is_float b.Buffer.dtype
  | Texpr.Binop (op, a, b) -> (
      match op with
      | Texpr.Add | Texpr.Sub | Texpr.Mul | Texpr.Div | Texpr.Floor_div
      | Texpr.Floor_mod | Texpr.Min | Texpr.Max ->
          is_float_expr a || is_float_expr b
      | Texpr.Pow -> true
      | Texpr.Bit_and | Texpr.Bit_or | Texpr.Bit_xor | Texpr.Shift_left
      | Texpr.Shift_right | Texpr.Eq | Texpr.Ne | Texpr.Lt | Texpr.Le
      | Texpr.Gt | Texpr.Ge | Texpr.And | Texpr.Or ->
          false)
  | Texpr.Unop (op, a) -> (
      match op with
      | Texpr.Neg | Texpr.Abs -> is_float_expr a
      | Texpr.Not -> false
      | Texpr.Exp | Texpr.Log | Texpr.Sqrt | Texpr.Rsqrt | Texpr.Tanh
      | Texpr.Sigmoid | Texpr.Erf | Texpr.Cos | Texpr.Sin ->
          true)
  | Texpr.Cast (dt, _) -> Base.Dtype.is_float dt
  | Texpr.Select (_, a, b) -> is_float_expr a || is_float_expr b

let rec comp_texpr ctx (e : Texpr.t) : rcode =
  match e with
  | Texpr.Imm_int c -> Ri (iconst ctx c)
  | Texpr.Imm_float x -> Rf (fconst ctx x)
  | Texpr.Idx ie -> Ri (comp_arith ctx ie)
  | Texpr.Load (b, idxs) -> (
      match ctx.acc with
      | Some (bid, sidxs, freg) when b.Buffer.id = bid && idxs = sidxs ->
          Rf freg
      | _ ->
          let s = slot_of ctx b in
          let addr = flat_addr ctx "load index" s idxs in
          if s.is_float then begin
            let d = new_freg ctx in
            emit ctx
              (if ctx.elide then
                 Imp.Fload_u { dst = d; buf = s.index; addr; off = 0 }
               else Imp.Fload { dst = d; buf = s.index; addr; off = 0 });
            Rf d
          end
          else begin
            let d = new_ireg ctx in
            emit ctx
              (if ctx.elide then
                 Imp.Iload_u { dst = d; buf = s.index; addr; off = 0 }
               else Imp.Iload { dst = d; buf = s.index; addr; off = 0 });
            Ri d
          end)
  | Texpr.Binop (op, a, b) -> comp_binop ctx op a b
  | Texpr.Unop (op, a) -> comp_unop ctx op a
  | Texpr.Cast (dt, a) -> (
      let c = comp_texpr ctx a in
      if Base.Dtype.is_float dt then Rf (to_f ctx c)
      else
        match c with
        | Ri _ as c -> c
        | Rf r ->
            let d = new_ireg ctx in
            emit ctx (Imp.Fint_of_float { dst = d; src = r });
            Ri d)
  | Texpr.Select (c, a, b) -> comp_select ctx c a b

(* Flat address of a buffer access. When every index is a pure index
   expression we build a single [Arith.Expr] for the whole flat offset
   so its loop-invariant parts hoist and memoize; otherwise indices
   are lowered individually in order (matching the closure backend's
   evaluation order) and combined with the static strides. *)
and flat_addr ctx what (s : bslot) (idxs : Texpr.t list) : int =
  let rank = Array.length s.strides in
  if List.length idxs <> rank then
    fail "rank mismatch: %d indices for rank-%d buffer" (List.length idxs) rank;
  let as_idx = List.map Texpr.as_index idxs in
  if List.for_all Option.is_some as_idx then
    let flat =
      List.fold_left
        (fun (d, acc) ie ->
          let term =
            Arith.Expr.mul (Option.get ie) (Arith.Expr.const s.strides.(d))
          in
          (d + 1, Arith.Expr.add acc term))
        (0, Arith.Expr.const 0) as_idx
      |> snd
    in
    comp_arith ctx flat
  else begin
    let codes = List.map (fun i -> to_i what (comp_texpr ctx i)) idxs in
    let addr = ref (-1) in
    List.iteri
      (fun d code ->
        let stride = s.strides.(d) in
        let term =
          if stride = 1 then code
          else begin
            let r = new_ireg ctx in
            emit ctx (Imp.Imuli { dst = r; a = code; imm = stride });
            r
          end
        in
        if !addr < 0 then addr := term
        else begin
          let r = new_ireg ctx in
          emit ctx (Imp.Ibin { op = Imp.Add; dst = r; a = !addr; b = term });
          addr := r
        end)
      codes;
    if !addr < 0 then iconst ctx 0 else !addr
  end

and comp_binop ctx op ea eb : rcode =
  let ca = comp_texpr ctx ea in
  let cb = comp_texpr ctx eb in
  let ibin op a b =
    let d = new_ireg ctx in
    emit ctx (Imp.Ibin { op; dst = d; a; b });
    Ri d
  in
  let fbin op a b =
    let d = new_freg ctx in
    emit ctx (Imp.Fbin { op; dst = d; a; b });
    Rf d
  in
  let arith iop fop =
    match (ca, cb) with
    | Ri x, Ri y -> ibin iop x y
    | _ ->
        let x = to_f ctx ca in
        let y = to_f ctx cb in
        fbin fop x y
  in
  let cmp c =
    match (ca, cb) with
    | Ri x, Ri y ->
        let d = new_ireg ctx in
        emit ctx (Imp.Icmp { op = c; dst = d; a = x; b = y });
        Ri d
    | _ ->
        let x = to_f ctx ca in
        let y = to_f ctx cb in
        let d = new_ireg ctx in
        emit ctx (Imp.Fcmp { op = c; dst = d; a = x; b = y });
        Ri d
  in
  let bitop what iop =
    let x = to_i what ca in
    let y = to_i what cb in
    ibin iop x y
  in
  let logic iop =
    let x = truth01 ctx ca in
    let y = truth01 ctx cb in
    ibin iop x y
  in
  match op with
  | Texpr.Add -> arith Imp.Add Imp.FAdd
  | Texpr.Sub -> arith Imp.Sub Imp.FSub
  | Texpr.Mul -> arith Imp.Mul Imp.FMul
  | Texpr.Div -> arith Imp.Div Imp.FDiv
  | Texpr.Floor_div -> (
      match (ca, cb) with
      | Ri x, Ri y -> ibin Imp.Fdiv x y
      | _ ->
          (* floor on doubles, matching the closure backend *)
          let x = to_f ctx ca in
          let y = to_f ctx cb in
          let q = new_freg ctx in
          emit ctx (Imp.Fbin { op = Imp.FDiv; dst = q; a = x; b = y });
          let d = new_freg ctx in
          emit ctx (Imp.Funop { op = Imp.FFloor; dst = d; a = q });
          Rf d)
  | Texpr.Floor_mod -> (
      match (ca, cb) with
      | Ri x, Ri y -> ibin Imp.Fmod x y
      | _ ->
          let x = to_f ctx ca in
          let y = to_f ctx cb in
          fbin Imp.FRem x y)
  | Texpr.Min -> arith Imp.Min Imp.FMin
  | Texpr.Max -> arith Imp.Max Imp.FMax
  | Texpr.Pow ->
      let x = to_f ctx ca in
      let y = to_f ctx cb in
      fbin Imp.FPow x y
  | Texpr.Bit_and -> bitop "bit_and" Imp.And_
  | Texpr.Bit_or -> bitop "bit_or" Imp.Or_
  | Texpr.Bit_xor -> bitop "bit_xor" Imp.Xor
  | Texpr.Shift_left -> bitop "shift_left" Imp.Shl
  | Texpr.Shift_right -> bitop "shift_right" Imp.Shr
  | Texpr.Eq -> cmp Imp.Eq
  | Texpr.Ne -> cmp Imp.Ne
  | Texpr.Lt -> cmp Imp.Lt
  | Texpr.Le -> cmp Imp.Le
  | Texpr.Gt -> cmp Imp.Gt
  | Texpr.Ge -> cmp Imp.Ge
  (* Both operands are evaluated before testing truth (no
     short-circuit), exactly like the interpreter and closures. *)
  | Texpr.And -> logic Imp.And_
  | Texpr.Or -> logic Imp.Or_

and comp_unop ctx op ea : rcode =
  let c = comp_texpr ctx ea in
  let f1 fop =
    let x = to_f ctx c in
    let d = new_freg ctx in
    emit ctx (Imp.Funop { op = fop; dst = d; a = x });
    Rf d
  in
  match op with
  | Texpr.Neg -> (
      match c with
      | Ri r ->
          let d = new_ireg ctx in
          emit ctx (Imp.Ineg { dst = d; a = r });
          Ri d
      | Rf r ->
          let d = new_freg ctx in
          emit ctx (Imp.Funop { op = Imp.FNeg; dst = d; a = r });
          Rf d)
  | Texpr.Abs -> (
      match c with
      | Ri r ->
          let d = new_ireg ctx in
          emit ctx (Imp.Iabs { dst = d; a = r });
          Ri d
      | Rf r ->
          let d = new_freg ctx in
          emit ctx (Imp.Funop { op = Imp.FAbs; dst = d; a = r });
          Rf d)
  | Texpr.Not ->
      let t = truth_reg ctx c in
      let d = new_ireg ctx in
      emit ctx (Imp.Inot { dst = d; a = t });
      Ri d
  | Texpr.Exp -> f1 Imp.FExp
  | Texpr.Log -> f1 Imp.FLog
  | Texpr.Sqrt -> f1 Imp.FSqrt
  | Texpr.Rsqrt -> f1 Imp.FRsqrt
  | Texpr.Tanh -> f1 Imp.FTanh
  | Texpr.Sigmoid -> f1 Imp.FSigmoid
  | Texpr.Erf -> f1 Imp.FErf
  | Texpr.Cos -> f1 Imp.FCos
  | Texpr.Sin -> f1 Imp.FSin

(* Select is lazy (like the closure backend's [if t () then x ()
   else y ()]): the unselected arm must not execute, so it lowers to
   branches. Index-expression memo entries created inside an arm are
   discarded afterwards — their instructions are conditionally
   skipped, so later code cannot rely on those registers. *)
and comp_select ctx ec ea eb : rcode =
  let t = truth_reg ctx (comp_texpr ctx ec) in
  let lelse = new_lbl ctx in
  let lend = new_lbl ctx in
  let isf = is_float_expr ea || is_float_expr eb in
  let snap = Hashtbl.copy (cur ctx).imemo in
  emit ctx (Imp.Jifnot { c = t; target = lelse });
  let res =
    if isf then begin
      let d = new_freg ctx in
      let ra = to_f ctx (comp_texpr ctx ea) in
      emit ctx (Imp.Fmov { dst = d; src = ra });
      emit ctx (Imp.Jmp { target = lend });
      (cur ctx).imemo <- Hashtbl.copy snap;
      emit_lbl ctx lelse;
      let rb = to_f ctx (comp_texpr ctx eb) in
      emit ctx (Imp.Fmov { dst = d; src = rb });
      Rf d
    end
    else begin
      let d = new_ireg ctx in
      let ra = to_i "select" (comp_texpr ctx ea) in
      emit ctx (Imp.Imov { dst = d; src = ra });
      emit ctx (Imp.Jmp { target = lend });
      (cur ctx).imemo <- Hashtbl.copy snap;
      emit_lbl ctx lelse;
      let rb = to_i "select" (comp_texpr ctx eb) in
      emit ctx (Imp.Imov { dst = d; src = rb });
      Ri d
    end
  in
  (cur ctx).imemo <- snap;
  emit_lbl ctx lend;
  res

(* ---------- statement lowering ---------- *)

let rec single_store = function
  | Stmt.Store (b, idxs, v) -> Some (b, idxs, v)
  | Stmt.Seq [ s ] -> single_store s
  | _ -> None

(* ---------- fused innermost loops (Imp.Floop) ---------- *)

(* Linear decomposition of an index expression with respect to the
   innermost loop variable: [lin ctx v e = Some (base, stride)] when
   [e = base + v * stride] with [base] free of [v] and [stride] a
   per-signature constant (shape variables resolve through [ctx.sym]).
   The base keeps the original subterm structure wherever possible so
   [comp_arith]'s memo shares registers with the generic lowering. *)
let rec lin ctx (var : Arith.Var.t) (e : Arith.Expr.t) :
    (Arith.Expr.t * int) option =
  if not (Arith.Var.Set.mem var (Arith.Expr.free_vars e)) then Some (e, 0)
  else
    match e with
    | Arith.Expr.Var x when x.Arith.Var.id = var.Arith.Var.id ->
        Some (Arith.Expr.const 0, 1)
    | Arith.Expr.Add (a, b) -> (
        match (lin ctx var a, lin ctx var b) with
        | Some (ba, sa), Some (bb, sb) -> Some (Arith.Expr.add ba bb, sa + sb)
        | _ -> None)
    | Arith.Expr.Sub (a, b) -> (
        match (lin ctx var a, lin ctx var b) with
        | Some (ba, sa), Some (bb, sb) -> Some (Arith.Expr.sub ba bb, sa - sb)
        | _ -> None)
    | Arith.Expr.Mul (a, b) -> (
        match (lin ctx var a, lin ctx var b) with
        | Some (ba, 0), Some (bb, sb) -> (
            match Arith.Expr.eval_opt (sym_lookup ctx) ba with
            | Some c -> Some (Arith.Expr.mul ba bb, c * sb)
            | None -> None)
        | Some (ba, sa), Some (bb, 0) -> (
            match Arith.Expr.eval_opt (sym_lookup ctx) bb with
            | Some c -> Some (Arith.Expr.mul ba bb, sa * c)
            | None -> None)
        | _ -> None)
    | _ -> None

let rec texpr_uses_var (var : Arith.Var.t) (e : Texpr.t) =
  match e with
  | Texpr.Imm_int _ | Texpr.Imm_float _ -> false
  | Texpr.Idx ie -> Arith.Var.Set.mem var (Arith.Expr.free_vars ie)
  | Texpr.Load (_, idxs) -> List.exists (texpr_uses_var var) idxs
  | Texpr.Binop (_, a, b) -> texpr_uses_var var a || texpr_uses_var var b
  | Texpr.Unop (_, a) | Texpr.Cast (_, a) -> texpr_uses_var var a
  | Texpr.Select (c, a, b) ->
      texpr_uses_var var c || texpr_uses_var var a || texpr_uses_var var b

let fbin_of_texpr_binop = function
  | Texpr.Add -> Some Imp.FAdd
  | Texpr.Sub -> Some Imp.FSub
  | Texpr.Mul -> Some Imp.FMul
  | Texpr.Div -> Some Imp.FDiv
  | Texpr.Min -> Some Imp.FMin
  | Texpr.Max -> Some Imp.FMax
  | Texpr.Pow -> Some Imp.FPow
  | _ -> None

let funop_of_texpr_unop = function
  | Texpr.Neg -> Some Imp.FNeg
  | Texpr.Abs -> Some Imp.FAbs
  | Texpr.Exp -> Some Imp.FExp
  | Texpr.Log -> Some Imp.FLog
  | Texpr.Sqrt -> Some Imp.FSqrt
  | Texpr.Rsqrt -> Some Imp.FRsqrt
  | Texpr.Tanh -> Some Imp.FTanh
  | Texpr.Sigmoid -> Some Imp.FSigmoid
  | Texpr.Erf -> Some Imp.FErf
  | Texpr.Cos -> Some Imp.FCos
  | Texpr.Sin -> Some Imp.FSin
  | Texpr.Not -> None

(* Try to fuse an innermost single-store loop into one {!Imp.Floop}
   superinstruction whose trip loop runs natively. Returns [false]
   (emitting nothing at the loop's level) when no template matches; the
   caller then falls back to the generic unrolled lowering.

   Operands are classified relative to the loop variable [var] and the
   store buffer:
   - a *stream* is a float load from a different buffer whose flat
     address is linear in [var] with a constant stride — its base
     address is hoisted integer arithmetic;
   - an *invariant* is any float-kind expression that mentions neither
     [var] nor the store buffer — it is compiled once, before the
     trip loop, and memoized by structural equality so repeats of the
     same subterm (softmax's [Load mx] in both passes of a value)
     share one register.

   Hoisting an invariant out of the loop is value-preserving because
   no store in the fused region can change what it reads: reductions
   defer their only store to the post-loop accumulator writeback, and
   maps reject values that load the destination buffer (the same
   restrict-style contract as register promotion in
   {!comp_unrolled}). The only observable shift — as with the
   unrolled pre-header — is the raise *site* of an out-of-bounds
   invariant load on an invalid program, and a zero-trip guard keeps
   even that from firing when the rolled loop would not have run. *)
let comp_floop ctx (var : Arith.Var.t) n_reg (b : Buffer.t) idxs v : bool =
  let s = slot_of ctx b in
  let flat_expr (sl : bslot) (il : Texpr.t list) : Arith.Expr.t option =
    let as_idx = List.map Texpr.as_index il in
    if
      List.length il <> Array.length sl.strides
      || not (List.for_all Option.is_some as_idx)
    then None
    else
      Some
        (List.fold_left
           (fun (d, acc) ie ->
             ( d + 1,
               Arith.Expr.add acc
                 (Arith.Expr.mul (Option.get ie)
                    (Arith.Expr.const sl.strides.(d))) ))
           (0, Arith.Expr.const 0) as_idx
        |> snd)
  in
  match (if s.is_float then flat_expr s idxs else None) with
  | None -> false
  | Some store_flat -> (
      match lin ctx var store_flat with
      | None -> false
      | Some (store_base, store_stride) ->
          let loads_store_buf e =
            List.exists
              (fun ((b' : Buffer.t), _) -> b'.Buffer.id = b.Buffer.id)
              (Texpr.loads e)
          in
          let invariant e =
            (not (texpr_uses_var var e)) && not (loads_store_buf e)
          in
          (* matching is pure: streams are described as (slot, base,
             stride) and invariants kept as Texpr; nothing is emitted
             until a template has matched *)
          let as_stream e =
            match e with
            | Texpr.Load (b', li) when b'.Buffer.id <> b.Buffer.id -> (
                let sl = slot_of ctx b' in
                if not sl.is_float then None
                else
                  match flat_expr sl li with
                  | None -> None
                  | Some fe -> lin ctx var fe |> Option.map (fun (be, st) -> (sl, be, st)))
            | _ -> None
          in
          let inv_memo = ref [] in
          let comp_inv e =
            match List.assoc_opt e !inv_memo with
            | Some r -> r
            | None ->
                let r = to_f ctx (comp_texpr ctx e) in
                inv_memo := (e, r) :: !inv_memo;
                r
          in
          let mk_stream (sl, base_e, stride) =
            {
              Imp.sbuf = sl.index;
              sbase = comp_arith ctx base_e;
              sstride = stride;
            }
          in
          let operand e =
            match as_stream e with
            | Some st -> Some (fun () -> Imp.Sstream (mk_stream st))
            | None ->
                if invariant e then Some (fun () -> Imp.Sreg (comp_inv e))
                else None
          in
          let is_self_load = function
            | Texpr.Load (b', li) -> b'.Buffer.id = b.Buffer.id && li = idxs
            | _ -> false
          in
          (* reductions: destination address invariant in [var], value
             [self `op` rhs] with the self-load on the left like the
             kernel zoo emits; rhs templates keep the closure backend's
             per-element association and rounding order *)
          let red_plan =
            if store_stride <> 0 then None
            else
              match v with
              | Texpr.Binop (Texpr.Add, sl, rhs) when is_self_load sl -> (
                  match rhs with
                  | Texpr.Binop (Texpr.Mul, x, y) when x = y -> (
                      (* both factors are the same term, so evaluating
                         it once feeds both IEEE-identically *)
                      match x with
                      | Texpr.Binop (Texpr.Sub, xs, c) when invariant c -> (
                          match as_stream xs with
                          | Some st ->
                              Some
                                (fun () ->
                                  Imp.Lsum_sq_sub (mk_stream st, comp_inv c))
                          | None -> None)
                      | _ -> (
                          match as_stream x with
                          | Some st ->
                              Some
                                (fun () ->
                                  let t = mk_stream st in
                                  Imp.Ldot (t, t))
                          | None -> None))
                  | Texpr.Binop (Texpr.Mul, x, y) -> (
                      match (as_stream x, as_stream y) with
                      | Some sx, Some sy ->
                          Some
                            (fun () ->
                              Imp.Ldot (mk_stream sx, mk_stream sy))
                      | _ -> None)
                  | Texpr.Unop (Texpr.Exp, Texpr.Binop (Texpr.Sub, xs, c))
                    when invariant c -> (
                      match as_stream xs with
                      | Some st ->
                          Some
                            (fun () ->
                              Imp.Lsum_exp_sub (mk_stream st, comp_inv c))
                      | None -> None)
                  | _ -> (
                      match as_stream rhs with
                      | Some st -> Some (fun () -> Imp.Lsum (mk_stream st))
                      | None -> None))
              | Texpr.Binop (Texpr.Max, sl, rhs) when is_self_load sl -> (
                  match as_stream rhs with
                  | Some st -> Some (fun () -> Imp.Lmax (mk_stream st))
                  | None -> None)
              | Texpr.Binop (Texpr.Min, sl, rhs) when is_self_load sl -> (
                  match as_stream rhs with
                  | Some st -> Some (fun () -> Imp.Lmin (mk_stream st))
                  | None -> None)
              | _ -> None
          in
          (* maps: destination address strides with [var]; the value
             must not read the destination buffer at all *)
          let map_plan =
            if store_stride = 0 || loads_store_buf v then None
            else if invariant v then
              Some (fun dst -> Imp.Lmap_copy { src = Imp.Sreg (comp_inv v); dst })
            else
              match v with
              | Texpr.Binop
                  ( Texpr.Div,
                    Texpr.Unop (Texpr.Exp, Texpr.Binop (Texpr.Sub, xs, c1)),
                    c2 )
                when invariant c1 && invariant c2 -> (
                  match as_stream xs with
                  | Some st ->
                      Some
                        (fun dst ->
                          Imp.Lmap_exp_sub_div
                            {
                              src = mk_stream st;
                              c1 = comp_inv c1;
                              c2 = comp_inv c2;
                              dst;
                            })
                  | None -> None)
              | Texpr.Binop
                  ( Texpr.Add,
                    Texpr.Binop
                      ( Texpr.Mul,
                        Texpr.Binop
                          (Texpr.Mul, Texpr.Binop (Texpr.Sub, xs, c1), c2),
                        g ),
                    bb )
                when invariant c1 && invariant c2 -> (
                  match (as_stream xs, as_stream g, as_stream bb) with
                  | Some sx, Some sg, Some sb ->
                      Some
                        (fun dst ->
                          Imp.Lmap_norm
                            {
                              src = mk_stream sx;
                              c1 = comp_inv c1;
                              c2 = comp_inv c2;
                              g = mk_stream sg;
                              b = mk_stream sb;
                              dst;
                            })
                  | _ -> None)
              | Texpr.Load _ -> (
                  match as_stream v with
                  | Some st ->
                      Some
                        (fun dst ->
                          Imp.Lmap_copy { src = Imp.Sstream (mk_stream st); dst })
                  | None -> None)
              | Texpr.Binop (op, ea, eb) when is_float_expr v -> (
                  match fbin_of_texpr_binop op with
                  | Some fop -> (
                      match (operand ea, operand eb) with
                      | Some ba, Some bb ->
                          Some
                            (fun dst ->
                              Imp.Lmap_bin { op = fop; a = ba (); b = bb (); dst })
                      | _ -> None)
                  | None -> None)
              | Texpr.Unop (op, x) -> (
                  match funop_of_texpr_unop op with
                  | Some fop -> (
                      match as_stream x with
                      | Some st ->
                          Some
                            (fun dst ->
                              Imp.Lmap_unop { op = fop; src = mk_stream st; dst })
                      | None -> None)
                  | None -> None)
              | _ -> None
          in
          (* emission: the zero-trip guard precedes everything emitted
             at this level (invariant loads, the accumulator
             load/store) so a loop the rolled lowering would skip
             raises nothing here either; hoisted integer base/address
             arithmetic lands at parent levels, before the guard,
             where it is pure and memo-safe *)
          let emit_guarded emit_body =
            push_level ctx;
            let l_done = new_lbl ctx in
            emit ctx (Imp.Jge { a = iconst ctx 0; b = n_reg; target = l_done });
            emit_body ();
            emit_lbl ctx l_done;
            let items = pop_level ctx in
            splice ctx items;
            true
          in
          (match (red_plan, map_plan) with
          | Some build, _ ->
              emit_guarded (fun () ->
                  let op = build () in
                  let out_addr = comp_arith ctx store_base in
                  let acc = new_freg ctx in
                  emit ctx
                    (if ctx.elide then
                       Imp.Fload_u
                         { dst = acc; buf = s.index; addr = out_addr; off = 0 }
                     else
                       Imp.Fload
                         { dst = acc; buf = s.index; addr = out_addr; off = 0 });
                  emit ctx
                    (Imp.Floop { n = n_reg; acc; op; unsafe = ctx.elide });
                  emit ctx
                    (if ctx.elide then
                       Imp.Fstore_u
                         { buf = s.index; addr = out_addr; off = 0; src = acc }
                     else
                       Imp.Fstore
                         { buf = s.index; addr = out_addr; off = 0; src = acc }))
          | None, Some build ->
              emit_guarded (fun () ->
                  let dst =
                    {
                      Imp.sbuf = s.index;
                      sbase = comp_arith ctx store_base;
                      sstride = store_stride;
                    }
                  in
                  let op = build dst in
                  emit ctx
                    (Imp.Floop { n = n_reg; acc = 0; op; unsafe = ctx.elide }))
          | None, None -> false))

let rec comp_stmt ctx (s : Stmt.t) : unit =
  match s with
  | Stmt.Seq ss -> List.iter (comp_stmt ctx) ss
  | Stmt.For { var; extent; kind = _; body } -> comp_for ctx var extent body
  | Stmt.Store (b, idxs, v) -> comp_store ctx b idxs v
  | Stmt.If (c, t, e) -> (
      let creg = truth_reg ctx (comp_texpr ctx c) in
      let lend = new_lbl ctx in
      let snap = Hashtbl.copy (cur ctx).imemo in
      match e with
      | None ->
          emit ctx (Imp.Jifnot { c = creg; target = lend });
          comp_stmt ctx t;
          (cur ctx).imemo <- snap;
          emit_lbl ctx lend
      | Some e ->
          let lelse = new_lbl ctx in
          emit ctx (Imp.Jifnot { c = creg; target = lelse });
          comp_stmt ctx t;
          emit ctx (Imp.Jmp { target = lend });
          (cur ctx).imemo <- Hashtbl.copy snap;
          emit_lbl ctx lelse;
          comp_stmt ctx e;
          (cur ctx).imemo <- snap;
          emit_lbl ctx lend)
  | Stmt.Alloc (b, body) ->
      let shape =
        Array.of_list
          (List.map
             (fun dim ->
               match Arith.Expr.eval_opt (sym_lookup ctx) dim with
               | Some c -> c
               | None ->
                   fail "alloc of %s: dimension %s is not shape-static"
                     b.Buffer.name (Arith.Expr.to_string dim))
             b.Buffer.shape)
      in
      let numel = Array.fold_left ( * ) 1 shape in
      let is_float = Base.Dtype.is_float b.Buffer.dtype in
      let index = new_buf ctx in
      Hashtbl.replace ctx.bufs b.Buffer.id
        { index; is_float; strides = strides_of shape; shape };
      emit ctx
        (if is_float then Imp.Alloc_f { buf = index; numel }
         else Imp.Alloc_i { buf = index; numel });
      comp_stmt ctx body;
      emit ctx
        (if is_float then Imp.Free_f { buf = index }
         else Imp.Free_i { buf = index })
  | Stmt.Assert (c, msg) ->
      let creg = truth_reg ctx (comp_texpr ctx c) in
      let lok = new_lbl ctx in
      emit ctx (Imp.Jif { c = creg; target = lok });
      emit ctx (Imp.Fail { msg = "assertion failed: " ^ msg });
      emit_lbl ctx lok
  | Stmt.Evaluate e -> ignore (comp_texpr ctx e)

and comp_store ctx b idxs v =
  let s = slot_of ctx b in
  let addr = flat_addr ctx "store index" s idxs in
  if s.is_float then begin
    let r = to_f ctx (comp_texpr ctx v) in
    emit ctx
      (if ctx.elide then Imp.Fstore_u { buf = s.index; addr; off = 0; src = r }
       else Imp.Fstore { buf = s.index; addr; off = 0; src = r })
  end
  else begin
    let r = to_i "store value" (comp_texpr ctx v) in
    emit ctx
      (if ctx.elide then Imp.Istore_u { buf = s.index; addr; off = 0; src = r }
       else Imp.Istore { buf = s.index; addr; off = 0; src = r })
  end

and comp_for ctx var extent body =
  let n_reg = comp_arith ctx extent in
  let d = depth ctx + 1 in
  let vreg = new_ireg ctx in
  let saved = Hashtbl.find_opt ctx.var_reg var.Arith.Var.id in
  Hashtbl.replace ctx.var_reg var.Arith.Var.id (vreg, d);
  (match single_store body with
   | Some (b, idxs, v) ->
       if not (comp_floop ctx var n_reg b idxs v) then
         comp_unrolled ctx var vreg n_reg b idxs v
   | None ->
       push_level ctx;
       comp_stmt ctx body;
       let items = pop_level ctx in
       let ltop = new_lbl ctx in
       let lend = new_lbl ctx in
       emit ctx (Imp.Iconst { dst = vreg; v = 0 });
       emit_lbl ctx ltop;
       emit ctx (Imp.Jge { a = vreg; b = n_reg; target = lend });
       splice ctx items;
       emit ctx (Imp.Iaddi { dst = vreg; a = vreg; imm = 1 });
       emit ctx (Imp.Jmp { target = ltop });
       emit_lbl ctx lend);
  (match saved with
   | Some x -> Hashtbl.replace ctx.var_reg var.Arith.Var.id x
   | None -> Hashtbl.remove ctx.var_reg var.Arith.Var.id)

(* Innermost loops whose body is a single store unroll by 4 (main loop
   on [n land -4], then a remainder loop). Emitting the copies
   sequentially preserves the exact store/load order of the rolled
   loop, so results stay bit-identical.

   When the store is a float reduction whose destination address is
   invariant in the loop variable and every load of the destination
   buffer uses exactly the store's indices, the accumulator is
   promoted to a register: loaded once before the loop, updated per
   element (with [Imp.Fma] for the canonical [acc + a*b] form), and
   stored once after. OCaml float registers and float arrays both hold
   full doubles, so promotion is bit-identical to the memory
   round-trip. *)
and comp_unrolled ctx var vreg n_reg b idxs v =
  let s = slot_of ctx b in
  let d = depth ctx + 1 in
  let promote =
    s.is_float
    && (let as_idx = List.map Texpr.as_index idxs in
        List.for_all Option.is_some as_idx
        && List.for_all
             (fun ie ->
               not
                 (Arith.Var.Set.mem var
                    (Arith.Expr.free_vars (Option.get ie))))
             as_idx)
    &&
    let self_loads =
      List.filter (fun ((b' : Buffer.t), _) -> b'.Buffer.id = b.Buffer.id)
        (Texpr.loads v)
    in
    self_loads <> [] && List.for_all (fun (_, li) -> li = idxs) self_loads
  in
  push_level ctx;
  let lv = cur ctx in
  let l_main = new_lbl ctx in
  let l_rem = new_lbl ctx in
  let l_exit = new_lbl ctx in
  let bind r = Hashtbl.replace ctx.var_reg var.Arith.Var.id (r, d) in
  let copy_var c =
    Hashtbl.reset lv.imemo;
    if c = 0 then bind vreg
    else begin
      let tc = new_ireg ctx in
      emit ctx (Imp.Iaddi { dst = tc; a = vreg; imm = c });
      bind tc
    end
  in
  let unroll_skeleton gen_body =
    let nu = new_ireg ctx in
    emit ctx (Imp.Ibin { op = Imp.And_; dst = nu; a = n_reg; b = iconst ctx (-4) });
    emit ctx (Imp.Iconst { dst = vreg; v = 0 });
    emit_lbl ctx l_main;
    emit ctx (Imp.Jge { a = vreg; b = nu; target = l_rem });
    for c = 0 to 3 do
      copy_var c;
      gen_body ()
    done;
    emit ctx (Imp.Iaddi { dst = vreg; a = vreg; imm = 4 });
    emit ctx (Imp.Jmp { target = l_main });
    emit_lbl ctx l_rem;
    emit ctx (Imp.Jge { a = vreg; b = n_reg; target = l_exit });
    copy_var 0;
    gen_body ();
    emit ctx (Imp.Iaddi { dst = vreg; a = vreg; imm = 1 });
    emit ctx (Imp.Jmp { target = l_rem });
    emit_lbl ctx l_exit
  in
  if promote then begin
    let l_done = new_lbl ctx in
    (* skip everything (including the accumulator load/store) when the
       loop runs zero times, like the rolled loop would *)
    emit ctx (Imp.Jge { a = iconst ctx 0; b = n_reg; target = l_done });
    let out_addr = flat_addr ctx "store index" s idxs in
    let acc = new_freg ctx in
    emit ctx
      (if ctx.elide then
         Imp.Fload_u { dst = acc; buf = s.index; addr = out_addr; off = 0 }
       else Imp.Fload { dst = acc; buf = s.index; addr = out_addr; off = 0 });
    let is_self_load = function
      | Texpr.Load (b', li) -> b'.Buffer.id = b.Buffer.id && li = idxs
      | _ -> false
    in
    let gen_body () =
      ctx.acc <- Some (b.Buffer.id, idxs, acc);
      (match v with
       | Texpr.Binop (Texpr.Add, sl, Texpr.Binop (Texpr.Mul, x, y))
         when is_self_load sl ->
           (* acc +. (x *. y): dispatch-fused, two roundings *)
           let rx = to_f ctx (comp_texpr ctx x) in
           let ry = to_f ctx (comp_texpr ctx y) in
           emit ctx (Imp.Fma { acc; a = rx; b = ry })
       | Texpr.Binop (Texpr.Add, Texpr.Binop (Texpr.Mul, x, y), sl)
         when is_self_load sl ->
           (* (x *. y) +. acc: keep the operand order of the closures *)
           let rx = to_f ctx (comp_texpr ctx x) in
           let ry = to_f ctx (comp_texpr ctx y) in
           let m = new_freg ctx in
           emit ctx (Imp.Fbin { op = Imp.FMul; dst = m; a = rx; b = ry });
           emit ctx (Imp.Fbin { op = Imp.FAdd; dst = acc; a = m; b = acc })
       | _ ->
           let r = to_f ctx (comp_texpr ctx v) in
           emit ctx (Imp.Fmov { dst = acc; src = r }));
      ctx.acc <- None
    in
    unroll_skeleton gen_body;
    emit ctx
      (if ctx.elide then
         Imp.Fstore_u { buf = s.index; addr = out_addr; off = 0; src = acc }
       else Imp.Fstore { buf = s.index; addr = out_addr; off = 0; src = acc });
    emit_lbl ctx l_done
  end
  else unroll_skeleton (fun () -> comp_store ctx b idxs v);
  let items = pop_level ctx in
  splice ctx items

(* ---------- entry points ---------- *)

type compiled = Base.Ndarray.t list -> unit

let lower_internal ?(sym_args = []) ?(elide_bounds = false) (f : Prim_func.t)
    (arg_shapes : int array list) =
  if List.length arg_shapes <> List.length f.Prim_func.params then
    fail "%s: expected %d buffer arguments, got %d" f.Prim_func.name
      (List.length f.Prim_func.params)
      (List.length arg_shapes);
  let sym = Hashtbl.create 16 in
  List.iter
    (fun ((v : Arith.Var.t), x) -> Hashtbl.replace sym v.Arith.Var.id x)
    sym_args;
  Compile.unify_shapes sym f arg_shapes;
  let ctx =
    {
      sym;
      var_reg = Hashtbl.create 16;
      bufs = Hashtbl.create 16;
      levels = [ fresh_level () ];
      n_ireg = 0;
      n_freg = 0;
      n_buf = 0;
      n_lbl = 0;
      ipool = Hashtbl.create 16;
      fpool = Hashtbl.create 16;
      elide = elide_bounds;
      acc = None;
    }
  in
  let param_slots =
    List.map2
      (fun (b : Buffer.t) shape ->
        let s =
          {
            index = new_buf ctx;
            is_float = Base.Dtype.is_float b.Buffer.dtype;
            strides = strides_of shape;
            shape;
          }
        in
        Hashtbl.replace ctx.bufs b.Buffer.id s;
        s)
      f.Prim_func.params arg_shapes
  in
  comp_stmt ctx f.Prim_func.body;
  let items = pop_level ctx in
  (* two-pass label resolution: count instruction pcs, then rewrite
     jump targets from label ids to absolute indices *)
  let lbl_pc = Array.make (max 1 ctx.n_lbl) 0 in
  let n_ins =
    List.fold_left
      (fun pc it ->
        match it with
        | Lbl l ->
            lbl_pc.(l) <- pc;
            pc
        | Ins _ -> pc + 1)
      0 items
  in
  let code = Array.make (max 1 n_ins) (Imp.Jmp { target = max 1 n_ins }) in
  ignore
    (List.fold_left
       (fun pc it ->
         match it with
         | Lbl _ -> pc
         | Ins ins ->
             code.(pc) <-
               (match ins with
               | Imp.Jmp { target } -> Imp.Jmp { target = lbl_pc.(target) }
               | Imp.Jif { c; target } ->
                   Imp.Jif { c; target = lbl_pc.(target) }
               | Imp.Jifnot { c; target } ->
                   Imp.Jifnot { c; target = lbl_pc.(target) }
               | Imp.Jge { a; b; target } ->
                   Imp.Jge { a; b; target = lbl_pc.(target) }
               | ins -> ins);
             pc + 1)
       0 items);
  let program =
    {
      Imp.code;
      n_iregs = max 1 ctx.n_ireg;
      n_fregs = max 1 ctx.n_freg;
      n_bufs = max 1 ctx.n_buf;
    }
  in
  (program, param_slots)

let lower ?sym_args ?elide_bounds f arg_shapes =
  fst (lower_internal ?sym_args ?elide_bounds f arg_shapes)

let compile ?sym_args ?elide_bounds (f : Prim_func.t)
    (arg_shapes : int array list) : compiled =
  let program, param_slots =
    lower_internal ?sym_args ?elide_bounds f arg_shapes
  in
  let iregs = Array.make program.Imp.n_iregs 0 in
  let fregs = Array.make program.Imp.n_fregs 0.0 in
  let fbufs = Array.make program.Imp.n_bufs [||] in
  let ibufs = Array.make program.Imp.n_bufs [||] in
  let name = f.Prim_func.name in
  let nparams = List.length param_slots in
  fun args ->
    if List.length args <> nparams then
      fail "%s: expected %d buffer arguments, got %d" name nparams
        (List.length args);
    List.iter2
      (fun (s : bslot) (nd : Base.Ndarray.t) ->
        if nd.Base.Ndarray.shape <> s.shape then
          fail "%s: argument shape changed since compilation" name;
        match nd.Base.Ndarray.data with
        | Base.Ndarray.Float_data a when s.is_float -> fbufs.(s.index) <- a
        | Base.Ndarray.Int_data a when not s.is_float -> ibufs.(s.index) <- a
        | Base.Ndarray.Float_data _ | Base.Ndarray.Int_data _ ->
            fail "%s: argument storage kind does not match declared dtype" name)
      param_slots args;
    Imp.exec program ~iregs ~fregs ~fbufs ~ibufs

let run ?sym_args ?elide_bounds (f : Prim_func.t) (args : Base.Ndarray.t list)
    =
  let c =
    compile ?sym_args ?elide_bounds f
      (List.map (fun nd -> nd.Base.Ndarray.shape) args)
  in
  c args
