(** Kernel execution backends and the backend-aware kernel cache.

    The [--backend interp|closure|imp] selector surfaces here: the VM
    and the eager baseline execute every kernel through {!Cache.run}
    with the backend chosen at creation. All three backends are
    bit-identical on valid programs; [Imp] (the default) additionally
    elides proved-redundant bounds checks when a prover is installed
    (see {!Imp_compile} and DESIGN.md §12). *)

type backend = Interp | Closure | Imp

val default : backend
(** [Imp]. *)

val all : backend list
val backend_name : backend -> string
val backend_of_string : string -> backend option

module Cache : sig
  type t

  val create : ?prove:(Prim_func.t -> bool) -> backend -> t
  (** [prove f] decides bounds-check elision for the [Imp] backend
      (default: never elide). The VM installs
      [Analysis.Proof.prover]; the callback is consulted once per
      kernel (per physical identity), not per signature. *)

  val run :
    t ->
    ?sym_args:(Arith.Var.t * int) list ->
    Prim_func.t ->
    Base.Ndarray.t list ->
    unit
  (** Execute through the cache: compile on first sight of a
      (kernel, backend-prefixed shape signature), replay after. *)

  val backend : t -> backend
  val hits : t -> int
  val misses : t -> int

  val compiled_count : t -> int
  (** Number of distinct (kernel, shape signature) entries compiled. *)

  val elision_of : t -> string -> bool option
  (** Whether bounds checks were elided for the named kernel; [None]
      if the kernel has not been seen. *)
end
