(** Generators for standard tensor programs.

    The legalization pass (graph operator → [call_tir]) and the model
    frontend build their loop-level kernels through this module. All
    shapes are symbolic, so one generated kernel serves every dynamic
    instantiation. Generated functions follow destination-passing
    style: inputs first, one output last. *)

type shape = Arith.Expr.t list

val unary :
  name:string -> op:(Texpr.t -> Texpr.t) -> shape -> Base.Dtype.t -> Prim_func.t
(** Elementwise unary kernel [out[i...] = op in[i...]]. *)

val binary :
  name:string ->
  op:(Texpr.t -> Texpr.t -> Texpr.t) ->
  shape ->
  Base.Dtype.t ->
  Prim_func.t
(** Elementwise binary kernel over two same-shape inputs. *)

val broadcast_binary :
  name:string ->
  op:(Texpr.t -> Texpr.t -> Texpr.t) ->
  lhs:shape ->
  rhs:shape ->
  Base.Dtype.t ->
  Prim_func.t
(** Binary kernel where [rhs] is a trailing-suffix broadcast of [lhs]
    (including the scalar case [rhs = []]).
    @raise Invalid_argument when [rhs] is not a suffix of [lhs]. *)

val cast_kernel :
  name:string -> shape -> from_:Base.Dtype.t -> to_:Base.Dtype.t -> Prim_func.t

val matmul :
  name:string ->
  ?batch:shape ->
  m:Arith.Expr.t ->
  k:Arith.Expr.t ->
  n:Arith.Expr.t ->
  Base.Dtype.t ->
  Prim_func.t
(** [X: (batch..., m, k)] times [W: (batch..., k, n)] into
    [Y: (batch..., m, n)]; [W] is unbatched [(k, n)] when [batch] is
    given but [shared_rhs] holds — see [matmul_nt] variants below. The
    plain form batches both operands. *)

val matmul_weights :
  name:string ->
  ?batch:shape ->
  m:Arith.Expr.t ->
  k:Arith.Expr.t ->
  n:Arith.Expr.t ->
  Base.Dtype.t ->
  Prim_func.t
(** [X: (batch..., m, k)] times a shared unbatched weight [W: (k, n)]
    — the dense-layer case. *)

val transpose :
  name:string -> shape -> perm:int list -> Base.Dtype.t -> Prim_func.t
(** Output dimension [d] reads input dimension [perm.(d)]. *)

val reshape : name:string -> from_:shape -> to_:shape -> Base.Dtype.t -> Prim_func.t
(** Row-major relayout; the element counts must be provably equal for
    well-formed use (checked by graph-level deduction, not here). *)

val reduce :
  name:string ->
  kind:[ `Sum | `Max | `Mean ] ->
  shape ->
  Base.Dtype.t ->
  Prim_func.t
(** Reduce over the last axis: [(d0..dk, r)] to [(d0..dk)]. *)

val softmax_last : name:string -> shape -> Base.Dtype.t -> Prim_func.t
(** Numerically-stable softmax over the last axis. *)

val softmax_last_reassoc :
  name:string -> ?bias:float -> shape -> Base.Dtype.t -> Prim_func.t
(** Same mathematical function as {!softmax_last}, but the normalizer
    is accumulated as [sum (exp (x - mx) + bias)] with a [- n * bias]
    correction afterwards — an exact algebraic identity whose rounding
    error is amplified by the biased partial sums. The seeded
    reassociation defect for the round-off certifier's golden tests
    ({!Analysis.Fp}); [bias] defaults to [8192]. *)

val layer_norm :
  name:string ->
  shape ->
  eps:float ->
  Base.Dtype.t ->
  Prim_func.t
(** Layer normalization over the last axis with scale and bias;
    inputs [(x, gamma, beta)]. *)

val rms_norm :
  name:string ->
  shape ->
  eps:float ->
  Base.Dtype.t ->
  Prim_func.t
(** RMS normalization over the last axis with a learned scale; inputs
    [(x, weight)]. *)

val take_rows :
  name:string ->
  rows:Arith.Expr.t ->
  width:Arith.Expr.t ->
  num_indices:Arith.Expr.t ->
  Base.Dtype.t ->
  Prim_func.t
(** Embedding lookup: [out[i, j] = table[indices[i], j]], with
    [indices] an [I32] tensor. Inputs [(table, indices)]. *)

val decode_q4 :
  name:string -> k:Arith.Expr.t -> n:Arith.Expr.t -> Base.Dtype.t -> Prim_func.t
(** Figure 9's custom 4-bit quantization decode: unpack 8 nibbles per
    [U32] word and scale per 32-wide group. Inputs
    [(wdata: (k, n/8) u32, wscale: (k, n/32) f)], output [(k, n) f]. *)

val decode_q3 :
  name:string -> k:Arith.Expr.t -> n:Arith.Expr.t -> Base.Dtype.t -> Prim_func.t
(** 3-bit variant used for the iPhone Llama2 configuration of Table 3:
    ten 3-bit values per [U32] word (2 bits wasted). *)

val split_k_matmul :
  name:string ->
  m:Arith.Expr.t ->
  k:Arith.Expr.t ->
  n:Arith.Expr.t ->
  splits:int ->
  Base.Dtype.t ->
  Prim_func.t
(** Stream-K-style two-phase matmul with a global workspace for
    partial accumulations (Figure 11's lifting candidate). [k] must be
    divisible by [splits] at runtime. *)

(** {1 Common scalar op builders} *)

val relu : Texpr.t -> Texpr.t
val silu : Texpr.t -> Texpr.t
val gelu : Texpr.t -> Texpr.t
