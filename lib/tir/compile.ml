(* Compile a tensor program to nested OCaml closures.

   The reference interpreter ({!Interp}) re-traverses the Texpr AST per
   tensor element, boxing every value in an [I]/[F] variant, resolving
   loop variables through a hashtable and converting index lists to
   arrays inside every load and store. This module performs that work
   once per (kernel, shape signature):

   - symbolic shape variables are resolved to concrete ints at compile
     time, so extents and strides become constants in the closures;
   - loop variables live in a flat mutable [int array], indexed by a
     slot assigned at compile time;
   - buffer accesses are lowered to precomputed-stride flat indexing
     directly on the raw [float array]/[int array] storage;
   - arithmetic dispatches on the int/float kind of each expression
     once at compile time — the generated closures are monomorphic.

   The compiled path is the numeric hot path (VM numeric mode, eager
   baseline, constant folding); {!Interp} remains the reference
   semantics that this module is differential-tested against
   (test/test_compile.ml). Divergences from the interpreter are
   limited to invalid programs: per-axis bounds checks collapse into
   the flat bounds check of OCaml array access, and kind errors (e.g.
   a float used as an index) are reported at compile time instead of
   first execution. *)

let fail fmt = Format.kasprintf (fun s -> raise (Interp.Runtime_error s)) fmt

(* Mutable storage for one buffer. Parameter slots are re-pointed at
   the caller's raw arrays on every invocation; alloc slots get a fresh
   zeroed array when their [Alloc] scope is entered (matching the
   interpreter, which creates a fresh Ndarray per execution). *)
type slot = {
  mutable fdata : float array;
  mutable idata : int array;
  is_float : bool;
  strides : int array;
  shape : int array;
}

type ctx = {
  ivars : int array;  (* loop variable values, by compile-time slot *)
  var_slot : (int, int) Hashtbl.t;  (* loop var id -> ivars index *)
  sym : (int, int) Hashtbl.t;  (* symbolic shape var id -> constant *)
  bufs : (int, slot) Hashtbl.t;  (* buffer id -> storage slot *)
}

let strides_of (shape : int array) =
  let rank = Array.length shape in
  let strides = Array.make rank 1 in
  for d = rank - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * shape.(d + 1)
  done;
  strides

let rec collect_loop_vars acc (s : Stmt.t) =
  match s with
  | Stmt.Seq ss -> List.fold_left collect_loop_vars acc ss
  | Stmt.For r -> collect_loop_vars (r.var :: acc) r.body
  | Stmt.If (_, t, e) -> (
      let acc = collect_loop_vars acc t in
      match e with Some e -> collect_loop_vars acc e | None -> acc)
  | Stmt.Alloc (_, body) -> collect_loop_vars acc body
  | Stmt.Store _ | Stmt.Assert _ | Stmt.Evaluate _ -> acc

(* ---------- index (Arith.Expr) compilation ---------- *)

let rec comp_arith ctx (e : Arith.Expr.t) : unit -> int =
  (* Fold to a constant when every variable is a resolved shape var. *)
  match
    Arith.Expr.eval_opt (fun v -> Hashtbl.find_opt ctx.sym v.Arith.Var.id) e
  with
  | Some c -> fun () -> c
  | None -> comp_arith_dyn ctx e

and comp_arith_dyn ctx (e : Arith.Expr.t) : unit -> int =
  match e with
  | Arith.Expr.Const c -> fun () -> c
  | Arith.Expr.Var v -> (
      match Hashtbl.find_opt ctx.sym v.Arith.Var.id with
      | Some c -> fun () -> c
      | None -> (
          match Hashtbl.find_opt ctx.var_slot v.Arith.Var.id with
          | Some s ->
              let iv = ctx.ivars in
              fun () -> Array.unsafe_get iv s
          | None -> fail "unbound symbolic variable %s" (Arith.Var.name v)))
  | Arith.Expr.Add (a, b) ->
      let a = comp_arith ctx a and b = comp_arith ctx b in
      fun () -> a () + b ()
  | Arith.Expr.Sub (a, b) ->
      let a = comp_arith ctx a and b = comp_arith ctx b in
      fun () -> a () - b ()
  | Arith.Expr.Mul (a, b) ->
      let a = comp_arith ctx a and b = comp_arith ctx b in
      fun () -> a () * b ()
  | Arith.Expr.Floor_div (a, b) ->
      let a = comp_arith ctx a and b = comp_arith ctx b in
      fun () ->
        let d = b () in
        if d = 0 then raise Division_by_zero else Arith.Expr.fdiv (a ()) d
  | Arith.Expr.Floor_mod (a, b) ->
      let a = comp_arith ctx a and b = comp_arith ctx b in
      fun () ->
        let d = b () in
        if d = 0 then raise Division_by_zero else Arith.Expr.fmod (a ()) d
  | Arith.Expr.Min (a, b) ->
      let a = comp_arith ctx a and b = comp_arith ctx b in
      fun () -> min (a ()) (b ())
  | Arith.Expr.Max (a, b) ->
      let a = comp_arith ctx a and b = comp_arith ctx b in
      fun () -> max (a ()) (b ())

(* ---------- expression compilation ---------- *)

(* An expression compiles to a closure of its statically known kind;
   the kind mirrors exactly what the interpreter's boxed values would
   carry at runtime. *)
type code = I of (unit -> int) | F of (unit -> float)

let fcode = function
  | F f -> f
  | I f -> fun () -> float_of_int (f ())

let icode what = function
  | I f -> f
  | F _ -> fail "%s: expected an integer expression, got float" what

let truth_code = function
  | I f -> fun () -> f () <> 0
  | F f -> fun () -> f () <> 0.0

let slot_of ctx (b : Buffer.t) =
  match Hashtbl.find_opt ctx.bufs b.Buffer.id with
  | Some s -> s
  | None -> fail "unbound buffer %s" b.Buffer.name

let comp_flat (s : slot) (idxs : (unit -> int) list) : unit -> int =
  let codes = Array.of_list idxs in
  let strides = s.strides in
  if Array.length codes <> Array.length strides then
    fail "rank mismatch: %d indices for rank-%d buffer" (Array.length codes)
      (Array.length strides);
  match codes with
  | [||] -> fun () -> 0
  | [| i0 |] -> i0
  | [| i0; i1 |] ->
      let s0 = strides.(0) in
      fun () -> (i0 () * s0) + i1 ()
  | [| i0; i1; i2 |] ->
      let s0 = strides.(0) and s1 = strides.(1) in
      fun () -> (i0 () * s0) + (i1 () * s1) + i2 ()
  | [| i0; i1; i2; i3 |] ->
      let s0 = strides.(0) and s1 = strides.(1) and s2 = strides.(2) in
      fun () -> (i0 () * s0) + (i1 () * s1) + (i2 () * s2) + i3 ()
  | codes ->
      fun () ->
        let acc = ref 0 in
        Array.iteri (fun d c -> acc := !acc + (c () * strides.(d))) codes;
        !acc

let rec comp_expr ctx (e : Texpr.t) : code =
  match e with
  | Texpr.Imm_int c -> I (fun () -> c)
  | Texpr.Imm_float x -> F (fun () -> x)
  | Texpr.Idx ie -> I (comp_arith ctx ie)
  | Texpr.Load (b, idxs) ->
      let s = slot_of ctx b in
      let idx_codes =
        List.map (fun i -> icode "load index" (comp_expr ctx i)) idxs
      in
      let flat = comp_flat s idx_codes in
      if s.is_float then F (fun () -> s.fdata.(flat ()))
      else I (fun () -> s.idata.(flat ()))
  | Texpr.Binop (op, a, b) -> comp_binop ctx op a b
  | Texpr.Unop (op, a) -> comp_unop op (comp_expr ctx a)
  | Texpr.Cast (dt, a) -> (
      let c = comp_expr ctx a in
      if Base.Dtype.is_float dt then F (fcode c)
      else match c with I _ as c -> c | F f -> I (fun () -> int_of_float (f ())))
  | Texpr.Select (c, a, b) -> (
      let t = truth_code (comp_expr ctx c) in
      match (comp_expr ctx a, comp_expr ctx b) with
      | I x, I y -> I (fun () -> if t () then x () else y ())
      | x, y ->
          let x = fcode x and y = fcode y in
          F (fun () -> if t () then x () else y ()))

and comp_binop ctx op ea eb : code =
  let ca = comp_expr ctx ea and cb = comp_expr ctx eb in
  let int2 f =
    match (ca, cb) with
    | I x, I y -> Some (f x y)
    | _ -> None
  in
  let arith fi ff =
    match int2 fi with
    | Some c -> c
    | None ->
        let x = fcode ca and y = fcode cb in
        F (ff x y)
  in
  let cmp fi ff =
    match (ca, cb) with
    | I x, I y -> I (fun () -> if fi (x ()) (y ()) then 1 else 0)
    | _ ->
        let x = fcode ca and y = fcode cb in
        I (fun () -> if ff (x ()) (y ()) then 1 else 0)
  in
  let bitop what f =
    let x = icode what ca and y = icode what cb in
    I (fun () -> f (x ()) (y ()))
  in
  match op with
  | Texpr.Add -> arith (fun x y -> I (fun () -> x () + y ())) (fun x y () -> x () +. y ())
  | Texpr.Sub -> arith (fun x y -> I (fun () -> x () - y ())) (fun x y () -> x () -. y ())
  | Texpr.Mul -> arith (fun x y -> I (fun () -> x () * y ())) (fun x y () -> x () *. y ())
  | Texpr.Div ->
      arith
        (fun x y ->
          I
            (fun () ->
              let xv = x () and yv = y () in
              if yv = 0 then fail "integer division by zero" else xv / yv))
        (fun x y () -> x () /. y ())
  | Texpr.Floor_div ->
      arith
        (fun x y ->
          I
            (fun () ->
              let xv = x () and yv = y () in
              if yv = 0 then fail "floordiv by zero"
              else Arith.Expr.fdiv xv yv))
        (* floor on doubles, without the interpreter's historical
           truncation through int (fixed in both paths). *)
        (fun x y () -> floor (x () /. y ()))
  | Texpr.Floor_mod ->
      arith
        (fun x y ->
          I
            (fun () ->
              let xv = x () and yv = y () in
              if yv = 0 then fail "floormod by zero"
              else Arith.Expr.fmod xv yv))
        (fun x y () -> Float.rem (x ()) (y ()))
  | Texpr.Min ->
      arith
        (fun x y -> I (fun () -> min (x ()) (y ())))
        (fun x y () -> Float.min (x ()) (y ()))
  | Texpr.Max ->
      arith
        (fun x y -> I (fun () -> max (x ()) (y ())))
        (fun x y () -> Float.max (x ()) (y ()))
  | Texpr.Pow ->
      let x = fcode ca and y = fcode cb in
      F (fun () -> Float.pow (x ()) (y ()))
  | Texpr.Bit_and -> bitop "bit_and" ( land )
  | Texpr.Bit_or -> bitop "bit_or" ( lor )
  | Texpr.Bit_xor -> bitop "bit_xor" ( lxor )
  | Texpr.Shift_left -> bitop "shift_left" ( lsl )
  | Texpr.Shift_right -> bitop "shift_right" ( asr )
  | Texpr.Eq -> cmp ( = ) ( = )
  | Texpr.Ne -> cmp ( <> ) ( <> )
  | Texpr.Lt -> cmp ( < ) ( < )
  | Texpr.Le -> cmp ( <= ) ( <= )
  | Texpr.Gt -> cmp ( > ) ( > )
  | Texpr.Ge -> cmp ( >= ) ( >= )
  | Texpr.And ->
      (* The interpreter evaluates both operands before testing truth;
         keep that (no short-circuit) so failure behavior matches. *)
      let x = truth_code ca and y = truth_code cb in
      I
        (fun () ->
          let xv = x () in
          let yv = y () in
          if xv && yv then 1 else 0)
  | Texpr.Or ->
      let x = truth_code ca and y = truth_code cb in
      I
        (fun () ->
          let xv = x () in
          let yv = y () in
          if xv || yv then 1 else 0)

and comp_unop op c : code =
  let f1 g = let x = fcode c in F (fun () -> g (x ())) in
  match op with
  | Texpr.Neg -> (
      match c with
      | I x -> I (fun () -> -x ())
      | F x -> F (fun () -> -.x ()))
  | Texpr.Exp -> f1 exp
  | Texpr.Log -> f1 log
  | Texpr.Sqrt -> f1 sqrt
  | Texpr.Rsqrt -> f1 (fun x -> 1.0 /. sqrt x)
  | Texpr.Tanh -> f1 tanh
  | Texpr.Sigmoid -> f1 (fun x -> 1.0 /. (1.0 +. exp (-.x)))
  | Texpr.Erf -> f1 Interp.erf
  | Texpr.Abs -> (
      match c with
      | I x -> I (fun () -> abs (x ()))
      | F x -> F (fun () -> abs_float (x ())))
  | Texpr.Not ->
      let t = truth_code c in
      I (fun () -> if t () then 0 else 1)
  | Texpr.Cos -> f1 cos
  | Texpr.Sin -> f1 sin

(* ---------- statement compilation ---------- *)

let rec comp_stmt ctx (s : Stmt.t) : unit -> unit =
  match s with
  | Stmt.Seq ss -> (
      match Array.of_list (List.map (comp_stmt ctx) ss) with
      | [||] -> fun () -> ()
      | [| a |] -> a
      | [| a; b |] ->
          fun () ->
            a ();
            b ()
      | [| a; b; c |] ->
          fun () ->
            a ();
            b ();
            c ()
      | cs -> fun () -> Array.iter (fun f -> f ()) cs)
  | Stmt.For { var; extent; kind = _; body } ->
      let ext = comp_arith ctx extent in
      let slot =
        match Hashtbl.find_opt ctx.var_slot var.Arith.Var.id with
        | Some s -> s
        | None -> fail "loop variable %s has no slot" (Arith.Var.name var)
      in
      let body = comp_stmt ctx body in
      let iv = ctx.ivars in
      fun () ->
        let n = ext () in
        for i = 0 to n - 1 do
          Array.unsafe_set iv slot i;
          body ()
        done
  | Stmt.Store (b, idxs, v) ->
      let s = slot_of ctx b in
      let idx_codes =
        List.map (fun i -> icode "store index" (comp_expr ctx i)) idxs
      in
      let flat = comp_flat s idx_codes in
      if s.is_float then
        let v = fcode (comp_expr ctx v) in
        fun () ->
          let i = flat () in
          let x = v () in
          s.fdata.(i) <- x
      else
        let v = icode "store value" (comp_expr ctx v) in
        fun () ->
          let i = flat () in
          let x = v () in
          s.idata.(i) <- x
  | Stmt.If (c, t, e) -> (
      let c = truth_code (comp_expr ctx c) in
      let t = comp_stmt ctx t in
      match e with
      | Some e ->
          let e = comp_stmt ctx e in
          fun () -> if c () then t () else e ()
      | None -> fun () -> if c () then t ())
  | Stmt.Alloc (b, body) ->
      (* Alloc shapes may reference symbolic shape variables (resolved
         at compile time) but not loop variables. *)
      let shape =
        Array.of_list
          (List.map
             (fun dim ->
               match
                 Arith.Expr.eval_opt
                   (fun v -> Hashtbl.find_opt ctx.sym v.Arith.Var.id)
                   dim
               with
               | Some c -> c
               | None ->
                   fail "alloc of %s: dimension %s is not shape-static"
                     b.Buffer.name (Arith.Expr.to_string dim))
             b.Buffer.shape)
      in
      let numel = Array.fold_left ( * ) 1 shape in
      let s =
        {
          fdata = [||];
          idata = [||];
          is_float = Base.Dtype.is_float b.Buffer.dtype;
          strides = strides_of shape;
          shape;
        }
      in
      Hashtbl.replace ctx.bufs b.Buffer.id s;
      let body = comp_stmt ctx body in
      if s.is_float then (fun () ->
        s.fdata <- Array.make numel 0.0;
        body ();
        s.fdata <- [||])
      else fun () ->
        s.idata <- Array.make numel 0;
        body ();
        s.idata <- [||]
  | Stmt.Assert (c, msg) ->
      let c = truth_code (comp_expr ctx c) in
      fun () -> if not (c ()) then fail "assertion failed: %s" msg
  | Stmt.Evaluate e -> (
      match comp_expr ctx e with
      | I f -> fun () -> ignore (f ())
      | F f -> fun () -> ignore (f ()))

(* ---------- shape unification (same discipline as Interp) ---------- *)

let unify_shapes sym (f : Prim_func.t) (arg_shapes : int array list) =
  let deferred = ref [] in
  List.iter2
    (fun (b : Buffer.t) (actual : int array) ->
      let declared = b.Buffer.shape in
      if List.length declared <> Array.length actual then
        fail "%s: buffer %s rank mismatch (declared %d, got %d)"
          f.Prim_func.name b.Buffer.name (List.length declared)
          (Array.length actual);
      List.iteri
        (fun d dim ->
          match dim with
          | Arith.Expr.Const c ->
              if c <> actual.(d) then
                fail "%s: buffer %s dim %d mismatch (declared %d, got %d)"
                  f.Prim_func.name b.Buffer.name d c actual.(d)
          | Arith.Expr.Var v -> (
              match Hashtbl.find_opt sym v.Arith.Var.id with
              | Some bound ->
                  if bound <> actual.(d) then
                    fail
                      "%s: symbolic variable %s bound inconsistently (%d vs %d)"
                      f.Prim_func.name (Arith.Var.name v) bound actual.(d)
              | None -> Hashtbl.replace sym v.Arith.Var.id actual.(d))
          | Arith.Expr.Add _ | Arith.Expr.Sub _ | Arith.Expr.Mul _
          | Arith.Expr.Floor_div _ | Arith.Expr.Floor_mod _ | Arith.Expr.Min _
          | Arith.Expr.Max _ ->
              deferred := (b.Buffer.name, d, dim, actual.(d)) :: !deferred)
        declared)
    f.Prim_func.params arg_shapes;
  List.iter
    (fun (bname, d, dim, actual) ->
      let lookup (v : Arith.Var.t) =
        match Hashtbl.find_opt sym v.Arith.Var.id with
        | Some x -> x
        | None -> fail "unbound symbolic variable %s" (Arith.Var.name v)
      in
      let v = Arith.Expr.eval lookup dim in
      if v <> actual then
        fail "%s: buffer %s dim %d: %s = %d but argument has %d"
          f.Prim_func.name bname d (Arith.Expr.to_string dim) v actual)
    !deferred

(* ---------- entry points ---------- *)

type compiled = Base.Ndarray.t list -> unit

let compile ?(sym_args = []) (f : Prim_func.t) (arg_shapes : int array list) :
    compiled =
  if List.length arg_shapes <> List.length f.Prim_func.params then
    fail "%s: expected %d buffer arguments, got %d" f.Prim_func.name
      (List.length f.Prim_func.params)
      (List.length arg_shapes);
  let sym = Hashtbl.create 16 in
  List.iter
    (fun ((v : Arith.Var.t), x) -> Hashtbl.replace sym v.Arith.Var.id x)
    sym_args;
  unify_shapes sym f arg_shapes;
  let loop_vars = collect_loop_vars [] f.Prim_func.body in
  let var_slot = Hashtbl.create 16 in
  List.iter
    (fun (v : Arith.Var.t) ->
      if not (Hashtbl.mem var_slot v.Arith.Var.id) then
        Hashtbl.replace var_slot v.Arith.Var.id (Hashtbl.length var_slot))
    loop_vars;
  let ctx =
    {
      ivars = Array.make (max 1 (Hashtbl.length var_slot)) 0;
      var_slot;
      sym;
      bufs = Hashtbl.create 16;
    }
  in
  let param_slots =
    List.map2
      (fun (b : Buffer.t) shape ->
        let s =
          {
            fdata = [||];
            idata = [||];
            is_float = Base.Dtype.is_float b.Buffer.dtype;
            strides = strides_of shape;
            shape;
          }
        in
        Hashtbl.replace ctx.bufs b.Buffer.id s;
        s)
      f.Prim_func.params arg_shapes
  in
  let body = comp_stmt ctx f.Prim_func.body in
  let name = f.Prim_func.name in
  let nparams = List.length param_slots in
  fun args ->
    if List.length args <> nparams then
      fail "%s: expected %d buffer arguments, got %d" name nparams
        (List.length args);
    List.iter2
      (fun (s : slot) (nd : Base.Ndarray.t) ->
        if nd.Base.Ndarray.shape <> s.shape then
          fail "%s: argument shape changed since compilation" name;
        match nd.Base.Ndarray.data with
        | Base.Ndarray.Float_data a when s.is_float -> s.fdata <- a
        | Base.Ndarray.Int_data a when not s.is_float -> s.idata <- a
        | Base.Ndarray.Float_data _ | Base.Ndarray.Int_data _ ->
            fail "%s: argument storage kind does not match declared dtype" name)
      param_slots args;
    body ()

let run ?sym_args (f : Prim_func.t) (args : Base.Ndarray.t list) =
  let c =
    compile ?sym_args f (List.map (fun nd -> nd.Base.Ndarray.shape) args)
  in
  c args

(* ---------- compiled-kernel cache ---------- *)

module Cache = struct
  type entry = { func : Prim_func.t; table : (string, compiled) Hashtbl.t }

  type t = {
    entries : (string, entry) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create () = { entries = Hashtbl.create 32; hits = 0; misses = 0 }
  let hits t = t.hits
  let misses t = t.misses

  let compiled_count t =
    Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.table) t.entries 0

  let sig_key (shapes : int array list) (sym_args : (Arith.Var.t * int) list) =
    let b = Stdlib.Buffer.create 32 in
    List.iter
      (fun s ->
        Stdlib.Buffer.add_char b '[';
        Array.iter
          (fun d ->
            Stdlib.Buffer.add_string b (string_of_int d);
            Stdlib.Buffer.add_char b 'x')
          s;
        Stdlib.Buffer.add_char b ']')
      shapes;
    List.iter
      (fun (_, x) ->
        Stdlib.Buffer.add_char b '/';
        Stdlib.Buffer.add_string b (string_of_int x))
      sym_args;
    Stdlib.Buffer.contents b

  let run t ?(sym_args = []) (f : Prim_func.t) (args : Base.Ndarray.t list) =
    let shapes = List.map (fun nd -> nd.Base.Ndarray.shape) args in
    let entry =
      (* Keyed by name, validated by physical identity: a same-named
         but distinct prim func (e.g. rebuilt by a legalizer) replaces
         the entry rather than reusing stale code. *)
      match Hashtbl.find_opt t.entries f.Prim_func.name with
      | Some e when e.func == f -> e
      | Some _ | None ->
          let e = { func = f; table = Hashtbl.create 4 } in
          Hashtbl.replace t.entries f.Prim_func.name e;
          e
    in
    let key = sig_key shapes sym_args in
    let compiled_f =
      match Hashtbl.find_opt entry.table key with
      | Some c ->
          t.hits <- t.hits + 1;
          c
      | None ->
          t.misses <- t.misses + 1;
          let c = compile ~sym_args f shapes in
          Hashtbl.replace entry.table key c;
          c
    in
    compiled_f args
end
