(** Reference interpreter for tensor programs.

    Executes a prim func on concrete {!Base.Ndarray.t} arguments,
    binding symbolic shape variables from the actual buffer shapes
    (and from explicit [sym_args]). This is the numeric substrate for
    the VM's numeric mode and for all correctness tests: there is no
    other "real" kernel implementation to diverge from. *)

exception
  Runtime_error of string
    (** Raised on assertion failures, unbound symbols, rank or shape
        mismatches between declared buffers and actual arguments. *)

val run :
  ?sym_args:(Arith.Var.t * int) list ->
  Prim_func.t ->
  Base.Ndarray.t list ->
  unit
(** [run f args] executes [f] with [args] bound positionally to
    [f.params] (destination-passing: outputs are mutated in place).

    Symbolic variables are bound by unifying each parameter's declared
    symbolic shape with the concrete argument shape (a declared
    dimension that is a bare variable binds it; any other declared
    dimension is checked by evaluation once all variables are bound).

    @raise Runtime_error on any inconsistency. *)

val eval_shape : (Arith.Var.t -> int) -> Arith.Expr.t list -> int array
(** Evaluate a symbolic shape under a variable environment. *)

val erf : float -> float
(** The error-function approximation used by [Texpr.Erf]
    (Abramowitz & Stegun 7.1.26). Shared with {!Compile} so the two
    execution paths are bit-identical. *)
