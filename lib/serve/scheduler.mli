(** Iteration-level continuous batching over compiled [prefill] /
    [decode_paged] programs — the serving loop of the paper's
    evaluation, as a discrete-event simulation.

    Time advances by the cost of each prefill or batched decode step,
    measured by running the compiled programs on a [`Timed] VM (the
    same roofline substitution the benchmark harness uses; costs are
    memoized per batch-size bucket and block-rounded context length,
    after a warm-up run so graph-capture replay costs are
    steady-state). Scheduling is FCFS: waiting requests are admitted
    into the running batch whenever a slot and enough KV blocks are
    free ([Continuous]), or only in fixed cohorts that drain
    completely before the next forms ([Static] — the baseline the
    continuous policy dominates at high request rates). When a
    decode step cannot grow a request's KV cache, the most recently
    admitted request is preempted: its blocks are freed and it is
    re-prefilled over its accumulated tokens on re-admission
    (vLLM-style recompute preemption).

    [`Numeric] execution additionally runs real token generation
    (greedy argmax over the model's logits, with prompt/weight
    tensors derived from an explicit seed) through batch-1 numeric
    VMs while the clock still advances from the timed costs — so
    scheduling decisions are identical to [`Sim] by construction,
    which the test suite checks. *)

type policy = Continuous | Static

type opts = {
  max_batch : int;  (** decode batch slots *)
  block_size : int;  (** KV block granularity, tokens *)
  policy : policy;
  kv_budget_bytes : int option;
      (** override the VRAM-derived KV budget (tests force preemption
          with tiny budgets) *)
}

val default_opts : opts
(** Continuous, max_batch 8, block_size 16, VRAM-derived budget. *)

type model
(** Compiled programs + memoized step costs for one (config,
    precision, device) triple. Sharing one model across [run] calls
    reuses compilations and cost tables. *)

val model :
  cfg:Frontend.Configs.t ->
  precision:Frontend.Llm.precision ->
  device:Runtime.Device.t ->
  model

type exec =
  [ `Sim  (** timed costs only; no tensor data *)
  | `Numeric of int  (** seed: also generate real tokens (tiny configs) *)
  ]

type result = {
  completed : Metrics.request_metrics list;  (** in completion order *)
  summary : Metrics.summary;
  logits : (int * Base.Ndarray.t) list;
      (** numeric mode: each request's final logits *)
  clock_us : float;  (** simulated makespan *)
  blocks : Block_manager.t;
      (** the run's block manager, post-drain (tests assert
          [used_blocks = 0] and inspect the allocator pool) *)
}

val run :
  ?trace:Runtime.Trace.sink -> ?exec:exec -> model -> opts -> Workload.t -> result
(** Serve the workload to completion. [trace] receives the
    {!Runtime.Trace.Serve} event stream ([Request_arrive] / [Prefill]
    / [Decode_step] / [Preempt] / [Finish]).
    @raise Failure if a single request's KV cache exceeds the whole
    budget (it could never be scheduled). *)
