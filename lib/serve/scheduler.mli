(** Iteration-level continuous batching over compiled [prefill] /
    [decode_paged] programs — the serving loop of the paper's
    evaluation, as a discrete-event simulation.

    Time advances by the cost of each prefill or batched decode step,
    measured by running the compiled programs on a [`Timed] VM (the
    same roofline substitution the benchmark harness uses; costs are
    memoized per batch-size bucket and block-rounded context length,
    after a warm-up run so graph-capture replay costs are
    steady-state). Scheduling is FCFS: waiting requests are admitted
    into the running batch whenever a slot and enough KV blocks are
    free ([Continuous]), or only in fixed cohorts that drain
    completely before the next forms ([Static] — the baseline the
    continuous policy dominates at high request rates). When a
    decode step cannot grow a request's KV cache, the most recently
    admitted request is preempted: its blocks are freed and it is
    re-prefilled over its accumulated tokens on re-admission
    (vLLM-style recompute preemption).

    [`Numeric] execution additionally runs real token generation
    (greedy argmax over the model's logits, with prompt/weight
    tensors derived from an explicit seed) through batch-1 numeric
    VMs while the clock still advances from the timed costs — so
    scheduling decisions are identical to [`Sim] by construction,
    which the test suite checks.

    {2 Resilience}

    [opts.faults] arms a seeded {!Runtime.Fault} injector drawn at
    discrete-event boundaries (never inside the memoized cost VMs, so
    [`Sim] and [`Numeric] still schedule identically): a prefill or
    decode step may fail transiently (time wasted, no tokens), stall
    (time inflated), a KV-block grow may hit an injected OOM (handled
    by the normal admission-control / preemption path), and a decoded
    token may come back corrupt (discarded). Transient/corrupt
    failures cost the request one attempt from [opts.retry]'s budget
    with exponential backoff between admission attempts (blocks are
    released while backing off); exhausting the budget aborts the
    request. Persistent stalls shrink the effective admission batch
    (halve after 3 consecutive stalled steps, restore after 8 clean
    ones). With [opts.faults = None] every fault path is skipped
    outright and traces/metrics are byte-identical to the fault-free
    engine.

    [opts.admission = Deadline_aware] adds load shedding: before each
    admission round, waiting requests whose deadline has passed
    ([`Timeout]) or provably cannot be met under the cost model
    ([`Shed]) are rejected, protecting the SLO of the rest — the
    chaos benchmark shows this beating FCFS under overload. Requests
    whose KV need exceeds the whole budget are aborted (typed) at the
    same point under either admission policy.

    {2 KV prefix sharing}

    [opts.kv_share = true] turns on {!Block_manager} prefix sharing:
    admission matches a request's [Workload.prompt_tokens] against the
    cross-request prefix tree and charges only the unshared suffix of
    blocks ([`Prefix_hit]); decode writes into shared blocks copy on
    write ([`Cow_copy]); cached refcount-0 blocks are evicted LRU
    under pool pressure ([`Evict]); and a [Workload.fork_of] child
    whose parent is still decoding inherits the parent's blocks and
    decode state outright instead of prefilling. Sharing is {e block
    accounting only}: the full prefill cost is still charged (and in
    numeric mode the prefill still runs, over per-request tensors), so
    with a budget generous enough that neither run sheds or preempts,
    sharing on and off make identical scheduling decisions — the
    differential test suite asserts token streams, finish order and
    the final clock coincide. Under a tight budget sharing admits
    requests the baseline must reject, so only per-request token
    streams remain comparable. What sharing buys is memory:
    [summary.kv_bytes_per_token] (physical block bytes integrated
    over time, per logical cached token) drops below the
    one-block-per-holder baseline, and the freed blocks become
    admission headroom. *)

type policy = Continuous | Static

type admission =
  | Fcfs  (** admit strictly in arrival order; never reject *)
  | Deadline_aware
      (** FCFS order, but shed waiting requests whose
          [Workload.deadline_us] has passed or is infeasible under
          the cost model *)

type retry = {
  max_attempts : int;
      (** per-request attempt budget across transient faults and
          corrupt tokens; >= 1. The request aborts when spent. *)
  backoff_us : float;  (** first backoff delay after a failed attempt *)
  backoff_mult : float;  (** exponential growth per further attempt *)
}

val default_retry : retry
(** 3 attempts, 500 us initial backoff, doubling. *)

type opts = {
  max_batch : int;  (** decode batch slots *)
  block_size : int;  (** KV block granularity, tokens *)
  policy : policy;
  kv_budget_bytes : int option;
      (** override the VRAM-derived KV budget (tests force preemption
          with tiny budgets) *)
  admission : admission;
  retry : retry;
  faults : Runtime.Fault.config option;
      (** [None]: no injector, zero-cost, byte-identical to the
          fault-free engine. [Some c]: seeded injection; note that a
          config with [oom_p = 1.0] can livelock admission (every
          grow fails forever) — chaos probabilities should be < 1. *)
  kv_share : bool;
      (** cross-request KV prefix sharing with copy-on-write blocks
          (see above). [false]: the block manager is the pre-sharing
          private-block accountant, byte-identical behavior. *)
  prefix_prefill_discount : bool;
      (** extend sharing from block accounting to time: a prefix hit
          of [matched] tokens charges prefill only for the unshared
          suffix ([max 1 (target - matched)] tokens), modeling a
          runtime that skips recomputation of cached KV. Numeric
          execution still prefills the full prompt (per-request
          tensors), so token streams are unchanged; only the clock —
          and therefore scheduling under load — differs. [false]
          (default): byte-identical to the accounting-only engine. *)
  slowdowns : (float * float * float) list;
      (** replica-level straggler windows [(from_us, until_us,
          factor)]: every prefill/decode step {e started} inside a
          window is slowed by [factor] (windows compose by
          multiplication), and slowed steps feed the same
          batch-degradation streaks injected stalls do. The cluster
          passes a replica's [Replica_stall] fault windows here. [[]]
          (default): byte-identical to the pre-failover engine. *)
  outages : (float * float) list;
      (** replica crash windows [(from_us, until_us)]: the engine is
          dead for the span — on entering a window every in-flight
          request loses its KV (recompute-preemption on restart) and
          the clock jumps to the window end, where the restarted
          engine drains the backlog. The health-blind cluster baseline
          runs crashed replicas this way; the health-aware path drains
          via [stop_at] instead. [[]] (default): no effect. *)
}

val default_opts : opts
(** Continuous, max_batch 8, block_size 16, VRAM-derived budget,
    FCFS admission, {!default_retry}, no faults, no sharing, no
    prefill discount, no slowdown/outage windows. *)

type model
(** Compiled programs + memoized step costs for one (config,
    precision, device) triple. Sharing one model across [run] calls
    reuses compilations and cost tables. *)

val model :
  cfg:Frontend.Configs.t ->
  precision:Frontend.Llm.precision ->
  device:Runtime.Device.t ->
  model

val estimate_request_us : model -> block_size:int -> Workload.request -> float
(** Uncontended service-time estimate: prefill of the (block-rounded)
    prompt plus [output_len - 1] decode steps at the batch-1 cost,
    from the same memoized timed VMs {!run} charges from. The cluster
    router ({!Dist.Cluster}) keeps per-replica backlog estimates with
    this; it runs nothing beyond the shared cost-model VMs. *)

type exec =
  [ `Sim  (** timed costs only; no tensor data *)
  | `Numeric of int  (** seed: also generate real tokens (tiny configs) *)
  ]

type result = {
  completed : Metrics.request_metrics list;  (** in completion order *)
  summary : Metrics.summary;
  logits : (int * Base.Ndarray.t) list;
      (** numeric mode: each request's final logits *)
  token_streams : (int * int list) list;
      (** numeric mode: each completed request's full token history
          (prompt ids then generated ids), in completion order — what
          the sharing-on/off differential tests compare. Empty in
          [`Sim] runs. *)
  clock_us : float;  (** simulated makespan *)
  blocks : Block_manager.t;
      (** the run's block manager, post-drain (tests assert
          [used_blocks = 0] and inspect the allocator pool) *)
  shed : int list;
      (** ids rejected by admission control or abandoned mid-flight
          once provably unable to meet their deadline, in shed order
          (includes timeouts) *)
  aborted : int list;
      (** ids aborted mid-flight (retry budget spent, or KV-infeasible),
          in abort order. Every submitted id lands in exactly one of
          [completed] / [shed] / [aborted] — except under [stop_at],
          where unfinished ids land in [drained] instead. *)
  drained : Workload.request list;
      (** requests not finished when [stop_at] fired — waiting, in
          flight (their KV blocks are released: a crashed engine's
          cache is gone) and undelivered arrivals — sorted by
          (arrival, id). The cluster failover path re-admits these on
          surviving replicas with recompute. Always [[]] without
          [stop_at]. *)
}

val run :
  ?trace:Runtime.Trace.sink ->
  ?exec:exec ->
  ?stop_at:float ->
  model ->
  opts ->
  Workload.t ->
  result
(** Serve the workload to completion — or, with [stop_at t], only
    until the clock reaches [t] (the moment a crashed replica's
    engine died): the run stops at the first event boundary at or
    after [t] (idle jumps never skip past it; an in-flight step may
    overshoot by its own duration), and everything unfinished is
    returned in [drained]. [trace] receives the
    {!Runtime.Trace.Serve} event stream ([Request_arrive] / [Prefill]
    / [Decode_step] / [Preempt] / [Finish], plus [Shed] / [Timeout] /
    [Retry] / [Abort] / [Degrade] on the resilience paths, plus
    [Prefix_hit] / [Cow_copy] / [Evict] when [kv_share] is on) and
    {!Runtime.Trace.Fault_injected} markers when injection is armed.

    Raising conditions (all {!Runtime.Fault.Error}):
    - [(Fatal, _)]: caller errors — [max_batch < 1],
      [retry.max_attempts < 1], a request whose
      [prompt_len + output_len] exceeds the model's max context — or
      a broken prefill program shape.
    - [(Resource_exhausted, _)]: without injection, a waiting request
      that can never be admitted (its prompt alone exceeds the KV
      budget on an idle machine) or a lone running request that
      cannot grow. With injection armed these become self-preemption
      / typed aborts instead of raises.

    [Invalid_argument] propagates from {!Block_manager.create} when
    the KV budget fits no block at all. *)
