type policy = Continuous | Static
type admission = Fcfs | Deadline_aware

type retry = {
  max_attempts : int;
  backoff_us : float;
  backoff_mult : float;
}

let default_retry = { max_attempts = 3; backoff_us = 500.0; backoff_mult = 2.0 }

type opts = {
  max_batch : int;
  block_size : int;
  policy : policy;
  kv_budget_bytes : int option;
  admission : admission;
  retry : retry;
  faults : Runtime.Fault.config option;
  kv_share : bool;
  prefix_prefill_discount : bool;
  slowdowns : (float * float * float) list;
  outages : (float * float) list;
}

let default_opts =
  {
    max_batch = 8;
    block_size = 16;
    policy = Continuous;
    kv_budget_bytes = None;
    admission = Fcfs;
    retry = default_retry;
    faults = None;
    kv_share = false;
    prefix_prefill_discount = false;
    slowdowns = [];
    outages = [];
  }

type exec = [ `Sim | `Numeric of int ]

(* ---------- cost model: timed VMs, memoized per rounded shape ---------- *)

type entry = {
  vm : Runtime.Vm.t;
  built : Frontend.Llm.built;
  costs : (int, float) Hashtbl.t;  (** rounded ctx -> elapsed_us *)
}

type model = {
  cfg : Frontend.Configs.t;
  precision : Frontend.Llm.precision;
  device : Runtime.Device.t;
  decode_entries : (int, entry) Hashtbl.t;  (** batch bucket -> entry *)
  mutable prefill_entry : entry option;
  mutable numeric_decode : (Frontend.Llm.built * Runtime.Vm.program) option;
  mutable numeric_prefill : (Frontend.Llm.built * Runtime.Vm.program) option;
}

let model ~cfg ~precision ~device =
  {
    cfg;
    precision;
    device;
    decode_entries = Hashtbl.create 8;
    prefill_entry = None;
    numeric_decode = None;
    numeric_prefill = None;
  }

let compile built device =
  Relax_passes.Pipeline.compile
    ~options:
      { Relax_passes.Pipeline.default_options with
        Relax_passes.Pipeline.upper_bounds = Frontend.Llm.upper_bound_hints built }
    ~device built.Frontend.Llm.mod_

let warmup vm (built : Frontend.Llm.built) =
  (* First run pays per-kernel launch overheads and records the
     captured graph; memoized costs below are steady-state replays. *)
  ignore
    (Runtime.Vm.run vm built.Frontend.Llm.entry
       (Frontend.Llm.args_for built ~ctx:1 ~mode:`Shadow ()))

let decode_entry m bucket =
  match Hashtbl.find_opt m.decode_entries bucket with
  | Some e -> e
  | None ->
      let built = Frontend.Llm.decode_paged m.cfg ~batch:bucket m.precision in
      let vm = Runtime.Vm.create (`Timed m.device) (compile built m.device) in
      warmup vm built;
      let e = { vm; built; costs = Hashtbl.create 32 } in
      Hashtbl.add m.decode_entries bucket e;
      e

let prefill_entry m =
  match m.prefill_entry with
  | Some e -> e
  | None ->
      let built = Frontend.Llm.prefill ~return_caches:false m.cfg m.precision in
      let vm = Runtime.Vm.create (`Timed m.device) (compile built m.device) in
      warmup vm built;
      let e = { vm; built; costs = Hashtbl.create 32 } in
      m.prefill_entry <- Some e;
      e

let cost_of (e : entry) ctx =
  match Hashtbl.find_opt e.costs ctx with
  | Some c -> c
  | None ->
      let st = Runtime.Vm.stats e.vm in
      let before = st.Runtime.Vm.elapsed_us in
      ignore
        (Runtime.Vm.run e.vm e.built.Frontend.Llm.entry
           (Frontend.Llm.args_for e.built ~ctx ~mode:`Shadow ()));
      let c = st.Runtime.Vm.elapsed_us -. before in
      Hashtbl.add e.costs ctx c;
      c

(* Smallest power-of-two batch >= live, capped at max_batch: one
   compiled program per bucket instead of one per batch size. *)
let bucket_for ~max_batch live =
  let rec go b = if b >= live then b else go (2 * b) in
  min (go 1) max_batch

let round_up n step = (n + step - 1) / step * step

(* Uncontended service-time estimate for one request: its prefill plus
   every output token at the batch-1 decode cost, from the same
   memoized timed VMs [run] charges from. The cluster router uses this
   to keep per-replica backlog estimates without running anything. *)
let estimate_request_us m ~block_size (req : Workload.request) =
  let mmax = m.cfg.Frontend.Configs.max_context in
  let pre_ctx =
    min (max 1 (round_up req.Workload.prompt_len block_size)) mmax
  in
  let pre = cost_of (prefill_entry m) pre_ctx in
  let dec_ctx =
    min
      (max 1
         (round_up
            (req.Workload.prompt_len + req.Workload.output_len - 1)
            block_size))
      (mmax - 1)
  in
  let step = cost_of (decode_entry m 1) dec_ctx in
  pre +. (float_of_int (max 0 (req.Workload.output_len - 1)) *. step)

(* ---------- per-request runtime state ---------- *)

type rstate = {
  req : Workload.request;
  mutable cache_len : int;  (** KV positions filled (0 = never prefilled) *)
  mutable generated : int;
  mutable first_token_us : float;
  mutable preempt_count : int;
  mutable attempts : int;  (** retries consumed (transient/corrupt faults) *)
  mutable retry_at : float;  (** backoff: not eligible for admission before *)
  (* numeric-mode state *)
  mutable history : int list;  (** prompt tokens then generated tokens *)
  mutable ncaches : Runtime.Vm.value list;  (** persistent paged caches *)
  mutable last_logits : Base.Ndarray.t option;
}

(* ---------- numeric execution (tiny configs) ---------- *)

type numeric = {
  dec_vm : Runtime.Vm.t;
  dec_built : Frontend.Llm.built;
  pre_vm : Runtime.Vm.t;
  pre_built : Frontend.Llm.built;
  weights : Runtime.Vm.value list;  (** embedding :: layer weights... *)
  seed : int;
}

let numeric_ctx m seed =
  let dec_built, dec_prog =
    match m.numeric_decode with
    | Some p -> p
    | None ->
        let built = Frontend.Llm.decode_paged m.cfg ~batch:1 m.precision in
        let p = (built, compile built m.device) in
        m.numeric_decode <- Some p;
        p
  in
  let pre_built, pre_prog =
    match m.numeric_prefill with
    | Some p -> p
    | None ->
        let built = Frontend.Llm.prefill ~return_caches:true m.cfg m.precision in
        let p = (built, compile built m.device) in
        m.numeric_prefill <- Some p;
        p
  in
  (* decode_paged params are ids, cur_len, caches..., embedding,
     weights...; the tail from the embedding onward is exactly
     prefill's tail, so both programs share one weight set. *)
  let template = Frontend.Llm.args_for dec_built ~ctx:0 ~seed ~mode:`Numeric () in
  let weights =
    List.filteri (fun i _ -> i >= 2 + (2 * m.cfg.Frontend.Configs.layers)) template
  in
  {
    dec_vm = Runtime.Vm.create `Numeric dec_prog;
    dec_built;
    pre_vm = Runtime.Vm.create `Numeric pre_prog;
    pre_built;
    weights;
    seed;
  }

(* Numeric prompt ids. A request carrying explicit [prompt_tokens]
   (the shared-prefix workload generators) feeds exactly those ids
   (mod vocab), so requests with equal prompts produce equal KV and
   equal greedy continuations — the property that makes accounting-
   level prefix sharing sound. Requests without ids keep the legacy
   seed-derived stream bit-for-bit. *)
let prompt_tokens (nx : numeric) vocab (req : Workload.request) =
  match req.Workload.prompt_tokens with
  | Some toks -> List.map (fun t -> ((t mod vocab) + vocab) mod vocab) toks
  | None ->
      let st = Random.State.make [| nx.seed; req.Workload.id |] in
      List.init req.Workload.prompt_len (fun _ -> Random.State.int st vocab)

let argmax_token logits =
  let n = Base.Ndarray.numel logits in
  let best = ref 0 and best_v = ref neg_infinity in
  for i = 0 to n - 1 do
    let v = Base.Ndarray.get_flat_float logits i in
    if v > !best_v then begin
      best_v := v;
      best := i
    end
  done;
  !best

let fresh_caches (cfg : Frontend.Configs.t) =
  List.init
    (2 * cfg.Frontend.Configs.layers)
    (fun _ ->
      Runtime.Vm.tensor
        (Base.Ndarray.create Base.Dtype.F16
           [|
             1;
             cfg.Frontend.Configs.kv_heads;
             cfg.Frontend.Configs.max_context;
             cfg.Frontend.Configs.head_dim;
           |]))

(* Run prefill over [tokens] and write the returned (1,kv,n,d) caches
   into the request's persistent (1,kv,mmax,d) paged tensors. *)
let numeric_prefill_run nx (cfg : Frontend.Configs.t) (r : rstate) tokens =
  if r.ncaches = [] then r.ncaches <- fresh_caches cfg;
  let n = List.length tokens in
  let ids =
    Runtime.Vm.tensor (Base.Ndarray.of_int_list Base.Dtype.I32 [| n |] tokens)
  in
  match Runtime.Vm.run nx.pre_vm nx.pre_built.Frontend.Llm.entry (ids :: nx.weights) with
  | Runtime.Vm.Tuple_val (logits :: caches) ->
      List.iter2
        (fun fresh persistent ->
          let src = Runtime.Vm.value_tensor fresh in
          let dst = Runtime.Vm.value_tensor persistent in
          let kv = cfg.Frontend.Configs.kv_heads
          and d = cfg.Frontend.Configs.head_dim in
          for h = 0 to kv - 1 do
            for p = 0 to n - 1 do
              for x = 0 to d - 1 do
                Base.Ndarray.set_float dst [| 0; h; p; x |]
                  (Base.Ndarray.get_float src [| 0; h; p; x |])
              done
            done
          done)
        caches r.ncaches;
      Runtime.Vm.value_tensor logits
  | _ ->
      Runtime.Fault.errorf Runtime.Fault.Fatal
        "Serve: prefill did not return (logits, caches...)"

let numeric_decode_run nx (r : rstate) =
  let last = List.nth r.history (List.length r.history - 1) in
  let ids =
    Runtime.Vm.tensor (Base.Ndarray.of_int_list Base.Dtype.I32 [| 1 |] [ last ])
  in
  let args =
    (ids :: Runtime.Vm.Shape_val [| r.cache_len |] :: r.ncaches) @ nx.weights
  in
  let out = Runtime.Vm.run nx.dec_vm nx.dec_built.Frontend.Llm.entry args in
  match out with
  | Runtime.Vm.Tuple_val (l :: _) -> Runtime.Vm.value_tensor l
  | v -> Runtime.Vm.value_tensor v

(* ---------- the serving loop ---------- *)

type result = {
  completed : Metrics.request_metrics list;
  summary : Metrics.summary;
  logits : (int * Base.Ndarray.t) list;
  token_streams : (int * int list) list;
  clock_us : float;
  blocks : Block_manager.t;
  shed : int list;
  aborted : int list;
  drained : Workload.request list;
}

(* Effective-batch degradation thresholds: halve after this many
   consecutive stalled decode steps, double back after this many
   consecutive clean ones. *)
let degrade_after = 3
let recover_after = 8

(* Deadline-feasibility headroom: a request is admitted only if its
   estimated remaining service time fits in this fraction's inverse of
   the time to its deadline. The estimate assumes an uncontended
   machine and mean fault behavior; the 40% margin absorbs queueing
   delay after admission and stall variance — without it requests are
   admitted with exactly zero slack and mostly miss. *)
let feasibility_headroom = 1.4

let run ?trace ?(exec = `Sim) ?stop_at m opts workload =
  if opts.max_batch < 1 then
    Runtime.Fault.errorf Runtime.Fault.Fatal "Scheduler.run: max_batch < 1";
  if opts.retry.max_attempts < 1 then
    Runtime.Fault.errorf Runtime.Fault.Fatal "Scheduler.run: max_attempts < 1";
  let cfg = m.cfg in
  let mmax = cfg.Frontend.Configs.max_context in
  List.iter
    (fun (r : Workload.request) ->
      if r.Workload.prompt_len + r.Workload.output_len > mmax then
        Runtime.Fault.errorf Runtime.Fault.Fatal
          "Serve: request %d needs %d tokens > max_context %d" r.Workload.id
          (r.Workload.prompt_len + r.Workload.output_len)
          mmax)
    workload;
  let nx = match exec with `Sim -> None | `Numeric seed -> Some (numeric_ctx m seed) in
  let alloc = Runtime.Allocator.create `Pooling in
  let bm =
    Block_manager.create ?kv_budget_bytes:opts.kv_budget_bytes
      ~sharing:opts.kv_share ~cfg ~precision:m.precision
      ~block_size:opts.block_size ~device:m.device alloc
  in
  let emit tag ~id ~t_us ~batch ~tokens =
    match trace with
    | None -> ()
    | Some sink -> sink (Runtime.Trace.Serve { tag; id; t_us; batch; tokens })
  in
  let clock = ref 0.0 in
  (* KV-bytes-per-token integrals: referenced physical blocks (used
     minus reclaimable refcount-0 cache — the cache is free headroom,
     not a holding cost) and logical per-request holdings, each
     integrated over simulated time. Every clock advance goes through
     [advance_to] so the integrals cover the whole run. With sharing
     off, cached is always 0 and every logical block has its own
     physical block, so the ratio is exactly block_bytes/block_size. *)
  let kv_phys_block_us = ref 0.0 and kv_logical_block_us = ref 0.0 in
  let advance_to t =
    let dt = t -. !clock in
    if dt > 0.0 then begin
      kv_phys_block_us :=
        !kv_phys_block_us
        +. (float_of_int
              (Block_manager.used_blocks bm - Block_manager.cached_blocks bm)
           *. dt);
      kv_logical_block_us :=
        !kv_logical_block_us
        +. (float_of_int (Block_manager.logical_blocks bm) *. dt);
      clock := t
    end
  in
  let arrivals = ref workload in
  let waiting = ref [] in
  let running = ref [] in
  let completed = ref [] in
  let logits_out = ref [] in
  let streams_out = ref [] in
  let shed_ids = ref [] in
  let aborted_ids = ref [] in
  let timeouts = ref 0 in
  let cohort = ref 0 in
  let busy = ref 0.0 and decode_time = ref 0.0 in
  (* ---- fault injection: one seeded injector for the whole run. All
     draws happen at discrete-event boundaries in an execution-mode-
     independent order, so `Sim and `Numeric schedule identically even
     under faults (the numeric VMs themselves are never armed). ---- *)
  let inj = Option.map Runtime.Fault.create opts.faults in
  let fault_ev ev =
    match trace with
    | Some sink -> sink (Runtime.Trace.Fault_injected ev)
    | None -> ()
  in
  let draw_kernel_fail site =
    match inj with
    | None -> false
    | Some i -> (
        match Runtime.Fault.kernel_failure i ~site with
        | Some ev ->
            fault_ev ev;
            true
        | None -> false)
  in
  let stall_mult site =
    match inj with
    | None -> 1.0
    | Some i -> (
        match Runtime.Fault.device_stall i ~site with
        | Some (ev, factor) ->
            fault_ev ev;
            factor
        | None -> 1.0)
  in
  let draw_oom site =
    match inj with
    | None -> false
    | Some i -> (
        match Runtime.Fault.alloc_oom i ~site with
        | Some ev ->
            fault_ev ev;
            true
        | None -> false)
  in
  let draw_nan site =
    match inj with
    | None -> false
    | Some i -> (
        match Runtime.Fault.nan_corruption i ~site with
        | Some ev ->
            fault_ev ev;
            true
        | None -> false)
  in
  (* Copy-on-write and eviction happen inside the block manager; the
     trace stream recovers them by diffing its monotone counters
     around each call. *)
  let diff_block_events ~id before =
    let after = Block_manager.stats bm in
    if after.Block_manager.cow_copies > before.Block_manager.cow_copies then
      emit `Cow_copy ~id ~t_us:!clock ~batch:(List.length !running)
        ~tokens:(after.Block_manager.cow_copies - before.Block_manager.cow_copies);
    if after.Block_manager.evictions > before.Block_manager.evictions then
      emit `Evict ~id:(-1) ~t_us:!clock ~batch:(List.length !running)
        ~tokens:(after.Block_manager.evictions - before.Block_manager.evictions)
  in
  (* Injected OOM makes a grow fail exactly as block exhaustion does:
     the caller's admission-control / preemption path handles it. *)
  let try_grow ~site ~request_id ~tokens =
    if draw_oom site then false
    else begin
      let before = Block_manager.stats bm in
      let ok = Block_manager.grow bm ~request_id ~tokens in
      diff_block_events ~id:request_id before;
      ok
    end
  in
  (* Token ids the prefix tree matches on: only requests that carry
     explicit prompt tokens can share. *)
  let prompt_arr (req : Workload.request) =
    match req.Workload.prompt_tokens with
    | Some toks -> Array.of_list toks
    | None -> [||]
  in
  let try_acquire ~site (r : rstate) ~tokens =
    if draw_oom site then `No_space
    else begin
      let before = Block_manager.stats bm in
      let res =
        Block_manager.acquire bm ~request_id:r.req.Workload.id
          ~prompt:(prompt_arr r.req) ~tokens
      in
      diff_block_events ~id:r.req.Workload.id before;
      res
    end
  in
  (* ---- graceful degradation: persistent device stall shrinks the
     effective batch (admission width), sustained clean steps restore
     it. Running requests are never evicted by a shrink. ---- *)
  let eff_batch = ref opts.max_batch in
  let stall_streak = ref 0 and clean_streak = ref 0 in
  let note_stall stalled =
    if stalled then begin
      clean_streak := 0;
      incr stall_streak;
      if !stall_streak >= degrade_after && !eff_batch > 1 then begin
        eff_batch := max 1 (!eff_batch / 2);
        stall_streak := 0;
        emit `Degrade ~id:(-1) ~t_us:!clock ~batch:!eff_batch ~tokens:0
      end
    end
    else begin
      stall_streak := 0;
      incr clean_streak;
      if !clean_streak >= recover_after && !eff_batch < opts.max_batch then begin
        eff_batch := min opts.max_batch (!eff_batch * 2);
        clean_streak := 0;
        emit `Degrade ~id:(-1) ~t_us:!clock ~batch:!eff_batch ~tokens:1
      end
    end
  in
  let decode_cost ~live ~ctx =
    let bucket = bucket_for ~max_batch:opts.max_batch live in
    let ctx' = min (max 1 (round_up ctx opts.block_size)) (mmax - 1) in
    cost_of (decode_entry m bucket) ctx'
  in
  (* Replica-level straggler windows (cluster fault plan): every step
     started inside a window is slowed by its factor. Empty list ->
     multiplier 1.0, and [dt *. 1.0] is exact, so runs without windows
     are byte-identical to the pre-failover engine. *)
  let window_mult t =
    List.fold_left
      (fun acc (from_us, until_us, factor) ->
        if t >= from_us && t < until_us then acc *. factor else acc)
      1.0 opts.slowdowns
  in
  (* Replica crash windows (health-blind cluster baseline): the engine
     is dead for [from, until) — everything in flight loses its KV and
     recomputes after the window, new admissions wait. *)
  let outage_at t =
    List.find_opt (fun (from_us, until_us) -> t >= from_us && t < until_us)
      opts.outages
  in
  let past_stop () =
    match stop_at with Some s -> !clock >= s | None -> false
  in
  (* Idle jumps never skip past the drain point (in-flight steps may
     overshoot it by one step's discrete-event granularity). *)
  let cap_stop t =
    match stop_at with Some s -> Float.min t s | None -> t
  in
  let prefill_cost n =
    let ctx' = min (max 1 (round_up n opts.block_size)) mmax in
    cost_of (prefill_entry m) ctx'
  in
  let deliver () =
    let rec go () =
      match !arrivals with
      | (r : Workload.request) :: rest when r.Workload.arrival_us <= !clock ->
          arrivals := rest;
          waiting :=
            !waiting
            @ [
                {
                  req = r;
                  cache_len = 0;
                  generated = 0;
                  first_token_us = 0.0;
                  preempt_count = 0;
                  attempts = 0;
                  retry_at = 0.0;
                  history = [];
                  ncaches = [];
                  last_logits = None;
                };
              ];
          emit `Request_arrive ~id:r.Workload.id ~t_us:r.Workload.arrival_us
            ~batch:(List.length !running) ~tokens:r.Workload.prompt_len;
          go ()
      | _ -> ()
    in
    go ()
  in
  let finish (r : rstate) =
    Block_manager.release bm ~request_id:r.req.Workload.id;
    emit `Finish ~id:r.req.Workload.id ~t_us:!clock
      ~batch:(List.length !running) ~tokens:r.generated;
    (match r.last_logits with
    | Some l -> logits_out := (r.req.Workload.id, l) :: !logits_out
    | None -> ());
    if r.history <> [] then
      streams_out := (r.req.Workload.id, r.history) :: !streams_out;
    completed :=
      {
        Metrics.id = r.req.Workload.id;
        arrival_us = r.req.Workload.arrival_us;
        first_token_us = r.first_token_us;
        finish_us = !clock;
        prompt_len = r.req.Workload.prompt_len;
        tokens = r.generated;
        preemptions = r.preempt_count;
        retries = r.attempts;
        deadline_us = r.req.Workload.deadline_us;
      }
      :: !completed
  in
  let abort (r : rstate) =
    Block_manager.release bm ~request_id:r.req.Workload.id;
    aborted_ids := r.req.Workload.id :: !aborted_ids;
    emit `Abort ~id:r.req.Workload.id ~t_us:!clock
      ~batch:(List.length !running) ~tokens:r.generated
  in
  let shed_req (r : rstate) ~timeout =
    shed_ids := r.req.Workload.id :: !shed_ids;
    if timeout then incr timeouts;
    emit
      (if timeout then `Timeout else `Shed)
      ~id:r.req.Workload.id ~t_us:!clock ~batch:(List.length !running)
      ~tokens:r.req.Workload.prompt_len
  in
  (* Expected slowdown of the degraded machine, from the armed fault
     config: stalls inflate the average step by stall_p * (factor - 1)
     and transient launch failures waste a 1 / (1 - p) fraction of
     steps. Deadline feasibility charges it so admission control sheds
     against the capacity the machine actually has — estimating with
     healthy costs under a high fault rate admits doomed requests and
     goodput falls off a cliff instead of degrading. *)
  let fault_slowdown =
    match opts.faults with
    | None -> 1.0
    | Some c ->
        (1.0
        +. (max 0.0 c.Runtime.Fault.stall_p
           *. max 0.0 (c.Runtime.Fault.stall_factor -. 1.0)))
        /. (1.0 -. min 0.9 (max 0.0 c.Runtime.Fault.kernel_fail_p))
  in
  (* Deadline feasibility: prefill plus every remaining token at the
     would-be batch's step cost must land before the deadline. Uses
     the same memoized cost model the engine charges from, so the
     estimate is exact for an uncontended machine and optimistic
     under contention — a deliberately mild shedding bound. *)
  let feasible (r : rstate) d =
    let target =
      if r.cache_len = 0 then r.req.Workload.prompt_len else r.cache_len
    in
    let remaining = max 0 (r.req.Workload.output_len - max 1 r.generated) in
    let step =
      decode_cost
        ~live:(min opts.max_batch (List.length !running + 1))
        ~ctx:(r.req.Workload.prompt_len + r.req.Workload.output_len - 1)
    in
    !clock
    +. ((prefill_cost target +. (float_of_int remaining *. step))
       *. fault_slowdown *. feasibility_headroom)
    <= d
  in
  (* Admission-queue policy pass: drop requests that can never be
     scheduled (KV-infeasible — typed abort instead of the engine
     wedging later), and under [Deadline_aware] shed requests whose
     deadline has passed or is unreachable. Returns #removed. *)
  let prune_waiting () =
    let pruned = ref 0 in
    waiting :=
      List.filter
        (fun (r : rstate) ->
          let need =
            max r.req.Workload.prompt_len
              (r.req.Workload.prompt_len + r.req.Workload.output_len - 1)
          in
          if Block_manager.blocks_for bm need > Block_manager.total_blocks bm
          then begin
            abort r;
            incr pruned;
            false
          end
          else
            match (opts.admission, r.req.Workload.deadline_us) with
            | Deadline_aware, Some d when d <= !clock ->
                shed_req r ~timeout:true;
                incr pruned;
                false
            | Deadline_aware, Some d when not (feasible r d) ->
                shed_req r ~timeout:false;
                incr pruned;
                false
            | _ -> true)
        !waiting;
    !pruned
  in
  (* Deadline enforcement on the running batch: a request whose
     deadline has passed — or whose remaining decode provably cannot
     land before it even at uncontended mean-fault speed (no
     headroom: only certain losses are reaped) — is abandoned,
     releasing its slot and KV blocks for work that can still meet
     its SLO. Under FCFS the baseline runs everything to completion,
     doomed or not. *)
  let reap_running () =
    match opts.admission with
    | Fcfs -> 0
    | Deadline_aware ->
        let reaped = ref 0 in
        List.iter
          (fun (r : rstate) ->
            match r.req.Workload.deadline_us with
            | Some d ->
                let remaining =
                  max 0 (r.req.Workload.output_len - r.generated)
                in
                let step =
                  decode_cost
                    ~live:(min opts.max_batch (List.length !running))
                    ~ctx:(r.req.Workload.prompt_len + r.req.Workload.output_len - 1)
                in
                if
                  d <= !clock
                  || !clock +. (float_of_int remaining *. step *. fault_slowdown)
                     > d
                then begin
                  Block_manager.release bm ~request_id:r.req.Workload.id;
                  running := List.filter (fun x -> x != r) !running;
                  incr reaped;
                  shed_req r ~timeout:true
                end
            | None -> ())
          !running;
        !reaped
  in
  (* First waiting request whose backoff has expired, split out of the
     queue. With no faults every request is always eligible, so this
     is exactly the FCFS head. *)
  let split_eligible () =
    let rec go prefix = function
      | [] -> None
      | (r : rstate) :: rest when r.retry_at <= !clock ->
          Some (List.rev prefix, r, rest)
      | r :: rest -> go (r :: prefix) rest
    in
    go [] !waiting
  in
  (* Best-of-n forking: a child whose parent is still decoding shares
     (sharing on, O(1) memory) or duplicates (sharing off) the
     parent's whole KV and inherits its decode state — no prefill
     runs and no time is charged, so sharing on and off schedule
     identically whenever both paths fit. A child whose parent is
     already gone (or whose copy does not fit) falls back to a normal
     prefill of its own prompt; greedy decoding makes either path
     produce a prefix of the same continuation. *)
  let try_fork (r : rstate) =
    match r.req.Workload.fork_of with
    | Some pid when r.cache_len = 0 -> (
        match
          List.find_opt (fun (p : rstate) -> p.req.Workload.id = pid) !running
        with
        | Some p
          when p.cache_len > 0 && Block_manager.holds bm ~request_id:pid > 0 ->
            if draw_oom "kv-admit" then `Oom
            else if Block_manager.fork bm ~parent:pid ~child:r.req.Workload.id
            then `Forked p
            else `Fresh (* sharing off and the copy doesn't fit *)
        | _ -> `Fresh)
    | _ -> `Fresh
  in
  (* Admit one eligible request: charge its (re-)prefill, produce the
     first token if fresh. [`Blocked]: no eligible request or its
     blocks don't fit (admission control; no preemption here).
     [`Failed_attempt]: an injected transient fault wasted the prefill
     — the request backed off (or aborted), but time advanced. *)
  let admit_one () =
    match split_eligible () with
    | None -> `Blocked
    | Some (prefix, r, rest) -> (
        match try_fork r with
        | `Oom -> `Blocked
        | `Forked p ->
            waiting := prefix @ rest;
            r.cache_len <- p.cache_len;
            r.generated <- 1;
            r.first_token_us <- !clock;
            r.history <- p.history;
            r.last_logits <- p.last_logits;
            (match nx with
            | None -> ()
            | Some _ ->
                (* Private numeric caches: sharing is block accounting,
                   the tiny-model tensors stay per-request. *)
                r.ncaches <-
                  List.map
                    (fun v ->
                      Runtime.Vm.tensor
                        (Base.Ndarray.copy (Runtime.Vm.value_tensor v)))
                    p.ncaches);
            if opts.kv_share then
              emit `Prefix_hit ~id:r.req.Workload.id ~t_us:!clock
                ~batch:(List.length !running) ~tokens:r.cache_len;
            if r.generated >= r.req.Workload.output_len then finish r
            else running := !running @ [ r ];
            `Admitted
        | `Fresh ->
        let target =
          if r.cache_len = 0 then r.req.Workload.prompt_len else r.cache_len
        in
        match try_acquire ~site:"kv-admit" r ~tokens:target with
        | `No_space -> `Blocked
        | `Ok matched ->
          if matched > 0 then
            emit `Prefix_hit ~id:r.req.Workload.id ~t_us:!clock
              ~batch:(List.length !running) ~tokens:matched;
          (* With the discount on, a prefix hit charges prefill only
             for the unshared suffix — the cached positions' KV is
             already resident. Off (default), the full cost is charged
             and sharing stays block accounting only. *)
          let charged_target =
            if opts.prefix_prefill_discount && matched > 0 then
              max 1 (target - matched)
            else target
          in
          let dt =
            prefill_cost charged_target *. stall_mult "prefill"
            *. window_mult !clock
          in
          advance_to (!clock +. dt);
          if draw_kernel_fail "prefill" then begin
            (* Transient prefill failure: the time is wasted, the
               blocks are released between attempts, and the request
               re-queues with exponential backoff — or aborts once its
               attempt budget is spent. *)
            Block_manager.release bm ~request_id:r.req.Workload.id;
            r.attempts <- r.attempts + 1;
            emit `Retry ~id:r.req.Workload.id ~t_us:!clock
              ~batch:(List.length !running) ~tokens:r.attempts;
            if r.attempts >= opts.retry.max_attempts then begin
              waiting := prefix @ rest;
              abort r
            end
            else begin
              r.retry_at <-
                !clock
                +. opts.retry.backoff_us
                   *. (opts.retry.backoff_mult
                      ** float_of_int (r.attempts - 1));
              waiting := prefix @ (r :: rest)
            end;
            `Failed_attempt
          end
          else begin
            waiting := prefix @ rest;
            emit `Prefill ~id:r.req.Workload.id ~t_us:!clock
              ~batch:(List.length !running + 1) ~tokens:target;
            if r.cache_len = 0 then begin
              (* Fresh: prefill over the prompt yields the first token. *)
              (match nx with
              | None -> ()
              | Some nx ->
                  let toks = prompt_tokens nx cfg.Frontend.Configs.vocab r.req in
                  let logits = numeric_prefill_run nx cfg r toks in
                  r.last_logits <- Some logits;
                  r.history <- toks @ [ argmax_token logits ]);
              r.cache_len <- target;
              r.generated <- 1;
              r.first_token_us <- !clock;
              if r.generated >= r.req.Workload.output_len then finish r
              else running := !running @ [ r ]
            end
            else begin
              (* Preempted earlier: re-prefill the cached positions
                 (recompute); the pending last token is consumed by the
                 next decode step, so [generated] does not advance. *)
              (match nx with
              | None -> ()
              | Some nx ->
                  ignore
                    (numeric_prefill_run nx cfg r
                       (List.filteri (fun i _ -> i < r.cache_len) r.history)));
              running := !running @ [ r ]
            end;
            `Admitted
          end)
  in
  (* Returns true if this round made progress: admitted a request,
     consumed a (failed) attempt, or pruned the queue. Admitted
     requests may finish instantly on single-token outputs, so
     progress is not the same as a non-empty running batch. *)
  let admit () =
    let reaped = reap_running () in
    let pruned = prune_waiting () in
    let admitted = ref 0 in
    let failed = ref false in
    let has_eligible () =
      List.exists (fun (r : rstate) -> r.retry_at <= !clock) !waiting
    in
    (match opts.policy with
    | Continuous ->
        let continue_ = ref true in
        while
          !continue_ && List.length !running < !eff_batch && has_eligible ()
        do
          match admit_one () with
          | `Admitted -> incr admitted
          | `Failed_attempt -> failed := true
          | `Blocked -> continue_ := false
        done
    | Static ->
        (* Cohorts only form when the machine is idle, and only at
           full width (or from the final stragglers once the stream
           has ended) — the static baseline's inefficiency. *)
        if
          !running = []
          && (List.length !waiting >= !eff_batch || !arrivals = [])
          && !waiting <> []
        then begin
          let continue_ = ref true in
          while !continue_ && !admitted < !eff_batch && has_eligible () do
            match admit_one () with
            | `Admitted -> incr admitted
            | `Failed_attempt -> failed := true
            | `Blocked -> continue_ := false
          done;
          cohort := List.length !running
        end);
    !admitted > 0 || !failed || pruned > 0 || reaped > 0
  in
  (* Grow [r]'s cache for the next decode write; on block exhaustion,
     preempt from the tail of the running batch (latest admitted
     first — FCFS priority). Returns false if [r] preempted itself.
     With injection armed a lone request may self-preempt on a
     transient OOM and re-prefill later; without it, a lone request
     that cannot grow is a genuine budget overrun. *)
  let rec ensure_capacity (r : rstate) =
    if
      try_grow ~site:"kv-grow" ~request_id:r.req.Workload.id
        ~tokens:(r.cache_len + 1)
    then true
    else
      match List.rev !running with
      | [] ->
          Runtime.Fault.errorf Runtime.Fault.Fatal
            "Serve: empty batch cannot grow"
      | victim :: _ ->
          if victim == r && List.length !running = 1 && Option.is_none inj then
            Runtime.Fault.errorf Runtime.Fault.Resource_exhausted
              "Serve: request %d alone exceeds the KV budget (%d blocks)"
              r.req.Workload.id (Block_manager.total_blocks bm);
          Block_manager.release bm ~request_id:victim.req.Workload.id;
          victim.preempt_count <- victim.preempt_count + 1;
          running := List.filter (fun x -> x != victim) !running;
          waiting := victim :: !waiting;
          emit `Preempt ~id:victim.req.Workload.id ~t_us:!clock
            ~batch:(List.length !running) ~tokens:victim.cache_len;
          if victim == r then false else ensure_capacity r
  in
  let decode_step () =
    (* Capacity first: every survivor must fit its next KV write.
       Skip requests a previous iteration already preempted — they
       must not grow blocks from the waiting queue. *)
    List.iter
      (fun r -> if List.memq r !running then ignore (ensure_capacity r))
      !running;
    let live = !running in
    let nlive = List.length live in
    if nlive > 0 then begin
      let cost_batch =
        match opts.policy with
        | Continuous -> nlive
        | Static -> max nlive !cohort  (* fixed cohort width until drained *)
      in
      let ctx = List.fold_left (fun acc r -> max acc r.cache_len) 0 live in
      let base_dt = decode_cost ~live:cost_batch ~ctx in
      let mult = stall_mult "decode" in
      let wmult = window_mult !clock in
      let dt = base_dt *. mult *. wmult in
      advance_to (!clock +. dt);
      if draw_kernel_fail "decode" then begin
        (* Whole-step transient failure: the step's time is wasted and
           no tokens advance; the next loop iteration retries. Charged
           to decode time (the machine was busy) but not to useful
           occupancy. *)
        decode_time := !decode_time +. dt;
        emit `Retry ~id:(-1) ~t_us:!clock ~batch:nlive ~tokens:0;
        note_stall (mult > 1.0 || wmult > 1.0)
      end
      else begin
        busy := !busy +. (float_of_int nlive *. dt);
        decode_time := !decode_time +. dt;
        emit `Decode_step ~id:(-1) ~t_us:!clock ~batch:nlive ~tokens:nlive;
        note_stall (mult > 1.0 || wmult > 1.0);
        List.iter
          (fun r ->
            if draw_nan "decode" then begin
              (* Corrupt output for this request's token: discard it
                 and spend an attempt; the next step regenerates. *)
              r.attempts <- r.attempts + 1;
              emit `Retry ~id:r.req.Workload.id ~t_us:!clock
                ~batch:(List.length !running) ~tokens:r.attempts;
              if r.attempts >= opts.retry.max_attempts then begin
                running := List.filter (fun x -> x != r) !running;
                abort r
              end
            end
            else begin
              (match nx with
              | None -> ()
              | Some nx ->
                  let logits = numeric_decode_run nx r in
                  r.last_logits <- Some logits;
                  r.history <- r.history @ [ argmax_token logits ]);
              r.cache_len <- r.cache_len + 1;
              r.generated <- r.generated + 1;
              if r.generated >= r.req.Workload.output_len then begin
                running := List.filter (fun x -> x != r) !running;
                finish r
              end
            end)
          live
      end
    end
  in
  let rec loop () =
    deliver ();
    if past_stop () then ()
    else
      match outage_at !clock with
      | Some (_, until_us) ->
          (* The engine is down: everything in flight loses its KV
             (recompute-preemption on restart) and the clock jumps to
             the window's end, where the restarted engine drains the
             backlog that piled up. *)
          List.iter
            (fun (r : rstate) ->
              Block_manager.release bm ~request_id:r.req.Workload.id;
              r.preempt_count <- r.preempt_count + 1;
              emit `Preempt ~id:r.req.Workload.id ~t_us:!clock
                ~batch:(List.length !running) ~tokens:r.cache_len)
            !running;
          waiting := !running @ !waiting;
          running := [];
          advance_to until_us;
          loop ()
      | None ->
    if !running = [] && !waiting = [] then
      match !arrivals with
      | [] -> ()
      | (r : Workload.request) :: _ ->
          advance_to (cap_stop (max !clock r.Workload.arrival_us));
          loop ()
    else begin
      let progressed = admit () in
      if !running <> [] then begin
        decode_step ();
        loop ()
      end
      else if progressed || !waiting = [] then
        (* Everything admitted finished at its prefill (single-token
           outputs); form the next batch or wait for an arrival. *)
        loop ()
      else
        match (!arrivals, opts.policy) with
        | (r : Workload.request) :: _, Static ->
            (* waiting for the cohort to fill *)
            advance_to (cap_stop (max !clock r.Workload.arrival_us));
            loop ()
        | _ ->
            (* Idle machine, nothing admissible. With faults armed (or
               requests backing off) this is transient: jump to the
               next retry/arrival time and try again. Without, every
               block is free, so a failed admission can never succeed
               later — a genuine budget overrun. *)
            let next_retry =
              List.fold_left
                (fun acc (r : rstate) ->
                  if r.retry_at > !clock then Float.min acc r.retry_at else acc)
                Float.infinity !waiting
            in
            let next_arrival =
              match !arrivals with
              | (a : Workload.request) :: _ -> a.Workload.arrival_us
              | [] -> Float.infinity
            in
            if Option.is_some inj || next_retry < Float.infinity then begin
              let next = Float.min next_retry next_arrival in
              let next =
                if next > !clock && next < Float.infinity then next
                else !clock +. opts.retry.backoff_us
              in
              advance_to (cap_stop next);
              loop ()
            end
            else
              Runtime.Fault.errorf Runtime.Fault.Resource_exhausted
                "Serve: waiting request cannot be admitted on an idle machine \
                 (KV budget too small for its prompt)"
    end
  in
  loop ();
  (* Drain surface (cluster failover): everything not yet finished at
     the stop point — waiting, in flight (KV released: the crashed
     engine's cache is gone) and not-yet-delivered arrivals — is
     handed back for re-admission elsewhere. Empty without [stop_at]. *)
  let drained =
    if stop_at = None then []
    else begin
      List.iter
        (fun (r : rstate) ->
          Block_manager.release bm ~request_id:r.req.Workload.id)
        !running;
      List.map (fun (r : rstate) -> r.req) (!waiting @ !running) @ !arrivals
      |> List.sort (fun (a : Workload.request) (b : Workload.request) ->
             compare
               (a.Workload.arrival_us, a.Workload.id)
               (b.Workload.arrival_us, b.Workload.id))
    end
  in
  let completed = List.rev !completed in
  let occupancy =
    if !decode_time > 0.0 then
      !busy /. (float_of_int opts.max_batch *. !decode_time)
    else 0.0
  in
  let faults =
    match inj with Some i -> Runtime.Fault.injected_total i | None -> 0
  in
  let bstats = Block_manager.stats bm in
  let prefix_hit_rate =
    if bstats.Block_manager.lookup_tokens > 0 then
      float_of_int bstats.Block_manager.hit_tokens
      /. float_of_int bstats.Block_manager.lookup_tokens
    else 0.0
  in
  let kv_bytes_per_token =
    if !kv_logical_block_us > 0.0 then
      !kv_phys_block_us
      *. float_of_int (Block_manager.block_bytes bm)
      /. (!kv_logical_block_us *. float_of_int opts.block_size)
    else 0.0
  in
  {
    completed;
    summary =
      Metrics.summarize ~makespan_us:!clock ~occupancy
        ~submitted:(List.length workload)
        ~shed:(List.length !shed_ids)
        ~timeouts:!timeouts
        ~aborted:(List.length !aborted_ids)
        ~faults ~prefix_hit_rate
        ~cow_copies:bstats.Block_manager.cow_copies ~kv_bytes_per_token
        completed;
    logits = List.rev !logits_out;
    token_streams = List.rev !streams_out;
    clock_us = !clock;
    blocks = bm;
    shed = List.rev !shed_ids;
    aborted = List.rev !aborted_ids;
    drained;
  }
