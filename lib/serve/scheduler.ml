type policy = Continuous | Static

type opts = {
  max_batch : int;
  block_size : int;
  policy : policy;
  kv_budget_bytes : int option;
}

let default_opts =
  { max_batch = 8; block_size = 16; policy = Continuous; kv_budget_bytes = None }

type exec = [ `Sim | `Numeric of int ]

(* ---------- cost model: timed VMs, memoized per rounded shape ---------- *)

type entry = {
  vm : Runtime.Vm.t;
  built : Frontend.Llm.built;
  costs : (int, float) Hashtbl.t;  (** rounded ctx -> elapsed_us *)
}

type model = {
  cfg : Frontend.Configs.t;
  precision : Frontend.Llm.precision;
  device : Runtime.Device.t;
  decode_entries : (int, entry) Hashtbl.t;  (** batch bucket -> entry *)
  mutable prefill_entry : entry option;
  mutable numeric_decode : (Frontend.Llm.built * Runtime.Vm.program) option;
  mutable numeric_prefill : (Frontend.Llm.built * Runtime.Vm.program) option;
}

let model ~cfg ~precision ~device =
  {
    cfg;
    precision;
    device;
    decode_entries = Hashtbl.create 8;
    prefill_entry = None;
    numeric_decode = None;
    numeric_prefill = None;
  }

let compile built device =
  Relax_passes.Pipeline.compile
    ~options:
      { Relax_passes.Pipeline.default_options with
        Relax_passes.Pipeline.upper_bounds = Frontend.Llm.upper_bound_hints built }
    ~device built.Frontend.Llm.mod_

let warmup vm (built : Frontend.Llm.built) =
  (* First run pays per-kernel launch overheads and records the
     captured graph; memoized costs below are steady-state replays. *)
  ignore
    (Runtime.Vm.run vm built.Frontend.Llm.entry
       (Frontend.Llm.args_for built ~ctx:1 ~mode:`Shadow ()))

let decode_entry m bucket =
  match Hashtbl.find_opt m.decode_entries bucket with
  | Some e -> e
  | None ->
      let built = Frontend.Llm.decode_paged m.cfg ~batch:bucket m.precision in
      let vm = Runtime.Vm.create (`Timed m.device) (compile built m.device) in
      warmup vm built;
      let e = { vm; built; costs = Hashtbl.create 32 } in
      Hashtbl.add m.decode_entries bucket e;
      e

let prefill_entry m =
  match m.prefill_entry with
  | Some e -> e
  | None ->
      let built = Frontend.Llm.prefill ~return_caches:false m.cfg m.precision in
      let vm = Runtime.Vm.create (`Timed m.device) (compile built m.device) in
      warmup vm built;
      let e = { vm; built; costs = Hashtbl.create 32 } in
      m.prefill_entry <- Some e;
      e

let cost_of (e : entry) ctx =
  match Hashtbl.find_opt e.costs ctx with
  | Some c -> c
  | None ->
      let st = Runtime.Vm.stats e.vm in
      let before = st.Runtime.Vm.elapsed_us in
      ignore
        (Runtime.Vm.run e.vm e.built.Frontend.Llm.entry
           (Frontend.Llm.args_for e.built ~ctx ~mode:`Shadow ()));
      let c = st.Runtime.Vm.elapsed_us -. before in
      Hashtbl.add e.costs ctx c;
      c

(* Smallest power-of-two batch >= live, capped at max_batch: one
   compiled program per bucket instead of one per batch size. *)
let bucket_for ~max_batch live =
  let rec go b = if b >= live then b else go (2 * b) in
  min (go 1) max_batch

let round_up n step = (n + step - 1) / step * step

(* ---------- per-request runtime state ---------- *)

type rstate = {
  req : Workload.request;
  mutable cache_len : int;  (** KV positions filled (0 = never prefilled) *)
  mutable generated : int;
  mutable first_token_us : float;
  mutable preempt_count : int;
  (* numeric-mode state *)
  mutable history : int list;  (** prompt tokens then generated tokens *)
  mutable ncaches : Runtime.Vm.value list;  (** persistent paged caches *)
  mutable last_logits : Base.Ndarray.t option;
}

(* ---------- numeric execution (tiny configs) ---------- *)

type numeric = {
  dec_vm : Runtime.Vm.t;
  dec_built : Frontend.Llm.built;
  pre_vm : Runtime.Vm.t;
  pre_built : Frontend.Llm.built;
  weights : Runtime.Vm.value list;  (** embedding :: layer weights... *)
  seed : int;
}

let numeric_ctx m seed =
  let dec_built, dec_prog =
    match m.numeric_decode with
    | Some p -> p
    | None ->
        let built = Frontend.Llm.decode_paged m.cfg ~batch:1 m.precision in
        let p = (built, compile built m.device) in
        m.numeric_decode <- Some p;
        p
  in
  let pre_built, pre_prog =
    match m.numeric_prefill with
    | Some p -> p
    | None ->
        let built = Frontend.Llm.prefill ~return_caches:true m.cfg m.precision in
        let p = (built, compile built m.device) in
        m.numeric_prefill <- Some p;
        p
  in
  (* decode_paged params are ids, cur_len, caches..., embedding,
     weights...; the tail from the embedding onward is exactly
     prefill's tail, so both programs share one weight set. *)
  let template = Frontend.Llm.args_for dec_built ~ctx:0 ~seed ~mode:`Numeric () in
  let weights =
    List.filteri (fun i _ -> i >= 2 + (2 * m.cfg.Frontend.Configs.layers)) template
  in
  {
    dec_vm = Runtime.Vm.create `Numeric dec_prog;
    dec_built;
    pre_vm = Runtime.Vm.create `Numeric pre_prog;
    pre_built;
    weights;
    seed;
  }

let prompt_tokens (nx : numeric) vocab (req : Workload.request) =
  let st = Random.State.make [| nx.seed; req.Workload.id |] in
  List.init req.Workload.prompt_len (fun _ -> Random.State.int st vocab)

let argmax_token logits =
  let n = Base.Ndarray.numel logits in
  let best = ref 0 and best_v = ref neg_infinity in
  for i = 0 to n - 1 do
    let v = Base.Ndarray.get_flat_float logits i in
    if v > !best_v then begin
      best_v := v;
      best := i
    end
  done;
  !best

let fresh_caches (cfg : Frontend.Configs.t) =
  List.init
    (2 * cfg.Frontend.Configs.layers)
    (fun _ ->
      Runtime.Vm.tensor
        (Base.Ndarray.create Base.Dtype.F16
           [|
             1;
             cfg.Frontend.Configs.kv_heads;
             cfg.Frontend.Configs.max_context;
             cfg.Frontend.Configs.head_dim;
           |]))

(* Run prefill over [tokens] and write the returned (1,kv,n,d) caches
   into the request's persistent (1,kv,mmax,d) paged tensors. *)
let numeric_prefill_run nx (cfg : Frontend.Configs.t) (r : rstate) tokens =
  if r.ncaches = [] then r.ncaches <- fresh_caches cfg;
  let n = List.length tokens in
  let ids =
    Runtime.Vm.tensor (Base.Ndarray.of_int_list Base.Dtype.I32 [| n |] tokens)
  in
  match Runtime.Vm.run nx.pre_vm nx.pre_built.Frontend.Llm.entry (ids :: nx.weights) with
  | Runtime.Vm.Tuple_val (logits :: caches) ->
      List.iter2
        (fun fresh persistent ->
          let src = Runtime.Vm.value_tensor fresh in
          let dst = Runtime.Vm.value_tensor persistent in
          let kv = cfg.Frontend.Configs.kv_heads
          and d = cfg.Frontend.Configs.head_dim in
          for h = 0 to kv - 1 do
            for p = 0 to n - 1 do
              for x = 0 to d - 1 do
                Base.Ndarray.set_float dst [| 0; h; p; x |]
                  (Base.Ndarray.get_float src [| 0; h; p; x |])
              done
            done
          done)
        caches r.ncaches;
      Runtime.Vm.value_tensor logits
  | _ -> failwith "Serve: prefill did not return (logits, caches...)"

let numeric_decode_run nx (r : rstate) =
  let last = List.nth r.history (List.length r.history - 1) in
  let ids =
    Runtime.Vm.tensor (Base.Ndarray.of_int_list Base.Dtype.I32 [| 1 |] [ last ])
  in
  let args =
    (ids :: Runtime.Vm.Shape_val [| r.cache_len |] :: r.ncaches) @ nx.weights
  in
  let out = Runtime.Vm.run nx.dec_vm nx.dec_built.Frontend.Llm.entry args in
  match out with
  | Runtime.Vm.Tuple_val (l :: _) -> Runtime.Vm.value_tensor l
  | v -> Runtime.Vm.value_tensor v

(* ---------- the serving loop ---------- *)

type result = {
  completed : Metrics.request_metrics list;
  summary : Metrics.summary;
  logits : (int * Base.Ndarray.t) list;
  clock_us : float;
  blocks : Block_manager.t;
}

let run ?trace ?(exec = `Sim) m opts workload =
  if opts.max_batch < 1 then invalid_arg "Scheduler.run: max_batch < 1";
  let cfg = m.cfg in
  let mmax = cfg.Frontend.Configs.max_context in
  List.iter
    (fun (r : Workload.request) ->
      if r.Workload.prompt_len + r.Workload.output_len > mmax then
        invalid_arg
          (Printf.sprintf "Serve: request %d needs %d tokens > max_context %d"
             r.Workload.id
             (r.Workload.prompt_len + r.Workload.output_len)
             mmax))
    workload;
  let nx = match exec with `Sim -> None | `Numeric seed -> Some (numeric_ctx m seed) in
  let alloc = Runtime.Allocator.create `Pooling in
  let bm =
    Block_manager.create ?kv_budget_bytes:opts.kv_budget_bytes ~cfg
      ~precision:m.precision ~block_size:opts.block_size ~device:m.device alloc
  in
  let emit tag ~id ~t_us ~batch ~tokens =
    match trace with
    | None -> ()
    | Some sink -> sink (Runtime.Trace.Serve { tag; id; t_us; batch; tokens })
  in
  let clock = ref 0.0 in
  let arrivals = ref workload in
  let waiting = ref [] in
  let running = ref [] in
  let completed = ref [] in
  let logits_out = ref [] in
  let cohort = ref 0 in
  let busy = ref 0.0 and decode_time = ref 0.0 in
  let decode_cost ~live ~ctx =
    let bucket = bucket_for ~max_batch:opts.max_batch live in
    let ctx' = min (max 1 (round_up ctx opts.block_size)) (mmax - 1) in
    cost_of (decode_entry m bucket) ctx'
  in
  let prefill_cost n =
    let ctx' = min (max 1 (round_up n opts.block_size)) mmax in
    cost_of (prefill_entry m) ctx'
  in
  let deliver () =
    let rec go () =
      match !arrivals with
      | (r : Workload.request) :: rest when r.Workload.arrival_us <= !clock ->
          arrivals := rest;
          waiting :=
            !waiting
            @ [
                {
                  req = r;
                  cache_len = 0;
                  generated = 0;
                  first_token_us = 0.0;
                  preempt_count = 0;
                  history = [];
                  ncaches = [];
                  last_logits = None;
                };
              ];
          emit `Request_arrive ~id:r.Workload.id ~t_us:r.Workload.arrival_us
            ~batch:(List.length !running) ~tokens:r.Workload.prompt_len;
          go ()
      | _ -> ()
    in
    go ()
  in
  let finish (r : rstate) =
    Block_manager.release bm ~request_id:r.req.Workload.id;
    emit `Finish ~id:r.req.Workload.id ~t_us:!clock
      ~batch:(List.length !running) ~tokens:r.generated;
    (match r.last_logits with
    | Some l -> logits_out := (r.req.Workload.id, l) :: !logits_out
    | None -> ());
    completed :=
      {
        Metrics.id = r.req.Workload.id;
        arrival_us = r.req.Workload.arrival_us;
        first_token_us = r.first_token_us;
        finish_us = !clock;
        prompt_len = r.req.Workload.prompt_len;
        tokens = r.generated;
        preemptions = r.preempt_count;
      }
      :: !completed
  in
  (* Admit one request from the head of the waiting queue: charge its
     (re-)prefill, produce the first token if fresh. Returns false if
     its blocks don't fit (admission control; no preemption here). *)
  let admit_head () =
    match !waiting with
    | [] -> false
    | r :: rest ->
        let target =
          if r.cache_len = 0 then r.req.Workload.prompt_len else r.cache_len
        in
        if not (Block_manager.grow bm ~request_id:r.req.Workload.id ~tokens:target)
        then false
        else begin
          waiting := rest;
          clock := !clock +. prefill_cost target;
          emit `Prefill ~id:r.req.Workload.id ~t_us:!clock
            ~batch:(List.length !running + 1) ~tokens:target;
          if r.cache_len = 0 then begin
            (* Fresh: prefill over the prompt yields the first token. *)
            (match nx with
            | None -> ()
            | Some nx ->
                let toks = prompt_tokens nx cfg.Frontend.Configs.vocab r.req in
                let logits = numeric_prefill_run nx cfg r toks in
                r.last_logits <- Some logits;
                r.history <- toks @ [ argmax_token logits ]);
            r.cache_len <- target;
            r.generated <- 1;
            r.first_token_us <- !clock;
            if r.generated >= r.req.Workload.output_len then finish r
            else running := !running @ [ r ]
          end
          else begin
            (* Preempted earlier: re-prefill the cached positions
               (recompute); the pending last token is consumed by the
               next decode step, so [generated] does not advance. *)
            (match nx with
            | None -> ()
            | Some nx ->
                ignore
                  (numeric_prefill_run nx cfg r
                     (List.filteri (fun i _ -> i < r.cache_len) r.history)));
            running := !running @ [ r ]
          end;
          true
        end
  in
  (* Returns true if at least one request was admitted this round
     (admitted requests may finish instantly on single-token outputs,
     so progress is not the same as a non-empty running batch). *)
  let admit () =
    let admitted = ref 0 in
    (match opts.policy with
    | Continuous ->
        let continue_ = ref true in
        while
          !continue_ && List.length !running < opts.max_batch && !waiting <> []
        do
          continue_ := admit_head ();
          if !continue_ then incr admitted
        done
    | Static ->
        (* Cohorts only form when the machine is idle, and only at
           full width (or from the final stragglers once the stream
           has ended) — the static baseline's inefficiency. *)
        if
          !running = []
          && (List.length !waiting >= opts.max_batch || !arrivals = [])
          && !waiting <> []
        then begin
          while !admitted < opts.max_batch && !waiting <> [] && admit_head () do
            incr admitted
          done;
          cohort := List.length !running
        end);
    !admitted > 0
  in
  (* Grow [r]'s cache for the next decode write; on block exhaustion,
     preempt from the tail of the running batch (latest admitted
     first — FCFS priority). Returns false if [r] preempted itself. *)
  let rec ensure_capacity (r : rstate) =
    if Block_manager.grow bm ~request_id:r.req.Workload.id ~tokens:(r.cache_len + 1)
    then true
    else
      match List.rev !running with
      | [] -> failwith "Serve: empty batch cannot grow"
      | victim :: _ ->
          if victim == r && List.length !running = 1 then
            failwith
              (Printf.sprintf
                 "Serve: request %d alone exceeds the KV budget (%d blocks)"
                 r.req.Workload.id (Block_manager.total_blocks bm));
          Block_manager.release bm ~request_id:victim.req.Workload.id;
          victim.preempt_count <- victim.preempt_count + 1;
          running := List.filter (fun x -> x != victim) !running;
          waiting := victim :: !waiting;
          emit `Preempt ~id:victim.req.Workload.id ~t_us:!clock
            ~batch:(List.length !running) ~tokens:victim.cache_len;
          if victim == r then false else ensure_capacity r
  in
  let decode_step () =
    (* Capacity first: every survivor must fit its next KV write.
       Skip requests a previous iteration already preempted — they
       must not grow blocks from the waiting queue. *)
    List.iter
      (fun r -> if List.memq r !running then ignore (ensure_capacity r))
      !running;
    let live = !running in
    let nlive = List.length live in
    if nlive > 0 then begin
      let cost_batch =
        match opts.policy with
        | Continuous -> nlive
        | Static -> max nlive !cohort  (* fixed cohort width until drained *)
      in
      let ctx = List.fold_left (fun acc r -> max acc r.cache_len) 0 live in
      let dt = decode_cost ~live:cost_batch ~ctx in
      clock := !clock +. dt;
      busy := !busy +. (float_of_int nlive *. dt);
      decode_time := !decode_time +. dt;
      emit `Decode_step ~id:(-1) ~t_us:!clock ~batch:nlive ~tokens:nlive;
      List.iter
        (fun r ->
          (match nx with
          | None -> ()
          | Some nx ->
              let logits = numeric_decode_run nx r in
              r.last_logits <- Some logits;
              r.history <- r.history @ [ argmax_token logits ]);
          r.cache_len <- r.cache_len + 1;
          r.generated <- r.generated + 1;
          if r.generated >= r.req.Workload.output_len then begin
            running := List.filter (fun x -> x != r) !running;
            finish r
          end)
        live
    end
  in
  let rec loop () =
    deliver ();
    if !running = [] && !waiting = [] then
      match !arrivals with
      | [] -> ()
      | (r : Workload.request) :: _ ->
          clock := max !clock r.Workload.arrival_us;
          loop ()
    else begin
      let progressed = admit () in
      if !running <> [] then begin
        decode_step ();
        loop ()
      end
      else if progressed || !waiting = [] then
        (* Everything admitted finished at its prefill (single-token
           outputs); form the next batch or wait for an arrival. *)
        loop ()
      else
        match (!arrivals, opts.policy) with
        | r :: _, Static ->
            (* waiting for the cohort to fill *)
            clock := max !clock r.Workload.arrival_us;
            loop ()
        | _ :: _, Continuous | [], _ ->
            (* With an idle machine every block is free, so a failed
               admission can never succeed later. *)
            failwith
              "Serve: waiting request cannot be admitted on an idle machine \
               (KV budget too small for its prompt)"
    end
  in
  loop ();
  let completed = List.rev !completed in
  let occupancy =
    if !decode_time > 0.0 then
      !busy /. (float_of_int opts.max_batch *. !decode_time)
    else 0.0
  in
  {
    completed;
    summary = Metrics.summarize ~makespan_us:!clock ~occupancy completed;
    logits = List.rev !logits_out;
    clock_us = !clock;
    blocks = bm;
  }
