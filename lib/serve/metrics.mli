(** Serving quality metrics: the numbers the paper's serving
    evaluation reports (per-request TTFT, per-output-token latency,
    end-to-end latency with tail percentiles; aggregate tokens/sec and
    batch occupancy). *)

type request_metrics = {
  id : int;
  arrival_us : float;
  first_token_us : float;  (** absolute clock at first output token *)
  finish_us : float;
  prompt_len : int;
  tokens : int;  (** output tokens generated *)
  preemptions : int;
}

type pct = { p50 : float; p95 : float; p99 : float }

type summary = {
  completed : int;
  makespan_us : float;
  tokens_per_s : float;  (** output tokens / makespan *)
  ttft_us : pct;  (** first_token - arrival *)
  per_token_us : pct;
      (** (e2e - ttft) / (tokens - 1) per request; requests with one
          output token contribute their TTFT-to-finish gap (0). *)
  e2e_us : pct;
  occupancy : float;
      (** time-weighted decode batch utilization: sum(live * dt) /
          (max_batch * sum(dt)) over decode steps, in [0, 1] *)
  preemptions : int;
}

val percentile : float -> float list -> float
(** Nearest-rank percentile, [p] in [0, 100]; 0.0 on the empty list. *)

val summarize :
  makespan_us:float -> occupancy:float -> request_metrics list -> summary

val to_string : summary -> string
(** Multi-line human-readable report (printed by [--serve]). *)
