(** Serving quality metrics: the numbers the paper's serving
    evaluation reports (per-request TTFT, per-output-token latency,
    end-to-end latency with tail percentiles; aggregate tokens/sec and
    batch occupancy), plus the resilience counters the chaos
    experiment sweeps (goodput, SLO attainment, shed/timeout/
    retry/abort/fault counts). *)

type request_metrics = {
  id : int;
  arrival_us : float;
  first_token_us : float;  (** absolute clock at first output token *)
  finish_us : float;
  prompt_len : int;
  tokens : int;  (** output tokens generated *)
  preemptions : int;
  retries : int;  (** attempts consumed by transient faults / corrupt tokens *)
  deadline_us : float option;  (** the request's SLO deadline, if any *)
}

type pct = { p50 : float; p95 : float; p99 : float }

type summary = {
  completed : int;
  submitted : int;
      (** requests offered to the engine: completed + shed + aborted *)
  makespan_us : float;
  tokens_per_s : float;  (** output tokens / makespan *)
  goodput_tokens_per_s : float;
      (** output tokens of deadline-meeting completions / makespan —
          tokens delivered too late (or to deadline-less requests,
          which always count) don't inflate it *)
  slo_attainment : float;
      (** deadline-meeting completions / submitted, in [0, 1];
          deadline-less completions count as met, shed/aborted
          requests count as missed; 1.0 when nothing was submitted *)
  ttft_us : pct;  (** first_token - arrival *)
  per_token_us : pct;
      (** (e2e - ttft) / (tokens - 1) per request; requests with one
          output token contribute their TTFT-to-finish gap (0). *)
  e2e_us : pct;
  occupancy : float;
      (** time-weighted decode batch utilization: sum(live * dt) /
          (max_batch * sum(dt)) over decode steps, in [0, 1] *)
  preemptions : int;
  retries : int;  (** summed over completed requests *)
  shed : int;  (** rejected by admission control (includes timeouts) *)
  timeouts : int;  (** subset of [shed]: deadline already passed *)
  aborted : int;  (** gave up mid-flight: retry budget or infeasible *)
  faults : int;  (** fault events injected during the run *)
  prefix_hit_rate : float;
      (** prompt tokens served from the shared prefix cache / total
          prompt tokens looked up, in [0, 1]; 0 when sharing is off *)
  cow_copies : int;  (** copy-on-write block copies made by shared writers *)
  kv_bytes_per_token : float;
      (** time-averaged physical KV bytes per logical cached token:
          integral of resident block bytes over the run divided by the
          integral of logical (per-request) cached tokens. Equals
          bytes-per-token of one block exactly when nothing is shared;
          sharing pushes it below that. 0 when the engine didn't
          measure it. *)
  failovers : int;
      (** distinct requests migrated off a crashed replica at least
          once (0 outside a faulted cluster run) *)
  migrations : int;
      (** total migration events; ≥ [failovers] when a request had to
          move more than once before completing *)
  hedges : int;  (** duplicate dispatches issued to cover stragglers *)
  hedge_wins : int;  (** hedge copies that finished before the primary *)
  replica_downtime_us : float;
      (** summed health-model Down time across replicas, clipped to
          the run *)
}

val percentile : float -> float list -> float
(** Nearest-rank percentile, [p] in [0, 100]; 0.0 on the empty list.
    [p = 0] returns the minimum, [p = 100] the maximum. Non-finite
    samples (NaN/inf from degenerate folds, e.g. a replica that
    completed nothing) are dropped before ranking, so the result is
    always finite. *)

val summarize :
  makespan_us:float ->
  occupancy:float ->
  ?submitted:int ->
  ?shed:int ->
  ?timeouts:int ->
  ?aborted:int ->
  ?faults:int ->
  ?prefix_hit_rate:float ->
  ?cow_copies:int ->
  ?kv_bytes_per_token:float ->
  ?failovers:int ->
  ?migrations:int ->
  ?hedges:int ->
  ?hedge_wins:int ->
  ?replica_downtime_us:float ->
  request_metrics list ->
  summary
(** The optional resilience counters default to 0 ([submitted]
    defaults to [completed + shed + aborted]), so fault-free callers
    get the same summary as the pre-fault engine. The sharing and
    failover fields likewise default to 0, matching a sharing-off /
    single-replica run. *)

val to_string : summary -> string
(** Multi-line human-readable report (printed by [--serve]). The
    resilience/goodput lines appear only when something
    resilience-related happened (shed/abort/retry/fault > 0 or
    SLO attainment < 100%); the kv-sharing line only when the prefix
    cache hit or copy-on-wrote at least once; the failover line only
    when a request migrated, a hedge fired, or a replica was Down. *)
