type request = {
  id : int;
  arrival_us : float;
  prompt_len : int;
  output_len : int;
  deadline_us : float option;
  prompt_tokens : int list option;
  fork_of : int option;
}

type dist = Fixed of int | Uniform of int * int

type t = request list

let sample st = function
  | Fixed n -> n
  | Uniform (lo, hi) ->
      if hi <= lo then lo else lo + Random.State.int st (hi - lo + 1)

let generate ~seed ~rate_per_s ~num_requests ?max_total ?deadline_slack ~prompt
    ~output () =
  if rate_per_s <= 0.0 then invalid_arg "Workload.generate: rate must be > 0";
  let st = Random.State.make [| seed |] in
  let clock = ref 0.0 in
  List.init num_requests (fun id ->
      (* Exponential inter-arrival: -ln(1-u)/rate, in microseconds. *)
      let u = Random.State.float st 1.0 in
      clock := !clock +. (-.log (1.0 -. u) /. rate_per_s *. 1e6);
      let p = max 1 (sample st prompt) in
      let o = max 1 (sample st output) in
      let p, o =
        match max_total with
        | None -> (p, o)
        | Some m ->
            let p = min p (max 1 (m - 1)) in
            (p, min o (max 1 (m - p)))
      in
      (* Deadline slack is drawn only when requested, so deadline-free
         workloads consume exactly the same PRNG stream as before. *)
      let deadline_us =
        match deadline_slack with
        | None -> None
        | Some d -> Some (!clock +. float_of_int (max 1 (sample st d)))
      in
      {
        id;
        arrival_us = !clock;
        prompt_len = p;
        output_len = o;
        deadline_us;
        prompt_tokens = None;
        fork_of = None;
      })

let with_deadline ~slack_us t =
  List.map (fun r -> { r with deadline_us = Some (r.arrival_us +. slack_us) }) t

let total_output_tokens t =
  List.fold_left (fun acc r -> acc + r.output_len) 0 t

(* ---------- shared-prefix scenario generators ---------- *)

(* Re-id a generated batch in arrival order (the scheduler and the
   FCFS tests rely on id = arrival rank), remapping fork parents
   through the renumbering. Stable sort keeps generation order for
   simultaneous arrivals, so a fork child can never be renumbered
   ahead of its parent. *)
let finalize reqs =
  let sorted =
    List.stable_sort (fun a b -> compare a.arrival_us b.arrival_us) reqs
  in
  let remap = Hashtbl.create (List.length sorted) in
  List.iteri (fun i r -> Hashtbl.replace remap r.id i) sorted;
  List.mapi
    (fun i r ->
      {
        r with
        id = i;
        fork_of = Option.map (fun p -> Hashtbl.find remap p) r.fork_of;
      })
    sorted

let exp_gap st rate_per_s =
  let u = Random.State.float st 1.0 in
  -.log (1.0 -. u) /. rate_per_s *. 1e6

let draw_tokens st vocab n = List.init n (fun _ -> Random.State.int st vocab)

let deadline_of st deadline_slack arrival =
  match deadline_slack with
  | None -> None
  | Some d -> Some (arrival +. float_of_int (max 1 (sample st d)))

let multi_turn_chat ~seed ~rate_per_s ~sessions ~turns ?(vocab = 256)
    ?(system_len = 32) ?(think_time_us = 200_000.0) ?max_total ?deadline_slack
    ~turn_user ~output () =
  if rate_per_s <= 0.0 then
    invalid_arg "Workload.multi_turn_chat: rate must be > 0";
  if sessions < 1 || turns < 1 then
    invalid_arg "Workload.multi_turn_chat: sessions and turns must be >= 1";
  if vocab < 1 then invalid_arg "Workload.multi_turn_chat: vocab must be >= 1";
  let st = Random.State.make [| seed; 0x6d74 |] in
  (* One system prompt shared verbatim by every session: the
     cross-request prefix the sharing cache exists for. *)
  let system = draw_tokens st vocab system_len in
  let clock = ref 0.0 in
  let reqs = ref [] in
  let next_id = ref 0 in
  for _ = 1 to sessions do
    clock := !clock +. exp_gap st rate_per_s;
    let t = ref !clock in
    let history = ref system in
    (try
       for _ = 1 to turns do
         let user = draw_tokens st vocab (max 1 (sample st turn_user)) in
         let prompt = !history @ user in
         let o = max 1 (sample st output) in
         let plen = List.length prompt in
         (match max_total with
         | Some m when plen + o > m -> raise Exit  (* session outgrew ctx *)
         | _ -> ());
         reqs :=
           {
             id = !next_id;
             arrival_us = !t;
             prompt_len = plen;
             output_len = o;
             deadline_us = deadline_of st deadline_slack !t;
             prompt_tokens = Some prompt;
             fork_of = None;
           }
           :: !reqs;
         incr next_id;
         (* The next turn's prompt embeds a synthetic assistant reply
            of the same length the engine will generate, so successive
            turns share a strictly growing prefix. *)
         history := prompt @ draw_tokens st vocab o;
         t := !t +. exp_gap st (1e6 /. think_time_us)
       done
     with Exit -> ())
  done;
  finalize !reqs

let bursty ~seed ~base_rate_per_s ~burst_rate_per_s ~period_s ~duty
    ~num_requests ?(vocab = 256) ?(shared_prefix_len = 0) ?max_total
    ?deadline_slack ~prompt ~output () =
  if base_rate_per_s <= 0.0 || burst_rate_per_s <= 0.0 then
    invalid_arg "Workload.bursty: rates must be > 0";
  if period_s <= 0.0 || duty <= 0.0 || duty >= 1.0 then
    invalid_arg "Workload.bursty: need period > 0 and duty in (0, 1)";
  let st = Random.State.make [| seed; 0x6275 |] in
  let shared =
    if shared_prefix_len > 0 then draw_tokens st vocab shared_prefix_len
    else []
  in
  let period_us = period_s *. 1e6 in
  let burst_us = duty *. period_us in
  (* Piecewise-constant Poisson process: each period opens with a
     burst phase at [burst_rate], then relaxes to [base_rate]. The
     exponential is memoryless, so a draw that crosses a phase
     boundary is simply restarted at the boundary with the new rate. *)
  let clock = ref 0.0 in
  let next_arrival () =
    let rec go () =
      let phase = Float.rem !clock period_us in
      let in_burst = phase < burst_us in
      let rate = if in_burst then burst_rate_per_s else base_rate_per_s in
      let boundary =
        !clock -. phase +. (if in_burst then burst_us else period_us)
      in
      let dt = exp_gap st rate in
      if !clock +. dt > boundary then begin
        clock := boundary;
        go ()
      end
      else clock := !clock +. dt
    in
    go ()
  in
  List.init num_requests (fun id ->
      next_arrival ();
      let p = max 1 (sample st prompt) in
      let o = max 1 (sample st output) in
      let p, o =
        match max_total with
        | None -> (p, o)
        | Some m ->
            let p = min p (max 1 (m - 1)) in
            (p, min o (max 1 (m - p)))
      in
      let suffix = draw_tokens st vocab (max 0 (p - List.length shared)) in
      let tokens = List.filteri (fun i _ -> i < p) shared @ suffix in
      {
        id;
        arrival_us = !clock;
        prompt_len = p;
        output_len = o;
        deadline_us = deadline_of st deadline_slack !clock;
        prompt_tokens = Some tokens;
        fork_of = None;
      })

let best_of_n ~seed ~rate_per_s ~groups ~n ?(vocab = 256)
    ?(fork_delay_us = 1_000.0) ?max_total ?deadline_slack ~prompt ~output () =
  if rate_per_s <= 0.0 then invalid_arg "Workload.best_of_n: rate must be > 0";
  if groups < 1 || n < 1 then
    invalid_arg "Workload.best_of_n: groups and n must be >= 1";
  let st = Random.State.make [| seed; 0x626f |] in
  let clock = ref 0.0 in
  let reqs = ref [] in
  let next_id = ref 0 in
  for _ = 1 to groups do
    clock := !clock +. exp_gap st rate_per_s;
    let p = max 1 (sample st prompt) in
    let o = max 1 (sample st output) in
    let p, o =
      match max_total with
      | None -> (p, o)
      | Some m ->
          let p = min p (max 1 (m - 1)) in
          (p, min o (max 1 (m - p)))
    in
    let tokens = draw_tokens st vocab p in
    let parent_id = !next_id in
    reqs :=
      {
        id = parent_id;
        arrival_us = !clock;
        prompt_len = p;
        output_len = o;
        deadline_us = deadline_of st deadline_slack !clock;
        prompt_tokens = Some tokens;
        fork_of = None;
      }
      :: !reqs;
    incr next_id;
    (* n-1 samples fork the parent's decode state mid-stream; each
       staggers a little further into the parent's generation. If the
       parent has already finished (or was never admitted) when a
       child reaches admission, the child falls back to prefilling the
       same prompt — either way the token content is shared. *)
    for k = 1 to n - 1 do
      let at = !clock +. (float_of_int k *. fork_delay_us) in
      let o_child = max 1 (sample st output) in
      let o_child =
        match max_total with Some m -> min o_child (max 1 (m - p)) | None -> o_child
      in
      reqs :=
        {
          id = !next_id;
          arrival_us = at;
          prompt_len = p;
          output_len = o_child;
          deadline_us = deadline_of st deadline_slack at;
          prompt_tokens = Some tokens;
          fork_of = Some parent_id;
        }
        :: !reqs;
      incr next_id
    done
  done;
  finalize !reqs
