type request = {
  id : int;
  arrival_us : float;
  prompt_len : int;
  output_len : int;
  deadline_us : float option;
}

type dist = Fixed of int | Uniform of int * int

type t = request list

let sample st = function
  | Fixed n -> n
  | Uniform (lo, hi) ->
      if hi <= lo then lo else lo + Random.State.int st (hi - lo + 1)

let generate ~seed ~rate_per_s ~num_requests ?max_total ?deadline_slack ~prompt
    ~output () =
  if rate_per_s <= 0.0 then invalid_arg "Workload.generate: rate must be > 0";
  let st = Random.State.make [| seed |] in
  let clock = ref 0.0 in
  List.init num_requests (fun id ->
      (* Exponential inter-arrival: -ln(1-u)/rate, in microseconds. *)
      let u = Random.State.float st 1.0 in
      clock := !clock +. (-.log (1.0 -. u) /. rate_per_s *. 1e6);
      let p = max 1 (sample st prompt) in
      let o = max 1 (sample st output) in
      let p, o =
        match max_total with
        | None -> (p, o)
        | Some m ->
            let p = min p (max 1 (m - 1)) in
            (p, min o (max 1 (m - p)))
      in
      (* Deadline slack is drawn only when requested, so deadline-free
         workloads consume exactly the same PRNG stream as before. *)
      let deadline_us =
        match deadline_slack with
        | None -> None
        | Some d -> Some (!clock +. float_of_int (max 1 (sample st d)))
      in
      { id; arrival_us = !clock; prompt_len = p; output_len = o; deadline_us })

let with_deadline ~slack_us t =
  List.map (fun r -> { r with deadline_us = Some (r.arrival_us +. slack_us) }) t

let total_output_tokens t =
  List.fold_left (fun acc r -> acc + r.output_len) 0 t
