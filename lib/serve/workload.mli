(** Reproducible request streams for the serving engine.

    Arrivals follow a Poisson process (exponential inter-arrival
    times) and prompt/output lengths are drawn from configurable
    distributions, all from one explicitly seeded PRNG — the same seed
    always yields the same workload, which the golden serving tests
    and the benchmark sweep rely on. *)

type request = {
  id : int;  (** 0-based arrival order *)
  arrival_us : float;
  prompt_len : int;
  output_len : int;  (** tokens to generate, >= 1 *)
  deadline_us : float option;
      (** absolute SLO deadline on the engine clock: the request
          should finish by this time. [None] = best-effort (always
          counts as meeting its SLO). Deadline-aware schedulers shed
          requests that cannot meet it. *)
}

type dist =
  | Fixed of int
  | Uniform of int * int  (** inclusive bounds *)

type t = request list
(** Sorted by [arrival_us]; ids are assigned in arrival order. *)

val generate :
  seed:int ->
  rate_per_s:float ->
  num_requests:int ->
  ?max_total:int ->
  ?deadline_slack:dist ->
  prompt:dist ->
  output:dist ->
  unit ->
  t
(** [max_total] clamps each request so
    [prompt_len + output_len <= max_total] (pass the model's
    [max_context]); lengths are clamped to at least 1.

    [deadline_slack] draws a per-request slack in microseconds
    (clamped to >= 1) and sets [deadline_us = arrival_us + slack].
    Omitted: deadlines are [None] and the PRNG stream is identical to
    pre-deadline workloads (the slack draw is skipped entirely), so
    seeded workloads reproduce bit-for-bit.

    @raise Invalid_argument when [rate_per_s <= 0]. *)

val with_deadline : slack_us:float -> t -> t
(** Stamp every request with [deadline_us = arrival_us + slack_us].
    Purely a map — no PRNG involved. *)

val total_output_tokens : t -> int
