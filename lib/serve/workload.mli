(** Reproducible request streams for the serving engine.

    Arrivals follow a Poisson process (exponential inter-arrival
    times) and prompt/output lengths are drawn from configurable
    distributions, all from one explicitly seeded PRNG — the same seed
    always yields the same workload, which the golden serving tests
    and the benchmark sweep rely on.

    Beyond the plain Poisson stream ({!generate}), three scenario
    generators exercise cross-request KV prefix sharing: multi-turn
    chat over a shared system prompt ({!multi_turn_chat}), bursty
    diurnal arrivals with an optional shared prefix ({!bursty}), and
    best-of-n sampling that forks a parent's decode state mid-stream
    ({!best_of_n}). These attach explicit [prompt_tokens], which is
    what the block manager's prefix tree matches on — requests without
    token ids never share. *)

type request = {
  id : int;  (** 0-based arrival order *)
  arrival_us : float;
  prompt_len : int;
  output_len : int;  (** tokens to generate, >= 1 *)
  deadline_us : float option;
      (** absolute SLO deadline on the engine clock: the request
          should finish by this time. [None] = best-effort (always
          counts as meeting its SLO). Deadline-aware schedulers shed
          requests that cannot meet it. *)
  prompt_tokens : int list option;
      (** explicit prompt token ids (length = [prompt_len]). [Some]:
          the prefix cache can match and cache this prompt; numeric
          execution feeds exactly these ids (mod vocab). [None]: the
          request never participates in sharing and numeric mode
          derives ids from the run seed as before. *)
  fork_of : int option;
      (** [Some p]: this request is a best-of-n sample forking request
          [p]'s decode state. If [p] still holds its KV when this
          request is admitted, admission shares (or, sharing off,
          copies) [p]'s blocks and inherits its stream instead of
          prefilling; otherwise it falls back to a normal prefill of
          its own [prompt_tokens]. *)
}

type dist =
  | Fixed of int
  | Uniform of int * int  (** inclusive bounds *)

type t = request list
(** Sorted by [arrival_us]; ids are assigned in arrival order. *)

val generate :
  seed:int ->
  rate_per_s:float ->
  num_requests:int ->
  ?max_total:int ->
  ?deadline_slack:dist ->
  prompt:dist ->
  output:dist ->
  unit ->
  t
(** [max_total] clamps each request so
    [prompt_len + output_len <= max_total] (pass the model's
    [max_context]); lengths are clamped to at least 1.

    [deadline_slack] draws a per-request slack in microseconds
    (clamped to >= 1) and sets [deadline_us = arrival_us + slack].
    Omitted: deadlines are [None] and the PRNG stream is identical to
    pre-deadline workloads (the slack draw is skipped entirely), so
    seeded workloads reproduce bit-for-bit. [prompt_tokens] and
    [fork_of] are always [None] here.

    @raise Invalid_argument when [rate_per_s <= 0]. *)

val multi_turn_chat :
  seed:int ->
  rate_per_s:float ->
  sessions:int ->
  turns:int ->
  ?vocab:int ->
  ?system_len:int ->
  ?think_time_us:float ->
  ?max_total:int ->
  ?deadline_slack:dist ->
  turn_user:dist ->
  output:dist ->
  unit ->
  t
(** Chat sessions over one {e shared} system prompt of [system_len]
    tokens (default 32, drawn once — identical across all sessions).
    Sessions start as a Poisson process at [rate_per_s]; each runs
    [turns] turns whose prompts accumulate the whole conversation:
    turn k's prompt is the previous prompt plus a synthetic assistant
    reply (as long as the engine will actually generate) plus a fresh
    user message of [turn_user] tokens. Successive turns of a session
    therefore share a strictly growing prefix, and all sessions share
    the system prompt. Turn arrivals are spaced by exponential think
    times with mean [think_time_us] (default 200 ms). Sessions stop
    early once a turn would exceed [max_total]. Token ids are drawn
    uniformly from [vocab] (default 256).

    @raise Invalid_argument on non-positive rate/sessions/turns/vocab. *)

val bursty :
  seed:int ->
  base_rate_per_s:float ->
  burst_rate_per_s:float ->
  period_s:float ->
  duty:float ->
  num_requests:int ->
  ?vocab:int ->
  ?shared_prefix_len:int ->
  ?max_total:int ->
  ?deadline_slack:dist ->
  prompt:dist ->
  output:dist ->
  unit ->
  t
(** Diurnal traffic: a piecewise-constant Poisson process that opens
    each [period_s]-second period with a burst phase lasting
    [duty] of the period at [burst_rate_per_s], then relaxes to
    [base_rate_per_s]. Every request carries explicit prompt tokens;
    the first [shared_prefix_len] of them (default 0 = disjoint
    prompts) are one shared prefix drawn once, modelling a common
    template under load spikes.

    @raise Invalid_argument on non-positive rates, period <= 0, or
    duty outside (0, 1). *)

val best_of_n :
  seed:int ->
  rate_per_s:float ->
  groups:int ->
  n:int ->
  ?vocab:int ->
  ?fork_delay_us:float ->
  ?max_total:int ->
  ?deadline_slack:dist ->
  prompt:dist ->
  output:dist ->
  unit ->
  t
(** [groups] parent requests arriving Poisson at [rate_per_s], each
    followed by [n - 1] samples with [fork_of = Some parent] arriving
    [fork_delay_us] apart (default 1 ms — mid-stream of the parent's
    decode at typical step costs). Samples carry the parent's prompt
    tokens for the fallback path.

    @raise Invalid_argument on non-positive rate/groups/n. *)

val with_deadline : slack_us:float -> t -> t
(** Stamp every request with [deadline_us = arrival_us + slack_us].
    Purely a map — no PRNG involved. *)

val total_output_tokens : t -> int
