(** Reproducible request streams for the serving engine.

    Arrivals follow a Poisson process (exponential inter-arrival
    times) and prompt/output lengths are drawn from configurable
    distributions, all from one explicitly seeded PRNG — the same seed
    always yields the same workload, which the golden serving tests
    and the benchmark sweep rely on. *)

type request = {
  id : int;  (** 0-based arrival order *)
  arrival_us : float;
  prompt_len : int;
  output_len : int;  (** tokens to generate, >= 1 *)
}

type dist =
  | Fixed of int
  | Uniform of int * int  (** inclusive bounds *)

type t = request list
(** Sorted by [arrival_us]; ids are assigned in arrival order. *)

val generate :
  seed:int ->
  rate_per_s:float ->
  num_requests:int ->
  ?max_total:int ->
  prompt:dist ->
  output:dist ->
  unit ->
  t
(** [max_total] clamps each request so
    [prompt_len + output_len <= max_total] (pass the model's
    [max_context]); lengths are clamped to at least 1. *)

val total_output_tokens : t -> int
