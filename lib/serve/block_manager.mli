(** Paged KV-cache block accounting (the vLLM-style allocator the
    paper's serving evaluation assumes).

    Each request's KV cache is stored in fixed-size blocks of
    [block_size] token positions; a block holds K and V for every
    layer and kv-head of the model. Blocks are drawn from a
    [`Pooling] {!Runtime.Allocator}, so freed blocks stay resident
    and are recycled exactly — {!Runtime.Allocator.pool_free_bytes}
    exposes the recyclable pool the admission check consults.

    The block budget defaults to the device's VRAM minus the model's
    weight footprint (with 10% headroom for activations), matching
    how serving systems size their cache pools. *)

type t

val create :
  ?kv_budget_bytes:int ->
  cfg:Frontend.Configs.t ->
  precision:Frontend.Llm.precision ->
  block_size:int ->
  device:Runtime.Device.t ->
  Runtime.Allocator.t ->
  t
(** The allocator should be [`Pooling]; [kv_budget_bytes] overrides
    the VRAM-derived default (useful for tests).
    @raise Invalid_argument if the budget fits no block at all. *)

val block_size : t -> int
val block_bytes : t -> int
(** 2 (K,V) x layers x kv_heads x head_dim x block_size x f16. *)

val total_blocks : t -> int
val free_blocks : t -> int
val used_blocks : t -> int
val blocks_for : t -> int -> int
(** Blocks needed to hold [tokens] cache positions. *)

val holds : t -> request_id:int -> int
(** Blocks currently held by a request (0 if none). *)

val grow : t -> request_id:int -> tokens:int -> bool
(** Ensure the request holds enough blocks for [tokens] positions,
    allocating the delta. Returns [false] (and allocates nothing) if
    the free pool cannot cover it — the caller preempts or defers. *)

val release : t -> request_id:int -> unit
(** Free all of a request's blocks back to the pool (preemption or
    completion). No-op if it holds none. *)

val allocator : t -> Runtime.Allocator.t
