(** Paged KV-cache block accounting with cross-request prefix sharing
    (the vLLM-style allocator the paper's serving evaluation assumes,
    extended with SGLang/RadixAttention-style prefix reuse).

    Each request's KV cache is stored in fixed-size blocks of
    [block_size] token positions; a block holds K and V for every
    layer and kv-head of the model. Blocks are drawn from a
    [`Pooling] {!Runtime.Allocator}, so freed blocks stay resident
    and are recycled exactly.

    With [sharing = true] every block is {b refcounted} and full
    blocks of prompt tokens are cached in a {b prefix tree} keyed on
    token ids: {!acquire} matches a new request's prompt against the
    tree and shares the longest cached prefix (in whole blocks — a
    prefix that ends mid-block never shares that block, because it
    will be written), charging the request only for the unshared
    suffix. Finished or preempted requests {!release} their
    {e references}; blocks whose refcount drops to 0 but that cache a
    prompt prefix stay resident and evictable, and are reclaimed
    LRU-leaf-first when the pool is pressed. {!fork} lets a request
    share another's entire cache (best-of-n sampling); a write into a
    block with refcount > 1 triggers {b copy-on-write} inside {!grow},
    charged to the writer.

    With [sharing = false] (the default) behavior is exactly the
    pre-sharing accountant: every block private, nothing cached,
    {!release} frees, {!fork} copies.

    The block budget defaults to the device's VRAM minus the model's
    weight footprint (with 10% headroom for activations), matching
    how serving systems size their cache pools. *)

type t

val create :
  ?kv_budget_bytes:int ->
  ?sharing:bool ->
  cfg:Frontend.Configs.t ->
  precision:Frontend.Llm.precision ->
  block_size:int ->
  device:Runtime.Device.t ->
  Runtime.Allocator.t ->
  t
(** The allocator should be [`Pooling] and exclusively owned by this
    manager; [kv_budget_bytes] overrides the VRAM-derived default
    (useful for tests). [sharing] defaults to [false].
    @raise Invalid_argument if the budget fits no block at all; the
    message reports the per-block byte requirement against the
    available budget. *)

val block_size : t -> int
val block_bytes : t -> int
(** 2 (K,V) x layers x kv_heads x head_dim x block_size x f16. *)

val total_blocks : t -> int

val used_blocks : t -> int
(** Physically resident blocks: referenced by at least one request,
    or cached (refcount 0) in the prefix tree. *)

val cached_blocks : t -> int
(** Resident blocks with refcount 0 held only by the prefix tree —
    reclaimable on demand. Always 0 when sharing is off. *)

val free_blocks : t -> int
(** [total_blocks - used_blocks]: physically free right now. *)

val available_blocks : t -> int
(** [free_blocks + cached_blocks]: what an allocation can actually
    obtain, counting evictable cache. *)

val logical_blocks : t -> int
(** Sum of per-request holdings (shared blocks counted once per
    holder). [logical - used_referenced] is the sharing saving;
    {e KV-bytes-per-token} divides physical bytes by logical
    token-capacity. *)

val sharing : t -> bool
val blocks_for : t -> int -> int
(** Blocks needed to hold [tokens] cache positions. *)

val holds : t -> request_id:int -> int
(** Blocks currently held (referenced) by a request (0 if none). *)

type stats = {
  cow_copies : int;  (** private copies made by writes to shared blocks *)
  hit_tokens : int;  (** prompt tokens served from the prefix cache *)
  lookup_tokens : int;  (** prompt tokens presented to {!acquire} *)
  evictions : int;  (** cached blocks reclaimed under pressure *)
}

val stats : t -> stats
(** Monotone counters since [create]. *)

val acquire :
  t -> request_id:int -> prompt:int array -> tokens:int -> [ `Ok of int | `No_space ]
(** Admission: give the request blocks for [tokens] cache positions,
    sharing the longest prefix of [prompt] (token ids) cached in the
    tree and allocating the rest fresh; the request's full prompt
    blocks are then inserted into the tree for later arrivals.
    Returns [`Ok matched_tokens] (0 when sharing is off, the prompt
    is shorter than a block, or nothing matched). [`No_space]: the
    unshared suffix does not fit even after evicting reclaimable
    cache — nothing is allocated or referenced.

    The request must hold nothing (fresh admission, or re-admission
    after a {!release}-ing preemption).
    @raise Invalid_argument if it already holds blocks. *)

val grow : t -> request_id:int -> tokens:int -> bool
(** Ensure the request holds enough blocks for [tokens] positions,
    allocating the delta; when position [tokens - 1] falls in a block
    shared with another holder (or cached in the tree), the request
    gets a private copy-on-write copy charged to its own budget.
    Returns [false] (and changes nothing) if the pool — including
    evictable cache — cannot cover it: the caller preempts or
    defers. *)

val fork : t -> parent:int -> child:int -> bool
(** Share (sharing on: refcount, O(1) memory) or duplicate (sharing
    off: fresh blocks) the parent's entire current holding into the
    child — best-of-n / beam forking of decode state. The child's
    first divergent write copy-on-writes the shared tail block.
    Returns [false] if the parent holds nothing or (sharing off) the
    copy does not fit.
    @raise Invalid_argument if the child already holds blocks. *)

val release : t -> request_id:int -> unit
(** Drop all of a request's {e references} (preemption or
    completion). Unshared, uncached blocks return to the pool; blocks
    still referenced elsewhere live on; cached prompt blocks whose
    refcount drops to 0 stay resident in the prefix tree for future
    sharing. No-op if it holds none. *)

val drop_cache : t -> unit
(** Evict the whole prefix tree: refcount-0 cached blocks are freed,
    still-referenced blocks stay with their holders but are no longer
    shareable. After releasing every request and dropping the cache,
    [used_blocks = 0]. *)

val check_invariants : t -> string option
(** Structural self-audit: the sum of refcounts equals the number of
    live per-request block references, the resident-block census
    equals [used_blocks], refcount-0 blocks are exactly the cached
    ones ([cached_blocks], no leaks), and allocator live-minus-pool
    bytes back exactly the resident blocks. [None] = all invariants
    hold; [Some msg] describes the first violation. *)

val allocator : t -> Runtime.Allocator.t
