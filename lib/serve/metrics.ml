type request_metrics = {
  id : int;
  arrival_us : float;
  first_token_us : float;
  finish_us : float;
  prompt_len : int;
  tokens : int;
  preemptions : int;
}

type pct = { p50 : float; p95 : float; p99 : float }

type summary = {
  completed : int;
  makespan_us : float;
  tokens_per_s : float;
  ttft_us : pct;
  per_token_us : pct;
  e2e_us : pct;
  occupancy : float;
  preemptions : int;
}

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let pct_of xs =
  {
    p50 = percentile 50.0 xs;
    p95 = percentile 95.0 xs;
    p99 = percentile 99.0 xs;
  }

let summarize ~makespan_us ~occupancy rs =
  let tokens = List.fold_left (fun acc r -> acc + r.tokens) 0 rs in
  let ttft = List.map (fun r -> r.first_token_us -. r.arrival_us) rs in
  let e2e = List.map (fun r -> r.finish_us -. r.arrival_us) rs in
  let per_tok =
    List.map
      (fun r ->
        (r.finish_us -. r.first_token_us) /. float_of_int (max 1 (r.tokens - 1)))
      rs
  in
  {
    completed = List.length rs;
    makespan_us;
    tokens_per_s =
      (if makespan_us > 0.0 then float_of_int tokens /. (makespan_us /. 1e6)
       else 0.0);
    ttft_us = pct_of ttft;
    per_token_us = pct_of per_tok;
    e2e_us = pct_of e2e;
    occupancy;
    preemptions =
      List.fold_left (fun acc (r : request_metrics) -> acc + r.preemptions) 0 rs;
  }

let to_string s =
  let ms v = v /. 1e3 in
  String.concat "\n"
    [
      Printf.sprintf "completed:   %d requests in %.1f ms (%d preemptions)"
        s.completed (ms s.makespan_us) s.preemptions;
      Printf.sprintf "throughput:  %.1f output tokens/s, decode occupancy %.0f%%"
        s.tokens_per_s (s.occupancy *. 100.0);
      Printf.sprintf "ttft ms:     p50 %.1f  p95 %.1f  p99 %.1f"
        (ms s.ttft_us.p50) (ms s.ttft_us.p95) (ms s.ttft_us.p99);
      Printf.sprintf "per-tok ms:  p50 %.1f  p95 %.1f  p99 %.1f"
        (ms s.per_token_us.p50) (ms s.per_token_us.p95)
        (ms s.per_token_us.p99);
      Printf.sprintf "e2e ms:      p50 %.1f  p95 %.1f  p99 %.1f"
        (ms s.e2e_us.p50) (ms s.e2e_us.p95) (ms s.e2e_us.p99);
    ]
