type request_metrics = {
  id : int;
  arrival_us : float;
  first_token_us : float;
  finish_us : float;
  prompt_len : int;
  tokens : int;
  preemptions : int;
  retries : int;
  deadline_us : float option;
}

type pct = { p50 : float; p95 : float; p99 : float }

type summary = {
  completed : int;
  submitted : int;
  makespan_us : float;
  tokens_per_s : float;
  goodput_tokens_per_s : float;
  slo_attainment : float;
  ttft_us : pct;
  per_token_us : pct;
  e2e_us : pct;
  occupancy : float;
  preemptions : int;
  retries : int;
  shed : int;
  timeouts : int;
  aborted : int;
  faults : int;
  prefix_hit_rate : float;
  cow_copies : int;
  kv_bytes_per_token : float;
  failovers : int;
  migrations : int;
  hedges : int;
  hedge_wins : int;
  replica_downtime_us : float;
}

(* Percentiles drop non-finite samples before ranking: a replica that
   completed zero requests (or a fold that divided 0/0 upstream) must
   never poison the cluster tail with NaN. Empty after filtering -> 0. *)
let percentile p xs =
  match List.sort compare (List.filter (fun x -> Float.is_finite x) xs) with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let pct_of xs =
  {
    p50 = percentile 50.0 xs;
    p95 = percentile 95.0 xs;
    p99 = percentile 99.0 xs;
  }

let met_deadline r =
  match r.deadline_us with None -> true | Some d -> r.finish_us <= d

let summarize ~makespan_us ~occupancy ?submitted ?(shed = 0) ?(timeouts = 0)
    ?(aborted = 0) ?(faults = 0) ?(prefix_hit_rate = 0.0) ?(cow_copies = 0)
    ?(kv_bytes_per_token = 0.0) ?(failovers = 0) ?(migrations = 0)
    ?(hedges = 0) ?(hedge_wins = 0) ?(replica_downtime_us = 0.0) rs =
  let tokens = List.fold_left (fun acc r -> acc + r.tokens) 0 rs in
  let ttft = List.map (fun r -> r.first_token_us -. r.arrival_us) rs in
  let e2e = List.map (fun r -> r.finish_us -. r.arrival_us) rs in
  let per_tok =
    List.map
      (fun r ->
        (r.finish_us -. r.first_token_us) /. float_of_int (max 1 (r.tokens - 1)))
      rs
  in
  let submitted =
    match submitted with Some n -> n | None -> List.length rs + shed + aborted
  in
  let met = List.filter met_deadline rs in
  let good_tokens =
    List.fold_left (fun acc r -> acc + r.tokens) 0 met
  in
  let per_s n =
    if makespan_us > 0.0 then float_of_int n /. (makespan_us /. 1e6) else 0.0
  in
  {
    completed = List.length rs;
    submitted;
    makespan_us;
    tokens_per_s = per_s tokens;
    goodput_tokens_per_s = per_s good_tokens;
    slo_attainment =
      (if submitted > 0 then float_of_int (List.length met) /. float_of_int submitted
       else 1.0);
    ttft_us = pct_of ttft;
    per_token_us = pct_of per_tok;
    e2e_us = pct_of e2e;
    occupancy;
    preemptions =
      List.fold_left (fun acc (r : request_metrics) -> acc + r.preemptions) 0 rs;
    retries =
      List.fold_left (fun acc (r : request_metrics) -> acc + r.retries) 0 rs;
    shed;
    timeouts;
    aborted;
    faults;
    prefix_hit_rate;
    cow_copies;
    kv_bytes_per_token;
    failovers;
    migrations;
    hedges;
    hedge_wins;
    replica_downtime_us;
  }

let to_string s =
  let ms v = v /. 1e3 in
  let base =
    [
      Printf.sprintf "completed:   %d requests in %.1f ms (%d preemptions)"
        s.completed (ms s.makespan_us) s.preemptions;
      Printf.sprintf "throughput:  %.1f output tokens/s, decode occupancy %.0f%%"
        s.tokens_per_s (s.occupancy *. 100.0);
      Printf.sprintf "ttft ms:     p50 %.1f  p95 %.1f  p99 %.1f"
        (ms s.ttft_us.p50) (ms s.ttft_us.p95) (ms s.ttft_us.p99);
      Printf.sprintf "per-tok ms:  p50 %.1f  p95 %.1f  p99 %.1f"
        (ms s.per_token_us.p50) (ms s.per_token_us.p95)
        (ms s.per_token_us.p99);
      Printf.sprintf "e2e ms:      p50 %.1f  p95 %.1f  p99 %.1f"
        (ms s.e2e_us.p50) (ms s.e2e_us.p95) (ms s.e2e_us.p99);
    ]
  in
  (* Resilience lines only when something resilience-related happened,
     so fault-free reports are byte-identical to the pre-fault engine. *)
  let resilience =
    if s.shed + s.aborted + s.retries + s.faults > 0 || s.slo_attainment < 1.0
    then
      [
        Printf.sprintf
          "resilience:  %d/%d submitted met SLO (%.0f%%), %d shed (%d timed \
           out), %d aborted, %d retries, %d faults"
          (int_of_float (s.slo_attainment *. float_of_int s.submitted +. 0.5))
          s.submitted
          (s.slo_attainment *. 100.0)
          s.shed s.timeouts s.aborted s.retries s.faults;
        Printf.sprintf "goodput:     %.1f deadline-met output tokens/s"
          s.goodput_tokens_per_s;
      ]
    else []
  in
  (* Sharing line only when the prefix cache actually did something,
     so sharing-off reports are byte-identical to the old engine. *)
  let sharing =
    if s.cow_copies > 0 || s.prefix_hit_rate > 0.0 then
      [
        Printf.sprintf
          "kv sharing:  %.0f%% prompt tokens from cache, %d cow copies, %.1f \
           KV bytes/token"
          (s.prefix_hit_rate *. 100.0)
          s.cow_copies s.kv_bytes_per_token;
      ]
    else []
  in
  (* Failover line only when the cluster actually lost or hedged
     something, so single-replica and fault-free cluster reports are
     byte-identical to the pre-failover engine. *)
  let failover =
    if s.failovers + s.hedges > 0 || s.replica_downtime_us > 0.0 then
      [
        Printf.sprintf
          "failover:    %d requests migrated (%d migrations), %d hedges (%d \
           wins), %.1f ms replica downtime"
          s.failovers s.migrations s.hedges s.hedge_wins
          (ms s.replica_downtime_us);
      ]
    else []
  in
  String.concat "\n" (base @ resilience @ sharing @ failover)
